package webssari_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"webssari"
)

// mixedBranches builds a PHP body whose taintedness genuinely depends on
// n branch decisions, forcing the SAT encoding to materialize clauses
// and the enumeration to search.
func mixedBranches(n int) string {
	var b strings.Builder
	b.WriteString("$x = $_GET['a'];\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "if ($c%d) { $x = htmlspecialchars($x); } else { $x = $x . $_GET['b%d']; }\n", i, i)
	}
	b.WriteString("echo $x;\n")
	return b.String()
}

// writeIncludeChain writes depth files f0.php → f1.php → … where each
// includes the next and the innermost holds body. It returns the path of
// the chain's head.
func writeIncludeChain(t *testing.T, dir string, depth int, body string) string {
	t.Helper()
	for i := 0; i < depth; i++ {
		var src string
		if i == depth-1 {
			src = "<?php\n" + body
		} else {
			src = fmt.Sprintf("<?php include 'f%d.php';\n", i+1)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("f%d.php", i)), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "f0.php")
}

// TestAdversarialInputCompletesIncomplete is the PR's acceptance
// scenario: a 30-deep include chain ending in a resource-hungry
// constraint, run under a 1-second deadline with a 1-conflict budget and
// a tiny clause ceiling. The run must complete promptly with an
// Incomplete verdict — no hang, no panic, and above all no Safe claim.
func TestAdversarialInputCompletesIncomplete(t *testing.T) {
	dir := t.TempDir()
	head := writeIncludeChain(t, dir, 30, mixedBranches(8))
	src, err := os.ReadFile(head)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rep, err := webssari.Verify(src, head,
		webssari.WithDir(dir),
		webssari.WithDeadline(1*time.Second),
		webssari.WithBudget(1),
		webssari.WithResourceLimits(webssari.ResourceLimits{MaxCNFClauses: 16}),
	)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("adversarial input errored instead of degrading: %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("took %v; the deadline did not bound the run", elapsed)
	}
	if rep.Safe {
		t.Fatal("Safe claimed over a degraded model")
	}
	if rep.Verdict != webssari.VerdictIncomplete {
		t.Fatalf("Verdict = %q, want %q (limits: %v)", rep.Verdict, webssari.VerdictIncomplete, rep.Limits)
	}
	if !rep.Incomplete || len(rep.Limits) == 0 {
		t.Fatalf("Incomplete=%v Limits=%v; degradation causes not surfaced", rep.Incomplete, rep.Limits)
	}
}

// TestBudgetExhaustionNeverSafe checks the undecided-propagation
// satellite: with a 1-conflict budget, the solver gives up mid-
// enumeration and the report must say so rather than passing the file.
func TestBudgetExhaustionNeverSafe(t *testing.T) {
	src := "<?php\n" + mixedBranches(6)
	rep, err := webssari.Verify([]byte(src), "budget.php",
		webssari.WithPaperEnumeration(), // full-BN blocking forces search
		webssari.WithBudget(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Fatal("exhausted budget reported Safe")
	}
	if !rep.Incomplete {
		t.Fatal("exhausted budget not reported Incomplete")
	}
	found := false
	for _, l := range rep.Limits {
		if strings.Contains(l, "conflict budget") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Limits = %v, want conflict budget cause", rep.Limits)
	}
}

// TestVerifyContextCanceled verifies the public context plumbing: an
// already-canceled context degrades every assertion rather than
// erroring out or claiming Safe.
func TestVerifyContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := webssari.VerifyContext(ctx, []byte(`<?php echo $_GET['x'];`), "t.php")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != webssari.VerdictIncomplete {
		t.Fatalf("Verdict = %q, want %q", rep.Verdict, webssari.VerdictIncomplete)
	}
	found := false
	for _, l := range rep.Limits {
		if strings.Contains(l, "deadline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Limits = %v, want deadline cause", rep.Limits)
	}
}

// TestStatementCeilingIncomplete caps the model size via the public
// ResourceLimits option.
func TestStatementCeilingIncomplete(t *testing.T) {
	var b strings.Builder
	b.WriteString("<?php\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "$v%d = 'lit';\n", i)
	}
	b.WriteString("echo htmlspecialchars($_GET['q']);\n")
	rep, err := webssari.Verify([]byte(b.String()), "big.php",
		webssari.WithResourceLimits(webssari.ResourceLimits{MaxStatements: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Fatal("Safe claimed over a truncated model")
	}
	if rep.Verdict != webssari.VerdictIncomplete {
		t.Fatalf("Verdict = %q, want %q (limits %v)", rep.Verdict, webssari.VerdictIncomplete, rep.Limits)
	}
}

// TestUnresolvedIncludeNotSafe fails include loading mid-chain: the
// model has a hole, so the report must be Incomplete.
func TestUnresolvedIncludeNotSafe(t *testing.T) {
	dir := t.TempDir()
	src := `<?php include 'lib.php'; echo htmlspecialchars($_GET['q']);`
	if err := os.WriteFile(filepath.Join(dir, "main.php"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// lib.php exists but includes a file that does not.
	if err := os.WriteFile(filepath.Join(dir, "lib.php"), []byte(`<?php include 'gone.php';`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := webssari.Verify([]byte(src), filepath.Join(dir, "main.php"), webssari.WithDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe || rep.Verdict != webssari.VerdictIncomplete {
		t.Fatalf("Safe=%v Verdict=%q, want incomplete (limits %v)", rep.Safe, rep.Verdict, rep.Limits)
	}
	found := false
	for _, l := range rep.Limits {
		if strings.Contains(l, "include") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Limits = %v, want unresolved-include cause", rep.Limits)
	}
}

// TestParseErrorsIncomplete: garbage that still half-parses must yield a
// report marked Incomplete (parse errors), never Safe.
func TestParseErrorsIncomplete(t *testing.T) {
	rep, err := webssari.Verify([]byte("<?php $x = ; } } if ("), "garbage.php")
	if err != nil {
		// A fatal failure is also acceptable — but it must be a structured
		// *EngineError, not a panic.
		var ee *webssari.EngineError
		if !asEngineError(err, &ee) {
			t.Fatalf("error is %T, want *webssari.EngineError", err)
		}
		return
	}
	if rep.Safe {
		t.Fatal("Safe claimed over a file with parse errors")
	}
	if rep.Verdict == webssari.VerdictSafe {
		t.Fatalf("Verdict = %q over parse errors", rep.Verdict)
	}
}

func asEngineError(err error, target **webssari.EngineError) bool {
	for err != nil {
		if ee, ok := err.(*webssari.EngineError); ok {
			*target = ee
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestVerifyDirFaultIsolation is the fault-isolation acceptance check: a
// directory holding a clean file, a vulnerable file, a malformed file,
// and an unreadable file must still produce reports for everything that
// can be analyzed, with the casualty recorded in Failures.
func TestVerifyDirFaultIsolation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("clean.php", `<?php echo htmlspecialchars($_GET['q']);`)
	write("vuln.php", `<?php echo $_GET['q'];`)
	write("garbage.php", "<?php $x = ; } } if (")
	// A dangling symlink fails at read time regardless of privileges.
	if err := os.Symlink(filepath.Join(dir, "nonexistent-target"), filepath.Join(dir, "broken.php")); err != nil {
		t.Skipf("symlink unavailable: %v", err)
	}

	pr, err := webssari.VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir must isolate per-file faults, got error: %v", err)
	}
	if len(pr.Failures) != 1 {
		t.Fatalf("Failures = %+v, want exactly the broken symlink", pr.Failures)
	}
	if f := pr.Failures[0]; f.Stage != "read" || !strings.Contains(f.File, "broken.php") {
		t.Fatalf("Failure = %+v, want read failure on broken.php", f)
	}
	if len(pr.Files) != 3 {
		t.Fatalf("Files = %d, want 3 (clean, vuln, garbage all reported)", len(pr.Files))
	}
	if pr.VulnerableFiles != 1 {
		t.Fatalf("VulnerableFiles = %d, want 1", pr.VulnerableFiles)
	}
	if pr.Safe() {
		t.Fatal("project with failures and findings reported Safe")
	}
	if pr.Verdict() != webssari.VerdictUnsafe {
		t.Fatalf("Verdict = %q, want unsafe (a finding outranks degradation)", pr.Verdict())
	}
}

// TestProjectReportSafeSemantics: a project is only Safe when nothing
// was vulnerable, nothing degraded, and nothing failed.
func TestProjectReportSafeSemantics(t *testing.T) {
	cases := []struct {
		name    string
		pr      webssari.ProjectReport
		safe    bool
		verdict string
	}{
		{"empty", webssari.ProjectReport{}, true, webssari.VerdictSafe},
		{"vulnerable", webssari.ProjectReport{VulnerableFiles: 1}, false, webssari.VerdictUnsafe},
		{"incomplete", webssari.ProjectReport{IncompleteFiles: 1}, false, webssari.VerdictIncomplete},
		{"failed", webssari.ProjectReport{Failures: []webssari.FileFailure{{File: "x.php", Stage: "read"}}},
			false, webssari.VerdictIncomplete},
	}
	for _, tc := range cases {
		if got := tc.pr.Safe(); got != tc.safe {
			t.Errorf("%s: Safe() = %v, want %v", tc.name, got, tc.safe)
		}
		if got := tc.pr.Verdict(); got != tc.verdict {
			t.Errorf("%s: Verdict() = %q, want %q", tc.name, got, tc.verdict)
		}
	}
}

// TestVerifyDirContextCanceled: a canceled context stops the project
// walk, recording every unvisited file instead of silently skipping it.
func TestVerifyDirContextCanceled(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("f%d.php", i))
		if err := os.WriteFile(path, []byte(`<?php echo 'hi';`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, err := webssari.VerifyDirContext(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Failures) != 3 {
		t.Fatalf("Failures = %d, want 3 (all files unvisited)", len(pr.Failures))
	}
	for _, f := range pr.Failures {
		if f.Stage != "deadline" {
			t.Fatalf("Failure stage = %q, want deadline", f.Stage)
		}
	}
	if pr.Safe() {
		t.Fatal("canceled project run reported Safe")
	}
}

// TestVerifyDirMissingRootStillFatal: an unwalkable root remains a real
// error — fault isolation applies per file, not to a bogus invocation.
func TestVerifyDirMissingRootStillFatal(t *testing.T) {
	if _, err := webssari.VerifyDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing root did not error")
	}
}

// TestDeadlineOptionValidation rejects nonpositive deadlines.
func TestDeadlineOptionValidation(t *testing.T) {
	if _, err := webssari.Verify([]byte(`<?php`), "t.php", webssari.WithDeadline(0)); err == nil {
		t.Fatal("WithDeadline(0) accepted")
	}
	if _, err := webssari.Verify([]byte(`<?php`), "t.php", webssari.WithDeadline(-time.Second)); err == nil {
		t.Fatal("WithDeadline(-1s) accepted")
	}
}
