package webssari_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webssari"
	"webssari/internal/runtime"
)

const vulnerableSurvey = `<?php
$sid = $_GET['sid'];
if (!$sid) { $sid = $_POST['sid']; }
$iq = "SELECT * FROM groups WHERE sid=$sid";
mysql_query($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid";
mysql_query($i2q);
$fnquery = "SELECT * FROM questions WHERE sid='$sid'";
mysql_query($fnquery);
`

func TestVerifySafe(t *testing.T) {
	rep, err := webssari.Verify([]byte(`<?php echo htmlspecialchars($_GET['q']);`), "safe.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Safe || rep.Symptoms != 0 || rep.Groups != 0 {
		t.Fatalf("safe source misreported: %+v", rep)
	}
}

func TestVerifyVulnerableGrouping(t *testing.T) {
	rep, err := webssari.Verify([]byte(vulnerableSurvey), "survey.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("vulnerable source reported safe")
	}
	if rep.Symptoms != 3 {
		t.Fatalf("symptoms = %d, want 3", rep.Symptoms)
	}
	// Root cause is $sid, assigned twice (GET and POST fallback).
	if rep.Groups != 2 {
		t.Fatalf("groups = %d, want 2 (the two $sid introductions)\n%s", rep.Groups, rep.Text)
	}
	if len(rep.Findings) == 0 {
		t.Fatalf("no findings")
	}
	for _, f := range rep.Findings {
		if f.Class != "SQL injection" {
			t.Errorf("class = %q, want SQL injection", f.Class)
		}
		if len(f.Trace) == 0 {
			t.Errorf("finding at %v lacks a trace", f.Location)
		}
		if f.Group < 0 || f.Group >= len(rep.Patches) {
			t.Errorf("finding group %d out of range", f.Group)
		}
	}
	for _, p := range rep.Patches {
		if p.Var != "sid" {
			t.Errorf("patch var = %q, want sid", p.Var)
		}
	}
}

func TestReportIsJSONSerializable(t *testing.T) {
	rep, err := webssari.Verify([]byte(vulnerableSurvey), "survey.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back webssari.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Symptoms != rep.Symptoms || back.Groups != rep.Groups {
		t.Fatalf("round trip lost counts")
	}
}

func TestPatchProducesVerifiedSafeOutput(t *testing.T) {
	patched, rep, err := webssari.Patch([]byte(vulnerableSurvey), "survey.php")
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if rep.Safe {
		t.Fatalf("pre-patch report should be unsafe")
	}
	if !strings.Contains(string(patched), "websafe(") {
		t.Fatalf("patched source lacks runtime guards:\n%s", patched)
	}
	rep2, err := webssari.Verify(patched, "survey.php")
	if err != nil {
		t.Fatalf("re-verify: %v", err)
	}
	if !rep2.Safe {
		t.Fatalf("patched source still unsafe:\n%s\n%s", patched, rep2.Text)
	}
}

func TestPatchLeavesSafeSourceAlone(t *testing.T) {
	src := []byte(`<?php echo 'hello';`)
	patched, rep, err := webssari.Patch(src, "safe.php")
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if !rep.Safe || string(patched) != string(src) {
		t.Fatalf("safe source modified")
	}
}

// TestPatchedProgramSafeAtRuntime executes the original and the patched
// program in the taint-tracking interpreter with attacker input: the
// original delivers tainted data to the SQL sink, the patched one does not
// — the end-to-end behaviour the paper's runtime guards provide.
func TestPatchedProgramSafeAtRuntime(t *testing.T) {
	seed := func(in *runtime.Interp) {
		in.SetGet("sid", "0; DROP TABLE users --")
		in.SetPost("sid", "1; DELETE FROM groups")
	}

	orig := runtime.New()
	seed(orig)
	if err := orig.RunSource("survey.php", []byte(vulnerableSurvey)); err != nil {
		t.Fatalf("run original: %v", err)
	}
	if len(orig.TaintedEvents()) == 0 {
		t.Fatalf("original program should deliver tainted data to mysql_query")
	}

	patched, _, err := webssari.Patch([]byte(vulnerableSurvey), "survey.php")
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	fixed := runtime.New()
	seed(fixed)
	if err := fixed.RunSource("survey.php", patched); err != nil {
		t.Fatalf("run patched: %v\n%s", err, patched)
	}
	if evs := fixed.TaintedEvents(); len(evs) != 0 {
		t.Fatalf("patched program still leaks taint: %v\n%s", evs, patched)
	}
	// The program still issues its three queries — guards sanitize, they
	// do not break functionality.
	if len(fixed.DB.Queries) != 3 {
		t.Fatalf("patched program issued %d queries, want 3", len(fixed.DB.Queries))
	}
}

func TestWithSinkOption(t *testing.T) {
	src := []byte(`<?php $q = "DELETE " . $_GET['t']; DoSQL($q);`)
	rep, err := webssari.Verify(src, "t.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Safe {
		t.Fatalf("DoSQL unknown: should be safe by default")
	}
	rep, err = webssari.Verify(src, "t.php", webssari.WithSink("DoSQL", 1))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("DoSQL sink not honored")
	}
}

func TestWithSanitizerAndSourceOptions(t *testing.T) {
	src := []byte(`<?php echo my_clean(read_feed());`)
	rep, err := webssari.Verify(src, "t.php", webssari.WithSource("read_feed"))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("custom source not honored (my_clean passes taint through)")
	}
	rep, err = webssari.Verify(src, "t.php",
		webssari.WithSource("read_feed"), webssari.WithSanitizer("my_clean"))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Safe {
		t.Fatalf("custom sanitizer not honored")
	}
}

func TestWithExtraPrelude(t *testing.T) {
	extra := `
sink DoSQL tainted 1
sanitizer super_escape untainted
var LEGACY_INPUT tainted
`
	src := []byte(`<?php
$q = "X" . $LEGACY_INPUT;
DoSQL($q);
DoSQL(super_escape($LEGACY_INPUT));`)
	rep, err := webssari.Verify(src, "t.php", webssari.WithExtraPrelude(extra))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Symptoms != 1 {
		t.Fatalf("symptoms = %d, want 1 (only the unescaped call)\n%s", rep.Symptoms, rep.Text)
	}
}

func TestWithLoader(t *testing.T) {
	files := map[string]string{
		"lib.php": `<?php function show($m) { echo $m; }`,
	}
	loader := func(p string) ([]byte, error) {
		if s, ok := files[p]; ok {
			return []byte(s), nil
		}
		return nil, fmt.Errorf("no file %q", p)
	}
	rep, err := webssari.Verify([]byte(`<?php include 'lib.php'; show($_GET['m']);`),
		"main.php", webssari.WithLoader(loader))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("cross-file taint missed")
	}
}

func TestWithLoopUnrollValidation(t *testing.T) {
	_, err := webssari.Verify([]byte(`<?php echo 1;`), "t.php", webssari.WithLoopUnroll(0))
	if err == nil {
		t.Fatalf("unroll 0 should be rejected")
	}
	if _, err := webssari.Verify([]byte(`<?php echo 1;`), "t.php", webssari.WithLoopUnroll(3)); err != nil {
		t.Fatalf("unroll 3: %v", err)
	}
}

func TestPaperEnumerationMode(t *testing.T) {
	src := []byte("<?php\n$x = $_GET['q'];\necho $x;\necho $x;")
	def, err := webssari.Verify(src, "t.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	paper, err := webssari.Verify(src, "t.php", webssari.WithPaperEnumeration())
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(def.Findings) != 2 {
		t.Fatalf("default findings = %d, want 2", len(def.Findings))
	}
	if len(paper.Findings) != 1 {
		t.Fatalf("paper-mode findings = %d, want 1 (prior assertions assumed)", len(paper.Findings))
	}
}

func TestSymptomCount(t *testing.T) {
	n, err := webssari.SymptomCount([]byte(vulnerableSurvey), "survey.php")
	if err != nil {
		t.Fatalf("SymptomCount: %v", err)
	}
	if n != 3 {
		t.Fatalf("symptoms = %d, want 3", n)
	}
}

func TestWithRoutine(t *testing.T) {
	patched, _, err := webssari.Patch([]byte(`<?php echo $_GET['x'];`), "t.php",
		webssari.WithRoutine("my_guard"), webssari.WithSanitizer("my_guard"))
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if !strings.Contains(string(patched), "my_guard(") {
		t.Fatalf("custom routine not used:\n%s", patched)
	}
}

func TestClassOf(t *testing.T) {
	if got := webssari.ClassOf("mysql_query"); got != "SQL injection" {
		t.Fatalf("ClassOf = %q", got)
	}
	if got := webssari.ClassOf("echo"); !strings.Contains(got, "XSS") {
		t.Fatalf("ClassOf(echo) = %q", got)
	}
}

func TestFigure1SupportTickets(t *testing.T) {
	// The paper's Figure 1 + Figure 2: stored XSS through the database.
	submit := `<?php
$query = "INSERT INTO tickets (user, subject, question) VALUES ('" . $_SESSION['username'] . "', '" . $_POST['ticketsubject'] . "', '" . $_POST['message'] . "')";
$result = @mysql_query($query);`
	rep, err := webssari.Verify([]byte(submit), "submit.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("Figure 1 SQL injection missed")
	}
	display := `<?php
$query = "SELECT user, subject FROM tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
    extract($row);
    echo "$ticketuser<BR>$ticketsubject<BR><BR>";
}`
	rep, err = webssari.Verify([]byte(display), "display.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("Figure 2 stored XSS missed")
	}
}

func TestFigure3IliasReferer(t *testing.T) {
	src := `<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);`
	rep, err := webssari.Verify([]byte(src), "ilias.php")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Safe {
		t.Fatalf("Figure 3 referer SQL injection missed")
	}
	if rep.Findings[0].Class != "SQL injection" {
		t.Fatalf("class = %q", rep.Findings[0].Class)
	}
}

func TestVerifyToHTML(t *testing.T) {
	var b strings.Builder
	rep, err := webssari.VerifyToHTML([]byte(vulnerableSurvey), "survey.php", &b)
	if err != nil {
		t.Fatalf("VerifyToHTML: %v", err)
	}
	if rep.Safe {
		t.Fatalf("report should be unsafe")
	}
	if !strings.Contains(b.String(), "SQL injection") {
		t.Fatalf("HTML missing findings")
	}
}

func TestWithPreludeReplacesLattice(t *testing.T) {
	custom := `
lattice chain public internal secret
var _GET secret
sink publish internal *
sanitizer declassify public
`
	src := []byte(`<?php publish($_GET['k']); publish(declassify($_GET['k']));`)
	rep, err := webssari.Verify(src, "t.php", webssari.WithPrelude(custom))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Symptoms != 1 {
		t.Fatalf("symptoms = %d, want 1 (three-level lattice)\n%s", rep.Symptoms, rep.Text)
	}
	if _, err := webssari.Verify(src, "t.php", webssari.WithPrelude("lattice diamond x")); err == nil {
		t.Fatalf("malformed prelude accepted")
	}
}

func TestWithExtraPreludeTypeMismatch(t *testing.T) {
	// Extra prelude naming a type absent from the default lattice fails.
	_, err := webssari.Verify([]byte(`<?php echo 1;`), "t.php",
		webssari.WithExtraPrelude("lattice chain low high\nsink f high 1"))
	if err == nil {
		t.Fatalf("lattice-mismatched extra prelude accepted")
	}
}

func TestVerifyDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("lib.php", `<?php function show($m) { echo $m; }`)
	write("index.php", `<?php include 'lib.php'; show($_GET['q']);`)
	write("about.php", `<?php echo 'static page';`)
	write("notes.txt", `not php`)

	pr, err := webssari.VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if len(pr.Files) != 3 {
		t.Fatalf("files = %d, want 3 (txt skipped)", len(pr.Files))
	}
	if pr.Safe() {
		t.Fatalf("project with tainted include chain reported safe")
	}
	if pr.VulnerableFiles != 1 {
		t.Fatalf("vulnerable files = %d, want 1 (index.php only)", pr.VulnerableFiles)
	}
	if pr.Symptoms < 1 || pr.Groups < 1 {
		t.Fatalf("counts missing: %+v", pr)
	}
}

func TestVerifyDirMissing(t *testing.T) {
	if _, err := webssari.VerifyDir("/no/such/dir"); err == nil {
		t.Fatalf("missing dir accepted")
	}
}
