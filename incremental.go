package webssari

// This file orchestrates incremental project verification
// (WithIncremental + WithStore): load the persisted include-dependency
// graph, plan the delta against the directory snapshot, serve unchanged
// files from the result store by their remembered keys, verify the
// rest, and persist a rebuilt graph for the next run. See
// internal/incremental for the graph and planner, DESIGN.md §11 for the
// invalidation rules.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"webssari/internal/incremental"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// GraphNamespace is the result-store namespace incremental VerifyDir
// keeps dependency-graph blobs under (see store.Namespace): graph blobs
// share the store's crash-safe framing, GC budget, and telemetry but
// can never collide with verification results.
const GraphNamespace = "depgraph"

// graphKey addresses one directory's dependency graph: the project root
// plus the fingerprint of every verdict-shaping option, so two
// configurations never read each other's graphs.
func graphKey(dir, configFP string) string {
	return store.Key("webssari-depgraph-v1", filepath.Clean(dir), configFP)
}

// GraphKey returns the final result-store key (within GraphNamespace)
// under which an incremental VerifyDir(dir, opts...) persists its
// include-dependency graph — exposed for tests and tooling that need to
// locate or invalidate the blob.
func GraphKey(dir string, opts ...Option) (string, error) {
	fcfg, err := buildConfig(append([]Option{WithDir(dir)}, opts...))
	if err != nil {
		return "", err
	}
	return store.NamespacedKey(GraphNamespace, graphKey(dir, fcfg.configFingerprint())), nil
}

// configFingerprint summarizes every verdict-shaping option — exactly
// the non-content parts of resultKey. Runs whose fingerprints differ
// can share neither stored results nor a dependency graph.
func (c *config) configFingerprint() string {
	// The policy fingerprint covers context rules, sanitizer variants,
	// sink classes, and guards — verdict-shaping state the prelude
	// fingerprint alone cannot see (two policies may share a prelude yet
	// disagree on context bounds). Folding it in keeps runs under
	// different policies from ever sharing stored results or graphs.
	policyFP := ""
	if c.policy != nil {
		policyFP = c.policy.Fingerprint()
	}
	return store.Key(
		"webssari-config-v1",
		c.pre.Fingerprint(),
		"policy="+policyFP,
		fmt.Sprintf("dir=%s unroll=%d loader=%t", c.dir, c.unroll, c.loader != nil),
		fmt.Sprintf("paper=%t blockall=%t maxcex=%d routine=%s",
			c.paperMode, c.blockAll, c.maxCEX, c.routine),
		// Solver settings are enumerated explicitly rather than %+v'd:
		// only the verdict-shaping fields participate (budgets, which
		// decide whether assertions degrade to Unknown, and the search
		// feature switches). The dispatch mode, portfolio width, and warm
		// starting are deliberately ABSENT — they are verdict-neutral
		// (reports are byte-identical across them, profiles aside), and
		// keying on them would make a shared-mode run blind to the cache
		// a per-assert run populated. Options.Interrupt is a live func
		// (never set at config time) and must never be formatted into a
		// persistent key.
		fmt.Sprintf("solver=conflicts:%d,restarts:%d,restartbase:%d,phase:%t,decay:%g,novsids:%t,nolearn:%t,norestart:%t",
			c.solver.MaxConflicts, c.solver.MaxRestarts, c.solver.RestartBase,
			c.solver.InitialPhase, c.solver.VarDecay,
			c.solver.DisableVSIDS, c.solver.DisableLearning, c.solver.DisableRestarts),
		fmt.Sprintf("limits=%+v", c.limits),
	)
}

// fsEnv is the planner's real filesystem view.
var fsEnv = incremental.Env{
	Hash: func(path string) (string, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", false
		}
		sum := sha256.Sum256(data)
		return hex.EncodeToString(sum[:]), true
	},
	Stat: func(path string) (int64, int64, bool) {
		info, err := os.Stat(path)
		if err != nil || info.IsDir() {
			return 0, 0, false
		}
		return info.Size(), info.ModTime().UnixNano(), true
	},
}

// verifyDirIncremental is VerifyDirContext's incremental mode. The
// planner only ever shrinks work: any file it cannot prove unchanged —
// and any file whose remembered store entry has been evicted — is
// verified in full, so verdicts are byte-identical (profiles aside) to
// a cold full run.
func verifyDirIncremental(ctx context.Context, dir string, snap incremental.Snapshot, walkFails []FileFailure, opts []Option, cfg *config) (*ProjectReport, error) {
	tctx := telemetry.WithTelemetry(ctx, cfg.telemetry)

	// Fingerprint under the same effective config the per-file workers
	// see (VerifyDir prepends WithDir before user options).
	fcfg, err := buildConfig(append([]Option{WithDir(dir)}, opts...))
	if err != nil {
		// Unbuildable options: let the plain path surface the per-file
		// errors exactly as a non-incremental run would.
		return verifyDirFiles(ctx, dir, snap, walkFails, nil, opts)
	}
	configFP := fcfg.configFingerprint()
	ns := store.NamespaceOf(cfg.resultStore, GraphNamespace)
	gkey := graphKey(dir, configFP)

	_, psp := telemetry.StartSpan(tctx, "plan_delta", "dir", dir)
	var g *incremental.Graph
	if payload, ok := ns.Get(gkey); ok {
		g, err = incremental.Decode(payload, filepath.Clean(dir), configFP)
		if err != nil {
			// Undecodable or foreign graph: drop it and run full — a
			// damaged graph is a cold planner, never a wrong verdict.
			ns.Invalidate(gkey)
			g = nil
		}
	}
	plan := incremental.PlanDelta(g, snap, fsEnv)
	psp.End()

	// Serve the reuse set by remembered key. The plan proved the entry
	// and its spliced includes unchanged, so the envelope's include
	// snapshot needs no revalidation; a missing blob (GC eviction) just
	// moves the file back into the verify set.
	served := make(map[string]*Report, len(plan.Reuse))
	envelopes := make(map[string]*storedEnvelope, len(plan.Reuse))
	for path, key := range plan.Reuse {
		if rep, env, ok := storeGetTrusted(tctx, cfg, path, key); ok {
			served[path] = rep
			envelopes[path] = env
		} else {
			plan.Verify = append(plan.Verify, path)
			plan.Invalidated++
		}
	}
	sort.Strings(plan.Verify)

	// Offer each dirty-but-known file its prior function fingerprints and
	// safe-assertion set: the worker compares a fresh lowering against
	// the fingerprints and, when the edit left at least one function
	// untouched, skips the SAT search for every assertion whose
	// constraint slice still hashes the same.
	hints := make(map[string]priorHint)
	if g != nil {
		for _, path := range plan.Verify {
			if node := g.Files[path]; node != nil && len(node.Funcs) > 0 && len(node.SafeAsserts) > 0 {
				hints[path] = priorHint{Funcs: node.Funcs, SafeAsserts: node.SafeAsserts}
			}
		}
	}

	// Collect each verified file's include resolution and store key from
	// the workers; reused files keep their carried-over graph nodes.
	var recMu sync.Mutex
	records := make(map[string]depRecord)
	recOpts := append([]Option{withDepRecorder(func(r depRecord) {
		recMu.Lock()
		records[r.Name] = r
		recMu.Unlock()
	}), withPriorHints(hints)}, opts...)

	pr, err := verifyDirFiles(ctx, dir, snap, walkFails, served, recOpts)
	if err != nil {
		return nil, err
	}

	inc := &telemetry.IncrementalProfile{
		Planned:     len(plan.Verify),
		Skipped:     len(served),
		Invalidated: plan.Invalidated,
		Full:        plan.Full,
	}
	if pr.Profile != nil {
		inc.ReusedAsserts = pr.Profile.ReusedAsserts
	}
	if pr.Profile != nil {
		pr.Profile.Incremental = inc
	}
	if tel := cfg.telemetry; tel != nil && tel.Metrics != nil {
		tel.Metrics.Counter(telemetry.MetricIncrementalPlanned).Add(int64(inc.Planned))
		tel.Metrics.Counter(telemetry.MetricIncrementalSkipped).Add(int64(inc.Skipped))
		tel.Metrics.Counter(telemetry.MetricIncrementalInvalidated).Add(int64(inc.Invalidated))
		tel.Metrics.Counter(telemetry.MetricIncrementalReusedAsserts).Add(int64(inc.ReusedAsserts))
		if inc.Full {
			tel.Metrics.Counter(telemetry.MetricIncrementalFullRuns).Inc()
		}
	}

	// Persist the rebuilt graph. Failures are swallowed like result-store
	// writes: a read-only disk degrades the next plan, not this verdict.
	ng := rebuildGraph(filepath.Clean(dir), configFP, snap, g, plan, served, envelopes, records)
	if payload, err := ng.Encode(); err == nil {
		_ = ns.Put(gkey, payload)
	}
	return pr, nil
}

// rebuildGraph assembles the next run's graph: freshly verified files
// from their worker records (authoritative include resolution), reused
// files from their previous nodes with stat fingerprints refreshed from
// this snapshot, dependency fingerprints from the planner's validated
// metas overlaid with freshly observed include hashes. Files that
// failed outright get no node and are re-planned next run.
func rebuildGraph(dir, configFP string, snap incremental.Snapshot, old *incremental.Graph, plan *incremental.Plan, served map[string]*Report, envelopes map[string]*storedEnvelope, records map[string]depRecord) *incremental.Graph {
	g := incremental.New(dir, configFP)
	for path, dm := range plan.Deps {
		meta := *dm
		g.Deps[path] = &meta
	}
	addDeps := func(includes map[string]string) (deps []string) {
		for path, hash := range includes {
			deps = append(deps, path)
			if dm := g.Deps[path]; dm == nil || dm.Hash != hash {
				// Freshly observed content hash; stat fingerprint from the
				// snapshot when the include is itself an entry file, else
				// from a stat probe. An unstattable include keeps a zero
				// fingerprint, which always re-hashes — never goes stale.
				nm := &incremental.DepMeta{Hash: hash}
				if size, mtime, ok := fsEnv.Stat(path); ok {
					if h, hok := fsEnv.Hash(path); !hok || h == hash {
						// Only trust the stat if the content still matches:
						// an include edited mid-run must not pin a fresh
						// stat onto a stale hash.
						nm.Size, nm.MTimeNS = size, mtime
					}
				}
				g.Deps[path] = nm
			}
		}
		sort.Strings(deps)
		return deps
	}
	for _, fm := range snap.Files {
		if rec, ok := records[fm.Path]; ok {
			node := &incremental.FileNode{
				Size:        fm.Size,
				MTimeNS:     fm.MTimeNS,
				Hash:        rec.SourceHash,
				ResultKey:   rec.ResultKey,
				Deps:        addDeps(rec.Includes),
				Misses:      append([]string(nil), rec.Misses...),
				Funcs:       rec.Funcs,
				SafeAsserts: append([]string(nil), rec.SafeAsserts...),
			}
			g.Files[fm.Path] = node
			continue
		}
		if _, ok := served[fm.Path]; ok && old != nil {
			if prev := old.Files[fm.Path]; prev != nil {
				node := *prev
				// The plan proved content unchanged (fast path or re-hash),
				// so refreshing the stat fingerprint is sound and keeps a
				// touched-but-identical file on the fast path next run.
				node.Size, node.MTimeNS = fm.Size, fm.MTimeNS
				node.Deps = append([]string(nil), prev.Deps...)
				node.Misses = append([]string(nil), prev.Misses...)
				node.SafeAsserts = append([]string(nil), prev.SafeAsserts...)
				g.Files[fm.Path] = &node
				for _, dep := range prev.Deps {
					if g.Deps[dep] == nil {
						if dm := old.Deps[dep]; dm != nil {
							meta := *dm
							g.Deps[dep] = &meta
						}
					}
				}
			} else if env := envelopes[fm.Path]; env != nil {
				// Served but the old graph lost the node (should not
				// happen; defensive): rebuild it from the envelope.
				node := &incremental.FileNode{
					Size: fm.Size, MTimeNS: fm.MTimeNS,
					ResultKey:   plan.Reuse[fm.Path],
					Deps:        addDeps(env.IncludeHashes),
					Misses:      append([]string(nil), env.IncludeMisses...),
					Funcs:       env.Funcs,
					SafeAsserts: append([]string(nil), env.SafeAsserts...),
				}
				if h, ok := fsEnv.Hash(fm.Path); ok {
					node.Hash = h
				}
				g.Files[fm.Path] = node
			}
		}
	}
	return g
}
