package webssari_test

// Solver-level benchmark suite (ISSUE 10): dispatch-mode comparison,
// warm-start pricing, and raw learnt-clause transport. BENCH_solver.json
// records the numbers; the "Solver dispatch modes" section of
// EXPERIMENTS.md interprets them. The xBMC0.1 location-variable ablation
// that completes the suite lives in BenchmarkEncodingAblation (§3.3.1),
// with its CI guard in TestLocationVariableAblationFactor.

import (
	"fmt"
	"testing"

	"webssari"
	"webssari/internal/sat"
)

// solverBenchSrc is a shared-core workload: eight conditional sinks over
// one tainted seed, so every dispatch mode pays eight hard assertions
// whose encodings overlap almost entirely.
func solverBenchSrc() []byte {
	src := "<?php\n$base = $_GET['seed'];\n"
	for i := 0; i < 8; i++ {
		src += fmt.Sprintf("if ($c%d) { $v%d = $base; } else { $v%d = 'ok'; }\n", i, i, i)
		src += fmt.Sprintf("echo $v%d;\nmysql_query($v%d);\n", i, i)
	}
	return []byte(src)
}

// branchyBenchSrc is an enumeration-heavy single-sink workload: four
// appending branches yield 16 violating trace classes, so the blocking
// loop generates real solver conflicts (the per-assert probe budget and
// warm-start budgets bite here).
func branchyBenchSrc() []byte {
	return []byte(`<?php
$x = $_GET['a'];
if ($b1) { $x = $x . '1'; }
if ($b2) { $x = $x . '2'; }
if ($b3) { $x = $x . '3'; }
if ($b4) { $x = $x . '4'; }
echo $x;
mysql_query($x);`)
}

// BenchmarkSolverModes prices the three dispatch modes of SolverConfig
// against each other on the shared-core workload. The report text must
// stay byte-identical across modes (the differential suite pins the full
// corpus; the in-bench check keeps a miswired benchmark from recording
// numbers for a different verdict).
func BenchmarkSolverModes(b *testing.B) {
	src := solverBenchSrc()
	baseline, err := webssari.Verify(src, "bench.php")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts []webssari.Option
	}{
		{"per-assert", nil},
		{"shared", []webssari.Option{webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverShared})}},
		{"portfolio", []webssari.Option{webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverPortfolio, Portfolio: 4})}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var p *webssari.RunProfile
			for i := 0; i < b.N; i++ {
				rep, err := webssari.Verify(src, "bench.php", m.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Text != baseline.Text {
					b.Fatalf("mode %s changed the report", m.name)
				}
				p = rep.Profile
			}
			b.ReportMetric(float64(p.Solver.Decisions), "decisions")
			b.ReportMetric(float64(p.Solver.Conflicts), "conflicts")
			if pf := p.Portfolio; pf != nil {
				b.ReportMetric(float64(pf.Races), "races")
			}
		})
	}
}

// BenchmarkWarmStart prices the learnt-clause store on the designed
// warm-start scenario: budget-limited re-verification of an unchanged
// file. (An unbudgeted second run never reaches the solver at all — the
// result store serves the complete report — so the budget keeps every
// run incomplete and therefore re-solving.) cold-first-run pays store
// open plus blob export into a fresh store each iteration;
// warm-second-run re-verifies against a primed store and must report a
// warm-start hit on every iteration.
func BenchmarkWarmStart(b *testing.B) {
	src := branchyBenchSrc()
	warmOpts := func(st *webssari.ResultStore) []webssari.Option {
		return []webssari.Option{
			webssari.WithStore(st),
			webssari.WithBudget(4),
			webssari.WithSolverConfig(webssari.SolverConfig{Mode: webssari.SolverShared, WarmStart: true}),
		}
	}

	b.Run("cold-first-run", func(b *testing.B) {
		var p *webssari.RunProfile
		for i := 0; i < b.N; i++ {
			st, err := webssari.OpenStore(b.TempDir(), 0)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := webssari.Verify(src, "bench.php", warmOpts(st)...)
			if err != nil {
				b.Fatal(err)
			}
			if ws := rep.Profile.WarmStart; ws == nil || ws.Hit {
				b.Fatalf("first run must be cold: %+v", ws)
			}
			p = rep.Profile
		}
		b.ReportMetric(float64(p.Solver.Conflicts), "conflicts")
		b.ReportMetric(0, "warm-hits")
	})

	b.Run("warm-second-run", func(b *testing.B) {
		st, err := webssari.OpenStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := webssari.Verify(src, "bench.php", warmOpts(st)...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var p *webssari.RunProfile
		for i := 0; i < b.N; i++ {
			rep, err := webssari.Verify(src, "bench.php", warmOpts(st)...)
			if err != nil {
				b.Fatal(err)
			}
			ws := rep.Profile.WarmStart
			if ws == nil || !ws.Hit {
				b.Fatalf("second run must hit the learnt store: %+v", ws)
			}
			p = rep.Profile
		}
		b.ReportMetric(float64(p.Solver.Conflicts), "conflicts")
		b.ReportMetric(1, "warm-hits")
		b.ReportMetric(float64(p.WarmStart.ImportedClauses), "imported-clauses")
	})
}

// BenchmarkLearntReuseSAT measures raw learnt-clause transport at the
// solver level, where the PHP-derived instances cannot show it (their
// conflicts come from enumeration blocking clauses, which are
// epoch-tainted and so — correctly — never exported; see DESIGN.md §16).
// A cold solve of each instance is compared against a warm solve that
// imports the cold run's exported blob: on the unsatisfiable pigeonhole
// instance the exported top-level units contain the refutation, so the
// warm solve finishes without a single conflict.
func BenchmarkLearntReuseSAT(b *testing.B) {
	instances := []struct {
		name string
		cnf  func() *sat.CNF
		want sat.Result
	}{
		{"pigeonhole-7-6", func() *sat.CNF { return pigeonholeCNF(7, 6) }, sat.Unsat},
		// The fixed-seed phase-transition instance happens to be unsat.
		{"random-3sat", func() *sat.CNF { return random3SAT(140, 596, 99) }, sat.Unsat},
	}
	for _, inst := range instances {
		b.Run(inst.name+"/cold", func(b *testing.B) {
			var conflicts uint64
			for i := 0; i < b.N; i++ {
				f := inst.cnf()
				s := sat.NewWith(sat.Options{})
				f.LoadInto(s)
				if got := s.Solve(); got != inst.want {
					b.Fatalf("cold solve: %v", got)
				}
				conflicts = s.Stats().Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
		})
		b.Run(inst.name+"/warm", func(b *testing.B) {
			f := inst.cnf()
			s := sat.NewWith(sat.Options{})
			f.LoadInto(s)
			if got := s.Solve(); got != inst.want {
				b.Fatalf("priming solve: %v", got)
			}
			blob := sat.EncodeLearntBlob(sat.HashCNF(f), s.ExportLearnts(nil))
			b.ResetTimer()
			var conflicts uint64
			var imported int
			for i := 0; i < b.N; i++ {
				f := inst.cnf()
				s := sat.NewWith(sat.Options{})
				f.LoadInto(s)
				hash, clauses, err := sat.DecodeLearntBlob(blob)
				if err != nil || hash != sat.HashCNF(f) {
					b.Fatalf("blob rejected: %v", err)
				}
				imported = 0
				for _, cl := range clauses {
					if !s.AddClause(cl...) {
						// The imported units alone refute the formula
						// (possible only on an unsat instance).
						break
					}
					imported++
				}
				if got := s.Solve(); got != inst.want {
					b.Fatalf("warm solve: %v", got)
				}
				conflicts = s.Stats().Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
			b.ReportMetric(float64(imported), "imported-clauses")
		})
	}
}
