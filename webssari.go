// Package webssari is a Go reproduction of WebSSARI's bounded-model-
// checking verifier for Web application security (Huang, Yu, Hang, Tsai,
// Lee, Kuo: "Verifying Web Applications Using Bounded Model Checking",
// DSN 2004).
//
// The library statically verifies PHP code against taint-style
// vulnerabilities (cross-site scripting, SQL injection, command injection,
// remote file inclusion) formalized as a secure-information-flow problem,
// and automatically patches vulnerable code with sanitization runtime
// guards. The verification pipeline is the paper's xBMC1.0:
//
//	PHP  →  F(p)  →  AI(F(p))  →  ρ (single assignment)  →  C(c,g)  →  CNF(B_i)  →  SAT
//
// Because the abstract interpretation is loop-free (fixed diameter),
// bounded model checking is sound and complete: a Safe verdict proves the
// absence of information-flow bugs in the model, and every counterexample
// corresponds to a concrete tainted path. Counterexamples are grouped by
// root cause: the minimal set of error introductions whose sanitization
// removes every error trace (a MINIMUM-INTERSECTING-SET instance, solved
// greedily per the paper's §3.3.4).
//
// # Quick start
//
//	rep, err := webssari.Verify([]byte(src), "page.php")
//	if err != nil { ... }
//	if !rep.Safe {
//	    fmt.Print(rep.Text)                       // grouped error report
//	    patched, _, _ := webssari.Patch([]byte(src), "page.php")
//	    os.WriteFile("page.php", patched, 0o644)  // secured PHP
//	}
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package webssari

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"webssari/internal/ai"
	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/lattice"
	"webssari/internal/policy"
	"webssari/internal/prelude"
	"webssari/internal/report"
	"webssari/internal/sat"
	"webssari/internal/store"
	"webssari/internal/telemetry"
	"webssari/internal/telemetry/patch"
	"webssari/internal/typestate"
)

// Location is a source position.
type Location struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the location as file:line:col.
func (l Location) String() string { return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Col) }

// TraceStep is one single assignment on an error trace.
type TraceStep struct {
	Location Location `json:"location"`
	// Var is the assigned variable's source name.
	Var string `json:"var"`
	// Value is the safety level the assignment produced ("tainted").
	Value string `json:"value"`
}

// Finding is one error trace: a path along which untrusted data reaches a
// sensitive output channel.
type Finding struct {
	// Sink is the sensitive function (echo, mysql_query, …).
	Sink string `json:"sink"`
	// Class is the vulnerability class (e.g. "SQL injection").
	Class string `json:"class"`
	// Location is the sink call site.
	Location Location `json:"location"`
	// Trace is the tainted single-assignment sequence leading to the sink.
	Trace []TraceStep `json:"trace"`
	// Group indexes the Patches entry whose guard repairs this finding.
	Group int `json:"group"`
}

// PatchPoint is one entry of the minimal fixing set: a source expression to
// wrap in a sanitization runtime guard.
type PatchPoint struct {
	// Location is where the guard is inserted.
	Location Location `json:"location"`
	// Var is the variable being sanitized ("" for sink-argument guards).
	Var string `json:"var,omitempty"`
	// Description is a human-readable summary.
	Description string `json:"description"`
	// Findings counts the error traces this single guard repairs.
	Findings int `json:"findings"`
}

// Verdict values classifying a verification outcome: VerdictSafe means
// every assertion was proved over the whole model; VerdictUnsafe means at
// least one counterexample trace was found; VerdictIncomplete means no
// vulnerability was found but resource limits, deadlines, parse errors,
// or recovered faults left part of the model unverified — no Safe claim
// is made.
const (
	VerdictSafe       = "safe"
	VerdictUnsafe     = "unsafe"
	VerdictIncomplete = "incomplete"
)

// EngineError is a structured analysis failure: the pipeline stage that
// failed (including internal panics recovered at the Verify boundary)
// together with the file being analyzed. It is returned as the error of
// Verify/Patch/VerifyDir variants and recorded in ProjectReport.Failures.
type EngineError struct {
	// Stage names the failed pipeline stage: "parse", "flow",
	// "constraint", "solve", "analysis", "patch", or "report".
	Stage string `json:"stage"`
	// File is the entry file being analyzed.
	File string `json:"file"`
	// Err is the underlying cause.
	Err error `json:"-"`
}

// Error implements error.
func (e *EngineError) Error() string {
	return fmt.Sprintf("webssari: %s: %s stage: %v", e.File, e.Stage, e.Err)
}

// Unwrap returns the underlying cause.
func (e *EngineError) Unwrap() error { return e.Err }

// Report is the result of verifying one PHP entry file (plus its static
// includes).
type Report struct {
	// File is the entry file name.
	File string `json:"file"`
	// Safe is true when bounded model checking proved every sensitive call
	// receives only trusted data (sound and complete for the model). It is
	// withheld whenever Incomplete is set: a proof over a partial model is
	// no proof at all.
	Safe bool `json:"safe"`
	// Verdict is the three-valued outcome: VerdictSafe, VerdictUnsafe, or
	// VerdictIncomplete.
	Verdict string `json:"verdict"`
	// Incomplete is set when part of the model escaped verification
	// (deadline expiry, conflict-budget exhaustion, resource ceilings,
	// parse errors, recovered faults). An incomplete report never claims
	// Safe, but any Findings it carries are real.
	Incomplete bool `json:"incomplete,omitempty"`
	// Limits names the degradation causes of an Incomplete report.
	Limits []string `json:"limits,omitempty"`
	// Symptoms is the TS baseline's error count: one per vulnerable
	// statement.
	Symptoms int `json:"symptoms"`
	// Groups is the BMC error-introduction count: the minimal number of
	// runtime guards needed.
	Groups int `json:"groups"`
	// Findings lists every error trace.
	Findings []Finding `json:"findings,omitempty"`
	// Patches is the minimal fixing set.
	Patches []PatchPoint `json:"patches,omitempty"`
	// Warnings lists analysis approximations (dynamic includes, variable
	// variables, recursion cutoffs).
	Warnings []string `json:"warnings,omitempty"`
	// Text is the rendered human-readable report.
	Text string `json:"-"`
	// Profile is the run's telemetry summary: stage wall times, solver
	// effort, per-assertion breakdown, degradation counts. It is always
	// populated (profiling costs a few clock reads, no sink required) and
	// is serialized under the stable "profile" key. Its wall-clock fields
	// are the one intentionally nondeterministic part of a report: strip
	// Profile before comparing reports byte-for-byte across runs.
	Profile *RunProfile `json:"profile,omitempty"`
	// CompileTime, SolveTime, and CacheHit are views over Profile kept for
	// compatibility: the wall-clock durations of the two engine stages and
	// whether the front end was served from the compile cache. Excluded
	// from JSON — the same values marshal under "profile".
	CompileTime time.Duration `json:"-"`
	SolveTime   time.Duration `json:"-"`
	CacheHit    bool          `json:"-"`
	// StoreHit is set when the whole report was served from the
	// persistent result store (tier 2, see WithStore): nothing was
	// compiled or solved. Like CacheHit it is a view excluded from JSON;
	// the same fact marshals under "profile".
	StoreHit bool `json:"-"`
}

// Option configures Verify and Patch.
type Option func(*config) error

type config struct {
	pre *prelude.Prelude
	// policy is the active security policy (nil = bare default prelude,
	// the seed behavior); policyName/policyJSON record how it was
	// selected so the choice round-trips through ExportConfig and the
	// cluster wire format.
	policy       *policy.Compiled
	policyName   string
	policyJSON   string
	loader       func(string) ([]byte, error)
	dir          string
	unroll       int
	paperMode    bool
	blockAll     bool
	routine      string
	solver       sat.Options
	// solverMode, portfolioWidth, and warmStart are the verdict-neutral
	// halves of the SolverConfig surface; budgetViaSolver records whether
	// the conflict budget was last set through SolverConfig (vs the
	// deprecated WithBudget), so ExportConfig round-trips both spellings.
	solverMode      SolverMode
	portfolioWidth  int
	warmStart       bool
	budgetViaSolver bool
	maxCEX          int
	deadline     time.Duration
	limits       ResourceLimits
	parallelism  int
	workers      *core.Pool
	telemetry    *telemetry.Telemetry
	resultStore  store.Backend
	observer     func(*Report)
	fileVerifier FileVerifier
	incremental  bool
	depRecorder  func(depRecord)
	priorHints   map[string]priorHint
	// The prelude-shaping options also record their textual form so the
	// resolved configuration round-trips through the exported Config
	// (ExportConfig / WithConfig) — the prelude itself holds only the
	// merged lattice, not where its entries came from.
	preludeText   string
	extraPreludes []string
	sinkSpecs     []SinkSpec
	sanitizers    []string
	sources       []string
}

// WithPrelude replaces the default trust environment with a prelude parsed
// from the given text (see internal prelude format; the default covers the
// common PHP channels).
func WithPrelude(text string) Option {
	return func(c *config) error {
		p, err := prelude.Parse("option", []byte(text))
		if err != nil {
			return err
		}
		c.pre = p
		// Replacing the prelude discards earlier merged-in entries, so the
		// recorded forms reset too — Config mirrors the effective state.
		c.preludeText = text
		c.extraPreludes = nil
		c.sinkSpecs = nil
		c.sanitizers = nil
		c.sources = nil
		return nil
	}
}

// WithPolicy selects a built-in security policy by name (see Policies
// for the available set). The policy supplies the trust environment —
// lattice, sources, sinks, sanitizers — plus sink classes, per-context
// sink bounds, constant-argument sanitizer variants, and the repair
// guards the patcher chooses from. Later WithSink/WithSanitizer/
// WithSource options layer on top of the policy's prelude; a later
// WithPrelude replaces the prelude but keeps the policy's context rules.
func WithPolicy(name string) Option {
	return func(c *config) error {
		p, err := policy.Lookup(name)
		if err != nil {
			return err
		}
		c.policy = p
		c.policyName = name
		c.policyJSON = ""
		c.pre = p.Prelude()
		c.preludeText = ""
		c.extraPreludes = nil
		c.sinkSpecs = nil
		c.sanitizers = nil
		c.sources = nil
		return nil
	}
}

// WithPolicyJSON loads a custom policy from its JSON declaration (the
// format documented in DESIGN.md §15 and written by the built-in
// policies' MarshalJSON). name labels errors, usually the file path.
func WithPolicyJSON(name string, data []byte) Option {
	return func(c *config) error {
		p, err := policy.LoadJSON(name, data)
		if err != nil {
			return err
		}
		c.policy = p
		c.policyName = p.Name()
		c.policyJSON = string(data)
		c.pre = p.Prelude()
		c.preludeText = ""
		c.extraPreludes = nil
		c.sinkSpecs = nil
		c.sanitizers = nil
		c.sources = nil
		return nil
	}
}

// Policies lists the built-in security policies selectable with
// WithPolicy, in sorted order.
func Policies() []string { return policy.Names() }

// WithExtraPrelude merges additional prelude directives (sinks, sources,
// sanitizers, variable types) into the current environment — the
// project-specific prelude files of the paper.
func WithExtraPrelude(text string) Option {
	return func(c *config) error {
		extra, err := prelude.Parse("option", []byte(text))
		if err != nil {
			return err
		}
		if c.pre == nil {
			c.pre = prelude.Default()
		}
		// Re-parse over the existing lattice by registering directly.
		if err := mergeTextual(c.pre, extra); err != nil {
			return err
		}
		c.extraPreludes = append(c.extraPreludes, text)
		return nil
	}
}

// mergeTextual copies definitions from extra (parsed over its own lattice)
// into dst, translating safety types by element name, so user preludes
// need not re-declare the lattice.
func mergeTextual(dst, extra *prelude.Prelude) error {
	translate := func(t string) (int, error) {
		el, ok := dst.Lattice().Lookup(t)
		if !ok {
			return 0, fmt.Errorf("webssari: prelude type %q not in lattice %v", t, dst.Lattice())
		}
		return int(el), nil
	}
	for _, name := range extra.Vars() {
		el, err := translate(extra.Lattice().Name(extra.VarType(name)))
		if err != nil {
			return err
		}
		dst.SetVarType(name, lattice.Elem(el))
	}
	for _, s := range extra.Sinks() {
		el, err := translate(extra.Lattice().Name(s.Bound))
		if err != nil {
			return err
		}
		dst.AddSink(s.Name, lattice.Elem(el), s.Args...)
	}
	for _, s := range extra.Sources() {
		el, err := translate(extra.Lattice().Name(s.Type))
		if err != nil {
			return err
		}
		dst.AddSource(s.Name, lattice.Elem(el))
	}
	for _, s := range extra.Sanitizers() {
		el, err := translate(extra.Lattice().Name(s.Type))
		if err != nil {
			return err
		}
		dst.AddSanitizer(s.Name, lattice.Elem(el))
	}
	return nil
}

// WithSink registers an additional sensitive output channel whose listed
// 1-based argument positions (none = all) must receive trusted data —
// e.g. WithSink("DoSQL", 1) for the paper's PHP Surveyor example.
func WithSink(name string, args ...int) Option {
	return func(c *config) error {
		if c.pre == nil {
			c.pre = prelude.Default()
		}
		c.pre.AddSink(name, c.pre.Lattice().Top(), args...)
		c.sinkSpecs = append(c.sinkSpecs, SinkSpec{Name: name, Args: append([]int(nil), args...)})
		return nil
	}
}

// WithSanitizer registers an additional sanitization routine.
func WithSanitizer(name string) Option {
	return func(c *config) error {
		if c.pre == nil {
			c.pre = prelude.Default()
		}
		c.pre.AddSanitizer(name, c.pre.Lattice().Bottom())
		c.sanitizers = append(c.sanitizers, name)
		return nil
	}
}

// WithSource registers an additional untrusted input channel.
func WithSource(name string) Option {
	return func(c *config) error {
		if c.pre == nil {
			c.pre = prelude.Default()
		}
		c.pre.AddSource(name, c.pre.Lattice().Top())
		c.sources = append(c.sources, name)
		return nil
	}
}

// WithLoader resolves include/require paths, enabling cross-file analysis.
func WithLoader(loader func(path string) ([]byte, error)) Option {
	return func(c *config) error {
		c.loader = loader
		return nil
	}
}

// WithDir sets the base directory for relative include paths and enables a
// filesystem loader rooted there.
func WithDir(dir string) Option {
	return func(c *config) error {
		c.dir = dir
		if c.loader == nil {
			c.loader = func(path string) ([]byte, error) { return os.ReadFile(path) }
		}
		return nil
	}
}

// WithLoopUnroll sets the number of selection copies loops deconstruct
// into (default 1, the paper's single pass).
func WithLoopUnroll(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("webssari: loop unroll must be ≥ 1, got %d", n)
		}
		c.unroll = n
		return nil
	}
}

// WithPaperEnumeration enables the paper's exact §3.3.2 enumeration
// behaviour: prior assertions are assumed to hold while checking later
// ones, and blocking clauses negate the full BN assignment.
func WithPaperEnumeration() Option {
	return func(c *config) error {
		c.paperMode = true
		c.blockAll = true
		return nil
	}
}

// WithRoutine sets the runtime-guard routine name Patch wraps fix points
// in (default "websafe", registered as a sanitizer in the default
// prelude).
func WithRoutine(name string) Option {
	return func(c *config) error {
		c.routine = name
		return nil
	}
}

// WithMaxCounterexamples bounds enumeration per assertion.
func WithMaxCounterexamples(n int) Option {
	return func(c *config) error {
		c.maxCEX = n
		return nil
	}
}

// WithDeadline bounds each verification unit's wall-clock time. When the
// deadline expires mid-run the pipeline does not abort: assertions not
// yet decided degrade to Unknown and the report comes back with
// VerdictIncomplete — never a Safe claim over a partially checked model.
// Under VerifyDir the deadline applies per file, so one pathological
// file cannot starve the rest of the project.
func WithDeadline(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("webssari: deadline must be positive, got %v", d)
		}
		c.deadline = d
		return nil
	}
}

// WithBudget caps SAT search effort at maxConflicts conflicts per solver
// call (0 restores the default: unlimited). An exhausted budget degrades
// the assertion to Unknown and the report to VerdictIncomplete; it never
// silently reads as "no counterexample".
//
// Deprecated: use WithSolverConfig(SolverConfig{MaxConflicts: n}) — the
// unified solver surface that also selects the dispatch mode, restart
// budget, portfolio width, and warm starting. WithBudget remains a
// forwarding shim and the two compose (later options win).
func WithBudget(maxConflicts uint64) Option {
	return func(c *config) error {
		c.solver.MaxConflicts = maxConflicts
		c.budgetViaSolver = false
		return nil
	}
}

// ResourceLimits caps model and formula sizes so pathological inputs
// degrade into an Incomplete verdict instead of exhausting memory. Zero
// fields keep the engine defaults; negative values disable a cap.
type ResourceLimits struct {
	// MaxStatements caps the AI command count after loop deconstruction
	// and call unfolding (default flow.DefaultMaxCmds).
	MaxStatements int
	// MaxCNFVars and MaxCNFClauses cap each assertion's encoded formula
	// (defaults core.DefaultMaxVars / core.DefaultMaxClauses).
	MaxCNFVars    int
	MaxCNFClauses int
}

// WithResourceLimits overrides the engine's hard resource caps.
func WithResourceLimits(l ResourceLimits) Option {
	return func(c *config) error {
		c.limits = l
		return nil
	}
}

// WithParallelism bounds the worker pool used by project verification
// (VerifyDir) and by the per-assertion fan-out inside each file. The
// default (unset) is GOMAXPROCS for VerifyDir and sequential for
// single-file Verify/Patch; 1 forces a fully sequential run. Reports are
// identical at every parallelism level — every stage is deterministic and
// results are assembled in file/assertion order.
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("webssari: parallelism must be ≥ 1, got %d", n)
		}
		c.parallelism = n
		return nil
	}
}

// withWorkers hands a file-level worker's shared pool down to its
// assertion-level fan-out (see core.Options.Workers for the non-blocking
// discipline that makes the sharing deadlock-free).
func withWorkers(p *core.Pool) Option {
	return func(c *config) error {
		c.workers = p
		return nil
	}
}

// Telemetry is the observability sink a run reports into: a metrics
// registry (counters, gauges, histograms — exposable over HTTP via
// ServeMetrics) and a span tracer (exportable as Chrome trace-event JSON
// via WriteTrace). One Telemetry is safe for concurrent use across a
// whole parallel project run. See internal/telemetry for the full API.
type Telemetry = telemetry.Telemetry

// RunProfile is the exportable performance summary attached to every
// Report and ProjectReport (JSON key "profile").
type RunProfile = telemetry.RunProfile

// NewTelemetry returns a Telemetry collecting both metrics and spans.
func NewTelemetry() *Telemetry { return telemetry.New() }

// ServeMetrics starts an HTTP server on addr (":0" picks a free port;
// the chosen address is in the returned server's Addr) exposing the
// telemetry's metrics as a Prometheus text page at /metrics, an expvar
// view at /debug/vars, the pprof handlers under /debug/pprof/, and —
// when the telemetry carries a log flight recorder — recent structured
// log events at /debug/events.
func ServeMetrics(addr string, t *Telemetry) (*telemetry.Server, error) {
	var reg *telemetry.Registry
	var rec *telemetry.FlightRecorder
	if t != nil {
		reg = t.Metrics
		rec = t.Logs
	}
	return telemetry.Serve(addr, reg, rec)
}

// WriteTrace writes every span the telemetry collected as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto.
func WriteTrace(t *Telemetry, w io.Writer) error {
	if t == nil || t.Tracer == nil {
		return fmt.Errorf("webssari: no tracer attached")
	}
	return t.Tracer.WriteJSON(w)
}

// WithTelemetry attaches an observability sink to the run: every
// pipeline stage records spans and metrics into it. Without this option
// runs are uninstrumented (Profile is still populated — its collection
// is built into the engine and costs only a few clock reads).
func WithTelemetry(t *Telemetry) Option {
	return func(c *config) error {
		c.telemetry = t
		return nil
	}
}

func buildConfig(opts []Option) (*config, error) {
	c := &config{}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.pre == nil {
		c.pre = prelude.Default()
	}
	return c, nil
}

func (c *config) engineOptions(ctx context.Context) core.Options {
	return core.Options{
		Flow: flow.Options{
			Prelude:    c.pre,
			Policy:     c.policy,
			Loader:     c.loader,
			Dir:        c.dir,
			LoopUnroll: c.unroll,
			MaxCmds:    c.limits.MaxStatements,
		},
		Ctx:                ctx,
		MaxVars:            c.limits.MaxCNFVars,
		MaxClauses:         c.limits.MaxCNFClauses,
		AssumePriorAsserts: c.paperMode,
		BlockAllBN:         c.blockAll,
		MaxCounterexamples: c.maxCEX,
		Solver:             c.solver,
		Mode:               c.coreMode(),
		PortfolioWidth:     c.portfolioWidth,
		Parallelism:        c.parallelism,
		Workers:            c.workers,
	}
}

// coreMode maps the public SolverMode onto the engine's dispatch enum.
func (c *config) coreMode() core.SolveMode {
	switch c.solverMode {
	case SolverShared:
		return core.ModeShared
	case SolverPortfolio:
		return core.ModePortfolio
	default:
		return core.ModePerAssert
	}
}

// applyDeadline derives the unit's context from the configured deadline.
func (c *config) applyDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.deadline > 0 {
		return context.WithTimeout(ctx, c.deadline)
	}
	return ctx, func() {}
}

// engineErr maps an analysis failure to the public *EngineError.
func engineErr(name string, errs []error) error {
	if len(errs) == 0 {
		return &EngineError{Stage: "analysis", File: name, Err: errors.New("analysis failed")}
	}
	var se *core.StageError
	if errors.As(errs[0], &se) {
		return &EngineError{Stage: se.Stage, File: name, Err: se.Err}
	}
	return &EngineError{Stage: "analysis", File: name, Err: errs[0]}
}

// defaultCompileCache memoizes the engine front end across every
// Verify/Patch/VerifyDir call in the process: repeated verification of
// unchanged source (a Verify followed by a Patch, a project re-scan)
// skips parse/filter/rename/constraint generation entirely.
var defaultCompileCache = core.NewCompileCache(0)

// CompileCacheStats returns the process-wide compile cache's cumulative
// hit and miss counts.
func CompileCacheStats() (hits, misses int64) { return defaultCompileCache.Stats() }

// ResetCompileCache empties the process-wide compile cache and zeroes its
// counters. Verification results never depend on cache state; resetting
// only affects performance and the Stats counters.
func ResetCompileCache() { defaultCompileCache.Reset() }

// analysisStats carries per-call stage timings and cache provenance from
// runAnalysis to the Report.
type analysisStats struct {
	compileTime  time.Duration
	solveTime    time.Duration
	cacheHit     bool
	compileStats core.CompileStats
	solverMode   SolverMode
}

// runAnalysis drives the core pipeline — a cached Compile followed by
// Solve — and the counterexample analysis under ctx, recovering any panic
// that escapes a stage boundary into a structured *EngineError so a
// single pathological input can never crash a project-wide run.
//
// When cfg carries a Telemetry it is attached to ctx here — the single
// point all entry paths (Verify, Patch, VerifyToHTML, VerifyDir workers)
// funnel through — and the whole file gets a root span on a fresh trace
// lane, under which the engine's stage spans nest.
func runAnalysis(ctx context.Context, src []byte, name string, cfg *config) (res *core.Result, analysis *fixing.Analysis, st analysisStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, analysis = nil, nil
			err = &EngineError{Stage: "analysis", File: name, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	ctx = telemetry.WithTelemetry(ctx, cfg.telemetry)
	ctx, fsp := telemetry.StartRootSpan(ctx, "verify_file", "file", name)
	defer fsp.End()
	eopts := cfg.engineOptions(ctx)
	st.solverMode = cfg.solverMode
	start := time.Now()
	prog, errs, hit := defaultCompileCache.Compile(name, src, eopts)
	st.compileTime = time.Since(start)
	st.cacheHit = hit
	if prog == nil {
		telemetry.Counter(ctx, telemetry.MetricFilesFailed).Inc()
		return nil, nil, st, engineErr(name, errs)
	}
	st.compileStats = prog.Stats
	if hint, ok := cfg.priorHints[name]; ok {
		eopts.KnownSafeChecks = hint.knownSafeChecks(prog)
	}
	cfg.wireWarmStart(&eopts, name, src)
	start = time.Now()
	res = core.Solve(ctx, prog, eopts)
	st.solveTime = time.Since(start)
	analysis = fixing.Analyze(res)
	telemetry.Counter(ctx, telemetry.MetricFilesVerified).Inc()
	return res, analysis, st, nil
}

// finish stamps the stage timings, cache provenance, and the run profile
// onto a report.
func (st analysisStats) finish(rep *Report, res *core.Result) *Report {
	rep.CompileTime = st.compileTime
	rep.SolveTime = st.solveTime
	rep.CacheHit = st.cacheHit
	rep.Profile = st.profile(res)
	return rep
}

// profile builds the per-file RunProfile from the run's timings and the
// engine result's per-assertion records.
func (st analysisStats) profile(res *core.Result) *RunProfile {
	p := &RunProfile{
		CompileWallNS: st.compileTime.Nanoseconds(),
		SolveWallNS:   st.solveTime.Nanoseconds(),
		CacheHit:      st.cacheHit,
	}
	if !st.cacheHit {
		// A cache hit re-used another compile's work; counting its stage
		// times again would double-book them in project aggregates.
		cs := st.compileStats
		p.AddStage("parse", time.Duration(cs.ParseNS))
		p.AddStage("lower", time.Duration(cs.LowerNS))
		p.AddStage("flow", time.Duration(cs.FlowNS))
		p.AddStage("rename", time.Duration(cs.RenameNS))
		p.AddStage("constraints", time.Duration(cs.ConstraintsNS))
	}
	if res == nil {
		return p
	}
	if st.solverMode != "" && st.solverMode != SolverPerAssert {
		p.SolverMode = string(st.solverMode)
	}
	if ws := res.WarmStart; ws != nil {
		p.WarmStart = &telemetry.WarmStartProfile{
			Attempted:       ws.Attempted,
			Hit:             ws.Hit,
			ImportedClauses: ws.ImportedClauses,
			ExportedClauses: ws.ExportedClauses,
		}
	}
	if pf := res.Portfolio; pf != nil && pf.Races > 0 {
		pp := &telemetry.PortfolioProfile{Races: pf.Races, WinsByLane: make(map[string]int, len(pf.WinsByLane))}
		for lane, n := range pf.WinsByLane {
			pp.WinsByLane[fmt.Sprintf("%d", lane)] = n
		}
		p.Portfolio = pp
	}
	for i, ar := range res.PerAssert {
		// A reused assertion ran neither encoder nor solver; counting it
		// would make the stage table disagree with the trace's spans.
		if !ar.Reused {
			p.AddStage("encode", ar.EncodeTime)
		}
		// A zero SearchTime means no SAT search ran at all (the encoder
		// proved the assertion trivially unsat) — counting it would make
		// the stage table disagree with the trace's search spans.
		if ar.SearchTime > 0 {
			p.AddStage("search", ar.SearchTime)
		}
		sp := telemetry.SolverProfile{
			Decisions:      ar.SolverStats.Decisions,
			Propagations:   ar.SolverStats.Propagations,
			Conflicts:      ar.SolverStats.Conflicts,
			Restarts:       ar.SolverStats.Restarts,
			LearntClauses:  ar.SolverStats.LearntClauses,
			DeletedClauses: ar.SolverStats.DeletedClauses,
			MinimizedLits:  ar.SolverStats.MinimizedLits,
			MaxDepth:       ar.SolverStats.MaxDepth,
		}
		p.Solver.Add(sp)
		ap := telemetry.AssertProfile{
			Index:           i,
			Vars:            ar.EncodedVars,
			Clauses:         ar.EncodedClauses,
			Counterexamples: len(ar.Counterexamples),
			Unknown:         ar.Unknown,
			Reused:          ar.Reused,
			Cause:           ar.Cause,
			EncodeNS:        ar.EncodeTime.Nanoseconds(),
			SearchNS:        ar.SearchTime.Nanoseconds(),
			Solver:          sp,
		}
		if ar.Assert != nil {
			ap.Sink = ar.Assert.Origin.Fn
			pos := ar.Assert.Origin.Site.Pos
			ap.Site = fmt.Sprintf("%s:%d:%d", pos.File, pos.Line, pos.Col)
		}
		p.Assertions = append(p.Assertions, ap)
		if ar.Reused {
			p.ReusedAsserts++
		}
		if ar.Unknown {
			p.AddDegraded(telemetry.CauseLabel(ar.Cause))
		}
	}
	return p
}

// Verify analyzes one PHP source text and returns its report. A non-nil
// error means the analysis itself could not run (unparseable prelude,
// fatal engine fault); findings are reported in the Report, not as
// errors.
func Verify(src []byte, name string, opts ...Option) (*Report, error) {
	return VerifyContext(context.Background(), src, name, opts...)
}

// VerifyContext is Verify under a context: cancellation or deadline
// expiry degrades undecided assertions to Unknown and yields a report
// with VerdictIncomplete rather than aborting.
//
// With a WithStore result store attached, the store is consulted first:
// a valid persisted report for identical content under an identical
// configuration is returned directly (Report.StoreHit), and complete
// fresh reports are written back for future runs — including runs in
// future processes.
func VerifyContext(ctx context.Context, src []byte, name string, opts ...Option) (*Report, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	var key string
	if cfg.resultStore != nil {
		tctx := telemetry.WithTelemetry(ctx, cfg.telemetry)
		key = resultKey(name, src, cfg)
		if rep, env, ok := storeGet(tctx, cfg, name, key); ok {
			cfg.recordDeps(name, src, key, nil, env)
			return rep, nil
		}
	}
	ctx, cancel := cfg.applyDeadline(ctx)
	defer cancel()
	res, analysis, st, err := runAnalysis(ctx, src, name, cfg)
	if err != nil {
		return nil, err
	}
	rep := st.finish(buildReport(res, analysis), res)
	if cfg.resultStore != nil {
		storePut(telemetry.WithTelemetry(ctx, cfg.telemetry), cfg, name, key, rep, res)
	}
	if rep.Incomplete {
		// Incomplete reports are never persisted; an empty key makes the
		// dependency graph re-plan the file instead of trusting a miss.
		key = ""
	}
	cfg.recordDeps(name, src, key, res, nil)
	return rep, nil
}

// Patch verifies the source and, when vulnerable, returns a secured
// version with sanitization runtime guards wrapped around the minimal
// fixing set. Safe inputs are returned unmodified.
func Patch(src []byte, name string, opts ...Option) ([]byte, *Report, error) {
	return PatchContext(context.Background(), src, name, opts...)
}

// PatchContext is Patch under a context (see VerifyContext).
func PatchContext(ctx context.Context, src []byte, name string, opts ...Option) ([]byte, *Report, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := cfg.applyDeadline(ctx)
	defer cancel()
	// The front end comes from the compile cache, so a Patch directly
	// after a Verify of the same source re-uses the compiled Program and
	// only re-runs the solver and fixing analysis.
	res, analysis, st, err := runAnalysis(ctx, src, name, cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := st.finish(buildReport(res, analysis), res)
	if res.Safe() {
		return src, rep, nil
	}
	fixes := analysis.GreedyMinimalFix()
	patched, perrs := patch.PatchSourceGuards(name, src, fixes, cfg.routine,
		guardSelector(cfg, analysis, fixes))
	if len(perrs) > 0 {
		return patched, rep, &EngineError{Stage: "patch", File: name, Err: perrs[0]}
	}
	return patched, rep, nil
}

// guardSelector chooses a per-fix-point guard routine under the active
// policy. Each constraint is attributed to the first chosen fix point
// among its options (the same attribution report.Build uses to cluster
// findings into groups); a fix point's guard must then be adequate for
// every (context, bound) pair it repairs, so SelectGuard picks the
// strongest-needed context guard. Without a policy — or with an
// explicitly configured routine — every fix point keeps the default
// behavior ("" falls back to the Patcher routine).
func guardSelector(cfg *config, analysis *fixing.Analysis, fixes []*fixing.FixPoint) func(*fixing.FixPoint) string {
	if cfg.policy == nil || cfg.routine != "" {
		return func(*fixing.FixPoint) string { return "" }
	}
	chosen := make(map[string]bool, len(fixes))
	for _, f := range fixes {
		chosen[f.Key()] = true
	}
	violations := make(map[string][]policy.Violation)
	for _, con := range analysis.Constraints {
		for _, opt := range con.Options {
			if !chosen[opt.Key()] {
				continue
			}
			violations[opt.Key()] = append(violations[opt.Key()], policy.Violation{
				Context: con.Cex.Assert.Origin.Context,
				Bound:   con.Cex.Assert.Origin.Bound,
			})
			break
		}
	}
	return func(f *fixing.FixPoint) string {
		if g, ok := cfg.policy.SelectGuard(violations[f.Key()]); ok {
			return g
		}
		return ""
	}
}

// VerifyToHTML verifies the source and writes a self-contained,
// cross-referenced HTML report (in the spirit of the PHPXREF-style
// validation aids of the paper's §5) to w.
func VerifyToHTML(src []byte, name string, w io.Writer, opts ...Option) (*Report, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	ctx, cancel := cfg.applyDeadline(context.Background())
	defer cancel()
	res, analysis, st, err := runAnalysis(ctx, src, name, cfg)
	if err != nil {
		return nil, err
	}
	rep := report.Build(res, analysis)
	rep.Profile = st.profile(res)
	if err := rep.WriteHTML(w, map[string][]byte{name: src}); err != nil {
		return nil, &EngineError{Stage: "report", File: name, Err: err}
	}
	return st.finish(buildReport(res, analysis), res), nil
}

// SymptomCount runs only the fast TS baseline and returns its error count.
func SymptomCount(src []byte, name string, opts ...Option) (int, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return 0, err
	}
	unit, errs := ir.LowerSource(name, src)
	if unit == nil {
		if len(errs) > 0 {
			return 0, errs[0]
		}
		return 0, &EngineError{Stage: "lower", File: name, Err: errors.New("lowering produced no unit")}
	}
	return typestate.CountUnit(unit, cfg.engineOptions(context.Background()).Flow)
}

func buildReport(res *core.Result, analysis *fixing.Analysis) *Report {
	rep := report.Build(res, analysis)
	out := &Report{
		File:       rep.File,
		Safe:       rep.Safe,
		Incomplete: rep.Incomplete,
		Limits:     rep.Limits,
		Symptoms:   rep.SymptomCount(),
		Groups:     rep.GroupCount(),
		Warnings:   rep.Warnings,
		Text:       rep.String(),
	}
	switch {
	case !res.Safe():
		// Counterexamples exist — even ones the fixing analysis could not
		// group into patch points (e.g. variable variables).
		out.Verdict = VerdictUnsafe
	case rep.Incomplete:
		out.Verdict = VerdictIncomplete
	default:
		out.Verdict = VerdictSafe
	}
	for gi, g := range rep.Groups {
		pos, _ := g.Fix.Span()
		varName := ""
		if g.Fix.Set != nil {
			varName = g.Fix.Set.Origin.SrcVar
		}
		out.Patches = append(out.Patches, PatchPoint{
			Location:    Location{File: pos.File, Line: pos.Line, Col: pos.Col},
			Var:         varName,
			Description: g.Fix.Describe(),
			Findings:    len(g.Cexs),
		})
		for _, cex := range g.Cexs {
			f := Finding{
				Sink:  cex.Assert.Origin.Fn,
				Class: findingClass(cex.Assert.Origin),
				Location: Location{
					File: cex.Assert.Origin.Site.Pos.File,
					Line: cex.Assert.Origin.Site.Pos.Line,
					Col:  cex.Assert.Origin.Site.Pos.Col,
				},
				Group: gi,
			}
			for _, step := range cex.Steps {
				if res.AI.Lat.Lt(step.Value, cex.Assert.Bound) {
					continue
				}
				name := step.Set.Origin.SrcVar
				if name == "" {
					name = step.Set.V.Name
				}
				f.Trace = append(f.Trace, TraceStep{
					Location: Location{
						File: step.Set.Origin.Site.Pos.File,
						Line: step.Set.Origin.Site.Pos.Line,
						Col:  step.Set.Origin.Site.Pos.Col,
					},
					Var:   name,
					Value: res.AI.Lat.Name(step.Value),
				})
			}
			out.Findings = append(out.Findings, f)
		}
	}
	sort.SliceStable(out.Findings, func(i, j int) bool {
		if out.Findings[i].Location.Line != out.Findings[j].Location.Line {
			return out.Findings[i].Location.Line < out.Findings[j].Location.Line
		}
		return out.Findings[i].Location.Col < out.Findings[j].Location.Col
	})
	return out
}

// ClassOf names the vulnerability class a sink belongs to (e.g. "SQL
// injection" for mysql_query).
func ClassOf(sink string) string {
	return report.VulnClass(sink)
}

// findingClass prefers the class the active policy declared on the sink;
// the classic name-based table covers asserts from plain preludes.
func findingClass(origin *ai.Assert) string {
	if origin.Class != "" {
		return origin.Class
	}
	return ClassOf(origin.Fn)
}
