package webssari_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webssari"
	"webssari/internal/corpus"
)

// writeProject materializes a deterministic synthetic corpus project on
// disk and returns its directory.
func writeProject(t testing.TB, prof corpus.Profile, seed uint64) string {
	t.Helper()
	dir := t.TempDir()
	proj := corpus.Generate(prof, seed)
	for _, name := range proj.FileNames() {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, proj.Sources[name], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// projectJSON renders a ProjectReport the way the CLI's -json mode does,
// making "byte-identical" a meaningful comparison. Run profiles are
// stripped first: their wall-clock fields are the one intentionally
// nondeterministic part of a report, so the determinism contract is
// "byte-identical with profiles removed".
func projectJSON(t *testing.T, pr *webssari.ProjectReport) string {
	t.Helper()
	stripProfiles(pr)
	data, err := json.MarshalIndent(pr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// stripProfiles removes the (timing-bearing, nondeterministic) profiles
// from a project report and all its file reports in place.
func stripProfiles(pr *webssari.ProjectReport) {
	pr.Profile = nil
	for _, rep := range pr.Files {
		rep.Profile = nil
	}
}

// TestParallelVerifyDirDeterminism is the PR's central acceptance test:
// VerifyDir with 8 workers over a corpus project produces byte-identical
// ProjectReport JSON to the fully sequential run — including the cache
// hit/miss counters, which stay deterministic because concurrent compiles
// of identical content coalesce. The cache is reset before each run so
// both start cold.
func TestParallelVerifyDirDeterminism(t *testing.T) {
	dir := writeProject(t, corpus.Profile{
		Name: "determinism", TS: 14, BMC: 5, Files: 8, Statements: 400,
	}, 2004)
	// An unparseable file exercises failure determinism too.
	if err := os.WriteFile(filepath.Join(dir, "broken.php"), []byte("<?php if ("), 0o644); err != nil {
		t.Fatal(err)
	}

	webssari.ResetCompileCache()
	seq, err := webssari.VerifyDir(dir, webssari.WithParallelism(1))
	if err != nil {
		t.Fatalf("sequential VerifyDir: %v", err)
	}
	seqJSON := projectJSON(t, seq)

	webssari.ResetCompileCache()
	par, err := webssari.VerifyDir(dir, webssari.WithParallelism(8))
	if err != nil {
		t.Fatalf("parallel VerifyDir: %v", err)
	}
	parJSON := projectJSON(t, par)

	if seqJSON != parJSON {
		t.Fatalf("parallel report differs from sequential:\n--- sequential ---\n%s\n--- parallel (j=8) ---\n%s",
			seqJSON, parJSON)
	}
	if len(seq.Files) == 0 || seq.VulnerableFiles == 0 {
		t.Fatalf("degenerate corpus: %d files, %d vulnerable — determinism check proved nothing",
			len(seq.Files), seq.VulnerableFiles)
	}
	if par.CacheMisses == 0 {
		t.Fatal("cold parallel run recorded zero cache misses")
	}
}

// TestParallelVerifyDirDeadlineDegrades: per-file deadlines expiring
// while the pool is running 8 workers must degrade every file to an
// Incomplete verdict (the CLI's exit code 3) — never deadlock, never
// claim Safe, never error out the project.
func TestParallelVerifyDirDeadlineDegrades(t *testing.T) {
	dir := writeProject(t, corpus.Profile{
		Name: "deadline", TS: 10, BMC: 4, Files: 6, Statements: 300,
	}, 7)

	done := make(chan struct{})
	var pr *webssari.ProjectReport
	var err error
	go func() {
		defer close(done)
		pr, err = webssari.VerifyDir(dir,
			webssari.WithParallelism(8),
			webssari.WithDeadline(time.Nanosecond))
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("VerifyDir deadlocked under mid-pool deadline expiry")
	}
	if err != nil {
		t.Fatalf("VerifyDir errored instead of degrading: %v", err)
	}
	if got := pr.Verdict(); got != webssari.VerdictIncomplete {
		t.Fatalf("project verdict = %q, want %q (exit code 3)", got, webssari.VerdictIncomplete)
	}
	if pr.VulnerableFiles != 0 {
		t.Fatalf("%d files reported vulnerable though no assertion was ever decided", pr.VulnerableFiles)
	}
	// Every file with assertions must have degraded; only sink-free filler
	// files may legitimately still read Safe.
	if pr.IncompleteFiles == 0 {
		t.Fatal("no file degraded to Incomplete under an instantly-expired deadline")
	}
}

// TestParallelVerifyDirCancelledBeforeDispatch: a parent context already
// cancelled when dispatch begins records every file as a deadline failure
// instead of blocking on pool slots — the PR-1 fault-isolation contract
// under the new concurrent dispatcher.
func TestParallelVerifyDirCancelledBeforeDispatch(t *testing.T) {
	dir := writeProject(t, corpus.Profile{
		Name: "cancelmid", TS: 8, BMC: 3, Files: 12, Statements: 400,
	}, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, err := webssari.VerifyDirContext(ctx, dir, webssari.WithParallelism(4))
	if err != nil {
		t.Fatalf("cancelled VerifyDirContext errored: %v", err)
	}
	if len(pr.Failures) == 0 {
		t.Fatal("cancelled run recorded no failures")
	}
	for _, fail := range pr.Failures {
		if fail.Stage != "deadline" {
			t.Fatalf("failure stage = %q, want deadline: %+v", fail.Stage, fail)
		}
	}
	if got := pr.Verdict(); got != webssari.VerdictIncomplete {
		t.Fatalf("verdict = %q, want %q", got, webssari.VerdictIncomplete)
	}
}

// TestVerifyParallelAssertionsMatchesSequential covers the single-file
// fan-out: one file with many independent assertions verified at -j 8
// must produce the identical report to the sequential run.
func TestVerifyParallelAssertionsMatchesSequential(t *testing.T) {
	src := "<?php\n"
	for i := 0; i < 10; i++ {
		src += fmt.Sprintf("$v%d = $_GET['k%d'];\nif ($c%d) { $v%d = htmlspecialchars($v%d); }\necho $v%d;\n",
			i, i, i, i, i, i)
	}
	webssari.ResetCompileCache()
	seq, err := webssari.Verify([]byte(src), "many.php")
	if err != nil {
		t.Fatal(err)
	}
	webssari.ResetCompileCache()
	par, err := webssari.Verify([]byte(src), "many.php", webssari.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	// Profile timings are the one nondeterministic report field; the rest
	// must match byte-for-byte.
	seq.Profile, par.Profile = nil, nil
	seqJSON, _ := json.Marshal(seq)
	parJSON, _ := json.Marshal(par)
	if string(seqJSON) != string(parJSON) {
		t.Fatalf("parallel single-file report differs:\n%s\nvs\n%s", seqJSON, parJSON)
	}
}
