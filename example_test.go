package webssari_test

import (
	"fmt"

	"webssari"
)

// ExampleVerify verifies the paper's Figure 3 vulnerability (SQL injection
// through the HTTP referer) and prints the grouped finding.
func ExampleVerify() {
	src := []byte(`<?php
$sql = "INSERT INTO track_temp VALUES('$HTTP_REFERER');";
mysql_query($sql);
?>`)
	rep, err := webssari.Verify(src, "track.php")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("safe=%v symptoms=%d groups=%d\n", rep.Safe, rep.Symptoms, rep.Groups)
	for _, f := range rep.Findings {
		fmt.Printf("%s via %s at line %d\n", f.Class, f.Sink, f.Location.Line)
	}
	// Output:
	// safe=false symptoms=1 groups=1
	// SQL injection via mysql_query at line 3
}

// ExamplePatch secures a vulnerable page: the minimal fixing set is
// wrapped in the websafe runtime guard and the result verifies safe.
func ExamplePatch() {
	src := []byte(`<?php
$sid = $_GET['sid'];
mysql_query("SELECT * FROM g WHERE sid=$sid");
echo $sid;
?>`)
	patched, rep, err := webssari.Patch(src, "page.php")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("symptoms=%d guards=%d\n", rep.Symptoms, rep.Groups)
	fmt.Print(string(patched))
	// Output:
	// symptoms=2 guards=1
	// <?php
	// $sid = websafe($_GET['sid']);
	// mysql_query("SELECT * FROM g WHERE sid=$sid");
	// echo $sid;
	// ?>
}

// ExampleWithSink registers a project-specific sensitive function, as the
// paper's PHP Surveyor example (Figure 7) requires for DoSQL.
func ExampleWithSink() {
	src := []byte(`<?php
$sid = $_GET['sid'];
$iq = "SELECT * FROM groups WHERE sid=$sid";
DoSQL($iq);
?>`)
	rep, _ := webssari.Verify(src, "surveyor.php", webssari.WithSink("DoSQL", 1))
	fmt.Printf("safe=%v patch at: %s\n", rep.Safe, rep.Patches[0].Location)
	// Output:
	// safe=false patch at: surveyor.php:2:8
}
