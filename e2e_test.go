package webssari_test

// End-to-end property tests over randomly generated projects: for every
// vulnerable file the corpus generator emits, patching the minimal fixing
// set must (a) re-verify safe — the static guarantee — and (b) stop all
// tainted data from reaching sinks when the patched file is *executed*
// with attacker-controlled inputs — the dynamic guarantee the paper's
// runtime guards provide.

import (
	"fmt"
	"testing"

	"webssari"
	"webssari/internal/corpus"
	"webssari/internal/runtime"
)

// seedAttack fills every request superglobal the generator may read with
// attacker payloads.
func seedAttack(in *runtime.Interp) {
	payload := `'"><script>alert(1)</script>; DROP TABLE users --`
	for i := 0; i < 128; i++ {
		key := fmt.Sprintf("p%d", i)
		in.Globals["_GET"].Set(key, runtime.Tainted(payload))
		in.Globals["_POST"].Set(key, runtime.Tainted(payload))
		in.Globals["_COOKIE"].Set(key, runtime.Tainted(payload))
		in.Globals["_REQUEST"].Set(key, runtime.Tainted(payload))
	}
}

func TestGeneratedProjectsPatchEndToEnd(t *testing.T) {
	profiles := []corpus.Profile{
		{Name: "e2e-tiny", TS: 2, BMC: 1, Files: 1, Statements: 30},
		{Name: "e2e-spread", TS: 9, BMC: 3, Files: 3, Statements: 120},
		{Name: "e2e-dense", TS: 12, BMC: 12, Files: 2, Statements: 90},
		{Name: "e2e-grouped", TS: 20, BMC: 2, Files: 4, Statements: 160},
	}
	for _, prof := range profiles {
		for seed := uint64(1); seed <= 3; seed++ {
			proj := corpus.Generate(prof, seed)
			for _, name := range proj.FileNames() {
				src := proj.Sources[name]

				rep, err := webssari.Verify(src, name)
				if err != nil {
					t.Fatalf("%s/%s: %v", prof.Name, name, err)
				}
				if rep.Safe {
					continue // clean padding file
				}

				// (a) Static: patch then re-verify.
				patched, _, err := webssari.Patch(src, name)
				if err != nil {
					t.Fatalf("%s/%s patch: %v", prof.Name, name, err)
				}
				rep2, err := webssari.Verify(patched, name)
				if err != nil {
					t.Fatalf("%s/%s re-verify: %v", prof.Name, name, err)
				}
				if !rep2.Safe {
					t.Fatalf("%s/%s (seed %d): patched file still unsafe\n%s",
						prof.Name, name, seed, patched)
				}

				// (b) Dynamic: the original leaks under attack, the patched
				// version does not.
				orig := runtime.New()
				seedAttack(orig)
				if err := orig.RunSource(name, src); err != nil {
					t.Fatalf("%s/%s run original: %v", prof.Name, name, err)
				}
				if len(orig.TaintedEvents()) == 0 {
					t.Fatalf("%s/%s: statically unsafe file leaked nothing at runtime",
						prof.Name, name)
				}

				fixed := runtime.New()
				seedAttack(fixed)
				if err := fixed.RunSource(name, patched); err != nil {
					t.Fatalf("%s/%s run patched: %v\n%s", prof.Name, name, err, patched)
				}
				if evs := fixed.TaintedEvents(); len(evs) != 0 {
					t.Fatalf("%s/%s (seed %d): patched file leaks at runtime: %v\n%s",
						prof.Name, name, seed, evs, patched)
				}
			}
		}
	}
}

// TestPatchedOutputCountsGuards checks the instrumentation-count claim on
// generated projects: the number of inserted guards equals the project's
// BMC group count, not its TS symptom count.
func TestPatchedOutputCountsGuards(t *testing.T) {
	prof := corpus.Profile{Name: "count", TS: 18, BMC: 3, Files: 1, Statements: 80}
	proj := corpus.Generate(prof, 5)
	totalGuards := 0
	for _, name := range proj.FileNames() {
		patched, rep, err := webssari.Patch(proj.Sources[name], name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Safe {
			continue
		}
		totalGuards += countOccurrences(string(patched), "websafe(")
	}
	if totalGuards != prof.BMC {
		t.Fatalf("guards = %d, want %d (BMC groups, not %d TS symptoms)",
			totalGuards, prof.BMC, prof.TS)
	}
}

func countOccurrences(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}
