package webssari

// This file is the v1 unified configuration surface: a plain-data
// Config struct covering the functional options, applied with
// WithConfig and recovered with ExportConfig. The With* options remain
// the primary API and Config is built on top of them, so the two can
// never drift; Config exists for callers that need configuration as
// data — the webssarid daemon (per-job options round-trip through it),
// config files, and tests.

import (
	"fmt"
	"time"
)

// SinkSpec names one additional sensitive output channel and the
// 1-based argument positions that must receive trusted data (empty =
// all arguments). The data form of WithSink.
type SinkSpec struct {
	Name string `json:"name"`
	Args []int  `json:"args,omitempty"`
}

// SolverMode selects how the SAT back end dispatches the assertions of
// one verification unit. The zero value ("" — equivalent to
// SolverPerAssert) is the classic behavior: every assertion gets a
// fresh solver over its own encoding. All modes produce byte-identical
// reports (profiles aside); they differ only in cost.
type SolverMode string

const (
	// SolverPerAssert solves each assertion on a fresh solver instance
	// over a per-assertion encoding — the default, and the mode with the
	// best per-assertion parallelism.
	SolverPerAssert SolverMode = "per-assert"
	// SolverShared solves every assertion under selector assumptions on
	// ONE incremental CDCL instance, so learnt clauses accumulate across
	// assertions (and, with SolverConfig.WarmStart, across runs). Best
	// for files with many assertions over shared program structure.
	SolverShared SolverMode = "shared"
	// SolverPortfolio keeps per-assertion dispatch but races K solver
	// configurations on each assertion the cheap probe cannot decide;
	// the first complete answer wins. Best against adversarial or
	// hard instances under a conflict budget.
	SolverPortfolio SolverMode = "portfolio"
)

// SolverModes lists the valid SolverMode values, in preference order —
// also the capability list the daemon advertises on /v1/version.
func SolverModes() []string {
	return []string{string(SolverPerAssert), string(SolverShared), string(SolverPortfolio)}
}

// SolverConfig is the unified solver configuration: dispatch mode,
// search budgets, portfolio width, and warm starting, applied together
// with WithSolverConfig. The zero value means "all defaults" (per-assert
// mode, unlimited budgets, no warm start). It is carried verbatim by
// Config.Solver, by the v1 wire schema's "solver" job field, and by the
// typed client.
//
// Mode, Portfolio, and WarmStart are verdict-neutral: they change cost,
// never report content, and are therefore excluded from result-store
// keys. MaxConflicts and MaxRestarts are verdict-shaping (an exhausted
// budget degrades assertions to Unknown) and participate in keys.
type SolverConfig struct {
	// Mode selects the dispatch strategy ("" = per-assert).
	Mode SolverMode `json:"mode,omitempty"`
	// MaxConflicts caps SAT effort per solver call in conflicts
	// (0 = unlimited). Supersedes the deprecated WithBudget /
	// Config.MaxConflicts, which remain as forwarding shims.
	MaxConflicts uint64 `json:"max_conflicts,omitempty"`
	// MaxRestarts caps SAT effort per solver call in restarts
	// (0 = unlimited).
	MaxRestarts uint64 `json:"max_restarts,omitempty"`
	// Portfolio is the lane count raced per hard assertion in portfolio
	// mode (0 = the default width; capped at the preset table size).
	Portfolio int `json:"portfolio,omitempty"`
	// WarmStart persists the shared solver's learnt clauses in the
	// attached result store and re-imports them when the same program is
	// verified again under the same configuration. Requires Mode ==
	// SolverShared and a WithStore/WithStoreBackend store; otherwise it
	// is inert.
	WarmStart bool `json:"warm_start,omitempty"`
}

// WithSolverConfig applies a SolverConfig. Zero fields leave the
// corresponding setting unchanged, so the option composes with earlier
// WithBudget/WithSolverConfig applications (later options win).
func WithSolverConfig(sc SolverConfig) Option {
	return func(c *config) error {
		if sc.Mode != "" {
			switch sc.Mode {
			case SolverPerAssert, SolverShared, SolverPortfolio:
				c.solverMode = sc.Mode
			default:
				return fmt.Errorf("webssari: unknown solver mode %q (valid: %v)", sc.Mode, SolverModes())
			}
		}
		if sc.MaxConflicts != 0 {
			c.solver.MaxConflicts = sc.MaxConflicts
			c.budgetViaSolver = true
		}
		if sc.MaxRestarts != 0 {
			c.solver.MaxRestarts = sc.MaxRestarts
		}
		if sc.Portfolio != 0 {
			if sc.Portfolio < 1 {
				return fmt.Errorf("webssari: portfolio width must be ≥ 1, got %d", sc.Portfolio)
			}
			c.portfolioWidth = sc.Portfolio
		}
		if sc.WarmStart {
			c.warmStart = true
		}
		return nil
	}
}

// Config is the declarative form of the verification options. The zero
// value means "all defaults" — identical to calling Verify with no
// options. Fields mirror the corresponding With* option; WithConfig
// applies them in a fixed canonical order (prelude replacement first,
// then merges and registrations, then scalar knobs), so a Config is an
// unambiguous description where an option list is order-sensitive.
//
// Function-valued configuration (WithLoader, WithFileObserver,
// withWorkers) is deliberately not representable: Config must survive
// JSON round-trips for the daemon. Dir implies the standard filesystem
// loader, which covers every file- and directory-based entry point.
type Config struct {
	// Policy selects a built-in security policy by name (WithPolicy);
	// PolicyJSON instead carries a complete custom policy declaration
	// (WithPolicyJSON) and wins when both are set. Policies apply before
	// every other trust-environment field, so Prelude/Sinks/... layer on
	// top exactly as the equivalent option order would.
	Policy     string `json:"policy,omitempty"`
	PolicyJSON string `json:"policy_json,omitempty"`
	// Prelude, when non-empty, replaces the default trust environment
	// (WithPrelude); ExtraPreludes are then merged in order
	// (WithExtraPrelude).
	Prelude       string   `json:"prelude,omitempty"`
	ExtraPreludes []string `json:"extra_preludes,omitempty"`
	// Sinks, Sanitizers, and Sources register additional channels
	// (WithSink / WithSanitizer / WithSource).
	Sinks      []SinkSpec `json:"sinks,omitempty"`
	Sanitizers []string   `json:"sanitizers,omitempty"`
	Sources    []string   `json:"sources,omitempty"`
	// Dir is the include base directory (WithDir).
	Dir string `json:"dir,omitempty"`
	// LoopUnroll is the loop deconstruction depth; 0 means the default
	// single pass (WithLoopUnroll).
	LoopUnroll int `json:"loop_unroll,omitempty"`
	// PaperEnumeration enables the paper's exact §3.3.2 enumeration
	// (WithPaperEnumeration).
	PaperEnumeration bool `json:"paper_enumeration,omitempty"`
	// Routine is the runtime-guard routine Patch inserts (WithRoutine).
	Routine string `json:"routine,omitempty"`
	// MaxCounterexamples bounds enumeration per assertion
	// (WithMaxCounterexamples).
	MaxCounterexamples int `json:"max_counterexamples,omitempty"`
	// Deadline bounds each verification unit's wall time (WithDeadline).
	Deadline time.Duration `json:"deadline,omitempty"`
	// MaxConflicts caps SAT effort per solver call (WithBudget).
	//
	// Deprecated: set Solver.MaxConflicts instead; this field remains a
	// forwarding shim (Solver.MaxConflicts wins when both are set).
	MaxConflicts uint64 `json:"max_conflicts,omitempty"`
	// Solver is the unified solver configuration (WithSolverConfig):
	// dispatch mode, search budgets, portfolio width, warm starting.
	Solver SolverConfig `json:"solver,omitempty"`
	// Limits caps model and formula sizes (WithResourceLimits).
	Limits ResourceLimits `json:"limits,omitempty"`
	// Parallelism bounds the worker pool (WithParallelism).
	Parallelism int `json:"parallelism,omitempty"`
	// Incremental enables delta re-verification under VerifyDir
	// (WithIncremental); it requires Store to do anything.
	Incremental bool `json:"incremental,omitempty"`
	// Store and Telemetry attach the persistent result store and the
	// observability sink (WithStore / WithTelemetry). Live handles, not
	// data: excluded from JSON and from ExportConfig equality concerns
	// beyond pointer identity.
	Store     *ResultStore `json:"-"`
	Telemetry *Telemetry   `json:"-"`
	// StoreBackend attaches a non-local result-store backend
	// (WithStoreBackend) — e.g. a cluster worker's remote view of the
	// coordinator's store. Ignored when Store is also set (the concrete
	// local store wins). Live handle, excluded from JSON like Store.
	StoreBackend StoreBackend `json:"-"`
}

// WithConfig applies an entire Config as one option. It composes with
// further With* options (later options win, as always); applying the
// zero Config is a no-op.
func WithConfig(cc Config) Option {
	return func(c *config) error {
		var opts []Option
		switch {
		case cc.PolicyJSON != "":
			name := cc.Policy
			if name == "" {
				name = "config"
			}
			opts = append(opts, WithPolicyJSON(name, []byte(cc.PolicyJSON)))
		case cc.Policy != "":
			opts = append(opts, WithPolicy(cc.Policy))
		}
		if cc.Prelude != "" {
			opts = append(opts, WithPrelude(cc.Prelude))
		}
		for _, text := range cc.ExtraPreludes {
			opts = append(opts, WithExtraPrelude(text))
		}
		for _, s := range cc.Sinks {
			opts = append(opts, WithSink(s.Name, s.Args...))
		}
		for _, name := range cc.Sanitizers {
			opts = append(opts, WithSanitizer(name))
		}
		for _, name := range cc.Sources {
			opts = append(opts, WithSource(name))
		}
		if cc.Dir != "" {
			opts = append(opts, WithDir(cc.Dir))
		}
		if cc.LoopUnroll > 0 {
			opts = append(opts, WithLoopUnroll(cc.LoopUnroll))
		}
		if cc.PaperEnumeration {
			opts = append(opts, WithPaperEnumeration())
		}
		if cc.Routine != "" {
			opts = append(opts, WithRoutine(cc.Routine))
		}
		if cc.MaxCounterexamples != 0 {
			opts = append(opts, WithMaxCounterexamples(cc.MaxCounterexamples))
		}
		if cc.Deadline > 0 {
			opts = append(opts, WithDeadline(cc.Deadline))
		}
		if cc.MaxConflicts != 0 {
			opts = append(opts, WithBudget(cc.MaxConflicts))
		}
		if cc.Solver != (SolverConfig{}) {
			opts = append(opts, WithSolverConfig(cc.Solver))
		}
		if cc.Limits != (ResourceLimits{}) {
			opts = append(opts, WithResourceLimits(cc.Limits))
		}
		if cc.Parallelism > 0 {
			opts = append(opts, WithParallelism(cc.Parallelism))
		}
		if cc.Incremental {
			opts = append(opts, WithIncremental())
		}
		if cc.Store != nil {
			opts = append(opts, WithStore(cc.Store))
		} else if cc.StoreBackend != nil {
			opts = append(opts, WithStoreBackend(cc.StoreBackend))
		}
		if cc.Telemetry != nil {
			opts = append(opts, WithTelemetry(cc.Telemetry))
		}
		for _, opt := range opts {
			if err := opt(c); err != nil {
				return fmt.Errorf("webssari: applying Config: %w", err)
			}
		}
		return nil
	}
}

// ExportConfig resolves an option list into its Config form, validating
// the options along the way. For every Config cc,
// ExportConfig(WithConfig(cc)) returns cc back (function-valued fields
// compare by pointer); for hand-built option lists the result is the
// canonical Config describing the same effective configuration.
func ExportConfig(opts ...Option) (Config, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return Config{}, err
	}
	return c.export(), nil
}

func (c *config) export() Config {
	cc := Config{
		Policy:             c.policyName,
		PolicyJSON:         c.policyJSON,
		Prelude:            c.preludeText,
		ExtraPreludes:      append([]string(nil), c.extraPreludes...),
		Sinks:              append([]SinkSpec(nil), c.sinkSpecs...),
		Sanitizers:         append([]string(nil), c.sanitizers...),
		Sources:            append([]string(nil), c.sources...),
		Dir:                c.dir,
		LoopUnroll:         c.unroll,
		PaperEnumeration:   c.paperMode,
		Routine:            c.routine,
		MaxCounterexamples: c.maxCEX,
		Deadline:           c.deadline,
		Solver: SolverConfig{
			Mode:        c.solverMode,
			MaxRestarts: c.solver.MaxRestarts,
			Portfolio:   c.portfolioWidth,
			WarmStart:   c.warmStart,
		},
		Limits: c.limits,
		Parallelism:        c.parallelism,
		Incremental:        c.incremental,
		Telemetry:          c.telemetry,
	}
	// The conflict budget exports under whichever field last set it, so
	// both the deprecated WithBudget/Config.MaxConflicts path and the
	// SolverConfig path round-trip exactly.
	if c.budgetViaSolver {
		cc.Solver.MaxConflicts = c.solver.MaxConflicts
	} else {
		cc.MaxConflicts = c.solver.MaxConflicts
	}
	// The store handle exports under the most specific field that holds
	// it: a local *ResultStore as Store, anything else as StoreBackend.
	switch s := c.resultStore.(type) {
	case nil:
	case *ResultStore:
		cc.Store = s
	default:
		cc.StoreBackend = s
	}
	return cc
}

// WithIncremental enables delta re-verification for VerifyDir runs that
// also carry a result store (WithStore): a persistent include-dependency
// graph, stored next to the results, lets the planner serve every file
// whose content and spliced includes are unchanged straight from the
// store — no stat beyond the directory walk, no hashing, no SAT — and
// re-verify only changed files plus their reverse-dependency closure.
//
// The mode only ever changes cost, never verdicts: any condition the
// planner cannot prove safe to skip (first run, corrupted or
// foreign-config graph, evicted store entries, missing store) degrades
// to verifying the affected files in full. Single-file entry points
// ignore the option.
func WithIncremental() Option {
	return func(c *config) error {
		c.incremental = true
		return nil
	}
}
