package webssari_test

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5), plus the ablations DESIGN.md calls out. Each benchmark
// prints the same rows/series the paper reports via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation end to end. EXPERIMENTS.md records
// paper-vs-measured values.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"webssari"
	"webssari/client"
	"webssari/internal/cluster"
	"webssari/internal/core"
	"webssari/internal/corpus"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/php/parser"
	"webssari/internal/prelude"
	"webssari/internal/sat"
	"webssari/internal/service"
)

// corpusScale reads the statement-scale factor for corpus benchmarks from
// WEBSSARI_CORPUS_SCALE (default 0.01; 1.0 reproduces the paper's
// 1,140,091-statement corpus in full).
func corpusScale() float64 {
	if v := os.Getenv("WEBSSARI_CORPUS_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.01
}

// BenchmarkFigure10 regenerates the paper's Figure 10: per-project TS- and
// BMC-reported error counts over the 38 acknowledged projects. The paper
// reports totals 980 (TS) and 578 (BMC), a 41.0% instrumentation
// reduction; the printed rows of the table sum to 969/578 (40.4%), which
// is what the synthetic corpus reproduces exactly.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var totals corpus.Totals
		for _, prof := range corpus.Figure10() {
			prof.Files = maxInt(2, prof.TS/2)
			prof.Statements = prof.TS*4 + 60
			proj := corpus.Generate(prof, 2004)
			stats, err := corpus.Run(proj, nil, core.Options{})
			if err != nil {
				b.Fatalf("%s: %v", prof.Name, err)
			}
			if stats.TS != prof.TS || stats.BMC != prof.BMC {
				b.Fatalf("%s: measured %d/%d, want %d/%d",
					prof.Name, stats.TS, stats.BMC, prof.TS, prof.BMC)
			}
			totals.Accumulate(stats)
		}
		if i == 0 {
			b.ReportMetric(float64(totals.TS), "TS-errors")
			b.ReportMetric(float64(totals.BMC), "BMC-groups")
			b.ReportMetric(totals.Reduction()*100, "reduction-%")
		}
	}
}

// BenchmarkCorpusAggregate regenerates the §5 aggregate numbers (230
// projects, 11,848 files, 1,140,091 statements, 69 vulnerable projects)
// at WEBSSARI_CORPUS_SCALE and runs both analyses over every file.
func BenchmarkCorpusAggregate(b *testing.B) {
	scale := corpusScale()
	profiles := corpus.FullCorpus(scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var totals corpus.Totals
		for _, prof := range profiles {
			proj := corpus.Generate(prof, 2004)
			stats, err := corpus.Run(proj, nil, core.Options{})
			if err != nil {
				b.Fatalf("%s: %v", prof.Name, err)
			}
			totals.Accumulate(stats)
		}
		if i == 0 {
			b.ReportMetric(float64(totals.Projects), "projects")
			b.ReportMetric(float64(totals.Files), "files")
			b.ReportMetric(float64(totals.Statements), "statements")
			b.ReportMetric(float64(totals.VulnerableProjects), "vuln-projects")
			b.ReportMetric(float64(totals.VulnerableFiles), "vuln-files")
			b.ReportMetric(float64(totals.TS), "TS-errors")
			b.ReportMetric(float64(totals.BMC), "BMC-groups")
			b.ReportMetric(scale, "scale")
		}
	}
}

// BenchmarkEncodingAblation compares the xBMC0.1 location-variable
// encoding (§3.3.1) against the xBMC1.0 renaming encoding (§3.3.2) on
// programs with a growing variable count |X|: the naive encoding pays
// 2·|X| variables per assignment (frame axioms across unrolled steps),
// the renaming encoding pays 2.
func BenchmarkEncodingAblation(b *testing.B) {
	pre := prelude.Default()
	for _, n := range []int{4, 8, 16, 24} {
		src := taintChainSrc(n)
		prog, errs := flow.BuildSource("chain.php", []byte(src), flow.Options{Prelude: pre})
		if len(errs) != 0 {
			b.Fatalf("build: %v", errs)
		}
		asserts := prog.Asserts()
		target := asserts[len(asserts)-1]

		b.Run(fmt.Sprintf("xBMC0.1-naive/vars=%d", n), func(b *testing.B) {
			var encVars, encClauses int
			for i := 0; i < b.N; i++ {
				violated, enc, err := core.VerifyAssertNaive(prog, target, sat.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !violated {
					b.Fatal("chain must be violated")
				}
				encVars, encClauses = enc.F.NumVars, len(enc.F.Clauses)
			}
			b.ReportMetric(float64(encVars), "cnf-vars")
			b.ReportMetric(float64(encClauses), "cnf-clauses")
		})
		b.Run(fmt.Sprintf("xBMC1.0-renamed/vars=%d", n), func(b *testing.B) {
			var encVars, encClauses int
			for i := 0; i < b.N; i++ {
				res, err := core.VerifyAI(prog, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last := res.PerAssert[len(res.PerAssert)-1]
				if len(last.Counterexamples) == 0 {
					b.Fatal("chain must be violated")
				}
				encVars, encClauses = last.EncodedVars, last.EncodedClauses
			}
			b.ReportMetric(float64(encVars), "cnf-vars")
			b.ReportMetric(float64(encClauses), "cnf-clauses")
		})
	}
}

// BenchmarkEnumerationModes measures the §3.3.2 enumeration ablations:
// blocking on the full BN assignment (the paper's literal loop) vs
// trace-relevant blocking (the default), and the incremental restriction
// that assumes prior assertions hold.
func BenchmarkEnumerationModes(b *testing.B) {
	// Branches nested inside rarely-taken arms: full-BN blocking assigns
	// them even on paths that never reach them, so it enumerates the cross
	// product where trace-relevant blocking enumerates one counterexample
	// per distinct trace.
	src := `<?php
if ($a) { if ($b) { if ($c) { $pad = 1; } } }
if ($d) { if ($e) { $pad2 = 2; } }
if ($mode) { $x = $_GET['q']; } else { $x = $_POST['r']; }
echo $x;
echo $x;
mysql_query($x);
`
	modes := []struct {
		name string
		opts core.Options
	}{
		{"trace-relevant-blocking", core.Options{}},
		{"full-BN-blocking", core.Options{BlockAllBN: true}},
		{"assume-prior-asserts", core.Options{AssumePriorAsserts: true}},
	}
	pre := prelude.Default()
	prog, errs := flow.BuildSource("enum.php", []byte(src), flow.Options{Prelude: pre})
	if len(errs) != 0 {
		b.Fatalf("build: %v", errs)
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var cexs int
			var solved uint64
			for i := 0; i < b.N; i++ {
				res, err := core.VerifyAI(prog, m.opts)
				if err != nil {
					b.Fatal(err)
				}
				cexs = len(res.Counterexamples())
				solved = 0
				for _, ar := range res.PerAssert {
					solved += ar.SolverStats.Decisions
				}
			}
			b.ReportMetric(float64(cexs), "counterexamples")
			b.ReportMetric(float64(solved), "decisions")
		})
	}
}

// BenchmarkFixingSetStrategies compares the three fixing-set strategies of
// §3.3.3–3.3.4 — naive (one guard per violating variable, the TS-era
// behaviour), Chvátal greedy, and exact branch-and-bound — on the
// Figure 7 shape scaled up.
func BenchmarkFixingSetStrategies(b *testing.B) {
	pre := prelude.Default()
	pre.AddSink("DoSQL", pre.Lattice().Top(), 1)
	src := surveyorSrc(10, 4) // 10 roots × 4 sinks = 40 symptoms
	opts := core.NewOptions(flow.Options{Prelude: pre})
	res, errs := core.VerifySource("fix.php", []byte(src), opts)
	if len(errs) != 0 {
		b.Fatalf("verify: %v", errs)
	}
	analysis := fixing.Analyze(res)

	b.Run("naive", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(analysis.NaiveFix())
		}
		b.ReportMetric(float64(n), "patches")
	})
	b.Run("greedy", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(analysis.GreedyMinimalFix())
		}
		b.ReportMetric(float64(n), "patches")
	})
	b.Run("exact", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(analysis.ExactMinimalFix(128))
		}
		b.ReportMetric(float64(n), "patches")
	})
}

// BenchmarkSolverFeatures ablates the CDCL features (VSIDS, clause
// learning, restarts) on an unsatisfiable pigeonhole instance, the
// standard clause-learning stress test.
func BenchmarkSolverFeatures(b *testing.B) {
	configs := []struct {
		name string
		opts sat.Options
	}{
		{"full-cdcl", sat.Options{}},
		{"no-vsids", sat.Options{DisableVSIDS: true}},
		{"no-learning", sat.Options{DisableLearning: true, MaxConflicts: 200000}},
		{"no-restarts", sat.Options{DisableRestarts: true}},
	}
	instances := []struct {
		name string
		cnf  func() *sat.CNF
	}{
		{"pigeonhole-7-6", func() *sat.CNF { return pigeonholeCNF(7, 6) }},
		{"random-3sat", func() *sat.CNF { return random3SAT(140, 596, 99) }},
	}
	for _, inst := range instances {
		for _, cfg := range configs {
			b.Run(inst.name+"/"+cfg.name, func(b *testing.B) {
				var conflicts uint64
				for i := 0; i < b.N; i++ {
					f := inst.cnf()
					s := sat.NewWith(cfg.opts)
					f.LoadInto(s)
					res := s.Solve()
					if res == sat.Unknown {
						b.Skip("conflict budget exhausted (no-learning config)")
					}
					conflicts = s.Stats().Conflicts
				}
				b.ReportMetric(float64(conflicts), "conflicts")
			})
		}
	}
}

// random3SAT generates a fixed-seed random 3-SAT instance near the phase
// transition (ratio ≈ 4.26).
func random3SAT(nVars, nClauses int, seed uint64) *sat.CNF {
	f := &sat.CNF{NumVars: nVars}
	state := seed
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < nClauses; i++ {
		cl := make([]sat.Lit, 3)
		for j := range cl {
			v := int(next()%uint64(nVars)) + 1
			cl[j] = sat.MkLit(v, next()%2 == 0)
		}
		f.AddClause(cl...)
	}
	return f
}

// BenchmarkLoopUnroll measures the cost of deeper loop deconstruction
// (§3.2 extension): AI size and verification time as the unroll factor
// grows.
func BenchmarkLoopUnroll(b *testing.B) {
	src := `<?php
$acc = 'seed';
while ($more) {
    $prev = $acc;
    $acc = $_GET['page'] . $prev;
    echo $prev;
}
mysql_query($acc);
`
	pre := prelude.Default()
	for _, unroll := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("unroll=%d", unroll), func(b *testing.B) {
			var size, cexs int
			for i := 0; i < b.N; i++ {
				opts := core.Options{Flow: flow.Options{Prelude: pre, LoopUnroll: unroll}}
				res, errs := core.VerifySource("loop.php", []byte(src), opts)
				if len(errs) != 0 {
					b.Fatalf("verify: %v", errs)
				}
				size = res.AI.Size()
				cexs = len(res.Counterexamples())
			}
			b.ReportMetric(float64(size), "ai-size")
			b.ReportMetric(float64(cexs), "counterexamples")
		})
	}
}

// BenchmarkVerifyPipeline measures the end-to-end verifier on a mid-size
// generated file (parse → filter → rename → encode → solve → analyze).
func BenchmarkVerifyPipeline(b *testing.B) {
	proj := corpus.Generate(corpus.Profile{
		Name: "bench", TS: 12, BMC: 4, Files: 1, Statements: 400,
	}, 7)
	var src []byte
	for _, s := range proj.Sources {
		src = s
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := webssari.Verify(src, "bench.php")
		if err != nil {
			b.Fatal(err)
		}
		if rep.Symptoms != 12 || rep.Groups != 4 {
			b.Fatalf("unexpected counts %d/%d", rep.Symptoms, rep.Groups)
		}
	}
}

// BenchmarkPatchPipeline measures verify+patch+re-verify.
func BenchmarkPatchPipeline(b *testing.B) {
	src := []byte(surveyorSrc(4, 4))
	pre := []webssari.Option{webssari.WithSink("DoSQL", 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		patched, rep, err := webssari.Patch(src, "patch.php", pre...)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Safe {
			b.Fatal("input must be vulnerable")
		}
		rep2, err := webssari.Verify(patched, "patch.php", pre...)
		if err != nil {
			b.Fatal(err)
		}
		if !rep2.Safe {
			b.Fatal("patched output must verify safe")
		}
	}
}

// BenchmarkSATSolver measures the raw CDCL engine on a satisfiable
// structured instance.
func BenchmarkSATSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := pigeonholeCNF(12, 12) // satisfiable: one pigeon per hole
		s := sat.New()
		f.LoadInto(s)
		if s.Solve() != sat.Sat {
			b.Fatal("PHP(12,12) must be SAT")
		}
	}
}

// ------------------------------------------------------------- generators

// taintChainSrc builds a chain of n branch-guarded copies: every
// assignment depends on a nondeterministic condition, so neither encoding
// can constant-fold it away, exposing the raw per-assignment cost.
func taintChainSrc(n int) string {
	src := "<?php\n$v0 = $_GET['x'];\n"
	for i := 1; i < n; i++ {
		src += fmt.Sprintf("if ($c%d) { $v%d = $v%d; } else { $v%d = 'safe'; }\n", i, i, i-1, i)
	}
	src += fmt.Sprintf("echo $v%d;\n", n-1)
	return src
}

func surveyorSrc(roots, sinksPerRoot int) string {
	src := "<?php\n"
	for r := 0; r < roots; r++ {
		src += fmt.Sprintf("$r%d = $_GET['p%d'];\n", r, r)
		for s := 0; s < sinksPerRoot; s++ {
			src += fmt.Sprintf("$q%d_%d = \"SELECT %d WHERE k=$r%d\";\nDoSQL($q%d_%d);\n",
				r, s, s, r, r, s)
		}
	}
	return src
}

func pigeonholeCNF(pigeons, holes int) *sat.CNF {
	f := &sat.CNF{}
	at := make([][]int, pigeons)
	for p := range at {
		at[p] = make([]int, holes)
		for h := range at[p] {
			at[p][h] = f.NewVar()
		}
		cl := make([]sat.Lit, holes)
		for h := range at[p] {
			cl[h] = sat.Lit(at[p][h])
		}
		f.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(sat.Lit(-at[p1][h]), sat.Lit(-at[p2][h]))
			}
		}
	}
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkSharedSolver compares the paper's per-assertion rebuild loop
// (a fresh CNF and solver per assertion) against the incremental
// shared-solver extension (one solver, selector assumptions) on a file
// with many assertions over a common data-flow core.
func BenchmarkSharedSolver(b *testing.B) {
	var sb []byte
	{
		src := "<?php\n$base = $_GET['seed'];\n"
		for i := 0; i < 8; i++ {
			src += fmt.Sprintf("if ($c%d) { $v%d = $base; } else { $v%d = 'ok'; }\n", i, i, i)
			src += fmt.Sprintf("echo $v%d;\nmysql_query($v%d);\n", i, i)
		}
		sb = []byte(src)
	}
	pre := prelude.Default()
	prog, errs := flow.BuildSource("many.php", sb, flow.Options{Prelude: pre})
	if len(errs) != 0 {
		b.Fatalf("build: %v", errs)
	}

	b.Run("per-assert-rebuild", func(b *testing.B) {
		var cexs int
		for i := 0; i < b.N; i++ {
			res, err := core.VerifyAI(prog, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cexs = len(res.Counterexamples())
		}
		b.ReportMetric(float64(cexs), "counterexamples")
	})
	b.Run("shared-incremental", func(b *testing.B) {
		var cexs int
		for i := 0; i < b.N; i++ {
			res, err := core.VerifyAIShared(prog, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cexs = len(res.Counterexamples())
		}
		b.ReportMetric(float64(cexs), "counterexamples")
	})
}

// BenchmarkParallelVerifyDir compares whole-project verification at
// parallelism 1 against a saturated worker pool over the same on-disk
// corpus. The compile cache is reset before every run so both sides pay
// the full front-end cost; the speedup is bounded by GOMAXPROCS
// (reported as a metric so single-CPU CI baselines read correctly).
func BenchmarkParallelVerifyDir(b *testing.B) {
	dir := b.TempDir()
	proj := corpus.Generate(corpus.Profile{
		Name: "parbench", TS: 16, BMC: 6, Files: 10, Statements: 600,
	}, 2004)
	for _, name := range proj.FileNames() {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, proj.Sources[name], 0o644); err != nil {
			b.Fatal(err)
		}
	}
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0), 8} {
		b.Run(fmt.Sprintf("j=%d", jobs), func(b *testing.B) {
			var vuln int
			for i := 0; i < b.N; i++ {
				webssari.ResetCompileCache()
				pr, err := webssari.VerifyDir(dir, webssari.WithParallelism(jobs))
				if err != nil {
					b.Fatal(err)
				}
				vuln = pr.VulnerableFiles
			}
			b.ReportMetric(float64(vuln), "vuln-files")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
	// The same saturated run with a live metrics registry and tracer
	// attached bounds the fully instrumented cost of a project sweep.
	b.Run("j=8+telemetry", func(b *testing.B) {
		var vuln int
		for i := 0; i < b.N; i++ {
			webssari.ResetCompileCache()
			pr, err := webssari.VerifyDir(dir,
				webssari.WithParallelism(8), webssari.WithTelemetry(webssari.NewTelemetry()))
			if err != nil {
				b.Fatal(err)
			}
			vuln = pr.VulnerableFiles
		}
		b.ReportMetric(float64(vuln), "vuln-files")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})
}

// BenchmarkClusterVerifyDir prices cluster mode against a plain local
// run over the bundled examples/php corpus: the local engine, a
// 1-worker cluster (pure dispatch overhead), and a 3-worker cluster.
// Workers are real service daemons behind httptest servers in this
// process, so on a single-CPU host the cluster cannot be faster than
// local — the numbers bound the HTTP dispatch and polling tax per file.
// The compile cache is reset each iteration (it is process-global, so
// in-process workers would otherwise share warmth with the baseline).
func BenchmarkClusterVerifyDir(b *testing.B) {
	dir := filepath.Join("examples", "php")
	ctx := context.Background()

	b.Run("local", func(b *testing.B) {
		var vuln int
		for i := 0; i < b.N; i++ {
			webssari.ResetCompileCache()
			pr, err := webssari.VerifyDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			vuln = pr.VulnerableFiles
		}
		b.ReportMetric(float64(vuln), "vuln-files")
	})

	for _, workers := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cluster.New(cluster.Config{
				// No agents heartbeat in this benchmark; a huge interval
				// keeps the eviction loop out of the measurement.
				HeartbeatInterval: time.Hour,
				PollInterval:      2 * time.Millisecond,
			})
			defer c.Close()
			coordTS := httptest.NewServer(c.Handler())
			defer coordTS.Close()
			cl := client.New(coordTS.URL)
			for w := 0; w < workers; w++ {
				ts := httptest.NewServer(service.New(service.Config{}).Handler())
				defer ts.Close()
				if _, err := cl.RegisterWorker(ctx, client.RegisterWorkerRequest{
					Addr: ts.URL, Name: fmt.Sprintf("bench-w%d", w),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var remote int
			for i := 0; i < b.N; i++ {
				webssari.ResetCompileCache()
				pr, err := c.VerifyDir(ctx, dir)
				if err != nil {
					b.Fatal(err)
				}
				if pr.Profile.Cluster.Degraded {
					b.Fatal("benchmark run degraded to local execution")
				}
				remote = pr.Profile.Cluster.Remote
			}
			b.ReportMetric(float64(remote), "remote-files")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkCompileStages measures the front end's cost with the typed
// flow IR in the middle (parse → lower → BuildUnit) against the legacy
// direct-AST walk (parse → BuildAST) it replaced, plus lowering alone,
// over the bundled examples/php corpus. A full core.Compile run reports
// the per-stage wall-time split (parse/lower/flow/rename/constraints)
// via b.ReportMetric; BENCH_compile.json records the numbers.
func BenchmarkCompileStages(b *testing.B) {
	dir := filepath.Join("examples", "php")
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	type file struct {
		name string
		src  []byte
	}
	var files []file
	var total int64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".php" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		files = append(files, file{filepath.Join(dir, e.Name()), src})
		total += int64(len(src))
	}
	fopts := flow.Options{Prelude: prelude.Default(), Dir: dir, Loader: os.ReadFile}

	b.Run("lower-only", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				if unit, _ := ir.LowerSource(f.name, f.src); unit == nil {
					b.Fatalf("nil unit for %s", f.name)
				}
			}
		}
	})
	b.Run("legacy-ast-flow", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				res := parser.Parse(f.name, f.src)
				if _, err := flow.BuildAST(res.File, fopts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("ir-flow", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				res := parser.Parse(f.name, f.src)
				if _, err := flow.Build(res.File, fopts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("full-compile", func(b *testing.B) {
		b.SetBytes(total)
		var stats core.CompileStats
		for i := 0; i < b.N; i++ {
			stats = core.CompileStats{}
			for _, f := range files {
				prog, errs := core.Compile(f.name, f.src, core.Options{Flow: fopts})
				if prog == nil {
					b.Fatalf("compile %s: %v", f.name, errs)
				}
				stats.ParseNS += prog.Stats.ParseNS
				stats.LowerNS += prog.Stats.LowerNS
				stats.FlowNS += prog.Stats.FlowNS
				stats.RenameNS += prog.Stats.RenameNS
				stats.ConstraintsNS += prog.Stats.ConstraintsNS
			}
		}
		b.ReportMetric(float64(stats.ParseNS), "parse-ns")
		b.ReportMetric(float64(stats.LowerNS), "lower-ns")
		b.ReportMetric(float64(stats.FlowNS), "flow-ns")
		b.ReportMetric(float64(stats.RenameNS), "rename-ns")
		b.ReportMetric(float64(stats.ConstraintsNS), "constraints-ns")
	})
}
