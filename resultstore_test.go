package webssari_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"webssari"
)

const vulnerableSrc = `<?php
$name = $_GET['name'];
echo "<p>Hello, $name</p>";
mysql_query("SELECT * FROM t WHERE who = '$name'");
?>`

// TestResultStoreSecondTier drives the WithStore tier end to end: a
// fresh verification populates the store, a second process (modeled by
// a second OpenStore over the same directory plus a compile-cache
// reset) is served from disk, and the served report is byte-identical
// to the computed one once profiles are stripped.
func TestResultStoreSecondTier(t *testing.T) {
	dir := t.TempDir()
	s1, err := webssari.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := webssari.Verify([]byte(vulnerableSrc), "page.php", webssari.WithStore(s1))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.StoreHit {
		t.Fatal("first verification claimed a store hit")
	}
	if st := s1.Stats(); st.Puts != 1 {
		t.Fatalf("first verification did not persist: %+v", st)
	}

	// "Restart": new store handle over the same root, cold compile cache.
	webssari.ResetCompileCache()
	s2, err := webssari.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := webssari.Verify([]byte(vulnerableSrc), "page.php", webssari.WithStore(s2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.StoreHit {
		t.Fatal("second verification missed the store")
	}
	if rep2.CacheHit {
		t.Fatal("store hit also claimed a compile-cache hit")
	}
	if st := s2.Stats(); st.Hits != 1 {
		t.Fatalf("store counters after hit: %+v", st)
	}
	if rep2.Text != rep1.Text {
		t.Fatalf("rendered text diverged:\n%s\nvs\n%s", rep2.Text, rep1.Text)
	}
	j1, j2 := marshalStripped(t, rep1), marshalStripped(t, rep2)
	if string(j1) != string(j2) {
		t.Fatalf("stored report diverged from computed one:\n%s\nvs\n%s", j1, j2)
	}
	if rep2.Verdict != webssari.VerdictUnsafe || len(rep2.Findings) == 0 {
		t.Fatalf("served report lost its findings: verdict %s, %d findings",
			rep2.Verdict, len(rep2.Findings))
	}
}

// marshalStripped renders a report as JSON with the (intentionally
// nondeterministic) profile removed.
func marshalStripped(t *testing.T, rep *webssari.Report) []byte {
	t.Helper()
	clone := *rep
	clone.Profile = nil
	data, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestResultStoreKeyedByConfig ensures a configuration change misses:
// the same source under a different option set must not be served the
// old verdict.
func TestResultStoreKeyedByConfig(t *testing.T) {
	s, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := webssari.Verify([]byte(vulnerableSrc), "page.php", webssari.WithStore(s)); err != nil {
		t.Fatal(err)
	}
	rep, err := webssari.Verify([]byte(vulnerableSrc), "page.php",
		webssari.WithStore(s), webssari.WithPaperEnumeration())
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreHit {
		t.Fatal("different configuration was served the cached verdict")
	}
	// And a source change misses too.
	rep, err = webssari.Verify([]byte(vulnerableSrc+"\n"), "page.php", webssari.WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreHit {
		t.Fatal("changed source was served the cached verdict")
	}
}

// TestResultStoreSkipsIncomplete pins the soundness rule: a degraded
// run must not be persisted, so a later unconstrained run recomputes.
func TestResultStoreSkipsIncomplete(t *testing.T) {
	s, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := webssari.Verify([]byte(vulnerableSrc), "slow.php",
		webssari.WithStore(s), webssari.WithDeadline(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != webssari.VerdictIncomplete {
		t.Skipf("nanosecond deadline did not degrade the run (verdict %s)", rep.Verdict)
	}
	if st := s.Stats(); st.Puts != 0 {
		t.Fatalf("incomplete report was persisted: %+v", st)
	}
}

// TestResultStoreIncludeInvalidation edits an include file between two
// runs; the stored entry must be invalidated, not served stale.
func TestResultStoreIncludeInvalidation(t *testing.T) {
	proj := t.TempDir()
	inc := filepath.Join(proj, "lib.php")
	main := filepath.Join(proj, "index.php")
	if err := os.WriteFile(inc, []byte("<?php $greet = 'hi'; ?>"), 0o644); err != nil {
		t.Fatal(err)
	}
	mainSrc := []byte("<?php include 'lib.php'; echo $greet; ?>")
	if err := os.WriteFile(main, mainSrc, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []webssari.Option{webssari.WithStore(s), webssari.WithDir(proj)}
	rep1, err := webssari.Verify(mainSrc, main, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.StoreHit {
		t.Fatal("first run hit")
	}
	// Unchanged include: the second run is a hit.
	rep2, err := webssari.Verify(mainSrc, main, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.StoreHit {
		t.Skip("include snapshot not persisted for this shape; nothing to invalidate")
	}
	// Edit the include: now the tainted value flows into echo.
	if err := os.WriteFile(inc, []byte("<?php $greet = $_GET['g']; ?>"), 0o644); err != nil {
		t.Fatal(err)
	}
	webssari.ResetCompileCache()
	rep3, err := webssari.Verify(mainSrc, main, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.StoreHit {
		t.Fatal("edited include served the stale verdict")
	}
	if st := s.Stats(); st.Stale == 0 {
		t.Fatalf("stale entry not counted: %+v", st)
	}
	if reflect.DeepEqual(rep3.Findings, rep1.Findings) && rep3.Verdict == rep1.Verdict {
		t.Fatal("edited include produced an identical report — invalidation untestable")
	}
}

// TestVerifyDirStoreCounts checks the project-level store counters and
// the observer streaming hook together.
func TestVerifyDirStoreCounts(t *testing.T) {
	proj := t.TempDir()
	for name, src := range map[string]string{
		"a.php": `<?php echo $_GET['x']; ?>`,
		"b.php": `<?php echo "static"; ?>`,
	} {
		if err := os.WriteFile(filepath.Join(proj, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pr1, err := webssari.VerifyDir(proj, webssari.WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if pr1.StoreHits != 0 || pr1.StoreMisses != 2 {
		t.Fatalf("cold run store counts: hits %d, misses %d", pr1.StoreHits, pr1.StoreMisses)
	}
	var streamed int
	var mu = make(chan struct{}, 1)
	pr2, err := webssari.VerifyDir(proj, webssari.WithStore(s),
		webssari.WithFileObserver(func(rep *webssari.Report) {
			mu <- struct{}{}
			streamed++
			<-mu
		}))
	if err != nil {
		t.Fatal(err)
	}
	if pr2.StoreHits != 2 || pr2.StoreMisses != 0 {
		t.Fatalf("warm run store counts: hits %d, misses %d", pr2.StoreHits, pr2.StoreMisses)
	}
	if streamed != 2 {
		t.Fatalf("observer saw %d reports, want 2", streamed)
	}
	if pr2.CacheHits != 0 || pr2.CacheMisses != 0 {
		t.Fatalf("store-served files counted against the compile cache: %+v", pr2)
	}
}
