package webssari_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webssari"
	"webssari/internal/telemetry"
)

// telemetryPages are distinct sources (no content-cache coalescing), two
// vulnerable and one safe, so a project run exercises both verdicts.
var telemetryPages = map[string]string{
	"inject.php": `<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM t WHERE id = '$id'");
?>`,
	"xss.php": `<?php
$who = $_COOKIE['who'];
if (!$who) { $who = 'guest'; }
echo "<p>hi $who</p>";
?>`,
	"clean.php": `<?php
$x = htmlspecialchars($_GET['x']);
echo $x;
?>`,
}

func writeTelemetryProject(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range telemetryPages {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestVerifyDirTelemetry is the tentpole's integration test: a parallel
// project run with a shared Telemetry must produce one span per pipeline
// stage per file, populated counters, a profile under the stable JSON
// key, and a loadable Chrome trace. Run under -race it also checks the
// concurrent counter/span paths.
func TestVerifyDirTelemetry(t *testing.T) {
	dir := writeTelemetryProject(t)
	webssari.ResetCompileCache()
	tel := webssari.NewTelemetry()
	pr, err := webssari.VerifyDir(dir,
		webssari.WithParallelism(4), webssari.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	n := len(telemetryPages)
	if len(pr.Files) != n {
		t.Fatalf("verified %d files, want %d", len(pr.Files), n)
	}

	// One span per compile stage per file, each tagged with its file.
	events := tel.Tracer.Events()
	perStage := map[string]int{}
	parseFiles := map[string]bool{}
	for _, ev := range events {
		perStage[ev.Name]++
		if ev.Name == "parse" {
			if f, ok := ev.Args["file"].(string); ok {
				parseFiles[f] = true
			}
		}
	}
	for _, stage := range []string{"parse", "flow", "rename", "constraints", "solve", "verify_file"} {
		if perStage[stage] != n {
			t.Errorf("%d %q spans, want %d (events: %v)", perStage[stage], stage, n, perStage)
		}
	}
	if perStage["verify_dir"] != 1 {
		t.Errorf("%d verify_dir spans, want 1", perStage["verify_dir"])
	}
	if len(parseFiles) != n {
		t.Errorf("parse spans tag %d distinct files, want %d", len(parseFiles), n)
	}

	// Counters: every file verified, assertions checked, cold cache misses.
	m := tel.Metrics
	if got := m.Counter(telemetry.MetricFilesVerified).Value(); got != int64(n) {
		t.Errorf("files_verified = %d, want %d", got, n)
	}
	if got := m.Counter(telemetry.MetricAssertionsChecked).Value(); got == 0 {
		t.Error("assertions_checked = 0")
	}
	if got := m.Counter(telemetry.MetricCacheMisses).Value(); got != int64(n) {
		t.Errorf("cache_misses = %d, want %d (cold cache, distinct contents)", got, n)
	}
	if got := m.Counter(telemetry.MetricCounterexamples).Value(); got == 0 {
		t.Error("counterexamples = 0, want > 0 (two vulnerable pages)")
	}
	if text := m.PrometheusText(); !strings.Contains(text, telemetry.MetricFilesVerified) {
		t.Error("exposition page missing files_verified series")
	}

	// The profile travels under the stable "profile" key, project-wide
	// and per file, with pool/cache sections at the project level.
	if pr.Profile == nil || pr.Profile.Files != n {
		t.Fatalf("project profile = %+v", pr.Profile)
	}
	if pr.Profile.Pool == nil || pr.Profile.Cache == nil {
		t.Errorf("project profile missing pool/cache sections: %+v", pr.Profile)
	}
	if pr.Profile.Cache.Misses != int64(n) {
		t.Errorf("profile cache misses = %d, want %d", pr.Profile.Cache.Misses, n)
	}
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"profile"`)) {
		t.Error("marshaled project report has no profile key")
	}
	for _, rep := range pr.Files {
		if rep.Profile == nil {
			t.Fatalf("%s: no per-file profile", rep.File)
		}
		if rep.Profile.CompileWallNS <= 0 {
			t.Errorf("%s: compile wall = %d", rep.File, rep.Profile.CompileWallNS)
		}
	}

	// The trace exports as valid Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := webssari.WriteTrace(tel, &buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != len(events) {
		t.Errorf("trace JSON has %d events, tracer %d", len(trace.TraceEvents), len(events))
	}
}

// TestProfileWithoutTelemetry: profiles are built into the engine — no
// sink required — and the compatibility views agree with them.
func TestProfileWithoutTelemetry(t *testing.T) {
	rep, err := webssari.Verify([]byte(telemetryPages["inject.php"]), "inject.php")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile == nil {
		t.Fatal("no profile on an uninstrumented run")
	}
	if rep.Profile.CompileWallNS <= 0 || rep.Profile.SolveWallNS <= 0 {
		t.Errorf("profile walls = %d/%d, want > 0",
			rep.Profile.CompileWallNS, rep.Profile.SolveWallNS)
	}
	if rep.CompileTime != rep.Profile.CompileWall() || rep.SolveTime != rep.Profile.SolveWall() {
		t.Errorf("compat views diverge from profile: %v/%v vs %v/%v",
			rep.CompileTime, rep.SolveTime, rep.Profile.CompileWall(), rep.Profile.SolveWall())
	}
	if len(rep.Profile.Assertions) == 0 {
		t.Error("profile has no per-assertion breakdown")
	}
	for _, a := range rep.Profile.Assertions {
		if a.Sink == "" || a.Site == "" {
			t.Errorf("assertion profile missing origin: %+v", a)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"profile"`)) {
		t.Error("report JSON has no profile key")
	}
}

// TestWriteTraceWithoutTracer pins the error path.
func TestWriteTraceWithoutTracer(t *testing.T) {
	if err := webssari.WriteTrace(nil, io.Discard); err == nil {
		t.Error("WriteTrace(nil) = nil error")
	}
	if err := webssari.WriteTrace(&webssari.Telemetry{}, io.Discard); err == nil {
		t.Error("WriteTrace(no tracer) = nil error")
	}
}

// BenchmarkTelemetryOverhead compares a full Verify with telemetry
// disabled against one recording metrics and spans — the disabled
// variant is the regression guard: it must stay within noise of the
// pre-telemetry engine, since its only added cost is a handful of
// context lookups and clock reads.
func BenchmarkTelemetryOverhead(b *testing.B) {
	src := []byte(telemetryPages["inject.php"])
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := webssari.Verify(src, "bench.php"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tel := webssari.NewTelemetry()
		for i := 0; i < b.N; i++ {
			if _, err := webssari.Verify(src, "bench.php", webssari.WithTelemetry(tel)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestHTMLReportIncludesProfile: the HTML rendering carries the run
// profile section with the per-assertion solver breakdown.
func TestHTMLReportIncludesProfile(t *testing.T) {
	var buf bytes.Buffer
	_, err := webssari.VerifyToHTML([]byte(telemetryPages["inject.php"]), "inject.php", &buf)
	if err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{"Run profile", "<th>search</th>", "mysql_query"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}
