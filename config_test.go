package webssari_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"webssari"
)

// TestConfigRoundTrip pins the WithConfig/ExportConfig contract:
// exporting the configuration produced by applying a Config returns
// that Config, including across a JSON round trip (the daemon's use),
// with live handles (Store, Telemetry) carried by identity.
func TestConfigRoundTrip(t *testing.T) {
	st, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tel := webssari.NewTelemetry()
	base, err := webssari.ExportConfig()
	if err != nil {
		t.Fatal(err)
	}

	cc := base
	cc.ExtraPreludes = []string{"sink DoSQL tainted 1\n"}
	cc.Sinks = []webssari.SinkSpec{{Name: "custom_exec", Args: []int{1, 2}}}
	cc.Sanitizers = []string{"super_escape"}
	cc.Sources = []string{"read_feed"}
	cc.Dir = t.TempDir()
	cc.LoopUnroll = 3
	cc.PaperEnumeration = true
	cc.MaxCounterexamples = 7
	cc.Deadline = 42 * time.Second
	cc.MaxConflicts = 9999
	cc.Solver = webssari.SolverConfig{
		Mode:        webssari.SolverShared,
		MaxRestarts: 11,
		Portfolio:   3,
		WarmStart:   true,
	}
	cc.Parallelism = 2
	cc.Incremental = true
	cc.Store = st
	cc.Telemetry = tel

	out, err := webssari.ExportConfig(webssari.WithConfig(cc))
	if err != nil {
		t.Fatalf("ExportConfig(WithConfig(cc)): %v", err)
	}
	if !reflect.DeepEqual(cc, out) {
		t.Fatalf("Config did not round-trip:\n in: %+v\nout: %+v", cc, out)
	}

	// JSON round trip (the daemon's per-job path): live handles drop,
	// everything else survives.
	data, err := json.Marshal(cc)
	if err != nil {
		t.Fatal(err)
	}
	var decoded webssari.Config
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	wire := cc
	wire.Store, wire.Telemetry = nil, nil
	if !reflect.DeepEqual(wire, decoded) {
		t.Fatalf("Config JSON round trip diverged:\n in: %+v\nout: %+v", wire, decoded)
	}

	// Later options still win over an earlier Config.
	over, err := webssari.ExportConfig(webssari.WithConfig(cc), webssari.WithLoopUnroll(5))
	if err != nil {
		t.Fatal(err)
	}
	if over.LoopUnroll != 5 {
		t.Fatalf("later option lost: unroll = %d, want 5", over.LoopUnroll)
	}
}

// TestConfigReplacesPrelude checks WithPrelude via Config resets the
// recorded merge lists, so Config replacement semantics match the
// option's.
func TestConfigReplacesPrelude(t *testing.T) {
	const minimal = "lattice chain low high\nsink f high 1\n"
	cc, err := webssari.ExportConfig(
		webssari.WithExtraPrelude("sink DoSQL tainted 1\n"),
		webssari.WithPrelude(minimal),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Prelude != minimal {
		t.Fatalf("prelude text = %q", cc.Prelude)
	}
	if len(cc.ExtraPreludes) != 0 {
		t.Fatalf("prelude replacement kept earlier merges: %v", cc.ExtraPreludes)
	}

	// A zero Config is a no-op: applying it changes nothing.
	base, err := webssari.ExportConfig()
	if err != nil {
		t.Fatal(err)
	}
	same, err := webssari.ExportConfig(webssari.WithConfig(webssari.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, same) {
		t.Fatalf("zero Config is not a no-op:\n%+v\nvs\n%+v", base, same)
	}
}
