package webssari

// Internal tests of the learnt-clause persistence plumbing — key
// derivation and the corruption-degrades-to-cold guarantee need access
// to learntKey and the unexported config, so they live inside the
// package (every other solver-mode test is external, see solver_test.go).

import (
	"os"
	"path/filepath"
	"testing"

	"webssari/internal/store"
)

// TestCorruptLearntBlobDegradesToCold overwrites a persisted learnt
// blob with garbage and checks the next run (a) keeps its verdict,
// (b) records a warm-start miss rather than a hit, and (c) survives a
// blob whose framing is valid but whose CNF hash belongs to another
// formula.
func TestCorruptLearntBlobDegradesToCold(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "php", "guestbook.php"))
	if err != nil {
		t.Fatal(err)
	}
	const name = "examples/php/guestbook.php"
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithStore(st),
		WithBudget(1), // incomplete verdict: never persisted, so every run re-solves
		WithSolverConfig(SolverConfig{Mode: SolverShared, WarmStart: true}),
	}
	rep1, err := Verify(src, name, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Incomplete {
		t.Fatalf("want an incomplete run under budget 1, got %s", rep1.Verdict)
	}

	// Locate the blob exactly as wireWarmStart does.
	cfg, err := buildConfig(opts)
	if err != nil {
		t.Fatal(err)
	}
	ns := store.NamespaceOf(st, LearntNamespace)
	key := learntKey(name, src, cfg)
	if _, ok := ns.Get(key); !ok {
		t.Fatal("run 1 persisted no learnt blob under the derived key")
	}

	corruptions := []struct {
		label string
		blob  []byte
	}{
		{"garbage", []byte("not a learnt blob at all")},
		{"truncated", []byte{'W', 'S', 'L'}},
		{"empty", nil},
	}
	for _, c := range corruptions {
		if err := ns.Put(key, c.blob); err != nil {
			t.Fatalf("%s: seeding corruption: %v", c.label, err)
		}
		rep, err := Verify(src, name, opts...)
		if err != nil {
			t.Fatalf("%s: Verify: %v", c.label, err)
		}
		ws := rep.Profile.WarmStart
		if ws == nil {
			t.Fatalf("%s: no warm-start section in profile", c.label)
		}
		if ws.Hit {
			t.Fatalf("%s: corrupted blob reported as a hit", c.label)
		}
		if ws.ImportedClauses != 0 {
			t.Fatalf("%s: imported %d clauses from a corrupted blob", c.label, ws.ImportedClauses)
		}
		if rep.Verdict != rep1.Verdict || rep.Symptoms != rep1.Symptoms {
			t.Fatalf("%s: corruption changed the verdict: %s/%d, want %s/%d",
				c.label, rep.Verdict, rep.Symptoms, rep1.Verdict, rep1.Symptoms)
		}
		// Each degraded run re-exports a fresh valid blob; re-corrupt on
		// the next loop iteration.
	}
}

// TestLearntKeyDiscriminates pins what addresses a learnt blob: the
// entry name, the source bytes, and the verdict-shaping configuration —
// and, just as deliberately, what does NOT (the verdict-neutral mode,
// width, and warm-start fields, which must never fragment the cache).
func TestLearntKeyDiscriminates(t *testing.T) {
	mk := func(opts ...Option) string {
		t.Helper()
		cfg, err := buildConfig(opts)
		if err != nil {
			t.Fatal(err)
		}
		return learntKey("a.php", []byte("<?php echo 1;"), cfg)
	}
	base := mk()
	if mk() != base {
		t.Fatal("learnt key not deterministic")
	}
	cfg, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if learntKey("b.php", []byte("<?php echo 1;"), cfg) == base {
		t.Fatal("name does not discriminate")
	}
	if learntKey("a.php", []byte("<?php echo 2;"), cfg) == base {
		t.Fatal("source does not discriminate")
	}
	if mk(WithPolicy("ssrf")) == base {
		t.Fatal("policy does not discriminate")
	}
	if mk(WithBudget(7)) == base {
		t.Fatal("conflict budget does not discriminate")
	}
	// Verdict-neutral solver settings share the address.
	if mk(WithSolverConfig(SolverConfig{Mode: SolverShared, WarmStart: true, Portfolio: 4})) != base {
		t.Fatal("verdict-neutral solver fields fragmented the learnt key")
	}
}
