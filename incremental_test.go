package webssari_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"webssari"
	"webssari/internal/telemetry"
)

// writeCorpus lays out the incremental test project: one shared include
// with two dependent pages (one vulnerable through the include, one
// sanitizing) and one standalone file, so the reverse-dependency closure
// of an include edit is a strict subset of the project.
func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, dir, "shared.php", "<?php $greeting = $_GET['q']; ?>\n")
	writeFile(t, dir, "a.php", "<?php include 'shared.php'; echo $greeting; ?>\n")
	writeFile(t, dir, "b.php", "<?php include 'shared.php'; echo htmlspecialchars($greeting); ?>\n")
	writeFile(t, dir, "solo.php", "<?php echo \"static page\"; ?>\n")
	return dir
}

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// incrementalOpts builds one incremental configuration over a fresh
// store and telemetry pair.
func incrementalOpts(t *testing.T) ([]webssari.Option, *webssari.Telemetry) {
	t.Helper()
	st, err := webssari.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tel := webssari.NewTelemetry()
	return []webssari.Option{
		webssari.WithStore(st),
		webssari.WithIncremental(),
		webssari.WithTelemetry(tel),
	}, tel
}

// incProfile pulls the incremental section out of a project profile.
func incProfile(t *testing.T, pr *webssari.ProjectReport) *telemetry.IncrementalProfile {
	t.Helper()
	if pr.Profile == nil || pr.Profile.Incremental == nil {
		t.Fatalf("project profile lacks an incremental section: %+v", pr.Profile)
	}
	return pr.Profile.Incremental
}

// marshalStripped renders a project report with every run-relative field
// (profiles, cache and store counters) removed, for byte comparison.
func marshalProjectStripped(t *testing.T, pr *webssari.ProjectReport) []byte {
	t.Helper()
	raw, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	var strip func(any) any
	strip = func(v any) any {
		switch node := v.(type) {
		case map[string]any:
			delete(node, "profile")
			delete(node, "store_hits")
			delete(node, "store_misses")
			delete(node, "cache_hits")
			delete(node, "cache_misses")
			for k, child := range node {
				node[k] = strip(child)
			}
		case []any:
			for i, child := range node {
				node[i] = strip(child)
			}
		}
		return v
	}
	out, err := json.Marshal(strip(tree))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestIncrementalUnchangedRunDoesZeroWork pins the warm-path guarantee:
// re-verifying an unchanged project performs no SAT work at all — the
// plan is empty, every file is served from the store, and the
// assertions-checked counter does not move.
func TestIncrementalUnchangedRunDoesZeroWork(t *testing.T) {
	dir := writeCorpus(t)
	opts, tel := incrementalOpts(t)

	pr1, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc1 := incProfile(t, pr1)
	if !inc1.Full || inc1.Planned != 4 || inc1.Skipped != 0 {
		t.Fatalf("cold run incremental profile = %+v, want full run of 4", inc1)
	}
	checkedAfterCold := tel.Metrics.Counter(telemetry.MetricAssertionsChecked).Value()
	if checkedAfterCold == 0 {
		t.Fatal("cold run checked no assertions; corpus is broken")
	}

	pr2, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc2 := incProfile(t, pr2)
	if inc2.Planned != 0 || inc2.Skipped != 4 || inc2.Invalidated != 0 || inc2.Full {
		t.Fatalf("warm run incremental profile = %+v, want 0 planned / 4 skipped", inc2)
	}
	if pr2.StoreHits != 4 {
		t.Fatalf("warm run store hits = %d, want 4", pr2.StoreHits)
	}
	if got := tel.Metrics.Counter(telemetry.MetricAssertionsChecked).Value(); got != checkedAfterCold {
		t.Fatalf("warm run solved: assertions checked went %d → %d, want no movement",
			checkedAfterCold, got)
	}
	for _, rep := range pr2.Files {
		if !rep.StoreHit {
			t.Fatalf("%s not served from the store on the warm run", rep.File)
		}
	}
	if !bytes.Equal(marshalProjectStripped(t, pr1), marshalProjectStripped(t, pr2)) {
		t.Fatal("graph-served report diverged from the computed one")
	}
}

// TestIncrementalSharedEditReverifiesExactlyDependents edits the shared
// include and checks the delta is its reverse-dependency closure — the
// include itself plus both dependents, while the standalone file is
// still served from the store — with verdicts byte-identical to a cold
// full run over the edited tree.
func TestIncrementalSharedEditReverifiesExactlyDependents(t *testing.T) {
	dir := writeCorpus(t)
	opts, tel := incrementalOpts(t)

	pr1, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if pr1.VulnerableFiles != 1 {
		t.Fatalf("cold run vulnerable files = %d, want 1 (a.php through the include)", pr1.VulnerableFiles)
	}

	// The edit sanitizes the include's assignment; the content length
	// changes, so even a filesystem with coarse mtimes cannot mask it.
	writeFile(t, dir, "shared.php", "<?php $greeting = htmlspecialchars($_GET['q']); ?>\n")

	checkedBefore := tel.Metrics.Counter(telemetry.MetricAssertionsChecked).Value()
	pr2, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	inc := incProfile(t, pr2)
	if inc.Planned != 3 || inc.Skipped != 1 || inc.Invalidated != 3 || inc.Full {
		t.Fatalf("delta profile = %+v, want 3 planned (shared + 2 dependents) / 1 skipped", inc)
	}
	if pr2.StoreHits != 1 {
		t.Fatalf("delta run store hits = %d, want 1 (solo.php)", pr2.StoreHits)
	}
	if got := tel.Metrics.Counter(telemetry.MetricAssertionsChecked).Value(); got == checkedBefore {
		t.Fatal("delta run checked no assertions; the dependents were not re-verified")
	}
	// The sanitizing edit flips the through-include vulnerability.
	if pr2.VulnerableFiles != 0 {
		t.Fatalf("post-edit vulnerable files = %d, want 0", pr2.VulnerableFiles)
	}

	// Same verdicts as a cold full run over the edited tree.
	coldOpts, _ := incrementalOpts(t)
	prCold, err := webssari.VerifyDir(dir, coldOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalProjectStripped(t, pr2), marshalProjectStripped(t, prCold)) {
		t.Fatalf("delta run diverged from cold run:\n%s\nvs\n%s",
			marshalProjectStripped(t, pr2), marshalProjectStripped(t, prCold))
	}

	// One more unchanged run settles back to zero work.
	pr3, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if inc3 := incProfile(t, pr3); inc3.Planned != 0 || inc3.Skipped != 4 {
		t.Fatalf("post-delta warm run = %+v, want 0 planned / 4 skipped", inc3)
	}
}

// TestIncrementalGraphCorruptionDegradesToFullRun damages the persisted
// graph two ways — bytes flipped on disk (store-level corruption) and a
// validly framed blob with garbage JSON (decode-level corruption) — and
// checks both degrade to a full re-verification with unchanged verdicts,
// never an error or a wrong answer.
func TestIncrementalGraphCorruptionDegradesToFullRun(t *testing.T) {
	dir := writeCorpus(t)
	storeRoot := t.TempDir()
	st, err := webssari.OpenStore(storeRoot, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []webssari.Option{webssari.WithStore(st), webssari.WithIncremental()}

	pr1, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalProjectStripped(t, pr1)

	gkey, err := webssari.GraphKey(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Corruption 1: flip the blob's bytes on disk. The store's checksum
	// catches it, the planner sees no graph, the run is full.
	blob := filepath.Join(storeRoot, "objects", gkey[:2], gkey)
	if _, err := os.Stat(blob); err != nil {
		t.Fatalf("graph blob not at the documented path: %v", err)
	}
	if err := os.WriteFile(blob, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	pr2, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatalf("corrupted graph must degrade, not error: %v", err)
	}
	if inc := incProfile(t, pr2); !inc.Full {
		t.Fatalf("corrupted graph planned a delta: %+v", inc)
	}
	if !bytes.Equal(want, marshalProjectStripped(t, pr2)) {
		t.Fatal("corrupted-graph run changed verdicts")
	}

	// Corruption 2: a well-framed store entry whose payload is not a
	// graph. Decode rejects it and the run is again full.
	if err := st.Put(gkey, []byte("not a graph")); err != nil {
		t.Fatal(err)
	}
	pr3, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatalf("undecodable graph must degrade, not error: %v", err)
	}
	if inc := incProfile(t, pr3); !inc.Full {
		t.Fatalf("undecodable graph planned a delta: %+v", inc)
	}
	if !bytes.Equal(want, marshalProjectStripped(t, pr3)) {
		t.Fatal("undecodable-graph run changed verdicts")
	}

	// The degraded runs rewrote a healthy graph: the next run is a clean
	// delta again.
	pr4, err := webssari.VerifyDir(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if inc := incProfile(t, pr4); inc.Full || inc.Planned != 0 || inc.Skipped != 4 {
		t.Fatalf("recovery run = %+v, want 0 planned / 4 skipped", inc)
	}
}

// TestIncrementalWithoutStoreIsPlainRun checks WithIncremental alone
// (no store) silently runs the ordinary full path — no profile section,
// no error.
func TestIncrementalWithoutStoreIsPlainRun(t *testing.T) {
	dir := writeCorpus(t)
	pr, err := webssari.VerifyDir(dir, webssari.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if pr.Profile != nil && pr.Profile.Incremental != nil {
		t.Fatalf("storeless incremental run grew an incremental profile: %+v", pr.Profile.Incremental)
	}
	if pr.VulnerableFiles != 1 {
		t.Fatalf("vulnerable files = %d, want 1", pr.VulnerableFiles)
	}
}
