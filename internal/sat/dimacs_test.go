package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		f := randomCNF(r, 3+r.Intn(10), 1+r.Intn(20), 3)
		var buf bytes.Buffer
		if err := f.WriteDIMACS(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		g, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("shape mismatch: %d/%d vs %d/%d",
				g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
		}
		for ci := range f.Clauses {
			if len(f.Clauses[ci]) != len(g.Clauses[ci]) {
				t.Fatalf("clause %d mismatch", ci)
			}
			for li := range f.Clauses[ci] {
				if f.Clauses[ci][li] != g.Clauses[ci][li] {
					t.Fatalf("lit mismatch at %d/%d", ci, li)
				}
			}
		}
	}
}

func TestParseDIMACSComments(t *testing.T) {
	src := `c a comment
c another

p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("shape = %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != Lit(-2) {
		t.Fatalf("lit = %v", f.Clauses[0][1])
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	src := "p cnf 4 1\n1 2\n3 -4 0\n"
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 4 {
		t.Fatalf("clauses = %+v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"missing problem": "1 2 0\n",
		"bad problem":     "p dnf 1 1\n1 0\n",
		"bad literal":     "p cnf 2 1\n1 x 0\n",
		"bad var count":   "p cnf x 1\n1 0\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
				t.Fatalf("want parse error")
			}
		})
	}
}

func TestParseDIMACSTrailingClauseWithoutZero(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 2\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Clauses) != 1 {
		t.Fatalf("trailing clause lost: %+v", f.Clauses)
	}
}

func TestCNFEval(t *testing.T) {
	f := &CNF{}
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(Lit(a), Lit(-b))
	if !f.Eval([]bool{false, true, true}) {
		t.Fatalf("a=true satisfies")
	}
	if f.Eval([]bool{false, false, true}) {
		t.Fatalf("a=false,b=true falsifies")
	}
}

func TestLoadIntoGrowsVars(t *testing.T) {
	f := &CNF{}
	f.AddClause(Lit(7))
	s := New()
	if !f.LoadInto(s) {
		t.Fatalf("load failed")
	}
	if s.NumVars() < 7 {
		t.Fatalf("vars = %d", s.NumVars())
	}
	if s.Solve() != Sat || !s.Value(7) {
		t.Fatalf("unit on var 7 lost")
	}
}
