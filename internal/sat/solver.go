package sat

import (
	"sort"
)

// clause is a disjunction of literals. The first two literals are the
// watched pair.
type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// watcher pairs a watching clause with a blocker literal: if the blocker is
// already true the clause is satisfied and need not be inspected.
type watcher struct {
	c       *clause
	blocker Lit
}

// Options tunes solver features, primarily for the ablation benchmarks
// (BenchmarkSolverFeatures); the defaults are the full CDCL configuration.
type Options struct {
	// DisableVSIDS falls back to picking the lowest-indexed unassigned
	// variable instead of the highest-activity one.
	DisableVSIDS bool
	// DisableLearning drops learned clauses after backjumping (the solver
	// degenerates towards DPLL with conflict-directed backjumping).
	DisableLearning bool
	// DisableRestarts turns off Luby restarts.
	DisableRestarts bool
	// MaxConflicts aborts Solve with Unknown after this many conflicts
	// (0 = unlimited).
	MaxConflicts uint64
	// MaxRestarts aborts Solve with Unknown after this many restarts
	// (0 = unlimited). Like MaxConflicts it is a per-call budget.
	MaxRestarts uint64
	// RestartBase scales the Luby restart sequence: the i-th restart
	// fires after RestartBase·luby(i) conflicts (0 = the default 100).
	// Smaller bases restart more aggressively — a portfolio axis.
	RestartBase uint64
	// InitialPhase flips the initial decision polarity to true. Phase
	// saving still takes over once a variable has been assigned; this
	// only changes the first decision on each variable — a cheap way to
	// explore a structurally different part of the search tree.
	InitialPhase bool
	// VarDecay overrides the VSIDS activity decay factor in (0, 1)
	// (0 = the default 0.95). Lower values weight recent conflicts more
	// heavily — another portfolio axis.
	VarDecay float64
	// Interrupt, when non-nil, is polled during search (once per conflict
	// and periodically between decisions); when it returns true, Solve
	// stops and reports Unknown. It plumbs wall-clock deadlines and
	// context cancellation into the search loop without a watchdog
	// goroutine; the solver remains usable afterwards. One callback may
	// be shared by solver instances running on concurrent goroutines
	// (core.Solve's parallel assertion fan-out does exactly that), so it
	// must be safe to call concurrently — a ctx.Err() check qualifies.
	Interrupt func() bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; use New or
// NewWith. A Solver is not safe for concurrent use.
type Solver struct {
	opts Options

	numVars int
	clauses []*clause // problem clauses
	learnts []*clause // learned clauses

	watches [][]watcher // literal index → watchers

	assign   []lbool // variable → value
	level    []int   // variable → decision level
	reason   []*clause
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // phase saving: last assigned value

	claInc float64

	ok    bool // false once an empty clause is derived
	stats Stats

	// seen is scratch space for conflict analysis.
	seen []bool
}

// New returns a solver with default options.
func New() *Solver { return NewWith(Options{}) }

// NewWith returns a solver with explicit options.
func NewWith(opts Options) *Solver {
	s := &Solver{
		opts:   opts,
		varInc: 1,
		claInc: 1,
		ok:     true,
	}
	s.order = &varHeap{solver: s}
	// Variable index 0 is unused; keep slot arrays aligned.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, opts.InitialPhase)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.numVars++
	v := s.numVars
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, s.opts.InitialPhase)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil) // slots 2v and 2v+1
	s.order.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.numVars }

// NumClauses returns the number of problem clauses currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns the solver's counters.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.IsNeg() {
		return v.negate()
	}
	return v
}

// AddClause adds a problem clause. Literals over unallocated variables
// grow the variable table. It returns false if the solver is already (or
// thereby becomes) trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	for _, l := range lits {
		for l.Var() > s.numVars {
			s.NewVar()
		}
	}
	// Adding clauses is only legal at decision level 0; callers adding
	// blocking clauses after a SAT answer rely on this reset.
	s.cancelUntil(0)

	// Simplify against level-0 assignments: drop false literals, drop the
	// clause when a literal is already true, deduplicate, and detect
	// tautologies.
	// Sort by variable (then sign) so duplicates and complementary pairs
	// are adjacent.
	sorted := append([]Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Var() != sorted[j].Var() {
			return sorted[i].Var() < sorted[j].Var()
		}
		return sorted[i] < sorted[j]
	})
	out := sorted[:0]
	var prev Lit
	for _, l := range sorted {
		switch {
		case s.value(l) == lTrue:
			return true // already satisfied
		case s.value(l) == lFalse:
			continue // cannot help
		case l == prev:
			continue // duplicate
		case l == prev.Not() && prev != 0:
			return true // tautology p ∨ ¬p
		}
		out = append(out, l)
		prev = l
	}

	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	default:
		c := &clause{lits: append([]Lit(nil), out...)}
		s.clauses = append(s.clauses, c)
		s.attach(c)
		return true
	}
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not().index()] = append(s.watches[l0.Not().index()], watcher{c: c, blocker: l1})
	s.watches[l1.Not().index()] = append(s.watches[l1.Not().index()], watcher{c: c, blocker: l0})
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl.index()]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl.index()] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assign[v] = boolToLbool(!l.IsNeg())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.polarity[v] = !l.IsNeg()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause,
// or nil when a fixpoint is reached without conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++

		ws := s.watches[p.index()]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, w)
				continue
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize: the false literal (¬p) must be lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not().index()
					s.watches[nw] = append(s.watches[nw], watcher{c: c, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.value(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
				continue
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p.index()] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	reason := conflict

	for {
		s.bumpClause(reason)
		for _, q := range reason.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk backwards to the next marked trail literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		reason = s.reason[v]
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals implied by the rest of the clause
	// through their reasons. The seen marks of dropped literals must be
	// cleared too, so work on a copy and unmark from the original.
	original := append([]Lit(nil), learnt...)
	minimized := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l, original) {
			minimized = append(minimized, l)
		}
	}
	s.stats.MinimizedLits += uint64(len(original) - len(minimized))
	learnt = minimized

	// Backjump level: the second-highest decision level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	for _, l := range original {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// redundant reports whether literal l is implied by the other literals of
// the learned clause via its reason clause (single-step minimization).
func (s *Solver) redundant(l Lit, learnt []Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	inClause := func(v int) bool {
		if s.level[v] == 0 {
			return true
		}
		for _, q := range learnt {
			if q.Var() == v {
				return true
			}
		}
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !inClause(q.Var()) {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.numVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

const (
	varDecay = 0.95
	claDecay = 0.999
)

func (s *Solver) decayActivities() {
	vd := s.opts.VarDecay
	if vd <= 0 || vd >= 1 {
		vd = varDecay
	}
	s.varInc /= vd
	s.claInc /= claDecay
}

// pickBranchVar selects the next decision variable.
func (s *Solver) pickBranchVar() int {
	if s.opts.DisableVSIDS {
		for v := 1; v <= s.numVars; v++ {
			if s.assign[v] == lUndef {
				return v
			}
		}
		return 0
	}
	for {
		v, ok := s.order.pop()
		if !ok {
			return 0
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// reduceDB removes the less active half of the learned clauses.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || len(c.lits) == 2 || s.locked(c) {
			keep = append(keep, c)
			continue
		}
		s.detach(c)
		s.stats.DeletedClauses++
	}
	s.learnts = keep
}

// locked reports whether the clause is the reason for a current assignment.
func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i uint64) uint64 {
	// Find the finite subsequence containing i, then recurse.
	var k uint64 = 1
	for (1<<k)-1 < i {
		k++
	}
	for {
		if (1<<k)-1 == i {
			return 1 << (k - 1)
		}
		i -= (1 << (k - 1)) - 1
		k = 1
		for (1<<k)-1 < i {
			k++
		}
	}
}

// Result is a Solve outcome.
type Result int

// Solve results.
const (
	Unsat Result = iota + 1
	Sat
	// Unknown means the search gave up before an answer: the conflict
	// budget (Options.MaxConflicts) was exhausted or Options.Interrupt
	// fired. The instance is neither proved nor refuted.
	Unknown
)

// Solve runs the CDCL search. It may be called repeatedly; clauses added
// between calls (e.g. counterexample blocking clauses) are honored and
// learned state persists.
func (s *Solver) Solve() Result { return s.SolveAssuming(nil) }

// SolveAssuming runs the search under the given assumption literals
// (MiniSat-style incremental solving): Unsat means the formula is
// unsatisfiable *under the assumptions*; the solver remains usable with
// different assumptions afterwards. Learned clauses never depend on
// assumptions being retracted — each assumption is made at its own
// decision level.
func (s *Solver) SolveAssuming(assumptions []Lit) Result {
	if !s.ok {
		return Unsat
	}
	for _, l := range assumptions {
		if l.Var() > s.numVars {
			return Unsat // assuming an unknown variable: vacuously false
		}
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}

	var conflictsAtStart = s.stats.Conflicts
	restartBase := s.opts.RestartBase
	if restartBase == 0 {
		restartBase = 100
	}
	restartCount := uint64(0)
	conflictBudget := restartBase * luby(restartCount+1)
	conflictsSinceRestart := uint64(0)
	maxLearnts := len(s.clauses)/3 + 100

	for {
		conflict := s.propagate()
		if conflict != nil {
			s.stats.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(conflict)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, activity: s.claInc}
				if !s.opts.DisableLearning {
					s.learnts = append(s.learnts, c)
					s.attach(c)
					s.stats.LearntClauses++
					s.uncheckedEnqueue(learnt[0], c)
				} else {
					// Without learning we still use the clause for the
					// asserting literal, but do not retain it.
					s.uncheckedEnqueue(learnt[0], &clause{lits: learnt})
				}
			}
			s.decayActivities()

			if s.opts.MaxConflicts > 0 &&
				s.stats.Conflicts-conflictsAtStart >= s.opts.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if s.opts.Interrupt != nil && s.opts.Interrupt() {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		// No conflict.
		if !s.opts.DisableRestarts && conflictsSinceRestart >= conflictBudget {
			if s.opts.MaxRestarts > 0 && restartCount >= s.opts.MaxRestarts {
				s.cancelUntil(0)
				return Unknown
			}
			restartCount++
			s.stats.Restarts++
			conflictsSinceRestart = 0
			conflictBudget = restartBase * luby(restartCount+1)
			s.cancelUntil(0)
			continue
		}
		if len(s.learnts) > maxLearnts+len(s.trail) {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}

		// Install pending assumptions, one decision level each.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty decision level so the
				// level↔assumption indexing stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The formula (with learned consequences) contradicts the
				// assumption set.
				s.cancelUntil(0)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
			}
			continue
		}

		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all variables assigned
		}
		s.stats.Decisions++
		// On conflict-free instances the loop above never polls, so check
		// the interrupt on a sparse decision cadence too.
		if s.opts.Interrupt != nil && s.stats.Decisions&255 == 0 && s.opts.Interrupt() {
			s.cancelUntil(0)
			return Unknown
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if d := s.decisionLevel(); d > s.stats.MaxDepth {
			s.stats.MaxDepth = d
		}
		s.uncheckedEnqueue(MkLit(v, !s.polarity[v]), nil)
	}
}

// Value returns the model value of variable v after a Sat answer.
func (s *Solver) Value(v int) bool {
	return s.assign[v] == lTrue
}

// Model returns a copy of the satisfying assignment indexed by variable
// (entry 0 unused). Unassigned variables (possible only before Solve)
// read as false.
func (s *Solver) Model() []bool {
	m := make([]bool, s.numVars+1)
	for v := 1; v <= s.numVars; v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

// Okay reports whether the instance is still possibly satisfiable (false
// once an empty clause has been derived).
func (s *Solver) Okay() bool { return s.ok }

// AssignedAtTopLevel reports whether variable v holds a decision-level-0
// assignment — a fact implied by the clause database rather than any
// retractable decision or assumption.
func (s *Solver) AssignedAtTopLevel(v int) bool {
	return v >= 1 && v <= s.numVars && s.assign[v] != lUndef && s.level[v] == 0
}

// ExportLearnts snapshots the solver's derived knowledge as plain
// clauses: every retained learnt clause plus the top-level implied unit
// facts (single-literal clauses). Any clause or unit mentioning a
// variable for which skip returns true is omitted — callers use this to
// filter out clauses tainted by non-implied additions (e.g. blocking
// clauses gated behind an epoch variable) or by variables whose meaning
// is not stable across runs. A nil skip exports everything.
//
// Every exported clause is a logical consequence of the problem clauses
// alone (assumption literals appear inside learnt clauses rather than
// conditioning them), so re-adding the result to a fresh solver over the
// same CNF — same variable numbering — via AddClause is sound.
func (s *Solver) ExportLearnts(skip func(v int) bool) [][]Lit {
	keep := func(lits []Lit) bool {
		if skip == nil {
			return true
		}
		for _, l := range lits {
			if skip(l.Var()) {
				return false
			}
		}
		return true
	}
	var out [][]Lit
	for _, c := range s.learnts {
		if keep(c.lits) {
			out = append(out, append([]Lit(nil), c.lits...))
		}
	}
	// Top-level units: the trail prefix below the first decision level.
	bound := len(s.trail)
	if len(s.trailLim) > 0 {
		bound = s.trailLim[0]
	}
	for _, l := range s.trail[:bound] {
		if keep([]Lit{l}) {
			out = append(out, []Lit{l})
		}
	}
	return out
}

// ---------------------------------------------------------------- var heap

// varHeap is a max-heap over variable activity used by VSIDS.
type varHeap struct {
	solver *Solver
	heap   []int // variables
	pos    []int // variable → heap index (-1 if absent)
}

func (h *varHeap) less(a, b int) bool {
	return h.solver.activity[a] > h.solver.activity[b]
}

func (h *varHeap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) push(v int) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		h.up(h.pos[v])
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && h.less(h.heap[child+1], h.heap[child]) {
			child++
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.pos[h.heap[i]] = i
		i = child
	}
	h.heap[i] = v
	h.pos[v] = i
}
