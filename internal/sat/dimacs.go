package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CNF is a formula in conjunctive normal form, independent of any solver
// instance: the interchange representation between the Tseitin encoder, the
// solver, and DIMACS files.
type CNF struct {
	NumVars int
	Clauses [][]Lit
}

// AddClause appends a clause, growing NumVars as needed.
func (f *CNF) AddClause(lits ...Lit) {
	cl := append([]Lit(nil), lits...)
	for _, l := range cl {
		if l.Var() > f.NumVars {
			f.NumVars = l.Var()
		}
	}
	f.Clauses = append(f.Clauses, cl)
}

// NewVar allocates a fresh variable.
func (f *CNF) NewVar() int {
	f.NumVars++
	return f.NumVars
}

// LoadInto feeds the formula into a solver; it returns false if the solver
// detects trivial unsatisfiability while loading.
func (f *CNF) LoadInto(s *Solver) bool {
	for s.NumVars() < f.NumVars {
		s.NewVar()
	}
	for _, cl := range f.Clauses {
		if !s.AddClause(cl...) {
			return false
		}
	}
	return true
}

// Solve is a convenience that loads the formula into a fresh solver and
// solves it, returning the result and (when Sat) the model.
func (f *CNF) Solve() (Result, []bool) {
	s := New()
	if !f.LoadInto(s) {
		return Unsat, nil
	}
	res := s.Solve()
	if res != Sat {
		return res, nil
	}
	return Sat, s.Model()
}

// WriteDIMACS writes the formula in DIMACS cnf format.
func (f *CNF) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, cl := range f.Clauses {
		for _, l := range cl {
			if _, err := bw.WriteString(strconv.Itoa(int(l))); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS cnf file. Comment lines (c ...) are skipped;
// the problem line is validated loosely (some generators emit inaccurate
// counts, which are tolerated).
func ParseDIMACS(r io.Reader) (*CNF, error) {
	f := &CNF{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur []Lit
	sawProblem := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNo, line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad variable count %q", lineNo, fields[2])
			}
			f.NumVars = nv
			sawProblem = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNo, tok)
			}
			if n == 0 {
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			cur = append(cur, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.AddClause(cur...)
	}
	if !sawProblem {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	return f, nil
}

// Eval evaluates the formula under a model indexed by variable.
func (f *CNF) Eval(model []bool) bool {
	for _, cl := range f.Clauses {
		sat := false
		for _, l := range cl {
			v := l.Var()
			if v < len(model) && model[v] != l.IsNeg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
