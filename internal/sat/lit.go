// Package sat implements a conflict-driven clause-learning (CDCL)
// propositional satisfiability solver — the reproduction's stand-in for
// ZChaff [Moskewicz et al., DAC 2001], which the paper's xBMC used. It
// implements the algorithm family ZChaff introduced:
//
//   - two-watched-literal unit propagation,
//   - first-UIP conflict analysis with clause learning and
//     non-chronological backjumping,
//   - VSIDS-style decision heuristics with activity decay,
//   - phase saving,
//   - Luby-sequence restarts,
//   - activity-driven learned-clause database reduction.
//
// The solver is incremental in the way the paper's counterexample
// enumeration requires: after a satisfying assignment is found, the caller
// may add a blocking clause and call Solve again; learned clauses and
// heuristic state carry over.
package sat

import (
	"fmt"
	"strconv"
)

// Lit is a literal: a propositional variable or its negation. Variables are
// 1-based; the positive literal of variable v is Lit(+v) and the negative
// literal is Lit(-v), mirroring DIMACS conventions. The zero Lit is invalid.
type Lit int32

// MkLit builds a literal from a 1-based variable index and a sign.
func MkLit(v int, neg bool) Lit {
	if neg {
		return Lit(-v)
	}
	return Lit(v)
}

// Var returns the literal's 1-based variable index.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// IsNeg reports whether the literal is negative.
func (l Lit) IsNeg() bool { return l < 0 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return -l }

// String renders the literal in DIMACS form.
func (l Lit) String() string { return strconv.Itoa(int(l)) }

// index maps the literal to a dense array index: variable v contributes
// slots 2v (positive) and 2v+1 (negative).
func (l Lit) index() int {
	v := l.Var()
	if l.IsNeg() {
		return 2*v + 1
	}
	return 2 * v
}

// lbool is a three-valued boolean.
type lbool uint8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

func (b lbool) negate() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	default:
		return lUndef
	}
}

func (b lbool) String() string {
	switch b {
	case lTrue:
		return "true"
	case lFalse:
		return "false"
	default:
		return "undef"
	}
}

// Stats collects solver counters for benchmarks, ablations, and the
// telemetry layer's per-assertion profiles.
type Stats struct {
	Decisions      uint64
	Propagations   uint64
	Conflicts      uint64
	Restarts       uint64
	LearntClauses  uint64
	DeletedClauses uint64
	// MinimizedLits counts literals dropped from learned clauses by
	// conflict-clause minimization — a direct measure of how much the
	// minimization pass shrinks the learned database.
	MinimizedLits uint64
	MaxDepth      int
}

// Add accumulates o into s; MaxDepth takes the maximum. It is how
// per-assertion stats roll up into a whole-run profile.
func (s *Stats) Add(o Stats) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.LearntClauses += o.LearntClauses
	s.DeletedClauses += o.DeletedClauses
	s.MinimizedLits += o.MinimizedLits
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d deleted=%d minimized=%d",
		s.Decisions, s.Propagations, s.Conflicts, s.Restarts, s.LearntClauses, s.DeletedClauses, s.MinimizedLits)
}
