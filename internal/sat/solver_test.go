package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	if s.Solve() != Sat {
		t.Fatalf("want Sat")
	}
	if !s.Value(v) {
		t.Fatalf("unit clause forces v=true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Lit(v))
	if !s.AddClause(Lit(-v)) {
		// Adding ¬v already detects the contradiction; either way Solve
		// must answer Unsat.
		if s.Solve() != Unsat {
			t.Fatalf("want Unsat")
		}
		return
	}
	if s.Solve() != Unsat {
		t.Fatalf("want Unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatalf("empty clause should report false")
	}
	if s.Solve() != Unsat {
		t.Fatalf("want Unsat")
	}
}

func TestNoClausesIsSat(t *testing.T) {
	s := New()
	s.NewVar()
	s.NewVar()
	if s.Solve() != Sat {
		t.Fatalf("want Sat for empty formula")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	s.AddClause(Lit(v), Lit(-v), Lit(w))
	s.AddClause(Lit(-w))
	if s.Solve() != Sat {
		t.Fatalf("tautological clause must not constrain")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Lit(v), Lit(v), Lit(v))
	if s.Solve() != Sat || !s.Value(v) {
		t.Fatalf("duplicate literals should behave as unit")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3) ∧ … forces all true by propagation alone.
	s := New()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(Lit(vars[0]))
	for i := 1; i < n; i++ {
		s.AddClause(Lit(-vars[i-1]), Lit(vars[i]))
	}
	if s.Solve() != Sat {
		t.Fatalf("want Sat")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("var %d should be true", i)
		}
	}
	if s.Stats().Decisions != 0 {
		t.Fatalf("chain should solve by propagation alone, got %d decisions", s.Stats().Decisions)
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons in n holes, classically UNSAT
// and hard for resolution; exercises learning heavily for small n.
func pigeonhole(pigeons, holes int) *CNF {
	f := &CNF{}
	at := make([][]int, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]int, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = f.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = Lit(at[p][h])
		}
		f.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(Lit(-at[p1][h]), Lit(-at[p2][h]))
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		res, _ := pigeonhole(n+1, n).Solve()
		if res != Unsat {
			t.Fatalf("PHP(%d,%d) must be Unsat, got %v", n+1, n, res)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	f := pigeonhole(4, 4)
	res, model := f.Solve()
	if res != Sat {
		t.Fatalf("PHP(4,4) must be Sat")
	}
	if !f.Eval(model) {
		t.Fatalf("returned model does not satisfy formula")
	}
}

// randomCNF builds a random k-CNF instance.
func randomCNF(r *rand.Rand, nVars, nClauses, k int) *CNF {
	f := &CNF{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		cl := make([]Lit, 0, k)
		for j := 0; j < k; j++ {
			v := r.Intn(nVars) + 1
			cl = append(cl, MkLit(v, r.Intn(2) == 0))
		}
		f.AddClause(cl...)
	}
	return f
}

func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		nVars := 3 + r.Intn(12)
		nClauses := 1 + r.Intn(5*nVars)
		k := 2 + r.Intn(3)
		f := randomCNF(r, nVars, nClauses, k)

		wantSat, _ := BruteSolve(f)
		res, model := f.Solve()
		if wantSat && res != Sat {
			t.Fatalf("iter %d: solver says %v, brute force says SAT\n%+v", i, res, f.Clauses)
		}
		if !wantSat && res != Unsat {
			t.Fatalf("iter %d: solver says %v, brute force says UNSAT\n%+v", i, res, f.Clauses)
		}
		if res == Sat && !f.Eval(model) {
			t.Fatalf("iter %d: model does not satisfy formula", i)
		}
	}
}

func TestRandomAgainstBruteForceAllFeatureCombos(t *testing.T) {
	combos := []Options{
		{},
		{DisableVSIDS: true},
		{DisableLearning: true},
		{DisableRestarts: true},
		{DisableVSIDS: true, DisableLearning: true, DisableRestarts: true},
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		nVars := 3 + r.Intn(10)
		f := randomCNF(r, nVars, 1+r.Intn(4*nVars), 3)
		wantSat, _ := BruteSolve(f)
		for ci, opts := range combos {
			s := NewWith(opts)
			if !f.LoadInto(s) {
				if wantSat {
					t.Fatalf("iter %d combo %d: load says unsat, brute says sat", i, ci)
				}
				continue
			}
			res := s.Solve()
			if wantSat != (res == Sat) {
				t.Fatalf("iter %d combo %d: got %v, want sat=%v", i, ci, res, wantSat)
			}
			if res == Sat && !f.Eval(s.Model()) {
				t.Fatalf("iter %d combo %d: bad model", i, ci)
			}
		}
	}
}

func TestQuickModelsAlwaysSatisfy(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCNF(r, 4+r.Intn(16), 5+r.Intn(60), 3)
		res, model := f.Solve()
		if res != Sat {
			return true // nothing to check
		}
		return f.Eval(model)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalBlockingEnumeration(t *testing.T) {
	// Formula with free variables enumerates exactly its model count.
	f := &CNF{}
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.AddClause(Lit(a), Lit(b)) // a ∨ b
	_ = c                       // free variable, not projected

	models := EnumerateModels(f, []int{a, b}, 0)
	if len(models) != 3 {
		t.Fatalf("models over {a,b} = %d, want 3", len(models))
	}
	seen := map[[2]bool]bool{}
	for _, m := range models {
		seen[[2]bool{m[0], m[1]}] = true
	}
	if seen[[2]bool{false, false}] {
		t.Fatalf("(false,false) violates a∨b")
	}
}

func TestEnumerationMatchesBruteCount(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		nVars := 3 + r.Intn(8)
		f := randomCNF(r, nVars, 1+r.Intn(3*nVars), 3)
		project := make([]int, nVars)
		for v := 1; v <= nVars; v++ {
			project[v-1] = v
		}
		got := len(EnumerateModels(f, project, 0))
		want := BruteCountModels(f)
		if got != want {
			t.Fatalf("iter %d: enumerated %d models, brute force %d", i, got, want)
		}
	}
}

func TestEnumerationLimit(t *testing.T) {
	f := &CNF{}
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(Lit(a), Lit(b))
	if got := len(EnumerateModels(f, []int{a, b}, 2)); got != 2 {
		t.Fatalf("limit ignored: %d", got)
	}
}

func TestSolveAfterUnsatStaysUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Lit(v))
	s.AddClause(Lit(-v))
	if s.Solve() != Unsat {
		t.Fatalf("want Unsat")
	}
	if s.Solve() != Unsat {
		t.Fatalf("Unsat must be sticky")
	}
	if s.AddClause(Lit(v)) {
		t.Fatalf("AddClause after Unsat should report false")
	}
}

func TestConflictBudget(t *testing.T) {
	s := NewWith(Options{MaxConflicts: 1})
	pigeonhole(7, 6).LoadInto(s)
	res := s.Solve()
	if res != Unknown && res != Unsat {
		t.Fatalf("got %v, want Unknown (budget) or fast Unsat", res)
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New()
	pigeonhole(6, 5).LoadInto(s)
	if s.Solve() != Unsat {
		t.Fatalf("want Unsat")
	}
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 {
		t.Fatalf("expected nonzero search stats: %v", st)
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLitBasics(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.IsNeg() {
		t.Fatalf("positive literal wrong")
	}
	n := l.Not()
	if n.Var() != 5 || !n.IsNeg() {
		t.Fatalf("negation wrong")
	}
	if n.Not() != l {
		t.Fatalf("double negation")
	}
	if l.index() == n.index() {
		t.Fatalf("indices must differ")
	}
	if l.String() != "5" || n.String() != "-5" {
		t.Fatalf("String wrong: %s %s", l, n)
	}
}

func TestLargeStructuredInstance(t *testing.T) {
	// A satisfiable graph-coloring-style instance large enough to trigger
	// restarts and clause deletion paths.
	r := rand.New(rand.NewSource(11))
	const nodes, colors = 120, 4
	f := &CNF{}
	vars := make([][]int, nodes)
	for n := range vars {
		vars[n] = make([]int, colors)
		for c := range vars[n] {
			vars[n][c] = f.NewVar()
		}
		cl := make([]Lit, colors)
		for c := range vars[n] {
			cl[c] = Lit(vars[n][c])
		}
		f.AddClause(cl...)
		for c1 := 0; c1 < colors; c1++ {
			for c2 := c1 + 1; c2 < colors; c2++ {
				f.AddClause(Lit(-vars[n][c1]), Lit(-vars[n][c2]))
			}
		}
	}
	// Random sparse edges: adjacent nodes differ in color.
	for i := 0; i < nodes*3; i++ {
		a, b := r.Intn(nodes), r.Intn(nodes)
		if a == b {
			continue
		}
		for c := 0; c < colors; c++ {
			f.AddClause(Lit(-vars[a][c]), Lit(-vars[b][c]))
		}
	}
	res, model := f.Solve()
	if res != Sat {
		t.Fatalf("4-coloring with sparse random edges should be Sat")
	}
	if !f.Eval(model) {
		t.Fatalf("bad model")
	}
}

func TestSolveAssumingBasics(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Lit(a), Lit(b)) // a ∨ b

	if s.SolveAssuming([]Lit{Lit(-a), Lit(-b)}) != Unsat {
		t.Fatalf("¬a ∧ ¬b must contradict a∨b")
	}
	// The solver must stay usable with different assumptions.
	if s.SolveAssuming([]Lit{Lit(-a)}) != Sat {
		t.Fatalf("¬a alone is consistent")
	}
	if !s.Value(b) {
		t.Fatalf("b must be forced under ¬a")
	}
	if s.SolveAssuming(nil) != Sat {
		t.Fatalf("no assumptions: Sat")
	}
	if s.Solve() != Sat {
		t.Fatalf("plain Solve after assumptions must work")
	}
}

func TestSolveAssumingMatchesUnitClauses(t *testing.T) {
	// For random instances and random assumption sets, SolveAssuming(F, A)
	// must agree with Solve(F ∧ A).
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 120; i++ {
		nVars := 4 + r.Intn(8)
		f := randomCNF(r, nVars, 1+r.Intn(3*nVars), 3)
		var assumptions []Lit
		for v := 1; v <= nVars; v++ {
			if r.Intn(3) == 0 {
				assumptions = append(assumptions, MkLit(v, r.Intn(2) == 0))
			}
		}

		shared := New()
		if !f.LoadInto(shared) {
			continue
		}
		got := shared.SolveAssuming(assumptions)

		g := &CNF{NumVars: f.NumVars}
		g.Clauses = append(g.Clauses, f.Clauses...)
		for _, a := range assumptions {
			g.AddClause(a)
		}
		want, _ := g.Solve()
		if got != want {
			t.Fatalf("iter %d: assuming=%v, unit-clauses=%v (assumptions %v)",
				i, got, want, assumptions)
		}
		if got == Sat {
			model := shared.Model()
			if !f.Eval(model) {
				t.Fatalf("iter %d: model does not satisfy formula", i)
			}
			for _, a := range assumptions {
				if model[a.Var()] == a.IsNeg() {
					t.Fatalf("iter %d: model violates assumption %v", i, a)
				}
			}
		}
	}
}

func TestSolveAssumingIncrementalReuse(t *testing.T) {
	// One solver, many assumption sets — the shared-solver BMC pattern.
	s := New()
	x, y, z := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Lit(-x), Lit(y)) // x → y
	s.AddClause(Lit(-y), Lit(z)) // y → z
	cases := []struct {
		assume []Lit
		want   Result
	}{
		{[]Lit{Lit(x)}, Sat},
		{[]Lit{Lit(x), Lit(-z)}, Unsat},
		{[]Lit{Lit(-z)}, Sat},
		{[]Lit{Lit(x), Lit(z)}, Sat},
		{[]Lit{Lit(x), Lit(-y)}, Unsat},
		{nil, Sat},
	}
	for i, c := range cases {
		if got := s.SolveAssuming(c.assume); got != c.want {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestSolveAssumingUnknownVar(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Lit(v))
	if s.SolveAssuming([]Lit{Lit(99)}) != Unsat {
		t.Fatalf("assumption over unallocated variable should be Unsat")
	}
}
