package sat

import "testing"

// TestInterruptStopsSearch aborts a hard UNSAT instance through the
// Interrupt poll and then, with the interrupt released, finishes the
// same search on the same solver — the solver must stay usable.
func TestInterruptStopsSearch(t *testing.T) {
	stop := false
	polls := 0
	s := NewWith(Options{Interrupt: func() bool {
		polls++
		return stop
	}})
	pigeonhole(7, 6).LoadInto(s)

	stop = true
	if res := s.Solve(); res != Unknown {
		t.Fatalf("interrupted Solve = %v, want Unknown", res)
	}
	if polls == 0 {
		t.Fatal("Interrupt was never polled")
	}

	stop = false
	if res := s.Solve(); res != Unsat {
		t.Fatalf("resumed Solve = %v, want Unsat", res)
	}
}

// TestInterruptPolledBetweenDecisions covers the conflict-free path: a
// formula of free variables produces decisions but no conflicts, so the
// sparse decision-cadence poll is the only thing that can stop it.
func TestInterruptPolledBetweenDecisions(t *testing.T) {
	s := NewWith(Options{Interrupt: func() bool { return true }})
	f := &CNF{NumVars: 600}
	f.AddClause(Lit(1), Lit(2))
	f.LoadInto(s)
	if res := s.Solve(); res != Unknown {
		t.Fatalf("Solve = %v, want Unknown (decision-cadence interrupt)", res)
	}
	if s.Stats().Decisions == 0 {
		t.Fatal("no decisions recorded")
	}
}

// TestMaxConflictsThenFinish exhausts a small conflict budget, then
// verifies Solve can be called again and — budget reset per call —
// eventually terminates.
func TestMaxConflictsThenFinish(t *testing.T) {
	s := NewWith(Options{MaxConflicts: 2})
	pigeonhole(6, 5).LoadInto(s)
	sawUnknown := false
	for i := 0; i < 10_000; i++ {
		switch res := s.Solve(); res {
		case Unknown:
			sawUnknown = true
		case Unsat:
			if !sawUnknown {
				t.Skip("instance solved under budget on this search order")
			}
			return // finished across repeated budgeted calls
		case Sat:
			t.Fatal("pigeonhole(6,5) reported Sat")
		}
	}
	t.Fatal("budgeted re-solving never terminated")
}
