package sat

// Learnt-clause persistence: the wire form under which a solver's
// exported learnt clauses are stored (internal/store) and re-imported to
// warm-start a later run over the same formula. The blob binds itself to
// the exact CNF it was learnt from via HashCNF — literal indices are
// meaningful only under that formula's variable numbering — and carries
// its own schema version so a format change degrades to a cache miss,
// never a misread. Decode validates everything it touches; any
// truncation, overflow, or version mismatch returns an error and the
// caller falls back to a cold solve.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// learntBlobMagic and learntBlobVersion frame a learnt-clause blob.
// Bump the version whenever the payload layout changes: old blobs then
// fail Decode and are treated as misses.
const (
	learntBlobMagic   = "WSLC"
	learntBlobVersion = 1
)

// ErrLearntBlob is wrapped by every DecodeLearntBlob failure.
var ErrLearntBlob = errors.New("sat: malformed learnt-clause blob")

// HashCNF fingerprints a formula — variable count plus every clause's
// literals in order — for use as a learnt-blob binding. Two CNFs with
// equal hashes share variable numbering for all practical purposes, so
// clauses learnt over one are sound over the other.
func HashCNF(f *CNF) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(f.NumVars))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(f.Clauses)))
	h.Write(buf[:])
	for _, cl := range f.Clauses {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(cl)))
		h.Write(buf[:])
		for _, l := range cl {
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(l)))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// EncodeLearntBlob serializes learnt clauses against the formula hash
// they were derived under. Layout: magic, version byte, CNF hash,
// clause count, then each clause as a length-prefixed run of zig-zag
// varint literals.
func EncodeLearntBlob(cnfHash uint64, clauses [][]Lit) []byte {
	out := make([]byte, 0, 16+8*len(clauses))
	out = append(out, learntBlobMagic...)
	out = append(out, learntBlobVersion)
	out = binary.LittleEndian.AppendUint64(out, cnfHash)
	out = binary.AppendUvarint(out, uint64(len(clauses)))
	for _, cl := range clauses {
		out = binary.AppendUvarint(out, uint64(len(cl)))
		for _, l := range cl {
			out = binary.AppendVarint(out, int64(l))
		}
	}
	return out
}

// DecodeLearntBlob parses a blob produced by EncodeLearntBlob,
// returning the CNF hash it is bound to and the clauses. Every decode
// failure wraps ErrLearntBlob; callers treat it as a store miss.
func DecodeLearntBlob(blob []byte) (cnfHash uint64, clauses [][]Lit, err error) {
	fail := func(what string) (uint64, [][]Lit, error) {
		return 0, nil, fmt.Errorf("%w: %s", ErrLearntBlob, what)
	}
	if len(blob) < len(learntBlobMagic)+1+8 {
		return fail("truncated header")
	}
	if string(blob[:len(learntBlobMagic)]) != learntBlobMagic {
		return fail("bad magic")
	}
	rest := blob[len(learntBlobMagic):]
	if rest[0] != learntBlobVersion {
		return fail(fmt.Sprintf("unsupported version %d", rest[0]))
	}
	rest = rest[1:]
	cnfHash = binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || n > uint64(len(blob)) { // each clause costs ≥1 byte
		return fail("bad clause count")
	}
	rest = rest[sz:]
	clauses = make([][]Lit, 0, n)
	for i := uint64(0); i < n; i++ {
		cn, csz := binary.Uvarint(rest)
		if csz <= 0 || cn == 0 || cn > uint64(len(rest)) {
			return fail("bad clause length")
		}
		rest = rest[csz:]
		cl := make([]Lit, 0, cn)
		for j := uint64(0); j < cn; j++ {
			v, vsz := binary.Varint(rest)
			if vsz <= 0 || v == 0 || v > 1<<31-1 || v < -(1<<31-1) {
				return fail("bad literal")
			}
			rest = rest[vsz:]
			cl = append(cl, Lit(v))
		}
		clauses = append(clauses, cl)
	}
	if len(rest) != 0 {
		return fail("trailing bytes")
	}
	return cnfHash, clauses, nil
}
