package sat

// BruteSolve decides satisfiability of a CNF by exhaustive enumeration.
// It is the reference oracle for the CDCL solver's property tests and is
// usable only for small variable counts (it refuses more than 25).
func BruteSolve(f *CNF) (sat bool, model []bool) {
	if f.NumVars > 25 {
		panic("sat: BruteSolve limited to 25 variables")
	}
	n := f.NumVars
	model = make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			model[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Eval(model) {
			return true, model
		}
	}
	return false, nil
}

// BruteCountModels counts the satisfying assignments of a CNF over its
// declared variables by exhaustive enumeration (≤ 25 variables).
func BruteCountModels(f *CNF) int {
	if f.NumVars > 25 {
		panic("sat: BruteCountModels limited to 25 variables")
	}
	n := f.NumVars
	model := make([]bool, n+1)
	count := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			model[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Eval(model) {
			count++
		}
	}
	return count
}

// EnumerateModels returns every satisfying assignment projected onto the
// given variables, using the solver incrementally with blocking clauses —
// the same loop the BMC engine uses to enumerate counterexamples. The
// number of models returned is bounded by limit (0 = unlimited).
func EnumerateModels(f *CNF, project []int, limit int) [][]bool {
	s := New()
	if !f.LoadInto(s) {
		return nil
	}
	var out [][]bool
	for s.Solve() == Sat {
		assignment := make([]bool, len(project))
		blocking := make([]Lit, len(project))
		for i, v := range project {
			assignment[i] = s.Value(v)
			blocking[i] = MkLit(v, s.Value(v)) // negation of the current value
		}
		out = append(out, assignment)
		if limit > 0 && len(out) >= limit {
			break
		}
		if len(blocking) == 0 {
			break // no projection variables: a single model class
		}
		if !s.AddClause(blocking...) {
			break
		}
	}
	return out
}
