package sat

// Portfolio presets: fixed solver configurations with deliberately
// different restart, decision, and phase heuristics, raced against each
// other on hard instances (core's portfolio mode). Preset 0 is always
// the caller's own configuration untouched — the deterministic
// tie-break anchor — so a portfolio of width 1 degenerates to the plain
// solve. The remaining presets cycle through heuristic variations that
// keep completeness (no preset ever drops learning wholesale or answers
// differently on a decided instance; only search order changes).

// PortfolioWidthMax bounds the useful portfolio width: beyond the
// distinct presets, further lanes would duplicate configurations.
const PortfolioWidthMax = 1 + len(portfolioVariants)

// portfolioVariants are the deltas applied on top of the base options
// for lanes 1..N. Ordering is part of the wire-visible determinism
// contract: lane i always means the same heuristics.
var portfolioVariants = [...]func(o *Options){
	// Lane 1: opposite initial phase — explores the complementary side
	// of the search tree first.
	func(o *Options) { o.InitialPhase = !o.InitialPhase },
	// Lane 2: aggressive restarts with a fast-decaying VSIDS — chases
	// recent conflicts hard.
	func(o *Options) { o.RestartBase = 32; o.VarDecay = 0.85 },
	// Lane 3: slow restarts with a long activity memory — commits to
	// deep dives.
	func(o *Options) { o.RestartBase = 512; o.VarDecay = 0.99 },
	// Lane 4: no restarts at all, opposite phase — the classic
	// completeness lane for satisfiable instances.
	func(o *Options) { o.DisableRestarts = true; o.InitialPhase = !o.InitialPhase },
}

// PortfolioPreset derives lane i's solver options from the base
// configuration. Lane 0 is the base itself; lanes beyond the distinct
// variants wrap around (callers should clamp width to
// PortfolioWidthMax). Budgets (MaxConflicts, MaxRestarts) and the
// Interrupt hook are inherited unchanged so every lane honors the same
// resource ceilings.
func PortfolioPreset(i int, base Options) Options {
	o := base
	if i <= 0 {
		return o
	}
	portfolioVariants[(i-1)%len(portfolioVariants)](&o)
	return o
}
