// Package constraint implements the constraint construction procedure
// C(c, g) of Figure 5: it walks the renamed AI, threading the guard g
// (initially true) through commands, and produces
//
//   - one guarded equation  t(vα) = g ? e : t(vα-1)  per assignment,
//   - one guarded check     g ⇒ ⋀ t(arg) < τr       per assertion.
//
// Guards are boolean expressions over the nondeterministic branch
// variables BN. The paper's Figure 5 maps stop to the trivial constraint
// true; this implementation refines that by tracking the continuation
// guard — after "if b { stop }" the rest of the sequence runs under g∧¬b —
// which keeps the encoding exactly faithful to the AI's execution semantics
// (and to the reference evaluator in package ai).
//
// Per §3.3.2, the per-assertion formula is
//
//	B_i = C(c, g) ∧ ¬C(assert_i, g)
//
// where c is the concatenation of all commands preceding assert_i, and —
// following the paper's iteration — every already-checked assertion is
// added positively before moving to the next one.
package constraint

import (
	"fmt"
	"strings"

	"webssari/internal/rename"
)

// Bool is a guard formula over branch variables.
type Bool interface {
	boolExpr()
	String() string
}

// True is the constant true guard.
type True struct{}

// False is the constant false guard (unreachable code after stop).
type False struct{}

// Branch is a literal over nondeterministic branch variable b_ID.
type Branch struct {
	ID  int
	Neg bool
}

// And is conjunction.
type And struct {
	Parts []Bool
}

// Or is disjunction.
type Or struct {
	Parts []Bool
}

func (True) boolExpr()   {}
func (False) boolExpr()  {}
func (Branch) boolExpr() {}
func (And) boolExpr()    {}
func (Or) boolExpr()     {}

// String implements Bool.
func (True) String() string { return "true" }

// String implements Bool.
func (False) String() string { return "false" }

// String implements Bool.
func (b Branch) String() string {
	if b.Neg {
		return fmt.Sprintf("¬b%d", b.ID)
	}
	return fmt.Sprintf("b%d", b.ID)
}

// String implements Bool.
func (a And) String() string { return joinBools(a.Parts, " ∧ ") }

// String implements Bool.
func (o Or) String() string { return joinBools(o.Parts, " ∨ ") }

func joinBools(parts []Bool, sep string) string {
	ss := make([]string, len(parts))
	for i, p := range parts {
		ss[i] = p.String()
	}
	return "(" + strings.Join(ss, sep) + ")"
}

// MkAnd builds a simplified conjunction.
func MkAnd(parts ...Bool) Bool {
	var flat []Bool
	for _, p := range parts {
		switch p := p.(type) {
		case nil, True:
			continue
		case False:
			return False{}
		case And:
			flat = append(flat, p.Parts...)
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	default:
		return And{Parts: flat}
	}
}

// MkOr builds a simplified disjunction.
func MkOr(parts ...Bool) Bool {
	var flat []Bool
	for _, p := range parts {
		switch p := p.(type) {
		case nil, False:
			continue
		case True:
			return True{}
		case Or:
			flat = append(flat, p.Parts...)
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return False{}
	case 1:
		return flat[0]
	default:
		return Or{Parts: flat}
	}
}

// EvalBool evaluates a guard under a branch assignment (missing branches
// default to false, matching "branch not taken").
func EvalBool(b Bool, branches map[int]bool) bool {
	switch b := b.(type) {
	case True:
		return true
	case False:
		return false
	case Branch:
		return branches[b.ID] != b.Neg
	case And:
		for _, p := range b.Parts {
			if !EvalBool(p, branches) {
				return false
			}
		}
		return true
	case Or:
		for _, p := range b.Parts {
			if EvalBool(p, branches) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// BoolBranches returns the branch IDs a guard mentions.
func BoolBranches(b Bool) []int {
	seen := make(map[int]bool)
	var order []int
	var walk func(Bool)
	walk = func(b Bool) {
		switch b := b.(type) {
		case Branch:
			if !seen[b.ID] {
				seen[b.ID] = true
				order = append(order, b.ID)
			}
		case And:
			for _, p := range b.Parts {
				walk(p)
			}
		case Or:
			for _, p := range b.Parts {
				walk(p)
			}
		}
	}
	walk(b)
	return order
}

// Equation is the Figure 5 constraint for one single assignment:
// t(V) = Guard ? RHS : t(Prev), where Prev is V with index α−1.
type Equation struct {
	V     rename.SSAVar
	Guard Bool
	RHS   rename.Expr
	// Prev is the previous index of the same variable (Idx = V.Idx−1).
	Prev rename.SSAVar
	// Origin is the renamed assignment this equation encodes.
	Origin *rename.Set
}

// String renders the equation as in Figure 6's constraint column.
func (e Equation) String() string {
	return fmt.Sprintf("t(%s) = %s ? %s : t(%s)", e.V, e.Guard, e.RHS, e.Prev)
}

// BranchMark records a nondeterministic branch's position in the command
// order, so the encoder can allocate a BN variable for every branch in an
// assertion's prefix — including branches that guard no assignment (empty
// arms), whose decisions still distinguish counterexample traces.
type BranchMark struct {
	ID   int
	Tick int
}

// Check is the Figure 5 constraint for one assertion:
// Guard ⇒ ⋀_args t(arg) < Bound (the bound lives in Origin).
type Check struct {
	// ID is the assertion's index in textual order.
	ID    int
	Guard Bool
	// Origin carries the renamed assertion (args, bound, source site).
	Origin *rename.Assert
	// Prefix is the number of equations that precede this assertion: the
	// formula B_i contains exactly Equations[:Prefix].
	Prefix int
	// Tick is the assertion's position in the global command order,
	// comparable with BranchMark.Tick.
	Tick int
}

// String renders the check.
func (c Check) String() string {
	args := make([]string, len(c.Origin.Args))
	for i, a := range c.Origin.Args {
		args[i] = a.Expr.String()
	}
	return fmt.Sprintf("%s ⇒ (%s < τr)", c.Guard, strings.Join(args, ", "))
}

// System is the constraint view of a renamed program: the ordered
// equations plus one check per assertion.
type System struct {
	Renamed   *rename.Program
	Equations []Equation
	Checks    []Check
	// Marks lists every branch with its command-order position.
	Marks []BranchMark
}

// Build runs the constraint construction procedure over the whole renamed
// program.
func Build(p *rename.Program) *System {
	s := &System{Renamed: p}
	tick := 0
	s.walk(p.Cmds, True{}, &tick)
	return s
}

// PrefixBranches returns the IDs of every branch preceding the check in
// command order — the BN variables of the formula B_i.
func (s *System) PrefixBranches(c Check) []int {
	var out []int
	for _, m := range s.Marks {
		if m.Tick < c.Tick {
			out = append(out, m.ID)
		}
	}
	return out
}

// walk processes a command sequence under guard g and returns the
// continuation guard (False after an unconditional stop; g∧¬b style
// refinements after conditional stops).
func (s *System) walk(cmds []rename.Cmd, g Bool, tick *int) Bool {
	for _, c := range cmds {
		*tick++
		switch c := c.(type) {
		case *rename.Set:
			s.Equations = append(s.Equations, Equation{
				V:      c.V,
				Guard:  g,
				RHS:    c.RHS,
				Prev:   rename.SSAVar{Name: c.V.Name, Idx: c.V.Idx - 1},
				Origin: c,
			})
		case *rename.Assert:
			s.Checks = append(s.Checks, Check{
				ID:     c.ID,
				Guard:  g,
				Origin: c,
				Prefix: len(s.Equations),
				Tick:   *tick,
			})
		case *rename.If:
			s.Marks = append(s.Marks, BranchMark{ID: c.ID, Tick: *tick})
			bPos := Branch{ID: c.ID}
			bNeg := Branch{ID: c.ID, Neg: true}
			gThen := s.walk(c.Then, MkAnd(g, bPos), tick)
			gElse := s.walk(c.Else, MkAnd(g, bNeg), tick)
			// Continuation: either arm completed without stopping. When
			// neither arm contains a stop this simplifies back to g.
			if isAndOf(gThen, g, bPos) && isAndOf(gElse, g, bNeg) {
				// Neither arm stopped.
				continue
			}
			g = MkOr(gThen, gElse)
		case *rename.Stop:
			g = False{}
		}
	}
	return g
}

// isAndOf reports whether got is exactly MkAnd(g, lit) — the unchanged
// continuation guard of a stop-free arm.
func isAndOf(got Bool, g Bool, lit Branch) bool {
	want := MkAnd(g, lit)
	return got.String() == want.String()
}

// String renders the whole system.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "constraints for %s\n", s.Renamed.AI.File)
	for _, eq := range s.Equations {
		fmt.Fprintf(&b, "  %s\n", eq)
	}
	for _, ch := range s.Checks {
		fmt.Fprintf(&b, "  assert_%d: %s\n", ch.ID, ch)
	}
	return b.String()
}
