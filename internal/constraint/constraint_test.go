package constraint

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/rename"
)

// buildSys builds the constraint system for a PHP source.
func buildSys(t *testing.T, src string) *System {
	t.Helper()
	prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
	for _, err := range errs {
		t.Fatalf("build: %v", err)
	}
	return Build(rename.Rename(prog))
}

func TestGuardConstructors(t *testing.T) {
	b0 := Branch{ID: 0}
	nb0 := Branch{ID: 0, Neg: true}

	if MkAnd().String() != "true" {
		t.Errorf("empty MkAnd = %v", MkAnd())
	}
	if MkOr().String() != "false" {
		t.Errorf("empty MkOr = %v", MkOr())
	}
	if got := MkAnd(True{}, b0).String(); got != "b0" {
		t.Errorf("And(true,b0) = %q", got)
	}
	if got := MkAnd(False{}, b0).String(); got != "false" {
		t.Errorf("And(false,b0) = %q", got)
	}
	if got := MkOr(True{}, b0).String(); got != "true" {
		t.Errorf("Or(true,b0) = %q", got)
	}
	if got := MkOr(False{}, nb0).String(); got != "¬b0" {
		t.Errorf("Or(false,¬b0) = %q", got)
	}
	// Nested junctions flatten.
	g := MkAnd(b0, MkAnd(Branch{ID: 1}, Branch{ID: 2}))
	if and, ok := g.(And); !ok || len(and.Parts) != 3 {
		t.Errorf("nested And not flattened: %v", g)
	}
	g = MkOr(b0, MkOr(Branch{ID: 1}, Branch{ID: 2}))
	if or, ok := g.(Or); !ok || len(or.Parts) != 3 {
		t.Errorf("nested Or not flattened: %v", g)
	}
}

func TestEvalBool(t *testing.T) {
	b0, b1 := Branch{ID: 0}, Branch{ID: 1}
	env := map[int]bool{0: true, 1: false}
	cases := []struct {
		g    Bool
		want bool
	}{
		{True{}, true},
		{False{}, false},
		{b0, true},
		{b1, false},
		{Branch{ID: 1, Neg: true}, true},
		{MkAnd(b0, b1), false},
		{MkAnd(b0, Branch{ID: 1, Neg: true}), true},
		{MkOr(b1, b0), true},
		{MkOr(b1, False{}), false},
		{Branch{ID: 9}, false}, // unassigned branches default to not-taken
	}
	for i, c := range cases {
		if got := EvalBool(c.g, env); got != c.want {
			t.Errorf("case %d: EvalBool(%v) = %v, want %v", i, c.g, got, c.want)
		}
	}
}

func TestBoolBranches(t *testing.T) {
	g := MkOr(MkAnd(Branch{ID: 2}, Branch{ID: 0}), Branch{ID: 2, Neg: true})
	ids := BoolBranches(g)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 0 {
		t.Fatalf("branches = %v, want [2 0] (first-appearance order, deduped)", ids)
	}
}

func TestStraightLineGuardsAreTrue(t *testing.T) {
	sys := buildSys(t, `<?php $x = $_GET['a']; $y = $x; echo $y;`)
	if len(sys.Equations) != 2 || len(sys.Checks) != 1 {
		t.Fatalf("shape = %d eq / %d checks", len(sys.Equations), len(sys.Checks))
	}
	for _, eq := range sys.Equations {
		if _, ok := eq.Guard.(True); !ok {
			t.Errorf("equation %v: guard %v, want true", eq.V, eq.Guard)
		}
	}
	if _, ok := sys.Checks[0].Guard.(True); !ok {
		t.Errorf("check guard %v, want true", sys.Checks[0].Guard)
	}
}

func TestBranchGuards(t *testing.T) {
	sys := buildSys(t, `<?php
if ($c) { $x = $_GET['a']; } else { $x = 'ok'; }
echo $x;`)
	if len(sys.Equations) != 2 {
		t.Fatalf("equations = %d", len(sys.Equations))
	}
	if got := sys.Equations[0].Guard.String(); got != "b0" {
		t.Errorf("then guard = %q", got)
	}
	if got := sys.Equations[1].Guard.String(); got != "¬b0" {
		t.Errorf("else guard = %q", got)
	}
	// The equation chain: x@2 = ¬b0 ? ok : x@1.
	if sys.Equations[1].V != (rename.SSAVar{Name: "x", Idx: 2}) {
		t.Errorf("second target = %v", sys.Equations[1].V)
	}
	if sys.Equations[1].Prev != (rename.SSAVar{Name: "x", Idx: 1}) {
		t.Errorf("second prev = %v", sys.Equations[1].Prev)
	}
}

func TestNestedBranchGuards(t *testing.T) {
	sys := buildSys(t, `<?php
if ($a) { if ($b) { $x = 1; } }
echo $x;`)
	if len(sys.Equations) != 1 {
		t.Fatalf("equations = %d", len(sys.Equations))
	}
	if got := sys.Equations[0].Guard.String(); got != "(b0 ∧ b1)" {
		t.Errorf("nested guard = %q", got)
	}
}

func TestStopRefinesContinuationGuard(t *testing.T) {
	sys := buildSys(t, `<?php
$x = $_GET['a'];
if ($c) { exit; }
echo $x;`)
	if len(sys.Checks) != 1 {
		t.Fatalf("checks = %d", len(sys.Checks))
	}
	// After "if b0 { stop }", the remainder runs under ¬b0.
	got := sys.Checks[0].Guard.String()
	if !strings.Contains(got, "¬b0") {
		t.Errorf("post-stop guard = %q, want mention of ¬b0", got)
	}
}

func TestUnconditionalStopKillsGuard(t *testing.T) {
	sys := buildSys(t, `<?php
$x = $_GET['a'];
exit;
echo $x;`)
	if len(sys.Checks) != 1 {
		t.Fatalf("checks = %d", len(sys.Checks))
	}
	if _, ok := sys.Checks[0].Guard.(False); !ok {
		t.Errorf("guard after unconditional stop = %v, want false", sys.Checks[0].Guard)
	}
}

func TestStopInBothArms(t *testing.T) {
	sys := buildSys(t, `<?php
if ($c) { exit; } else { exit; }
echo $_GET['x'];`)
	if _, ok := sys.Checks[0].Guard.(False); !ok {
		t.Errorf("guard = %v, want false (both arms stop)", sys.Checks[0].Guard)
	}
}

func TestStopFreeArmsKeepSimpleGuard(t *testing.T) {
	// No stops anywhere: continuation guards must simplify back to the
	// enclosing guard, not balloon into (g∧b)∨(g∧¬b) disjunctions.
	sys := buildSys(t, `<?php
if ($a) { $x = 1; } else { $x = 2; }
if ($b) { $y = 3; }
echo $_GET['q'];`)
	if got := sys.Checks[0].Guard.String(); got != "true" {
		t.Errorf("check guard = %q, want true", got)
	}
}

func TestPrefixBranchesIncludesEmptyArms(t *testing.T) {
	sys := buildSys(t, `<?php
if ($pad) { }
echo $_GET['x'];
if ($after) { }`)
	ids := sys.PrefixBranches(sys.Checks[0])
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("prefix branches = %v, want [0] (empty if before, not after)", ids)
	}
}

func TestChecksCarryPrefix(t *testing.T) {
	sys := buildSys(t, `<?php
$a = 1;
echo $_GET['x'];
$b = 2;
echo $_GET['y'];`)
	if sys.Checks[0].Prefix != 1 || sys.Checks[1].Prefix != 2 {
		t.Fatalf("prefixes = %d,%d want 1,2", sys.Checks[0].Prefix, sys.Checks[1].Prefix)
	}
	if sys.Checks[0].ID != 0 || sys.Checks[1].ID != 1 {
		t.Fatalf("IDs = %d,%d", sys.Checks[0].ID, sys.Checks[1].ID)
	}
}

func TestSystemString(t *testing.T) {
	sys := buildSys(t, `<?php if ($c) { $x = $_GET['a']; } echo $x;`)
	s := sys.String()
	for _, frag := range []string{"t(x@1) = b0 ? t(_GET@0) : t(x@0)", "assert_0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("system dump missing %q:\n%s", frag, s)
		}
	}
}

// TestGuardAlgebraQuick checks MkAnd/MkOr against direct evaluation under
// random environments.
func TestGuardAlgebraQuick(t *testing.T) {
	genGuard := func(r *rand.Rand, depth int) Bool {
		var g func(depth int) Bool
		g = func(depth int) Bool {
			if depth == 0 {
				switch r.Intn(4) {
				case 0:
					return True{}
				case 1:
					return False{}
				default:
					return Branch{ID: r.Intn(4), Neg: r.Intn(2) == 0}
				}
			}
			a, b := g(depth-1), g(depth-1)
			if r.Intn(2) == 0 {
				return MkAnd(a, b)
			}
			return MkOr(a, b)
		}
		return g(depth)
	}
	property := func(seed int64, envBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		env := map[int]bool{}
		for i := 0; i < 4; i++ {
			env[i] = envBits&(1<<uint(i)) != 0
		}
		a := genGuard(r, 3)
		b := genGuard(r, 3)
		// MkAnd/MkOr must agree with pointwise semantics.
		if EvalBool(MkAnd(a, b), env) != (EvalBool(a, env) && EvalBool(b, env)) {
			return false
		}
		if EvalBool(MkOr(a, b), env) != (EvalBool(a, env) || EvalBool(b, env)) {
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
