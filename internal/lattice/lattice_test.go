package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustChain(t *testing.T, names ...string) *Lattice {
	t.Helper()
	l, err := Chain(names...)
	if err != nil {
		t.Fatalf("Chain(%v): %v", names, err)
	}
	return l
}

func mustDiamond(t *testing.T) *Lattice {
	t.Helper()
	l, err := Diamond("bot", "left", "right", "top")
	if err != nil {
		t.Fatalf("Diamond: %v", err)
	}
	return l
}

func TestTaintLattice(t *testing.T) {
	l := Taint()
	if l.Size() != 2 {
		t.Fatalf("Size = %d, want 2", l.Size())
	}
	u, ok := l.Lookup(UntaintedName)
	if !ok {
		t.Fatalf("Lookup(%q) failed", UntaintedName)
	}
	ta, ok := l.Lookup(TaintedName)
	if !ok {
		t.Fatalf("Lookup(%q) failed", TaintedName)
	}
	if l.Bottom() != u {
		t.Errorf("Bottom = %v, want untainted", l.Name(l.Bottom()))
	}
	if l.Top() != ta {
		t.Errorf("Top = %v, want tainted", l.Name(l.Top()))
	}
	if !l.Lt(u, ta) {
		t.Errorf("want untainted < tainted")
	}
	if l.Lt(ta, u) {
		t.Errorf("tainted < untainted should be false")
	}
	if got := l.Join(u, ta); got != ta {
		t.Errorf("Join(u,t) = %v, want tainted", l.Name(got))
	}
	if got := l.Meet(u, ta); got != u {
		t.Errorf("Meet(u,t) = %v, want untainted", l.Name(got))
	}
}

func TestChainOrder(t *testing.T) {
	l := mustChain(t, "a", "b", "c", "d")
	a, _ := l.Lookup("a")
	b, _ := l.Lookup("b")
	c, _ := l.Lookup("c")
	d, _ := l.Lookup("d")
	if l.Bottom() != a || l.Top() != d {
		t.Fatalf("bounds = %v,%v want a,d", l.Name(l.Bottom()), l.Name(l.Top()))
	}
	if !l.Leq(a, c) || !l.Leq(b, b) || l.Leq(c, b) {
		t.Errorf("chain order wrong")
	}
	if l.Join(b, c) != c || l.Meet(b, c) != b {
		t.Errorf("chain join/meet wrong")
	}
	if got := l.JoinAll(a, b, d); got != d {
		t.Errorf("JoinAll = %v want d", l.Name(got))
	}
	if got := l.MeetAll(b, c, d); got != b {
		t.Errorf("MeetAll = %v want b", l.Name(got))
	}
}

func TestEmptyJoinMeetConventions(t *testing.T) {
	l := mustChain(t, "lo", "mid", "hi")
	if got := l.JoinAll(); got != l.Bottom() {
		t.Errorf("JoinAll() = %v, want bottom", l.Name(got))
	}
	if got := l.MeetAll(); got != l.Top() {
		t.Errorf("MeetAll() = %v, want top", l.Name(got))
	}
}

func TestDiamondIncomparable(t *testing.T) {
	l := mustDiamond(t)
	le, _ := l.Lookup("left")
	ri, _ := l.Lookup("right")
	bo, _ := l.Lookup("bot")
	to, _ := l.Lookup("top")
	if l.Leq(le, ri) || l.Leq(ri, le) {
		t.Errorf("left and right must be incomparable")
	}
	if l.Join(le, ri) != to {
		t.Errorf("Join(left,right) = %v, want top", l.Name(l.Join(le, ri)))
	}
	if l.Meet(le, ri) != bo {
		t.Errorf("Meet(left,right) = %v, want bot", l.Name(l.Meet(le, ri)))
	}
}

func TestDownStrict(t *testing.T) {
	l := mustDiamond(t)
	to, _ := l.Lookup("top")
	le, _ := l.Lookup("left")
	bo, _ := l.Lookup("bot")
	down := l.DownStrict(to)
	if len(down) != 3 {
		t.Fatalf("DownStrict(top) = %d elems, want 3", len(down))
	}
	down = l.DownStrict(le)
	if len(down) != 1 || down[0] != bo {
		t.Fatalf("DownStrict(left) = %v, want [bot]", down)
	}
	if got := l.DownStrict(bo); len(got) != 0 {
		t.Fatalf("DownStrict(bot) = %v, want empty", got)
	}
	if got := l.DownClosed(bo); len(got) != 1 {
		t.Fatalf("DownClosed(bot) = %v, want [bot]", got)
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewBuilder()
	x := b.Add("x")
	y := b.Add("y")
	b.Covers(y, x)
	b.Covers(x, y)
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted a cyclic order")
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder()
	b.Add("x")
	b.Add("x")
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted duplicate element names")
	}
}

func TestBuilderRejectsNonLattice(t *testing.T) {
	// Two incomparable elements with no common upper bound: not a lattice.
	b := NewBuilder()
	b.Add("a")
	b.Add("b")
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted an order with no top")
	}

	// The "hexagon" with two minimal upper bounds for (a, b): ⊥ < a,b;
	// a,b < c,d; c,d < ⊤. Join(a,b) is not unique, so not a lattice.
	b = NewBuilder()
	bo := b.Add("bot")
	a := b.Add("a")
	bb := b.Add("b")
	c := b.Add("c")
	d := b.Add("d")
	to := b.Add("top")
	b.Covers(a, bo)
	b.Covers(bb, bo)
	b.Covers(c, a)
	b.Covers(c, bb)
	b.Covers(d, a)
	b.Covers(d, bb)
	b.Covers(to, c)
	b.Covers(to, d)
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted a non-lattice order (non-unique lub)")
	}
}

func TestBuilderRejectsEmptyAndBadCovers(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatalf("Build accepted empty order")
	}
	b := NewBuilder()
	x := b.Add("x")
	b.Covers(x, x)
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted self-cover")
	}
	b = NewBuilder()
	x = b.Add("x")
	b.Covers(x, Elem(7))
	if _, err := b.Build(); err == nil {
		t.Fatalf("Build accepted out-of-range cover")
	}
}

func TestProduct(t *testing.T) {
	sql := mustChain(t, "sqlsafe", "sqltaint")
	html := mustChain(t, "htmlsafe", "htmltaint")
	p, err := Product(sql, html)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	bot := p.Bottom()
	top := p.Top()
	if p.Name(bot) != "sqlsafe·htmlsafe" {
		t.Errorf("bottom = %q", p.Name(bot))
	}
	if p.Name(top) != "sqltaint·htmltaint" {
		t.Errorf("top = %q", p.Name(top))
	}
	st, _ := p.Lookup("sqltaint·htmlsafe")
	ht, _ := p.Lookup("sqlsafe·htmltaint")
	if p.Leq(st, ht) || p.Leq(ht, st) {
		t.Errorf("mixed taints should be incomparable")
	}
	if p.Join(st, ht) != top || p.Meet(st, ht) != bot {
		t.Errorf("product join/meet wrong")
	}
}

// randomLattices used for the property tests below: chains of varying
// height, the diamond, and products thereof.
func randomLattice(r *rand.Rand) *Lattice {
	switch r.Intn(4) {
	case 0:
		names := make([]string, 1+r.Intn(6))
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		l, err := Chain(names...)
		if err != nil {
			panic(err)
		}
		return l
	case 1:
		l, err := Diamond("bot", "l", "r", "top")
		if err != nil {
			panic(err)
		}
		return l
	case 2:
		a, err := Chain("0", "1", "2")
		if err != nil {
			panic(err)
		}
		b, err := Chain("x", "y")
		if err != nil {
			panic(err)
		}
		p, err := Product(a, b)
		if err != nil {
			panic(err)
		}
		return p
	default:
		return Taint()
	}
}

func TestLatticeLawsQuick(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	property := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		l := randomLattice(rr)
		n := l.Size()
		a := Elem(rr.Intn(n))
		b := Elem(rr.Intn(n))
		c := Elem(rr.Intn(n))

		// Idempotence.
		if l.Join(a, a) != a || l.Meet(a, a) != a {
			return false
		}
		// Commutativity.
		if l.Join(a, b) != l.Join(b, a) || l.Meet(a, b) != l.Meet(b, a) {
			return false
		}
		// Associativity.
		if l.Join(l.Join(a, b), c) != l.Join(a, l.Join(b, c)) {
			return false
		}
		if l.Meet(l.Meet(a, b), c) != l.Meet(a, l.Meet(b, c)) {
			return false
		}
		// Absorption.
		if l.Join(a, l.Meet(a, b)) != a || l.Meet(a, l.Join(a, b)) != a {
			return false
		}
		// Order consistency: a ≤ b iff join = b iff meet = a.
		if l.Leq(a, b) != (l.Join(a, b) == b) || l.Leq(a, b) != (l.Meet(a, b) == a) {
			return false
		}
		// Bounds.
		if !l.Leq(l.Bottom(), a) || !l.Leq(a, l.Top()) {
			return false
		}
		// Join/meet are genuine bounds.
		j := l.Join(a, b)
		m := l.Meet(a, b)
		if !l.Leq(a, j) || !l.Leq(b, j) || !l.Leq(m, a) || !l.Leq(m, b) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	// For every pair (a,b) and every upper bound u of {a,b}: join(a,b) ≤ u.
	lats := []*Lattice{Taint(), mustDiamond(t), mustChain(t, "1", "2", "3", "4", "5")}
	for _, l := range lats {
		for _, a := range l.Elems() {
			for _, b := range l.Elems() {
				j := l.Join(a, b)
				m := l.Meet(a, b)
				for _, u := range l.Elems() {
					if l.Leq(a, u) && l.Leq(b, u) && !l.Leq(j, u) {
						t.Fatalf("%v: join(%v,%v)=%v not least", l, l.Name(a), l.Name(b), l.Name(j))
					}
					if l.Leq(u, a) && l.Leq(u, b) && !l.Leq(u, m) {
						t.Fatalf("%v: meet(%v,%v)=%v not greatest", l, l.Name(a), l.Name(b), l.Name(m))
					}
				}
			}
		}
	}
}

func TestStringIsStable(t *testing.T) {
	l := mustChain(t, "u", "t")
	if got := l.String(); got != "{u ≤ t}" {
		t.Errorf("String = %q", got)
	}
}

func TestElemsAscending(t *testing.T) {
	l := mustDiamond(t)
	es := l.Elems()
	for i, e := range es {
		if int(e) != i {
			t.Fatalf("Elems[%d] = %d", i, e)
		}
	}
}
