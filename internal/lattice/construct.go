package lattice

import (
	"fmt"
)

// TaintNames are the element names of the default two-point taint lattice
// used by WebSSARI's PHP prelude: Untainted (⊥) < Tainted (⊤).
const (
	UntaintedName = "untainted"
	TaintedName   = "tainted"
)

// Taint returns Denning's two-point taint lattice, Untainted < Tainted.
// This is the lattice WebSSARI ships with in its default prelude; custom
// preludes may use richer lattices (see Chain and Product).
func Taint() *Lattice {
	l, err := Chain(UntaintedName, TaintedName)
	if err != nil {
		// Unreachable: a two-element chain is always a lattice.
		panic(err)
	}
	return l
}

// Chain constructs a total order names[0] < names[1] < … < names[n-1].
// Every finite chain is a complete lattice.
func Chain(names ...string) (*Lattice, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("lattice: chain needs at least one element")
	}
	b := NewBuilder()
	elems := make([]Elem, len(names))
	for i, name := range names {
		elems[i] = b.Add(name)
	}
	for i := 1; i < len(elems); i++ {
		b.Covers(elems[i], elems[i-1])
	}
	return b.Build()
}

// Diamond constructs the four-point lattice ⊥ < {left, right} < ⊤ with
// left and right incomparable. It is the smallest lattice that
// distinguishes meet/join from min/max and is used heavily in tests.
func Diamond(bottom, left, right, top string) (*Lattice, error) {
	b := NewBuilder()
	bo := b.Add(bottom)
	le := b.Add(left)
	ri := b.Add(right)
	to := b.Add(top)
	b.Covers(le, bo)
	b.Covers(ri, bo)
	b.Covers(to, le)
	b.Covers(to, ri)
	return b.Build()
}

// Product constructs the component-wise product lattice of a and b. The
// element named "x·y" corresponds to the pair (x, y); order, meet and join
// are component-wise. Products model independent safety dimensions (e.g.
// SQL-trust × HTML-trust).
func Product(a, b *Lattice) (*Lattice, error) {
	bld := NewBuilder()
	elems := make([][]Elem, a.Size())
	for i := 0; i < a.Size(); i++ {
		elems[i] = make([]Elem, b.Size())
		for j := 0; j < b.Size(); j++ {
			elems[i][j] = bld.Add(a.Name(Elem(i)) + "·" + b.Name(Elem(j)))
		}
	}
	// Covering edges of the product are (cover in a, equal in b) and
	// (equal in a, cover in b). Using all strict comparabilities instead of
	// covers is also correct for Build, which closes transitively.
	for i := 0; i < a.Size(); i++ {
		for i2 := 0; i2 < a.Size(); i2++ {
			for j := 0; j < b.Size(); j++ {
				for j2 := 0; j2 < b.Size(); j2++ {
					if (i != i2 || j != j2) &&
						a.Leq(Elem(i), Elem(i2)) && b.Leq(Elem(j), Elem(j2)) {
						bld.Covers(elems[i2][j2], elems[i][j])
					}
				}
			}
		}
	}
	return bld.Build()
}
