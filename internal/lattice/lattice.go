// Package lattice implements finite complete lattices of safety types, the
// foundation of the information-flow model of Huang et al. (DSN 2004, §3.1).
//
// Following Denning's lattice model of secure information flow, every
// program variable is associated with a safety type drawn from a finite set
// T that is partially ordered by ≤ and forms a complete lattice: there is a
// bottom element ⊥ (the safest, most trusted level), a top element ⊤ (the
// least trusted level), and every subset of T has both a greatest lower
// bound (meet, ⊓) and a least upper bound (join, ⊔).
//
// A Lattice is constructed either from a Hasse diagram via Builder, or with
// the convenience constructors Chain, Product, and TaintLattice. Elements
// are identified by dense integer handles (Elem) so that meet/join/leq are
// table lookups, which keeps the SAT encoding of lattice operations cheap.
package lattice

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Elem is a handle to a lattice element. Handles are dense indices in the
// range [0, Lattice.Size()). The zero handle is valid and refers to the
// first element added to the Builder; use Lattice.Bottom and Lattice.Top to
// obtain the distinguished bounds.
type Elem int

// ErrNotALattice is returned by Builder.Build when the constructed partial
// order is not a complete lattice (some pair of elements lacks a unique
// least upper bound or greatest lower bound, or the order has no global
// bottom or top).
var ErrNotALattice = errors.New("lattice: partial order is not a complete lattice")

// Lattice is an immutable finite complete lattice. All methods are safe for
// concurrent use.
type Lattice struct {
	names  []string
	index  map[string]Elem
	leq    [][]bool
	join   [][]Elem
	meet   [][]Elem
	bottom Elem
	top    Elem
}

// Builder accumulates elements and covering relations of a Hasse diagram
// and then verifies and freezes them into a Lattice.
type Builder struct {
	names []string
	index map[string]Elem
	cover [][2]Elem // x < y with nothing in between (x covered by y)
	err   error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]Elem)}
}

// Add registers a named element and returns its handle. Adding the same
// name twice returns the original handle and records an error that
// surfaces from Build.
func (b *Builder) Add(name string) Elem {
	if e, ok := b.index[name]; ok {
		b.err = fmt.Errorf("lattice: duplicate element %q", name)
		return e
	}
	e := Elem(len(b.names))
	b.names = append(b.names, name)
	b.index[name] = e
	return e
}

// Covers declares that hi covers lo: lo < hi with no element in between.
// The full order is the reflexive-transitive closure of these edges.
func (b *Builder) Covers(hi, lo Elem) {
	n := Elem(len(b.names))
	if hi < 0 || hi >= n || lo < 0 || lo >= n {
		b.err = fmt.Errorf("lattice: Covers(%d, %d) out of range [0,%d)", hi, lo, n)
		return
	}
	if hi == lo {
		b.err = fmt.Errorf("lattice: element %q cannot cover itself", b.names[hi])
		return
	}
	b.cover = append(b.cover, [2]Elem{lo, hi})
}

// Build verifies the accumulated Hasse diagram and returns the resulting
// Lattice. It fails if the diagram contains a cycle, if the order is not a
// complete lattice, or if any Add/Covers call was invalid.
func (b *Builder) Build() (*Lattice, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.names)
	if n == 0 {
		return nil, errors.New("lattice: no elements")
	}

	leq := make([][]bool, n)
	for i := range leq {
		leq[i] = make([]bool, n)
		leq[i][i] = true
	}
	for _, c := range b.cover {
		leq[c[0]][c[1]] = true
	}
	// Warshall transitive closure.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !leq[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if leq[k][j] {
					leq[i][j] = true
				}
			}
		}
	}
	// Antisymmetry: a cycle manifests as two distinct mutually-≤ elements.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if leq[i][j] && leq[j][i] {
				return nil, fmt.Errorf("lattice: order cycle through %q and %q", b.names[i], b.names[j])
			}
		}
	}

	l := &Lattice{
		names: append([]string(nil), b.names...),
		index: make(map[string]Elem, n),
		leq:   leq,
	}
	for name, e := range b.index {
		l.index[name] = e
	}

	var ok bool
	if l.bottom, ok = l.findBottom(); !ok {
		return nil, fmt.Errorf("%w: no global lower bound", ErrNotALattice)
	}
	if l.top, ok = l.findTop(); !ok {
		return nil, fmt.Errorf("%w: no global upper bound", ErrNotALattice)
	}
	if err := l.buildTables(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Lattice) findBottom() (Elem, bool) {
	for i := range l.names {
		all := true
		for j := range l.names {
			if !l.leq[i][j] {
				all = false
				break
			}
		}
		if all {
			return Elem(i), true
		}
	}
	return 0, false
}

func (l *Lattice) findTop() (Elem, bool) {
	for i := range l.names {
		all := true
		for j := range l.names {
			if !l.leq[j][i] {
				all = false
				break
			}
		}
		if all {
			return Elem(i), true
		}
	}
	return 0, false
}

// buildTables computes the meet and join tables, verifying that every pair
// of elements has a unique least upper bound and greatest lower bound.
func (l *Lattice) buildTables() error {
	n := len(l.names)
	l.join = make([][]Elem, n)
	l.meet = make([][]Elem, n)
	for i := 0; i < n; i++ {
		l.join[i] = make([]Elem, n)
		l.meet[i] = make([]Elem, n)
		for j := 0; j < n; j++ {
			jv, ok := l.lub(Elem(i), Elem(j))
			if !ok {
				return fmt.Errorf("%w: %q and %q have no least upper bound",
					ErrNotALattice, l.names[i], l.names[j])
			}
			l.join[i][j] = jv
			mv, ok := l.glb(Elem(i), Elem(j))
			if !ok {
				return fmt.Errorf("%w: %q and %q have no greatest lower bound",
					ErrNotALattice, l.names[i], l.names[j])
			}
			l.meet[i][j] = mv
		}
	}
	return nil
}

func (l *Lattice) lub(a, b Elem) (Elem, bool) {
	var ubs []Elem
	for c := range l.names {
		if l.leq[a][c] && l.leq[b][c] {
			ubs = append(ubs, Elem(c))
		}
	}
	return uniqueMinimum(l, ubs)
}

func (l *Lattice) glb(a, b Elem) (Elem, bool) {
	var lbs []Elem
	for c := range l.names {
		if l.leq[c][a] && l.leq[c][b] {
			lbs = append(lbs, Elem(c))
		}
	}
	return uniqueMaximum(l, lbs)
}

// uniqueMinimum returns the element of set that is ≤ every other element of
// set, if one exists.
func uniqueMinimum(l *Lattice, set []Elem) (Elem, bool) {
	for _, c := range set {
		all := true
		for _, d := range set {
			if !l.leq[c][d] {
				all = false
				break
			}
		}
		if all {
			return c, true
		}
	}
	return 0, false
}

// uniqueMaximum returns the element of set that is ≥ every other element of
// set, if one exists.
func uniqueMaximum(l *Lattice, set []Elem) (Elem, bool) {
	for _, c := range set {
		all := true
		for _, d := range set {
			if !l.leq[d][c] {
				all = false
				break
			}
		}
		if all {
			return c, true
		}
	}
	return 0, false
}

// Size returns the number of elements in the lattice.
func (l *Lattice) Size() int { return len(l.names) }

// Bottom returns ⊥, the global lower bound (the safest type).
func (l *Lattice) Bottom() Elem { return l.bottom }

// Top returns ⊤, the global upper bound (the least trusted type).
func (l *Lattice) Top() Elem { return l.top }

// Name returns the name of element e.
func (l *Lattice) Name(e Elem) string { return l.names[e] }

// Lookup resolves a name to its element handle.
func (l *Lattice) Lookup(name string) (Elem, bool) {
	e, ok := l.index[name]
	return e, ok
}

// Leq reports whether a ≤ b.
func (l *Lattice) Leq(a, b Elem) bool { return l.leq[a][b] }

// Lt reports whether a < b, i.e. a ≤ b and a ≠ b.
func (l *Lattice) Lt(a, b Elem) bool { return a != b && l.leq[a][b] }

// Join returns a ⊔ b, the least upper bound.
func (l *Lattice) Join(a, b Elem) Elem { return l.join[a][b] }

// Meet returns a ⊓ b, the greatest lower bound.
func (l *Lattice) Meet(a, b Elem) Elem { return l.meet[a][b] }

// JoinAll returns the least upper bound of elems, or ⊥ for an empty set,
// matching the paper's convention that ⊔∅ = ⊥.
func (l *Lattice) JoinAll(elems ...Elem) Elem {
	acc := l.bottom
	for _, e := range elems {
		acc = l.join[acc][e]
	}
	return acc
}

// MeetAll returns the greatest lower bound of elems, or ⊤ for an empty
// set, matching the paper's convention that ⊓∅ = ⊤.
func (l *Lattice) MeetAll(elems ...Elem) Elem {
	acc := l.top
	for _, e := range elems {
		acc = l.meet[acc][e]
	}
	return acc
}

// DownStrict returns every element strictly below bound, in ascending
// handle order. These are exactly the values that satisfy the assertion
// assert(x, bound) of the abstract interpretation: t_x < bound.
func (l *Lattice) DownStrict(bound Elem) []Elem {
	var out []Elem
	for c := range l.names {
		if l.Lt(Elem(c), bound) {
			out = append(out, Elem(c))
		}
	}
	return out
}

// DownClosed returns every element ≤ bound, in ascending handle order.
func (l *Lattice) DownClosed(bound Elem) []Elem {
	var out []Elem
	for c := range l.names {
		if l.leq[c][bound] {
			out = append(out, Elem(c))
		}
	}
	return out
}

// Elems returns all element handles in ascending order.
func (l *Lattice) Elems() []Elem {
	out := make([]Elem, len(l.names))
	for i := range out {
		out[i] = Elem(i)
	}
	return out
}

// String renders the lattice as its element names sorted by the order's
// topological rank, for debugging.
func (l *Lattice) String() string {
	order := l.Elems()
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if l.Lt(a, b) {
			return true
		}
		if l.Lt(b, a) {
			return false
		}
		return l.names[a] < l.names[b]
	})
	names := make([]string, len(order))
	for i, e := range order {
		names[i] = l.names[e]
	}
	return "{" + strings.Join(names, " ≤ ") + "}"
}
