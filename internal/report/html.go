package report

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
	"time"

	"webssari/internal/telemetry"
)

// WriteHTML renders the report as a self-contained cross-referenced HTML
// page, in the spirit of the PHPXREF documentation and GUI navigation aids
// the paper's authors built to make manual validation tractable (§5):
// every finding links to the highlighted source lines of its trace, and
// every trace line links back to the error groups it participates in.
// src maps file names to their source text; files not present are still
// reported, just without excerpts.
func (r *Report) WriteHTML(w io.Writer, src map[string][]byte) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>WebSSARI report</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
.safe { color: #070; } .unsafe { color: #a00; }
.group { border: 1px solid #ccc; border-radius: 4px; padding: 0.8em; margin: 1em 0; }
.trace { margin: 0.4em 0 0.4em 1.5em; font-family: monospace; font-size: 0.9em; }
.src { background: #f7f7f7; border-left: 3px solid #ccc; padding: 0.4em 0.8em;
       font-family: monospace; white-space: pre; overflow-x: auto; }
.hl { background: #ffe0e0; display: block; }
.lineno { color: #999; user-select: none; }
.warn { color: #850; }
.profile { border-collapse: collapse; margin: 0.8em 0; font-size: 0.9em; }
.profile th, .profile td { border: 1px solid #ccc; padding: 0.2em 0.6em; text-align: right; }
.profile th { background: #f0f0f0; }
a { color: #036; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>WebSSARI report for %s</h1>\n", html.EscapeString(r.File))
	if r.Safe {
		b.WriteString(`<p class="safe"><b>VERIFIED</b>: all sensitive calls provably receive trusted data.</p>` + "\n")
	} else {
		fmt.Fprintf(&b,
			`<p class="unsafe"><b>UNSAFE</b>: %d vulnerable statement(s) caused by %d error introduction(s).</p>`+"\n",
			r.SymptomCount(), r.GroupCount())
	}

	// Index of groups.
	if len(r.Groups) > 0 {
		b.WriteString("<h2>Error groups</h2>\n<ol>\n")
		for i, g := range r.Groups {
			fmt.Fprintf(&b, `<li><a href="#group%d">%s</a> — repairs %d trace(s)</li>`+"\n",
				i+1, html.EscapeString(g.Fix.Describe()), len(g.Cexs))
		}
		b.WriteString("</ol>\n")
	}

	// Per-group details with highlighted excerpts.
	for i, g := range r.Groups {
		fmt.Fprintf(&b, `<div class="group" id="group%d">`+"\n", i+1)
		fmt.Fprintf(&b, "<h2>Group %d: %s</h2>\n", i+1, html.EscapeString(g.Fix.Describe()))

		// Collect the highlighted lines per file for this group.
		lines := map[string]map[int]bool{}
		mark := func(file string, line int) {
			if lines[file] == nil {
				lines[file] = map[int]bool{}
			}
			lines[file][line] = true
		}
		pos, _ := g.Fix.Span()
		if pos.IsValid() {
			mark(pos.File, pos.Line)
		}
		for _, cex := range g.Cexs {
			site := cex.Assert.Origin.Site.Pos
			fmt.Fprintf(&b, `<p>%s via <code>%s</code> at <a href="#L-%s-%d">%s</a></p>`+"\n",
				html.EscapeString(VulnClass(cex.Assert.Origin.Fn)),
				html.EscapeString(cex.Assert.Origin.Fn),
				html.EscapeString(site.File), site.Line,
				html.EscapeString(site.String()))
			mark(site.File, site.Line)
			b.WriteString(`<div class="trace">`)
			for _, step := range cex.Steps {
				if r.Lat.Lt(step.Value, cex.Assert.Bound) {
					continue
				}
				name := step.Set.Origin.SrcVar
				if name == "" {
					name = step.Set.V.Name
				}
				p := step.Set.Origin.Site.Pos
				fmt.Fprintf(&b, `<a href="#L-%s-%d">%s</a>: $%s becomes %s<br>`+"\n",
					html.EscapeString(p.File), p.Line,
					html.EscapeString(p.String()),
					html.EscapeString(name),
					html.EscapeString(r.Lat.Name(step.Value)))
				mark(p.File, p.Line)
			}
			b.WriteString("</div>\n")
		}

		// Source excerpts with highlights.
		files := make([]string, 0, len(lines))
		for f := range lines {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			text, ok := src[f]
			if !ok {
				continue
			}
			b.WriteString(excerptHTML(f, string(text), lines[f]))
		}
		b.WriteString("</div>\n")
	}

	if len(r.Warnings) > 0 {
		b.WriteString("<h2>Approximations</h2>\n<ul>\n")
		for _, warn := range r.Warnings {
			fmt.Fprintf(&b, `<li class="warn">%s</li>`+"\n", html.EscapeString(warn))
		}
		b.WriteString("</ul>\n")
	}
	writeProfileHTML(&b, r.Profile)
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeProfileHTML renders the run-profile section: stage wall times,
// solver totals, cache/pool sections when present, and the per-assertion
// breakdown with the solver's search-effort counters.
func writeProfileHTML(b *strings.Builder, p *telemetry.RunProfile) {
	if p == nil {
		return
	}
	b.WriteString("<h2>Run profile</h2>\n")
	fmt.Fprintf(b, "<p>compile %v, solve %v",
		p.CompileWall().Round(time.Microsecond), p.SolveWall().Round(time.Microsecond))
	if p.CacheHit {
		b.WriteString(" (compile cached)")
	}
	s := p.Solver
	fmt.Fprintf(b, "; solver: %d decisions, %d propagations, %d conflicts, %d restarts, %d learnt clauses</p>\n",
		s.Decisions, s.Propagations, s.Conflicts, s.Restarts, s.LearntClauses)
	if p.Cache != nil {
		fmt.Fprintf(b, "<p>compile cache: %d hit(s), %d miss(es), %d evicted, %d stale, %d retained</p>\n",
			p.Cache.Hits, p.Cache.Misses, p.Cache.Evictions, p.Cache.Stale, p.Cache.Entries)
	}
	if p.Pool != nil {
		fmt.Fprintf(b, "<p>worker pool: %d/%d peak workers (%.0f%% utilization), %d peak waiters</p>\n",
			p.Pool.MaxInUse, p.Pool.Capacity, 100*p.Pool.Utilization(), p.Pool.MaxWaiting)
	}
	if len(p.Stages) > 0 {
		b.WriteString(`<table class="profile"><tr><th>stage</th><th>wall</th><th>count</th></tr>` + "\n")
		for _, st := range p.Stages {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%v</td><td>%d</td></tr>\n",
				html.EscapeString(st.Name), time.Duration(st.WallNS).Round(time.Microsecond), st.Count)
		}
		b.WriteString("</table>\n")
	}
	if len(p.Assertions) > 0 {
		b.WriteString(`<table class="profile"><tr><th>assert</th><th>sink</th><th>site</th><th>vars</th><th>clauses</th><th>cex</th><th>encode</th><th>search</th><th>conflicts</th><th>restarts</th><th>learnt</th><th>cause</th></tr>` + "\n")
		for _, a := range p.Assertions {
			fmt.Fprintf(b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%v</td><td>%v</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
				a.Index, html.EscapeString(a.Sink), html.EscapeString(a.Site),
				a.Vars, a.Clauses, a.Counterexamples,
				time.Duration(a.EncodeNS).Round(time.Microsecond),
				time.Duration(a.SearchNS).Round(time.Microsecond),
				a.Solver.Conflicts, a.Solver.Restarts, a.Solver.LearntClauses,
				html.EscapeString(a.Cause))
		}
		b.WriteString("</table>\n")
	}
}

// excerptHTML renders the marked lines of a file with two lines of
// context, line anchors, and highlighting.
func excerptHTML(file, text string, marked map[int]bool) string {
	srcLines := strings.Split(text, "\n")
	show := map[int]bool{}
	for line := range marked {
		for d := -2; d <= 2; d++ {
			if n := line + d; n >= 1 && n <= len(srcLines) {
				show[n] = true
			}
		}
	}
	order := make([]int, 0, len(show))
	for n := range show {
		order = append(order, n)
	}
	sort.Ints(order)

	var b strings.Builder
	fmt.Fprintf(&b, "<p><b>%s</b></p>\n<div class=\"src\">", html.EscapeString(file))
	prev := 0
	for _, n := range order {
		if prev != 0 && n != prev+1 {
			b.WriteString("<span class=\"lineno\">  ⋮</span>\n")
		}
		prev = n
		lineText := html.EscapeString(srcLines[n-1])
		if marked[n] {
			fmt.Fprintf(&b, `<span class="hl" id="L-%s-%d"><span class="lineno">%4d</span> %s</span>`,
				html.EscapeString(file), n, n, lineText)
		} else {
			fmt.Fprintf(&b, "<span class=\"lineno\">%4d</span> %s\n", n, lineText)
		}
	}
	b.WriteString("</div>\n")
	return b.String()
}
