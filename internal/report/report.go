// Package report generates the error reports WebSSARI presents to
// developers. The paper's central usability claim is that counterexample
// traces make reports *validatable*: instead of a bare list of vulnerable
// lines (which took the authors days to check by hand), each report names
// the root cause, shows the single-assignment trace from the untrusted
// input to the sensitive call, and groups all symptoms sharing that cause.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/lattice"
	"webssari/internal/telemetry"
	"webssari/internal/typestate"
)

// Group is one error group: a fix point (root cause) together with every
// counterexample it repairs.
type Group struct {
	Fix *fixing.FixPoint
	// Cexs are the error traces this fix point covers.
	Cexs []*core.Counterexample
}

// Report is a complete per-unit verification report.
type Report struct {
	File string
	// Lat is the safety lattice, used to print type names in traces.
	Lat *lattice.Lattice
	// TSReports are the symptom-level findings of the TS baseline.
	TSReports []typestate.Report
	// Groups are the BMC findings clustered by root cause.
	Groups []Group
	// Warnings carries filter approximations.
	Warnings []string
	// Safe is set when BMC proved every assertion over the whole model —
	// it is withheld (false) when the run was Incomplete, since a proof
	// over a partial model is no proof at all.
	Safe bool
	// Incomplete is set when resource limits, deadlines, parse errors, or
	// recovered faults left part of the model unverified.
	Incomplete bool
	// Limits names the degradation causes of an Incomplete run.
	Limits []string
	// Profile, when set by the caller, adds a run-profile section (stage
	// wall times, per-assertion solver effort) to the HTML rendering.
	Profile *telemetry.RunProfile
}

// Build assembles a report from a verification result and its
// counterexample analysis, clustering symptoms by the minimal fixing set.
func Build(res *core.Result, analysis *fixing.Analysis) *Report {
	limits := res.IncompleteCauses()
	r := &Report{
		File: res.AI.File,
		Lat:  res.AI.Lat,
		// Copy rather than alias: results may be shared across
		// goroutines, and a report must never write into one.
		Warnings:   append([]string(nil), res.Warnings...),
		TSReports:  typestate.Check(res.AI),
		Safe:       res.Safe() && len(limits) == 0,
		Incomplete: len(limits) > 0,
		Limits:     limits,
	}
	for _, perr := range res.ParseErrors {
		r.Warnings = append(r.Warnings, "parse: "+perr)
	}

	fix := analysis.GreedyMinimalFix()
	chosen := make(map[string]*Group, len(fix))
	for _, f := range fix {
		g := &Group{Fix: f}
		chosen[f.Key()] = g
	}
	seen := make(map[string]map[string]bool) // fix key → cex key set
	for _, con := range analysis.Constraints {
		for _, f := range con.Options {
			g, ok := chosen[f.Key()]
			if !ok {
				continue
			}
			if seen[f.Key()] == nil {
				seen[f.Key()] = make(map[string]bool)
			}
			if !seen[f.Key()][con.Cex.Key()] {
				seen[f.Key()][con.Cex.Key()] = true
				g.Cexs = append(g.Cexs, con.Cex)
			}
			break // attribute each constraint to its first chosen cover
		}
	}
	for _, f := range fix {
		r.Groups = append(r.Groups, *chosen[f.Key()])
	}
	sort.SliceStable(r.Groups, func(i, j int) bool {
		pi, _ := r.Groups[i].Fix.Span()
		pj, _ := r.Groups[j].Fix.Span()
		return pi.Offset < pj.Offset
	})
	return r
}

// SymptomCount returns the TS-style error count (Figure 10's "TS" column).
func (r *Report) SymptomCount() int { return len(r.TSReports) }

// GroupCount returns the BMC-style error-introduction count (Figure 10's
// "BMC" column): the size of the minimal fixing set.
func (r *Report) GroupCount() int { return len(r.Groups) }

// Write renders the report as human-readable text.
func (r *Report) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== WebSSARI report for %s ==\n", r.File)
	switch {
	case r.Safe:
		b.WriteString("VERIFIED: all sensitive calls provably receive trusted data.\n")
	case len(r.Groups) == 0 && r.Incomplete:
		fmt.Fprintf(&b, "INCOMPLETE: verification degraded (%s); no Safe claim is made.\n",
			strings.Join(r.Limits, ", "))
	default:
		fmt.Fprintf(&b, "UNSAFE: %d vulnerable statement(s) caused by %d error introduction(s).\n",
			r.SymptomCount(), r.GroupCount())
		if r.Incomplete {
			fmt.Fprintf(&b, "NOTE: analysis degraded (%s); further findings may exist.\n",
				strings.Join(r.Limits, ", "))
		}
	}
	for i, g := range r.Groups {
		fmt.Fprintf(&b, "\nGroup %d: %s\n", i+1, g.Fix.Describe())
		fmt.Fprintf(&b, "  repairs %d error trace(s):\n", len(g.Cexs))
		for _, cex := range g.Cexs {
			// Policy-declared classes and output contexts win over the
			// classic name-based table; both degrade to the seed's exact
			// output when absent.
			class := cex.Assert.Origin.Class
			if class == "" {
				class = VulnClass(cex.Assert.Origin.Fn)
			}
			sink := cex.Assert.Origin.Fn
			if ctx := cex.Assert.Origin.Context; ctx != "" {
				sink += " [" + ctx + "]"
			}
			fmt.Fprintf(&b, "  * %s via %s at %s\n",
				class, sink, cex.Assert.Origin.Site.Pos)
			for _, step := range cex.Steps {
				// Keep the trace readable: print only the tainted flow,
				// i.e. steps whose value breaches the assertion bound.
				if r.Lat.Lt(step.Value, cex.Assert.Bound) {
					continue
				}
				name := step.Set.Origin.SrcVar
				if name == "" {
					name = step.Set.V.Name
				}
				fmt.Fprintf(&b, "      %s: $%s becomes %s\n",
					step.Set.Origin.Site.Pos, name, r.Lat.Name(step.Value))
			}
			if len(cex.Branches) > 0 {
				fmt.Fprintf(&b, "      path: %s\n", branchString(cex))
			}
		}
	}
	if len(r.Warnings) > 0 {
		b.WriteString("\nApproximations:\n")
		for _, warn := range r.Warnings {
			fmt.Fprintf(&b, "  ! %s\n", warn)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

func branchString(cex *core.Counterexample) string {
	ids := make([]int, 0, len(cex.Branches))
	for id := range cex.Branches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		if cex.Branches[id] {
			parts[i] = fmt.Sprintf("b%d", id)
		} else {
			parts[i] = fmt.Sprintf("¬b%d", id)
		}
	}
	return strings.Join(parts, " ∧ ")
}

// VulnClass names the vulnerability class by sink, as the reports in the
// paper's examples do.
func VulnClass(fn string) string {
	switch strings.ToLower(fn) {
	case "echo", "print", "printf", "print_r", "vprintf", "die", "exit":
		return "cross-site scripting (XSS)"
	case "mysql_query", "mysql_db_query", "mysql_unbuffered_query",
		"pg_query", "pg_exec", "sqlite_query", "dosql":
		return "SQL injection"
	case "exec", "system", "passthru", "popen", "proc_open", "shell_exec":
		return "command injection"
	case "eval":
		return "code injection"
	case "include", "include_once", "require", "require_once", "fopen":
		return "file inclusion"
	default:
		return "tainted data flow"
	}
}
