package report_test

import (
	"strings"
	"testing"

	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/report"
)

func buildReport(t *testing.T, src string) *report.Report {
	t.Helper()
	pre := prelude.Default()
	pre.AddSink("DoSQL", pre.Lattice().Top(), 1)
	res, errs := core.VerifySource("app.php", []byte(src), core.NewOptions(flow.Options{Prelude: pre}))
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	return report.Build(res, fixing.Analyze(res))
}

func TestSafeReport(t *testing.T) {
	r := buildReport(t, `<?php echo htmlspecialchars($_GET['x']);`)
	if !r.Safe || r.GroupCount() != 0 || r.SymptomCount() != 0 {
		t.Fatalf("safe program misreported: %+v", r)
	}
	if !strings.Contains(r.String(), "VERIFIED") {
		t.Fatalf("report missing VERIFIED:\n%s", r)
	}
}

func TestGroupedReport(t *testing.T) {
	r := buildReport(t, `<?php
$sid = $_GET['sid'];
$q1 = "SELECT 1 WHERE sid=$sid";
DoSQL($q1);
$q2 = "SELECT 2 WHERE sid=$sid";
DoSQL($q2);
echo $sid;`)
	if r.Safe {
		t.Fatalf("vulnerable program reported safe")
	}
	if r.SymptomCount() != 3 {
		t.Fatalf("symptoms = %d, want 3", r.SymptomCount())
	}
	if r.GroupCount() != 1 {
		t.Fatalf("groups = %d, want 1 (single root $sid)\n%s", r.GroupCount(), r)
	}
	text := r.String()
	for _, frag := range []string{
		"3 vulnerable statement(s) caused by 1 error introduction(s)",
		"sanitize $sid",
		"SQL injection",
		"cross-site scripting",
		"$sid becomes tainted",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("report missing %q:\n%s", frag, text)
		}
	}
	// The single group must cover all three traces.
	if len(r.Groups[0].Cexs) != 3 {
		t.Fatalf("group covers %d traces, want 3", len(r.Groups[0].Cexs))
	}
}

func TestBranchPathShown(t *testing.T) {
	r := buildReport(t, `<?php
if ($mode) { $x = $_GET['a']; } else { $x = 'safe'; }
echo $x;`)
	text := r.String()
	if !strings.Contains(text, "path: b0") {
		t.Fatalf("report missing branch path:\n%s", text)
	}
}

func TestWarningsSurface(t *testing.T) {
	r := buildReport(t, `<?php include $_GET['page'];`)
	text := r.String()
	if !strings.Contains(text, "Approximations:") || !strings.Contains(text, "dynamic") {
		t.Fatalf("report missing warnings:\n%s", text)
	}
	if !strings.Contains(text, "file inclusion") {
		t.Fatalf("report missing vulnerability class:\n%s", text)
	}
}

func TestGroupsSortedBySourceOrder(t *testing.T) {
	r := buildReport(t, `<?php
$b = $_POST['b'];
$a = $_GET['a'];
echo $a;
echo $b;`)
	if r.GroupCount() != 2 {
		t.Fatalf("groups = %d, want 2", r.GroupCount())
	}
	p0, _ := r.Groups[0].Fix.Span()
	p1, _ := r.Groups[1].Fix.Span()
	if p0.Offset > p1.Offset {
		t.Fatalf("groups not in source order: %v, %v", p0, p1)
	}
}
