package report_test

import (
	"strings"
	"testing"

	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/report"
)

func TestHTMLReport(t *testing.T) {
	src := `<?php
$sid = $_GET['sid'];
$q = "SELECT * FROM t WHERE sid=$sid";
mysql_query($q);
echo $sid;
?>`
	res, errs := core.VerifySource("app.php", []byte(src),
		core.NewOptions(flow.Options{Prelude: prelude.Default()}))
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	rep := report.Build(res, fixing.Analyze(res))

	var b strings.Builder
	if err := rep.WriteHTML(&b, map[string][]byte{"app.php": []byte(src)}); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	out := b.String()
	for _, frag := range []string{
		"<!DOCTYPE html>",
		"UNSAFE</b>: 2 vulnerable statement(s) caused by 1 error introduction(s)",
		`id="group1"`,
		"SQL injection",
		"cross-site scripting",
		`id="L-app.php-2"`,             // highlighted root line anchor
		"$sid = $_GET[&#39;sid&#39;];", // escaped source excerpt
		`href="#L-app.php-4"`,          // sink cross-reference
		"$sid becomes tainted",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("HTML missing %q", frag)
		}
	}
	if strings.Contains(out, "<?php\n$sid") {
		t.Errorf("unescaped PHP leaked into HTML")
	}
}

func TestHTMLReportSafe(t *testing.T) {
	src := `<?php echo 'static';`
	res, errs := core.VerifySource("safe.php", []byte(src),
		core.NewOptions(flow.Options{Prelude: prelude.Default()}))
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	rep := report.Build(res, fixing.Analyze(res))
	var b strings.Builder
	if err := rep.WriteHTML(&b, nil); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	if !strings.Contains(b.String(), "VERIFIED") {
		t.Fatalf("safe HTML missing VERIFIED")
	}
}

func TestHTMLReportWithoutSources(t *testing.T) {
	src := `<?php echo $_GET['x'];`
	res, errs := core.VerifySource("gone.php", []byte(src),
		core.NewOptions(flow.Options{Prelude: prelude.Default()}))
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	rep := report.Build(res, fixing.Analyze(res))
	var b strings.Builder
	// Absent sources: no excerpts, no crash.
	if err := rep.WriteHTML(&b, map[string][]byte{}); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	if strings.Contains(b.String(), `class="src"`) {
		t.Fatalf("excerpt rendered without source text")
	}
}

func TestHTMLEscapesAttackPayloads(t *testing.T) {
	// The report must never re-embed unescaped markup from the analyzed
	// source (a report viewer XSS would be ironic).
	src := `<?php echo $_GET['x']; // <script>alert(1)</script>`
	res, errs := core.VerifySource("xss.php", []byte(src),
		core.NewOptions(flow.Options{Prelude: prelude.Default()}))
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	rep := report.Build(res, fixing.Analyze(res))
	var b strings.Builder
	if err := rep.WriteHTML(&b, map[string][]byte{"xss.php": []byte(src)}); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	if strings.Contains(b.String(), "<script>alert(1)</script>") {
		t.Fatalf("unescaped payload in HTML report")
	}
}
