package incremental

import (
	"strings"
	"testing"
)

// fakeFS backs the planner Env with an in-memory file table.
type fakeFS struct {
	files map[string]FileMeta // path → stat
	hash  map[string]string   // path → content hash
	reads map[string]int      // path → Hash() call count
}

func newFakeFS() *fakeFS {
	return &fakeFS{
		files: make(map[string]FileMeta),
		hash:  make(map[string]string),
		reads: make(map[string]int),
	}
}

func (f *fakeFS) set(path, hash string, size, mtime int64) {
	f.files[path] = FileMeta{Path: path, Size: size, MTimeNS: mtime}
	f.hash[path] = hash
}

func (f *fakeFS) env() Env {
	return Env{
		Hash: func(path string) (string, bool) {
			f.reads[path]++
			h, ok := f.hash[path]
			return h, ok
		},
		Stat: func(path string) (int64, int64, bool) {
			fm, ok := f.files[path]
			return fm.Size, fm.MTimeNS, ok
		},
	}
}

// snapshot builds a Snapshot of the named entry files, in given order.
func (f *fakeFS) snapshot(paths ...string) Snapshot {
	var s Snapshot
	for _, p := range paths {
		s.Files = append(s.Files, f.files[p])
	}
	return s
}

// graphFor records every named entry in a fresh graph, with deps wired
// per the edges map (entry → transitive include paths).
func graphFor(f *fakeFS, edges map[string][]string, entries ...string) *Graph {
	g := New("/proj", "cfg")
	for _, e := range entries {
		fm := f.files[e]
		g.Files[e] = &FileNode{
			Size: fm.Size, MTimeNS: fm.MTimeNS, Hash: f.hash[e],
			ResultKey: "key-" + e,
			Deps:      edges[e],
		}
		for _, dep := range edges[e] {
			dm := f.files[dep]
			g.Deps[dep] = &DepMeta{Size: dm.Size, MTimeNS: dm.MTimeNS, Hash: f.hash[dep]}
		}
	}
	return g
}

func TestPlanDeltaNilGraphIsFull(t *testing.T) {
	f := newFakeFS()
	f.set("a.php", "ha", 10, 1)
	f.set("b.php", "hb", 20, 2)
	p := PlanDelta(nil, f.snapshot("a.php", "b.php"), f.env())
	if !p.Full {
		t.Fatal("nil graph must plan a full run")
	}
	if len(p.Verify) != 2 || len(p.Reuse) != 0 || p.Invalidated != 0 {
		t.Fatalf("full plan = %+v", p)
	}
}

func TestPlanDeltaUnchangedReusesEverythingWithoutReads(t *testing.T) {
	f := newFakeFS()
	f.set("a.php", "ha", 10, 1)
	f.set("lib.php", "hl", 5, 1)
	g := graphFor(f, map[string][]string{"a.php": {"lib.php"}}, "a.php")

	p := PlanDelta(g, f.snapshot("a.php"), f.env())
	if len(p.Verify) != 0 || p.Invalidated != 0 || p.Full {
		t.Fatalf("unchanged plan = %+v", p)
	}
	if p.Reuse["a.php"] != "key-a.php" {
		t.Fatalf("reuse = %v", p.Reuse)
	}
	// The whole point of the stat fast path: zero content reads.
	for path, n := range f.reads {
		if n > 0 {
			t.Fatalf("unchanged plan hashed %s %d time(s)", path, n)
		}
	}
}

func TestPlanDeltaSharedIncludeInvalidatesExactlyDependents(t *testing.T) {
	f := newFakeFS()
	f.set("shared.php", "hs", 5, 1)
	f.set("a.php", "ha", 10, 1)
	f.set("b.php", "hb", 20, 2)
	f.set("c.php", "hc", 30, 3)
	edges := map[string][]string{
		"a.php": {"shared.php"},
		"b.php": {"shared.php"},
		// c.php includes nothing.
	}
	g := graphFor(f, edges, "a.php", "b.php", "c.php")

	// Edit the shared include: new hash, new stat.
	f.set("shared.php", "hs2", 6, 9)

	p := PlanDelta(g, f.snapshot("a.php", "b.php", "c.php"), f.env())
	if strings.Join(p.Verify, ",") != "a.php,b.php" {
		t.Fatalf("verify = %v, want the two dependents of shared.php", p.Verify)
	}
	if p.Invalidated != 2 {
		t.Fatalf("invalidated = %d, want 2", p.Invalidated)
	}
	if p.Reuse["c.php"] != "key-c.php" {
		t.Fatalf("independent file not reused: %v", p.Reuse)
	}
	// Shared-dependency memoization: the edited include was hashed once,
	// not once per dependent.
	if f.reads["shared.php"] != 1 {
		t.Fatalf("shared.php hashed %d time(s), want 1", f.reads["shared.php"])
	}
}

func TestPlanDeltaTouchedButIdenticalStaysReused(t *testing.T) {
	f := newFakeFS()
	f.set("a.php", "ha", 10, 1)
	g := graphFor(f, nil, "a.php")

	// Touch without an edit: mtime moves, content identical.
	f.set("a.php", "ha", 10, 99)

	p := PlanDelta(g, f.snapshot("a.php"), f.env())
	if len(p.Verify) != 0 {
		t.Fatalf("touched-but-identical file invalidated: %v", p.Verify)
	}
	// The refreshed stat is handed back so the next graph takes the fast
	// path again.
	dm := p.Deps["a.php"]
	if dm == nil || dm.MTimeNS != 99 {
		t.Fatalf("plan.Deps[a.php] = %+v, want refreshed mtime 99", dm)
	}
	if f.reads["a.php"] != 1 {
		t.Fatalf("a.php hashed %d time(s), want exactly 1", f.reads["a.php"])
	}
}

func TestPlanDeltaAppearedMissInvalidates(t *testing.T) {
	f := newFakeFS()
	f.set("a.php", "ha", 10, 1)
	g := graphFor(f, nil, "a.php")
	g.Files["a.php"].Misses = []string{"optional.php"}

	// Still missing: reuse.
	p := PlanDelta(g, f.snapshot("a.php"), f.env())
	if len(p.Verify) != 0 {
		t.Fatalf("missing candidate invalidated while still absent: %v", p.Verify)
	}

	// The probed-but-missing include appears: the model would now splice
	// it in, so the file must re-verify.
	f.set("optional.php", "ho", 3, 5)
	p = PlanDelta(g, f.snapshot("a.php"), f.env())
	if strings.Join(p.Verify, ",") != "a.php" || p.Invalidated != 1 {
		t.Fatalf("appeared miss: plan = %+v", p)
	}
}

func TestPlanDeltaConservativeFallbacks(t *testing.T) {
	f := newFakeFS()
	f.set("known.php", "hk", 10, 1)
	f.set("new.php", "hn", 5, 2)
	f.set("nokey.php", "h0", 7, 3)
	f.set("badep.php", "hd", 9, 4)
	g := graphFor(f, nil, "known.php", "nokey.php", "badep.php")
	g.Files["nokey.php"].ResultKey = "" // last run was incomplete
	g.Files["badep.php"].Deps = []string{"ghost.php"}
	// ghost.php has no DepMeta: unknown provenance.

	p := PlanDelta(g, f.snapshot("known.php", "new.php", "nokey.php", "badep.php"), f.env())
	if strings.Join(p.Verify, ",") != "badep.php,new.php,nokey.php" {
		t.Fatalf("verify = %v", p.Verify)
	}
	// A file the graph never saw is work, but not an invalidation.
	if p.Invalidated != 2 {
		t.Fatalf("invalidated = %d, want 2 (nokey + badep, not new)", p.Invalidated)
	}
	if p.Reuse["known.php"] != "key-known.php" {
		t.Fatalf("reuse = %v", p.Reuse)
	}

	// A dependency that vanished outright also invalidates.
	delete(f.files, "ghost.php")
	g2 := graphFor(f, map[string][]string{"known.php": {"gone.php"}}, "known.php")
	g2.Deps["gone.php"] = &DepMeta{Size: 1, MTimeNS: 1, Hash: "hg"}
	delete(f.files, "gone.php")
	delete(f.hash, "gone.php")
	p2 := PlanDelta(g2, f.snapshot("known.php"), f.env())
	if strings.Join(p2.Verify, ",") != "known.php" {
		t.Fatalf("vanished dep: verify = %v", p2.Verify)
	}
}

func TestDecodeRejectsForeignGraphs(t *testing.T) {
	g := New("/proj", "cfg")
	g.Files["a.php"] = &FileNode{Hash: "h", ResultKey: "k"}
	payload, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Decode(payload, "/proj", "cfg"); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := Decode(payload, "/other", "cfg"); err == nil {
		t.Fatal("foreign dir accepted")
	}
	if _, err := Decode(payload, "/proj", "cfg2"); err == nil {
		t.Fatal("foreign config accepted")
	}
	if _, err := Decode([]byte("{"), "/proj", "cfg"); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := strings.Replace(string(payload), `"schema":1`, `"schema":99`, 1)
	if _, err := Decode([]byte(bad), "/proj", "cfg"); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
