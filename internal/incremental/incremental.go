// Package incremental implements the include-dependency graph and delta
// planner behind WithIncremental: re-verification proportional to the
// edit, not the project.
//
// The paper's pipeline resolves file inclusions before filtering ("Parse
// PHP, resolve file inclusions", §3.3.1), so a project's verdicts form a
// dependency DAG over source files: an entry file's verdict can change
// only when the entry itself changes, when one of the includes spliced
// into its model changes, or when a previously missing include candidate
// appears. The graph persists exactly that resolution — per entry file
// the transitive include set with content fingerprints, plus the
// probed-but-missing candidates — together with each file's result-store
// key, so an unchanged file is served back with a single store read:
// no stat beyond the snapshot walk, no hashing, no include revalidation.
//
// Soundness framing: the planner only ever *shrinks work*, never the
// other way around. Anything it cannot prove unchanged (absent graph,
// schema or config mismatch, unreadable file, unknown dependency
// provenance) is planned for full re-verification. A wrong plan can cost
// time; it cannot produce a wrong verdict.
package incremental

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Schema versions the serialized graph layout. A persisted graph with a
// different schema reads as absent (full run), never as partial data.
const Schema = 1

// DepMeta fingerprints one include file as it was when some entry's
// model spliced it in: the stat fast path (size + mtime) plus the
// content hash that decides when the fast path misleads.
type DepMeta struct {
	Size    int64  `json:"size"`
	MTimeNS int64  `json:"mtime_ns"`
	Hash    string `json:"hash"`
}

// FileNode is one entry file's record: its own fingerprint, the store
// key its report was persisted under, and its resolved include edges.
type FileNode struct {
	Size    int64  `json:"size"`
	MTimeNS int64  `json:"mtime_ns"`
	Hash    string `json:"hash"`
	// ResultKey is the result-store address of this file's persisted
	// report. Empty when the last run produced no persistable report
	// (incomplete verdicts are never stored) — such files are always
	// re-planned.
	ResultKey string `json:"result_key,omitempty"`
	// Deps lists the transitive include files spliced into this file's
	// model (paths as the include resolver produced them); their
	// fingerprints live in Graph.Deps so shared includes are stored once.
	Deps []string `json:"deps,omitempty"`
	// Misses lists include candidates probed but absent during the build;
	// one appearing invalidates the file (the model would change).
	Misses []string `json:"misses,omitempty"`
	// Funcs maps function key → IR fingerprint of the file's lowered
	// unit as of its last verification (see ir.Unit.Fingerprints).
	// When the file later changes, a fresh lowering is compared against
	// these: any surviving fingerprint proves the edit was local, and
	// the prior SafeAsserts may be offered to the engine for reuse.
	Funcs map[string]string `json:"funcs,omitempty"`
	// SafeAsserts lists the check fingerprints (position-independent
	// hashes of each assertion's constraint slice) the last complete run
	// proved safe. Absent for files whose last run was incomplete —
	// such files always re-verify in full.
	SafeAsserts []string `json:"safe_asserts,omitempty"`
}

// Graph is the persistent include-dependency graph of one project
// directory under one verification configuration.
type Graph struct {
	Schema int `json:"schema"`
	// Dir is the project root the graph describes, Config the
	// fingerprint of every verdict-shaping option; either changing makes
	// the graph unusable (full run).
	Dir    string `json:"dir"`
	Config string `json:"config"`
	// Files maps entry-file path → node; Deps maps include path →
	// fingerprint, shared across all dependents.
	Files map[string]*FileNode `json:"files"`
	Deps  map[string]*DepMeta  `json:"deps,omitempty"`
}

// New returns an empty graph for the given root and config fingerprint.
func New(dir, config string) *Graph {
	return &Graph{
		Schema: Schema,
		Dir:    dir,
		Config: config,
		Files:  make(map[string]*FileNode),
		Deps:   make(map[string]*DepMeta),
	}
}

// Encode serializes the graph (JSON payload; callers frame it through
// the store's crash-safe blob format).
func (g *Graph) Encode() ([]byte, error) { return json.Marshal(g) }

// Decode deserializes a graph payload and validates it against the
// expected schema, root, and config fingerprint. Any mismatch or decode
// failure returns an error — the caller degrades to a full run.
func Decode(payload []byte, dir, config string) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(payload, &g); err != nil {
		return nil, fmt.Errorf("incremental: decoding graph: %w", err)
	}
	if g.Schema != Schema {
		return nil, fmt.Errorf("incremental: graph schema %d, want %d", g.Schema, Schema)
	}
	if g.Dir != dir || g.Config != config {
		return nil, fmt.Errorf("incremental: graph is for %s/%s", g.Dir, g.Config)
	}
	if g.Files == nil {
		g.Files = make(map[string]*FileNode)
	}
	if g.Deps == nil {
		g.Deps = make(map[string]*DepMeta)
	}
	return &g, nil
}

// FileMeta is one file's stat snapshot: what a directory walk learns
// without opening the file.
type FileMeta struct {
	Path    string
	Size    int64
	MTimeNS int64
}

// Snapshot is the stat view of a project directory: every entry file's
// path, size, and mtime, sorted by path.
type Snapshot struct {
	Files []FileMeta
}

// Plan is the delta planner's partition of a snapshot.
type Plan struct {
	// Verify lists entry files to (re-)verify, sorted.
	Verify []string
	// Reuse maps unchanged entry files to their remembered result-store
	// keys; the caller serves them with a trusted store read.
	Reuse map[string]string
	// Full is set when no usable graph existed and everything is in
	// Verify.
	Full bool
	// Invalidated counts previously known files in Verify — the actual
	// delta, excluding files the graph had never seen.
	Invalidated int
	// Deps carries the up-to-date fingerprint of every dependency the
	// planner checked and found unchanged (stat refreshed, hash either
	// fast-path-trusted or re-confirmed). The caller folds these into the
	// next graph so a touched-but-identical include is re-hashed at most
	// once per run, not once per dependent.
	Deps map[string]*DepMeta
}

// Env is the planner's view of the filesystem, injectable for tests.
// Hash returns the hex SHA-256 of a file's content (ok=false when
// unreadable); Stat returns a file's current stat fingerprint (ok=false
// when absent).
type Env struct {
	Hash func(path string) (string, bool)
	Stat func(path string) (size, mtimeNS int64, ok bool)
}

// PlanDelta partitions the snapshot into files to verify and files to
// serve from the store, given the previous run's graph (nil = full run).
//
// Fast path first: a file whose size and mtime match its recorded
// fingerprint is unchanged; on mismatch the content is hashed and
// compared, so a touch without an edit does not invalidate anything.
// A file is planned for verification when it is new to the graph, has
// no remembered result key, changed itself, depends on a changed or
// unknown include, or one of its missing include candidates appeared —
// the reverse-dependency closure of the edit, since each node's Deps is
// already the transitive include set of its model.
func PlanDelta(g *Graph, snap Snapshot, env Env) *Plan {
	p := &Plan{Reuse: make(map[string]string), Deps: make(map[string]*DepMeta)}
	if g == nil {
		p.Full = true
		for _, fm := range snap.Files {
			p.Verify = append(p.Verify, fm.Path)
		}
		return p
	}

	inSnap := make(map[string]FileMeta, len(snap.Files))
	for _, fm := range snap.Files {
		inSnap[fm.Path] = fm
	}

	// metaOf returns the recorded fingerprint for a path, preferring the
	// entry node (refreshed every run) over the shared dep table.
	metaOf := func(path string) (size, mtimeNS int64, hash string, ok bool) {
		if node := g.Files[path]; node != nil && node.Hash != "" {
			return node.Size, node.MTimeNS, node.Hash, true
		}
		if dm := g.Deps[path]; dm != nil && dm.Hash != "" {
			return dm.Size, dm.MTimeNS, dm.Hash, true
		}
		return 0, 0, "", false
	}

	// depChanged memoizes per-dependency change detection so a shared
	// include is checked once, not once per dependent.
	depState := make(map[string]bool)
	depChanged := func(path string) bool {
		if changed, ok := depState[path]; ok {
			return changed
		}
		changed := func() bool {
			recSize, recMTime, recHash, ok := metaOf(path)
			if !ok {
				return true // unknown provenance: assume changed
			}
			var size, mtime int64
			if fm, inWalk := inSnap[path]; inWalk {
				size, mtime = fm.Size, fm.MTimeNS
			} else if s, m, statOK := env.Stat(path); statOK {
				size, mtime = s, m
			} else {
				return true // dependency vanished
			}
			if size == recSize && mtime == recMTime {
				p.Deps[path] = &DepMeta{Size: size, MTimeNS: mtime, Hash: recHash}
				return false
			}
			h, hashOK := env.Hash(path)
			if !hashOK || h != recHash {
				return true
			}
			// Touched but identical: remember the fresh stat so the next
			// run takes the fast path again.
			p.Deps[path] = &DepMeta{Size: size, MTimeNS: mtime, Hash: recHash}
			return false
		}()
		depState[path] = changed
		return changed
	}

	for _, fm := range snap.Files {
		node := g.Files[fm.Path]
		if node == nil {
			p.Verify = append(p.Verify, fm.Path) // new file, not a delta
			continue
		}
		invalidate := func() {
			p.Verify = append(p.Verify, fm.Path)
			p.Invalidated++
		}
		if node.ResultKey == "" {
			invalidate()
			continue
		}
		if depChanged(fm.Path) { // the entry file itself, via the same memo
			invalidate()
			continue
		}
		dirty := false
		for _, dep := range node.Deps {
			if depChanged(dep) {
				dirty = true
				break
			}
		}
		if !dirty {
			for _, miss := range node.Misses {
				if _, _, ok := env.Stat(miss); ok {
					dirty = true // a missing include appeared
					break
				}
			}
		}
		if dirty {
			invalidate()
			continue
		}
		p.Reuse[fm.Path] = node.ResultKey
	}
	sort.Strings(p.Verify)
	return p
}
