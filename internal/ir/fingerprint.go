package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"webssari/internal/php/ast"
)

// Fingerprints are stable, position-independent SHA-256 digests of IR
// structure: two instructions (or functions) fingerprint equally exactly
// when their names, operators, literals, and shapes match, regardless of
// where they sit in the file. The incremental planner persists function
// fingerprints beside the include graph so an edit inside one function
// invalidates only results whose constraint slice touched it.

// fingerprintLen is the hex length of rendered fingerprints (64 bits is
// plenty for per-file function sets; collisions only cost a sound
// fallback to whole-file invalidation).
const fingerprintLen = 16

// MainKey is the Fingerprints map key for the top-level statement stream.
const MainKey = "<main>"

func hashHex(h hash.Hash) string {
	return hex.EncodeToString(h.Sum(nil))[:fingerprintLen]
}

// Fingerprint implements Instr.
func (i *Eval) Fingerprint() string       { return instrFP(i) }
func (i *Echo) Fingerprint() string       { return instrFP(i) }
func (i *Nop) Fingerprint() string        { return instrFP(i) }
func (i *Branch) Fingerprint() string     { return instrFP(i) }
func (i *Loop) Fingerprint() string       { return instrFP(i) }
func (i *Foreach) Fingerprint() string    { return instrFP(i) }
func (i *Switch) Fingerprint() string     { return instrFP(i) }
func (i *Return) Fingerprint() string     { return instrFP(i) }
func (i *Global) Fingerprint() string     { return instrFP(i) }
func (i *StaticDecl) Fingerprint() string { return instrFP(i) }
func (i *Unset) Fingerprint() string      { return instrFP(i) }

func instrFP(in Instr) string {
	w := newCanon()
	w.instr(in)
	return hashHex(w.h)
}

// Fingerprint returns the function's position-independent digest, covering
// its name, kind flags, parameters, captures, and whole body.
func (f *Func) Fingerprint() string {
	w := newCanon()
	w.fn(f)
	return hashHex(w.h)
}

// Fingerprints returns the unit's function-level fingerprint map: MainKey
// for the top-level stream, the lower-cased function name for plain
// functions, "class::method" for methods, and the synthesized closure name
// for anonymous functions. When two functions collide on a key (duplicate
// declarations), their digests chain, so the key still changes whenever
// either body changes.
func (u *Unit) Fingerprints() map[string]string {
	out := make(map[string]string, len(u.Funcs)+1)
	mw := newCanon()
	mw.block(u.Main)
	out[MainKey] = hashHex(mw.h)
	for _, f := range u.Funcs {
		key := ast.LowerName(f.Name)
		if f.Method {
			key = ast.LowerName(f.Class) + "::" + key
		}
		fp := f.Fingerprint()
		if prev, dup := out[key]; dup {
			cw := newCanon()
			cw.str(prev)
			cw.str(fp)
			fp = hashHex(cw.h)
		}
		out[key] = fp
	}
	return out
}

// canon serializes IR structure into a hash, excluding all positions. The
// encoding is injective: every node writes a distinct tag, strings are
// length-prefixed, and child lists are count-prefixed.
type canon struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func newCanon() *canon { return &canon{h: sha256.New()} }

func (w *canon) tag(t byte) { w.h.Write([]byte{t}) }

func (w *canon) num(n int) {
	k := binary.PutVarint(w.buf[:], int64(n))
	w.h.Write(w.buf[:k])
}

func (w *canon) str(s string) {
	w.num(len(s))
	w.h.Write([]byte(s))
}

func (w *canon) bool(v bool) {
	if v {
		w.tag(1)
	} else {
		w.tag(0)
	}
}

func (w *canon) block(b Block) {
	w.num(len(b))
	for _, in := range b {
		w.instr(in)
	}
}

func (w *canon) exprs(list []Expr) {
	w.num(len(list))
	for _, e := range list {
		w.expr(e)
	}
}

func (w *canon) fn(f *Func) {
	w.tag('F')
	w.str(f.Name)
	w.str(f.Class)
	w.bool(f.Method)
	w.bool(f.Nested)
	w.bool(f.Closure)
	w.num(len(f.Params))
	for _, p := range f.Params {
		w.str(p.Name)
		w.bool(p.ByRef)
		w.expr(p.Default)
	}
	w.num(len(f.Uses))
	for _, u := range f.Uses {
		w.str(u.Name)
		w.bool(u.ByRef)
	}
	w.block(f.Body)
}

func (w *canon) instr(in Instr) {
	switch in := in.(type) {
	case nil:
		w.tag(0)
	case *Eval:
		w.tag('e')
		w.expr(in.X)
	case *Echo:
		w.tag('o')
		w.exprs(in.Args)
	case *Nop:
		w.tag('n')
		w.str(in.Kind)
		// Inline-HTML text is semantic under context-sensitive policies
		// (it drives the output-context machine), so it fingerprints.
		w.str(in.Text)
	case *Branch:
		w.tag('b')
		w.bool(in.Elseif)
		w.expr(in.Cond)
		w.block(in.Then)
		w.block(in.Else)
	case *Loop:
		w.tag('l')
		w.num(int(in.Kind))
		w.exprs(in.Init)
		w.exprs(in.Cond)
		w.exprs(in.Post)
		w.block(in.Body)
	case *Foreach:
		w.tag('f')
		w.expr(in.Subject)
		w.expr(in.Key)
		w.expr(in.Val)
		w.bool(in.ByRef)
		w.block(in.Body)
	case *Switch:
		w.tag('s')
		w.expr(in.Subject)
		w.num(len(in.Cases))
		for _, c := range in.Cases {
			w.expr(c.Match)
			w.block(c.Body)
		}
	case *Return:
		w.tag('r')
		w.expr(in.X)
	case *Global:
		w.tag('g')
		w.num(len(in.Names))
		for _, n := range in.Names {
			w.str(n)
		}
	case *StaticDecl:
		w.tag('t')
		w.num(len(in.Vars))
		for _, v := range in.Vars {
			w.str(v.Name)
			w.expr(v.Init)
		}
	case *Unset:
		w.tag('u')
		w.exprs(in.Args)
	}
}

func (w *canon) expr(e Expr) {
	switch e := e.(type) {
	case nil:
		w.tag(0)
	case *Lit:
		w.tag('L')
		w.num(int(e.Kind))
		w.str(e.Text)
	case *Str:
		w.tag('S')
		w.str(e.Value)
	case *Interp:
		w.tag('I')
		w.exprs(e.Parts)
	case *Array:
		w.tag('A')
		w.num(len(e.Items))
		for _, it := range e.Items {
			w.expr(it.Key)
			w.expr(it.Val)
		}
	case *Var:
		w.tag('V')
		w.str(e.Name)
	case *VarVar:
		w.tag('W')
		w.expr(e.Inner)
	case *Index:
		w.tag('X')
		w.expr(e.Arr)
		w.expr(e.Key)
	case *Prop:
		w.tag('P')
		w.expr(e.Obj)
		w.str(e.Name)
	case *Cast:
		w.tag('C')
		w.str(e.To)
		w.expr(e.X)
	case *Unary:
		w.tag('U')
		w.str(e.Op)
		w.bool(e.Postfix)
		w.expr(e.X)
	case *Concat:
		w.tag('.')
		w.expr(e.L)
		w.expr(e.R)
	case *Bin:
		w.tag('B')
		w.str(e.Op)
		w.expr(e.L)
		w.expr(e.R)
	case *Assign:
		w.tag('=')
		w.str(e.Op)
		w.bool(e.ByRef)
		w.expr(e.LHS)
		w.expr(e.RHS)
	case *Ternary:
		w.tag('?')
		w.expr(e.Cond)
		w.expr(e.Then)
		w.expr(e.Else)
	case *Call:
		w.tag('c')
		w.str(e.Name)
		w.expr(e.Func)
		w.exprs(e.Args)
	case *MethodCall:
		w.tag('m')
		w.expr(e.Obj)
		w.str(e.Name)
		w.exprs(e.Args)
	case *StaticCall:
		w.tag('q')
		w.str(e.Class)
		w.str(e.Name)
		w.exprs(e.Args)
	case *New:
		w.tag('N')
		w.str(e.Class)
		w.exprs(e.Args)
	case *Include:
		w.tag('i')
		w.str(e.Kind)
		w.expr(e.Path)
	case *Isset:
		w.tag('y')
		w.exprs(e.Args)
	case *Empty:
		w.tag('z')
		w.expr(e.Arg)
	case *List:
		w.tag('T')
		w.exprs(e.Targets)
	case *Exit:
		w.tag('x')
		w.expr(e.Arg)
	case *Closure:
		w.tag('k')
		w.fn(e.Fn)
	case *Opaque:
		w.tag('O')
		w.str(e.LegacyType)
	}
}
