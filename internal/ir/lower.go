package ir

import (
	"fmt"

	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
)

// Lower lowers one parsed file to its IR Unit. Lowering is total: every
// statement becomes exactly one instruction (declarations and no-flow
// statements become Nop markers so statement-site bookkeeping matches the
// source stream), and function, method, and closure bodies hoist into
// Unit.Funcs in the same pre-order the pre-IR declaration pass walked.
func Lower(file *ast.File) (*Unit, error) {
	if file == nil {
		return nil, fmt.Errorf("ir: Lower called with nil file")
	}
	l := &lowerer{}
	main := l.lowerStmts(file.Stmts)
	return &Unit{File: file.Name, Main: main, Funcs: l.funcs}, nil
}

// LowerSource parses and lowers PHP source text in one step; parse
// diagnostics are returned alongside the (always usable) unit.
func LowerSource(name string, src []byte) (*Unit, []error) {
	res := parser.Parse(name, src)
	unit, err := Lower(res.File)
	errs := res.Errs
	if err != nil {
		errs = append(errs, err)
	}
	return unit, errs
}

type lowerer struct {
	funcs    []*Func
	fnDepth  int
	nclosure int
}

func sp(n ast.Node) Span {
	return Span{Start: n.Pos(), StopOff: n.End()}
}

func (l *lowerer) lowerStmts(stmts []ast.Stmt) Block {
	var out Block
	for _, s := range stmts {
		if in := l.lowerStmt(s); in != nil {
			out = append(out, in...)
		}
	}
	return out
}

// lowerStmt lowers one statement. Most statements become one instruction;
// an explicit block becomes a Nop marker followed by its spliced body (the
// pre-IR builder opened a statement site at the block itself before
// walking its children).
func (l *lowerer) lowerStmt(s ast.Stmt) Block {
	if s == nil {
		return nil
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		return Block{&Eval{Span: sp(s), X: l.lowerExpr(s.X)}}

	case *ast.EchoStmt:
		return Block{&Echo{Span: sp(s), Args: l.lowerExprs(s.Args)}}

	case *ast.InlineHTMLStmt:
		return Block{&Nop{Span: sp(s), Kind: "html", Text: s.Text}}
	case *ast.NopStmt:
		return Block{&Nop{Span: sp(s), Kind: "nop"}}
	case *ast.BreakStmt:
		return Block{&Nop{Span: sp(s), Kind: "break"}}
	case *ast.ContinueStmt:
		return Block{&Nop{Span: sp(s), Kind: "continue"}}

	case *ast.IfStmt:
		return Block{l.lowerIfChain(s.Cond, s.Then, s.Elseifs, s.Else, sp(s), false)}

	case *ast.WhileStmt:
		return Block{&Loop{
			Span: sp(s), Kind: LoopWhile,
			Cond: []Expr{l.lowerExpr(s.Cond)},
			Body: l.lowerStmts(s.Body),
		}}

	case *ast.DoWhileStmt:
		return Block{&Loop{
			Span: sp(s), Kind: LoopDoWhile,
			Cond: []Expr{l.lowerExpr(s.Cond)},
			Body: l.lowerStmts(s.Body),
		}}

	case *ast.ForStmt:
		return Block{&Loop{
			Span: sp(s), Kind: LoopFor,
			Init: l.lowerExprs(s.Init),
			Cond: l.lowerExprs(s.Cond),
			Post: l.lowerExprs(s.Post),
			Body: l.lowerStmts(s.Body),
		}}

	case *ast.ForeachStmt:
		return Block{&Foreach{
			Span:    sp(s),
			Subject: l.lowerExpr(s.Subject),
			Key:     l.lowerExpr(s.KeyVar),
			Val:     l.lowerExpr(s.ValVar),
			ByRef:   s.ByRef,
			Body:    l.lowerStmts(s.Body),
		}}

	case *ast.SwitchStmt:
		sw := &Switch{Span: sp(s), Subject: l.lowerExpr(s.Subject)}
		for _, c := range s.Cases {
			sw.Cases = append(sw.Cases, SwitchCase{
				Match: l.lowerExpr(c.Match),
				Body:  l.lowerStmts(c.Body),
			})
		}
		return Block{sw}

	case *ast.ReturnStmt:
		return Block{&Return{Span: sp(s), X: l.lowerExpr(s.X)}}

	case *ast.GlobalStmt:
		return Block{&Global{Span: sp(s), Names: s.Names}}

	case *ast.StaticStmt:
		sd := &StaticDecl{Span: sp(s)}
		for _, v := range s.Vars {
			sd.Vars = append(sd.Vars, StaticVar{Name: v.Name, Init: l.lowerExpr(v.Init)})
		}
		return Block{sd}

	case *ast.UnsetStmt:
		return Block{&Unset{Span: sp(s), Args: l.lowerExprs(s.Args)}}

	case *ast.FunctionDecl:
		l.hoistFunc(s, "", false)
		return Block{&Nop{Span: sp(s), Kind: "fndecl"}}

	case *ast.ClassDecl:
		for _, m := range s.Methods {
			l.hoistFunc(m, s.Name, true)
		}
		return Block{&Nop{Span: sp(s), Kind: "classdecl"}}

	case *ast.BlockStmt:
		out := Block{&Nop{Span: sp(s), Kind: "block"}}
		return append(out, l.lowerStmts(s.Body)...)

	default:
		return Block{&Nop{Span: sp(s), Kind: "stmt"}}
	}
}

// lowerIfChain lowers if/elseif/else to nested branches: each elseif
// becomes a Branch in the Else block of its predecessor, marked Elseif and
// spanning the whole source if-statement, exactly mirroring the pre-IR
// builder's recursion.
func (l *lowerer) lowerIfChain(cond ast.Expr, then []ast.Stmt, elseifs []ast.ElseifClause, els []ast.Stmt, outer Span, elseif bool) *Branch {
	br := &Branch{
		Span:   outer,
		Cond:   l.lowerExpr(cond),
		Then:   l.lowerStmts(then),
		Elseif: elseif,
	}
	if len(elseifs) > 0 {
		br.Else = Block{l.lowerIfChain(elseifs[0].Cond, elseifs[0].Body, elseifs[1:], els, outer, true)}
	} else {
		br.Else = l.lowerStmts(els)
	}
	return br
}

func (l *lowerer) hoistFunc(fd *ast.FunctionDecl, class string, method bool) *Func {
	fn := &Func{
		Span:   sp(fd),
		Name:   fd.Name,
		Class:  class,
		Method: method,
		Nested: l.fnDepth > 0,
	}
	for _, p := range fd.Params {
		fn.Params = append(fn.Params, Param{Name: p.Name, ByRef: p.ByRef, Default: l.lowerExpr(p.Default)})
	}
	l.funcs = append(l.funcs, fn)
	l.fnDepth++
	fn.Body = l.lowerStmts(fd.Body)
	l.fnDepth--
	return fn
}

func (l *lowerer) lowerExprs(list []ast.Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = l.lowerExpr(e)
	}
	return out
}

func (l *lowerer) lowerExpr(e ast.Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return &Lit{Span: sp(e), Kind: LitInt, Text: e.Raw}
	case *ast.FloatLit:
		return &Lit{Span: sp(e), Kind: LitFloat, Text: e.Raw}
	case *ast.BoolLit:
		if e.Value {
			return &Lit{Span: sp(e), Kind: LitBool, Text: "true"}
		}
		return &Lit{Span: sp(e), Kind: LitBool, Text: "false"}
	case *ast.NullLit:
		return &Lit{Span: sp(e), Kind: LitNull, Text: "null"}
	case *ast.ConstFetch:
		return &Lit{Span: sp(e), Kind: LitConst, Text: e.Name}

	case *ast.StringLit:
		return &Str{Span: sp(e), Value: e.Value}

	case *ast.Interp:
		return &Interp{Span: sp(e), Parts: l.lowerExprs(e.Parts)}

	case *ast.ArrayLit:
		arr := &Array{Span: sp(e)}
		for _, it := range e.Items {
			arr.Items = append(arr.Items, ArrayItem{Key: l.lowerExpr(it.Key), Val: l.lowerExpr(it.Val)})
		}
		return arr

	case *ast.Var:
		return &Var{Span: sp(e), Name: e.Name}

	case *ast.VarVar:
		return &VarVar{Span: sp(e), Inner: l.lowerExpr(e.Inner)}

	case *ast.Index:
		return &Index{Span: sp(e), Arr: l.lowerExpr(e.Arr), Key: l.lowerExpr(e.Key)}

	case *ast.Prop:
		return &Prop{Span: sp(e), Obj: l.lowerExpr(e.Obj), Name: e.Name}

	case *ast.Cast:
		return &Cast{Span: sp(e), To: e.To, X: l.lowerExpr(e.X)}

	case *ast.Unary:
		return &Unary{Span: sp(e), Op: e.Op.String(), X: l.lowerExpr(e.X), Postfix: e.Postfix}

	case *ast.Binary:
		if e.Op.String() == "." {
			return &Concat{Span: sp(e), L: l.lowerExpr(e.L), R: l.lowerExpr(e.R)}
		}
		return &Bin{Span: sp(e), Op: e.Op.String(), L: l.lowerExpr(e.L), R: l.lowerExpr(e.R)}

	case *ast.Assign:
		return &Assign{
			Span: sp(e), Op: e.Op.String(),
			LHS: l.lowerExpr(e.LHS), RHS: l.lowerExpr(e.RHS), ByRef: e.ByRef,
		}

	case *ast.Ternary:
		return &Ternary{Span: sp(e), Cond: l.lowerExpr(e.Cond), Then: l.lowerExpr(e.Then), Else: l.lowerExpr(e.Else)}

	case *ast.Call:
		c := &Call{Span: sp(e), Name: e.FuncName(), Args: l.lowerExprs(e.Args)}
		if c.Name == "" {
			c.Func = l.lowerExpr(e.Func)
		}
		return c

	case *ast.MethodCall:
		return &MethodCall{Span: sp(e), Obj: l.lowerExpr(e.Obj), Name: e.Name, Args: l.lowerExprs(e.Args)}

	case *ast.StaticCall:
		return &StaticCall{Span: sp(e), Class: e.Class, Name: e.Name, Args: l.lowerExprs(e.Args)}

	case *ast.New:
		return &New{Span: sp(e), Class: e.Class, Args: l.lowerExprs(e.Args)}

	case *ast.IncludeExpr:
		return &Include{Span: sp(e), Kind: e.Kind.String(), Path: l.lowerExpr(e.Path)}

	case *ast.IssetExpr:
		return &Isset{Span: sp(e), Args: l.lowerExprs(e.Args)}

	case *ast.EmptyExpr:
		return &Empty{Span: sp(e), Arg: l.lowerExpr(e.Arg)}

	case *ast.ListExpr:
		lst := &List{Span: sp(e)}
		for _, tgt := range e.Targets {
			lst.Targets = append(lst.Targets, l.lowerExpr(tgt))
		}
		return lst

	case *ast.ExitExpr:
		return &Exit{Span: sp(e), Arg: l.lowerExpr(e.Arg)}

	case *ast.Closure:
		fn := &Func{
			Span:    sp(e),
			Name:    fmt.Sprintf("{closure:%d}", l.nclosure),
			Closure: true,
			Nested:  l.fnDepth > 0,
		}
		l.nclosure++
		for _, p := range e.Params {
			fn.Params = append(fn.Params, Param{Name: p.Name, ByRef: p.ByRef, Default: l.lowerExpr(p.Default)})
		}
		for _, u := range e.Uses {
			fn.Uses = append(fn.Uses, ClosureUse{Name: u.Name, ByRef: u.ByRef})
		}
		l.funcs = append(l.funcs, fn)
		l.fnDepth++
		fn.Body = l.lowerStmts(e.Body)
		l.fnDepth--
		return &Closure{Span: sp(e), Fn: fn}

	default:
		return &Opaque{Span: sp(e), LegacyType: fmt.Sprintf("%T", e)}
	}
}
