package ir

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// lower parses and lowers a source text, failing the test on a lowering
// error (recoverable parse errors are allowed — lowering is total over
// recovered ASTs).
func lower(t *testing.T, src string) *Unit {
	t.Helper()
	unit, errs := LowerSource("test.php", []byte(src))
	if unit == nil {
		t.Fatalf("LowerSource returned nil unit (errs %v)", errs)
	}
	return unit
}

func TestLowerBasicShape(t *testing.T) {
	unit := lower(t, `<?php
function f($a) { return $a; }
$x = $_GET['q'];
echo f($x);`)
	if unit.File != "test.php" {
		t.Errorf("File = %q", unit.File)
	}
	if len(unit.Funcs) != 1 || unit.Funcs[0].Name != "f" {
		t.Fatalf("funcs = %v, want [f]", unit.Funcs)
	}
	if len(unit.Main) == 0 {
		t.Fatal("empty main block")
	}
	text := unit.String()
	for _, want := range []string{"unit test.php", "func f(", "func <main>", "sink echo("} {
		if !strings.Contains(text, want) {
			t.Errorf("printed unit missing %q:\n%s", want, text)
		}
	}
}

func TestLowerHoistsClosures(t *testing.T) {
	unit := lower(t, `<?php
$f = function ($a) use (&$acc) { return $a; };
$g = function () { return 1; };`)
	var names []string
	for _, fn := range unit.Funcs {
		if !fn.Closure {
			t.Errorf("hoisted %q not marked Closure", fn.Name)
		}
		names = append(names, fn.Name)
	}
	if len(names) != 2 || names[0] != "{closure:0}" || names[1] != "{closure:1}" {
		t.Fatalf("closure names = %v", names)
	}
	if len(unit.Funcs[0].Uses) != 1 || !unit.Funcs[0].Uses[0].ByRef {
		t.Errorf("capture clause = %+v, want one by-ref use", unit.Funcs[0].Uses)
	}
}

func TestLowerForeachByRef(t *testing.T) {
	unit := lower(t, `<?php foreach ($rows as $k => &$v) { echo $v; }`)
	var fe *Foreach
	for _, in := range unit.Main {
		if f, ok := in.(*Foreach); ok {
			fe = f
		}
	}
	if fe == nil {
		t.Fatal("no Foreach instruction in main")
	}
	if !fe.ByRef {
		t.Error("ByRef not set for `as &$v`")
	}
	if fe.Key == nil {
		t.Error("Key lost")
	}
}

// TestLowerRecoveredErrorsTotal asserts lowering is total over ASTs the
// parser recovered from errors: every statement still yields at least
// one instruction, printing works, fingerprints compute.
func TestLowerRecoveredErrorsTotal(t *testing.T) {
	broken := []string{
		`<?php $x = ; } } if (`,
		`<?php function f( { echo $x;`,
		`<?php foreach ($a as { echo 1; }`,
		"<?php \x00 $x=$_GET[1];echo $x;",
		`<?php class C { function  { } }`,
		`<?php switch ($x) { case : echo 1; }`,
		`no php at all`,
		``,
	}
	for _, src := range broken {
		unit, _ := LowerSource("broken.php", []byte(src))
		if unit == nil {
			t.Fatalf("nil unit for %q", src)
		}
		_ = unit.String()
		_ = unit.Fingerprints()
	}
}

func TestFingerprintsPositionIndependent(t *testing.T) {
	a := lower(t, `<?php
function f($a) { return htmlspecialchars($a); }
function g($b) { echo $b; }`)
	b := lower(t, `<?php

// a comment shifts everything down


function f($a) { return htmlspecialchars($a); }

function g($b) { echo $b; }`)
	fa, fb := a.Fingerprints(), b.Fingerprints()
	for _, key := range []string{"f", "g"} {
		if fa[key] == "" || fa[key] != fb[key] {
			t.Errorf("fingerprint %q changed with position: %q vs %q", key, fa[key], fb[key])
		}
	}
	// <main> is empty in both, so it matches too.
	if fa[MainKey] != fb[MainKey] {
		t.Errorf("main fingerprint changed with position only")
	}
}

func TestFingerprintsSensitiveToBodyEdits(t *testing.T) {
	a := lower(t, `<?php function f($a) { return $a; } function g($b) { echo $b; }`)
	b := lower(t, `<?php function f($a) { return htmlspecialchars($a); } function g($b) { echo $b; }`)
	fa, fb := a.Fingerprints(), b.Fingerprints()
	if fa["f"] == fb["f"] {
		t.Error("editing f's body did not change its fingerprint")
	}
	if fa["g"] != fb["g"] {
		t.Error("editing f changed g's fingerprint")
	}
}

func TestFingerprintsKeying(t *testing.T) {
	unit := lower(t, `<?php
function plain() {}
class Shop { function buy() {} }
$c = function () {};`)
	fps := unit.Fingerprints()
	for _, key := range []string{MainKey, "plain", "shop::buy"} {
		if fps[key] == "" {
			t.Errorf("missing fingerprint for %q (have %v)", key, keys(fps))
		}
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestDumpExamplesGolden locks the textual IR of the example corpus — the
// same bytes `xbmc -dump-ir examples/php` prints from the repository
// root, which CI diffs against this golden. Regenerate with
// `go test ./internal/ir -run Golden -update`.
func TestDumpExamplesGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	var sb, errsb strings.Builder
	if err := DumpTree(&sb, &errsb, filepath.Join("examples", "php")); err != nil {
		t.Fatalf("DumpTree: %v", err)
	}
	if errsb.Len() > 0 {
		t.Errorf("unexpected diagnostics:\n%s", errsb.String())
	}

	golden := filepath.Join(wd, "testdata", "examples_php.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if sb.String() != string(want) {
		t.Errorf("IR dump drifted from golden\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}
