// Package ir defines the typed flow intermediate representation that sits
// between the PHP front end and the verifier's abstract-interpretation
// pipeline. A parsed file lowers (Lower) to a Unit: a <main> instruction
// block plus one Func per declared function, method, and anonymous
// function, all hoisted out of the statement stream.
//
// The IR preserves exactly the information the filter F(p) consumes —
// assignments, concatenations, calls, sinks, sanitizing casts, branches,
// loop structures, includes, and returns — as explicit instructions over
// expression trees, each carrying its source Site (span) and a stable,
// position-independent fingerprint. Everything downstream (flow.BuildUnit,
// the typestate ablation, the incremental planner's function-level deltas,
// and the -dump-ir CLI mode) consumes this form instead of the AST.
//
// Units are immutable after Lower returns: builders may share them freely
// across goroutines.
package ir

import (
	"webssari/internal/php/token"
)

// Span is the source extent shared by all IR nodes, mirroring ast.Span.
type Span struct {
	Start   token.Pos
	StopOff int
}

// Pos returns the position of the first character of the node.
func (s Span) Pos() token.Pos { return s.Start }

// End returns the byte offset one past the last character of the node.
func (s Span) End() int { return s.StopOff }

// Node is implemented by all IR nodes.
type Node interface {
	Pos() token.Pos
	End() int
}

// Expr is implemented by all IR expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Instr is implemented by all IR instructions.
type Instr interface {
	Node
	instrNode()
	// Fingerprint returns a stable, position-independent hash of the
	// instruction (see fingerprint.go).
	Fingerprint() string
}

// Block is a sequence of instructions. Structured instructions (Branch,
// Loop, Foreach, Switch) nest child blocks; the loop-back edges implied by
// Loop/Foreach are deconstructed into selections by the flow builder.
type Block []Instr

// ------------------------------------------------------------- expressions

// LitKind distinguishes scalar literal classes.
type LitKind int

// Literal kinds.
const (
	LitInt LitKind = iota + 1
	LitFloat
	LitBool
	LitNull
	LitConst // bare identifier used as a constant
)

func (k LitKind) String() string {
	switch k {
	case LitInt:
		return "int"
	case LitFloat:
		return "float"
	case LitBool:
		return "bool"
	case LitNull:
		return "null"
	case LitConst:
		return "const"
	}
	return "lit"
}

// Lit is a scalar literal or bare constant; Text keeps the source spelling
// (or constant name).
type Lit struct {
	Span
	Kind LitKind
	Text string
}

// Str is a string constant with no interpolation.
type Str struct {
	Span
	Value string
}

// Interp is an interpolated string; evaluation concatenates Parts.
type Interp struct {
	Span
	Parts []Expr
}

// ArrayItem is one element of an Array literal.
type ArrayItem struct {
	Key Expr // nil when no explicit key
	Val Expr
}

// Array is an array(...) literal.
type Array struct {
	Span
	Items []ArrayItem
}

// Var is a simple variable $name (Name excludes the dollar sign).
type Var struct {
	Span
	Name string
}

// VarVar is a variable variable $$x or ${expr}.
type VarVar struct {
	Span
	Inner Expr
}

// Index is an array access; Key is nil for the append form $a[].
type Index struct {
	Span
	Arr Expr
	Key Expr
}

// Prop is a property access obj->name.
type Prop struct {
	Span
	Obj  Expr
	Name string
}

// Cast is a type cast; To is the lower-cased target type.
type Cast struct {
	Span
	To string
	X  Expr
}

// Sanitizing reports whether the cast's result type cannot carry string
// payloads — the explicit "sanitize" instruction of the IR.
func (c *Cast) Sanitizing() bool {
	switch c.To {
	case "int", "integer", "float", "double", "real", "bool", "boolean":
		return true
	default:
		return false
	}
}

// Unary is a prefix or postfix unary operation.
type Unary struct {
	Span
	Op      string
	X       Expr
	Postfix bool
}

// Concat is string concatenation (the "." binary) — the explicit concat
// operation of the IR; static include-path evaluation folds over it.
type Concat struct {
	Span
	L Expr
	R Expr
}

// Bin is any non-concat binary operation.
type Bin struct {
	Span
	Op string
	L  Expr
	R  Expr
}

// Assign is an assignment expression; Op distinguishes "=" ".=" "+=" etc.
type Assign struct {
	Span
	Op    string
	LHS   Expr
	RHS   Expr
	ByRef bool
}

// Ternary is cond ? then : else; Then is nil for the short form.
type Ternary struct {
	Span
	Cond Expr
	Then Expr
	Else Expr
}

// Call is a function call. Name is the lower-cased static callee name, or
// "" for dynamic calls, in which case Func holds the callee expression.
type Call struct {
	Span
	Name string
	Func Expr // nil when Name != ""
	Args []Expr
}

// MethodCall is obj->name(args).
type MethodCall struct {
	Span
	Obj  Expr
	Name string
	Args []Expr
}

// StaticCall is Class::name(args).
type StaticCall struct {
	Span
	Class string
	Name  string
	Args  []Expr
}

// New is object construction.
type New struct {
	Span
	Class string
	Args  []Expr
}

// Include is include/require/include_once/require_once — the explicit
// include instruction of the IR (in PHP it is an expression). Kind is the
// keyword spelling.
type Include struct {
	Span
	Kind string
	Path Expr
}

// Isset is isset(args).
type Isset struct {
	Span
	Args []Expr
}

// Empty is empty(arg).
type Empty struct {
	Span
	Arg Expr
}

// List is list($a, $b) as an assignment target; nil entries stand for
// skipped positions.
type List struct {
	Span
	Targets []Expr
}

// Exit is exit(arg)/die(arg); Arg may be nil. In statement position the
// flow builder additionally emits a stop.
type Exit struct {
	Span
	Arg Expr
}

// Closure is an anonymous function expression. Fn points at the hoisted
// function (Fn.Closure is true); the capture clause lives on Fn.Uses.
type Closure struct {
	Span
	Fn *Func
}

// Opaque stands for a source expression the lowering does not model;
// LegacyType names the originating AST node type so downstream warnings
// match the pre-IR engine byte for byte.
type Opaque struct {
	Span
	LegacyType string
}

// ------------------------------------------------------------ instructions

// Eval evaluates an expression for its effects (assignments, calls, …).
type Eval struct {
	Span
	X Expr
}

// Echo is the echo/print-statement sink instruction.
type Echo struct {
	Span
	Args []Expr
}

// Nop is a statement with no information flow of its own (inline HTML,
// empty statement, break/continue, or a hoisted declaration's statement
// position). It exists so statement-site bookkeeping matches the source
// statement stream exactly.
type Nop struct {
	Span
	Kind string // "html", "nop", "break", "continue", "fndecl", "classdecl", "block", "stmt"
	// Text carries the literal output of an inline-HTML chunk (Kind
	// "html"): context-sensitive policies drive the HTML output-context
	// state machine over it. Empty for every other Kind.
	Text string
}

// Branch is a nondeterministic two-way branch lowered from if/elseif/else.
// An elseif clause lowers to a nested Branch (Elseif true) as the sole
// instruction of the outer Else block; such a branch keeps the outer
// statement's span and does not open a new statement site.
type Branch struct {
	Span
	Cond   Expr
	Then   Block
	Else   Block
	Elseif bool
}

// LoopKind distinguishes loop statement forms.
type LoopKind int

// Loop kinds.
const (
	LoopWhile LoopKind = iota + 1
	LoopDoWhile
	LoopFor
)

func (k LoopKind) String() string {
	switch k {
	case LoopWhile:
		return "while"
	case LoopDoWhile:
		return "dowhile"
	case LoopFor:
		return "for"
	}
	return "loop"
}

// Loop is a loop with an implicit back edge; the flow builder deconstructs
// it into nested selections (unrolling). While/DoWhile use Cond[0]; For
// carries the full header.
type Loop struct {
	Span
	Kind LoopKind
	Init []Expr
	Cond []Expr
	Post []Expr
	Body Block
}

// Foreach iterates an array; Key may be nil. ByRef marks "as &$v", which
// flows element writes back into the subject.
type Foreach struct {
	Span
	Subject Expr
	Key     Expr
	Val     Expr
	ByRef   bool
	Body    Block
}

// SwitchCase is one case (Match nil for default) of a Switch.
type SwitchCase struct {
	Match Expr
	Body  Block
}

// Switch is a switch statement.
type Switch struct {
	Span
	Subject Expr
	Cases   []SwitchCase
}

// Return is return [expr].
type Return struct {
	Span
	X Expr // nil for bare return
}

// Global is global $a, $b.
type Global struct {
	Span
	Names []string
}

// StaticVar is one declaration of a StaticDecl.
type StaticVar struct {
	Name string
	Init Expr // nil when uninitialized
}

// StaticDecl is static $a = 0, $b.
type StaticDecl struct {
	Span
	Vars []StaticVar
}

// Unset is unset($a, $b).
type Unset struct {
	Span
	Args []Expr
}

// ------------------------------------------------------------------- units

// Param is a function parameter.
type Param struct {
	Name    string
	ByRef   bool
	Default Expr // nil when required
}

// ClosureUse is one captured variable of a closure.
type ClosureUse struct {
	Name  string
	ByRef bool
}

// Func is one lowered function body: a plain function, a class method
// (Method set; Class holds the class name), or an anonymous function
// (Closure set). Method is a separate flag rather than `Class != ""`
// because error recovery can yield a class whose name is empty — its
// methods must still resolve as methods, never as plain functions.
// Nested marks declarations inside another function body, which PHP
// registers only at runtime and the pre-IR engine therefore never
// resolved — the flow builder skips them during call resolution,
// preserving that behaviour.
type Func struct {
	Span
	Name    string
	Class   string
	Method  bool
	Nested  bool
	Closure bool
	Params  []Param
	Uses    []ClosureUse
	Body    Block
}

// Unit is one lowered source file.
type Unit struct {
	// File is the source file name.
	File string
	// Main holds the top-level statement stream.
	Main Block
	// Funcs lists every hoisted function in declaration-collection order
	// (the same pre-order the pre-IR engine's declaration pass used).
	Funcs []*Func
}

// marker methods

func (*Lit) exprNode()        {}
func (*Str) exprNode()        {}
func (*Interp) exprNode()     {}
func (*Array) exprNode()      {}
func (*Var) exprNode()        {}
func (*VarVar) exprNode()     {}
func (*Index) exprNode()      {}
func (*Prop) exprNode()       {}
func (*Cast) exprNode()       {}
func (*Unary) exprNode()      {}
func (*Concat) exprNode()     {}
func (*Bin) exprNode()        {}
func (*Assign) exprNode()     {}
func (*Ternary) exprNode()    {}
func (*Call) exprNode()       {}
func (*MethodCall) exprNode() {}
func (*StaticCall) exprNode() {}
func (*New) exprNode()        {}
func (*Include) exprNode()    {}
func (*Isset) exprNode()      {}
func (*Empty) exprNode()      {}
func (*List) exprNode()       {}
func (*Exit) exprNode()       {}
func (*Closure) exprNode()    {}
func (*Opaque) exprNode()     {}

func (*Eval) instrNode()       {}
func (*Echo) instrNode()       {}
func (*Nop) instrNode()        {}
func (*Branch) instrNode()     {}
func (*Loop) instrNode()       {}
func (*Foreach) instrNode()    {}
func (*Switch) instrNode()     {}
func (*Return) instrNode()     {}
func (*Global) instrNode()     {}
func (*StaticDecl) instrNode() {}
func (*Unset) instrNode()      {}
