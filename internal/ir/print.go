package ir

import (
	"fmt"
	"strings"
)

// String renders the unit's deterministic textual form, the shape pinned
// by -dump-ir golden tests: one line per instruction, each suffixed with
// its source line:col site and short fingerprint; nested blocks indent.
func (u *Unit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "unit %s\n", u.File)
	fmt.Fprintf(&sb, "func %s {\n", MainKey)
	printBlock(&sb, u.Main, 1)
	sb.WriteString("}\n")
	for _, f := range u.Funcs {
		sb.WriteString(f.header())
		sb.WriteString(" {\n")
		printBlock(&sb, f.Body, 1)
		sb.WriteString("}\n")
	}
	return sb.String()
}

func (f *Func) header() string {
	var sb strings.Builder
	sb.WriteString("func ")
	if f.Class != "" {
		sb.WriteString(f.Class)
		sb.WriteString("::")
	}
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		if p.ByRef {
			sb.WriteByte('&')
		}
		sb.WriteByte('$')
		sb.WriteString(p.Name)
		if p.Default != nil {
			sb.WriteString(" = ")
			sb.WriteString(exprString(p.Default))
		}
	}
	sb.WriteByte(')')
	if len(f.Uses) > 0 {
		sb.WriteString(" use (")
		for i, u := range f.Uses {
			if i > 0 {
				sb.WriteString(", ")
			}
			if u.ByRef {
				sb.WriteByte('&')
			}
			sb.WriteByte('$')
			sb.WriteString(u.Name)
		}
		sb.WriteByte(')')
	}
	if f.Nested {
		sb.WriteString(" nested")
	}
	return sb.String()
}

func printBlock(sb *strings.Builder, b Block, depth int) {
	for _, in := range b {
		printInstr(sb, in, depth)
	}
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

// siteSuffix renders the instruction's source site and short fingerprint.
func siteSuffix(in Instr) string {
	p := in.Pos()
	return fmt.Sprintf("  @%d:%d #%s", p.Line, p.Col, in.Fingerprint())
}

func printInstr(sb *strings.Builder, in Instr, depth int) {
	if in == nil {
		return
	}
	indent(sb, depth)
	switch in := in.(type) {
	case *Eval:
		fmt.Fprintf(sb, "eval %s%s\n", exprString(in.X), siteSuffix(in))
	case *Echo:
		fmt.Fprintf(sb, "sink echo(%s)%s\n", exprListString(in.Args), siteSuffix(in))
	case *Nop:
		fmt.Fprintf(sb, "nop %s%s\n", in.Kind, siteSuffix(in))
	case *Branch:
		kw := "branch"
		if in.Elseif {
			kw = "branch*" // elseif-derived: keeps the outer statement site
		}
		fmt.Fprintf(sb, "%s %s {%s\n", kw, exprString(in.Cond), siteSuffix(in))
		printBlock(sb, in.Then, depth+1)
		if len(in.Else) > 0 {
			indent(sb, depth)
			sb.WriteString("} else {\n")
			printBlock(sb, in.Else, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Loop:
		fmt.Fprintf(sb, "loop %s", in.Kind)
		if in.Kind == LoopFor {
			fmt.Fprintf(sb, " (%s; %s; %s)",
				exprListString(in.Init), exprListString(in.Cond), exprListString(in.Post))
		} else if len(in.Cond) > 0 {
			fmt.Fprintf(sb, " (%s)", exprString(in.Cond[0]))
		}
		fmt.Fprintf(sb, " {%s\n", siteSuffix(in))
		printBlock(sb, in.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Foreach:
		fmt.Fprintf(sb, "foreach (%s as ", exprString(in.Subject))
		if in.Key != nil {
			fmt.Fprintf(sb, "%s => ", exprString(in.Key))
		}
		if in.ByRef {
			sb.WriteByte('&')
		}
		fmt.Fprintf(sb, "%s) {%s\n", exprString(in.Val), siteSuffix(in))
		printBlock(sb, in.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Switch:
		fmt.Fprintf(sb, "switch (%s) {%s\n", exprString(in.Subject), siteSuffix(in))
		for _, c := range in.Cases {
			indent(sb, depth+1)
			if c.Match != nil {
				fmt.Fprintf(sb, "case %s:\n", exprString(c.Match))
			} else {
				sb.WriteString("default:\n")
			}
			printBlock(sb, c.Body, depth+2)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Return:
		if in.X != nil {
			fmt.Fprintf(sb, "return %s%s\n", exprString(in.X), siteSuffix(in))
		} else {
			fmt.Fprintf(sb, "return%s\n", siteSuffix(in))
		}
	case *Global:
		fmt.Fprintf(sb, "global $%s%s\n", strings.Join(in.Names, ", $"), siteSuffix(in))
	case *StaticDecl:
		var parts []string
		for _, v := range in.Vars {
			if v.Init != nil {
				parts = append(parts, fmt.Sprintf("$%s = %s", v.Name, exprString(v.Init)))
			} else {
				parts = append(parts, "$"+v.Name)
			}
		}
		fmt.Fprintf(sb, "static %s%s\n", strings.Join(parts, ", "), siteSuffix(in))
	case *Unset:
		fmt.Fprintf(sb, "unset(%s)%s\n", exprListString(in.Args), siteSuffix(in))
	default:
		fmt.Fprintf(sb, "?%T\n", in)
	}
}

func exprListString(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = exprString(e)
	}
	return strings.Join(parts, ", ")
}

// exprString renders an expression tree on one line.
func exprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return "<nil>"
	case *Lit:
		return fmt.Sprintf("%s:%s", e.Kind, e.Text)
	case *Str:
		return fmt.Sprintf("%q", e.Value)
	case *Interp:
		return fmt.Sprintf("interp(%s)", exprListString(e.Parts))
	case *Array:
		parts := make([]string, len(e.Items))
		for i, it := range e.Items {
			if it.Key != nil {
				parts[i] = exprString(it.Key) + " => " + exprString(it.Val)
			} else {
				parts[i] = exprString(it.Val)
			}
		}
		return fmt.Sprintf("array(%s)", strings.Join(parts, ", "))
	case *Var:
		return "$" + e.Name
	case *VarVar:
		return fmt.Sprintf("${%s}", exprString(e.Inner))
	case *Index:
		if e.Key == nil {
			return exprString(e.Arr) + "[]"
		}
		return fmt.Sprintf("%s[%s]", exprString(e.Arr), exprString(e.Key))
	case *Prop:
		return fmt.Sprintf("%s->%s", exprString(e.Obj), e.Name)
	case *Cast:
		kw := "cast"
		if e.Sanitizing() {
			kw = "sanitize"
		}
		return fmt.Sprintf("%s<%s>(%s)", kw, e.To, exprString(e.X))
	case *Unary:
		if e.Postfix {
			return fmt.Sprintf("(%s %s·)", exprString(e.X), e.Op)
		}
		return fmt.Sprintf("(%s %s)", e.Op, exprString(e.X))
	case *Concat:
		return fmt.Sprintf("concat(%s, %s)", exprString(e.L), exprString(e.R))
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", exprString(e.L), e.Op, exprString(e.R))
	case *Assign:
		op := e.Op
		if e.ByRef {
			op += "&"
		}
		return fmt.Sprintf("(%s %s %s)", exprString(e.LHS), op, exprString(e.RHS))
	case *Ternary:
		if e.Then == nil {
			return fmt.Sprintf("(%s ?: %s)", exprString(e.Cond), exprString(e.Else))
		}
		return fmt.Sprintf("(%s ? %s : %s)", exprString(e.Cond), exprString(e.Then), exprString(e.Else))
	case *Call:
		if e.Name == "" {
			return fmt.Sprintf("call(%s)(%s)", exprString(e.Func), exprListString(e.Args))
		}
		return fmt.Sprintf("call %s(%s)", e.Name, exprListString(e.Args))
	case *MethodCall:
		return fmt.Sprintf("call %s->%s(%s)", exprString(e.Obj), e.Name, exprListString(e.Args))
	case *StaticCall:
		return fmt.Sprintf("call %s::%s(%s)", e.Class, e.Name, exprListString(e.Args))
	case *New:
		return fmt.Sprintf("new %s(%s)", e.Class, exprListString(e.Args))
	case *Include:
		return fmt.Sprintf("include<%s>(%s)", e.Kind, exprString(e.Path))
	case *Isset:
		return fmt.Sprintf("isset(%s)", exprListString(e.Args))
	case *Empty:
		return fmt.Sprintf("empty(%s)", exprString(e.Arg))
	case *List:
		parts := make([]string, len(e.Targets))
		for i, t := range e.Targets {
			if t == nil {
				parts[i] = "_"
			} else {
				parts[i] = exprString(t)
			}
		}
		return fmt.Sprintf("list(%s)", strings.Join(parts, ", "))
	case *Exit:
		if e.Arg == nil {
			return "exit()"
		}
		return fmt.Sprintf("exit(%s)", exprString(e.Arg))
	case *Closure:
		return fmt.Sprintf("closure %s", e.Fn.Name)
	case *Opaque:
		return fmt.Sprintf("opaque<%s>", e.LegacyType)
	default:
		return fmt.Sprintf("?%T", e)
	}
}
