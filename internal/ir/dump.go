package ir

// DumpTree backs the CLIs' -dump-ir flag: it lowers one PHP file — or
// every .php file under a directory, in sorted order — and writes the
// textual IR to w. Recovered parse errors are reported to errw but do
// not fail the dump (the lowering is total over recovered ASTs); only an
// unreadable target or a lowering fault is an error.

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DumpTree writes the textual IR of target (a .php file or a directory
// tree of them) to w, parse diagnostics to errw.
func DumpTree(w, errw io.Writer, target string) error {
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return dumpFile(w, errw, target)
	}
	var files []string
	werr := filepath.WalkDir(target, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			files = append(files, path)
		}
		return nil
	})
	if werr != nil {
		return werr
	}
	sort.Strings(files)
	for _, path := range files {
		if err := dumpFile(w, errw, path); err != nil {
			return err
		}
	}
	return nil
}

func dumpFile(w, errw io.Writer, path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	unit, errs := LowerSource(path, src)
	for _, e := range errs {
		fmt.Fprintf(errw, "%s: %v\n", path, e)
	}
	if unit == nil {
		return fmt.Errorf("%s: lowering produced no unit", path)
	}
	_, err = io.WriteString(w, unit.String())
	return err
}
