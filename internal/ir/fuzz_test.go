// The fuzz harness lives in an external test package so it can use the
// legacy flow builder as a differential oracle without an import cycle
// (flow imports ir).
package ir_test

import (
	"testing"

	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/php/parser"
	"webssari/internal/prelude"
)

// FuzzLower drives the lowering on arbitrary bytes. Invariants: no
// panic; a non-nil unit for every parse result; printing and
// fingerprinting total; lowering deterministic (two lowerings of one
// AST fingerprint identically); and on the legacy subset the IR path's
// abstract interpretation byte-identical to the legacy AST builder's.
// The seed corpus is FuzzVerify's plus the new-subset constructs.
func FuzzLower(f *testing.F) {
	seeds := []string{
		`<?php echo $_GET['x'];`,
		`<?php $x = $_POST['a']; if ($x) { $x = htmlspecialchars($x); } echo $x;`,
		`<?php include 'lib.php'; mysql_query("SELECT $q");`,
		`<?php function f($a) { return $a; } echo f($_GET['x']);`,
		`<?php while ($i < 3) { $i = $i + 1; echo htmlspecialchars($s); }`,
		`<?php $x = ; } } if (`,
		"<?php\x00$x=$_GET[1];echo $x;",
		`no php here at all`,
		`<?php $$v = $_GET['x']; echo $$v;`,
		`<?php eval($_REQUEST['c']); exit;`,
		`<?php $f = function ($a) use (&$acc) { return $a; }; echo $f($_GET['x']);`,
		`<?php foreach ($rows as $k => &$v) { $v = $_GET['x']; } echo $rows;`,
		`<?php class C { function m($v) { return $v; } } $o = new C(); echo $o->m($_POST['y']);`,
		`<?php do { $x = $_POST['b']; } while ($x); echo $x;`,
		`<?php switch($x){case 1: break 2; default: exit;}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	pre := prelude.Default()
	f.Fuzz(func(t *testing.T, src string) {
		res := parser.Parse("fuzz.php", []byte(src))
		unit, err := ir.Lower(res.File)
		if err != nil {
			t.Fatalf("Lower error (must be total): %v", err)
		}
		if unit == nil {
			t.Fatal("nil unit")
		}
		_ = unit.String()
		fps := unit.Fingerprints()

		again, err := ir.Lower(res.File)
		if err != nil {
			t.Fatalf("second Lower error: %v", err)
		}
		for key, fp := range again.Fingerprints() {
			if fps[key] != fp {
				t.Fatalf("nondeterministic fingerprint for %q: %q vs %q", key, fps[key], fp)
			}
		}

		if usesNewSubset(unit) {
			return // the legacy builder approximates these; no oracle
		}
		opts := flow.Options{Prelude: pre, MaxCmds: 2000}
		legacy, lerr := flow.BuildAST(res.File, opts)
		viaIR, ierr := flow.BuildUnit(unit, opts)
		if (lerr == nil) != (ierr == nil) {
			t.Fatalf("error parity: legacy %v, IR %v", lerr, ierr)
		}
		if lerr != nil {
			return
		}
		if legacy.String() != viaIR.String() {
			t.Fatalf("AI differs on legacy subset\n--- legacy ---\n%s\n--- IR ---\n%s",
				legacy.String(), viaIR.String())
		}
	})
}

// usesNewSubset reports whether the unit uses IR-only constructs
// (closures, foreach by reference) the legacy AST builder approximates
// differently.
func usesNewSubset(u *ir.Unit) bool {
	for _, fn := range u.Funcs {
		if fn.Closure {
			return true
		}
	}
	seen := false
	var walkBlock func(ir.Block)
	walkInstr := func(in ir.Instr) {
		switch in := in.(type) {
		case *ir.Foreach:
			if in.ByRef {
				seen = true
			}
			walkBlock(in.Body)
		case *ir.Branch:
			walkBlock(in.Then)
			walkBlock(in.Else)
		case *ir.Loop:
			walkBlock(in.Body)
		case *ir.Switch:
			for _, c := range in.Cases {
				walkBlock(c.Body)
			}
		}
	}
	walkBlock = func(b ir.Block) {
		for _, in := range b {
			walkInstr(in)
		}
	}
	walkBlock(u.Main)
	for _, fn := range u.Funcs {
		walkBlock(fn.Body)
	}
	return seen
}
