package cnf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"webssari/internal/ai"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

func buildSys(t *testing.T, src string, pre *prelude.Prelude) *constraint.System {
	t.Helper()
	if pre == nil {
		pre = prelude.Default()
	}
	prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: pre})
	for _, err := range errs {
		t.Fatalf("build: %v", err)
	}
	return constraint.Build(rename.Rename(prog))
}

func TestConstantViolationNeedsNoSearch(t *testing.T) {
	sys := buildSys(t, `<?php echo $_GET['x'];`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// The arg is the constant-tainted _GET@0: the formula is vacuously
	// satisfiable (zero clauses needed beyond the empty conjunction).
	if enc.Trivial == TrivialUnsat {
		t.Fatalf("constant violation misclassified as unsat")
	}
	res, _ := enc.F.Solve()
	if res != sat.Sat {
		t.Fatalf("B_0 should be satisfiable")
	}
}

func TestConstantSafeIsTrivialUnsat(t *testing.T) {
	sys := buildSys(t, `<?php echo 'hello';`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if enc.Trivial != TrivialUnsat {
		t.Fatalf("constant-safe assertion should encode as trivially unsat")
	}
}

func TestUnreachableAssertTrivialUnsat(t *testing.T) {
	sys := buildSys(t, `<?php exit; echo $_GET['x'];`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if enc.Trivial != TrivialUnsat {
		t.Fatalf("dead assertion should be trivially unsat")
	}
}

func TestBranchDependentSatisfiability(t *testing.T) {
	sys := buildSys(t, `<?php
$x = 'safe';
if ($c) { $x = $_GET['a']; }
echo $x;`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	res, model := enc.F.Solve()
	if res != sat.Sat {
		t.Fatalf("violation exists when c holds")
	}
	branches := enc.DecodeBranches(model)
	if !branches[0] {
		t.Fatalf("model must take branch 0: %v", branches)
	}
	// Blocking the only violating assignment makes B_i unsat.
	s := sat.New()
	enc.F.LoadInto(s)
	if s.Solve() != sat.Sat {
		t.Fatalf("reload should stay sat")
	}
	if s.AddClause(enc.BlockingClause(s.Model(), nil)...) {
		if s.Solve() != sat.Unsat {
			t.Fatalf("after blocking the single trace, B_0 must be unsat")
		}
	}
}

func TestEncodeCheckIndexValidation(t *testing.T) {
	sys := buildSys(t, `<?php echo $_GET['x'];`, nil)
	if _, err := EncodeCheck(sys, 7, Options{}); err == nil {
		t.Fatalf("out-of-range check index accepted")
	}
	if _, err := EncodeCheck(sys, -1, Options{}); err == nil {
		t.Fatalf("negative check index accepted")
	}
}

func TestAssumePriorAssertsRestricts(t *testing.T) {
	// assert0 fails only when c; assert1 fails only when c. Assuming
	// assert0 holds forbids c, so assert1 becomes unsatisfiable.
	sys := buildSys(t, `<?php
$x = 'ok';
if ($c) { $x = $_GET['a']; }
echo $x;
echo $x;`, nil)
	encFree, err := EncodeCheck(sys, 1, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	res, _ := encFree.F.Solve()
	if res != sat.Sat {
		t.Fatalf("without restriction assert1 must be violable")
	}
	encRestr, err := EncodeCheck(sys, 1, Options{AssumePriorAsserts: true})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if encRestr.Trivial != TrivialUnsat {
		res, _ := encRestr.F.Solve()
		if res != sat.Unsat {
			t.Fatalf("with restriction assert1 must be unsat")
		}
	}
}

// TestThreeLevelLattice exercises the one-hot encoding beyond the taint
// lattice: a public < internal < secret chain where the "publish" sink
// requires strictly-below-internal (i.e. public) data and the "intranet"
// sink requires strictly-below-secret.
func TestThreeLevelLattice(t *testing.T) {
	pre, err := prelude.Parse("t", []byte(`
lattice chain public internal secret
var _GET secret
source read_internal internal
sink publish internal *
sink intranet secret *
sanitizer declassify public
`))
	if err != nil {
		t.Fatalf("prelude: %v", err)
	}

	cases := []struct {
		src  string
		want []bool // per assert: violable?
	}{
		// internal data: publish violated (internal ≮ internal),
		// intranet fine (internal < secret).
		{`<?php $x = read_internal(); publish($x); intranet($x);`, []bool{true, false}},
		// secret data violates both.
		{`<?php $x = $_GET['k']; publish($x); intranet($x);`, []bool{true, true}},
		// declassified data passes both.
		{`<?php $x = declassify($_GET['k']); publish($x); intranet($x);`, []bool{false, false}},
		// join(internal, secret) = secret: both violated.
		{`<?php $x = read_internal() . $_GET['k']; publish($x); intranet($x);`, []bool{true, true}},
	}
	for i, c := range cases {
		sys := buildSys(t, c.src, pre)
		if len(sys.Checks) != len(c.want) {
			t.Fatalf("case %d: %d checks, want %d", i, len(sys.Checks), len(c.want))
		}
		for j, want := range c.want {
			enc, err := EncodeCheck(sys, j, Options{})
			if err != nil {
				t.Fatalf("case %d encode %d: %v", i, j, err)
			}
			got := false
			if enc.Trivial != TrivialUnsat {
				res, _ := enc.F.Solve()
				got = res == sat.Sat
			}
			if got != want {
				t.Errorf("case %d assert %d: violable=%v, want %v", i, j, got, want)
			}
		}
	}
}

// TestEncodingMatchesEvaluatorQuick is the equisatisfiability property:
// for random programs and each assertion, CNF(B_i) is satisfiable iff the
// exhaustive evaluator finds a violating branch resolution.
func TestEncodingMatchesEvaluatorQuick(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	pre := prelude.Default()
	for iter := 0; iter < 120; iter++ {
		src := randomSrc(r)
		prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: pre})
		if len(errs) != 0 {
			t.Fatalf("iter %d: %v", iter, errs)
		}
		if prog.Branches > 10 {
			continue
		}
		sys := constraint.Build(rename.Rename(prog))

		// Evaluator's view: which asserts have ≥1 violation.
		violable := make(map[*ai.Assert]bool)
		for _, v := range prog.ExhaustiveViolations() {
			violable[v.Assert] = true
		}

		for j := range sys.Checks {
			enc, err := EncodeCheck(sys, j, Options{})
			if err != nil {
				t.Fatalf("iter %d encode %d: %v", iter, j, err)
			}
			got := false
			if enc.Trivial != TrivialUnsat {
				res, _ := enc.F.Solve()
				got = res == sat.Sat
			}
			want := violable[sys.Checks[j].Origin.Origin]
			if got != want {
				t.Fatalf("iter %d assert %d: encoded=%v evaluator=%v\nsrc:\n%s",
					iter, j, got, want, src)
			}
		}
	}
}

func randomSrc(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<?php\n")
	vars := []string{"a", "b", "c"}
	rhs := []string{"$_GET['x']", "'lit'", "$a", "$b . $c", "htmlspecialchars($a)"}
	depth := 0
	for i, n := 0, 4+r.Intn(10); i < n; i++ {
		switch r.Intn(7) {
		case 0, 1:
			fmt.Fprintf(&b, "$%s = %s;\n", vars[r.Intn(len(vars))], rhs[r.Intn(len(rhs))])
		case 2:
			fmt.Fprintf(&b, "echo $%s;\n", vars[r.Intn(len(vars))])
		case 3:
			if depth < 2 {
				fmt.Fprintf(&b, "if ($k%d) {\n", i)
				depth++
			}
		case 4:
			if depth > 0 {
				b.WriteString("}\n")
				depth--
			}
		case 5:
			if depth > 0 && r.Intn(3) == 0 {
				b.WriteString("exit;\n")
			}
		default:
			fmt.Fprintf(&b, "mysql_query($%s);\n", vars[r.Intn(len(vars))])
		}
	}
	for depth > 0 {
		b.WriteString("}\n")
		depth--
	}
	return b.String()
}

func TestJoinOfTwoBranchDependentVars(t *testing.T) {
	// Both operands of the join are genuine one-hot vectors, exercising
	// the var×var clause set of encodeJoin.
	sys := buildSys(t, `<?php
if ($a) { $x = $_GET['p']; } else { $x = 'sx'; }
if ($b) { $y = $_POST['q']; } else { $y = 'sy'; }
echo $x . $y;`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	res, model := enc.F.Solve()
	if res != sat.Sat {
		t.Fatalf("must be violable")
	}
	br := enc.DecodeBranches(model)
	if !br[0] && !br[1] {
		t.Fatalf("some tainting branch must be taken: %v", br)
	}
}

func TestOrGuardFromConditionalStop(t *testing.T) {
	// The continuation guard after "if a { if c { exit; } ... } else ..."
	// is a disjunction, exercising the Or branch of the Tseitin encoder.
	sys := buildSys(t, `<?php
$x = $_GET['v'];
if ($a) {
    if ($c) { exit; }
    $x = 'safe';
} else {
    $n = 1;
}
echo $x;`, nil)
	found := false
	for _, ch := range sys.Checks {
		if _, isOr := ch.Guard.(constraint.Or); isOr {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an Or continuation guard:\n%s", sys)
	}
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	res, model := enc.F.Solve()
	if res != sat.Sat {
		t.Fatalf("echo is violable when the sanitizing arm is skipped")
	}
	br := enc.DecodeBranches(model)
	// Violating model cannot have taken (a ∧ ¬c): that path sanitizes.
	if br[0] && !br[1] {
		t.Fatalf("model took the sanitizing path: %v", br)
	}
}

func TestGuardCacheReuse(t *testing.T) {
	// Many equations under the same nested guard share Tseitin variables;
	// the formula must stay small.
	sys := buildSys(t, `<?php
if ($a) { if ($b) {
    $v1 = 1; $v2 = 2; $v3 = 3; $v4 = 4; $v5 = 5;
    $x = $_GET['q'];
} }
echo $x;`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// 2 branch vars + 1 shared AND var + one-hots for x (constant-folded
	// equations for v1..v5 cost nothing). Anything near 10 vars is fine;
	// a per-equation Tseitin would exceed it.
	if enc.F.NumVars > 12 {
		t.Fatalf("guard cache not shared: %d vars", enc.F.NumVars)
	}
}

func TestBlockingClauseRestriction(t *testing.T) {
	sys := buildSys(t, `<?php
if ($pad) { }
if ($a) { $x = $_GET['q']; }
echo $x;`, nil)
	enc, err := EncodeCheck(sys, 0, Options{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	res, model := enc.F.Solve()
	if res != sat.Sat {
		t.Fatalf("must be violable")
	}
	full := enc.BlockingClause(model, nil)
	if len(full) != 2 {
		t.Fatalf("full blocking = %d lits, want 2 (both branch vars)", len(full))
	}
	restricted := enc.BlockingClause(model, map[int]bool{1: true})
	if len(restricted) != 1 {
		t.Fatalf("restricted blocking = %d lits, want 1", len(restricted))
	}
}
