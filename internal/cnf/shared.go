package cnf

import (
	"webssari/internal/constraint"
	"webssari/internal/lattice"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

// This file implements the shared-solver encoding, an incremental-SAT
// extension beyond the paper: instead of building one CNF per assertion
// (the paper rebuilds B_i from scratch and discards the solver each time),
// the whole constraint system is encoded once and each assertion's
// negation ¬C(assert_i, g) is gated behind a fresh selector literal s_i.
// Checking assertion i is then a SolveAssuming([s_i]) call on one solver,
// so learned clauses about the program's data flow are shared across all
// assertions. Counterexample blocking clauses are gated behind the same
// selector so they never constrain other assertions' checks. Measured as
// an ablation in BenchmarkSharedSolver.

// EncodedAll is the whole-program shared encoding.
type EncodedAll struct {
	// F is the program encoding: all equations plus gated check negations.
	F *sat.CNF
	// BranchVars maps branch IDs to SAT variables (shared by all checks).
	BranchVars map[int]int
	// Selectors holds one activation literal per check, indexed by check
	// position; assuming Selectors[i] activates ¬C(assert_i, g).
	Selectors []sat.Lit
	// TrivialUnsat marks checks decided at encode time (never violable).
	TrivialUnsat []bool
	// prefixBranches lists, per check, the branch IDs in its prefix (for
	// blocking-clause construction and trace decoding).
	prefixBranches [][]int
}

// EncodeAllChecks builds the shared encoding for every check of the system.
func EncodeAllChecks(sys *constraint.System) *EncodedAll {
	e := &encoder{
		sys:        sys,
		lat:        sys.Renamed.AI.Lat,
		f:          &sat.CNF{},
		vals:       make(map[rename.SSAVar]vec),
		branch:     make(map[int]int),
		guardCache: make(map[string]glit),
	}

	// Allocate every branch variable and encode every equation once.
	for _, m := range sys.Marks {
		e.branchVar(m.ID)
	}
	for _, eq := range sys.Equations {
		e.encodeEquation(eq)
	}

	out := &EncodedAll{
		BranchVars:     e.branch,
		Selectors:      make([]sat.Lit, len(sys.Checks)),
		TrivialUnsat:   make([]bool, len(sys.Checks)),
		prefixBranches: make([][]int, len(sys.Checks)),
	}

	for i, ch := range sys.Checks {
		out.prefixBranches[i] = sys.PrefixBranches(ch)
		sel := sat.Lit(e.f.NewVar())
		out.Selectors[i] = sel
		if !e.encodeGatedNegation(ch, sel) {
			out.TrivialUnsat[i] = true
		}
	}
	out.F = e.f
	return out
}

// encodeGatedNegation adds sel ⇒ ¬C(check): under the selector, the
// check's guard holds and some argument breaches the bound. It reports
// false when the negation is unsatisfiable regardless of selector.
func (e *encoder) encodeGatedNegation(ch constraint.Check, sel sat.Lit) bool {
	g := e.encodeGuard(ch.Guard)
	if g.isConst && !g.b {
		return false // unreachable: the check can never fail
	}
	if !g.isConst {
		e.addClause(sel.Not(), g.lit)
	}

	bad := e.badElems(ch.Origin.Bound)
	var fail []sat.Lit
	for _, arg := range ch.Origin.Args {
		v := e.encodeExpr(arg.Expr)
		if v.isConst {
			if bad[v.c] {
				return true // constant violation: guard clause suffices
			}
			continue
		}
		for a, av := range v.vars {
			if bad[lattice.Elem(a)] {
				fail = append(fail, sat.Lit(av))
			}
		}
	}
	if len(fail) == 0 {
		return false
	}
	e.addClause(append(fail, sel.Not())...)
	return true
}

// DecodeBranches reads the branch assignment restricted to check i's
// prefix out of a SAT model.
func (ea *EncodedAll) DecodeBranches(check int, model []bool) map[int]bool {
	out := make(map[int]bool)
	for _, id := range ea.prefixBranches[check] {
		v := ea.BranchVars[id]
		if v < len(model) {
			out[id] = model[v]
		}
	}
	return out
}

// BlockingClause builds the gated negation clause for check i's current
// model: it excludes this branch assignment only while the check's
// selector is assumed. restrictTo, when non-nil, limits the clause to
// those branch IDs.
func (ea *EncodedAll) BlockingClause(check int, model []bool, restrictTo map[int]bool) []sat.Lit {
	out := []sat.Lit{ea.Selectors[check].Not()}
	for _, id := range ea.prefixBranches[check] {
		if restrictTo != nil {
			if _, ok := restrictTo[id]; !ok {
				continue
			}
		}
		v := ea.BranchVars[id]
		out = append(out, sat.MkLit(v, model[v]))
	}
	if len(out) == 1 {
		return nil // nothing trace-identifying to block on
	}
	return out
}
