package cnf

import (
	"webssari/internal/constraint"
	"webssari/internal/lattice"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

// This file implements the shared-solver encoding, an incremental-SAT
// extension beyond the paper: instead of building one CNF per assertion
// (the paper rebuilds B_i from scratch and discards the solver each time),
// the whole constraint system is encoded once and each assertion's
// negation ¬C(assert_i, g) is gated behind a fresh selector literal s_i.
// Checking assertion i is then a SolveAssuming([s_i]) call on one solver,
// so learned clauses about the program's data flow are shared across all
// assertions. Counterexample blocking clauses are gated behind the same
// selector so they never constrain other assertions' checks. Measured as
// an ablation in BenchmarkSharedSolver.

// EncodedAll is the whole-program shared encoding.
type EncodedAll struct {
	// F is the program encoding: all equations plus gated check negations.
	F *sat.CNF
	// BranchVars maps branch IDs to SAT variables (shared by all checks).
	BranchVars map[int]int
	// Selectors holds one activation literal per check, indexed by check
	// position; assuming Selectors[i] activates ¬C(assert_i, g).
	Selectors []sat.Lit
	// HoldSelectors holds one activation literal per check, indexed by
	// check position; assuming HoldSelectors[j] activates C(assert_j, g)
	// positively — "assertion j holds". Populated only under
	// Options.AssumePriorAsserts: checking assertion i under the paper's
	// incremental restriction assumes Selectors[i] plus HoldSelectors[j]
	// for every j < i.
	HoldSelectors []sat.Lit
	// TrivialUnsat marks checks decided at encode time (never violable).
	TrivialUnsat []bool
	// prefixBranches lists, per check, the branch IDs in its prefix (for
	// blocking-clause construction and trace decoding).
	prefixBranches [][]int
}

// EncodeAllChecks builds the shared encoding for every check of the
// system. Only opts.AssumePriorAsserts is consulted (resource ceilings
// are enforced by the per-assertion encoder; the shared encoding is
// built once and is no larger than the largest single check's CNF plus
// the gated negations).
func EncodeAllChecks(sys *constraint.System, opts Options) *EncodedAll {
	e := &encoder{
		sys:        sys,
		lat:        sys.Renamed.AI.Lat,
		f:          &sat.CNF{},
		vals:       make(map[rename.SSAVar]vec),
		branch:     make(map[int]int),
		guardCache: make(map[string]glit),
	}

	// Allocate every branch variable and encode every equation once.
	for _, m := range sys.Marks {
		e.branchVar(m.ID)
	}
	for _, eq := range sys.Equations {
		e.encodeEquation(eq)
	}

	out := &EncodedAll{
		BranchVars:     e.branch,
		Selectors:      make([]sat.Lit, len(sys.Checks)),
		TrivialUnsat:   make([]bool, len(sys.Checks)),
		prefixBranches: make([][]int, len(sys.Checks)),
	}

	for i, ch := range sys.Checks {
		out.prefixBranches[i] = sys.PrefixBranches(ch)
		sel := sat.Lit(e.f.NewVar())
		out.Selectors[i] = sel
		if !e.encodeGatedNegation(ch, sel) {
			out.TrivialUnsat[i] = true
		}
	}
	if opts.AssumePriorAsserts {
		out.HoldSelectors = make([]sat.Lit, len(sys.Checks))
		for j, ch := range sys.Checks {
			hold := sat.Lit(e.f.NewVar())
			out.HoldSelectors[j] = hold
			e.encodeGatedHold(ch, hold)
		}
	}
	out.F = e.f
	return out
}

// PriorAssumptions returns the assumption set for checking assertion i
// under the paper's incremental restriction: the check's own selector
// plus the hold selector of every prior assertion. Without hold
// selectors (AssumePriorAsserts off) it is just the selector.
func (ea *EncodedAll) PriorAssumptions(check int) []sat.Lit {
	if ea.HoldSelectors == nil {
		return []sat.Lit{ea.Selectors[check]}
	}
	out := make([]sat.Lit, 0, check+1)
	out = append(out, ea.Selectors[check])
	out = append(out, ea.HoldSelectors[:check]...)
	return out
}

// encodeGatedHold adds hold ⇒ C(check): under the hold selector, the
// check's guard implies every argument stays below the bound — the
// gated mirror of the per-assertion encoder's assumeCheckHolds. A check
// that fails unconditionally yields the unit ¬hold, so assuming it
// makes the instance Unsat, matching the ungated encoder's
// TrivialUnsat outcome.
func (e *encoder) encodeGatedHold(ch constraint.Check, hold sat.Lit) {
	g := e.encodeGuard(ch.Guard)
	if g.isConst && !g.b {
		return // unreachable check: holds vacuously
	}
	bad := e.badElems(ch.Origin.Bound)
	for _, arg := range ch.Origin.Args {
		v := e.encodeExpr(arg.Expr)
		if v.isConst {
			if bad[v.c] && !g.isConst {
				e.addClause(hold.Not(), g.lit.Not())
			} else if bad[v.c] && g.isConst && g.b {
				e.addClause(hold.Not())
			}
			continue
		}
		for a, av := range v.vars {
			if !bad[lattice.Elem(a)] {
				continue
			}
			if g.isConst {
				e.addClause(hold.Not(), sat.Lit(-av))
			} else {
				e.addClause(hold.Not(), g.lit.Not(), sat.Lit(-av))
			}
		}
	}
}

// encodeGatedNegation adds sel ⇒ ¬C(check): under the selector, the
// check's guard holds and some argument breaches the bound. It reports
// false when the negation is unsatisfiable regardless of selector.
func (e *encoder) encodeGatedNegation(ch constraint.Check, sel sat.Lit) bool {
	g := e.encodeGuard(ch.Guard)
	if g.isConst && !g.b {
		return false // unreachable: the check can never fail
	}
	if !g.isConst {
		e.addClause(sel.Not(), g.lit)
	}

	bad := e.badElems(ch.Origin.Bound)
	var fail []sat.Lit
	for _, arg := range ch.Origin.Args {
		v := e.encodeExpr(arg.Expr)
		if v.isConst {
			if bad[v.c] {
				return true // constant violation: guard clause suffices
			}
			continue
		}
		for a, av := range v.vars {
			if bad[lattice.Elem(a)] {
				fail = append(fail, sat.Lit(av))
			}
		}
	}
	if len(fail) == 0 {
		return false
	}
	e.addClause(append(fail, sel.Not())...)
	return true
}

// DecodeBranches reads the branch assignment restricted to check i's
// prefix out of a SAT model.
func (ea *EncodedAll) DecodeBranches(check int, model []bool) map[int]bool {
	out := make(map[int]bool)
	for _, id := range ea.prefixBranches[check] {
		v := ea.BranchVars[id]
		if v < len(model) {
			out[id] = model[v]
		}
	}
	return out
}

// BlockingClause builds the gated negation clause for check i's current
// model: it excludes this branch assignment only while the check's
// selector is assumed. restrictTo, when non-nil, limits the clause to
// those branch IDs.
func (ea *EncodedAll) BlockingClause(check int, model []bool, restrictTo map[int]bool) []sat.Lit {
	out := []sat.Lit{ea.Selectors[check].Not()}
	for _, id := range ea.prefixBranches[check] {
		if restrictTo != nil {
			if _, ok := restrictTo[id]; !ok {
				continue
			}
		}
		v := ea.BranchVars[id]
		out = append(out, sat.MkLit(v, model[v]))
	}
	if len(out) == 1 {
		return nil // nothing trace-identifying to block on
	}
	return out
}
