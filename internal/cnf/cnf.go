// Package cnf converts the per-assertion constraint formulas B_i of §3.3.2
// into conjunctive normal form for the SAT solver — the CNF(B_i) step of
// the paper's verification loop.
//
// Safety-type values are one-hot encoded: for each renamed variable (and
// each intermediate ⊔-node) the encoder allocates one propositional
// variable per lattice element, constrained to exactly-one. Lattice
// operations then become small clause sets:
//
//	Z = A ⊔ B    (¬A_a ∨ ¬B_b ∨ Z_{a⊔b})           for every a, b
//	X = g?E:Y    (¬g ∨ ¬E_a ∨ X_a), (g ∨ ¬Y_a ∨ X_a) for every a
//	t < τr       fails iff X_a holds for some a ∉ ↓τr
//
// Guards (boolean formulas over the nondeterministic branch variables BN)
// are Tseitin-transformed. Constants are folded everywhere, so variables
// with statically known types cost nothing.
package cnf

import (
	"fmt"

	"webssari/internal/constraint"
	"webssari/internal/lattice"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

// Options tunes the encoding.
type Options struct {
	// AssumePriorAsserts adds every assertion before the target one as a
	// positive constraint, as the paper's iteration does ("we continue the
	// constraint generation procedure C(c,g) := C(c,g) ∧ C(assert_i, g)").
	AssumePriorAsserts bool
	// MaxVars and MaxClauses cap the encoded formula's size. When a cap
	// is hit, EncodeCheck stops and returns a *LimitError so the caller
	// can degrade the assertion to an Unknown verdict instead of
	// exhausting memory on a pathological input. Zero disables the cap.
	MaxVars    int
	MaxClauses int
}

// LimitError reports that an encoding tripped a resource ceiling
// (Options.MaxVars or Options.MaxClauses).
type LimitError struct {
	// What names the exhausted resource: "variables" or "clauses".
	What string
	// Limit is the configured ceiling.
	Limit int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("cnf: formula exceeds the %d-%s ceiling", e.Limit, e.What)
}

// Encoded is one CNF-encoded assertion formula B_i together with the
// variable maps needed to decode counterexample models.
type Encoded struct {
	// F is the CNF formula; satisfiability means assertion violation.
	F *sat.CNF
	// CheckID is the target assertion's ID.
	CheckID int
	// BranchVars maps branch IDs (the BN variables appearing in B_i) to
	// SAT variables, used both for decoding traces and for blocking
	// clauses during all-counterexample enumeration.
	BranchVars map[int]int
	// Trivial is set when B_i is decided without search: TrivialSat means
	// the assertion fails on every prefix path consistent with the
	// encoding; TrivialUnsat means it can never fail.
	Trivial TrivialKind

	enc *encoder
}

// TrivialKind classifies formulas decided during encoding.
type TrivialKind int

// Trivial outcomes.
const (
	NotTrivial TrivialKind = iota
	TrivialUnsat
)

// vec is the encoded value of a type expression: either a constant lattice
// element or a one-hot vector of SAT variables (vars[elem]).
type vec struct {
	isConst bool
	c       lattice.Elem
	vars    []int
}

// glit is an encoded guard: either a constant or a SAT literal.
type glit struct {
	isConst bool
	b       bool
	lit     sat.Lit
}

var (
	gTrue  = glit{isConst: true, b: true}
	gFalse = glit{isConst: true, b: false}
)

type encoder struct {
	sys  *constraint.System
	lat  *lattice.Lattice
	f    *sat.CNF
	opts Options
	vals map[rename.SSAVar]vec
	// branch maps branch IDs to SAT vars (allocated on first use).
	branch map[int]int
	// guardCache memoizes Tseitin variables per guard structure.
	guardCache map[string]glit
	unsat      bool
	// limit records the first resource ceiling the encoding tripped;
	// once set, no further variables or clauses are materialized.
	limit *LimitError
}

// EncodeCheck builds CNF(B_i) for the target check index.
func EncodeCheck(sys *constraint.System, checkIdx int, opts Options) (*Encoded, error) {
	if checkIdx < 0 || checkIdx >= len(sys.Checks) {
		return nil, fmt.Errorf("cnf: check index %d out of range [0,%d)", checkIdx, len(sys.Checks))
	}
	e := &encoder{
		sys:        sys,
		lat:        sys.Renamed.AI.Lat,
		f:          &sat.CNF{},
		opts:       opts,
		vals:       make(map[rename.SSAVar]vec),
		branch:     make(map[int]int),
		guardCache: make(map[string]glit),
	}
	target := sys.Checks[checkIdx]

	// Allocate a BN variable for every branch in the prefix, including
	// branches that guard nothing: their decisions still distinguish
	// counterexample traces, so the blocking clauses must range over them.
	for _, id := range sys.PrefixBranches(target) {
		e.branchVar(id)
	}

	// Encode every equation in the target's prefix, in order, bailing out
	// as soon as a resource ceiling trips: each equation adds a bounded
	// number of clauses, so checking between equations keeps overshoot
	// small.
	for i := 0; i < target.Prefix; i++ {
		e.encodeEquation(sys.Equations[i])
		if e.limit != nil {
			return nil, e.limit
		}
	}

	// Prior assertions hold (the paper's incremental restriction).
	if opts.AssumePriorAsserts {
		for _, ch := range sys.Checks[:checkIdx] {
			e.assumeCheckHolds(ch)
		}
	}

	// Target assertion fails: guard holds ∧ some argument at or above τr.
	e.negateCheck(target)
	if e.limit != nil {
		return nil, e.limit
	}

	out := &Encoded{
		F:          e.f,
		CheckID:    target.ID,
		BranchVars: e.branch,
		enc:        e,
	}
	if e.unsat {
		out.Trivial = TrivialUnsat
	}
	return out, nil
}

// addClause adds a clause, tracking trivial unsatisfiability and the
// clause ceiling. Once a ceiling has tripped, nothing further is stored.
func (e *encoder) addClause(lits ...sat.Lit) {
	if len(lits) == 0 {
		e.unsat = true
		return
	}
	if e.limit != nil {
		return
	}
	if e.opts.MaxClauses > 0 && len(e.f.Clauses) >= e.opts.MaxClauses {
		e.limit = &LimitError{What: "clauses", Limit: e.opts.MaxClauses}
		return
	}
	e.f.AddClause(lits...)
}

// newVar allocates a fresh SAT variable, tracking the variable ceiling.
func (e *encoder) newVar() int {
	if e.limit == nil && e.opts.MaxVars > 0 && e.f.NumVars >= e.opts.MaxVars {
		e.limit = &LimitError{What: "variables", Limit: e.opts.MaxVars}
	}
	return e.f.NewVar()
}

func (e *encoder) branchVar(id int) int {
	if v, ok := e.branch[id]; ok {
		return v
	}
	v := e.newVar()
	e.branch[id] = v
	return v
}

// newOneHot allocates a one-hot group with its exactly-one constraints.
func (e *encoder) newOneHot() []int {
	n := e.lat.Size()
	vars := make([]int, n)
	alo := make([]sat.Lit, n)
	for i := 0; i < n; i++ {
		vars[i] = e.newVar()
		alo[i] = sat.Lit(vars[i])
	}
	e.addClause(alo...)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e.addClause(sat.Lit(-vars[i]), sat.Lit(-vars[j]))
		}
	}
	return vars
}

// encodeGuard Tseitin-encodes a guard formula to a literal.
func (e *encoder) encodeGuard(g constraint.Bool) glit {
	switch g := g.(type) {
	case constraint.True:
		return gTrue
	case constraint.False:
		return gFalse
	case constraint.Branch:
		v := e.branchVar(g.ID)
		return glit{lit: sat.MkLit(v, g.Neg)}
	case constraint.And:
		return e.encodeJunction(g.Parts, true, g.String())
	case constraint.Or:
		return e.encodeJunction(g.Parts, false, g.String())
	default:
		return gTrue
	}
}

// encodeJunction Tseitin-encodes an and/or over parts.
func (e *encoder) encodeJunction(parts []constraint.Bool, isAnd bool, key string) glit {
	if cached, ok := e.guardCache[key]; ok {
		return cached
	}
	lits := make([]sat.Lit, 0, len(parts))
	for _, p := range parts {
		pl := e.encodeGuard(p)
		if pl.isConst {
			if pl.b == isAnd {
				continue // neutral element
			}
			// Dominating element: whole junction is constant.
			res := glit{isConst: true, b: !isAnd}
			e.guardCache[key] = res
			return res
		}
		lits = append(lits, pl.lit)
	}
	switch len(lits) {
	case 0:
		res := glit{isConst: true, b: isAnd}
		e.guardCache[key] = res
		return res
	case 1:
		res := glit{lit: lits[0]}
		e.guardCache[key] = res
		return res
	}
	v := e.newVar()
	out := sat.Lit(v)
	if isAnd {
		// v ↔ ⋀ lits
		long := make([]sat.Lit, 0, len(lits)+1)
		long = append(long, out)
		for _, l := range lits {
			e.addClause(out.Not(), l)
			long = append(long, l.Not())
		}
		e.addClause(long...)
	} else {
		// v ↔ ⋁ lits
		long := make([]sat.Lit, 0, len(lits)+1)
		long = append(long, out.Not())
		for _, l := range lits {
			e.addClause(out, l.Not())
			long = append(long, l)
		}
		e.addClause(long...)
	}
	res := glit{lit: out}
	e.guardCache[key] = res
	return res
}

// valueOf resolves an SSA variable to its encoded value. Index 0 is the
// variable's initial type (a constant).
func (e *encoder) valueOf(v rename.SSAVar) vec {
	if val, ok := e.vals[v]; ok {
		return val
	}
	if v.Idx == 0 {
		val := vec{isConst: true, c: e.sys.Renamed.AI.InitialType(v.Name)}
		e.vals[v] = val
		return val
	}
	// An SSA variable defined after the target's prefix (or skipped): its
	// defining equation was not encoded. This can only be reached through
	// stale reads, which the renamer does not produce; treat as initial.
	val := vec{isConst: true, c: e.sys.Renamed.AI.InitialType(v.Name)}
	e.vals[v] = val
	return val
}

// encodeExpr encodes a renamed type expression to a vec.
func (e *encoder) encodeExpr(x rename.Expr) vec {
	switch x := x.(type) {
	case rename.Const:
		return vec{isConst: true, c: x.Type}
	case rename.Ref:
		return e.valueOf(x.V)
	case rename.Join:
		if len(x.Parts) == 0 {
			return vec{isConst: true, c: e.lat.Bottom()}
		}
		acc := e.encodeExpr(x.Parts[0])
		for _, part := range x.Parts[1:] {
			acc = e.encodeJoin(acc, e.encodeExpr(part))
		}
		return acc
	default:
		return vec{isConst: true, c: e.lat.Top()}
	}
}

// encodeJoin encodes Z = A ⊔ B.
func (e *encoder) encodeJoin(a, b vec) vec {
	if a.isConst && b.isConst {
		return vec{isConst: true, c: e.lat.Join(a.c, b.c)}
	}
	if a.isConst && a.c == e.lat.Bottom() {
		return b // ⊥ ⊔ B = B
	}
	if b.isConst && b.c == e.lat.Bottom() {
		return a
	}
	if a.isConst && a.c == e.lat.Top() {
		return a // ⊤ ⊔ B = ⊤
	}
	if b.isConst && b.c == e.lat.Top() {
		return b
	}
	z := e.newOneHot()
	switch {
	case a.isConst:
		for b1, bv := range b.vars {
			e.addClause(sat.Lit(-bv), sat.Lit(z[e.lat.Join(a.c, lattice.Elem(b1))]))
		}
	case b.isConst:
		for a1, av := range a.vars {
			e.addClause(sat.Lit(-av), sat.Lit(z[e.lat.Join(lattice.Elem(a1), b.c)]))
		}
	default:
		for a1, av := range a.vars {
			for b1, bv := range b.vars {
				j := e.lat.Join(lattice.Elem(a1), lattice.Elem(b1))
				e.addClause(sat.Lit(-av), sat.Lit(-bv), sat.Lit(z[j]))
			}
		}
	}
	return vec{vars: z}
}

// encodeEquation encodes t(V) = g ? RHS : t(Prev).
func (e *encoder) encodeEquation(eq constraint.Equation) {
	g := e.encodeGuard(eq.Guard)
	rhs := e.encodeExpr(eq.RHS)
	prev := e.valueOf(eq.Prev)

	if g.isConst {
		if g.b {
			e.vals[eq.V] = rhs
		} else {
			e.vals[eq.V] = prev
		}
		return
	}
	if rhs.isConst && prev.isConst && rhs.c == prev.c {
		e.vals[eq.V] = rhs
		return
	}

	x := e.newOneHot()
	if rhs.isConst {
		e.addClause(g.lit.Not(), sat.Lit(x[rhs.c]))
	} else {
		for a, av := range rhs.vars {
			e.addClause(g.lit.Not(), sat.Lit(-av), sat.Lit(x[a]))
		}
	}
	if prev.isConst {
		e.addClause(g.lit, sat.Lit(x[prev.c]))
	} else {
		for a, av := range prev.vars {
			e.addClause(g.lit, sat.Lit(-av), sat.Lit(x[a]))
		}
	}
	e.vals[eq.V] = vec{vars: x}
}

// badElems returns the lattice elements violating t < bound.
func (e *encoder) badElems(bound lattice.Elem) map[lattice.Elem]bool {
	bad := make(map[lattice.Elem]bool)
	good := make(map[lattice.Elem]bool)
	for _, el := range e.lat.DownStrict(bound) {
		good[el] = true
	}
	for _, el := range e.lat.Elems() {
		if !good[el] {
			bad[el] = true
		}
	}
	return bad
}

// negateCheck adds ¬C(assert, g) = g ∧ (some argument violates the bound).
func (e *encoder) negateCheck(ch constraint.Check) {
	g := e.encodeGuard(ch.Guard)
	if g.isConst && !g.b {
		e.unsat = true // unreachable assertion can never fail
		return
	}
	if !g.isConst {
		e.addClause(g.lit)
	}

	bad := e.badElems(ch.Origin.Bound)
	var fail []sat.Lit
	for _, arg := range ch.Origin.Args {
		v := e.encodeExpr(arg.Expr)
		if v.isConst {
			if bad[v.c] {
				return // constant violation: B_i needs no failure clause
			}
			continue
		}
		for a, av := range v.vars {
			if bad[lattice.Elem(a)] {
				fail = append(fail, sat.Lit(av))
			}
		}
	}
	if len(fail) == 0 {
		e.unsat = true // no argument can ever violate
		return
	}
	e.addClause(fail...)
}

// assumeCheckHolds adds C(assert, g) positively: g ⇒ every argument below
// the bound.
func (e *encoder) assumeCheckHolds(ch constraint.Check) {
	g := e.encodeGuard(ch.Guard)
	if g.isConst && !g.b {
		return
	}
	bad := e.badElems(ch.Origin.Bound)
	for _, arg := range ch.Origin.Args {
		v := e.encodeExpr(arg.Expr)
		if v.isConst {
			if bad[v.c] && !g.isConst {
				e.addClause(g.lit.Not())
			} else if bad[v.c] && g.isConst && g.b {
				e.unsat = true
			}
			continue
		}
		for a, av := range v.vars {
			if !bad[lattice.Elem(a)] {
				continue
			}
			if g.isConst {
				e.addClause(sat.Lit(-av))
			} else {
				e.addClause(g.lit.Not(), sat.Lit(-av))
			}
		}
	}
}

// DecodeBranches reads the branch assignment BN out of a SAT model.
func (enc *Encoded) DecodeBranches(model []bool) map[int]bool {
	out := make(map[int]bool, len(enc.BranchVars))
	for id, v := range enc.BranchVars {
		if v < len(model) {
			out[id] = model[v]
		}
	}
	return out
}

// BlockingClause builds the negation clause N of the model's BN values
// (§3.3.2): added to B_i, it excludes this counterexample's branch
// assignment from further enumeration. restrictTo, when non-nil, limits
// the clause to those branch IDs (trace-relevant blocking).
func (enc *Encoded) BlockingClause(model []bool, restrictTo map[int]bool) []sat.Lit {
	var out []sat.Lit
	for id, v := range enc.BranchVars {
		if restrictTo != nil {
			if _, ok := restrictTo[id]; !ok {
				continue
			}
		}
		out = append(out, sat.MkLit(v, model[v]))
	}
	return out
}
