// Package buildinfo renders the version banner shared by every binary's
// -version flag, from the build metadata the Go toolchain already embeds
// (runtime/debug.ReadBuildInfo) — no ldflags stamping required.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version renders a one-line version banner for the named command:
// module version (or VCS revision and time when built from a checkout),
// Go toolchain, and platform.
func Version(cmd string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", cmd, moduleVersion())
	fmt.Fprintf(&b, " (%s, %s/%s)", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}

// moduleVersion extracts the most specific version identity available
// from the embedded build info.
func moduleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(no build info)"
	}
	var rev, modified, vtime string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			vtime = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "+dirty"
		}
		if vtime != "" {
			return fmt.Sprintf("%s (%s)", rev, vtime)
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}
