package buildinfo

import (
	"strings"
	"testing"
)

func TestVersionBanner(t *testing.T) {
	got := Version("webssarid")
	if !strings.HasPrefix(got, "webssarid ") {
		t.Fatalf("banner does not lead with the command name: %q", got)
	}
	if !strings.Contains(got, "go1") {
		t.Fatalf("banner lacks the Go toolchain version: %q", got)
	}
	if strings.Contains(got, "\n") {
		t.Fatalf("banner is not one line: %q", got)
	}
}
