package fixing_test

import (
	"fmt"
	"strings"
	"testing"

	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/telemetry/patch"
)

// setup verifies src (with DoSQL registered as a sink, as Figure 7 needs)
// and returns the analysis.
func setup(t *testing.T, src string) (*core.Result, *fixing.Analysis) {
	t.Helper()
	pre := prelude.Default()
	pre.AddSink("DoSQL", pre.Lattice().Top(), 1)
	opts := core.NewOptions(flow.Options{Prelude: pre})
	res, errs := core.VerifySource("test.php", []byte(src), opts)
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	return res, fixing.Analyze(res)
}

// figure7 extends the paper's PHP Surveyor example to its full 16
// vulnerable locations rooted in the single tainted $sid.
func figure7(sinks int) string {
	var b strings.Builder
	b.WriteString("<?php\n$sid = $_GET['sid'];\nif (!$sid) { $sid = $_POST['sid']; }\n")
	for i := 0; i < sinks; i++ {
		fmt.Fprintf(&b, "$q%d = \"SELECT * FROM t%d WHERE sid=$sid\";\nDoSQL($q%d);\n", i, i, i)
	}
	return b.String()
}

func TestFigure7MinimalFix(t *testing.T) {
	res, a := setup(t, figure7(16))

	// TS-style naive fixing: one patch per vulnerable statement (the paper
	// reports 16 instrumentations for PHP Surveyor).
	naive := a.NaiveFix()
	if len(naive) != 16 {
		t.Fatalf("naive fixing set = %d, want 16", len(naive))
	}

	// The optimal fixing set is {$sid}: 2 patches in our rendering (the
	// two assignments to $sid from $_GET and $_POST — the paper counts the
	// variable once; both introductions must be guarded to be effective).
	greedy := a.GreedyMinimalFix()
	if len(greedy) > 2 {
		t.Fatalf("greedy fixing set = %d, want ≤ 2 (root-cause $sid)\n%s", len(greedy), a.Summary())
	}
	for _, f := range greedy {
		if f.Set == nil || f.Set.Origin.SrcVar != "sid" {
			t.Fatalf("fix point should sanitize $sid, got %s", f.Describe())
		}
	}

	exact := a.ExactMinimalFix(64)
	if len(exact) > len(greedy) {
		t.Fatalf("exact (%d) worse than greedy (%d)", len(exact), len(greedy))
	}

	// Sanity: symptom count matches the error-trace view.
	if got := len(res.Counterexamples()); got < 16 {
		t.Fatalf("counterexamples = %d, want ≥ 16", got)
	}
}

func TestReplacementSetChain(t *testing.T) {
	_, a := setup(t, `<?php
$sid = $_GET['sid'];
$mid = $sid;
$iq = "SELECT * FROM g WHERE sid=$mid";
DoSQL($iq);`)
	if len(a.Constraints) != 1 {
		t.Fatalf("constraints = %d, want 1", len(a.Constraints))
	}
	con := a.Constraints[0]
	var names []string
	for _, v := range con.Replacement {
		names = append(names, v.String())
	}
	want := "iq@1 mid@1 sid@1"
	if strings.Join(names, " ") != want {
		t.Fatalf("replacement = %v, want %q", names, want)
	}
	if len(con.Options) != 3 {
		t.Fatalf("options = %d, want 3", len(con.Options))
	}
}

func TestReplacementStopsAtMultiVarJoin(t *testing.T) {
	_, a := setup(t, `<?php
$a = $_GET['a'];
$b = $_POST['b'];
$q = $a . $b;
DoSQL($q);`)
	// Two violating variables (a and b feed q... q itself violates; its
	// RHS joins two variables, so the replacement set is just {q}).
	if len(a.Constraints) != 1 {
		t.Fatalf("constraints = %d, want 1", len(a.Constraints))
	}
	repl := a.Constraints[0].Replacement
	if len(repl) != 1 || repl[0].Name != "q" {
		t.Fatalf("replacement = %v, want [q@1]", repl)
	}
}

func TestEffectiveVarAcrossBranches(t *testing.T) {
	// The violating read resolves to the branch-dependent effective
	// definition: on the trace that skips the sanitizing branch, the
	// effective def is the original tainted one.
	res, a := setup(t, `<?php
$x = $_GET['x'];
if ($c) { $x = htmlspecialchars($x); }
echo $x;`)
	cexs := res.Counterexamples()
	if len(cexs) != 1 {
		t.Fatalf("counterexamples = %d, want 1", len(cexs))
	}
	if cexs[0].Branches[0] {
		t.Fatalf("violating trace must skip the sanitizer")
	}
	// x@2 (read at echo) is effective x@1 on this trace.
	if len(a.Constraints) != 1 {
		t.Fatalf("constraints = %d", len(a.Constraints))
	}
	repl := a.Constraints[0].Replacement
	if len(repl) != 1 || repl[0].Idx != 1 {
		t.Fatalf("replacement = %v, want [x@1]", repl)
	}
}

func TestSinkArgFallbackForDirectSuperglobal(t *testing.T) {
	_, a := setup(t, `<?php echo $_GET['msg'];`)
	if len(a.Constraints) != 1 {
		t.Fatalf("constraints = %d", len(a.Constraints))
	}
	con := a.Constraints[0]
	if len(con.Replacement) != 0 {
		t.Fatalf("replacement = %v, want empty (external data)", con.Replacement)
	}
	if len(con.Options) != 1 || con.Options[0].Assert == nil {
		t.Fatalf("want sink-argument fallback, got %+v", con.Options)
	}
}

func TestGreedySharesRootAcrossSinks(t *testing.T) {
	// One root feeding two single-variable chains: fixing the root covers
	// both sinks (naive = 2, minimal = 1).
	_, a := setup(t, `<?php
$a = $_GET['a'];
$q1 = "x $a";
DoSQL($q1);
$q2 = "y $a";
DoSQL($q2);`)
	naive := a.NaiveFix()
	greedy := a.GreedyMinimalFix()
	exact := a.ExactMinimalFix(64)
	if len(naive) != 2 {
		t.Fatalf("naive = %d, want 2", len(naive))
	}
	if len(greedy) != 1 {
		t.Fatalf("greedy = %d, want 1\n%s", len(greedy), a.Summary())
	}
	if len(exact) != 1 {
		t.Fatalf("exact = %d, want 1", len(exact))
	}
	if greedy[0].Set == nil || greedy[0].Set.Origin.SrcVar != "a" {
		t.Fatalf("fix point should sanitize the root $a, got %s", greedy[0].Describe())
	}
}

func TestMultiVarJoinNeedsItsOwnFix(t *testing.T) {
	// Lemma 1 only admits sole-dependency replacements: $q3 = $a . $b
	// depends on two variables, so sanitizing $a alone cannot replace
	// sanitizing $q3. The minimum fixing set is 3, not 2.
	_, a := setup(t, `<?php
$a = $_GET['a'];
$b = $_POST['b'];
$q1 = "x $a";
DoSQL($q1);
$q2 = "y $b";
DoSQL($q2);
$q3 = $a . $b;
DoSQL($q3);`)
	exact := a.ExactMinimalFix(64)
	if len(exact) != 3 {
		t.Fatalf("exact = %d, want 3\n%s", len(exact), a.Summary())
	}
}

func TestExactBeatsGreedyOnAdversarialInstance(t *testing.T) {
	// Classic set-cover adversarial shape: greedy may pick the "big"
	// shared element first and then need extras; exact finds the optimum.
	// Build: roots r1, r2; sinks s.t. greedy ties are broken by key order.
	// At minimum, exact must never be worse than greedy (checked here on a
	// messy instance).
	_, a := setup(t, `<?php
$r1 = $_GET['a'];
$r2 = $_GET['b'];
$m = $r1 . $r2;
$u1 = $r1;
$u2 = $r2;
DoSQL($m);
DoSQL($u1);
DoSQL($u2);`)
	greedy := a.GreedyMinimalFix()
	exact := a.ExactMinimalFix(64)
	if len(exact) > len(greedy) {
		t.Fatalf("exact (%d) worse than greedy (%d)", len(exact), len(greedy))
	}
	// Constraints: m→{m}, u1→{u1,r1}, u2→{u2,r2}; minimum is 3.
	if len(exact) != 3 {
		t.Fatalf("exact = %d, want 3\n%s", len(exact), a.Summary())
	}
}

func TestGreedyCoversEveryConstraint(t *testing.T) {
	sources := []string{
		figure7(5),
		`<?php $x = $_GET['x']; echo $x; echo $x . $_POST['y'];`,
		`<?php
if ($c) { $v = $_GET['a']; } else { $v = $_COOKIE['b']; }
$w = $v;
echo $w;
mysql_query($w);`,
	}
	for i, src := range sources {
		_, a := setup(t, src)
		fix := a.GreedyMinimalFix()
		chosen := make(map[string]bool)
		for _, f := range fix {
			chosen[f.Key()] = true
		}
		for ci, con := range a.Constraints {
			if len(con.Options) == 0 {
				continue
			}
			hit := false
			for _, f := range con.Options {
				if chosen[f.Key()] {
					hit = true
				}
			}
			if !hit {
				t.Errorf("source %d constraint %d uncovered", i, ci)
			}
		}
	}
}

// TestPatchThenReverifySafe is the end-to-end soundness property: patching
// the minimal fixing set and re-running the bounded model checker yields
// zero counterexamples.
func TestPatchThenReverifySafe(t *testing.T) {
	sources := []string{
		figure7(16),
		`<?php echo $_GET['msg'];`,
		`<?php
$sid = $_GET['sid'];
$mid = $sid;
echo $mid;
mysql_query("SELECT $mid");`,
		`<?php
if ($c) { $x = $_GET['a']; } else { $x = $_POST['b']; }
echo $x;
echo $x;`,
		`<?php
$query = "SELECT tickets_subject FROM t";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
    extract($row);
    echo "$tickets_username<BR>$tickets_subject";
}`,
		`<?php
function render($m) { echo $m; }
render($_GET['c']);
render($_POST['d']);`,
	}
	pre := prelude.Default()
	pre.AddSink("DoSQL", pre.Lattice().Top(), 1)
	opts := core.NewOptions(flow.Options{Prelude: pre})

	for i, src := range sources {
		res, errs := core.VerifySource("t.php", []byte(src), opts)
		for _, err := range errs {
			t.Fatalf("source %d: %v", i, err)
		}
		if res.Safe() {
			t.Fatalf("source %d should be vulnerable", i)
		}
		a := fixing.Analyze(res)
		fix := a.GreedyMinimalFix()
		patched, perrs := patch.PatchSource("t.php", []byte(src), fix, "")
		for _, err := range perrs {
			t.Fatalf("source %d patch: %v", i, err)
		}

		res2, errs2 := core.VerifySource("t.php", patched, opts)
		for _, err := range errs2 {
			t.Fatalf("source %d reparse: %v\npatched:\n%s", i, err, patched)
		}
		if !res2.Safe() {
			t.Errorf("source %d still unsafe after patching %d fix points:\n%s\nremaining: %d",
				i, len(fix), patched, len(res2.Counterexamples()))
		}
	}
}

func TestPatchCountReduction(t *testing.T) {
	// The Figure 10 headline: BMC-guided patching needs fewer guards than
	// symptom patching. 16 symptoms, ≤2 root patches here.
	_, a := setup(t, figure7(16))
	naive := len(a.NaiveFix())
	minimal := len(a.GreedyMinimalFix())
	if minimal >= naive {
		t.Fatalf("minimal (%d) should beat naive (%d)", minimal, naive)
	}
	reduction := 1 - float64(minimal)/float64(naive)
	if reduction < 0.5 {
		t.Fatalf("reduction = %.1f%%, want large", reduction*100)
	}
}
