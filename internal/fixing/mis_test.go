package fixing_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"webssari/internal/fixing"
)

func TestGreedyMISSimple(t *testing.T) {
	inst := fixing.MIS{
		Universe: 4,
		Sets:     [][]int{{0, 1}, {1, 2}, {1, 3}},
	}
	m := fixing.GreedyMIS(inst)
	if len(m) != 1 || m[0] != 1 {
		t.Fatalf("greedy = %v, want [1]", m)
	}
	if !fixing.Intersects(inst, m) {
		t.Fatalf("greedy result does not intersect all sets")
	}
}

func TestExactMISOptimal(t *testing.T) {
	// Greedy can be fooled; exact cannot. Classic trap: one big element
	// covering k sets vs two elements covering k+1.
	inst := fixing.MIS{
		Universe: 5,
		// Sets: {0,3},{1,3},{2,4},{0,4} — element 3 covers 2, element 4
		// covers 2; optimum {3,4} (2) vs any single element (insufficient).
		Sets: [][]int{{0, 3}, {1, 3}, {2, 4}, {0, 4}},
	}
	exact := fixing.ExactMIS(inst)
	if len(exact) != 2 {
		t.Fatalf("exact = %v, want size 2", exact)
	}
	if !fixing.Intersects(inst, exact) {
		t.Fatalf("exact result invalid")
	}
}

func TestMISEmptyAndDegenerate(t *testing.T) {
	inst := fixing.MIS{Universe: 3, Sets: nil}
	if m := fixing.GreedyMIS(inst); len(m) != 0 {
		t.Fatalf("empty instance: %v", m)
	}
	inst = fixing.MIS{Universe: 3, Sets: [][]int{{}, {1}}}
	m := fixing.GreedyMIS(inst)
	// The empty set is vacuously skipped; {1} needs element 1.
	if len(m) != 1 || m[0] != 1 {
		t.Fatalf("degenerate: %v", m)
	}
	if !fixing.Intersects(inst, m) {
		t.Fatalf("must intersect the non-empty sets")
	}
}

func TestMISQuickProperties(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 3 + r.Intn(8)
		nSets := 1 + r.Intn(8)
		inst := fixing.MIS{Universe: universe}
		for i := 0; i < nSets; i++ {
			size := 1 + r.Intn(3)
			set := make([]int, size)
			for j := range set {
				set[j] = r.Intn(universe)
			}
			inst.Sets = append(inst.Sets, set)
		}
		greedy := fixing.GreedyMIS(inst)
		exact := fixing.ExactMIS(inst)
		// Both valid.
		if !fixing.Intersects(inst, greedy) || !fixing.Intersects(inst, exact) {
			return false
		}
		// Exact is optimal, greedy within the Chvátal bound 1+ln(n).
		if len(exact) > len(greedy) {
			return false
		}
		bound := float64(len(exact)) * (1 + math.Log(float64(len(inst.Sets))))
		return float64(len(greedy)) <= bound+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexCoverReduction(t *testing.T) {
	// Triangle: minimum vertex cover = 2.
	triangle := fixing.Graph{Vertices: 3, Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}}
	if got := fixing.MinVertexCoverSize(triangle); got != 2 {
		t.Fatalf("triangle cover = %d, want 2", got)
	}
	// Star K1,4: center covers everything.
	star := fixing.Graph{Vertices: 5, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}}
	if got := fixing.MinVertexCoverSize(star); got != 1 {
		t.Fatalf("star cover = %d, want 1", got)
	}
	// Path of 5 vertices: cover = 2 (vertices 1 and 3).
	path := fixing.Graph{Vertices: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}}
	if got := fixing.MinVertexCoverSize(path); got != 2 {
		t.Fatalf("path cover = %d, want 2", got)
	}
}

func TestVertexCoverReductionQuick(t *testing.T) {
	// On random graphs, the MIS solution of the reduction is always a
	// vertex cover, and no smaller cover exists (checked by brute force).
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		g := fixing.Graph{Vertices: n}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(2) == 0 {
					g.Edges = append(g.Edges, [2]int{i, j})
				}
			}
		}
		inst := fixing.VertexCoverToMIS(g)
		cover := fixing.ExactMIS(inst)
		if !fixing.IsVertexCover(g, cover) {
			return false
		}
		// Brute-force check minimality.
		for mask := 0; mask < 1<<uint(n); mask++ {
			var cand []int
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					cand = append(cand, v)
				}
			}
			if len(cand) < len(cover) && fixing.IsVertexCover(g, cand) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
