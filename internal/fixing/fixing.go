// Package fixing implements the counterexample analysis of §3.3.3–§3.3.4:
// from the error traces the bounded model checker produced, it computes
// each violating variable's replacement set (Lemma 1), reduces the search
// for a minimum effective fixing set to MINIMUM-INTERSECTING-SET (proved
// NP-complete by reduction from VERTEX-COVER), and solves it either
// exactly (branch and bound, small instances) or with Chvátal's greedy
// set-cover heuristic, whose 1+ln|S| approximation the paper adopts.
//
// The output is a set of fix points: concrete source spans (assignment
// right-hand sides, or sink arguments when the taint enters the program at
// the very sink) that the instrumentor wraps in sanitization runtime
// guards. Patching the minimum fixing set removes every error trace —
// errors are repaired at their causes, not at each propagated symptom.
package fixing

import (
	"fmt"
	"sort"
	"strings"

	"webssari/internal/core"
	"webssari/internal/php/token"
	"webssari/internal/rename"
)

// FixPoint is a concrete patch location: a source span to wrap in a
// sanitization routine.
type FixPoint struct {
	// Set is the defining assignment to sanitize, when the fix point is an
	// error introduction; nil for sink-argument fixes.
	Set *rename.Set
	// Assert and ArgPos identify a sink argument to sanitize when no
	// in-program assignment introduces the taint (e.g. echo $_GET['x']).
	Assert *rename.Assert
	ArgPos int
}

// Key canonically identifies the fix point by its source span.
func (f *FixPoint) Key() string {
	pos, end := f.Span()
	return fmt.Sprintf("%s+%d", pos, end)
}

// Span returns the source span the guard wraps. A fix point with neither
// a defining assignment nor an assertion has no span (zero Pos).
func (f *FixPoint) Span() (pos token.Pos, end int) {
	if f.Set != nil {
		return f.Set.Origin.RHSPos, f.Set.Origin.RHSEnd
	}
	if f.Assert == nil {
		return token.Pos{}, 0
	}
	for _, a := range f.Assert.Origin.Args {
		if a.ArgPos == f.ArgPos {
			return a.Pos, a.End
		}
	}
	return f.Assert.Origin.Site.Pos, f.Assert.Origin.Site.End
}

// Describe renders the fix point for reports.
func (f *FixPoint) Describe() string {
	if f.Set != nil {
		name := f.Set.Origin.SrcVar
		if name == "" {
			name = f.Set.V.Name
		}
		return fmt.Sprintf("sanitize $%s at %s", name, f.Set.Origin.Site.Pos)
	}
	if f.Assert == nil {
		return "invalid fix point"
	}
	return fmt.Sprintf("sanitize argument %d of %s at %s",
		f.ArgPos, f.Assert.Origin.Fn, f.Assert.Origin.Site.Pos)
}

// Constraint is one covering requirement: for the violating variable Var
// of counterexample Cex, at least one fix point in Options must be chosen
// (the replacement set s_vα of Lemma 1, mapped to patchable locations).
type Constraint struct {
	Cex *core.Counterexample
	Var rename.SSAVar
	// Replacement is s_vα: the SSA variables whose sanitization each fixes
	// this violation (Lemma 1).
	Replacement []rename.SSAVar
	// Options are the patchable fix points corresponding to Replacement
	// (plus the sink-argument fallback when none is patchable).
	Options []*FixPoint
}

// Analysis is the complete counterexample analysis of one verification run.
type Analysis struct {
	Result      *core.Result
	Constraints []Constraint
	// fixPoints dedups fix points by span.
	fixPoints map[string]*FixPoint
}

// Analyze computes replacement sets and fix-point constraints for every
// counterexample of a verification result.
func Analyze(res *core.Result) *Analysis {
	a := &Analysis{
		Result:    res,
		fixPoints: make(map[string]*FixPoint),
	}
	for _, cex := range res.Counterexamples() {
		for _, v := range cex.Violating {
			repl := ReplacementSet(res.Renamed, cex, v)
			con := Constraint{Cex: cex, Var: v, Replacement: repl}
			for _, rv := range repl {
				def := res.Renamed.Defs[rv]
				if def == nil || !def.Origin.Patchable() {
					continue
				}
				con.Options = append(con.Options, a.intern(&FixPoint{Set: def}))
			}
			if len(con.Options) == 0 {
				// The taint enters at the sink itself: patch the argument.
				argPos := violatingArgPos(cex, v)
				con.Options = append(con.Options, a.intern(&FixPoint{
					Assert: cex.Assert,
					ArgPos: argPos,
				}))
			}
			a.Constraints = append(a.Constraints, con)
		}
	}
	return a
}

func (a *Analysis) intern(f *FixPoint) *FixPoint {
	key := f.Key()
	if existing, ok := a.fixPoints[key]; ok {
		return existing
	}
	a.fixPoints[key] = f
	return f
}

// violatingArgPos finds the assertion argument that reads the violating
// variable.
func violatingArgPos(cex *core.Counterexample, v rename.SSAVar) int {
	for _, i := range cex.FailingArgs {
		arg := cex.Assert.Args[i]
		for _, ref := range rename.ExprRefs(arg.Expr) {
			if ref == v {
				return arg.ArgPos
			}
		}
	}
	if len(cex.Assert.Args) > 0 {
		return cex.Assert.Args[0].ArgPos
	}
	return 1
}

// ReplacementSet computes s_vα for a violating variable along an error
// trace (§3.3.3): starting from vα, it walks backwards through the single
// assignments executed on the trace, adding each variable that serves as
// the unique r-value of a single assignment — sanitizing any member has
// the same effect as sanitizing vα (Lemma 1).
func ReplacementSet(p *rename.Program, cex *core.Counterexample, v rename.SSAVar) []rename.SSAVar {
	var out []rename.SSAVar
	seen := make(map[rename.SSAVar]bool)
	cur := effectiveVar(cex, v)
	for {
		if seen[cur] {
			break
		}
		seen[cur] = true
		if cur.Idx == 0 {
			// Initial value (external data): no in-program introduction.
			break
		}
		out = append(out, cur)
		def := p.Defs[cur]
		if def == nil {
			break
		}
		next, ok := uniqueRValue(p, def.RHS)
		if !ok {
			break
		}
		cur = effectiveVar(cex, next)
	}
	return out
}

// effectiveVar resolves an SSA variable to the index actually assigned on
// the trace: if vα's defining assignment was not executed (its branch was
// not taken), the value observed is that of a lower index.
func effectiveVar(cex *core.Counterexample, v rename.SSAVar) rename.SSAVar {
	executed := make(map[rename.SSAVar]bool, len(cex.Steps))
	for _, s := range cex.Steps {
		executed[s.Set.V] = true
	}
	for v.Idx > 0 && !executed[v] {
		v.Idx--
	}
	return v
}

// uniqueRValue reports the single variable the expression's value solely
// depends on, if any: a bare reference, or a join whose other parts are
// all ⊥ constants (string concatenation with trusted literals).
func uniqueRValue(p *rename.Program, e rename.Expr) (rename.SSAVar, bool) {
	switch e := e.(type) {
	case rename.Ref:
		return e.V, true
	case rename.Join:
		var ref rename.SSAVar
		found := false
		for _, part := range e.Parts {
			switch part := part.(type) {
			case rename.Const:
				if part.Type != p.AI.Lat.Bottom() {
					return rename.SSAVar{}, false
				}
			case rename.Ref:
				if found {
					return rename.SSAVar{}, false // two variables: not unique
				}
				ref = part.V
				found = true
			default:
				return rename.SSAVar{}, false
			}
		}
		return ref, found
	default:
		return rename.SSAVar{}, false
	}
}

// NaiveFix returns the naive fixing set V_R^n: one fix point per violating
// variable, at its own introduction (no replacement-set sharing) — the
// strategy the paper's TS algorithm effectively used, patching every
// symptom.
func (a *Analysis) NaiveFix() []*FixPoint {
	seen := make(map[string]bool)
	var out []*FixPoint
	for _, con := range a.Constraints {
		if len(con.Options) == 0 {
			continue
		}
		f := con.Options[0]
		if !seen[f.Key()] {
			seen[f.Key()] = true
			out = append(out, f)
		}
	}
	return out
}

// GreedyMinimalFix solves the MINIMUM-INTERSECTING-SET instance with
// Chvátal's greedy set-cover heuristic (§3.3.4): repeatedly choose the fix
// point covering the most unsatisfied constraints.
func (a *Analysis) GreedyMinimalFix() []*FixPoint {
	type candidate struct {
		f     *FixPoint
		cover []int
	}
	coverage := make(map[string]*candidate)
	for i, con := range a.Constraints {
		for _, f := range con.Options {
			c, ok := coverage[f.Key()]
			if !ok {
				c = &candidate{f: f}
				coverage[f.Key()] = c
			}
			c.cover = append(c.cover, i)
		}
	}
	uncovered := make(map[int]bool, len(a.Constraints))
	for i, con := range a.Constraints {
		if len(con.Options) > 0 {
			uncovered[i] = true
		}
	}

	var out []*FixPoint
	for len(uncovered) > 0 {
		var best *candidate
		bestGain := 0
		// Deterministic tie-breaking: iterate keys in sorted order.
		keys := make([]string, 0, len(coverage))
		for k := range coverage {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := coverage[k]
			gain := 0
			for _, i := range c.cover {
				if uncovered[i] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				best = c
			}
		}
		if best == nil {
			break // remaining constraints have no options
		}
		out = append(out, best.f)
		for _, i := range best.cover {
			delete(uncovered, i)
		}
	}
	return out
}

// ExactMinimalFix solves MINIMUM-INTERSECTING-SET exactly by branch and
// bound, pruning with the greedy solution as the initial upper bound. It
// refuses instances with more than maxPoints candidate fix points
// (returning the greedy solution), since the problem is NP-complete.
func (a *Analysis) ExactMinimalFix(maxPoints int) []*FixPoint {
	greedy := a.GreedyMinimalFix()
	if len(a.fixPoints) > maxPoints {
		return greedy
	}

	// Collect candidates and the constraints each covers.
	keys := make([]string, 0, len(a.fixPoints))
	for k := range a.fixPoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	covers := make([][]int, len(keys))
	keyIdx := make(map[string]int, len(keys))
	for i, k := range keys {
		keyIdx[k] = i
	}
	var active []int
	for ci, con := range a.Constraints {
		if len(con.Options) == 0 {
			continue
		}
		active = append(active, ci)
		for _, f := range con.Options {
			i := keyIdx[f.Key()]
			covers[i] = append(covers[i], ci)
		}
	}

	best := make([]int, 0, len(greedy))
	bestLen := len(greedy)
	var cur []int

	conCovered := make(map[int]int) // constraint → count of chosen coverers

	var optionsOf = func(ci int) []*FixPoint { return a.Constraints[ci].Options }

	var solve func(pos int)
	solve = func(pos int) {
		if len(cur) >= bestLen {
			return
		}
		// Find the first uncovered constraint.
		target := -1
		for _, ci := range active {
			if conCovered[ci] == 0 {
				target = ci
				break
			}
		}
		if target == -1 {
			// All covered: record improvement.
			best = append(best[:0], cur...)
			bestLen = len(cur)
			return
		}
		// Branch on each option covering the target constraint.
		for _, f := range optionsOf(target) {
			i := keyIdx[f.Key()]
			cur = append(cur, i)
			for _, ci := range covers[i] {
				conCovered[ci]++
			}
			solve(pos + 1)
			for _, ci := range covers[i] {
				conCovered[ci]--
			}
			cur = cur[:len(cur)-1]
		}
	}
	solve(0)

	if bestLen >= len(greedy) {
		return greedy
	}
	out := make([]*FixPoint, 0, bestLen)
	for _, i := range best {
		out = append(out, a.fixPoints[keys[i]])
	}
	return out
}

// Summary renders the analysis: error groups and their fix points.
func (a *Analysis) Summary() string {
	var b strings.Builder
	fix := a.GreedyMinimalFix()
	fmt.Fprintf(&b, "%d error trace constraint(s), minimal fixing set of %d patch(es):\n",
		len(a.Constraints), len(fix))
	for _, f := range fix {
		fmt.Fprintf(&b, "  - %s\n", f.Describe())
	}
	return b.String()
}
