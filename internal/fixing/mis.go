package fixing

import (
	"sort"
)

// This file implements MINIMUM-INTERSECTING-SET (Definition 2 of the
// paper) as a standalone combinatorial problem, together with the two
// reductions of §3.3.4:
//
//   - VERTEX-COVER ≤p MIS (the NP-completeness direction: each edge
//     (v, v′) becomes the set {v, v′}; a minimum intersecting set is a
//     minimum vertex cover), and
//   - MIS ≤p SET-COVER (the algorithmic direction: elements become the
//     constraint sets they appear in; Chvátal's greedy heuristic then
//     gives a 1+ln|S| approximation).
//
// The counterexample analyzer (Analyze/GreedyMinimalFix) instantiates MIS
// with fix points as elements and replacement sets as the collection; the
// standalone form here keeps the theorem testable in isolation.

// MIS is a MINIMUM-INTERSECTING-SET instance: given a collection of
// non-empty subsets of a universe (identified by dense ints), find a
// minimum M such that every subset intersects M.
type MIS struct {
	// Universe is the number of elements (0..Universe-1).
	Universe int
	// Sets is the collection S1..Sn; each must be non-empty for a solution
	// to exist.
	Sets [][]int
}

// GreedyMIS solves the instance with Chvátal's greedy set-cover heuristic
// after the §3.3.4 reduction: pick the element intersecting the most
// not-yet-intersected sets, repeat. The result intersects every set (when
// possible) and is within 1+ln(n) of optimal.
func GreedyMIS(inst MIS) []int {
	containing := make([][]int, inst.Universe)
	for si, set := range inst.Sets {
		seen := make(map[int]bool, len(set))
		for _, e := range set {
			if e >= 0 && e < inst.Universe && !seen[e] {
				seen[e] = true
				containing[e] = append(containing[e], si)
			}
		}
	}
	uncovered := make(map[int]bool, len(inst.Sets))
	for si, set := range inst.Sets {
		if len(set) > 0 {
			uncovered[si] = true
		}
	}
	var out []int
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for e := 0; e < inst.Universe; e++ {
			gain := 0
			for _, si := range containing[e] {
				if uncovered[si] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = e, gain
			}
		}
		if best < 0 {
			break // some set references only out-of-universe elements
		}
		out = append(out, best)
		for _, si := range containing[best] {
			delete(uncovered, si)
		}
	}
	sort.Ints(out)
	return out
}

// ExactMIS solves the instance optimally by branch and bound (NP-complete;
// use only on small instances). It branches on the elements of the first
// uncovered set, pruning with the greedy bound.
func ExactMIS(inst MIS) []int {
	greedy := GreedyMIS(inst)
	if !Intersects(inst, greedy) {
		return greedy // infeasible instance: best effort
	}
	containing := make([][]int, inst.Universe)
	for si, set := range inst.Sets {
		for _, e := range set {
			if e >= 0 && e < inst.Universe {
				containing[e] = append(containing[e], si)
			}
		}
	}

	best := append([]int(nil), greedy...)
	covered := make([]int, len(inst.Sets))
	var cur []int

	var solve func()
	solve = func() {
		if len(cur) >= len(best) {
			return
		}
		target := -1
		for si, set := range inst.Sets {
			if len(set) > 0 && covered[si] == 0 {
				target = si
				break
			}
		}
		if target < 0 {
			best = append(best[:0], cur...)
			return
		}
		for _, e := range inst.Sets[target] {
			if e < 0 || e >= inst.Universe {
				continue
			}
			cur = append(cur, e)
			for _, si := range containing[e] {
				covered[si]++
			}
			solve()
			for _, si := range containing[e] {
				covered[si]--
			}
			cur = cur[:len(cur)-1]
		}
	}
	solve()
	sort.Ints(best)
	return best
}

// Intersects reports whether m intersects every non-empty set of the
// instance — the effectiveness condition of Definition 1/2.
func Intersects(inst MIS, m []int) bool {
	chosen := make(map[int]bool, len(m))
	for _, e := range m {
		chosen[e] = true
	}
	for _, set := range inst.Sets {
		if len(set) == 0 {
			continue
		}
		hit := false
		for _, e := range set {
			if chosen[e] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// Graph is an undirected graph for the VERTEX-COVER reduction.
type Graph struct {
	Vertices int
	Edges    [][2]int
}

// VertexCoverToMIS performs the paper's NP-completeness reduction: each
// edge e = (v, v′) maps to the set {v, v′}. A minimum intersecting set of
// the resulting instance is exactly a minimum vertex cover of the graph.
func VertexCoverToMIS(g Graph) MIS {
	inst := MIS{Universe: g.Vertices, Sets: make([][]int, 0, len(g.Edges))}
	for _, e := range g.Edges {
		inst.Sets = append(inst.Sets, []int{e[0], e[1]})
	}
	return inst
}

// MinVertexCoverSize computes the minimum vertex cover size through the
// MIS reduction (exponential; small graphs only).
func MinVertexCoverSize(g Graph) int {
	return len(ExactMIS(VertexCoverToMIS(g)))
}

// IsVertexCover reports whether the vertex set covers every edge.
func IsVertexCover(g Graph, cover []int) bool {
	in := make(map[int]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	for _, e := range g.Edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}
