package policy

import (
	"strings"
	"testing"
)

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	for _, want := range []string{DefaultName, ContextXSSName, SSRFName} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v, missing %q", names, want)
		}
		c, err := Lookup(want)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", want, err)
		}
		if c.Name() != want {
			t.Errorf("Lookup(%q).Name() = %q", want, c.Name())
		}
	}
	if _, err := Lookup("no-such-policy"); err == nil {
		t.Error("Lookup of unknown policy succeeded")
	}
}

func TestCompileValidation(t *testing.T) {
	valid := func() Policy {
		return Policy{
			Name:    "t",
			Lattice: []string{"untainted", "tainted"},
			Sinks:   []Sink{{Name: "echo", Bound: "tainted"}},
			Guards:  []Guard{{Routine: "websafe", Type: "untainted"}},
		}
	}
	cases := []struct {
		label   string
		mutate  func(*Policy)
		wantErr string
	}{
		{"ok", func(p *Policy) {}, ""},
		{"no name", func(p *Policy) { p.Name = "" }, "name is required"},
		{"short lattice", func(p *Policy) { p.Lattice = []string{"only"} }, "at least two"},
		{"empty elem", func(p *Policy) { p.Lattice = []string{"", "tainted"} }, "empty lattice element"},
		{"dup elem", func(p *Policy) { p.Lattice = []string{"a", "a"} }, "duplicate lattice element"},
		{"unknown sink bound", func(p *Policy) { p.Sinks[0].Bound = "bogus" }, "unknown lattice element"},
		{"bad sink arg", func(p *Policy) { p.Sinks[0].Args = []int{0} }, "non-positive argument"},
		{"unknown source type", func(p *Policy) {
			p.Sources = []Source{{Name: "input", Type: "bogus"}}
		}, "unknown lattice element"},
		{"unknown sanitizer type", func(p *Policy) {
			p.Sanitizers = []Sanitizer{{Name: "clean", Type: "bogus"}}
		}, "unknown lattice element"},
		{"variant without consts", func(p *Policy) {
			p.Sanitizers = []Sanitizer{{Name: "clean", Type: "untainted",
				Variants: []Variant{{Type: "untainted"}}}}
		}, "without arg_consts"},
		{"unknown guard type", func(p *Policy) { p.Guards[0].Type = "bogus" }, "unknown lattice element"},
		{"empty guard routine", func(p *Policy) { p.Guards[0].Routine = "" }, "empty routine"},
		{"unknown context bound", func(p *Policy) {
			p.Contexts = []Context{{Name: "html", Bound: "bogus"}}
		}, "unknown lattice element"},
		{"context names unknown guard", func(p *Policy) {
			p.Contexts = []Context{{Name: "html", Bound: "tainted", Guard: "ghost"}}
		}, "undeclared guard"},
		{"duplicate context", func(p *Policy) {
			p.Contexts = []Context{
				{Name: "html", Bound: "tainted"},
				{Name: "html", Bound: "tainted"},
			}
		}, "duplicate context"},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			p := valid()
			tc.mutate(&p)
			_, err := p.Compile()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Compile error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestSanitizerVariants(t *testing.T) {
	c := ContextXSS()
	name := func(fn string, consts []string) string {
		e, ok := c.SanitizerType(fn, consts)
		if !ok {
			return "<none>"
		}
		return c.Lattice().Name(e)
	}
	cases := []struct {
		fn     string
		consts []string
		want   string
	}{
		{"htmlspecialchars", nil, "escaped"},
		{"htmlspecialchars", []string{"ENT_QUOTES"}, "quoted"},
		{"HTMLSPECIALCHARS", []string{"ENT_QUOTES"}, "quoted"}, // case-insensitive fn
		{"htmlentities", []string{"ENT_QUOTES"}, "quoted"},
		{"urlencode", nil, "quoted"},
		{"intval", nil, "untainted"},
		{"websafe_attr", nil, "quoted"},
		{"not_a_sanitizer", nil, "<none>"},
	}
	for _, tc := range cases {
		if got := name(tc.fn, tc.consts); got != tc.want {
			t.Errorf("SanitizerType(%q, %v) = %s, want %s", tc.fn, tc.consts, got, tc.want)
		}
	}
}

func TestSelectGuard(t *testing.T) {
	c := ContextXSS()
	bound := func(ctx string) Violation {
		b, ok := c.ContextBound(ctx)
		if !ok {
			t.Fatalf("no context %q", ctx)
		}
		return Violation{Context: ctx, Bound: b}
	}
	cases := []struct {
		label      string
		violations []Violation
		want       string
		ok         bool
	}{
		{"none", nil, "", false},
		{"html only", []Violation{bound(ContextHTML)}, "websafe_html", true},
		{"attr only", []Violation{bound(ContextAttr)}, "websafe_attr", true},
		{"js only", []Violation{bound(ContextJS)}, "websafe_js", true},
		// A single guard must cover every violation: quoted output is
		// adequate for an attribute but not a script element, so the
		// combination escalates past websafe_attr to websafe_js.
		{"attr and js", []Violation{bound(ContextAttr), bound(ContextJS)}, "websafe_js", true},
		{"html and attr", []Violation{bound(ContextHTML), bound(ContextAttr)}, "websafe_attr", true},
	}
	for _, tc := range cases {
		got, ok := c.SelectGuard(tc.violations)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: SelectGuard = (%q, %v), want (%q, %v)", tc.label, got, ok, tc.want, tc.ok)
		}
	}

	ssrf, def := SSRF(), Default()
	top := func(c *Compiled) Violation {
		return Violation{Bound: c.Lattice().Top()}
	}
	if got, ok := ssrf.SelectGuard([]Violation{top(ssrf)}); !ok || got != "websafe_url" {
		t.Errorf("ssrf SelectGuard = (%q, %v), want websafe_url", got, ok)
	}
	if got, ok := def.SelectGuard([]Violation{top(def)}); !ok || got != "websafe" {
		t.Errorf("default SelectGuard = (%q, %v), want websafe", got, ok)
	}
}

func TestHTMLContextStateMachine(t *testing.T) {
	cases := []struct {
		feed string
		want string
	}{
		{"", ContextHTML},
		{"<p>Hello ", ContextHTML},
		{"<p>Hello</p><b>", ContextHTML},
		{"<input type='text' value='", ContextAttr},
		{"<input value=\"", ContextAttr},
		{"<a href=", ContextAttr},
		{"<input value='x'>", ContextHTML},
		{"<script>var who = '", ContextJS},
		{"<script type=\"text/javascript\">x = ", ContextJS},
		{"<script>x=1;</script><p>", ContextHTML},
		{"<!-- <script> --><p>", ContextHTML},
	}
	for _, tc := range cases {
		h := NewHTMLContext()
		h.Feed(tc.feed)
		if got := h.Current(); got != tc.want {
			t.Errorf("Feed(%q): Current() = %q, want %q", tc.feed, got, tc.want)
		}
	}

	// Incremental feeding must agree with one-shot feeding.
	h := NewHTMLContext()
	for _, chunk := range []string{"<scri", "pt>var x", " = '"} {
		h.Feed(chunk)
	}
	if got := h.Current(); got != ContextJS {
		t.Errorf("chunked feed: Current() = %q, want %q", got, ContextJS)
	}
}

func TestFingerprints(t *testing.T) {
	fps := make(map[string]string)
	for _, n := range Names() {
		c, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		fp := c.Fingerprint()
		if fp == "" {
			t.Errorf("%s: empty fingerprint", n)
		}
		if prev, dup := fps[fp]; dup {
			t.Errorf("%s and %s share fingerprint %s", n, prev, fp)
		}
		fps[fp] = n
		again, _ := Lookup(n)
		if again.Fingerprint() != fp {
			t.Errorf("%s: fingerprint not stable across lookups", n)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	// The default policy wraps the seed prelude verbatim rather than
	// compiling from a declaration, so it has no JSON form to round-trip;
	// only declared policies travel as JSON.
	for _, n := range []string{ContextXSSName, SSRFName} {
		c, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.MarshalJSON()
		if err != nil {
			t.Fatalf("%s: MarshalJSON: %v", n, err)
		}
		back, err := LoadJSON(n, data)
		if err != nil {
			t.Fatalf("%s: LoadJSON of own marshal: %v", n, err)
		}
		if back.Fingerprint() != c.Fingerprint() {
			t.Errorf("%s: round-trip changed fingerprint %s -> %s",
				n, c.Fingerprint(), back.Fingerprint())
		}
		if back.Name() != c.Name() {
			t.Errorf("%s: round-trip changed name to %q", n, back.Name())
		}
	}
}
