package policy

// HTMLContext is the incremental HTML output-context state machine the
// flow filter drives while walking a page's literal output (inline HTML
// chunks and string literals fed to contextual sinks, in source order).
// When a dynamic value is emitted, Current() names the context it lands
// in — "html" (element body), "attr" (inside a tag: tag internals and
// attribute values), or "js" (inside a <script> element) — and the
// policy's context table supplies the matching precondition bound.
//
// The machine deliberately assumes dynamic output does not change the
// parser state: that non-interference is exactly the property the
// per-context bounds enforce, so the assumption is self-consistent. It
// is a lexical approximation of the HTML5 tokenizer, sufficient for the
// template-style PHP the subset targets; constructs it cannot track
// (document.write chains, foreign content) degrade to the enclosing
// context's bound.
type HTMLContext struct {
	state  ctxState
	quote  byte   // active attribute-value quote in stateAttrVal
	tag    []byte // lowered name of the tag being opened
	closer bool   // current tag is a closing tag (</...)
	named  bool   // tag name fully collected
	slash  bool   // previous byte inside a tag was '/' (self-closing)
	match  int    // progress through "<!--", "-->", or "</script"
}

type ctxState int

const (
	stateText ctxState = iota
	stateTagOpen          // just consumed '<'
	stateBang             // consumed "<!", matching toward "<!--"
	stateComment          // inside <!-- ... -->, matching toward "-->"
	stateTag              // inside <tag ...>, outside any quoted value
	stateAttrVal          // inside a quoted attribute value
	stateScript           // inside <script> ... matching toward "</script"
	stateScriptEnd        // matched "</script", skipping to '>'
)

// Context names produced by the machine.
const (
	ContextHTML = "html"
	ContextAttr = "attr"
	ContextJS   = "js"
)

// NewHTMLContext returns a machine positioned in an HTML body.
func NewHTMLContext() *HTMLContext {
	return &HTMLContext{state: stateText}
}

// Current names the context a dynamic value emitted now would land in.
func (h *HTMLContext) Current() string {
	switch h.state {
	case stateScript, stateScriptEnd:
		return ContextJS
	case stateTagOpen, stateBang, stateTag, stateAttrVal:
		return ContextAttr
	default:
		// Body text and comments: an unescaped "-->" or "<script" breaks
		// out of either, so both take the body bound.
		return ContextHTML
	}
}

// Feed advances the machine over literal output. Text may be split at
// arbitrary byte boundaries across calls.
func (h *HTMLContext) Feed(text string) {
	for i := 0; i < len(text); i++ {
		h.step(text[i])
	}
}

func (h *HTMLContext) step(b byte) {
	switch h.state {
	case stateText:
		if b == '<' {
			h.state = stateTagOpen
			h.tag = h.tag[:0]
			h.closer = false
			h.named = false
			h.slash = false
		}

	case stateTagOpen:
		switch {
		case b == '!':
			h.state = stateBang
			h.match = 0
		case b == '/':
			h.closer = true
			h.state = stateTag
		case isAlpha(b):
			h.state = stateTag
			h.tag = append(h.tag, lowerByte(b))
			// The name continues in stateTag until a delimiter.
		default:
			// "< " and other non-tags are body text ("1 < 2").
			h.state = stateText
		}

	case stateBang:
		// Match "--" to enter a comment; anything else (<!DOCTYPE ...,
		// <![CDATA[ approximated) stays tag-like until '>'.
		if b == '-' {
			h.match++
			if h.match == 2 {
				h.state = stateComment
				h.match = 0
			}
			return
		}
		if b == '>' {
			h.state = stateText
			return
		}
		h.named = true
		h.state = stateTag

	case stateComment:
		switch {
		case b == '-':
			if h.match < 2 {
				h.match++
			}
		case b == '>' && h.match >= 2:
			h.state = stateText
			h.match = 0
		default:
			h.match = 0
		}

	case stateTag:
		if !h.named {
			if isAlnum(b) || b == '-' || b == ':' {
				h.tag = append(h.tag, lowerByte(b))
				return
			}
			h.named = true
		}
		switch b {
		case '"', '\'':
			h.quote = b
			h.state = stateAttrVal
			h.slash = false
		case '>':
			if !h.closer && !h.slash && string(h.tag) == "script" {
				h.state = stateScript
				h.match = 0
			} else {
				h.state = stateText
			}
		default:
			h.slash = b == '/'
		}

	case stateAttrVal:
		if b == h.quote {
			h.state = stateTag
		}

	case stateScript:
		// Case-insensitive incremental match of "</script".
		const end = "</script"
		if lowerByte(b) == end[h.match] {
			h.match++
			if h.match == len(end) {
				h.state = stateScriptEnd
				h.match = 0
			}
			return
		}
		// A failed match may restart at '<'.
		if b == '<' {
			h.match = 1
		} else {
			h.match = 0
		}

	case stateScriptEnd:
		if b == '>' {
			h.state = stateText
		}
	}
}

func isAlpha(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isAlnum(b byte) bool {
	return isAlpha(b) || (b >= '0' && b <= '9')
}

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}
