package policy

import (
	"fmt"
	"sort"

	"webssari/internal/prelude"
)

// Built-in policy names.
const (
	DefaultName    = "default"
	ContextXSSName = "xss-context"
	SSRFName       = "ssrf"
)

// builtins maps names to constructors. Each call builds a fresh
// Compiled (preludes are mutable, so policies must not be shared).
var builtins = map[string]func() *Compiled{
	DefaultName:    Default,
	ContextXSSName: ContextXSS,
	SSRFName:       SSRF,
}

// Names lists the built-in policies in sorted order.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a built-in policy by name.
func Lookup(name string) (*Compiled, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (available: %v)", name, Names())
	}
	return mk(), nil
}

// Default returns the classic SQLi/XSS taint policy. It wraps the seed
// prelude directly rather than re-declaring it, so a run under the
// default policy is byte-identical to a run with no policy at all —
// the differential suite asserts this across the whole corpus.
func Default() *Compiled {
	return wrapPrelude(DefaultName,
		"classic two-point taint policy: XSS, SQL injection, command/code injection",
		prelude.Default(),
		[]Guard{{Routine: "websafe", Type: "untainted"}})
}

// contextXSSDecl is the context-sensitive XSS policy. Its four-point
// chain untainted < quoted < escaped < tainted ranks data by where it
// may be emitted: "escaped" (htmlspecialchars without ENT_QUOTES) is
// inert in an HTML body but still breaks out of a single-quoted
// attribute; "quoted" (ENT_QUOTES) is safe in bodies and attributes but
// not inside a <script> element; only "untainted" is safe everywhere.
// The echo-family sinks are contextual: the HTML state machine over the
// surrounding literal output decides which bound applies.
var contextXSSDecl = Policy{
	Name:        ContextXSSName,
	Description: "context-sensitive XSS: sink bound depends on HTML body/attribute/script context",
	Lattice:     []string{"untainted", "quoted", "escaped", "tainted"},
	Vars: []Var{
		{Name: "_GET", Type: "tainted"},
		{Name: "_POST", Type: "tainted"},
		{Name: "_COOKIE", Type: "tainted"},
		{Name: "_REQUEST", Type: "tainted"},
		{Name: "_FILES", Type: "tainted"},
		{Name: "_SERVER", Type: "tainted"},
		{Name: "HTTP_GET_VARS", Type: "tainted"},
		{Name: "HTTP_POST_VARS", Type: "tainted"},
		{Name: "HTTP_COOKIE_VARS", Type: "tainted"},
		{Name: "HTTP_SERVER_VARS", Type: "tainted"},
		{Name: "HTTP_REFERER", Type: "tainted"},
		{Name: "PHP_SELF", Type: "tainted"},
		{Name: "QUERY_STRING", Type: "tainted"},
		{Name: "_SESSION", Type: "untainted"},
		{Name: "GLOBALS", Type: "untainted"},
	},
	Sources: []Source{
		{Name: "getenv", Type: "tainted"},
		{Name: "file", Type: "tainted"},
		{Name: "fgets", Type: "tainted"},
		{Name: "fread", Type: "tainted"},
		{Name: "file_get_contents", Type: "tainted"},
		{Name: "mysql_fetch_array", Type: "tainted"},
		{Name: "mysql_fetch_row", Type: "tainted"},
		{Name: "mysql_fetch_object", Type: "tainted"},
		{Name: "mysql_fetch_assoc", Type: "tainted"},
		{Name: "mysql_result", Type: "tainted"},
		{Name: "pg_fetch_array", Type: "tainted"},
		{Name: "pg_fetch_row", Type: "tainted"},
		{Name: "pg_fetch_object", Type: "tainted"},
	},
	Sinks: []Sink{
		{Name: "echo", Bound: "tainted", Class: "cross-site scripting (XSS)", Contextual: true},
		{Name: "print", Bound: "tainted", Class: "cross-site scripting (XSS)", Contextual: true},
		{Name: "printf", Bound: "tainted", Class: "cross-site scripting (XSS)", Contextual: true},
		{Name: "print_r", Bound: "tainted", Args: []int{1}, Class: "cross-site scripting (XSS)", Contextual: true},
		{Name: "vprintf", Bound: "tainted", Class: "cross-site scripting (XSS)", Contextual: true},
		{Name: "die", Bound: "tainted", Class: "cross-site scripting (XSS)"},
		{Name: "exit", Bound: "tainted", Class: "cross-site scripting (XSS)"},
	},
	Sanitizers: []Sanitizer{
		// htmlspecialchars escapes <>& always, quotes only with
		// ENT_QUOTES — the canonical per-context adequacy split.
		{Name: "htmlspecialchars", Type: "escaped",
			Variants: []Variant{{ArgConsts: []string{"ENT_QUOTES"}, Type: "quoted"}}},
		{Name: "htmlentities", Type: "escaped",
			Variants: []Variant{{ArgConsts: []string{"ENT_QUOTES"}, Type: "quoted"}}},
		// strip_tags removes elements but leaves quotes intact: body-safe
		// only.
		{Name: "strip_tags", Type: "escaped"},
		// Percent/alphanumeric encodings emit no quote or angle
		// characters: safe in bodies and attributes, not in scripts.
		{Name: "urlencode", Type: "quoted"},
		{Name: "rawurlencode", Type: "quoted"},
		// Numeric casts and digest encodings are safe everywhere.
		{Name: "intval", Type: "untainted"},
		{Name: "floatval", Type: "untainted"},
		{Name: "doubleval", Type: "untainted"},
		{Name: "count", Type: "untainted"},
		{Name: "strlen", Type: "untainted"},
		{Name: "md5", Type: "untainted"},
		{Name: "sha1", Type: "untainted"},
		{Name: "crc32", Type: "untainted"},
		{Name: "base64_encode", Type: "untainted"},
		{Name: "bin2hex", Type: "untainted"},
		// JSON encoding with hex flags is the JS-context escape.
		{Name: "json_encode", Type: "untainted"},
		{Name: "websafe", Type: "untainted"},
		{Name: "websafe_js", Type: "untainted"},
		{Name: "websafe_attr", Type: "quoted"},
		{Name: "websafe_html", Type: "escaped"},
	},
	Contexts: []Context{
		// Assertion bounds are strict (t < bound): in an HTML body any
		// escaped value passes; in an attribute the value must be at
		// most quoted; inside a script element only untainted data may
		// appear.
		{Name: "html", Bound: "tainted", Guard: "websafe_html"},
		{Name: "attr", Bound: "escaped", Guard: "websafe_attr"},
		{Name: "js", Bound: "quoted", Guard: "websafe_js"},
	},
	Guards: []Guard{
		{Routine: "websafe_html", Type: "escaped"},
		{Routine: "websafe_attr", Type: "quoted"},
		{Routine: "websafe_js", Type: "untainted"},
		{Routine: "websafe", Type: "untainted"},
	},
}

// ContextXSS returns the context-sensitive XSS policy.
func ContextXSS() *Compiled {
	c, err := contextXSSDecl.Compile()
	if err != nil {
		// Unreachable: the built-in declaration is covered by tests.
		panic(err)
	}
	return c
}

// ssrfDecl treats outbound request constructors as the sensitive
// channels: a request URL an attacker controls lets the application be
// used as a proxy into internal networks (server-side request forgery).
// The adequate sanitizer is a host allowlist (websafe_url), not an
// escape.
var ssrfDecl = Policy{
	Name:        SSRFName,
	Description: "server-side request forgery: outbound request URLs must be allowlisted",
	Lattice:     []string{"untainted", "tainted"},
	Vars: []Var{
		{Name: "_GET", Type: "tainted"},
		{Name: "_POST", Type: "tainted"},
		{Name: "_COOKIE", Type: "tainted"},
		{Name: "_REQUEST", Type: "tainted"},
		{Name: "_FILES", Type: "tainted"},
		{Name: "_SERVER", Type: "tainted"},
		{Name: "HTTP_GET_VARS", Type: "tainted"},
		{Name: "HTTP_POST_VARS", Type: "tainted"},
		{Name: "HTTP_COOKIE_VARS", Type: "tainted"},
		{Name: "HTTP_SERVER_VARS", Type: "tainted"},
		{Name: "HTTP_REFERER", Type: "tainted"},
		{Name: "PHP_SELF", Type: "tainted"},
		{Name: "QUERY_STRING", Type: "tainted"},
		{Name: "_SESSION", Type: "untainted"},
		{Name: "GLOBALS", Type: "untainted"},
	},
	Sources: []Source{
		{Name: "getenv", Type: "tainted"},
		{Name: "mysql_fetch_array", Type: "tainted"},
		{Name: "mysql_fetch_row", Type: "tainted"},
		{Name: "mysql_fetch_assoc", Type: "tainted"},
		{Name: "mysql_result", Type: "tainted"},
	},
	Sinks: []Sink{
		{Name: "curl_init", Bound: "tainted", Args: []int{1},
			Class: "server-side request forgery (SSRF)"},
		{Name: "curl_setopt", Bound: "tainted", Args: []int{3},
			Class: "server-side request forgery (SSRF)"},
		{Name: "file_get_contents", Bound: "tainted", Args: []int{1},
			Class: "server-side request forgery (SSRF)"},
		{Name: "fopen", Bound: "tainted", Args: []int{1},
			Class: "server-side request forgery (SSRF)"},
		{Name: "readfile", Bound: "tainted", Args: []int{1},
			Class: "server-side request forgery (SSRF)"},
		{Name: "get_headers", Bound: "tainted", Args: []int{1},
			Class: "server-side request forgery (SSRF)"},
		{Name: "fsockopen", Bound: "tainted", Args: []int{1},
			Class: "server-side request forgery (SSRF)"},
	},
	Sanitizers: []Sanitizer{
		// websafe_url validates the URL's host against an allowlist and
		// returns a rebuilt URL; it is both the declared sanitizer and
		// the patcher's guard routine.
		{Name: "websafe_url", Type: "untainted"},
		{Name: "intval", Type: "untainted"},
		{Name: "floatval", Type: "untainted"},
		{Name: "basename", Type: "untainted"},
	},
	Guards: []Guard{
		{Routine: "websafe_url", Type: "untainted"},
	},
}

// SSRF returns the server-side request forgery policy.
func SSRF() *Compiled {
	c, err := ssrfDecl.Compile()
	if err != nil {
		// Unreachable: the built-in declaration is covered by tests.
		panic(err)
	}
	return c
}
