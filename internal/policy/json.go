package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// LoadJSON parses and compiles a policy from its JSON declaration. The
// decoder is strict: unknown fields are errors, so a typo in a policy
// file fails loudly instead of silently weakening the analysis. name
// labels errors (usually the file path).
func LoadJSON(name string, data []byte) (*Compiled, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("policy %s: %w", name, err)
	}
	// Trailing garbage after the JSON document is also an error.
	if dec.More() {
		return nil, fmt.Errorf("policy %s: trailing data after policy document", name)
	}
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalJSON renders the compiled policy's declaration — the form a
// policy file round-trips through.
func (c *Compiled) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.decl)
}
