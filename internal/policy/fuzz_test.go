package policy

import (
	"bytes"
	"testing"
)

// FuzzPolicy hammers the JSON loader: arbitrary bytes must never panic,
// and any input it does accept must compile into a policy with a stable
// fingerprint, a usable prelude, and a deterministic re-load.
func FuzzPolicy(f *testing.F) {
	for _, n := range []string{ContextXSSName, SSRFName} {
		c, err := Lookup(n)
		if err != nil {
			f.Fatal(err)
		}
		data, err := c.MarshalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","lattice":["a","b"]}`))
	f.Add([]byte(`{"name":"x","lattice":["a","a"]}`))
	f.Add([]byte(`{"name":"x","lattice":["a","b"],"sinks":[{"name":"echo","bound":"z"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadJSON("fuzz", data)
		if err != nil {
			return
		}
		fp := c.Fingerprint()
		if fp == "" {
			t.Fatal("accepted policy has empty fingerprint")
		}
		if c.Prelude() == nil {
			t.Fatal("accepted policy has nil prelude")
		}
		if c.Lattice() == nil || c.Lattice().Size() < 2 {
			t.Fatal("accepted policy has degenerate lattice")
		}
		again, err := LoadJSON("fuzz", data)
		if err != nil {
			t.Fatalf("second load of accepted input failed: %v", err)
		}
		if again.Fingerprint() != fp {
			t.Fatalf("non-deterministic fingerprint: %s vs %s", fp, again.Fingerprint())
		}
		// The accepted policy's own marshal must stay loadable (no
		// lossy normalization that invalidates the declaration).
		out, err := c.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of accepted policy failed: %v", err)
		}
		if _, err := LoadJSON("fuzz", out); err != nil {
			t.Fatalf("re-load of marshaled policy failed: %v\n%s", err, bytes.TrimSpace(out))
		}
	})
}
