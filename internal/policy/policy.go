// Package policy generalizes the hardcoded taint prelude into a
// declarative, pluggable security-policy subsystem. A Policy names a
// safety-type chain lattice and declares sources, sinks, sanitizers,
// output contexts, and repair guards over it; Compile turns the
// declaration into the prelude the flow filter consumes plus the
// context/variant/guard tables the rest of the pipeline queries.
//
// The paper's original trust environment — the two-point taint lattice
// with XSS/SQLi sinks — is one policy among several: the built-in
// "default" policy reproduces it byte-for-byte, while "xss-context"
// refines the lattice so the HTML output context (body vs. attribute
// vs. script) decides which sanitizer is adequate, and "ssrf" treats
// outbound request constructors (curl, file_get_contents, fopen) as the
// sensitive channels. Policies load from JSON (see LoadJSON), so new
// vulnerability classes are data, not code.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"webssari/internal/lattice"
	"webssari/internal/prelude"
)

// Policy is the declarative, JSON-serializable form of a security
// policy. All names are matched case-insensitively against PHP function
// names; lattice element names are case-sensitive.
type Policy struct {
	// Name identifies the policy; it is recorded in compile fingerprints
	// and travels with jobs over the wire.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Lattice lists the safety-type chain from bottom (most trusted) to
	// top (most dangerous). It must have at least two elements.
	Lattice []string `json:"lattice"`
	// Vars gives initial safety types of global variables (superglobals).
	Vars []Var `json:"vars,omitempty"`
	// Sources are untrusted input channels with their postcondition type.
	Sources []Source `json:"sources,omitempty"`
	// Sinks are sensitive output channels with their precondition bound.
	Sinks []Sink `json:"sinks,omitempty"`
	// Sanitizers are trust casts, optionally refined by constant
	// arguments (e.g. htmlspecialchars with ENT_QUOTES).
	Sanitizers []Sanitizer `json:"sanitizers,omitempty"`
	// Contexts declare output contexts for contextual sinks: when the
	// HTML state machine places a dynamic value in context Name, the sink
	// precondition bound becomes Bound and Guard names the preferred
	// repair routine.
	Contexts []Context `json:"contexts,omitempty"`
	// Guards are the repair routines the patcher may wrap fix points in,
	// in preference order; Type is the safety type of a guard's result.
	Guards []Guard `json:"guards,omitempty"`
}

// Var declares the initial safety type of a global variable (without the
// leading dollar sign).
type Var struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Source declares an untrusted input channel fi(X).
type Source struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Sink declares a sensitive output channel fo(X). Bound is the
// precondition level τr (arguments must satisfy t < τr); Args lists the
// 1-based checked argument positions (empty means all).
type Sink struct {
	Name  string `json:"name"`
	Bound string `json:"bound"`
	Args  []int  `json:"args,omitempty"`
	// Class labels the vulnerability class in reports (e.g.
	// "server-side request forgery (SSRF)"); empty falls back to the
	// classic by-sink-name classification.
	Class string `json:"class,omitempty"`
	// Contextual marks sinks whose bound depends on the surrounding HTML
	// output context (echo/print): the flow filter tracks the context
	// state machine across the sink's literal output and checks each
	// dynamic part against the bound of the context it lands in.
	Contextual bool `json:"contextual,omitempty"`
}

// Sanitizer declares a trust cast; Variants refine the result type when
// specific constant arguments appear at the call site.
type Sanitizer struct {
	Name     string    `json:"name"`
	Type     string    `json:"type"`
	Variants []Variant `json:"variants,omitempty"`
}

// Variant refines a sanitizer's result type when every constant in
// ArgConsts appears among the call's literal arguments — the mechanism
// behind distinguishing htmlspecialchars($x) from
// htmlspecialchars($x, ENT_QUOTES).
type Variant struct {
	ArgConsts []string `json:"arg_consts"`
	Type      string   `json:"type"`
}

// Context declares an output context of contextual sinks.
type Context struct {
	Name  string `json:"name"`
	Bound string `json:"bound"`
	// Guard is the context's preferred repair routine; it must also
	// appear in Policy.Guards.
	Guard string `json:"guard,omitempty"`
}

// Guard declares a repair routine the patcher may insert; Type is the
// safety type of the routine's result.
type Guard struct {
	Routine string `json:"routine"`
	Type    string `json:"type"`
}

// Compiled is a policy compiled against its lattice: the prelude the
// flow filter consumes plus lookup tables for contexts, sanitizer
// variants, sink classes, and guards.
type Compiled struct {
	decl *Policy
	pre  *prelude.Prelude
	lat  *lattice.Lattice

	sinks    map[string]Sink      // lowered name → declaration
	variants map[string][]variant // lowered name → compiled variants
	contexts map[string]compiledContext
	guards   []CompiledGuard

	fingerprint string
}

type variant struct {
	consts []string // lowered constant names, all required
	typ    lattice.Elem
}

type compiledContext struct {
	bound lattice.Elem
	guard string
}

// CompiledGuard is a repair routine with its resolved result type.
type CompiledGuard struct {
	Routine string
	Type    lattice.Elem
}

// Compile validates the declaration and builds the lookup tables. The
// returned Compiled owns a fresh prelude; callers may extend it (extra
// sinks, sanitizers) without affecting other compilations.
func (p *Policy) Compile() (*Compiled, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("policy: name is required")
	}
	if len(p.Lattice) < 2 {
		return nil, fmt.Errorf("policy %s: lattice needs at least two elements", p.Name)
	}
	seen := make(map[string]bool, len(p.Lattice))
	for _, n := range p.Lattice {
		if n == "" {
			return nil, fmt.Errorf("policy %s: empty lattice element name", p.Name)
		}
		if seen[n] {
			return nil, fmt.Errorf("policy %s: duplicate lattice element %q", p.Name, n)
		}
		seen[n] = true
	}
	lat, err := lattice.Chain(p.Lattice...)
	if err != nil {
		return nil, fmt.Errorf("policy %s: %w", p.Name, err)
	}
	elem := func(kind, owner, name string) (lattice.Elem, error) {
		e, ok := lat.Lookup(name)
		if !ok {
			return 0, fmt.Errorf("policy %s: %s %s references unknown lattice element %q",
				p.Name, kind, owner, name)
		}
		return e, nil
	}

	pre := prelude.New(lat)
	c := &Compiled{
		decl:     p,
		pre:      pre,
		lat:      lat,
		sinks:    make(map[string]Sink),
		variants: make(map[string][]variant),
		contexts: make(map[string]compiledContext),
	}
	for _, v := range p.Vars {
		t, err := elem("var", v.Name, v.Type)
		if err != nil {
			return nil, err
		}
		pre.SetVarType(v.Name, t)
	}
	for _, s := range p.Sources {
		t, err := elem("source", s.Name, s.Type)
		if err != nil {
			return nil, err
		}
		pre.AddSource(s.Name, t)
	}
	for _, s := range p.Sinks {
		b, err := elem("sink", s.Name, s.Bound)
		if err != nil {
			return nil, err
		}
		for _, a := range s.Args {
			if a < 1 {
				return nil, fmt.Errorf("policy %s: sink %s has non-positive argument position %d",
					p.Name, s.Name, a)
			}
		}
		pre.AddSink(s.Name, b, s.Args...)
		c.sinks[lower(s.Name)] = s
	}
	for _, s := range p.Sanitizers {
		t, err := elem("sanitizer", s.Name, s.Type)
		if err != nil {
			return nil, err
		}
		pre.AddSanitizer(s.Name, t)
		for _, v := range s.Variants {
			if len(v.ArgConsts) == 0 {
				return nil, fmt.Errorf("policy %s: sanitizer %s has a variant without arg_consts",
					p.Name, s.Name)
			}
			vt, err := elem("sanitizer variant", s.Name, v.Type)
			if err != nil {
				return nil, err
			}
			consts := make([]string, len(v.ArgConsts))
			for i, cn := range v.ArgConsts {
				consts[i] = lower(cn)
			}
			c.variants[lower(s.Name)] = append(c.variants[lower(s.Name)],
				variant{consts: consts, typ: vt})
		}
	}
	guardTypes := make(map[string]bool, len(p.Guards))
	for _, g := range p.Guards {
		if g.Routine == "" {
			return nil, fmt.Errorf("policy %s: guard with empty routine name", p.Name)
		}
		t, err := elem("guard", g.Routine, g.Type)
		if err != nil {
			return nil, err
		}
		c.guards = append(c.guards, CompiledGuard{Routine: g.Routine, Type: t})
		guardTypes[g.Routine] = true
	}
	for _, ctx := range p.Contexts {
		if ctx.Name == "" {
			return nil, fmt.Errorf("policy %s: context with empty name", p.Name)
		}
		b, err := elem("context", ctx.Name, ctx.Bound)
		if err != nil {
			return nil, err
		}
		if ctx.Guard != "" && !guardTypes[ctx.Guard] {
			return nil, fmt.Errorf("policy %s: context %s names undeclared guard %q",
				p.Name, ctx.Name, ctx.Guard)
		}
		if _, dup := c.contexts[ctx.Name]; dup {
			return nil, fmt.Errorf("policy %s: duplicate context %q", p.Name, ctx.Name)
		}
		c.contexts[ctx.Name] = compiledContext{bound: b, guard: ctx.Guard}
	}
	c.fingerprint = c.computeFingerprint()
	return c, nil
}

// wrapPrelude builds a Compiled directly around an existing prelude,
// with no contexts or variants. It is how the built-in default policy
// reuses the seed prelude verbatim (guaranteeing byte-identical
// behavior), and how a nil-policy run is represented internally.
func wrapPrelude(name, description string, pre *prelude.Prelude, guards []Guard) *Compiled {
	c := &Compiled{
		decl: &Policy{Name: name, Description: description},
		pre:  pre,
		lat:  pre.Lattice(),

		sinks:    map[string]Sink{},
		variants: map[string][]variant{},
		contexts: map[string]compiledContext{},
	}
	for _, g := range guards {
		if t, ok := c.lat.Lookup(g.Type); ok {
			c.guards = append(c.guards, CompiledGuard{Routine: g.Routine, Type: t})
		}
	}
	c.fingerprint = c.computeFingerprint()
	return c
}

// Name returns the policy's name.
func (c *Compiled) Name() string { return c.decl.Name }

// Description returns the policy's one-line description.
func (c *Compiled) Description() string { return c.decl.Description }

// Prelude returns the trust environment the policy compiled to. The
// prelude is owned by this Compiled; mutating it is allowed (the CLI's
// -sink/-sanitizer flags layer on top of a policy).
func (c *Compiled) Prelude() *prelude.Prelude { return c.pre }

// Lattice returns the policy's safety-type lattice.
func (c *Compiled) Lattice() *lattice.Lattice { return c.lat }

// SinkClass returns the declared vulnerability class of a sink, or ""
// when the policy declares none (callers then fall back to the classic
// by-name classification).
func (c *Compiled) SinkClass(fn string) string {
	return c.sinks[lower(fn)].Class
}

// Contextual reports whether a sink's bound depends on the HTML output
// context.
func (c *Compiled) Contextual(fn string) bool {
	return len(c.contexts) > 0 && c.sinks[lower(fn)].Contextual
}

// HasContexts reports whether the policy declares any output contexts.
func (c *Compiled) HasContexts() bool { return len(c.contexts) > 0 }

// ContextBound returns the precondition bound of an output context.
func (c *Compiled) ContextBound(name string) (lattice.Elem, bool) {
	ctx, ok := c.contexts[name]
	return ctx.bound, ok
}

// ContextGuard returns the preferred repair routine of an output
// context ("" when the context declares none).
func (c *Compiled) ContextGuard(name string) string {
	return c.contexts[name].guard
}

// Guards returns the policy's repair routines in preference order.
func (c *Compiled) Guards() []CompiledGuard {
	return append([]CompiledGuard(nil), c.guards...)
}

// SanitizerType resolves a sanitizer call's result type given the
// lowered constant-argument names present at the call site: the first
// declared variant whose required constants all appear wins, otherwise
// the base type. ok is false when the name is not a sanitizer at all.
func (c *Compiled) SanitizerType(fn string, argConsts []string) (lattice.Elem, bool) {
	san, ok := c.pre.SanitizerFor(fn)
	if !ok {
		return 0, false
	}
	have := make(map[string]bool, len(argConsts))
	for _, a := range argConsts {
		have[lower(a)] = true
	}
	for _, v := range c.variants[lower(fn)] {
		matched := true
		for _, req := range v.consts {
			if !have[req] {
				matched = false
				break
			}
		}
		if matched {
			return v.typ, true
		}
	}
	return san.Type, true
}

// SelectGuard chooses the repair routine for a fix point that must
// silence violations with the given (context, bound) pairs: the first
// guard — preferring the violated contexts' declared guards, then the
// policy's guard list in order — whose result type satisfies every
// violated precondition (type < bound). ok is false when no declared
// guard is adequate.
func (c *Compiled) SelectGuard(violations []Violation) (string, bool) {
	adequate := func(t lattice.Elem) bool {
		for _, v := range violations {
			if !c.lat.Lt(t, v.Bound) {
				return false
			}
		}
		return len(violations) > 0
	}
	typeOf := make(map[string]lattice.Elem, len(c.guards))
	for _, g := range c.guards {
		typeOf[g.Routine] = g.Type
	}
	// Context-preferred guards first, in the order the contexts were
	// violated (deterministic: callers pass source order).
	for _, v := range violations {
		if v.Context == "" {
			continue
		}
		g := c.contexts[v.Context].guard
		if g == "" {
			continue
		}
		if t, ok := typeOf[g]; ok && adequate(t) {
			return g, true
		}
	}
	for _, g := range c.guards {
		if adequate(g.Type) {
			return g.Routine, true
		}
	}
	return "", false
}

// Violation is one violated sink precondition a guard must satisfy:
// the output context it occurred in ("" for non-contextual sinks) and
// the precondition bound.
type Violation struct {
	Context string
	Bound   lattice.Elem
}

// Fingerprint deterministically renders everything that shapes
// verdicts under this policy: its name, the full prelude fingerprint,
// and the context/variant/class/guard tables. Two compiled policies
// with equal fingerprints produce identical analyses for the same
// source; compile caches and result stores key on it.
func (c *Compiled) Fingerprint() string { return c.fingerprint }

func (c *Compiled) computeFingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy:%s\n", c.decl.Name)
	b.WriteString(c.pre.Fingerprint())
	b.WriteString("\ncontexts:")
	for _, name := range sortedKeys(c.contexts) {
		ctx := c.contexts[name]
		fmt.Fprintf(&b, "%s=%d@%s;", name, ctx.bound, ctx.guard)
	}
	b.WriteString("\nvariants:")
	for _, name := range sortedKeys(c.variants) {
		for _, v := range c.variants[name] {
			fmt.Fprintf(&b, "%s[%s]=%d;", name, strings.Join(v.consts, "+"), v.typ)
		}
	}
	b.WriteString("\nclasses:")
	for _, name := range sortedKeys(c.sinks) {
		s := c.sinks[name]
		fmt.Fprintf(&b, "%s=%s,ctx=%t;", name, s.Class, s.Contextual)
	}
	b.WriteString("\nguards:")
	for _, g := range c.guards {
		fmt.Fprintf(&b, "%s=%d;", g.Routine, g.Type)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func lower(s string) string { return strings.ToLower(s) }
