package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrent hammers one counter, gauge high-water mark, and
// histogram from many goroutines; run under -race this doubles as the
// data-race check for the atomic hot paths.
func TestCountersConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("c_total")
			g := reg.Gauge("g")
			h := reg.Histogram("h_seconds", nil)
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(0.001)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("c_total").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := reg.Gauge("g").Value(); got != workers*per-1 {
		t.Errorf("gauge high-water = %d, want %d", got, workers*per-1)
	}
	h := reg.Histogram("h_seconds", nil)
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*0.001; got < want*0.99 || got > want*1.01 {
		t.Errorf("histogram sum = %g, want ≈ %g", got, want)
	}
}

// TestSpansConcurrent opens and closes spans from many goroutines on one
// tracer; each root span gets its own lane and no event is lost.
func TestSpansConcurrent(t *testing.T) {
	tel := New()
	ctx := WithTelemetry(context.Background(), tel)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c, root := StartRootSpan(ctx, "unit")
				_, child := StartSpan(c, "stage")
				child.SetArg("i", i)
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	events := tel.Tracer.Events()
	if len(events) != 2*workers*per {
		t.Fatalf("got %d events, want %d", len(events), 2*workers*per)
	}
	lanes := map[int64]bool{}
	for _, ev := range events {
		if ev.Name == "unit" {
			lanes[ev.TID] = true
		}
	}
	if len(lanes) != workers*per {
		t.Errorf("root spans used %d lanes, want %d (one per unit)", len(lanes), workers*per)
	}
}

// TestTraceGolden pins the exact Chrome trace-event JSON: a deterministic
// clock makes timestamps reproducible, so the full output is compared
// byte-for-byte.
func TestTraceGolden(t *testing.T) {
	base := time.Unix(1000, 0)
	var ticks int64
	now := func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * 100 * time.Microsecond)
	}
	tel := &Telemetry{Tracer: NewTracerWithClock(base, now)}
	ctx := WithTelemetry(context.Background(), tel)

	ctx, root := StartRootSpan(ctx, "verify_file", "file", "a.php") // t=100µs
	_, parse := StartSpan(ctx, "parse")                             // t=200µs
	parse.End()                                                     // t=300µs
	root.SetArg("vars", 3)
	root.End() // t=400µs

	var b strings.Builder
	if err := tel.Tracer.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
 "traceEvents": [
  {
   "name": "parse",
   "cat": "pipeline",
   "ph": "X",
   "ts": 200,
   "dur": 100,
   "pid": 1,
   "tid": 1
  },
  {
   "name": "verify_file",
   "cat": "pipeline",
   "ph": "X",
   "ts": 100,
   "dur": 300,
   "pid": 1,
   "tid": 1,
   "args": {
    "file": "a.php",
    "vars": 3
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if b.String() != want {
		t.Errorf("trace JSON mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestSpanLanes verifies the lane discipline: children inherit the
// parent's lane, root spans allocate fresh ones.
func TestSpanLanes(t *testing.T) {
	tel := New()
	ctx := WithTelemetry(context.Background(), tel)
	c1, r1 := StartRootSpan(ctx, "a")
	_, ch := StartSpan(c1, "a.child")
	ch.End()
	r1.End()
	_, r2 := StartRootSpan(ctx, "b")
	r2.End()
	events := tel.Tracer.Events()
	byName := map[string]Event{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	if byName["a"].TID != byName["a.child"].TID {
		t.Errorf("child lane %d != parent lane %d", byName["a.child"].TID, byName["a"].TID)
	}
	if byName["a"].TID == byName["b"].TID {
		t.Errorf("independent roots share lane %d", byName["a"].TID)
	}
}

// TestNilSafety exercises every entry point with no telemetry attached —
// each must be an inert no-op.
func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	got, sp := StartSpan(ctx, "x")
	if got != ctx || sp != nil {
		t.Errorf("StartSpan without telemetry: ctx changed or span non-nil")
	}
	sp.SetArg("k", 1)
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	Counter(ctx, "c").Inc()
	Gauge(ctx, "g").Set(3)
	Histogram(ctx, "h").Observe(1)
	var reg *Registry
	if reg.Counter("c") != nil || reg.Gauge("g") != nil || reg.Histogram("h", nil) != nil {
		t.Errorf("nil registry returned a live metric")
	}
	if s := reg.PrometheusText(); s != "" {
		t.Errorf("nil registry exposition = %q", s)
	}
	var tr *Tracer
	if tr.Events() != nil {
		t.Errorf("nil tracer has events")
	}
	WithTelemetry(ctx, nil) // must not panic and must be a no-op
	if From(WithTelemetry(ctx, nil)) != nil {
		t.Errorf("attaching nil telemetry produced a non-nil From")
	}
}

// TestDisabledFastPathAllocs pins the uninstrumented cost: resolving
// spans and metrics from a bare context must not allocate.
func TestDisabledFastPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "parse")
		sp.End()
		Counter(ctx, MetricFilesVerified).Inc()
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocates %.1f per op, want 0", allocs)
	}
}

// TestPrometheusText checks the exposition format: TYPE lines, labeled
// series, and histogram bucket expansion.
func TestPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricFilesVerified).Add(3)
	reg.Counter(Name(MetricDegraded, "cause", "deadline")).Inc()
	reg.Gauge(MetricCacheEntries).Set(7)
	reg.Histogram(Name(MetricStageSeconds, "stage", "parse"), nil).Observe(0.002)
	text := reg.PrometheusText()
	for _, want := range []string{
		"# TYPE webssari_files_verified_total counter",
		"webssari_files_verified_total 3",
		`webssari_degraded_total{cause="deadline"} 1`,
		"# TYPE webssari_compile_cache_entries gauge",
		"webssari_compile_cache_entries 7",
		"# TYPE webssari_stage_seconds histogram",
		`webssari_stage_seconds_bucket{stage="parse",le="+Inf"} 1`,
		`webssari_stage_seconds_sum{stage="parse"} 0.002`,
		`webssari_stage_seconds_count{stage="parse"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestServe spins the exposition server on an ephemeral port and scrapes
// /metrics and /debug/vars.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricSolverConflicts).Add(42)
	srv, err := Serve(":0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return body
	}
	if body := get("/metrics"); !strings.Contains(string(body), "webssari_solver_conflicts_total 42") {
		t.Errorf("/metrics missing solver counter:\n%s", body)
	}
	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	telv, ok := vars["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars has no telemetry section: %v", vars)
	}
	if telv[MetricSolverConflicts] != 42.0 {
		t.Errorf("telemetry snapshot conflicts = %v, want 42", telv[MetricSolverConflicts])
	}
}

// TestNameRoundTrip pins the label encoding both directions.
func TestNameRoundTrip(t *testing.T) {
	n := Name("base_seconds", "stage", "parse", "file", "a.php")
	if n != `base_seconds{stage="parse",file="a.php"}` {
		t.Errorf("Name = %q", n)
	}
	base, labels := splitName(n)
	if base != "base_seconds" || labels != `stage="parse",file="a.php"` {
		t.Errorf("splitName = %q, %q", base, labels)
	}
	if CauseLabel("deadline exceeded after 3s") != "deadline" {
		t.Errorf("CauseLabel did not strip detail")
	}
	if CauseLabel("") != "unknown" {
		t.Errorf("CauseLabel empty = %q", CauseLabel(""))
	}
}

// TestRunProfileMerge checks project-level aggregation of per-file
// profiles.
func TestRunProfileMerge(t *testing.T) {
	a := &RunProfile{CompileWallNS: 100, SolveWallNS: 10}
	a.AddStage("parse", 40*time.Nanosecond)
	a.AddDegraded("deadline")
	b := &RunProfile{CompileWallNS: 50, SolveWallNS: 5}
	b.AddStage("parse", 60*time.Nanosecond)
	var total RunProfile
	total.Merge(a)
	total.Merge(b)
	if total.CompileWallNS != 150 || total.SolveWallNS != 15 || total.Files != 2 {
		t.Errorf("merge walls/files = %d/%d/%d", total.CompileWallNS, total.SolveWallNS, total.Files)
	}
	if len(total.Stages) != 1 || total.Stages[0].WallNS != 100 || total.Stages[0].Count != 2 {
		t.Errorf("merge stages = %+v", total.Stages)
	}
	if total.Degraded["deadline"] != 1 {
		t.Errorf("merge degraded = %v", total.Degraded)
	}
	if s := total.String(); !strings.Contains(s, "over 2 file(s)") {
		t.Errorf("String() = %q", s)
	}
}
