package telemetry

// Structured logging for the daemonized binaries, built on log/slog and
// following the same nil-safety contract as the rest of the package: a
// nil *Logger accepts every call and does nothing, so library code logs
// unconditionally and pays nothing when the operator did not wire a
// logger.
//
// Two pieces:
//
//   - Logger: a thin wrapper over *slog.Logger selecting text or JSON
//     output at a level, with With() for attaching stable attributes
//     (job_id, trace_id, worker, file). Service and cluster code pass
//     job-scoped loggers through context (WithLogger/LoggerFrom) so a
//     coordinator dispatch log line automatically carries the job's
//     trace ID.
//
//   - FlightRecorder: a bounded in-memory ring of recent log events,
//     teed off the output handler regardless of its level, served as
//     JSON at /debug/events. When a job misbehaves in production the
//     recorder holds the last N events — including debug-level ones the
//     operator did not ask to print — without unbounded growth.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"
)

// DefaultFlightRecorderSize bounds the /debug/events ring when callers
// pass a non-positive capacity.
const DefaultFlightRecorderSize = 256

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Logger is a nil-safe structured logger. The zero of the type — a nil
// pointer — discards everything, so callers never guard log sites.
type Logger struct {
	s   *slog.Logger
	rec *FlightRecorder
}

// NewLogger builds a Logger writing text or JSON lines at or above
// level to w. A positive recorderSize additionally tees every event
// (all levels) into a FlightRecorder retrievable via Recorder.
func NewLogger(w io.Writer, level slog.Level, format string, recorderSize int) (*Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var out slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		out = slog.NewTextHandler(w, opts)
	case "json":
		out = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	var rec *FlightRecorder
	var h slog.Handler = out
	if recorderSize > 0 {
		rec = NewFlightRecorder(recorderSize)
		h = &teeHandler{out: out, rec: &recorderHandler{rec: rec}}
	}
	return &Logger{s: slog.New(h), rec: rec}, nil
}

// Recorder returns the flight recorder teed off this logger, or nil.
func (l *Logger) Recorder() *FlightRecorder {
	if l == nil {
		return nil
	}
	return l.rec
}

// With returns a Logger that includes the given key/value attributes on
// every event. Nil-safe: a nil receiver stays nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || l.s == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...), rec: l.rec}
}

func (l *Logger) log(level slog.Level, msg string, args ...any) {
	if l == nil || l.s == nil {
		return
	}
	l.s.Log(context.Background(), level, msg, args...)
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args...) }

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args...) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args...) }

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args...) }

// WithLogger returns a context carrying l, typically a job-scoped
// logger already annotated with job_id and trace_id. Attaching nil is a
// no-op.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the Logger carried by ctx, or nil. The result is
// safe to use either way.
func LoggerFrom(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(loggerKey).(*Logger)
	return l
}

// LogEvent is one recorded log record, shaped for JSON exposition.
type LogEvent struct {
	Time  time.Time      `json:"time"`
	Level string         `json:"level"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// FlightRecorder is a fixed-capacity ring of recent LogEvents. All
// methods are safe for concurrent use and nil-safe.
type FlightRecorder struct {
	mu       sync.Mutex
	buf      []LogEvent
	next     int // overwrite cursor once the ring is full
	recorded int64
	capacity int
}

// NewFlightRecorder returns a recorder holding the last `capacity`
// events (DefaultFlightRecorderSize when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderSize
	}
	return &FlightRecorder{capacity: capacity}
}

// Record appends ev, evicting the oldest event once full.
func (f *FlightRecorder) Record(ev LogEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.buf) < f.capacity {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
		f.next = (f.next + 1) % f.capacity
	}
	f.recorded++
	f.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []LogEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]LogEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Recorded returns the count of events ever recorded (retained or
// evicted).
func (f *FlightRecorder) Recorded() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recorded
}

// Handler serves the ring as JSON — the /debug/events endpoint.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := f.Events()
		var recorded int64
		capacity := 0
		if f != nil {
			recorded = f.Recorded()
			capacity = f.capacity
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(struct {
			Capacity int        `json:"capacity"`
			Recorded int64      `json:"recorded"`
			Dropped  int64      `json:"dropped"`
			Events   []LogEvent `json:"events"`
		}{capacity, recorded, recorded - int64(len(events)), events})
	})
}

// teeHandler forwards records to the output handler at its configured
// level while unconditionally feeding the flight recorder, so the ring
// keeps debug context even when stderr prints info and above.
type teeHandler struct {
	out slog.Handler
	rec *recorderHandler
}

func (t *teeHandler) Enabled(context.Context, slog.Level) bool { return true }

func (t *teeHandler) Handle(ctx context.Context, r slog.Record) error {
	_ = t.rec.Handle(ctx, r)
	if t.out.Enabled(ctx, r.Level) {
		return t.out.Handle(ctx, r)
	}
	return nil
}

func (t *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &teeHandler{out: t.out.WithAttrs(attrs), rec: t.rec.withAttrs(attrs)}
}

func (t *teeHandler) WithGroup(name string) slog.Handler {
	return &teeHandler{out: t.out.WithGroup(name), rec: t.rec.withGroup(name)}
}

// recorderHandler adapts a FlightRecorder to slog.Handler, flattening
// groups into dotted key prefixes.
type recorderHandler struct {
	rec    *FlightRecorder
	attrs  []slog.Attr
	prefix string
}

func (h *recorderHandler) Handle(_ context.Context, r slog.Record) error {
	ev := LogEvent{Time: r.Time, Level: r.Level.String(), Msg: r.Message}
	n := len(h.attrs) + r.NumAttrs()
	if n > 0 {
		ev.Attrs = make(map[string]any, n)
		for _, a := range h.attrs { // keys were prefixed in withAttrs
			ev.Attrs[a.Key] = a.Value.Resolve().Any()
		}
		r.Attrs(func(a slog.Attr) bool {
			ev.Attrs[h.prefix+a.Key] = a.Value.Resolve().Any()
			return true
		})
	}
	h.rec.Record(ev)
	return nil
}

func (h *recorderHandler) withAttrs(attrs []slog.Attr) *recorderHandler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	for _, a := range attrs {
		merged = append(merged, slog.Attr{Key: h.prefix + a.Key, Value: a.Value})
	}
	return &recorderHandler{rec: h.rec, attrs: merged, prefix: h.prefix}
}

func (h *recorderHandler) withGroup(name string) *recorderHandler {
	return &recorderHandler{rec: h.rec, attrs: h.attrs, prefix: h.prefix + name + "."}
}
