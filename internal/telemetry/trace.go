package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one Chrome trace-event ("Trace Event Format", complete-event
// phase "X"): a named interval on a (pid, tid) lane with microsecond
// timestamps relative to the tracer's start. Files written by
// Tracer.WriteTo load directly into chrome://tracing and Perfetto.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	S    string         `json:"s,omitempty"` // instant-event scope ("t" = thread)
	TS   int64          `json:"ts"`          // microseconds since tracer start
	Dur  int64          `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the wire form of a tracer's output: the Chrome trace-event
// document plus the tracer's epoch as a Unix-microsecond timestamp so a
// receiving process can rebase the (relative) event timestamps onto its
// own epoch when stitching (Tracer.Ingest). This is what
// GET /v1/jobs/{id}/trace serves.
type TraceDoc struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
	// BaseUnixMicro is the producing tracer's epoch (Unix µs).
	BaseUnixMicro int64 `json:"baseUnixMicro,omitempty"`
	// DroppedEvents counts events discarded by the tracer's event cap.
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
}

// Tracer collects spans into an in-memory event list. It is safe for
// concurrent use; span hierarchy is expressed through lanes (trace-event
// tids): child spans inherit their parent's lane, so nested intervals on
// one lane render as a flame graph, and independent units of work (one
// per verified file) each get a fresh lane.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	dropped int64
	limit   int   // max retained events; 0 = unbounded
	procs   int64 // extra pids handed out by Ingest (local events use pid 1)
	base    time.Time
	now     func() time.Time
	lanes   atomic.Int64
}

// NewTracer returns a tracer with its epoch set to now.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now(), now: time.Now}
}

// NewTracerWithClock returns a tracer reading time from the given clock —
// deterministic trace output for tests.
func NewTracerWithClock(base time.Time, now func() time.Time) *Tracer {
	return &Tracer{base: base, now: now}
}

// NextLane allocates a fresh lane (trace tid). Lane 0 is the root lane.
func (t *Tracer) NextLane() int64 {
	if t == nil {
		return 0
	}
	return t.lanes.Add(1)
}

// SetLimit caps the number of retained events; once reached, further
// events are counted in DroppedEvents instead of stored. Long-lived
// per-job tracers (watch jobs) use this to stay bounded. 0 removes the
// cap.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// add appends one complete event.
func (t *Tracer) add(ev Event) {
	t.mu.Lock()
	t.appendLocked(ev)
	t.mu.Unlock()
}

func (t *Tracer) appendLocked(ev Event) {
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns a copy of the collected events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON writes the collected events as a Chrome trace-event JSON
// object: {"traceEvents": [...], "displayTimeUnit": "ms"}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}{events, "ms"})
}

// Doc snapshots the tracer as a TraceDoc suitable for shipping across
// a process boundary and re-ingesting.
func (t *Tracer) Doc() TraceDoc {
	doc := TraceDoc{TraceEvents: []Event{}, DisplayTimeUnit: "ms"}
	if t == nil {
		return doc
	}
	t.mu.Lock()
	doc.TraceEvents = append(doc.TraceEvents, t.events...)
	doc.DroppedEvents = t.dropped
	doc.BaseUnixMicro = t.base.UnixMicro()
	t.mu.Unlock()
	return doc
}

// WriteDoc writes the TraceDoc snapshot as indented JSON. The document
// is a superset of WriteJSON's output and still loads directly into
// Perfetto / chrome://tracing (extra top-level keys are ignored there).
func (t *Tracer) WriteDoc(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Doc())
}

// Ingest stitches another process's trace into this tracer: the
// document's events are assigned a fresh trace pid (local spans live on
// pid 1), labeled with a process_name metadata event so trace viewers
// title the lane group, and rebased from the remote tracer's epoch onto
// this tracer's. Lanes (tids) within the ingested document are
// preserved, so the remote flame graph structure survives stitching.
// The coordinator uses this to assemble one job-wide trace from worker
// span exports.
func (t *Tracer) Ingest(doc TraceDoc, process string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs++
	pid := 1 + t.procs
	offset := doc.BaseUnixMicro - t.base.UnixMicro()
	t.appendLocked(Event{
		Name: "process_name",
		Ph:   "M",
		PID:  pid,
		Args: map[string]any{"name": process},
	})
	for _, ev := range doc.TraceEvents {
		ev.PID = pid
		if ev.Ph != "M" { // metadata events carry no timestamp
			ev.TS += offset
		}
		t.appendLocked(ev)
	}
	t.dropped += doc.DroppedEvents
}

// Instant records a zero-duration annotation (trace-event phase "i") on
// the current span's lane — redispatches, degradations, and other
// point-in-time facts that should be visible on the timeline. No-op
// without telemetry.
func Instant(ctx context.Context, name string, kv ...any) {
	tel := From(ctx)
	if tel == nil || tel.Tracer == nil {
		return
	}
	tr := tel.Tracer
	var lane int64
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		lane = parent.lane
	}
	var args map[string]any
	if len(kv) >= 2 {
		args = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			if k, ok := kv[i].(string); ok {
				args[k] = kv[i+1]
			}
		}
	}
	if tc := TraceContextFrom(ctx); tc.Valid() {
		if args == nil {
			args = make(map[string]any, 1)
		}
		args["trace_id"] = tc.TraceID
	}
	tr.add(Event{
		Name: name,
		Cat:  "pipeline",
		Ph:   "i",
		S:    "t",
		TS:   tr.now().Sub(tr.base).Microseconds(),
		PID:  1,
		TID:  lane,
		Args: args,
	})
}

// Span is one timed interval of the pipeline. A nil *Span (what
// StartSpan returns when no telemetry is attached) accepts every method
// as a no-op.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	lane  int64
	start time.Time

	mu    sync.Mutex
	args  map[string]any
	ended bool
}

// StartSpan begins a span named name on the current lane (inherited from
// the enclosing span, or the root lane) and returns a derived context
// carrying it. When ctx has no Telemetry or no Tracer, it returns ctx
// unchanged and a nil span.
func StartSpan(ctx context.Context, name string, kv ...any) (context.Context, *Span) {
	return startSpan(ctx, name, false, kv)
}

// StartRootSpan begins a span on a fresh lane — one lane per independent
// unit of work (e.g. per verified file) keeps concurrent units from
// interleaving on the trace viewer's timeline.
func StartRootSpan(ctx context.Context, name string, kv ...any) (context.Context, *Span) {
	return startSpan(ctx, name, true, kv)
}

func startSpan(ctx context.Context, name string, newLane bool, kv []any) (context.Context, *Span) {
	tel := From(ctx)
	if tel == nil || tel.Tracer == nil {
		return ctx, nil
	}
	tr := tel.Tracer
	var lane int64
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil && !newLane {
		lane = parent.lane
	} else if newLane {
		lane = tr.NextLane()
	}
	sp := &Span{tr: tr, name: name, cat: "pipeline", lane: lane, start: tr.now()}
	for i := 0; i+1 < len(kv); i += 2 {
		if k, ok := kv[i].(string); ok {
			sp.setArg(k, kv[i+1])
		}
	}
	// Stamp the distributed trace ID so every span of a propagated trace
	// is greppable by it. This runs after the nil-telemetry early return,
	// keeping the disabled fast path allocation-free.
	if tc := TraceContextFrom(ctx); tc.Valid() {
		sp.setArg("trace_id", tc.TraceID)
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SetArg attaches a key/value argument rendered in the trace viewer's
// detail pane. Nil-safe and concurrency-safe.
func (s *Span) SetArg(key string, value any) {
	if s == nil {
		return
	}
	s.setArg(key, value)
}

func (s *Span) setArg(key string, value any) {
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
	s.mu.Unlock()
}

// End completes the span, emitting its trace event. Safe to call more
// than once (only the first takes effect) and on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tr.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()
	s.tr.add(Event{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   s.start.Sub(s.tr.base).Microseconds(),
		Dur:  end.Sub(s.start).Microseconds(),
		PID:  1,
		TID:  s.lane,
		Args: args,
	})
}

// Duration returns the span's elapsed time so far (0 on nil) — used by
// call sites that both trace and record a histogram sample.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.tr.now().Sub(s.start)
}
