package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SolverProfile aggregates CDCL search-effort counters (the fields of
// sat.Stats, duplicated here so the telemetry layer stays standalone).
type SolverProfile struct {
	Decisions      uint64 `json:"decisions"`
	Propagations   uint64 `json:"propagations"`
	Conflicts      uint64 `json:"conflicts"`
	Restarts       uint64 `json:"restarts"`
	LearntClauses  uint64 `json:"learnt_clauses"`
	DeletedClauses uint64 `json:"deleted_clauses"`
	MinimizedLits  uint64 `json:"minimized_lits"`
	MaxDepth       int    `json:"max_depth"`
}

// Add accumulates o into s (MaxDepth takes the maximum).
func (s *SolverProfile) Add(o SolverProfile) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.LearntClauses += o.LearntClauses
	s.DeletedClauses += o.DeletedClauses
	s.MinimizedLits += o.MinimizedLits
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// AssertProfile is the per-assertion slice of a RunProfile: encoding
// size, stage wall time, and the solver's search effort — the
// observability counterpart of the per-assertion lines in the xbmc CLI.
type AssertProfile struct {
	Index           int    `json:"index"`
	Sink            string `json:"sink,omitempty"`
	Site            string `json:"site,omitempty"`
	Vars            int    `json:"vars"`
	Clauses         int    `json:"clauses"`
	Counterexamples int    `json:"counterexamples"`
	Unknown         bool   `json:"unknown,omitempty"`
	// Reused is set when the assertion's check fingerprint matched a
	// prior SAFE verdict and the SAT search was skipped entirely.
	Reused   bool          `json:"reused,omitempty"`
	Cause    string        `json:"cause,omitempty"`
	EncodeNS int64         `json:"encode_ns"`
	SearchNS int64         `json:"search_ns"`
	Solver   SolverProfile `json:"solver"`
}

// StageProfile is the summed wall time of one pipeline stage.
type StageProfile struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	Count  int64  `json:"count"`
}

// PoolProfile snapshots the shared worker pool at the end of a run.
type PoolProfile struct {
	Capacity         int   `json:"capacity"`
	Acquires         int64 `json:"acquires"`
	TryAcquireHits   int64 `json:"try_acquire_hits"`
	TryAcquireMisses int64 `json:"try_acquire_misses"`
	// MaxInUse is the in-use high-water mark; MaxInUse/Capacity is the
	// peak utilization.
	MaxInUse int64 `json:"max_in_use"`
	// MaxWaiting is the queue-depth high-water mark: the most goroutines
	// ever blocked in Acquire at once.
	MaxWaiting int64 `json:"max_waiting"`
}

// Utilization returns the peak pool utilization in [0, 1].
func (p *PoolProfile) Utilization() float64 {
	if p == nil || p.Capacity == 0 {
		return 0
	}
	return float64(p.MaxInUse) / float64(p.Capacity)
}

// CacheProfile reports compile-cache effectiveness over a run.
type CacheProfile struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Stale     int64 `json:"stale"`
	Entries   int   `json:"entries"`
}

// IncrementalProfile summarizes one incremental VerifyDir plan: how the
// delta planner partitioned the project snapshot. Planned + Skipped
// equals the number of entry files the run reported on.
type IncrementalProfile struct {
	// Planned counts files scheduled for (re-)verification: changed
	// files, their reverse-dependency closure, files new to the graph,
	// and files whose remembered store entry had been evicted.
	Planned int `json:"planned"`
	// Skipped counts files served from the result store by remembered
	// key, without re-hashing or re-verifying anything.
	Skipped int `json:"skipped"`
	// Invalidated counts previously known files among Planned — the
	// actual delta, excluding files the graph had never seen.
	Invalidated int `json:"invalidated"`
	// Full is set when no usable dependency graph existed (first run,
	// corruption, config change) and the whole project was verified.
	Full bool `json:"full,omitempty"`
	// ReusedAsserts counts assertions inside re-verified files that were
	// served by check-fingerprint match instead of a SAT search —
	// the function-level delta within the file-level delta.
	ReusedAsserts int `json:"reused_asserts,omitempty"`
}

// ClusterProfile summarizes how a clustered project run placed its
// files. Like every other profile section it is informational only —
// stripped before byte-identical report comparisons — because placement
// never changes a verdict, only where it was computed.
type ClusterProfile struct {
	// Workers is the number of live workers when the run started.
	Workers int `json:"workers"`
	// Remote counts files verified on a worker daemon; Local counts
	// files executed in-process (degradation or deterministic replay).
	Remote int `json:"remote_files"`
	Local  int `json:"local_files,omitempty"`
	// Redispatches counts files that were re-sent to another worker
	// after their first-choice worker failed or was evicted mid-job.
	Redispatches int `json:"redispatches,omitempty"`
	// Replayed counts files re-executed locally to reproduce a
	// deterministic remote failure (a worker reported the job itself
	// failed, so the error is a property of the input, not the worker).
	Replayed int `json:"replayed,omitempty"`
	// Degraded is set when at least one file fell back to local
	// execution because no worker could take it (zero live workers, or
	// the retry budget ran out everywhere) — the run completed, but not
	// at cluster capacity.
	Degraded bool `json:"degraded,omitempty"`
}

// WarmStartProfile reports one shared-mode run's learnt-clause reuse:
// whether a persisted blob was found and bound to the run's exact CNF
// (Hit), and how many clauses moved in each direction. Clause counts are
// informational only — warm starting never changes a verdict.
type WarmStartProfile struct {
	// Attempted is set when a persisted blob existed for the key.
	Attempted bool `json:"attempted,omitempty"`
	// Hit is set when the blob decoded and its CNF hash matched this
	// run's formula; anything else (corruption, schema drift, changed
	// source) degrades to a cold start.
	Hit bool `json:"hit,omitempty"`
	// ImportedClauses / ExportedClauses count learnt clauses loaded from
	// and persisted to the store.
	ImportedClauses int `json:"imported_clauses,omitempty"`
	ExportedClauses int `json:"exported_clauses,omitempty"`
}

// Add accumulates o into w (project aggregation).
func (w *WarmStartProfile) Add(o WarmStartProfile) {
	w.Attempted = w.Attempted || o.Attempted
	w.Hit = w.Hit || o.Hit
	w.ImportedClauses += o.ImportedClauses
	w.ExportedClauses += o.ExportedClauses
}

// PortfolioProfile reports portfolio-mode racing: how many assertions
// escalated past the probe into a race, and which lane answered first.
// The lane key "-1" is the deterministic lane-0 fallback taken when no
// lane produced a canonical answer.
type PortfolioProfile struct {
	Races      int            `json:"races,omitempty"`
	WinsByLane map[string]int `json:"wins_by_lane,omitempty"`
}

// Add accumulates o into p (project aggregation).
func (p *PortfolioProfile) Add(o PortfolioProfile) {
	p.Races += o.Races
	for lane, n := range o.WinsByLane {
		if p.WinsByLane == nil {
			p.WinsByLane = make(map[string]int)
		}
		p.WinsByLane[lane] += n
	}
}

// RunProfile is the exportable summary of one verification run — per
// file (attached to Report) or per project (attached to ProjectReport,
// where the per-file profiles are aggregated and the pool/cache sections
// are populated). It marshals under the stable "profile" JSON key so
// corpus scripts can consume timings; note its wall-clock fields are the
// one intentionally nondeterministic part of a report.
type RunProfile struct {
	// CompileWallNS and SolveWallNS are the wall times of the two engine
	// stages (front end / SAT back end) in nanoseconds.
	CompileWallNS int64 `json:"compile_wall_ns"`
	SolveWallNS   int64 `json:"solve_wall_ns"`
	// CacheHit is set on per-file profiles served from the compile cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// StoreHit is set on per-file profiles served whole from the on-disk
	// result store (tier 2): nothing was compiled or solved, so such a
	// profile has no stage or solver data.
	StoreHit bool `json:"store_hit,omitempty"`
	// Stages holds finer-grained per-stage wall times (parse, lower,
	// flow, rename, constraints, encode, search), sorted by name.
	Stages []StageProfile `json:"stages,omitempty"`
	// Solver sums search effort across all assertions of the run.
	Solver SolverProfile `json:"solver"`
	// Assertions is the per-assertion breakdown (per-file profiles only).
	Assertions []AssertProfile `json:"assertions,omitempty"`
	// Degraded counts degradation causes (deadline, conflict budget, CNF
	// ceiling, …) across the run.
	Degraded map[string]int64 `json:"degraded,omitempty"`
	// ReusedAsserts counts assertions whose SAFE verdict was carried over
	// by check-fingerprint match (no SAT search ran).
	ReusedAsserts int `json:"reused_asserts,omitempty"`
	// Files counts aggregated per-file profiles (project profiles only).
	Files int `json:"files,omitempty"`
	// Cache and Pool are populated on project profiles.
	Cache *CacheProfile `json:"cache,omitempty"`
	Pool  *PoolProfile  `json:"pool,omitempty"`
	// Incremental is populated on project profiles of incremental runs
	// (WithIncremental): the delta planner's partition of the snapshot.
	// Like the rest of the profile it is stripped before byte-identical
	// report comparisons.
	Incremental *IncrementalProfile `json:"incremental,omitempty"`
	// Cluster is populated on project profiles of clustered runs: how
	// the coordinator placed the files across workers.
	Cluster *ClusterProfile `json:"cluster,omitempty"`
	// SolverMode names the solver dispatch mode the run used
	// ("per-assert", "shared", "portfolio"); omitted for the default
	// per-assert mode so existing profile consumers see no change.
	SolverMode string `json:"solver_mode,omitempty"`
	// WarmStart is populated on shared-mode runs that attempted
	// learnt-clause reuse; Portfolio on portfolio-mode runs that raced
	// at least one assertion. Both are stripped (with the whole profile)
	// before byte-identical report comparisons — solver modes never
	// change verdicts, only where the time went.
	WarmStart *WarmStartProfile `json:"warm_start,omitempty"`
	Portfolio *PortfolioProfile `json:"portfolio,omitempty"`
}

// CompileWall returns the front-end wall time as a Duration.
func (p *RunProfile) CompileWall() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.CompileWallNS)
}

// SolveWall returns the back-end wall time as a Duration.
func (p *RunProfile) SolveWall() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.SolveWallNS)
}

// AddStage accumulates d into the named stage.
func (p *RunProfile) AddStage(name string, d time.Duration) {
	p.addStage(name, d.Nanoseconds(), 1)
}

func (p *RunProfile) addStage(name string, wallNS, count int64) {
	for i := range p.Stages {
		if p.Stages[i].Name == name {
			p.Stages[i].WallNS += wallNS
			p.Stages[i].Count += count
			return
		}
	}
	p.Stages = append(p.Stages, StageProfile{Name: name, WallNS: wallNS, Count: count})
	sort.Slice(p.Stages, func(i, j int) bool { return p.Stages[i].Name < p.Stages[j].Name })
}

// CauseLabel reduces a degradation cause to its base constant — some
// causes (the CNF ceiling) carry a parenthesized detail suffix that
// would explode label cardinality and Degraded-map keys.
func CauseLabel(cause string) string {
	if cause == "" {
		return "unknown"
	}
	if i := strings.IndexByte(cause, ' '); i > 0 {
		return cause[:i]
	}
	return cause
}

// AddDegraded counts one degradation under the given cause.
func (p *RunProfile) AddDegraded(cause string) {
	if cause == "" {
		return
	}
	if p.Degraded == nil {
		p.Degraded = make(map[string]int64)
	}
	p.Degraded[cause]++
}

// Merge folds a per-file profile o into project profile p: wall times,
// stages, solver effort, and degradation counts accumulate; per-file
// fields (CacheHit, Assertions) are deliberately not carried over.
func (p *RunProfile) Merge(o *RunProfile) {
	if o == nil {
		return
	}
	p.CompileWallNS += o.CompileWallNS
	p.SolveWallNS += o.SolveWallNS
	p.Files++
	for _, st := range o.Stages {
		p.addStage(st.Name, st.WallNS, st.Count)
	}
	p.Solver.Add(o.Solver)
	p.ReusedAsserts += o.ReusedAsserts
	for cause, n := range o.Degraded {
		if p.Degraded == nil {
			p.Degraded = make(map[string]int64)
		}
		p.Degraded[cause] += n
	}
	if o.WarmStart != nil {
		if p.WarmStart == nil {
			p.WarmStart = &WarmStartProfile{}
		}
		p.WarmStart.Add(*o.WarmStart)
	}
	if o.Portfolio != nil {
		if p.Portfolio == nil {
			p.Portfolio = &PortfolioProfile{}
		}
		p.Portfolio.Add(*o.Portfolio)
	}
}

// String renders a compact single-audience summary — what the CLIs print
// under -v.
func (p *RunProfile) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "compile %v, solve %v", p.CompileWall().Round(time.Microsecond), p.SolveWall().Round(time.Microsecond))
	if p.Files > 0 {
		fmt.Fprintf(&b, " over %d file(s)", p.Files)
	}
	if p.CacheHit {
		b.WriteString(" (compile cached)")
	}
	if p.StoreHit {
		b.WriteString(" (served from result store)")
	}
	s := p.Solver
	fmt.Fprintf(&b, "; solver: %d decisions, %d propagations, %d conflicts, %d restarts, %d learnt",
		s.Decisions, s.Propagations, s.Conflicts, s.Restarts, s.LearntClauses)
	if p.SolverMode != "" {
		fmt.Fprintf(&b, " (%s mode)", p.SolverMode)
	}
	if ws := p.WarmStart; ws != nil {
		state := "miss"
		switch {
		case ws.Hit:
			state = "hit"
		case !ws.Attempted:
			state = "cold"
		}
		fmt.Fprintf(&b, "; warm start: %s, %d imported / %d exported clause(s)",
			state, ws.ImportedClauses, ws.ExportedClauses)
	}
	if pf := p.Portfolio; pf != nil && pf.Races > 0 {
		lanes := make([]string, 0, len(pf.WinsByLane))
		for lane := range pf.WinsByLane {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		fmt.Fprintf(&b, "; portfolio: %d race(s)", pf.Races)
		for _, lane := range lanes {
			fmt.Fprintf(&b, " lane%s×%d", lane, pf.WinsByLane[lane])
		}
	}
	if p.Cache != nil {
		fmt.Fprintf(&b, "; cache: %d hit(s) / %d miss(es), %d evicted, %d stale",
			p.Cache.Hits, p.Cache.Misses, p.Cache.Evictions, p.Cache.Stale)
	}
	if p.Pool != nil {
		fmt.Fprintf(&b, "; pool: %d/%d peak workers, %d peak waiters",
			p.Pool.MaxInUse, p.Pool.Capacity, p.Pool.MaxWaiting)
	}
	if inc := p.Incremental; inc != nil {
		fmt.Fprintf(&b, "; incremental: planned %d, skipped %d, invalidated %d",
			inc.Planned, inc.Skipped, inc.Invalidated)
		if inc.ReusedAsserts > 0 {
			fmt.Fprintf(&b, ", %d assert(s) reused", inc.ReusedAsserts)
		}
		if inc.Full {
			b.WriteString(" (full run)")
		}
	}
	if cl := p.Cluster; cl != nil {
		fmt.Fprintf(&b, "; cluster: %d worker(s), %d remote / %d local file(s)",
			cl.Workers, cl.Remote, cl.Local)
		if cl.Redispatches > 0 {
			fmt.Fprintf(&b, ", %d redispatched", cl.Redispatches)
		}
		if cl.Replayed > 0 {
			fmt.Fprintf(&b, ", %d replayed", cl.Replayed)
		}
		if cl.Degraded {
			b.WriteString(" (degraded)")
		}
	}
	for _, st := range p.Stages {
		fmt.Fprintf(&b, "\n  stage %-12s %12v  (×%d)", st.Name,
			time.Duration(st.WallNS).Round(time.Microsecond), st.Count)
	}
	if len(p.Degraded) > 0 {
		causes := make([]string, 0, len(p.Degraded))
		for c := range p.Degraded {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		b.WriteString("\n  degraded:")
		for _, c := range causes {
			fmt.Fprintf(&b, " %s×%d", c, p.Degraded[c])
		}
	}
	return b.String()
}
