package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock yields deterministic timestamps for tracer tests.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestIngestStitchesWorkerTrace pins the trace assembler: a worker
// tracer's document lands in the coordinator tracer under a fresh pid
// with a process_name label, lanes preserved, and timestamps rebased
// from the worker's epoch onto the coordinator's.
func TestIngestStitchesWorkerTrace(t *testing.T) {
	coordBase := time.Unix(1000, 0)
	cClock := &fakeClock{t: coordBase}
	coord := NewTracerWithClock(coordBase, cClock.now)

	// The worker's epoch is 2s after the coordinator's: a worker event at
	// relative ts=5µs happened at coordinator-relative ts=2_000_005µs.
	workerBase := coordBase.Add(2 * time.Second)
	wClock := &fakeClock{t: workerBase}
	worker := NewTracerWithClock(workerBase, wClock.now)

	// Coordinator job span on lane 0.
	tel := &Telemetry{Tracer: coord}
	ctx := WithTelemetry(context.Background(), tel)
	_, job := StartRootSpan(ctx, "job")
	cClock.advance(5 * time.Second)

	// Worker records two spans on distinct lanes plus a metadata event.
	wtel := &Telemetry{Tracer: worker}
	wctx := WithTelemetry(context.Background(), wtel)
	_, w1 := StartRootSpan(wctx, "verify_file")
	wClock.advance(5 * time.Microsecond)
	w1.End()
	_, w2 := StartRootSpan(wctx, "verify_file")
	wClock.advance(3 * time.Microsecond)
	w2.End()

	coord.Ingest(worker.Doc(), "worker w-1 (http://w1)")
	job.End()

	events := coord.Events()
	// 1 process_name + 2 worker spans + 1 coordinator span.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}

	meta := events[0]
	if meta.Ph != "M" || meta.Name != "process_name" {
		t.Fatalf("first ingested event = %+v, want process_name metadata", meta)
	}
	if meta.Args["name"] != "worker w-1 (http://w1)" {
		t.Fatalf("process_name args = %v", meta.Args)
	}
	workerPID := meta.PID
	if workerPID == 1 {
		t.Fatal("ingested events share the local pid 1; want a fresh pid")
	}

	sp1, sp2 := events[1], events[2]
	if sp1.PID != workerPID || sp2.PID != workerPID {
		t.Fatalf("worker spans not re-pidded: %+v %+v", sp1, sp2)
	}
	// Lanes within the worker document survive stitching.
	if sp1.TID == sp2.TID {
		t.Fatalf("worker lanes collapsed: tid %d == %d", sp1.TID, sp2.TID)
	}
	// Worker span 1 started at worker-relative 0 = coordinator-relative 2s.
	if sp1.TS != 2_000_000 {
		t.Fatalf("rebased ts = %d, want 2000000", sp1.TS)
	}
	if sp2.TS != 2_000_005 {
		t.Fatalf("second rebased ts = %d, want 2000005", sp2.TS)
	}
	if sp1.Dur != 5 || sp2.Dur != 3 {
		t.Fatalf("durations survived wrong: %d, %d", sp1.Dur, sp2.Dur)
	}

	root := events[3]
	if root.Name != "job" || root.PID != 1 {
		t.Fatalf("coordinator span = %+v, want job on pid 1", root)
	}
	if root.Dur != 5_000_000 {
		t.Fatalf("coordinator span dur = %d, want 5000000", root.Dur)
	}
}

func TestIngestAccumulatesDroppedAndPids(t *testing.T) {
	base := time.Unix(0, 0)
	clock := &fakeClock{t: base}
	coord := NewTracerWithClock(base, clock.now)

	w1 := NewTracerWithClock(base, clock.now)
	w1.add(Event{Name: "a", Ph: "X", PID: 1})
	d1 := w1.Doc()
	d1.DroppedEvents = 7

	w2 := NewTracerWithClock(base, clock.now)
	w2.add(Event{Name: "b", Ph: "X", PID: 1})

	coord.Ingest(d1, "worker one")
	coord.Ingest(w2.Doc(), "worker two")

	doc := coord.Doc()
	if doc.DroppedEvents != 7 {
		t.Fatalf("DroppedEvents = %d, want 7 carried over", doc.DroppedEvents)
	}
	pids := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	// Two ingested docs → two distinct non-local pids.
	if len(pids) != 2 || pids[1] {
		t.Fatalf("pids = %v, want two fresh pids and none on 1", pids)
	}
}

// TestWriteDocRoundTrips pins the wire shape served by
// GET /v1/jobs/{id}/trace and consumed by client.JobTrace.
func TestWriteDocRoundTrips(t *testing.T) {
	base := time.Unix(42, 0)
	clock := &fakeClock{t: base}
	tr := NewTracerWithClock(base, clock.now)
	tel := &Telemetry{Tracer: tr}
	ctx := WithTelemetry(context.Background(), tel)
	_, sp := StartRootSpan(ctx, "verify_file", "file", "a.php")
	clock.advance(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteDoc(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteDoc output: %v\n%s", err, buf.String())
	}
	if doc.BaseUnixMicro != base.UnixMicro() {
		t.Fatalf("BaseUnixMicro = %d, want %d", doc.BaseUnixMicro, base.UnixMicro())
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Name != "verify_file" {
		t.Fatalf("events = %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Dur != 1000 {
		t.Fatalf("dur = %d, want 1000", doc.TraceEvents[0].Dur)
	}
}
