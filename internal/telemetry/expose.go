package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// writePrometheus renders every series into b in Prometheus text
// exposition format (version 0.0.4), sorted by name for deterministic
// scrapes. Label sets encoded by Name() are emitted as real Prometheus
// labels; histograms expand into _bucket/_sum/_count series with the
// standard cumulative le buckets.
func (r *Registry) writePrometheus(b *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counts := make(map[string]int64, len(r.counts))
	for name, c := range r.counts {
		counts[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histSnap struct {
		bounds []float64
		cumul  []int64
		sum    float64
		count  int64
	}
	hists := make(map[string]histSnap, len(r.hists))
	for name, h := range r.hists {
		snap := histSnap{bounds: h.bounds, sum: h.Sum(), count: h.Count()}
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			snap.cumul = append(snap.cumul, cum)
		}
		hists[name] = snap
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		base, _ := splitName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(b, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedKeys(counts) {
		writeType(name, "counter")
		fmt.Fprintf(b, "%s %d\n", name, counts[name])
	}
	for _, name := range sortedKeys(gauges) {
		writeType(name, "gauge")
		fmt.Fprintf(b, "%s %d\n", name, gauges[name])
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := hists[name]
		base, labels := splitName(name)
		writeType(name, "histogram")
		for i, bound := range h.bounds {
			fmt.Fprintf(b, "%s %d\n",
				seriesName(base+"_bucket", joinLabels(labels, "le", formatBound(bound))), h.cumul[i])
		}
		fmt.Fprintf(b, "%s %d\n",
			seriesName(base+"_bucket", joinLabels(labels, "le", "+Inf")), h.cumul[len(h.cumul)-1])
		fmt.Fprintf(b, "%s %g\n", seriesName(base+"_sum", labels), h.sum)
		fmt.Fprintf(b, "%s %d\n", seriesName(base+"_count", labels), h.count)
	}
}

// PrometheusText returns the full exposition page as a string.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	r.writePrometheus(&b)
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// joinLabels appends one more k="v" pair to a raw label string.
func joinLabels(labels, k, v string) string {
	pair := k + `=` + strconv.Quote(v)
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// formatBound renders a bucket upper bound the way Prometheus expects.
func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.PrometheusText()))
	})
}

// Server is a running exposition endpoint. Close shuts it down.
type Server struct {
	// Addr is the bound address (resolves ":0" to the real port).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts an HTTP server on addr exposing
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar (process vars plus a "telemetry" snapshot of reg)
//	/debug/events  the structured-log flight recorder (when rec != nil)
//	/debug/pprof/  the standard pprof profiles
//
// addr may be ":0" to bind an ephemeral port; the chosen address is in
// Server.Addr. The server runs until Close.
func Serve(addr string, reg *Registry, rec *FlightRecorder) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	if rec != nil {
		mux.Handle("/debug/events", rec.Handler())
	}
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		// The standard expvar handler plus the registry snapshot, without
		// expvar.Publish (which panics on duplicate names across servers).
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if snap := reg.Snapshot(); len(snap) > 0 {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			keys := make([]string, 0, len(snap))
			for k := range snap {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(w, "%q: {", "telemetry")
			for i, k := range keys {
				if i > 0 {
					fmt.Fprintf(w, ", ")
				}
				fmt.Fprintf(w, "%q: %g", k, snap[k])
			}
			fmt.Fprintf(w, "}")
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
