package patch_test

import (
	"strings"
	"testing"

	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/runtime"
	"webssari/internal/telemetry/patch"
)

// analyzeFixes verifies src and returns the minimal fixing set.
func analyzeFixes(t *testing.T, name, src string) []*fixing.FixPoint {
	t.Helper()
	pre := prelude.Default()
	pre.AddSink("DoSQL", pre.Lattice().Top(), 1)
	res, errs := core.VerifySource(name, []byte(src), core.NewOptions(flow.Options{Prelude: pre}))
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	return fixing.Analyze(res).GreedyMinimalFix()
}

func TestWrapAssignmentRHS(t *testing.T) {
	src := `<?php
$sid = $_GET['sid'];
echo $sid;
`
	fixes := analyzeFixes(t, "t.php", src)
	out, errs := patch.PatchSource("t.php", []byte(src), fixes, "")
	if len(errs) != 0 {
		t.Fatalf("patch: %v", errs)
	}
	want := "$sid = websafe($_GET['sid']);"
	if !strings.Contains(string(out), want) {
		t.Fatalf("patched output missing %q:\n%s", want, out)
	}
}

func TestWrapSinkArgument(t *testing.T) {
	src := `<?php echo $_GET['msg']; ?>`
	fixes := analyzeFixes(t, "t.php", src)
	out, errs := patch.PatchSource("t.php", []byte(src), fixes, "")
	if len(errs) != 0 {
		t.Fatalf("patch: %v", errs)
	}
	if !strings.Contains(string(out), "echo websafe($_GET['msg']);") {
		t.Fatalf("sink-argument wrap missing:\n%s", out)
	}
}

func TestFormattingPreserved(t *testing.T) {
	src := "<?php\n// a comment the patcher must not disturb\n$x   =   $_GET['v'];   // trailing\necho $x;\n"
	fixes := analyzeFixes(t, "t.php", src)
	out, errs := patch.PatchSource("t.php", []byte(src), fixes, "")
	if len(errs) != 0 {
		t.Fatalf("patch: %v", errs)
	}
	for _, frag := range []string{"// a comment the patcher must not disturb", "// trailing", "$x   =   websafe("} {
		if !strings.Contains(string(out), frag) {
			t.Fatalf("formatting lost, missing %q:\n%s", frag, out)
		}
	}
}

func TestCustomRoutineName(t *testing.T) {
	src := `<?php $v = $_POST['a']; echo $v;`
	fixes := analyzeFixes(t, "t.php", src)
	out, _ := patch.PatchSource("t.php", []byte(src), fixes, "my_clean")
	if !strings.Contains(string(out), "my_clean(") || strings.Contains(string(out), "websafe(") {
		t.Fatalf("custom routine not honored:\n%s", out)
	}
}

func TestDedupIdenticalSpans(t *testing.T) {
	// extract() fix points share the extract-argument span: one wrap only.
	src := `<?php
$r = @mysql_fetch_array($q);
extract($r);
echo "$first $second $third";
`
	fixes := analyzeFixes(t, "t.php", src)
	out, errs := patch.PatchSource("t.php", []byte(src), fixes, "")
	if len(errs) != 0 {
		t.Fatalf("patch: %v", errs)
	}
	if n := strings.Count(string(out), "websafe("); n != 1 {
		t.Fatalf("guards = %d, want 1 (deduped span):\n%s", n, out)
	}
}

func TestPatcherMultiFile(t *testing.T) {
	p := patch.New("")
	// Simulate two files by separate Apply calls on an empty schedule: the
	// unpatched file passes through unchanged.
	src := []byte("<?php echo 'ok';")
	if got := p.Apply("other.php", src); string(got) != string(src) {
		t.Fatalf("unpatched file modified")
	}
	out := p.ApplyAll(map[string][]byte{"a.php": src})
	if string(out["a.php"]) != string(src) {
		t.Fatalf("ApplyAll modified unscheduled file")
	}
	if p.PatchCount() != 0 || len(p.Files()) != 0 {
		t.Fatalf("empty patcher claims work: %d/%v", p.PatchCount(), p.Files())
	}
}

func TestAddRejectsSpanlessFixPoint(t *testing.T) {
	p := patch.New("")
	if err := p.Add(&fixing.FixPoint{}); err == nil {
		t.Fatalf("span-less fix point accepted")
	}
}

func TestGuardInWhileCondition(t *testing.T) {
	// The root assignment sits inside a while condition: insertion-style
	// patching would break; expression wrapping must keep it valid.
	src := `<?php
while ($row = mysql_fetch_array($res)) {
    echo $row;
}
`
	fixes := analyzeFixes(t, "t.php", src)
	out, errs := patch.PatchSource("t.php", []byte(src), fixes, "")
	if len(errs) != 0 {
		t.Fatalf("patch: %v", errs)
	}
	if !strings.Contains(string(out), "while ($row = websafe(mysql_fetch_array($res)))") {
		t.Fatalf("loop-condition wrap wrong:\n%s", out)
	}
	// The patched file must still parse and verify safe.
	pre := prelude.Default()
	res, errs2 := core.VerifySource("t.php", out, core.NewOptions(flow.Options{Prelude: pre}))
	if len(errs2) != 0 {
		t.Fatalf("patched reparse: %v", errs2)
	}
	if !res.Safe() {
		t.Fatalf("patched loop still unsafe")
	}
}

func TestRuntimeGuardPHPDefinition(t *testing.T) {
	guard := patch.RuntimeGuardPHP("")
	if !strings.Contains(guard, "function websafe(") {
		t.Fatalf("guard definition wrong:\n%s", guard)
	}
	custom := patch.RuntimeGuardPHP("shield")
	if !strings.Contains(custom, "function shield(") {
		t.Fatalf("custom guard name ignored")
	}
	// The emitted PHP parses and executes: guard escapes its input.
	in := runtime.New()
	src := guard + `<?php echo websafe("<script>" . $x); ?>`
	if err := in.RunSource("guard.php", []byte(src)); err != nil {
		t.Fatalf("run guard definition: %v", err)
	}
	if !strings.Contains(in.Output(), "&lt;script&gt;") {
		t.Fatalf("guard did not escape: %q", in.Output())
	}
}

func TestNestedWrapsCompose(t *testing.T) {
	// Two guards whose spans nest: the function-argument patch point sits
	// inside the outer assignment RHS of a later fix — splicing must emit
	// balanced parentheses.
	src := `<?php
function f($m) { echo $m; mysql_query($m); }
f($_GET['x'] . $_POST['y']);
`
	fixes := analyzeFixes(t, "t.php", src)
	out, errs := patch.PatchSource("t.php", []byte(src), fixes, "")
	if len(errs) != 0 {
		t.Fatalf("patch: %v", errs)
	}
	if strings.Count(string(out), "(") != strings.Count(string(out), ")") {
		t.Fatalf("unbalanced parentheses:\n%s", out)
	}
	pre := prelude.Default()
	res, errs2 := core.VerifySource("t.php", out, core.NewOptions(flow.Options{Prelude: pre}))
	if len(errs2) != 0 {
		t.Fatalf("patched reparse: %v", errs2)
	}
	if !res.Safe() {
		t.Fatalf("patched nested case still unsafe:\n%s", out)
	}
}
