// Package patch implements WebSSARI's automated patching: it inserts
// runtime guards — calls to a sanitization routine — at the fix points the
// counterexample analysis selected, producing "secured PHP" (Figure 9).
// Patches wrap the offending source expression in place, so the original
// formatting is preserved:
//
//	$iq = "SELECT * FROM groups WHERE sid=$sid";   // before
//	$iq = websafe("SELECT * FROM groups WHERE sid=$sid");  // after
//
// Sanitization routines live in the prelude; users may supply their own,
// as the paper describes.
package patch

import (
	"fmt"
	"sort"

	"webssari/internal/fixing"
)

// DefaultRoutine is the runtime guard wrapped around patched expressions.
// The default prelude registers it as a sanitizer, so re-verifying patched
// code proves the guards sufficient.
const DefaultRoutine = "websafe"

// insertion is one text splice.
type insertion struct {
	off  int
	text string
	// prio orders insertions at equal offsets: closing parentheses (0)
	// come before opening ones (1), so adjacent spans nest correctly.
	prio int
}

// Patcher accumulates fix points over (possibly) many files and applies
// them to source texts.
type Patcher struct {
	routine string
	// spans per file, deduplicated; the value is the guard routine for
	// that span ("" = the Patcher's default routine). Context-sensitive
	// policies schedule different guards for different spans — an
	// attribute-context echo needs an ENT_QUOTES escape where a body
	// echo does not.
	spans map[string]map[[2]int]string
}

// New returns a Patcher wrapping patched spans in the given routine
// (DefaultRoutine when empty).
func New(routine string) *Patcher {
	if routine == "" {
		routine = DefaultRoutine
	}
	return &Patcher{
		routine: routine,
		spans:   make(map[string]map[[2]int]string),
	}
}

// Add schedules a fix point's span for patching with the default routine.
func (p *Patcher) Add(f *fixing.FixPoint) error {
	return p.AddGuard(f, "")
}

// AddGuard schedules a fix point's span for patching with a specific
// guard routine ("" = the Patcher's default). A span scheduled twice
// keeps its first explicitly named guard.
func (p *Patcher) AddGuard(f *fixing.FixPoint, routine string) error {
	pos, end := f.Span()
	if !pos.IsValid() || end <= pos.Offset {
		return fmt.Errorf("patch: fix point %s has no patchable span", f.Describe())
	}
	file := pos.File
	if p.spans[file] == nil {
		p.spans[file] = make(map[[2]int]string)
	}
	span := [2]int{pos.Offset, end}
	if existing, ok := p.spans[file][span]; !ok || existing == "" {
		p.spans[file][span] = routine
	}
	return nil
}

// AddAll schedules every fix point, collecting per-point errors.
func (p *Patcher) AddAll(fixes []*fixing.FixPoint) []error {
	var errs []error
	for _, f := range fixes {
		if err := p.Add(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Files returns the names of all files with scheduled patches.
func (p *Patcher) Files() []string {
	out := make([]string, 0, len(p.spans))
	for f := range p.spans {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// PatchCount returns the number of distinct scheduled patches.
func (p *Patcher) PatchCount() int {
	n := 0
	for _, spans := range p.spans {
		n += len(spans)
	}
	return n
}

// Apply patches one file's source text. Files without scheduled patches
// are returned unchanged.
func (p *Patcher) Apply(file string, src []byte) []byte {
	spans := p.spans[file]
	if len(spans) == 0 {
		return src
	}
	ins := make([]insertion, 0, 2*len(spans))
	for span, routine := range spans {
		start, end := span[0], span[1]
		if start < 0 || end > len(src) || start >= end {
			continue
		}
		if routine == "" {
			routine = p.routine
		}
		ins = append(ins, insertion{off: start, text: routine + "(", prio: 1})
		ins = append(ins, insertion{off: end, text: ")", prio: 0})
	}
	// Apply back to front so earlier offsets stay valid; at equal offsets,
	// closings before openings (higher prio applied first when splicing
	// backwards means it ends up later in the text... order carefully):
	// splicing from the end, an insertion applied later lands *before* one
	// applied earlier at the same offset. We want ")" to precede
	// "routine(" in the final text, so apply ")" after "routine(".
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].off != ins[j].off {
			return ins[i].off > ins[j].off
		}
		return ins[i].prio > ins[j].prio
	})
	out := append([]byte(nil), src...)
	for _, in := range ins {
		out = append(out[:in.off], append([]byte(in.text), out[in.off:]...)...)
	}
	return out
}

// ApplyAll patches a set of sources keyed by file name.
func (p *Patcher) ApplyAll(files map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(files))
	for name, src := range files {
		out[name] = p.Apply(name, src)
	}
	return out
}

// PatchSource is a convenience: patch a single source text with the given
// fix points and routine.
func PatchSource(file string, src []byte, fixes []*fixing.FixPoint, routine string) ([]byte, []error) {
	p := New(routine)
	errs := p.AddAll(fixes)
	return p.Apply(file, src), errs
}

// PatchSourceGuards patches a single source text choosing each fix
// point's guard via routineFor (a "" result falls back to the default
// routine). Context-sensitive policies use this to wrap each fix point
// in the guard adequate for the contexts it repairs.
func PatchSourceGuards(file string, src []byte, fixes []*fixing.FixPoint, routine string, routineFor func(*fixing.FixPoint) string) ([]byte, []error) {
	p := New(routine)
	var errs []error
	for _, f := range fixes {
		if err := p.AddGuard(f, routineFor(f)); err != nil {
			errs = append(errs, err)
		}
	}
	return p.Apply(file, src), errs
}

// RuntimeGuardPHP returns a PHP definition of the named runtime guard,
// suitable for prepending to patched projects that do not define their
// own. The policy guard routines get context-appropriate bodies
// (ENT_QUOTES escaping for attribute contexts, JSON encoding for script
// contexts, a host allowlist for outbound-request URLs); any other name
// gets the classic HTML-and-SQL-escaping body, recursing into arrays,
// mirroring the behaviour WebSSARI's prelude routines provided.
func RuntimeGuardPHP(routine string) string {
	if routine == "" {
		routine = DefaultRoutine
	}
	body := guardBody(routine)
	return `<?php
if (!function_exists('` + routine + `')) {
    function ` + routine + `($v) {
        if (is_array($v)) {
            foreach ($v as $k => $x) { $v[$k] = ` + routine + `($x); }
            return $v;
        }
        ` + body + `
    }
}
?>
`
}

// guardBody returns the scalar-case body of a guard routine.
func guardBody(routine string) string {
	switch routine {
	case "websafe_html":
		return `return htmlspecialchars($v);`
	case "websafe_attr":
		return `return htmlspecialchars($v, ENT_QUOTES);`
	case "websafe_js":
		return `return json_encode((string)$v, JSON_HEX_TAG | JSON_HEX_AMP | JSON_HEX_APOS | JSON_HEX_QUOT);`
	case "websafe_url":
		return `$host = parse_url($v, PHP_URL_HOST);
        $allow = isset($GLOBALS['websafe_url_hosts']) ? $GLOBALS['websafe_url_hosts'] : array();
        if ($host === null || !in_array($host, $allow, true)) { return ''; }
        return $v;`
	default:
		return `return htmlspecialchars(addslashes($v));`
	}
}
