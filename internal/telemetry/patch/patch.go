// Package patch implements WebSSARI's automated patching: it inserts
// runtime guards — calls to a sanitization routine — at the fix points the
// counterexample analysis selected, producing "secured PHP" (Figure 9).
// Patches wrap the offending source expression in place, so the original
// formatting is preserved:
//
//	$iq = "SELECT * FROM groups WHERE sid=$sid";   // before
//	$iq = websafe("SELECT * FROM groups WHERE sid=$sid");  // after
//
// Sanitization routines live in the prelude; users may supply their own,
// as the paper describes.
package patch

import (
	"fmt"
	"sort"

	"webssari/internal/fixing"
)

// DefaultRoutine is the runtime guard wrapped around patched expressions.
// The default prelude registers it as a sanitizer, so re-verifying patched
// code proves the guards sufficient.
const DefaultRoutine = "websafe"

// insertion is one text splice.
type insertion struct {
	off  int
	text string
	// prio orders insertions at equal offsets: closing parentheses (0)
	// come before opening ones (1), so adjacent spans nest correctly.
	prio int
}

// Patcher accumulates fix points over (possibly) many files and applies
// them to source texts.
type Patcher struct {
	routine string
	// spans per file, deduplicated.
	spans map[string]map[[2]int]bool
}

// New returns a Patcher wrapping patched spans in the given routine
// (DefaultRoutine when empty).
func New(routine string) *Patcher {
	if routine == "" {
		routine = DefaultRoutine
	}
	return &Patcher{
		routine: routine,
		spans:   make(map[string]map[[2]int]bool),
	}
}

// Add schedules a fix point's span for patching.
func (p *Patcher) Add(f *fixing.FixPoint) error {
	pos, end := f.Span()
	if !pos.IsValid() || end <= pos.Offset {
		return fmt.Errorf("patch: fix point %s has no patchable span", f.Describe())
	}
	file := pos.File
	if p.spans[file] == nil {
		p.spans[file] = make(map[[2]int]bool)
	}
	p.spans[file][[2]int{pos.Offset, end}] = true
	return nil
}

// AddAll schedules every fix point, collecting per-point errors.
func (p *Patcher) AddAll(fixes []*fixing.FixPoint) []error {
	var errs []error
	for _, f := range fixes {
		if err := p.Add(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Files returns the names of all files with scheduled patches.
func (p *Patcher) Files() []string {
	out := make([]string, 0, len(p.spans))
	for f := range p.spans {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// PatchCount returns the number of distinct scheduled patches.
func (p *Patcher) PatchCount() int {
	n := 0
	for _, spans := range p.spans {
		n += len(spans)
	}
	return n
}

// Apply patches one file's source text. Files without scheduled patches
// are returned unchanged.
func (p *Patcher) Apply(file string, src []byte) []byte {
	spans := p.spans[file]
	if len(spans) == 0 {
		return src
	}
	ins := make([]insertion, 0, 2*len(spans))
	for span := range spans {
		start, end := span[0], span[1]
		if start < 0 || end > len(src) || start >= end {
			continue
		}
		ins = append(ins, insertion{off: start, text: p.routine + "(", prio: 1})
		ins = append(ins, insertion{off: end, text: ")", prio: 0})
	}
	// Apply back to front so earlier offsets stay valid; at equal offsets,
	// closings before openings (higher prio applied first when splicing
	// backwards means it ends up later in the text... order carefully):
	// splicing from the end, an insertion applied later lands *before* one
	// applied earlier at the same offset. We want ")" to precede
	// "routine(" in the final text, so apply ")" after "routine(".
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].off != ins[j].off {
			return ins[i].off > ins[j].off
		}
		return ins[i].prio > ins[j].prio
	})
	out := append([]byte(nil), src...)
	for _, in := range ins {
		out = append(out[:in.off], append([]byte(in.text), out[in.off:]...)...)
	}
	return out
}

// ApplyAll patches a set of sources keyed by file name.
func (p *Patcher) ApplyAll(files map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(files))
	for name, src := range files {
		out[name] = p.Apply(name, src)
	}
	return out
}

// PatchSource is a convenience: patch a single source text with the given
// fix points and routine.
func PatchSource(file string, src []byte, fixes []*fixing.FixPoint, routine string) ([]byte, []error) {
	p := New(routine)
	errs := p.AddAll(fixes)
	return p.Apply(file, src), errs
}

// RuntimeGuardPHP returns a PHP definition of the default runtime guard,
// suitable for prepending to patched projects that do not define their
// own. It HTML-escapes and SQL-escapes its argument, recursing into
// arrays, mirroring the behaviour WebSSARI's prelude routines provided.
func RuntimeGuardPHP(routine string) string {
	if routine == "" {
		routine = DefaultRoutine
	}
	return `<?php
if (!function_exists('` + routine + `')) {
    function ` + routine + `($v) {
        if (is_array($v)) {
            foreach ($v as $k => $x) { $v[$k] = ` + routine + `($x); }
            return $v;
        }
        return htmlspecialchars(addslashes($v));
    }
}
?>
`
}
