package telemetry

// Distributed trace propagation: every verification job gets a trace ID
// at admission, and the ID travels across process boundaries as a W3C
// `traceparent` header (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-<trace-id:32hex>-<parent-id:16hex>-01
//
// The typed client injects the header from its context, the daemon
// extracts it (or mints a fresh ID), and the cluster coordinator
// re-derives a child context per dispatch hop — so a clustered job's
// spans and log lines carry one trace ID from the submitting client
// through the coordinator down to every worker, and the stitched trace
// (Tracer.Ingest) is navigable as a single artifact.
//
// The model is deliberately smaller than full OpenTelemetry: span IDs
// are minted per *hop* (Child), not per span — parenthood inside one
// process is already expressed by span nesting and lanes, so the wire
// only needs to say "same trace, new causal step".

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// TraceContext identifies one causal step of a distributed trace: the
// trace ID shared by every hop, and the span ID of the current scope
// (which becomes the parent ID of the next hop's traceparent). The zero
// value is "no trace" and is safe everywhere.
type TraceContext struct {
	// TraceID is 32 lowercase hex digits, constant across the trace.
	TraceID string
	// SpanID is 16 lowercase hex digits identifying the current scope.
	SpanID string
}

// NewTraceContext mints a fresh trace: random trace ID, random root
// span ID.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// randHex returns 2n lowercase hex digits of cryptographic randomness.
func randHex(n int) string {
	buf := make([]byte, n)
	// crypto/rand.Read cannot fail on supported platforms; if it ever
	// does, the zeroed buffer still yields a syntactically valid
	// (if non-unique) ID rather than a panic in the hot path.
	_, _ = rand.Read(buf)
	return hex.EncodeToString(buf)
}

// Valid reports whether tc carries a well-formed, non-zero trace ID and
// span ID.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// isHexID checks for exactly n lowercase hex digits, not all zero.
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Child returns the next hop's context: same trace, fresh span ID. Call
// it at every causal boundary — job admission to job execution, job
// execution to a remote dispatch — so each hop's traceparent names its
// true parent.
func (tc TraceContext) Child() TraceContext {
	if !tc.Valid() {
		return tc
	}
	return TraceContext{TraceID: tc.TraceID, SpanID: randHex(8)}
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set); "" when invalid.
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except the reserved "ff", ignores the trace-flags octet, and
// rejects malformed or all-zero IDs — a caller that gets ok=false
// should mint a fresh context instead.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, spanID := parts[0], parts[1], parts[2]
	if len(version) != 2 || version == "ff" {
		return TraceContext{}, false
	}
	for i := 0; i < 2; i++ {
		c := version[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return TraceContext{}, false
		}
	}
	tc := TraceContext{TraceID: traceID, SpanID: spanID}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// WithTraceContext returns a context carrying tc; spans started under it
// are stamped with the trace ID, and the typed client injects the
// traceparent header from it. Attaching an invalid context is a no-op.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey, tc)
}

// TraceContextFrom returns the TraceContext carried by ctx, or the zero
// value.
func TraceContextFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey).(TraceContext)
	return tc
}
