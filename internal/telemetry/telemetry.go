// Package telemetry is the engine's unified observability layer: metrics
// (counters, gauges, histograms), hierarchical tracing (Chrome trace-event
// JSON), HTTP exposition (Prometheus text, expvar, pprof), and the
// RunProfile summary attached to verification reports.
//
// The package is deliberately zero-dependency (stdlib only) and designed
// so that an *uninstrumented* run pays nothing: every method on every
// type is nil-safe, a context without a Telemetry yields nil spans and
// nil metrics, and the hot-path cost of a disabled site is a single
// pointer comparison. Instrumented call sites therefore never need to be
// guarded:
//
//	ctx, sp := telemetry.StartSpan(ctx, "parse")
//	...
//	sp.End() // no-op when telemetry is disabled
//
// One Telemetry value is safe for concurrent use by any number of
// goroutines; the parallel project verifier shares a single instance
// across its whole worker pool.
//
// This package is also the module's single instrumentation entry point:
// the source-instrumentation half (runtime-guard patching of PHP code)
// lives in the subpackage telemetry/patch.
package telemetry

import "context"

// Telemetry bundles the observability sinks: a metrics Registry, a span
// Tracer, and optionally the structured-log flight recorder. Any field
// may be nil to enable just some kinds of collection; a nil *Telemetry
// disables everything.
type Telemetry struct {
	// Metrics receives counter/gauge/histogram updates.
	Metrics *Registry
	// Tracer receives span begin/end events.
	Tracer *Tracer
	// Logs, when set, is the bounded ring of recent structured-log
	// events exposed at /debug/events by ServeMetrics/Serve.
	Logs *FlightRecorder
}

// New returns a Telemetry with a fresh Registry and Tracer.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// Registry returns t's metrics registry, nil-safe: metric lookups on a
// nil registry return nil metrics whose methods are no-ops.
func (t *Telemetry) registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// ctxKey is the private context-key namespace.
type ctxKey int

const (
	telemetryKey ctxKey = iota
	spanKey
	traceCtxKey
	loggerKey
)

// WithTelemetry returns a context carrying t; the engine's pipeline
// stages discover their sinks through it. Attaching nil is allowed and
// equivalent to not attaching anything.
func WithTelemetry(ctx context.Context, t *Telemetry) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, telemetryKey, t)
}

// From returns the Telemetry carried by ctx, or nil. The nil result is
// directly usable: spans and metrics derived from it are no-ops.
func From(ctx context.Context) *Telemetry {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(telemetryKey).(*Telemetry)
	return t
}

// Counter resolves a named counter from the context's telemetry, or nil
// (a no-op counter) when none is attached.
func Counter(ctx context.Context, name string) *CounterMetric {
	return From(ctx).registry().Counter(name)
}

// Gauge resolves a named gauge from the context's telemetry, or nil.
func Gauge(ctx context.Context, name string) *GaugeMetric {
	return From(ctx).registry().Gauge(name)
}

// Histogram resolves a named histogram (with duration buckets) from the
// context's telemetry, or nil.
func Histogram(ctx context.Context, name string) *HistogramMetric {
	return From(ctx).registry().Histogram(name, nil)
}
