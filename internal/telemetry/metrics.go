package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric naming scheme: `webssari_<subsystem>_<unit-or-noun>[_total]`,
// Prometheus conventions. Labels are encoded into the name with Name()
// (`base{k="v"}`), so the registry stays a flat map and the hot path a
// single atomic add. The constants below are the names the engine emits;
// call sites and tests share them so renames cannot drift.
const (
	MetricFilesVerified      = "webssari_files_verified_total"
	MetricFilesFailed        = "webssari_files_failed_total"
	MetricAssertionsChecked  = "webssari_assertions_checked_total"
	MetricCounterexamples    = "webssari_counterexamples_total"
	MetricSolverDecisions    = "webssari_solver_decisions_total"
	MetricSolverPropagations = "webssari_solver_propagations_total"
	MetricSolverConflicts    = "webssari_solver_conflicts_total"
	MetricSolverRestarts     = "webssari_solver_restarts_total"
	MetricSolverLearnt       = "webssari_solver_learnt_clauses_total"
	MetricSolverDeleted      = "webssari_solver_deleted_clauses_total"
	MetricCacheHits          = "webssari_compile_cache_hits_total"
	MetricCacheMisses        = "webssari_compile_cache_misses_total"
	MetricCacheEvictions     = "webssari_compile_cache_evictions_total"
	MetricCacheStale         = "webssari_compile_cache_stale_total"
	MetricCacheEntries       = "webssari_compile_cache_entries"
	MetricPoolInUse          = "webssari_pool_in_use"
	MetricPoolInUseMax       = "webssari_pool_in_use_max"
	MetricPoolWaiting        = "webssari_pool_waiting"
	MetricPoolAcquires       = "webssari_pool_acquires_total"
	MetricStageSeconds       = "webssari_stage_seconds"  // histogram, label stage
	MetricDegraded           = "webssari_degraded_total" // counter, label cause

	// Solver warm-start (learnt-clause persistence) series: blob lookups
	// that matched the program's CNF (hits) vs. missed/corrupt/mismatched
	// blobs, and the clause volume moved in each direction.
	MetricWarmStartHits     = "webssari_warmstart_hits_total"
	MetricWarmStartMisses   = "webssari_warmstart_misses_total"
	MetricWarmStartImported = "webssari_warmstart_imported_clauses_total"
	MetricWarmStartExported = "webssari_warmstart_exported_clauses_total"
	// MetricPortfolioRaces counts portfolio-raced assertions; wins are
	// labelled by the lane that supplied the canonical answer
	// (Name(MetricPortfolioWins, "lane", "2")).
	MetricPortfolioRaces = "webssari_portfolio_races_total"
	MetricPortfolioWins  = "webssari_portfolio_wins_total" // counter, label lane

	// Tier-2 (on-disk result store) series, mirrored live by
	// store.Store.Instrument.
	MetricStoreHits        = "webssari_store_hits_total"
	MetricStoreMisses      = "webssari_store_misses_total"
	MetricStorePuts        = "webssari_store_puts_total"
	MetricStoreCorrupt     = "webssari_store_corrupt_total"
	MetricStoreStale       = "webssari_store_stale_total"
	MetricStoreGCEvictions = "webssari_store_gc_evictions_total"
	MetricStoreEntries     = "webssari_store_entries"
	MetricStoreBytes       = "webssari_store_bytes"

	// Incremental re-verification (delta planner) series: how many files
	// the planner scheduled for verification, how many it served from the
	// store without re-verifying, how many previously known files it
	// invalidated (changed content, changed include, appeared include),
	// and how many runs degraded to a full (non-incremental) pass.
	MetricIncrementalPlanned     = "webssari_incremental_planned_total"
	MetricIncrementalSkipped     = "webssari_incremental_skipped_total"
	MetricIncrementalInvalidated = "webssari_incremental_invalidated_total"
	MetricIncrementalFullRuns    = "webssari_incremental_full_runs_total"
	// MetricIncrementalReusedAsserts counts assertions served by check-
	// fingerprint match instead of a SAT search during incremental runs.
	MetricIncrementalReusedAsserts = "webssari_incremental_reused_asserts_total"

	// Verification-service (webssarid) series.
	MetricServiceQueueDepth   = "webssari_service_queue_depth"
	MetricServiceInFlight     = "webssari_service_in_flight"
	MetricServiceJobsAccepted = "webssari_service_jobs_accepted_total"
	MetricServiceJobsRejected = "webssari_service_jobs_rejected_total"
	MetricServiceJobsDone     = "webssari_service_jobs_completed_total"
	MetricServiceJobsFailed   = "webssari_service_jobs_failed_total"
	MetricServiceJobSeconds   = "webssari_service_job_seconds" // histogram
	// MetricJobsTotal counts completed jobs per security policy
	// (Name(MetricJobsTotal, "policy", "ssrf"); "default" = no policy).
	MetricJobsTotal = "webssari_jobs_total" // counter, label policy

	// SLO instrumentation. Request latency is a histogram family labeled
	// by route (Name(MetricHTTPRequestSeconds, "route", "/v1/files"));
	// breaches count requests slower than the daemon's configured latency
	// objective, again per route. Queue wait is the admission-to-start
	// delay of a job; slow files count per-file verifications beyond the
	// slow-file threshold (each also logged with its trace ID).
	MetricHTTPRequestSeconds = "webssari_http_request_seconds"       // histogram, label route
	MetricSLOBreaches        = "webssari_slo_breaches_total"         // counter, label route
	MetricServiceQueueWait   = "webssari_service_queue_wait_seconds" // histogram
	MetricServiceSlowFiles   = "webssari_service_slow_files_total"

	// Cluster-coordinator series. Per-worker health is a labeled gauge
	// family (Name(MetricClusterWorkerUp, "worker", id) — 1 while live, 0
	// after eviction or deregistration); the counters record dispatch
	// outcomes: every remote per-file dispatch attempt, attempts that
	// failed transiently, files re-dispatched to another worker after
	// their first-choice worker died or tripped, breaker trips, runs that
	// degraded to local execution, and the local/remote split of files.
	MetricClusterWorkersLive      = "webssari_cluster_workers_live"
	MetricClusterWorkerUp         = "webssari_cluster_worker_up" // gauge, label worker
	MetricClusterRegistrations    = "webssari_cluster_registrations_total"
	MetricClusterHeartbeats       = "webssari_cluster_heartbeats_total"
	MetricClusterEvictions        = "webssari_cluster_evictions_total"
	MetricClusterDispatches       = "webssari_cluster_dispatches_total"
	MetricClusterDispatchFailures = "webssari_cluster_dispatch_failures_total"
	MetricClusterRedispatches     = "webssari_cluster_redispatches_total"
	MetricClusterBreakerTrips     = "webssari_cluster_breaker_trips_total"
	MetricClusterDegradedRuns     = "webssari_cluster_degraded_runs_total"
	MetricClusterLocalFiles       = "webssari_cluster_local_files_total"
	MetricClusterRemoteFiles      = "webssari_cluster_remote_files_total"
	// MetricClusterDispatchRTT observes the wall time of each remote
	// dispatch attempt (submit → result), successful or not.
	MetricClusterDispatchRTT = "webssari_cluster_dispatch_rtt_seconds" // histogram
)

// Name encodes label pairs into a metric name: Name("x_seconds",
// "stage", "parse") → `x_seconds{stage="parse"}`. The exposition writer
// understands the encoding, so labeled series scrape correctly.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a Name()-encoded metric name into its base family
// name and raw label string (without braces, "" when unlabeled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// CounterMetric is a monotonically increasing counter with an atomic hot
// path. All methods are nil-safe no-ops, which is how disabled telemetry
// costs nothing at the call site.
type CounterMetric struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *CounterMetric) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *CounterMetric) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *CounterMetric) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// GaugeMetric is a settable instantaneous value. Nil-safe.
type GaugeMetric struct {
	v atomic.Int64
}

// Set stores v.
func (g *GaugeMetric) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (either sign).
func (g *GaugeMetric) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is greater (a lock-free high-water
// mark).
func (g *GaugeMetric) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *GaugeMetric) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultDurationBuckets are the histogram bounds (seconds) used when no
// explicit buckets are given: 10µs … 10s, roughly ×4 per step, matched
// to the spread between a cache-hit compile and a budget-bounded solve.
var DefaultDurationBuckets = []float64{
	1e-5, 4e-5, 1.6e-4, 6.4e-4, 2.56e-3, 1.024e-2, 4.096e-2, 0.164, 0.655, 2.62, 10.5,
}

// HistogramMetric is a fixed-bucket histogram; observations, the running
// sum, and the count are all atomics. Nil-safe.
type HistogramMetric struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *HistogramMetric {
	if len(bounds) == 0 {
		bounds = DefaultDurationBuckets
	}
	return &HistogramMetric{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *HistogramMetric) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, want) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *HistogramMetric) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *HistogramMetric) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry interns metrics by name. Lookup takes a mutex; the returned
// metric's operations are lock-free, so call sites that update in a loop
// should resolve once and reuse. A nil *Registry resolves every lookup
// to nil (a no-op metric).
type Registry struct {
	mu     sync.Mutex
	counts map[string]*CounterMetric
	gauges map[string]*GaugeMetric
	hists  map[string]*HistogramMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*CounterMetric),
		gauges: make(map[string]*GaugeMetric),
		hists:  make(map[string]*HistogramMetric),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *CounterMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &CounterMetric{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *GaugeMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &GaugeMetric{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (nil = DefaultDurationBuckets) on first use.
// Bounds are fixed by the first caller; later callers share the series.
func (r *Registry) Histogram(name string, bounds []float64) *HistogramMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every scalar series (counters and gauges; histograms
// contribute _count and _sum entries) as a name→value map — the expvar
// view of the registry.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counts)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counts {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		base, labels := splitName(name)
		out[seriesName(base+"_count", labels)] = float64(h.Count())
		out[seriesName(base+"_sum", labels)] = h.Sum()
	}
	return out
}

// seriesName re-attaches a raw label string to a (possibly suffixed)
// base name.
func seriesName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}
