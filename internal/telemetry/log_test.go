package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"", slog.LevelInfo, true},
		{"debug", slog.LevelDebug, true},
		{"info", slog.LevelInfo, true},
		{"warn", slog.LevelWarn, true},
		{"warning", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
		{"DEBUG", slog.LevelDebug, true},
		{"verbose", 0, false},
	}
	for _, c := range cases {
		got, err := ParseLogLevel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseLogLevel(%q) succeeded; want error", c.in)
		}
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", "k", 1)
	l.Warn("c")
	l.Error("d")
	if got := l.With("k", "v"); got != nil {
		t.Fatalf("nil Logger.With = %v; want nil", got)
	}
	if got := l.Recorder(); got != nil {
		t.Fatalf("nil Logger.Recorder = %v; want nil", got)
	}
}

func TestLoggerFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, slog.LevelWarn, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("not emitted")
	l.Warn("emitted", "job_id", "j1", "trace_id", "t1")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d output lines, want 1: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if rec["msg"] != "emitted" || rec["job_id"] != "j1" || rec["trace_id"] != "t1" {
		t.Fatalf("unexpected record: %v", rec)
	}

	buf.Reset()
	l, err = NewLogger(&buf, slog.LevelInfo, "text", 0)
	if err != nil {
		t.Fatal(err)
	}
	l.With("worker", "w1").Info("hello")
	if out := buf.String(); !strings.Contains(out, "worker=w1") || !strings.Contains(out, "hello") {
		t.Fatalf("text output missing attrs: %q", out)
	}

	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml", 0); err == nil {
		t.Fatal("NewLogger accepted unknown format")
	}
}

func TestLoggerRecordsBelowOutputLevel(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, slog.LevelError, "text", 8)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("quiet but recorded", "k", "v")
	if buf.Len() != 0 {
		t.Fatalf("debug line reached output at error level: %q", buf.String())
	}
	evs := l.Recorder().Events()
	if len(evs) != 1 || evs[0].Msg != "quiet but recorded" {
		t.Fatalf("flight recorder missed the suppressed line: %+v", evs)
	}
	if evs[0].Attrs["k"] != "v" {
		t.Fatalf("recorded attrs = %v", evs[0].Attrs)
	}
}

func TestLoggerGroupAndWithAttrsInRecorder(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, slog.LevelInfo, "text", 8)
	if err != nil {
		t.Fatal(err)
	}
	l.With("job_id", "j9").Info("msg", "file", "a.php")
	evs := l.Recorder().Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Attrs["job_id"] != "j9" || evs[0].Attrs["file"] != "a.php" {
		t.Fatalf("attrs = %v", evs[0].Attrs)
	}
}

func TestFlightRecorderRingOverwrite(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(LogEvent{Msg: fmt.Sprintf("m%d", i)})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want capacity 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("m%d", 6+i); ev.Msg != want {
			t.Fatalf("Events()[%d].Msg = %q, want %q (oldest-first)", i, ev.Msg, want)
		}
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	r := NewFlightRecorder(2)
	r.Record(LogEvent{Msg: "one"})
	r.Record(LogEvent{Msg: "two"})
	r.Record(LogEvent{Msg: "three"})
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/events", nil))
	var body struct {
		Capacity int        `json:"capacity"`
		Recorded int64      `json:"recorded"`
		Dropped  int64      `json:"dropped"`
		Events   []LogEvent `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("handler body: %v\n%s", err, rr.Body.String())
	}
	if body.Capacity != 2 || body.Recorded != 3 || body.Dropped != 1 {
		t.Fatalf("capacity/recorded/dropped = %d/%d/%d, want 2/3/1",
			body.Capacity, body.Recorded, body.Dropped)
	}
	if len(body.Events) != 2 || body.Events[0].Msg != "two" || body.Events[1].Msg != "three" {
		t.Fatalf("events = %+v", body.Events)
	}
}

// TestLoggerConcurrency hammers one Logger (and its flight recorder) from
// many goroutines; run with -race this pins the slog wrapper's and the
// ring buffer's thread safety.
func TestLoggerConcurrency(t *testing.T) {
	var buf lockedBuffer
	l, err := NewLogger(&buf, slog.LevelDebug, "json", 32)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			jl := l.With("goroutine", g)
			for i := 0; i < 50; i++ {
				jl.Info("tick", "i", i)
				if i%5 == 0 {
					l.Recorder().Events()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Recorder().Recorded(); got != 400 {
		t.Fatalf("Recorded = %d, want 400", got)
	}
	if evs := l.Recorder().Events(); len(evs) != 32 {
		t.Fatalf("ring holds %d events, want capacity 32", len(evs))
	}
}

// lockedBuffer serializes writes; slog handlers lock per-handler, but the
// test writes through two handlers (output + recorder tee) so the sink
// itself must tolerate concurrency.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func TestLoggerContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := LoggerFrom(ctx); got != nil {
		t.Fatalf("LoggerFrom(empty ctx) = %v, want nil", got)
	}
	var buf bytes.Buffer
	l, err := NewLogger(&buf, slog.LevelInfo, "text", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx = WithLogger(ctx, l)
	if got := LoggerFrom(ctx); got != l {
		t.Fatalf("LoggerFrom = %v, want the attached logger", got)
	}
}
