package ai

import (
	"fmt"
	"sort"
	"strings"

	"webssari/internal/lattice"
)

// Violation is one concrete assertion failure observed while executing an
// AI program along a specific resolution of its nondeterministic branches.
type Violation struct {
	// Assert is the failed assertion.
	Assert *Assert
	// ArgTypes holds the evaluated type of each checked argument; entries
	// that satisfied the assertion are still included.
	ArgTypes []lattice.Elem
	// Failing lists the indices into Assert.Args whose types violated the
	// bound.
	Failing []int
	// Branches records the branch decisions *encountered on the path* that
	// reached the assertion (branch ID → taken). Branches that were never
	// reached (inside untaken arms, or after a stop) are absent; this makes
	// Branches the canonical identity of a counterexample trace.
	Branches map[int]bool
}

// Key returns a canonical identity for the violation: the assertion site
// plus the encountered branch decisions.
func (v Violation) Key() string {
	ids := make([]int, 0, len(v.Branches))
	for id := range v.Branches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|", v.Assert.Site, v.Assert.Fn)
	for _, id := range ids {
		if v.Branches[id] {
			fmt.Fprintf(&b, "+%d", id)
		} else {
			fmt.Fprintf(&b, "-%d", id)
		}
	}
	return b.String()
}

// Eval executes the program with branch decisions supplied by choose
// (called once per encountered If, with its ID) and returns every
// violation observed plus the final variable-type environment.
func (p *Program) Eval(choose func(id int) bool) ([]Violation, map[string]lattice.Elem) {
	env := make(map[string]lattice.Elem, len(p.InitialTypes))
	for name, t := range p.InitialTypes {
		env[name] = t
	}
	encountered := make(map[int]bool)
	var viols []Violation
	p.evalCmds(p.Cmds, env, choose, encountered, &viols)
	return viols, env
}

// evalCmds executes a command sequence; it returns false when a stop
// command terminated execution.
func (p *Program) evalCmds(
	cmds []Cmd,
	env map[string]lattice.Elem,
	choose func(int) bool,
	encountered map[int]bool,
	viols *[]Violation,
) bool {
	for _, c := range cmds {
		switch c := c.(type) {
		case *Set:
			env[c.Var] = p.evalExpr(c.RHS, env)
		case *Assert:
			var failing []int
			argTypes := make([]lattice.Elem, len(c.Args))
			for i, a := range c.Args {
				t := p.evalExpr(a.Expr, env)
				argTypes[i] = t
				if !p.Lat.Lt(t, c.Bound) {
					failing = append(failing, i)
				}
			}
			if len(failing) > 0 {
				branches := make(map[int]bool, len(encountered))
				for id, v := range encountered {
					branches[id] = v
				}
				*viols = append(*viols, Violation{
					Assert:   c,
					ArgTypes: argTypes,
					Failing:  failing,
					Branches: branches,
				})
			}
		case *If:
			taken := choose(c.ID)
			encountered[c.ID] = taken
			arm := c.Then
			if !taken {
				arm = c.Else
			}
			if !p.evalCmds(arm, env, choose, encountered, viols) {
				return false
			}
		case *Stop:
			return false
		}
	}
	return true
}

func (p *Program) evalExpr(e Expr, env map[string]lattice.Elem) lattice.Elem {
	switch e := e.(type) {
	case nil:
		return p.Lat.Bottom()
	case Const:
		return e.Type
	case Var:
		if t, ok := env[e.Name]; ok {
			return t
		}
		return p.Lat.Bottom()
	case Join:
		acc := p.Lat.Bottom()
		for _, part := range e.Parts {
			acc = p.Lat.Join(acc, p.evalExpr(part, env))
		}
		return acc
	default:
		return p.Lat.Top()
	}
}

// ExhaustiveViolations enumerates every distinct counterexample trace by
// brute force over all 2^Branches branch resolutions, deduplicating by
// trace identity (assertion site + encountered branch decisions). It is the
// reference oracle the bounded model checker is tested against; it is
// exponential and must only be used on small programs.
func (p *Program) ExhaustiveViolations() []Violation {
	seen := make(map[string]Violation)
	n := p.Branches
	if n > 20 {
		// Clamp quietly rather than hanging: callers use this oracle only
		// in tests and ablations, on small programs.
		n = 20
	}
	var order []string
	for mask := 0; mask < 1<<uint(n); mask++ {
		viols, _ := p.Eval(func(id int) bool {
			if id >= n {
				return false
			}
			return mask&(1<<uint(id)) != 0
		})
		for _, v := range viols {
			k := v.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = v
				order = append(order, k)
			}
		}
	}
	out := make([]Violation, len(order))
	for i, k := range order {
		out[i] = seen[k]
	}
	return out
}
