package ai

import (
	"strings"
	"testing"

	"webssari/internal/lattice"
)

// tinyProgram builds an AI by hand:
//
//	t(x) = tainted<src>;
//	if b0 then
//	    t(x) = untainted;
//	else
//	    stop;
//	endif
//	assert(t(x) < tainted);  // sink
func tinyProgram() *Program {
	lat := lattice.Taint()
	tainted, untainted := lat.Top(), lat.Bottom()
	return &Program{
		File: "tiny.php",
		Lat:  lat,
		Cmds: []Cmd{
			&Set{Var: "x", RHS: Const{Type: tainted, Label: "src", Lat: lat}},
			&If{ID: 0,
				Then: []Cmd{&Set{Var: "x", RHS: Const{Type: untainted, Lat: lat}}},
				Else: []Cmd{&Stop{}},
			},
			&Assert{Fn: "sink", Args: []Arg{{Expr: Var{Name: "x"}, ArgPos: 1}}, Bound: tainted},
		},
		Branches:     1,
		InitialTypes: map[string]lattice.Elem{},
	}
}

func TestEvalPathSemantics(t *testing.T) {
	p := tinyProgram()

	// b0 = true: x sanitized before the assert — no violation.
	viols, env := p.Eval(func(int) bool { return true })
	if len(viols) != 0 {
		t.Fatalf("then-path violations = %d, want 0", len(viols))
	}
	if env["x"] != p.Lat.Bottom() {
		t.Fatalf("x = %v, want untainted", p.Lat.Name(env["x"]))
	}

	// b0 = false: stop kills the path before the assert.
	viols, _ = p.Eval(func(int) bool { return false })
	if len(viols) != 0 {
		t.Fatalf("stop-path violations = %d, want 0", len(viols))
	}
}

func TestEvalViolationRecordsBranches(t *testing.T) {
	p := tinyProgram()
	// Remove the sanitizing assignment: then-path now violates.
	p.Cmds[1].(*If).Then = nil
	viols, _ := p.Eval(func(int) bool { return true })
	if len(viols) != 1 {
		t.Fatalf("violations = %d, want 1", len(viols))
	}
	v := viols[0]
	if len(v.Failing) != 1 || v.Failing[0] != 0 {
		t.Fatalf("failing = %v", v.Failing)
	}
	if !v.Branches[0] {
		t.Fatalf("branches = %v, want {0:true}", v.Branches)
	}
	if v.ArgTypes[0] != p.Lat.Top() {
		t.Fatalf("arg type = %v", p.Lat.Name(v.ArgTypes[0]))
	}
}

func TestViolationKeyCanonical(t *testing.T) {
	p := tinyProgram()
	a := p.Cmds[2].(*Assert)
	v1 := Violation{Assert: a, Branches: map[int]bool{2: true, 0: false}}
	v2 := Violation{Assert: a, Branches: map[int]bool{0: false, 2: true}}
	if v1.Key() != v2.Key() {
		t.Fatalf("key not canonical: %q vs %q", v1.Key(), v2.Key())
	}
	v3 := Violation{Assert: a, Branches: map[int]bool{0: true, 2: true}}
	if v1.Key() == v3.Key() {
		t.Fatalf("different branch decisions share a key")
	}
}

func TestExhaustiveViolationsDedup(t *testing.T) {
	p := tinyProgram()
	p.Cmds[1].(*If).Then = nil
	viols := p.ExhaustiveViolations()
	// Only one distinct trace: b0=true (b0=false stops).
	if len(viols) != 1 {
		t.Fatalf("violations = %d, want 1", len(viols))
	}
}

func TestNewJoinSimplifies(t *testing.T) {
	lat := lattice.Taint()
	a := Var{Name: "a"}
	if got := NewJoin(); got != nil {
		t.Fatalf("empty join = %v, want nil", got)
	}
	if got := NewJoin(a); got != a {
		t.Fatalf("singleton join = %v", got)
	}
	j := NewJoin(a, NewJoin(Var{Name: "b"}, Const{Type: lat.Top(), Lat: lat}))
	join, ok := j.(Join)
	if !ok || len(join.Parts) != 3 {
		t.Fatalf("nested join not flattened: %v", j)
	}
	k := NewJoin(nil, a, nil)
	if k != a {
		t.Fatalf("nil parts not dropped: %v", k)
	}
}

func TestWalkAndQueries(t *testing.T) {
	p := tinyProgram()
	n := 0
	Walk(p.Cmds, func(Cmd) { n++ })
	if n != 5 {
		t.Fatalf("walked %d cmds, want 5", n)
	}
	if got := p.Size(); got != 5 {
		t.Fatalf("Size = %d", got)
	}
	// Longest path: set, if, set, assert = 4.
	if got := p.Diameter(); got != 4 {
		t.Fatalf("Diameter = %d, want 4", got)
	}
	asserts := p.Asserts()
	if len(asserts) != 1 || asserts[0].Fn != "sink" {
		t.Fatalf("asserts = %v", asserts)
	}
	vars := p.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("vars = %v", vars)
	}
}

func TestInitialTypeDefaultsToBottom(t *testing.T) {
	p := tinyProgram()
	if p.InitialType("never_seen") != p.Lat.Bottom() {
		t.Fatalf("unknown vars must start at ⊥")
	}
	p.InitialTypes["g"] = p.Lat.Top()
	if p.InitialType("g") != p.Lat.Top() {
		t.Fatalf("explicit initial type lost")
	}
}

func TestExprVars(t *testing.T) {
	e := NewJoin(Var{Name: "a"}, Const{}, NewJoin(Var{Name: "b"}, Var{Name: "a"}))
	vars := ExprVars(e)
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "a" {
		t.Fatalf("vars = %v", vars)
	}
	if got := ExprVars(Const{}); len(got) != 0 {
		t.Fatalf("const vars = %v", got)
	}
}

func TestExprStrings(t *testing.T) {
	lat := lattice.Taint()
	c := Const{Type: lat.Top(), Label: "mysql_fetch_array", Lat: lat}
	if got := c.String(); got != "tainted<mysql_fetch_array>" {
		t.Fatalf("const string = %q", got)
	}
	bare := Const{Type: lat.Bottom(), Lat: lat}
	if got := bare.String(); got != "untainted" {
		t.Fatalf("bare const = %q", got)
	}
	noLat := Const{Type: 1}
	if got := noLat.String(); got != "#1" {
		t.Fatalf("lattice-less const = %q", got)
	}
	v := Var{Name: "x"}
	if v.String() != "t($x)" {
		t.Fatalf("var string = %q", v.String())
	}
	j := Join{Parts: []Expr{v, bare}}
	if j.String() != "(t($x) ⊔ untainted)" {
		t.Fatalf("join string = %q", j.String())
	}
}

func TestProgramString(t *testing.T) {
	p := tinyProgram()
	s := p.String()
	for _, frag := range []string{"if b0 then", "else", "stop;", "assert(", "endif"} {
		if !strings.Contains(s, frag) {
			t.Errorf("dump missing %q:\n%s", frag, s)
		}
	}
}

func TestSetPatchable(t *testing.T) {
	s := &Set{}
	if s.Patchable() {
		t.Fatalf("zero Set should not be patchable")
	}
}

func TestExhaustiveBranchCap(t *testing.T) {
	// A program claiming more than 24 branches must not hang the oracle.
	lat := lattice.Taint()
	p := &Program{File: "big", Lat: lat, Branches: 30,
		Cmds:         []Cmd{&Assert{Fn: "s", Args: []Arg{{Expr: Const{Type: lat.Top(), Lat: lat}}}, Bound: lat.Top()}},
		InitialTypes: map[string]lattice.Elem{}}
	viols := p.ExhaustiveViolations()
	if len(viols) != 1 {
		t.Fatalf("violations = %d", len(viols))
	}
}
