// Package ai defines the abstract interpretation AI(F(p)) of the paper
// (§3.2, Figure 4): a loop-free imperative program over safety types. An AI
// consists only of
//
//   - type assignments  t_x = e        (Set)
//   - assertions        assert(X, τr)  (Assert)
//   - nondeterministic branches        (If)
//   - stop                              (Stop)
//
// where type expressions e are built from constants (the types of literals
// and of data retrieved through untrusted input channels), variables, and
// the least-upper-bound operator ⊔ of the safety lattice. Because every
// loop of the source program has been deconstructed into a selection by the
// filter, an AI's control-flow graph is a DAG, its diameter is fixed, and
// bounded model checking of it is sound and complete.
package ai

import (
	"fmt"
	"strings"

	"webssari/internal/lattice"
	"webssari/internal/php/token"
)

// Site records where an AI command came from in the PHP source: the exact
// construct (Pos–End) and the enclosing statement (StmtPos–StmtEnd), which
// is where the instrumentor splices runtime guards.
type Site struct {
	Pos     token.Pos
	End     int
	StmtPos token.Pos
	StmtEnd int
}

// String renders the site's primary position.
func (s Site) String() string { return s.Pos.String() }

// Expr is a safety-type expression.
type Expr interface {
	aiExpr()
	// String renders the expression; lattice constants print by name.
	String() string
}

// Const is a type constant: the safety level of a literal (⊥), of data
// from an untrusted input channel, or of a sanitizer's result.
type Const struct {
	Type lattice.Elem
	// Label optionally names where the constant came from ("$_GET",
	// "htmlspecialchars") for readable dumps.
	Label string
	// Lat gives the lattice, needed to print the element name.
	Lat *lattice.Lattice
}

// Var is a reference to the current safety type of a variable.
type Var struct {
	Name string
}

// Join is the least upper bound of its parts: the type of a compound
// expression e1 ~ e2 in Denning's model.
type Join struct {
	Parts []Expr
}

func (Const) aiExpr() {}
func (Var) aiExpr()   {}
func (Join) aiExpr()  {}

// String implements Expr.
func (c Const) String() string {
	name := fmt.Sprintf("#%d", c.Type)
	if c.Lat != nil {
		name = c.Lat.Name(c.Type)
	}
	if c.Label != "" {
		return fmt.Sprintf("%s<%s>", name, c.Label)
	}
	return name
}

// String implements Expr.
func (v Var) String() string { return "t($" + v.Name + ")" }

// String implements Expr.
func (j Join) String() string {
	parts := make([]string, len(j.Parts))
	for i, p := range j.Parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " ⊔ ") + ")"
}

// NewJoin builds the least-upper-bound expression of parts, flattening
// nested joins and simplifying the degenerate cases.
func NewJoin(parts ...Expr) Expr {
	var flat []Expr
	for _, p := range parts {
		if p == nil {
			continue
		}
		if j, ok := p.(Join); ok {
			flat = append(flat, j.Parts...)
			continue
		}
		flat = append(flat, p)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return Join{Parts: flat}
	}
}

// Cmd is one AI command.
type Cmd interface {
	aiCmd()
}

// Set is the type assignment t_x = e.
type Set struct {
	Var  string
	RHS  Expr
	Site Site
	// SrcVar is the variable's name as written in the PHP source (without
	// scope prefixes); empty for synthetic assignments.
	SrcVar string
	// RHSPos/RHSEnd delimit the source expression assigned from, the span
	// the instrumentor wraps in a sanitization routine. Invalid when the
	// assignment is synthetic (parameter binding, return plumbing).
	RHSPos token.Pos
	RHSEnd int
	// Synthetic marks assignments introduced by the filter itself (call
	// unfolding, copy-back) rather than by a source statement.
	Synthetic bool
}

// Patchable reports whether the assignment has a source expression that a
// runtime guard can wrap.
func (s *Set) Patchable() bool { return s.RHSPos.IsValid() && s.RHSEnd > s.RHSPos.Offset }

// Arg is one checked argument of an assertion.
type Arg struct {
	// Expr is the argument's type expression.
	Expr Expr
	// ArgPos is the argument's 1-based position in the original call.
	ArgPos int
	// Pos/End delimit the argument expression in the source, so a runtime
	// guard can be wrapped around it when no earlier patch point exists.
	Pos token.Pos
	End int
}

// Assert is the SOC precondition assert(X, τr): every checked argument's
// type must be strictly lower than Bound.
type Assert struct {
	// Fn is the sensitive output channel's name (echo, mysql_query, …).
	Fn    string
	Args  []Arg
	Bound lattice.Elem
	Site  Site
	// Class is the vulnerability class the active policy assigns this
	// sink; empty means the classic by-sink-name classification applies.
	Class string
	// Context names the HTML output context ("html", "attr", "js") a
	// contextual sink's dynamic argument lands in; empty for
	// non-contextual sinks. It selects the report wording and the
	// patcher's context-correct guard.
	Context string
}

// If is a nondeterministic branch; ID indexes the branch's boolean in the
// model checker's BN set.
type If struct {
	ID   int
	Then []Cmd
	Else []Cmd
	Site Site
}

// Stop terminates execution.
type Stop struct {
	Site Site
}

func (*Set) aiCmd()    {}
func (*Assert) aiCmd() {}
func (*If) aiCmd()     {}
func (*Stop) aiCmd()   {}

// Program is a complete abstract interpretation of one verification unit
// (a PHP entry file plus everything it statically includes).
type Program struct {
	// File is the entry file name.
	File string
	// Policy names the security policy the program was filtered under
	// ("" when the run used the bare prelude with no policy selected).
	Policy string
	// Cmds is the command sequence.
	Cmds []Cmd
	// Branches is the number of nondeterministic branches (the size of BN).
	Branches int
	// Lat is the safety-type lattice.
	Lat *lattice.Lattice
	// InitialTypes gives the safety type each variable has before the
	// first command (⊥ for unlisted variables).
	InitialTypes map[string]lattice.Elem
	// Warnings lists constructs the filter had to approximate (dynamic
	// includes, variable variables, recursion cutoffs).
	Warnings []string
	// Truncated is set when the filter hit its statement ceiling
	// (flow.Options.MaxCmds) and dropped commands: the model is then a
	// prefix of the real program, so a Safe verdict over it proves
	// nothing about the dropped suffix and must degrade to Unknown.
	Truncated bool
	// UnresolvedIncludes lists static include paths the loader failed to
	// read: the included code is missing from the model, so — like
	// Truncated — a Safe verdict must degrade to Unknown.
	UnresolvedIncludes []string
	// IncludeHashes records the provenance of every statically resolved
	// include spliced into this model: resolved path → hex SHA-256 of the
	// content that was read. A compile cache revalidates these before
	// reusing the model, so an edited include can never be served stale.
	IncludeHashes map[string]string
	// IncludeMisses records include candidate paths that were probed and
	// not readable while building this model. If one of them becomes
	// readable later, include resolution would pick a different file, so
	// a cached model keyed on this program must be recompiled.
	IncludeMisses map[string]bool
}

// InitialType returns the initial type of a variable (⊥ when unlisted).
func (p *Program) InitialType(name string) lattice.Elem {
	if t, ok := p.InitialTypes[name]; ok {
		return t
	}
	return p.Lat.Bottom()
}

// Asserts returns all assertions in command order.
func (p *Program) Asserts() []*Assert {
	var out []*Assert
	Walk(p.Cmds, func(c Cmd) {
		if a, ok := c.(*Assert); ok {
			out = append(out, a)
		}
	})
	return out
}

// Vars returns the set of variable names mentioned anywhere in the program
// (assigned or read), in first-appearance order.
func (p *Program) Vars() []string {
	var order []string
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	var addExpr func(e Expr)
	addExpr = func(e Expr) {
		switch e := e.(type) {
		case Var:
			add(e.Name)
		case Join:
			for _, part := range e.Parts {
				addExpr(part)
			}
		}
	}
	Walk(p.Cmds, func(c Cmd) {
		switch c := c.(type) {
		case *Set:
			add(c.Var)
			addExpr(c.RHS)
		case *Assert:
			for _, a := range c.Args {
				addExpr(a.Expr)
			}
		}
	})
	return order
}

// Size returns the total number of commands, counting both branch arms.
func (p *Program) Size() int {
	n := 0
	Walk(p.Cmds, func(Cmd) { n++ })
	return n
}

// Diameter returns the length of the longest execution path through the
// program — the bound k that makes BMC complete (§3.3.1). It is finite
// because the AI is loop-free.
func (p *Program) Diameter() int {
	return pathLen(p.Cmds)
}

func pathLen(cmds []Cmd) int {
	n := 0
	for _, c := range cmds {
		switch c := c.(type) {
		case *If:
			thenLen := pathLen(c.Then)
			elseLen := pathLen(c.Else)
			if elseLen > thenLen {
				thenLen = elseLen
			}
			n += 1 + thenLen
		default:
			n++
		}
	}
	return n
}

// Walk applies fn to every command in preorder, descending into branches.
func Walk(cmds []Cmd, fn func(Cmd)) {
	for _, c := range cmds {
		fn(c)
		if ifc, ok := c.(*If); ok {
			Walk(ifc.Then, fn)
			Walk(ifc.Else, fn)
		}
	}
}

// ExprVars returns the variable names read by a type expression.
func ExprVars(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case Var:
			out = append(out, e.Name)
		case Join:
			for _, p := range e.Parts {
				walk(p)
			}
		}
	}
	walk(e)
	return out
}

// String renders the program in the AI notation of the paper's Figure 6.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AI(%s) over %s\n", p.File, p.Lat)
	printCmds(&b, p.Cmds, p.Lat, 0)
	return b.String()
}

func printCmds(b *strings.Builder, cmds []Cmd, lat *lattice.Lattice, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, c := range cmds {
		switch c := c.(type) {
		case *Set:
			fmt.Fprintf(b, "%st($%s) = %s;\n", ind, c.Var, c.RHS)
		case *Assert:
			args := make([]string, len(c.Args))
			for i, a := range c.Args {
				args[i] = a.Expr.String()
			}
			ctx := ""
			if c.Context != "" {
				ctx = " [" + c.Context + "]"
			}
			fmt.Fprintf(b, "%sassert(%s < %s);  // %s%s at %s\n",
				ind, strings.Join(args, ", "), lat.Name(c.Bound), c.Fn, ctx, c.Site)
		case *If:
			fmt.Fprintf(b, "%sif b%d then\n", ind, c.ID)
			printCmds(b, c.Then, lat, depth+1)
			if len(c.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				printCmds(b, c.Else, lat, depth+1)
			}
			fmt.Fprintf(b, "%sendif\n", ind)
		case *Stop:
			fmt.Fprintf(b, "%sstop;\n", ind)
		}
	}
}
