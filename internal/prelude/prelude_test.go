package prelude

import (
	"strings"
	"testing"

	"webssari/internal/lattice"
)

func TestDefaultPreludeLoads(t *testing.T) {
	p := Default()
	if p.Lattice().Size() != 2 {
		t.Fatalf("lattice size = %d, want 2", p.Lattice().Size())
	}
	tainted := p.Lattice().Top()

	if got := p.VarType("_GET"); got != tainted {
		t.Errorf("_GET type = %v, want tainted", p.Lattice().Name(got))
	}
	if got := p.VarType("HTTP_REFERER"); got != tainted {
		t.Errorf("HTTP_REFERER type = %v, want tainted", p.Lattice().Name(got))
	}
	if got := p.VarType("_SESSION"); got != p.Lattice().Bottom() {
		t.Errorf("_SESSION type = %v, want untainted", p.Lattice().Name(got))
	}
	if got := p.VarType("myvar"); got != p.Lattice().Bottom() {
		t.Errorf("unknown var type = %v, want bottom", p.Lattice().Name(got))
	}

	if _, ok := p.SourceFor("mysql_fetch_array"); !ok {
		t.Errorf("mysql_fetch_array should be a source")
	}
	if s, ok := p.SinkFor("mysql_query"); !ok || !s.Checks(1) || s.Checks(2) {
		t.Errorf("mysql_query sink wrong: %+v ok=%v", s, ok)
	}
	if s, ok := p.SinkFor("echo"); !ok || !s.Checks(1) || !s.Checks(7) {
		t.Errorf("echo sink should check all args: %+v ok=%v", s, ok)
	}
	if sa, ok := p.SanitizerFor("htmlspecialchars"); !ok || sa.Type != p.Lattice().Bottom() {
		t.Errorf("htmlspecialchars sanitizer wrong: %+v ok=%v", sa, ok)
	}
}

func TestLookupsAreCaseInsensitive(t *testing.T) {
	p := Default()
	if _, ok := p.SinkFor("MySQL_Query"); !ok {
		t.Errorf("sink lookup should be case-insensitive")
	}
	if _, ok := p.SourceFor("GETENV"); !ok {
		t.Errorf("source lookup should be case-insensitive")
	}
	if _, ok := p.SanitizerFor("HTMLSpecialChars"); !ok {
		t.Errorf("sanitizer lookup should be case-insensitive")
	}
}

func TestDefaultReturnsIndependentCopies(t *testing.T) {
	a := Default()
	b := Default()
	a.AddSink("dosql", a.Lattice().Top())
	if _, ok := b.SinkFor("dosql"); ok {
		t.Fatalf("Default() instances must be independent")
	}
}

func TestParseCustomPrelude(t *testing.T) {
	src := `
# three-level lattice
lattice chain public internal secret

var _GET secret
source read_secret secret
sink publish internal 1,3
sanitizer declassify public
`
	p, err := Parse("custom", []byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Lattice().Size() != 3 {
		t.Fatalf("lattice size = %d", p.Lattice().Size())
	}
	secret, _ := p.Lattice().Lookup("secret")
	if p.VarType("_GET") != secret {
		t.Errorf("_GET should be secret")
	}
	s, ok := p.SinkFor("publish")
	if !ok {
		t.Fatalf("publish sink missing")
	}
	if !s.Checks(1) || s.Checks(2) || !s.Checks(3) {
		t.Errorf("publish args wrong: %+v", s.Args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown directive", "frobnicate x y", "unknown directive"},
		{"bad type", "var _GET radioactive", "unknown safety type"},
		{"late lattice", "var _GET tainted\nlattice chain a b", "before any other"},
		{"bad sink arg", "sink f tainted nope", "bad argument position"},
		{"zero sink arg", "sink f tainted 0", "bad argument position"},
		{"bad lattice", "lattice diamond a b c d", "usage: lattice chain"},
		{"short var", "var _GET", "usage: var"},
		{"short source", "source f", "usage: source"},
		{"short sanitizer", "sanitizer f", "usage: sanitizer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", []byte(tc.src))
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestMerge(t *testing.T) {
	base := Default()
	extra := New(base.Lattice())
	// Merging preludes over a *different* lattice instance must fail.
	other := New(lattice.Taint())
	if err := base.Merge(other); err == nil {
		t.Fatalf("merge across lattices should fail")
	}
	extra.AddSink("dosql", base.Lattice().Top(), 1)
	extra.SetVarType("trusted_cfg", base.Lattice().Bottom())
	if err := base.Merge(extra); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if _, ok := base.SinkFor("DoSQL"); !ok {
		t.Errorf("merged sink missing")
	}
}

func TestSinkChecks(t *testing.T) {
	s := Sink{Args: nil}
	if !s.Checks(1) || !s.Checks(99) {
		t.Errorf("nil args should check everything")
	}
	s = Sink{Args: []int{2}}
	if s.Checks(1) || !s.Checks(2) {
		t.Errorf("explicit args wrong")
	}
}

func TestVarsEnumeration(t *testing.T) {
	p := Default()
	vars := p.Vars()
	found := false
	for _, v := range vars {
		if v == "_POST" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Vars() missing _POST: %v", vars)
	}
}

func TestSourcesAndSanitizersEnumeration(t *testing.T) {
	p := Default()
	foundSrc, foundSan := false, false
	for _, s := range p.Sources() {
		if s.Name == "mysql_fetch_array" {
			foundSrc = true
		}
	}
	for _, s := range p.Sanitizers() {
		if s.Name == "htmlspecialchars" {
			foundSan = true
		}
	}
	if !foundSrc || !foundSan {
		t.Fatalf("enumerations incomplete: src=%v san=%v", foundSrc, foundSan)
	}
}

func TestSinksEnumeration(t *testing.T) {
	p := Default()
	found := false
	for _, s := range p.Sinks() {
		if s.Name == "mysql_query" && len(s.Args) == 1 && s.Args[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Sinks() missing mysql_query spec")
	}
}
