package prelude

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"webssari/internal/lattice"
)

// Parse reads a prelude file. The format is line-oriented:
//
//	# comment
//	lattice chain <name>...          declare the lattice as a chain, ⊥ first
//	var <VarName> <type>             initial safety type of a global variable
//	source <func> <type>             UIC postcondition: retrieved data's type
//	sink <func> <bound> [args]       SOC precondition: checked args must be
//	                                 strictly below <bound>; args is '*' or a
//	                                 comma-separated list of 1-based positions
//	sanitizer <func> <type>          routine whose result has the given type
//
// The lattice line, when present, must come before any line that names a
// type. When absent, the two-point taint lattice (untainted < tainted) is
// assumed.
func Parse(name string, src []byte) (*Prelude, error) {
	var p *Prelude
	ensure := func() *Prelude {
		if p == nil {
			p = New(lattice.Taint())
		}
		return p
	}

	sc := bufio.NewScanner(bytes.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, lineNo, fmt.Sprintf(format, args...))
		}

		switch fields[0] {
		case "lattice":
			if p != nil {
				return nil, errf("lattice must be declared before any other directive")
			}
			if len(fields) < 3 || fields[1] != "chain" {
				return nil, errf("usage: lattice chain <name>...")
			}
			lat, err := lattice.Chain(fields[2:]...)
			if err != nil {
				return nil, errf("bad lattice: %v", err)
			}
			p = New(lat)

		case "var":
			if len(fields) != 3 {
				return nil, errf("usage: var <name> <type>")
			}
			t, err := lookupType(ensure(), fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			ensure().SetVarType(strings.TrimPrefix(fields[1], "$"), t)

		case "source":
			if len(fields) != 3 {
				return nil, errf("usage: source <func> <type>")
			}
			t, err := lookupType(ensure(), fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			ensure().AddSource(fields[1], t)

		case "sink":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, errf("usage: sink <func> <bound> [*|n,m,...]")
			}
			t, err := lookupType(ensure(), fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			var args []int
			if len(fields) == 4 && fields[3] != "*" {
				for _, part := range strings.Split(fields[3], ",") {
					n, err := strconv.Atoi(part)
					if err != nil || n < 1 {
						return nil, errf("bad argument position %q", part)
					}
					args = append(args, n)
				}
			}
			ensure().AddSink(fields[1], t, args...)

		case "sanitizer":
			if len(fields) != 3 {
				return nil, errf("usage: sanitizer <func> <type>")
			}
			t, err := lookupType(ensure(), fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			ensure().AddSanitizer(fields[1], t)

		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prelude %s: %w", name, err)
	}
	return ensure(), nil
}

func lookupType(p *Prelude, name string) (lattice.Elem, error) {
	if e, ok := p.Lattice().Lookup(name); ok {
		return e, nil
	}
	return 0, fmt.Errorf("unknown safety type %q (lattice is %v)", name, p.Lattice())
}
