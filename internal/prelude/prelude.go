// Package prelude defines the trust environment of a verification run: the
// safety-type lattice, untrusted input channels (UIC) with their
// postconditions, sensitive output channels (SOC) with their preconditions,
// sanitization routines, and the initial safety types of global variables
// (PHP superglobals).
//
// The paper stores pre- and postcondition definitions "in two prelude files
// that are loaded during startup"; this package provides the same
// mechanism: a text format (see Parse) plus a built-in default prelude for
// PHP taint analysis.
package prelude

import (
	"fmt"
	"sort"
	"strings"

	"webssari/internal/lattice"
)

// Source is an untrusted input channel fi(X): calling it yields data of the
// given safety type (its postcondition).
type Source struct {
	Name string
	// Type is the safety level of data retrieved through this channel.
	Type lattice.Elem
}

// Sink is a sensitive output channel fo(X): its precondition requires every
// checked argument's type to be strictly lower than Bound.
type Sink struct {
	Name string
	// Bound is the precondition's required level τr: arguments must satisfy
	// t < τr. For the two-point taint lattice, Bound = tainted means
	// "arguments must be untainted".
	Bound lattice.Elem
	// Args lists the 1-based argument positions the precondition covers;
	// nil means all arguments.
	Args []int
}

// Checks reports whether the precondition covers 1-based argument position i.
func (s Sink) Checks(i int) bool {
	if len(s.Args) == 0 {
		return true
	}
	for _, a := range s.Args {
		if a == i {
			return true
		}
	}
	return false
}

// Sanitizer is a trust cast: its return value has the given safety type
// regardless of argument types (e.g. htmlspecialchars yields untainted
// data in the taint lattice).
type Sanitizer struct {
	Name string
	Type lattice.Elem
}

// Prelude is the complete trust environment. All lookups are by lower-cased
// name (PHP identifiers are case-insensitive); variable names are
// case-sensitive as in PHP.
type Prelude struct {
	lat        *lattice.Lattice
	sources    map[string]Source
	sinks      map[string]Sink
	sanitizers map[string]Sanitizer
	varTypes   map[string]lattice.Elem
}

// New returns an empty prelude over the given lattice.
func New(lat *lattice.Lattice) *Prelude {
	return &Prelude{
		lat:        lat,
		sources:    make(map[string]Source),
		sinks:      make(map[string]Sink),
		sanitizers: make(map[string]Sanitizer),
		varTypes:   make(map[string]lattice.Elem),
	}
}

// Lattice returns the safety-type lattice the prelude is defined over.
func (p *Prelude) Lattice() *lattice.Lattice { return p.lat }

// AddSource registers an untrusted input channel.
func (p *Prelude) AddSource(name string, typ lattice.Elem) {
	p.sources[lowerASCII(name)] = Source{Name: name, Type: typ}
}

// AddSink registers a sensitive output channel. args lists the 1-based
// checked argument positions (empty = all).
func (p *Prelude) AddSink(name string, bound lattice.Elem, args ...int) {
	p.sinks[lowerASCII(name)] = Sink{Name: name, Bound: bound, Args: args}
}

// AddSanitizer registers a sanitization routine.
func (p *Prelude) AddSanitizer(name string, typ lattice.Elem) {
	p.sanitizers[lowerASCII(name)] = Sanitizer{Name: name, Type: typ}
}

// SetVarType sets the initial safety type of a global variable (without the
// leading dollar sign, e.g. "_GET").
func (p *Prelude) SetVarType(name string, typ lattice.Elem) {
	p.varTypes[name] = typ
}

// SourceFor looks up a source by (case-insensitive) function name.
func (p *Prelude) SourceFor(name string) (Source, bool) {
	s, ok := p.sources[lowerASCII(name)]
	return s, ok
}

// SinkFor looks up a sink by (case-insensitive) function name.
func (p *Prelude) SinkFor(name string) (Sink, bool) {
	s, ok := p.sinks[lowerASCII(name)]
	return s, ok
}

// SanitizerFor looks up a sanitizer by (case-insensitive) function name.
func (p *Prelude) SanitizerFor(name string) (Sanitizer, bool) {
	s, ok := p.sanitizers[lowerASCII(name)]
	return s, ok
}

// VarType returns the initial safety type of a global variable, defaulting
// to ⊥ (fully trusted) for unknown names, as the paper's model does for
// program-created variables.
func (p *Prelude) VarType(name string) lattice.Elem {
	if t, ok := p.varTypes[name]; ok {
		return t
	}
	return p.lat.Bottom()
}

// Vars returns the names of all variables with explicit initial types.
func (p *Prelude) Vars() []string {
	out := make([]string, 0, len(p.varTypes))
	for name := range p.varTypes {
		out = append(out, name)
	}
	return out
}

// Sinks returns all registered sinks.
func (p *Prelude) Sinks() []Sink {
	out := make([]Sink, 0, len(p.sinks))
	for _, s := range p.sinks {
		out = append(out, s)
	}
	return out
}

// Sources returns all registered untrusted input channels.
func (p *Prelude) Sources() []Source {
	out := make([]Source, 0, len(p.sources))
	for _, s := range p.sources {
		out = append(out, s)
	}
	return out
}

// Sanitizers returns all registered sanitization routines.
func (p *Prelude) Sanitizers() []Sanitizer {
	out := make([]Sanitizer, 0, len(p.sanitizers))
	for _, s := range p.sanitizers {
		out = append(out, s)
	}
	return out
}

// Fingerprint returns a deterministic rendering of the whole trust
// environment — lattice structure, sources, sinks (with checked argument
// positions), sanitizers, and initial variable types — suitable as a
// compile-cache key component: two preludes with the same fingerprint
// produce identical abstract interpretations for the same source.
func (p *Prelude) Fingerprint() string {
	var b strings.Builder
	b.WriteString("lat:")
	for _, e := range p.lat.Elems() {
		fmt.Fprintf(&b, "%d=%s,", e, p.lat.Name(e))
		for _, f := range p.lat.Elems() {
			if p.lat.Leq(e, f) {
				fmt.Fprintf(&b, "%d<=%d;", e, f)
			}
		}
	}
	section := func(label string, keys []string, render func(k string)) {
		sort.Strings(keys)
		b.WriteString("\n" + label + ":")
		for _, k := range keys {
			render(k)
		}
	}
	section("sources", mapKeys(p.sources), func(k string) {
		s := p.sources[k]
		fmt.Fprintf(&b, "%s=%d;", k, s.Type)
	})
	section("sinks", mapKeys(p.sinks), func(k string) {
		s := p.sinks[k]
		fmt.Fprintf(&b, "%s=%d@%v;", k, s.Bound, s.Args)
	})
	section("sanitizers", mapKeys(p.sanitizers), func(k string) {
		s := p.sanitizers[k]
		fmt.Fprintf(&b, "%s=%d;", k, s.Type)
	})
	section("vars", mapKeys(p.varTypes), func(k string) {
		fmt.Fprintf(&b, "%s=%d;", k, p.varTypes[k])
	})
	return b.String()
}

func mapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Merge copies every definition of other into p, overwriting on conflict.
// Both preludes must share the same lattice.
func (p *Prelude) Merge(other *Prelude) error {
	if other.lat != p.lat {
		return fmt.Errorf("prelude: cannot merge preludes over different lattices")
	}
	for k, v := range other.sources {
		p.sources[k] = v
	}
	for k, v := range other.sinks {
		p.sinks[k] = v
	}
	for k, v := range other.sanitizers {
		p.sanitizers[k] = v
	}
	for k, v := range other.varTypes {
		p.varTypes[k] = v
	}
	return nil
}

func lowerASCII(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
