package prelude

import (
	"webssari/internal/lattice"
)

// defaultPreludeText is the built-in PHP trust environment, written in the
// prelude file format so that it exercises the same loader users see. It
// mirrors the channels the paper's WebSSARI prelude covered: HTTP request
// data and database reads are untrusted (database reads cover stored XSS,
// as in the paper's PHP Support Tickets example); SQL, HTML output, command
// execution, and code evaluation are sensitive output channels; the usual
// PHP escaping/casting routines are sanitizers.
const defaultPreludeText = `
# Default WebSSARI prelude for PHP taint analysis.
lattice chain untainted tainted

# --- initial variable types (PHP superglobals and legacy globals) --------
var _GET tainted
var _POST tainted
var _COOKIE tainted
var _REQUEST tainted
var _FILES tainted
var _SERVER tainted
var HTTP_GET_VARS tainted
var HTTP_POST_VARS tainted
var HTTP_COOKIE_VARS tainted
var HTTP_SERVER_VARS tainted
var HTTP_REFERER tainted
var PHP_SELF tainted
var QUERY_STRING tainted
var _SESSION untainted
var GLOBALS untainted

# --- untrusted input channels (UIC postconditions) ------------------------
source getenv tainted
source get_http_vars tainted
source import_request_variables tainted
source file tainted
source fgets tainted
source fread tainted
source file_get_contents tainted
source gzgets tainted
source readdir tainted
# Database reads deliver user-supplied stored data (stored XSS).
source mysql_fetch_array tainted
source mysql_fetch_row tainted
source mysql_fetch_object tainted
source mysql_fetch_assoc tainted
source mysql_result tainted
source pg_fetch_array tainted
source pg_fetch_row tainted
source pg_fetch_object tainted

# --- sensitive output channels (SOC preconditions) -------------------------
# HTML output: cross-site scripting.
sink echo tainted *
sink print tainted *
sink printf tainted *
sink print_r tainted 1
sink vprintf tainted *
sink die tainted *
sink exit tainted *
# SQL construction: SQL injection.
sink mysql_query tainted 1
sink mysql_db_query tainted 2
sink mysql_unbuffered_query tainted 1
sink pg_query tainted *
sink pg_exec tainted *
sink sqlite_query tainted *
# Command execution: arbitrary command injection.
sink exec tainted 1
sink system tainted 1
sink passthru tainted 1
sink popen tainted 1
sink proc_open tainted 1
sink shell_exec tainted 1
# Code evaluation and dynamic inclusion: remote code execution.
sink eval tainted *
sink include tainted *
sink include_once tainted *
sink require tainted *
sink require_once tainted *
sink fopen tainted 1
sink unlink tainted 1
sink header tainted *
sink mail tainted *

# --- sanitization routines -------------------------------------------------
sanitizer htmlspecialchars untainted
sanitizer htmlentities untainted
sanitizer strip_tags untainted
sanitizer addslashes untainted
sanitizer mysql_escape_string untainted
sanitizer mysql_real_escape_string untainted
sanitizer pg_escape_string untainted
sanitizer sqlite_escape_string untainted
sanitizer escapeshellarg untainted
sanitizer escapeshellcmd untainted
sanitizer intval untainted
sanitizer floatval untainted
sanitizer doubleval untainted
sanitizer count untainted
sanitizer strlen untainted
sanitizer md5 untainted
sanitizer sha1 untainted
sanitizer crc32 untainted
sanitizer urlencode untainted
sanitizer rawurlencode untainted
sanitizer base64_encode untainted
sanitizer bin2hex untainted
sanitizer websafe untainted
`

// Default returns the built-in PHP prelude over the two-point taint
// lattice. Each call returns a fresh, independently mutable prelude.
func Default() *Prelude {
	p, err := Parse("builtin", []byte(defaultPreludeText))
	if err != nil {
		// Unreachable: the built-in text is covered by tests.
		panic(err)
	}
	return p
}

// TaintLattice returns the lattice used by the default prelude together
// with its two elements, for callers that need to name them.
func TaintLattice() (lat *lattice.Lattice, untainted, tainted lattice.Elem) {
	lat = lattice.Taint()
	untainted = lat.Bottom()
	tainted = lat.Top()
	return lat, untainted, tainted
}
