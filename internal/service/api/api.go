// Package api defines the versioned wire types of the webssarid
// HTTP/JSON interface. Every response body carries `"schema": "v1"`;
// request bodies reject unknown fields, so client typos fail loudly
// instead of being silently ignored. The daemon (internal/service) and
// the Go client (package client) share these types, and the schema
// constant is the compatibility contract between them: additive changes
// keep "v1", breaking changes bump it.
package api

import (
	"encoding/json"
	"time"
)

// Schema is the wire-format version stamped into every response.
const Schema = "v1"

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states: queued → running → done | failed.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// SolverSpec is a job's solver configuration — the wire form of
// webssari.SolverConfig, carried under the "solver" key of both submit
// bodies. Zero fields keep the daemon's defaults; an unknown mode is
// rejected at admission (400). Mode, portfolio width, and warm starting
// are verdict-neutral (they change cost, never report content), so two
// jobs differing only in them still share cached results.
type SolverSpec struct {
	// Mode is the dispatch mode: "per-assert" (default), "shared", or
	// "portfolio" (see VersionResponse.SolverModes).
	Mode string `json:"mode,omitempty"`
	// MaxConflicts / MaxRestarts cap SAT effort per solver call
	// (0 = daemon default).
	MaxConflicts uint64 `json:"max_conflicts,omitempty"`
	MaxRestarts  uint64 `json:"max_restarts,omitempty"`
	// Portfolio is the lane count raced per hard assertion in portfolio
	// mode (0 = engine default).
	Portfolio int `json:"portfolio,omitempty"`
	// WarmStart re-imports the shared solver's learnt clauses from the
	// daemon's result store on repeat verification (shared mode + store
	// required; inert otherwise).
	WarmStart bool `json:"warm_start,omitempty"`
}

// SubmitFileRequest is the POST /v1/files body.
type SubmitFileRequest struct {
	// Name labels the source in reports (defaults to "input.php").
	Name string `json:"name,omitempty"`
	// Source is the PHP text to verify.
	Source string `json:"source"`
	// Dir, when set, roots include resolution at a server-local
	// directory. Rejected when the daemon disables directory access.
	Dir string `json:"dir,omitempty"`
	// Policy selects a built-in security policy by name for this job
	// (see VersionResponse.Policies); empty keeps the daemon's default
	// trust environment. Unknown names are rejected (400).
	Policy string `json:"policy,omitempty"`
	// PolicyJSON carries a complete custom policy declaration instead;
	// it wins over Policy when both are set.
	PolicyJSON string `json:"policy_json,omitempty"`
	// Solver overrides the daemon's solver configuration for this job
	// (nil keeps the daemon defaults).
	Solver *SolverSpec `json:"solver,omitempty"`
}

// SubmitDirRequest is the POST /v1/dirs body.
type SubmitDirRequest struct {
	// Dir is a server-local directory to verify recursively.
	Dir string `json:"dir"`
	// Incremental overrides the daemon's default delta-verification
	// setting for this job; nil keeps the server default. Requires the
	// daemon to run with a result store to have any effect.
	Incremental *bool `json:"incremental,omitempty"`
	// Watch keeps the job alive after the first verification: the daemon
	// polls the directory snapshot and re-verifies on every change,
	// streaming each round's per-file reports plus a summary line over
	// the job's NDJSON stream, until the job is cancelled (DELETE) or the
	// server drains.
	Watch bool `json:"watch,omitempty"`
	// WatchIntervalMS is the snapshot poll interval in milliseconds
	// (0 = server default).
	WatchIntervalMS int `json:"watch_interval_ms,omitempty"`
	// Policy / PolicyJSON select the security policy for this job, as in
	// SubmitFileRequest.
	Policy     string `json:"policy,omitempty"`
	PolicyJSON string `json:"policy_json,omitempty"`
	// Solver overrides the daemon's solver configuration for this job
	// (nil keeps the daemon defaults), as in SubmitFileRequest.
	Solver *SolverSpec `json:"solver,omitempty"`
}

// SubmitResponse answers an accepted submission (HTTP 202).
type SubmitResponse struct {
	SchemaV string `json:"schema"`
	Job     string `json:"job"`
	Status  string `json:"status"`
	Result  string `json:"result"`
	Stream  string `json:"stream"`
	// Trace is the URL of the job's Chrome/Perfetto trace document.
	Trace string `json:"trace,omitempty"`
	// TraceID is the job's distributed trace ID — taken from the
	// submitter's `traceparent` header when present, minted otherwise.
	TraceID string `json:"trace_id,omitempty"`
}

// JobStatus is one job's status rendering. SchemaV is set on top-level
// responses (GET /v1/jobs/{id}) and empty inside JobList entries.
type JobStatus struct {
	SchemaV   string     `json:"schema,omitempty"`
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Target    string     `json:"target"`
	State     JobState   `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Verdict   string     `json:"verdict,omitempty"`
	// Watch marks a watch-mode job; Rounds counts its completed
	// verification rounds.
	Watch  bool `json:"watch,omitempty"`
	Rounds int  `json:"rounds,omitempty"`
	// TraceID is the job's distributed trace ID; every span and log line
	// of the job (on the coordinator and on workers) carries it.
	TraceID string `json:"trace_id,omitempty"`
}

// JobList is the GET /v1/jobs response (newest first).
type JobList struct {
	SchemaV string      `json:"schema"`
	Jobs    []JobStatus `json:"jobs"`
}

// ResultResponse is the GET /v1/jobs/{id}/result response. Report is
// the raw webssari.Report (file jobs) or webssari.ProjectReport (dir
// jobs) JSON; typed accessors live in the client package.
type ResultResponse struct {
	SchemaV string          `json:"schema"`
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Error   string          `json:"error,omitempty"`
	Report  json.RawMessage `json:"report,omitempty"`
}

// VersionResponse is the GET /v1/version response.
type VersionResponse struct {
	SchemaV string `json:"schema"`
	// Version is the daemon's buildinfo banner.
	Version string `json:"version"`
	// Policies lists the built-in security policies jobs may select.
	Policies []string `json:"policies,omitempty"`
	// SolverModes lists the solver dispatch modes jobs may request via
	// SolverSpec.Mode — the daemon's capability advertisement.
	SolverModes []string `json:"solver_modes,omitempty"`
}

// Health is the GET /healthz response.
type Health struct {
	SchemaV  string `json:"schema"`
	Status   string `json:"status"`
	Queued   int    `json:"queued"`
	InFlight int64  `json:"inflight"`
	// Version is the daemon's buildinfo banner; UptimeMS is how long the
	// service has been up.
	Version  string `json:"version,omitempty"`
	UptimeMS int64  `json:"uptime_ms"`
}

// ErrorResponse is the body of every non-2xx JSON answer.
type ErrorResponse struct {
	SchemaV string `json:"schema"`
	Error   string `json:"error"`
}

// --- Cluster coordination (coordinator mode of webssarid) ---

// RegisterWorkerRequest is the POST /v1/cluster/workers body a worker
// daemon sends to join the cluster.
type RegisterWorkerRequest struct {
	// Addr is the worker's advertised base URL
	// (e.g. "http://10.0.0.7:8722") — the address the coordinator
	// dispatches jobs to, which may differ from the listen address
	// behind NAT or in containers.
	Addr string `json:"addr"`
	// Name is an optional human-readable label shown in cluster status.
	Name string `json:"name,omitempty"`
	// Fingerprint summarizes the worker's verdict-shaping configuration.
	// When both sides set one, the coordinator rejects a mismatch (409):
	// a worker with different analysis options would silently break the
	// cluster's byte-identical-verdicts invariant.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// RegisterWorkerResponse acknowledges a registration.
type RegisterWorkerResponse struct {
	SchemaV string `json:"schema"`
	// Worker is the coordinator-assigned worker ID, used in heartbeat
	// and deregistration paths.
	Worker string `json:"worker"`
	// HeartbeatIntervalMS is the heartbeat cadence the coordinator
	// expects; missing several in a row gets the worker evicted.
	HeartbeatIntervalMS int `json:"heartbeat_interval_ms"`
}

// Ack is the minimal success body of state-changing cluster calls
// (heartbeat, deregistration).
type Ack struct {
	SchemaV string `json:"schema"`
	Status  string `json:"status"`
}

// WorkerStatus is one worker's row in ClusterStatus.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Addr string `json:"addr"`
	// Live is true while the worker heartbeats; an evicted or
	// deregistered worker disappears from the listing instead.
	Live bool `json:"live"`
	// LastHeartbeatMS is how long ago the last heartbeat arrived.
	LastHeartbeatMS int64 `json:"last_heartbeat_ms"`
	// EvictInMS is the time remaining before the coordinator evicts this
	// worker if no further heartbeat arrives (0 = eviction imminent) —
	// the at-a-glance signal for spotting near-eviction workers.
	EvictInMS int64 `json:"evict_in_ms"`
	// Breaker is the worker's circuit-breaker state
	// ("closed" | "open" | "half-open").
	Breaker string `json:"breaker"`
	// Dispatches and Failures count per-file dispatch attempts routed to
	// this worker and how many of them failed.
	Dispatches int64 `json:"dispatches"`
	Failures   int64 `json:"failures,omitempty"`
}

// ClusterStatus is the GET /v1/cluster response.
type ClusterStatus struct {
	SchemaV string         `json:"schema"`
	Workers []WorkerStatus `json:"workers"`
	// Live counts currently registered workers.
	Live int `json:"live"`
	// Evictions, Redispatches, and DegradedRuns mirror the cluster
	// telemetry counters over the coordinator's lifetime.
	Evictions    int64 `json:"evictions"`
	Redispatches int64 `json:"redispatches"`
	DegradedRuns int64 `json:"degraded_runs"`
	// JobsByPolicy counts completed jobs per security policy over the
	// daemon's lifetime ("default" = no policy selected).
	JobsByPolicy map[string]int64 `json:"jobs_by_policy,omitempty"`
}
