package service

// Observability surface tests: the SLO middleware's per-route latency
// histograms and breach counters, the /debug/events flight recorder,
// healthz's version/uptime fields, and the per-job trace endpoint's
// disabled path. (The clustered golden path lives in internal/cluster.)

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webssari/internal/telemetry"
)

func metricsPage(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestSLOMetricsPerRoute: every /v1 route pre-registers its latency
// histogram and breach counter, requests land samples in the right
// series, and a zero objective (sub-nanosecond here, so every request
// breaches) increments webssari_slo_breaches_total for that route only.
func TestSLOMetricsPerRoute(t *testing.T) {
	tel := telemetry.New()
	s := New(Config{Workers: 1, Telemetry: tel, LatencyObjective: time.Nanosecond})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	page := metricsPage(t, ts)
	for _, route := range []string{"/v1/files", "/v1/dirs", "/v1/jobs", "/v1/version"} {
		if !strings.Contains(page, `webssari_http_request_seconds_count{route="`+route+`"}`) {
			t.Fatalf("metrics page lacks the pre-registered histogram for %s:\n%s", route, page)
		}
		if !strings.Contains(page, `webssari_slo_breaches_total{route="`+route+`"}`) {
			t.Fatalf("metrics page lacks the breach counter for %s", route)
		}
	}

	if _, err := http.Get(ts.URL + "/v1/version"); err != nil {
		t.Fatal(err)
	}
	reg := tel.Metrics
	hist := reg.Histogram(telemetry.Name(telemetry.MetricHTTPRequestSeconds, "route", "/v1/version"), nil)
	if hist.Count() == 0 {
		t.Fatal("request did not land in the /v1/version histogram")
	}
	breaches := reg.Counter(telemetry.Name(telemetry.MetricSLOBreaches, "route", "/v1/version"))
	if breaches.Value() == 0 {
		t.Fatal("1ns objective did not count a breach for /v1/version")
	}
	if other := reg.Counter(telemetry.Name(telemetry.MetricSLOBreaches, "route", "/v1/dirs")).Value(); other != 0 {
		t.Fatalf("/v1/dirs breach counter = %d without any request", other)
	}
}

// TestDebugEventsEndpoint: log lines emitted while a job runs are
// retrievable from the service's own /debug/events, carrying job_id and
// trace_id attrs.
func TestDebugEventsEndpoint(t *testing.T) {
	logger, err := telemetry.NewLogger(io.Discard, slog.LevelInfo, "text", 64)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Logger: logger})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{
		"name": "page.php", "source": safeSrc,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["job"].(string)
	waitDone(t, ts, id)

	code, events := getJSON(t, ts, "/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events: HTTP %d", code)
	}
	list, _ := events["events"].([]any)
	var sawJob bool
	for _, e := range list {
		ev, _ := e.(map[string]any)
		attrs, _ := ev["attrs"].(map[string]any)
		if attrs["job_id"] == id {
			sawJob = true
			if tid, _ := attrs["trace_id"].(string); len(tid) != 32 {
				t.Fatalf("job event lacks a trace_id attr: %v", ev)
			}
		}
	}
	if !sawJob {
		t.Fatalf("no recorded event carries job_id=%s: %v", id, events)
	}
}

// TestHealthzVersionAndUptime: the liveness page reports the build
// banner and a sane uptime.
func TestHealthzVersionAndUptime(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, h := getJSON(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	ver, _ := h["version"].(string)
	if !strings.Contains(ver, "webssarid") {
		t.Fatalf("healthz version = %q, want the build banner", ver)
	}
	if _, ok := h["uptime_ms"].(float64); !ok {
		t.Fatalf("healthz lacks uptime_ms: %v", h)
	}
}

// TestJobTraceDisabledTelemetry: without telemetry there is no per-job
// tracer, and the trace endpoint answers 404 rather than serving an
// empty document — the verdicts themselves are unaffected.
func TestJobTraceDisabledTelemetry(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{
		"name": "page.php", "source": safeSrc,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["job"].(string)
	if st := waitDone(t, ts, id); st["state"] != string(stateDone) {
		t.Fatalf("job finished %v", st["state"])
	}
	if code, _ := getJSON(t, ts, "/v1/jobs/"+id+"/trace"); code != http.StatusNotFound {
		t.Fatalf("trace of an untraced job: HTTP %d, want 404", code)
	}
}

// TestJobTraceServed: with telemetry attached the endpoint serves a
// Chrome trace document whose job span carries the job's trace ID.
func TestJobTraceServed(t *testing.T) {
	s := New(Config{Workers: 1, Telemetry: telemetry.New()})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{
		"name": "page.php", "source": vulnerableSrc,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["job"].(string)
	traceID, _ := sub["trace_id"].(string)
	if len(traceID) != 32 {
		t.Fatalf("submit response trace_id = %q", traceID)
	}
	waitDone(t, ts, id)

	code, doc := getJSON(t, ts, "/v1/jobs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	events, _ := doc["traceEvents"].([]any)
	if len(events) == 0 {
		t.Fatal("trace document has no events")
	}
	var sawJobSpan bool
	for _, e := range events {
		ev, _ := e.(map[string]any)
		args, _ := ev["args"].(map[string]any)
		if ev["name"] == "job" && args["trace_id"] == traceID {
			sawJobSpan = true
		}
	}
	if !sawJobSpan {
		t.Fatalf("no job span stamped with trace %s in %d events", traceID, len(events))
	}
}
