package service

// Daemon-side policy tests: per-job policy selection, the daemon-wide
// default, admission rejection of unknown policies, the advertised
// policy list on /v1/version, and the per-policy job counters on
// /metrics.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"webssari/internal/telemetry"
)

// ssrfSrc is flagged only by the ssrf policy: file_get_contents is not
// a sink in the default trust environment.
const ssrfSrc = `<?php
$url = $_GET['feed'];
$body = file_get_contents($url);
?>`

func submitWait(t *testing.T, ts *httptest.Server, body map[string]string) map[string]any {
	t.Helper()
	code, sub := postJSON(t, ts, "/v1/files", body)
	if code != 202 {
		t.Fatalf("submit: HTTP %d (%v)", code, sub)
	}
	id, _ := sub["job"].(string)
	return waitDone(t, ts, id)
}

func TestPerJobPolicy(t *testing.T) {
	tel := telemetry.New()
	s := New(Config{Workers: 2, Telemetry: tel})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Policy-free: file_get_contents is not a sink, the page is safe.
	st := submitWait(t, ts, map[string]string{"name": "fetch.php", "source": ssrfSrc})
	if st["verdict"] != "safe" {
		t.Fatalf("policy-free verdict = %v, want safe", st["verdict"])
	}
	// Same source under the ssrf policy is a finding.
	st = submitWait(t, ts, map[string]string{
		"name": "fetch.php", "source": ssrfSrc, "policy": "ssrf"})
	if st["verdict"] != "unsafe" {
		t.Fatalf("ssrf verdict = %v, want unsafe", st["verdict"])
	}
	// Explicit default behaves like policy-free.
	st = submitWait(t, ts, map[string]string{
		"name": "fetch.php", "source": ssrfSrc, "policy": "default"})
	if st["verdict"] != "safe" {
		t.Fatalf("default-policy verdict = %v, want safe", st["verdict"])
	}

	// Per-policy job counters: both the in-process snapshot and the
	// Prometheus exposition carry the split.
	counts := s.JobsByPolicy()
	if counts["default"] != 2 || counts["ssrf"] != 1 {
		t.Fatalf("JobsByPolicy = %v, want default:2 ssrf:1", counts)
	}
	page := metricsPage(t, ts)
	for _, want := range []string{
		`webssari_jobs_total{policy="default"} 2`,
		`webssari_jobs_total{policy="ssrf"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page lacks %q:\n%s", want, page)
		}
	}
}

func TestDaemonDefaultPolicy(t *testing.T) {
	s := New(Config{Workers: 1, Policy: "ssrf"})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Jobs that pick no policy inherit the daemon's.
	st := submitWait(t, ts, map[string]string{"name": "fetch.php", "source": ssrfSrc})
	if st["verdict"] != "unsafe" {
		t.Fatalf("inherited-policy verdict = %v, want unsafe", st["verdict"])
	}
	// A per-job policy overrides the daemon default.
	st = submitWait(t, ts, map[string]string{
		"name": "fetch.php", "source": ssrfSrc, "policy": "default"})
	if st["verdict"] != "safe" {
		t.Fatalf("override verdict = %v, want safe", st["verdict"])
	}
	// Jobs without a policy of their own count under the daemon's.
	counts := s.JobsByPolicy()
	if counts["ssrf"] != 1 || counts["default"] != 1 {
		t.Fatalf("JobsByPolicy = %v, want ssrf:1 default:1", counts)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp := postJSON(t, ts, "/v1/files", map[string]string{
		"name": "x.php", "source": safeSrc, "policy": "no-such-policy"})
	if code != 400 {
		t.Fatalf("unknown policy: HTTP %d (%v)", code, resp)
	}
	msg, _ := resp["error"].(string)
	if !strings.Contains(msg, "invalid policy") {
		t.Fatalf("error = %q, want an invalid-policy message", msg)
	}

	// Policy JSON that fails to compile is rejected the same way.
	code, resp = postJSON(t, ts, "/v1/files", map[string]string{
		"name": "x.php", "source": safeSrc, "policy_json": `{"name":"bad"}`})
	if code != 400 {
		t.Fatalf("bad policy JSON: HTTP %d (%v)", code, resp)
	}
}

func TestVersionAdvertisesPolicies(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v := getJSON(t, ts, "/v1/version")
	if code != 200 {
		t.Fatalf("/v1/version: HTTP %d", code)
	}
	raw, _ := v["policies"].([]any)
	got := make(map[string]bool, len(raw))
	for _, p := range raw {
		s, _ := p.(string)
		got[s] = true
	}
	for _, want := range []string{"default", "xss-context", "ssrf"} {
		if !got[want] {
			t.Fatalf("policies = %v, missing %q", raw, want)
		}
	}
}
