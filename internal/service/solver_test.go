package service

// Tests of the per-job solver spec: admission validation, the version
// capability advertisement, daemon-default merging, and the wire
// round-trip's verdict neutrality (a solver-spec'd job must answer
// exactly like a default one).

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"webssari"
	"webssari/internal/service/api"
)

// TestSubmitSolverSpec drives one vulnerable file through the daemon
// twice — default solver and shared-mode spec — and requires identical
// report JSON (profiles are nil on wire reports already).
func TestSubmitSolverSpec(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(body map[string]any) map[string]any {
		t.Helper()
		code, sub := postJSON(t, ts, "/v1/files", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d (%v)", code, sub)
		}
		id, _ := sub["job"].(string)
		st := waitDone(t, ts, id)
		if st["state"] != string(stateDone) {
			t.Fatalf("job finished %v: %v", st["state"], st["error"])
		}
		code, res := getJSON(t, ts, "/v1/jobs/"+id+"/result")
		if code != http.StatusOK {
			t.Fatalf("result: HTTP %d", code)
		}
		rep, _ := res["report"].(map[string]any)
		if rep == nil {
			t.Fatalf("no report in %v", res)
		}
		delete(rep, "profile")
		return rep
	}

	ref := submit(map[string]any{"name": "page.php", "source": vulnerableSrc})
	for _, spec := range []map[string]any{
		{"mode": "shared"},
		{"mode": "portfolio", "portfolio": 3},
		{"mode": "shared", "warm_start": true},
	} {
		got := submit(map[string]any{"name": "page.php", "source": vulnerableSrc, "solver": spec})
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("solver spec %v changed the report:\n got %v\nwant %v", spec, got, ref)
		}
	}
}

// TestSubmitSolverSpecValidation covers rejection at admission.
func TestSubmitSolverSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []map[string]any{
		{"mode": "quantum"},
		{"portfolio": -1},
	}
	for _, spec := range cases {
		code, body := postJSON(t, ts, "/v1/files", map[string]any{
			"name": "p.php", "source": safeSrc, "solver": spec,
		})
		if code != http.StatusBadRequest {
			t.Errorf("solver spec %v: HTTP %d (%v), want 400", spec, code, body)
		}
	}
	// Unknown fields inside the spec fail like any other typo.
	code, _ := postJSON(t, ts, "/v1/files", map[string]any{
		"name": "p.php", "source": safeSrc,
		"solver": map[string]any{"lanes": 3},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown solver field: HTTP %d, want 400", code)
	}
}

// TestVersionAdvertisesSolverModes pins the capability advertisement:
// clients discover the dispatch modes from /v1/version.
func TestVersionAdvertisesSolverModes(t *testing.T) {
	s := New(Config{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := getJSON(t, ts, "/v1/version")
	if code != http.StatusOK {
		t.Fatalf("version: HTTP %d", code)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	var v api.VersionResponse
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	want := webssari.SolverModes()
	if !reflect.DeepEqual(v.SolverModes, want) {
		t.Fatalf("solver_modes = %v, want %v", v.SolverModes, want)
	}
}

// TestMergeSolver pins the field-wise overlay of per-job specs onto the
// daemon default.
func TestMergeSolver(t *testing.T) {
	base := webssari.SolverConfig{Mode: webssari.SolverShared, MaxConflicts: 100, WarmStart: true}
	over := webssari.SolverConfig{Mode: webssari.SolverPortfolio, Portfolio: 4}
	got := mergeSolver(base, over)
	want := webssari.SolverConfig{
		Mode:         webssari.SolverPortfolio,
		MaxConflicts: 100,
		Portfolio:    4,
		WarmStart:    true,
	}
	if got != want {
		t.Fatalf("mergeSolver = %+v, want %+v", got, want)
	}
	if got := mergeSolver(base, webssari.SolverConfig{}); got != base {
		t.Fatalf("zero overlay changed the base: %+v", got)
	}
}
