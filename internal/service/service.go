// Package service is the verification daemon behind cmd/webssarid: an
// HTTP/JSON front end over the webssari engine that turns the one-shot
// batch tool of the paper into an always-on analysis service.
//
// Shape of the system:
//
//   - Submissions (one PHP source, or a server-local directory) are
//     admission-controlled into a bounded queue; a full queue answers
//     429 immediately — callers get backpressure, not latency.
//   - A dispatcher drains the queue onto a bounded core.Pool of job
//     slots, so heavy traffic saturates the hardware without
//     oversubscribing it. Each job runs under the engine's PR-1
//     discipline: per-unit deadlines (WithDeadline), SAT conflict
//     budgets (WithBudget), fault isolation per file.
//   - Results stream: every job records one NDJSON line per finished
//     file the moment it completes, and GET /v1/jobs/{id}/stream replays
//     then follows that stream live. The same encoder serves xbmc's
//     -ndjson directory mode.
//   - With a persistent result store attached (internal/store), repeat
//     submissions of unchanged content answer from disk across process
//     restarts; hit/miss/GC counters are on /metrics.
//   - Drain is graceful: after Drain begins, new submissions get 503,
//     queued and in-flight jobs run to completion, then the server
//     stops. cmd/webssarid triggers this on SIGTERM.
//
// Directory jobs support two refinements on top of PR-4 semantics:
//
//   - Delta verification: with a store attached and incremental mode on
//     (Config.Incremental, overridable per job), re-submitting a
//     directory re-verifies only changed files plus their
//     reverse-dependency closure (webssari.WithIncremental).
//   - Watch mode: a {"watch": true} directory job stays alive after its
//     first round, polling the directory's stat snapshot (no OS watcher
//     dependency) and re-verifying on every change; each round streams
//     its per-file reports plus one summary line over the job's NDJSON
//     channel. Watch jobs end on DELETE /v1/jobs/{id} or server drain.
//
// Wire format: every JSON response is stamped `"schema": "v1"`, request
// bodies reject unknown fields, and the payload types live in the
// shared internal/service/api package (see also the root client
// package).
//
// Endpoints:
//
//	POST   /v1/files            api.SubmitFileRequest → 202 api.SubmitResponse
//	POST   /v1/dirs             api.SubmitDirRequest  → 202 api.SubmitResponse
//	GET    /v1/jobs             api.JobList (newest first)
//	GET    /v1/jobs/{id}        api.JobStatus
//	DELETE /v1/jobs/{id}        cancel: stop a watch job / abort a running job
//	GET    /v1/jobs/{id}/result api.ResultResponse (409 while running)
//	GET    /v1/jobs/{id}/stream NDJSON: per-file reports as they complete
//	GET    /v1/jobs/{id}/trace  Chrome/Perfetto trace of the job (with a Telemetry)
//	GET    /v1/version          api.VersionResponse (buildinfo + schema)
//	GET    /healthz             api.Health: liveness, queue occupancy, version, uptime
//	GET    /metrics             Prometheus exposition (with a Telemetry)
//	GET    /debug/events        structured-log flight recorder (with a Logger)
//
// Observability (PR 8): every job carries a distributed trace context —
// taken from the submitter's W3C `traceparent` header, or minted at
// admission — that is stamped on all spans and log lines and propagated
// downstream (the cluster coordinator forwards it per dispatch, workers
// extract it again). Each job records its spans into a private tracer,
// so GET /v1/jobs/{id}/trace serves one Perfetto-loadable document per
// job; in coordinator mode the document also contains the workers'
// stitched span exports. Request latency per /v1 route, queue wait,
// and latency-objective breaches (`webssari_slo_breaches_total`) are on
// /metrics; files slower than Config.SlowFile produce a warn-level log
// entry with the trace ID.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webssari"
	"webssari/internal/buildinfo"
	"webssari/internal/core"
	"webssari/internal/service/api"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// DefaultQueueSize bounds the submission queue when Config.QueueSize is
// zero. Shallow on purpose: the queue is a shock absorber, not a
// backlog — a deep queue only converts overload into latency.
const DefaultQueueSize = 64

// DefaultMaxSourceBytes caps one submitted source text (4 MiB — far
// above any real PHP page; admission control for the parser).
const DefaultMaxSourceBytes = 4 << 20

// defaultRetainedJobs bounds the finished-job history kept for status
// queries.
const defaultRetainedJobs = 256

// Runner is the execution backend a Server routes verification jobs
// through. The default (nil Config.Runner) runs the engine in process;
// a webssarid in coordinator mode installs the cluster coordinator
// here, which dispatches per-file work across registered workers. The
// contract is the engine's: implementations must produce reports
// byte-identical (profiles aside) to the local entry points under the
// same options.
type Runner interface {
	VerifyFile(ctx context.Context, src []byte, name string, opts ...webssari.Option) (*webssari.Report, error)
	VerifyDir(ctx context.Context, dir string, opts ...webssari.Option) (*webssari.ProjectReport, error)
}

// localRunner is the default Runner: the in-process engine.
type localRunner struct{}

func (localRunner) VerifyFile(ctx context.Context, src []byte, name string, opts ...webssari.Option) (*webssari.Report, error) {
	return webssari.VerifyContext(ctx, src, name, opts...)
}

func (localRunner) VerifyDir(ctx context.Context, dir string, opts ...webssari.Option) (*webssari.ProjectReport, error) {
	return webssari.VerifyDirContext(ctx, dir, opts...)
}

// Config assembles a Server.
type Config struct {
	// Store is the persistent result store (tier 2); nil disables it.
	Store *store.Store
	// StoreBackend is an alternative result-store backend used when
	// Store is nil — a cluster worker's remote view of the
	// coordinator's store. Ignored when Store is set.
	StoreBackend store.Backend
	// Runner executes verification jobs (nil: in-process engine).
	Runner Runner
	// Telemetry receives metrics and spans; nil runs uninstrumented.
	Telemetry *telemetry.Telemetry
	// Workers bounds concurrently running jobs (<= 0: GOMAXPROCS).
	Workers int
	// JobParallelism is each job's internal fan-out (WithParallelism);
	// 0 keeps the engine default.
	JobParallelism int
	// QueueSize bounds queued-but-unstarted jobs (<= 0: DefaultQueueSize).
	QueueSize int
	// JobDeadline bounds each verification unit's wall time
	// (WithDeadline: per file under directory jobs); 0 means none.
	JobDeadline time.Duration
	// MaxConflicts is the per-solver-call SAT budget (WithBudget); 0
	// means unlimited.
	//
	// Deprecated: set Solver.MaxConflicts instead; this field remains a
	// forwarding shim (Solver.MaxConflicts wins when both are set).
	MaxConflicts uint64
	// Solver is the daemon's default solver configuration
	// (webssari.WithSolverConfig): dispatch mode, search budgets,
	// portfolio width, warm starting. Per-job SolverSpec fields in
	// api.SubmitFileRequest / SubmitDirRequest override it field-wise.
	Solver webssari.SolverConfig
	// MaxSourceBytes caps a submitted source (<= 0: DefaultMaxSourceBytes).
	MaxSourceBytes int64
	// DisableDirs rejects directory submissions — for deployments where
	// the daemon must not read server-local paths chosen by clients.
	DisableDirs bool
	// Incremental makes directory jobs use delta re-verification by
	// default (webssari.WithIncremental; needs Store). Individual
	// submissions can override it via api.SubmitDirRequest.Incremental.
	Incremental bool
	// WatchInterval is the snapshot poll interval of watch-mode
	// directory jobs (0 = DefaultWatchInterval).
	WatchInterval time.Duration
	// Logger receives the daemon's structured log stream; nil is silent.
	// Job-scoped log lines carry job_id and trace_id attributes, and the
	// logger travels down the context so cluster-dispatch logging
	// inherits them.
	Logger *telemetry.Logger
	// LatencyObjective is the per-request latency SLO for the /v1
	// endpoints: a request (stream excluded) slower than this increments
	// webssari_slo_breaches_total{route=...}. 0 disables breach counting
	// (latency histograms still record).
	LatencyObjective time.Duration
	// SlowFile, when positive, logs a warn-level entry (with the job's
	// trace ID) for every file whose verification wall time exceeds it,
	// and counts it in webssari_service_slow_files_total.
	SlowFile time.Duration
	// Policy / PolicyJSON select the daemon's default security policy
	// (webssari.WithPolicy / WithPolicyJSON); per-job selections in
	// api.SubmitFileRequest / SubmitDirRequest override it.
	Policy     string
	PolicyJSON string
	// Options are extra engine options appended to every job (preludes,
	// extra sinks).
	Options []webssari.Option
}

// maxJobTraceEvents bounds each job's private tracer so long-lived
// watch jobs cannot grow a trace without limit; overflow is counted in
// the trace document's droppedEvents.
const maxJobTraceEvents = 100_000

// DefaultWatchInterval is the watch-mode poll cadence when
// Config.WatchInterval is zero: fast enough to feel live, cheap enough
// (a stat walk) to run forever.
const DefaultWatchInterval = 2 * time.Second

// jobState aliases the wire-level lifecycle states (internal/service/api).
type jobState = api.JobState

const (
	stateQueued  = api.StateQueued
	stateRunning = api.StateRunning
	stateDone    = api.StateDone
	stateFailed  = api.StateFailed
)

// job is one submitted verification unit.
type job struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`   // "file" | "dir"
	Target string `json:"target"` // file name or directory path

	source []byte // file jobs only
	dir    string // file jobs: optional include root

	// Directory-job refinements (set before admission, then read-only).
	incremental *bool         // per-job override of Config.Incremental
	watch       bool          // watch mode: re-verify on every change
	interval    time.Duration // watch poll interval (0 = server default)

	// Per-job security policy, validated at admission (set before
	// admission, then read-only). policyLabel is the canonical policy
	// name for counters — the declared name even for JSON policies,
	// "default" when no policy is selected.
	policy      string
	policyJSON  string
	policyLabel string

	// Per-job solver override, validated at admission (nil keeps the
	// daemon default).
	solver *webssari.SolverConfig

	// trace is the job's distributed trace context: the submitter's
	// traceparent, or minted at admission. Set before admission, then
	// read-only.
	trace telemetry.TraceContext

	mu        sync.Mutex
	state     jobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	fileRep   *webssari.Report
	dirRep    *webssari.ProjectReport
	rounds    int                // watch jobs: completed verification rounds
	cancel    context.CancelFunc // set while running; DELETE triggers it
	canceled  bool               // cancel requested (possibly pre-start)
	tracer    *telemetry.Tracer  // the job's private span sink (nil without telemetry)

	// stream is the job's NDJSON line log: per-file reports appended as
	// they complete, broadcast to live followers. Guarded by mu.
	lines [][]byte
	subs  []chan []byte
	done  chan struct{} // closed on completion
}

// status snapshots the job under its lock.
func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		ID: j.ID, Kind: j.Kind, Target: j.Target,
		State: j.state, Submitted: j.submitted, Error: j.errMsg,
		Watch: j.watch, Rounds: j.rounds, TraceID: j.trace.TraceID,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.fileRep != nil {
		st.Verdict = j.fileRep.Verdict
	}
	if j.dirRep != nil {
		st.Verdict = j.dirRep.Verdict()
	}
	return st
}

// appendLine records one NDJSON line and fans it out to followers. It
// implements io.Writer so the shared NDJSON encoder can drive it; each
// Write is exactly one line by the encoder's contract.
func (j *job) Write(line []byte) (int, error) {
	cp := append([]byte(nil), line...)
	j.mu.Lock()
	j.lines = append(j.lines, cp)
	subs := append([]chan []byte(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- cp:
		default: // a stalled follower drops lines rather than stalling the job
		}
	}
	return len(line), nil
}

// follow returns the lines recorded so far and, when the job is still
// running, a channel receiving subsequent lines.
func (j *job) follow() (replay [][]byte, live <-chan []byte, running bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([][]byte(nil), j.lines...)
	if j.state == stateQueued || j.state == stateRunning {
		ch := make(chan []byte, 64)
		j.subs = append(j.subs, ch)
		return replay, ch, true
	}
	return replay, nil, false
}

// Server is the verification service.
type Server struct {
	cfg      Config
	runner   Runner
	mux      *http.ServeMux
	pool     *core.Pool
	queue    chan *job
	maxSrc   int64
	deadline time.Duration

	admitMu  sync.RWMutex // guards queue sends against close-on-drain
	draining atomic.Bool
	inFlight atomic.Int64

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for listing and history cap
	nextID   atomic.Int64

	// jobsByPolicy counts completed jobs per policy label; mirrored on
	// /metrics as webssari_jobs_total{policy=...} and surfaced through
	// JobsByPolicy for the cluster status endpoint.
	policyMu     sync.Mutex
	jobsByPolicy map[string]int64

	wg             sync.WaitGroup // running jobs
	dispatcherDone chan struct{}
	// stopWatch ends every watch job's poll loop; closed when Drain
	// begins so long-running watch jobs cannot stall a graceful stop.
	stopWatch chan struct{}

	log     *telemetry.Logger
	started time.Time

	gQueue     *telemetry.GaugeMetric
	gInFlight  *telemetry.GaugeMetric
	cAccepted  *telemetry.CounterMetric
	cRejected  *telemetry.CounterMetric
	cDone      *telemetry.CounterMetric
	cFailed    *telemetry.CounterMetric
	cSlowFiles *telemetry.CounterMetric
	hJobSecs   *telemetry.HistogramMetric
	hQueueWait *telemetry.HistogramMetric
}

// New assembles a Server and starts its dispatcher. Call Drain to stop.
func New(cfg Config) *Server {
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = DefaultQueueSize
	}
	maxSrc := cfg.MaxSourceBytes
	if maxSrc <= 0 {
		maxSrc = DefaultMaxSourceBytes
	}
	runner := cfg.Runner
	if runner == nil {
		runner = localRunner{}
	}
	s := &Server{
		cfg:            cfg,
		runner:         runner,
		mux:            http.NewServeMux(),
		pool:           core.NewPool(cfg.Workers),
		queue:          make(chan *job, qs),
		maxSrc:         maxSrc,
		deadline:       cfg.JobDeadline,
		jobs:           make(map[string]*job),
		jobsByPolicy:   make(map[string]int64),
		dispatcherDone: make(chan struct{}),
		stopWatch:      make(chan struct{}),
		log:            cfg.Logger,
		started:        time.Now(),
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Metrics != nil {
		reg := cfg.Telemetry.Metrics
		s.gQueue = reg.Gauge(telemetry.MetricServiceQueueDepth)
		s.gInFlight = reg.Gauge(telemetry.MetricServiceInFlight)
		s.cAccepted = reg.Counter(telemetry.MetricServiceJobsAccepted)
		s.cRejected = reg.Counter(telemetry.MetricServiceJobsRejected)
		s.cDone = reg.Counter(telemetry.MetricServiceJobsDone)
		s.cFailed = reg.Counter(telemetry.MetricServiceJobsFailed)
		s.cSlowFiles = reg.Counter(telemetry.MetricServiceSlowFiles)
		s.hJobSecs = reg.Histogram(telemetry.MetricServiceJobSeconds, nil)
		s.hQueueWait = reg.Histogram(telemetry.MetricServiceQueueWait, nil)
		s.pool.Instrument(reg)
		if cfg.Store != nil {
			cfg.Store.Instrument(reg)
		}
	}
	s.routes()
	go s.dispatch()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	// Each /v1 route is wrapped explicitly with its SLO instrumentation
	// (latency histogram + breach counter per route). The route string is
	// passed alongside the pattern because the mux does not expose the
	// matched pattern to handlers on our minimum Go version.
	s.handle("POST /v1/files", "/v1/files", s.handleSubmitFile)
	s.handle("POST /v1/dirs", "/v1/dirs", s.handleSubmitDir)
	s.handle("GET /v1/jobs", "/v1/jobs", s.handleListJobs)
	s.handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobStatus)
	s.handle("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobCancel)
	s.handle("GET /v1/jobs/{id}/result", "/v1/jobs/{id}/result", s.handleJobResult)
	s.handle("GET /v1/jobs/{id}/trace", "/v1/jobs/{id}/trace", s.handleJobTrace)
	s.handle("GET /v1/version", "/v1/version", s.handleVersion)
	// The stream endpoint stays open for a job's lifetime; its duration
	// is not a request latency, so it gets no SLO instrumentation.
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Telemetry != nil && s.cfg.Telemetry.Metrics != nil {
		s.mux.Handle("GET /metrics", s.cfg.Telemetry.Metrics.Handler())
	}
	if rec := s.recorder(); rec != nil {
		s.mux.Handle("GET /debug/events", rec.Handler())
	}
}

// recorder returns the flight recorder to expose at /debug/events: the
// logger's, or one attached directly to the telemetry.
func (s *Server) recorder() *telemetry.FlightRecorder {
	if rec := s.log.Recorder(); rec != nil {
		return rec
	}
	if s.cfg.Telemetry != nil {
		return s.cfg.Telemetry.Logs
	}
	return nil
}

// handle registers an SLO-instrumented route: request latency recorded
// into webssari_http_request_seconds{route=...}, requests slower than
// the configured objective counted in webssari_slo_breaches_total.
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	if s.cfg.Telemetry != nil && s.cfg.Telemetry.Metrics != nil {
		reg := s.cfg.Telemetry.Metrics
		hist := reg.Histogram(telemetry.Name(telemetry.MetricHTTPRequestSeconds, "route", route), nil)
		// Resolving the counter up front keeps the series visible on
		// /metrics at zero, before any breach happens.
		breaches := reg.Counter(telemetry.Name(telemetry.MetricSLOBreaches, "route", route))
		objective := s.cfg.LatencyObjective
		inner := h
		h = func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			inner(w, r)
			elapsed := time.Since(start)
			hist.Observe(elapsed.Seconds())
			if objective > 0 && elapsed > objective {
				breaches.Inc()
				s.log.Warn("latency objective breached",
					"route", route, "method", r.Method,
					"elapsed_ms", elapsed.Milliseconds(),
					"objective_ms", objective.Milliseconds())
			}
		}
	}
	s.mux.HandleFunc(pattern, h)
}

// dispatch moves jobs from the queue onto pool slots until the queue is
// closed (Drain) and empty.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	for j := range s.queue {
		s.gQueue.Set(int64(len(s.queue)))
		// Background context: an accepted job is run even during drain —
		// that is the drain guarantee.
		if err := s.pool.Acquire(context.Background()); err != nil {
			s.failJob(j, fmt.Errorf("acquiring worker: %w", err))
			continue
		}
		s.wg.Add(1)
		go func(j *job) {
			defer s.wg.Done()
			defer s.pool.Release()
			s.runJob(j)
		}(j)
	}
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, already-accepted jobs (queued and in-flight) run to completion,
// then the dispatcher exits. It returns ctx.Err() if the context
// expires first — jobs still running at that point keep their goroutines
// until process exit. Status/result endpoints keep answering throughout;
// Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		s.admitMu.Lock()
		close(s.queue)
		s.admitMu.Unlock()
		if s.stopWatch != nil {
			close(s.stopWatch) // watch jobs finish their round and stop
		}
	}
	done := make(chan struct{})
	go func() {
		<-s.dispatcherDone
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// newJob registers a job in the history (evicting the oldest finished
// entries past the retention cap).
func (s *Server) newJob(kind, target string, source []byte, dir string) *job {
	j := &job{
		ID:        fmt.Sprintf("j%d", s.nextID.Add(1)),
		Kind:      kind,
		Target:    target,
		source:    source,
		dir:       dir,
		state:     stateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobsMu.Lock()
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	if len(s.jobOrder) > defaultRetainedJobs {
		kept := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			old := s.jobs[id]
			old.mu.Lock()
			finished := old.state == stateDone || old.state == stateFailed
			old.mu.Unlock()
			if finished && len(s.jobOrder)-len(kept) > defaultRetainedJobs {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.jobOrder = kept
	}
	s.jobsMu.Unlock()
	return j
}

// admit enqueues a job, answering false when the queue is full or the
// server is draining.
func (s *Server) admit(j *job) (ok bool, draining bool) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return false, true
	}
	select {
	case s.queue <- j:
		s.gQueue.Set(int64(len(s.queue)))
		s.cAccepted.Inc()
		return true, false
	default:
		s.cRejected.Inc()
		return false, false
	}
}

// jobOptions assembles the engine options one job runs under. The
// daemon-level knobs travel as one declarative webssari.Config — the
// round-trippable form the v1 API is built on — with any extra
// Config.Options appended after it (later options win).
func (s *Server) jobOptions(tel *telemetry.Telemetry, j *job) []webssari.Option {
	base := webssari.Config{
		Policy:       j.policy,
		PolicyJSON:   j.policyJSON,
		Store:        s.cfg.Store,
		StoreBackend: s.cfg.StoreBackend,
		Telemetry:    tel,
		Deadline:     s.deadline,
		MaxConflicts: s.cfg.MaxConflicts,
		Parallelism:  s.cfg.JobParallelism,
	}
	if base.Policy == "" && base.PolicyJSON == "" {
		// No per-job selection: fall back to the daemon default.
		base.Policy, base.PolicyJSON = s.cfg.Policy, s.cfg.PolicyJSON
	}
	base.Solver = s.cfg.Solver
	if j.solver != nil {
		// Field-wise override: zero fields of the job's spec keep the
		// daemon default, matching WithSolverConfig's sparse semantics.
		base.Solver = mergeSolver(base.Solver, *j.solver)
	}
	return append([]webssari.Option{webssari.WithConfig(base)}, s.cfg.Options...)
}

// mergeSolver overlays the non-zero fields of over onto base.
func mergeSolver(base, over webssari.SolverConfig) webssari.SolverConfig {
	if over.Mode != "" {
		base.Mode = over.Mode
	}
	if over.MaxConflicts != 0 {
		base.MaxConflicts = over.MaxConflicts
	}
	if over.MaxRestarts != 0 {
		base.MaxRestarts = over.MaxRestarts
	}
	if over.Portfolio != 0 {
		base.Portfolio = over.Portfolio
	}
	if over.WarmStart {
		base.WarmStart = true
	}
	return base
}

// solverConfigOf converts a wire SolverSpec into the engine's form.
func solverConfigOf(sp *api.SolverSpec) webssari.SolverConfig {
	if sp == nil {
		return webssari.SolverConfig{}
	}
	return webssari.SolverConfig{
		Mode:         webssari.SolverMode(sp.Mode),
		MaxConflicts: sp.MaxConflicts,
		MaxRestarts:  sp.MaxRestarts,
		Portfolio:    sp.Portfolio,
		WarmStart:    sp.WarmStart,
	}
}

// setSolver validates and records a job's solver override. A non-nil
// error is an admission failure (400) — unknown modes and invalid
// widths are rejected before the job ever queues.
func (s *Server) setSolver(j *job, sp *api.SolverSpec) error {
	if sp == nil {
		return nil
	}
	sc := solverConfigOf(sp)
	if _, err := webssari.ExportConfig(webssari.WithSolverConfig(sc)); err != nil {
		return err
	}
	j.solver = &sc
	return nil
}

// policyLabelOf derives the canonical counter label of a policy
// selection: the declared name (also for JSON policies), or fallback
// when nothing is selected.
func policyLabelOf(name, policyJSON, fallback string) string {
	if name == "" && policyJSON == "" {
		return fallback
	}
	cc, err := webssari.ExportConfig(webssari.WithConfig(webssari.Config{
		Policy: name, PolicyJSON: policyJSON,
	}))
	if err != nil || cc.Policy == "" {
		return fallback
	}
	return cc.Policy
}

// setPolicy validates and records a job's policy selection, deriving the
// canonical counter label: the declared name (also for JSON policies,
// whose wire label is their embedded name), or the daemon default's
// label when the job selects nothing. A non-nil error is an admission
// failure (400).
func (s *Server) setPolicy(j *job, name, policyJSON string) error {
	j.policy, j.policyJSON = name, policyJSON
	fallback := policyLabelOf(s.cfg.Policy, s.cfg.PolicyJSON, "default")
	if name == "" && policyJSON == "" {
		j.policyLabel = fallback
		return nil
	}
	if _, err := webssari.ExportConfig(webssari.WithConfig(webssari.Config{
		Policy: name, PolicyJSON: policyJSON,
	})); err != nil {
		return err
	}
	j.policyLabel = policyLabelOf(name, policyJSON, "default")
	return nil
}

// notePolicyJob counts one completed job against its policy label, on
// /metrics and in the JobsByPolicy snapshot.
func (s *Server) notePolicyJob(j *job) {
	label := j.policyLabel
	if label == "" {
		label = "default"
	}
	s.policyMu.Lock()
	s.jobsByPolicy[label]++
	s.policyMu.Unlock()
	if s.cfg.Telemetry != nil && s.cfg.Telemetry.Metrics != nil {
		s.cfg.Telemetry.Metrics.Counter(telemetry.Name(telemetry.MetricJobsTotal, "policy", label)).Inc()
	}
}

// JobsByPolicy snapshots the completed-job counts per policy label. The
// cluster coordinator surfaces it on GET /v1/cluster.
func (s *Server) JobsByPolicy() map[string]int64 {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	out := make(map[string]int64, len(s.jobsByPolicy))
	for k, v := range s.jobsByPolicy {
		out[k] = v
	}
	return out
}

// runJob executes one job on a worker slot.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	if j.canceled { // cancelled while still queued: never start
		j.mu.Unlock()
		s.failJob(j, context.Canceled)
		return
	}
	j.state = stateRunning
	j.started = time.Now()
	j.cancel = cancel
	queueWait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.hQueueWait.Observe(queueWait.Seconds())
	s.gInFlight.Set(s.inFlight.Add(1))
	defer func() { s.gInFlight.Set(s.inFlight.Add(-1)) }()

	// Each job records spans into a private tracer (shared metrics, own
	// trace) so GET /v1/jobs/{id}/trace can serve a per-job document; the
	// coordinator also stitches worker exports into it.
	jobTel := s.cfg.Telemetry
	if jobTel != nil {
		tr := telemetry.NewTracer()
		tr.SetLimit(maxJobTraceEvents)
		jobTel = &telemetry.Telemetry{Metrics: jobTel.Metrics, Logs: jobTel.Logs, Tracer: tr}
		j.mu.Lock()
		j.tracer = tr
		j.mu.Unlock()
	}
	ctx = telemetry.WithTelemetry(ctx, jobTel)
	// The job's execution is one causal hop below its admission: derive a
	// child span ID so downstream dispatches name the right parent.
	ctx = telemetry.WithTraceContext(ctx, j.trace.Child())
	jlog := s.log.With("job_id", j.ID, "trace_id", j.trace.TraceID)
	ctx = telemetry.WithLogger(ctx, jlog)
	jlog.Info("job started", "kind", j.Kind, "target", j.Target,
		"queue_wait_ms", queueWait.Milliseconds())
	ctx, sp := telemetry.StartRootSpan(ctx, "job", "id", j.ID, "kind", j.Kind, "target", j.Target)

	stream := NewNDJSON(j) // per-file lines accumulate on the job
	start := time.Now()
	var err error
	switch j.Kind {
	case "file":
		opts := s.jobOptions(jobTel, j)
		if j.dir != "" {
			opts = append(opts, webssari.WithDir(j.dir))
		}
		var rep *webssari.Report
		rep, err = s.runner.VerifyFile(ctx, j.source, j.Target, opts...)
		if err == nil {
			_ = stream.Encode(rep)
			s.noteSlowFile(jlog, rep)
			j.mu.Lock()
			j.fileRep = rep
			j.mu.Unlock()
		}
	case "dir":
		opts := append(s.jobOptions(jobTel, j), webssari.WithFileObserver(func(rep *webssari.Report) {
			_ = stream.Encode(rep)
			s.noteSlowFile(jlog, rep)
		}))
		incremental := s.cfg.Incremental
		if j.incremental != nil {
			incremental = *j.incremental
		}
		if incremental && (s.cfg.Store != nil || s.cfg.StoreBackend != nil) {
			opts = append(opts, webssari.WithIncremental())
		}
		if j.watch {
			err = s.runWatch(ctx, j, opts, stream)
		} else {
			var pr *webssari.ProjectReport
			pr, err = s.runner.VerifyDir(ctx, j.Target, opts...)
			if err == nil {
				j.mu.Lock()
				j.dirRep = pr
				j.rounds++
				j.mu.Unlock()
			}
		}
	default:
		err = fmt.Errorf("unknown job kind %q", j.Kind)
	}
	elapsed := time.Since(start)
	s.hJobSecs.Observe(elapsed.Seconds())
	// End the root span before publishing the terminal state: a client
	// that polls state=done and immediately downloads the trace must see
	// the complete document.
	sp.End()
	if err != nil {
		jlog.Warn("job failed", "error", err.Error(), "elapsed_ms", elapsed.Milliseconds())
		s.failJob(j, err)
		return
	}
	jlog.Info("job done", "elapsed_ms", elapsed.Milliseconds())
	s.finishJob(j, stateDone)
	s.cDone.Inc()
	s.notePolicyJob(j)
}

// noteSlowFile logs (and counts) a file whose verification wall time —
// compile plus solve, as profiled by the engine — exceeded the
// configured slow-file threshold. The log line carries the job's trace
// ID through jlog, so a slow file points straight at its trace.
func (s *Server) noteSlowFile(jlog *telemetry.Logger, rep *webssari.Report) {
	if s.cfg.SlowFile <= 0 || rep == nil || rep.Profile == nil {
		return
	}
	elapsed := rep.Profile.CompileWall() + rep.Profile.SolveWall()
	if elapsed < s.cfg.SlowFile {
		return
	}
	s.cSlowFiles.Inc()
	jlog.Warn("slow file", "file", rep.File, "elapsed_ms", elapsed.Milliseconds(),
		"threshold_ms", s.cfg.SlowFile.Milliseconds(), "verdict", rep.Verdict)
}

// runWatch is the watch-mode directory job loop: verify, publish the
// round, then poll the directory's stat snapshot until it changes and
// go again. The loop ends cleanly — state done, last report retained —
// on job cancellation (DELETE) or server drain; a verification or
// snapshot error fails the job. With incremental mode on, every round
// after the first costs a plan over the snapshot plus re-verification
// of only the changed closure.
func (s *Server) runWatch(ctx context.Context, j *job, opts []webssari.Option, stream *NDJSON) error {
	interval := j.interval
	if interval <= 0 {
		interval = s.cfg.WatchInterval
	}
	if interval <= 0 {
		interval = DefaultWatchInterval
	}
	for {
		// Fingerprint before verifying: an edit racing the verification
		// triggers the next round instead of being missed.
		fp, err := webssari.SnapshotFingerprint(j.Target)
		if err != nil {
			return fmt.Errorf("snapshotting %s: %w", j.Target, err)
		}
		pr, err := s.runner.VerifyDir(ctx, j.Target, opts...)
		if err != nil {
			return err
		}
		// One summary line closes each round on the stream: the project
		// report without its per-file bodies (they streamed individually),
		// the same convention as xbmc -ndjson.
		summary := *pr
		summary.Files = nil
		_ = stream.Encode(&summary)
		j.mu.Lock()
		j.dirRep = pr
		j.rounds++
		j.mu.Unlock()

		ticker := time.NewTicker(interval)
		waiting := true
		for waiting {
			select {
			case <-s.stopWatch:
				ticker.Stop()
				return nil
			case <-ctx.Done():
				ticker.Stop()
				return nil
			case <-ticker.C:
				cur, err := webssari.SnapshotFingerprint(j.Target)
				if err != nil {
					ticker.Stop()
					return fmt.Errorf("snapshotting %s: %w", j.Target, err)
				}
				if cur != fp {
					waiting = false
				}
			}
		}
		ticker.Stop()
	}
}

// failJob marks a job failed.
func (s *Server) failJob(j *job, err error) {
	j.mu.Lock()
	j.errMsg = err.Error()
	j.mu.Unlock()
	s.finishJob(j, stateFailed)
	s.cFailed.Inc()
}

// finishJob transitions a job to a terminal state and releases stream
// followers.
func (s *Server) finishJob(j *job, state jobState) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	close(j.done)
}

// --- HTTP handlers ---

// decodeRequest parses a JSON request body into dst, rejecting unknown
// fields and trailing content — the v1 schema's strictness contract.
func decodeRequest(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing content after JSON body")
	}
	return nil
}

func (s *Server) handleSubmitFile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxSrc+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > s.maxSrc {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("source exceeds %d bytes", s.maxSrc))
		return
	}
	var req api.SubmitFileRequest
	if err := decodeRequest(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "missing \"source\"")
		return
	}
	if req.Dir != "" && s.cfg.DisableDirs {
		writeError(w, http.StatusForbidden, "server-local include roots are disabled")
		return
	}
	name := req.Name
	if name == "" {
		name = "input.php"
	}
	j := s.newJob("file", name, []byte(req.Source), req.Dir)
	if err := s.setPolicy(j, req.Policy, req.PolicyJSON); err != nil {
		s.dropJob(j)
		writeError(w, http.StatusBadRequest, "invalid policy: "+err.Error())
		return
	}
	if err := s.setSolver(j, req.Solver); err != nil {
		s.dropJob(j)
		writeError(w, http.StatusBadRequest, "invalid solver spec: "+err.Error())
		return
	}
	j.trace = traceFromRequest(r)
	s.enqueue(w, j)
}

// traceFromRequest extracts the submitter's W3C trace context from the
// traceparent header, or mints a fresh one — every job has a trace ID
// whether or not the caller propagates one.
func traceFromRequest(r *http.Request) telemetry.TraceContext {
	if tc, ok := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader)); ok {
		return tc
	}
	return telemetry.NewTraceContext()
}

func (s *Server) handleSubmitDir(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableDirs {
		writeError(w, http.StatusForbidden, "directory submissions are disabled")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req api.SubmitDirRequest
	if err := decodeRequest(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Dir == "" {
		writeError(w, http.StatusBadRequest, "missing \"dir\"")
		return
	}
	info, err := os.Stat(req.Dir)
	if err != nil || !info.IsDir() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%q is not a readable directory", req.Dir))
		return
	}
	j := s.newJob("dir", req.Dir, nil, "")
	if err := s.setPolicy(j, req.Policy, req.PolicyJSON); err != nil {
		s.dropJob(j)
		writeError(w, http.StatusBadRequest, "invalid policy: "+err.Error())
		return
	}
	if err := s.setSolver(j, req.Solver); err != nil {
		s.dropJob(j)
		writeError(w, http.StatusBadRequest, "invalid solver spec: "+err.Error())
		return
	}
	j.incremental = req.Incremental
	j.watch = req.Watch
	j.trace = traceFromRequest(r)
	if req.WatchIntervalMS > 0 {
		j.interval = time.Duration(req.WatchIntervalMS) * time.Millisecond
	}
	s.enqueue(w, j)
}

// enqueue admits a job and writes the submission response.
func (s *Server) enqueue(w http.ResponseWriter, j *job) {
	ok, draining := s.admit(j)
	if draining {
		s.dropJob(j)
		// A draining daemon is gone shortly; in a cluster the load
		// balancer or retrying client should come back to whoever
		// replaces it, not hammer the drain.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !ok {
		s.dropJob(j)
		s.log.Warn("job rejected: queue full",
			"job_id", j.ID, "trace_id", j.trace.TraceID, "kind", j.Kind, "target", j.Target)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue is full; retry later")
		return
	}
	s.log.Info("job accepted",
		"job_id", j.ID, "trace_id", j.trace.TraceID, "kind", j.Kind, "target", j.Target,
		"queued", len(s.queue))
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, api.SubmitResponse{
		SchemaV: api.Schema,
		Job:     j.ID,
		Status:  fmt.Sprintf("/v1/jobs/%s", j.ID),
		Result:  fmt.Sprintf("/v1/jobs/%s/result", j.ID),
		Stream:  fmt.Sprintf("/v1/jobs/%s/stream", j.ID),
		Trace:   fmt.Sprintf("/v1/jobs/%s/trace", j.ID),
		TraceID: j.trace.TraceID,
	})
}

// dropJob removes a job that was never admitted.
func (s *Server) dropJob(j *job) {
	s.jobsMu.Lock()
	delete(s.jobs, j.ID)
	for i, id := range s.jobOrder {
		if id == j.ID {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
	s.jobsMu.Unlock()
}

func (s *Server) lookup(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	ids := append([]string(nil), s.jobOrder...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.jobsMu.Unlock()
	out := make([]api.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Submitted.After(out[k].Submitted) })
	writeJSON(w, api.JobList{SchemaV: api.Schema, Jobs: out})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	st.SchemaV = api.Schema
	writeJSON(w, st)
}

// handleJobCancel stops a job: a watch job ends its loop cleanly (state
// done, last round's report retained), a running one-shot job winds
// down through context cancellation into a failed state, and a queued
// job is failed before it starts. Cancellation is asynchronous — the
// response reports the state at request time; poll or follow the stream
// for the terminal state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	j.canceled = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	st := j.status()
	st.SchemaV = api.Schema
	writeJSON(w, st)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, api.VersionResponse{
		SchemaV:     api.Schema,
		Version:     buildinfo.Version("webssarid"),
		Policies:    webssari.Policies(),
		SolverModes: webssari.SolverModes(),
	})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	fileRep, dirRep := j.fileRep, j.dirRep
	j.mu.Unlock()
	switch state {
	case stateQueued, stateRunning:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; poll status or follow the stream", state))
		return
	case stateFailed:
		writeJSON(w, api.ResultResponse{SchemaV: api.Schema, ID: j.ID, Kind: j.Kind, Error: errMsg})
		return
	}
	if r.URL.Query().Get("text") == "1" && fileRep != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, fileRep.Text)
		return
	}
	var report any
	switch {
	case fileRep != nil:
		report = fileRep
	case dirRep != nil:
		report = dirRep
	default:
		writeError(w, http.StatusInternalServerError, "job finished without a report")
		return
	}
	raw, err := json.Marshal(report)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding report: "+err.Error())
		return
	}
	writeJSON(w, api.ResultResponse{SchemaV: api.Schema, ID: j.ID, Kind: j.Kind, Report: raw})
}

// handleJobTrace serves the job's span recording as a Chrome/Perfetto
// trace-event document. For a job run by the cluster coordinator the
// document also contains the stitched span exports of every worker that
// verified files for it — one downloadable artifact explains the whole
// distributed run. Available as soon as the job starts (a running job
// serves a partial trace) and retained with the job history.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	tr := j.tracer
	j.mu.Unlock()
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace recorded (telemetry disabled, or job not started)")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = tr.WriteDoc(w)
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	replay, live, running := j.follow()
	for _, line := range replay {
		if _, err := w.Write(line); err != nil {
			return
		}
	}
	flush()
	if !running {
		return
	}
	for {
		select {
		case line, ok := <-live:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, api.Health{
		SchemaV:  api.Schema,
		Status:   status,
		Queued:   len(s.queue),
		InFlight: s.inFlight.Load(),
		Version:  buildinfo.Version("webssarid"),
		UptimeMS: time.Since(s.started).Milliseconds(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{SchemaV: api.Schema, Error: msg})
}
