// Package service is the verification daemon behind cmd/webssarid: an
// HTTP/JSON front end over the webssari engine that turns the one-shot
// batch tool of the paper into an always-on analysis service.
//
// Shape of the system:
//
//   - Submissions (one PHP source, or a server-local directory) are
//     admission-controlled into a bounded queue; a full queue answers
//     429 immediately — callers get backpressure, not latency.
//   - A dispatcher drains the queue onto a bounded core.Pool of job
//     slots, so heavy traffic saturates the hardware without
//     oversubscribing it. Each job runs under the engine's PR-1
//     discipline: per-unit deadlines (WithDeadline), SAT conflict
//     budgets (WithBudget), fault isolation per file.
//   - Results stream: every job records one NDJSON line per finished
//     file the moment it completes, and GET /v1/jobs/{id}/stream replays
//     then follows that stream live. The same encoder serves xbmc's
//     -ndjson directory mode.
//   - With a persistent result store attached (internal/store), repeat
//     submissions of unchanged content answer from disk across process
//     restarts; hit/miss/GC counters are on /metrics.
//   - Drain is graceful: after Drain begins, new submissions get 503,
//     queued and in-flight jobs run to completion, then the server
//     stops. cmd/webssarid triggers this on SIGTERM.
//
// Endpoints:
//
//	POST /v1/files            {"name","source"[,"dir"]} → 202 {job}
//	POST /v1/dirs             {"dir"}                   → 202 {job}
//	GET  /v1/jobs             job summaries (newest first)
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/result finished job's full report (409 while running)
//	GET  /v1/jobs/{id}/stream NDJSON: per-file reports as they complete
//	GET  /healthz             liveness + queue occupancy
//	GET  /metrics             Prometheus exposition (with a Telemetry)
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webssari"
	"webssari/internal/core"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

// DefaultQueueSize bounds the submission queue when Config.QueueSize is
// zero. Shallow on purpose: the queue is a shock absorber, not a
// backlog — a deep queue only converts overload into latency.
const DefaultQueueSize = 64

// DefaultMaxSourceBytes caps one submitted source text (4 MiB — far
// above any real PHP page; admission control for the parser).
const DefaultMaxSourceBytes = 4 << 20

// defaultRetainedJobs bounds the finished-job history kept for status
// queries.
const defaultRetainedJobs = 256

// Config assembles a Server.
type Config struct {
	// Store is the persistent result store (tier 2); nil disables it.
	Store *store.Store
	// Telemetry receives metrics and spans; nil runs uninstrumented.
	Telemetry *telemetry.Telemetry
	// Workers bounds concurrently running jobs (<= 0: GOMAXPROCS).
	Workers int
	// JobParallelism is each job's internal fan-out (WithParallelism);
	// 0 keeps the engine default.
	JobParallelism int
	// QueueSize bounds queued-but-unstarted jobs (<= 0: DefaultQueueSize).
	QueueSize int
	// JobDeadline bounds each verification unit's wall time
	// (WithDeadline: per file under directory jobs); 0 means none.
	JobDeadline time.Duration
	// MaxConflicts is the per-solver-call SAT budget (WithBudget); 0
	// means unlimited.
	MaxConflicts uint64
	// MaxSourceBytes caps a submitted source (<= 0: DefaultMaxSourceBytes).
	MaxSourceBytes int64
	// DisableDirs rejects directory submissions — for deployments where
	// the daemon must not read server-local paths chosen by clients.
	DisableDirs bool
	// Options are extra engine options appended to every job (preludes,
	// extra sinks).
	Options []webssari.Option
}

// jobState is a job's lifecycle phase.
type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// job is one submitted verification unit.
type job struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`   // "file" | "dir"
	Target string `json:"target"` // file name or directory path

	source []byte // file jobs only
	dir    string // file jobs: optional include root

	mu        sync.Mutex
	state     jobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	fileRep   *webssari.Report
	dirRep    *webssari.ProjectReport

	// stream is the job's NDJSON line log: per-file reports appended as
	// they complete, broadcast to live followers. Guarded by mu.
	lines [][]byte
	subs  []chan []byte
	done  chan struct{} // closed on completion
}

// jobStatus is the status-endpoint rendering of a job.
type jobStatus struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Target    string     `json:"target"`
	State     jobState   `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Verdict   string     `json:"verdict,omitempty"`
}

// status snapshots the job under its lock.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID: j.ID, Kind: j.Kind, Target: j.Target,
		State: j.state, Submitted: j.submitted, Error: j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.fileRep != nil {
		st.Verdict = j.fileRep.Verdict
	}
	if j.dirRep != nil {
		st.Verdict = j.dirRep.Verdict()
	}
	return st
}

// appendLine records one NDJSON line and fans it out to followers. It
// implements io.Writer so the shared NDJSON encoder can drive it; each
// Write is exactly one line by the encoder's contract.
func (j *job) Write(line []byte) (int, error) {
	cp := append([]byte(nil), line...)
	j.mu.Lock()
	j.lines = append(j.lines, cp)
	subs := append([]chan []byte(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- cp:
		default: // a stalled follower drops lines rather than stalling the job
		}
	}
	return len(line), nil
}

// follow returns the lines recorded so far and, when the job is still
// running, a channel receiving subsequent lines.
func (j *job) follow() (replay [][]byte, live <-chan []byte, running bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([][]byte(nil), j.lines...)
	if j.state == stateQueued || j.state == stateRunning {
		ch := make(chan []byte, 64)
		j.subs = append(j.subs, ch)
		return replay, ch, true
	}
	return replay, nil, false
}

// Server is the verification service.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	pool     *core.Pool
	queue    chan *job
	maxSrc   int64
	deadline time.Duration

	admitMu  sync.RWMutex // guards queue sends against close-on-drain
	draining atomic.Bool
	inFlight atomic.Int64

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for listing and history cap
	nextID   atomic.Int64

	wg             sync.WaitGroup // running jobs
	dispatcherDone chan struct{}

	gQueue    *telemetry.GaugeMetric
	gInFlight *telemetry.GaugeMetric
	cAccepted *telemetry.CounterMetric
	cRejected *telemetry.CounterMetric
	cDone     *telemetry.CounterMetric
	cFailed   *telemetry.CounterMetric
	hJobSecs  *telemetry.HistogramMetric
}

// New assembles a Server and starts its dispatcher. Call Drain to stop.
func New(cfg Config) *Server {
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = DefaultQueueSize
	}
	maxSrc := cfg.MaxSourceBytes
	if maxSrc <= 0 {
		maxSrc = DefaultMaxSourceBytes
	}
	s := &Server{
		cfg:            cfg,
		mux:            http.NewServeMux(),
		pool:           core.NewPool(cfg.Workers),
		queue:          make(chan *job, qs),
		maxSrc:         maxSrc,
		deadline:       cfg.JobDeadline,
		jobs:           make(map[string]*job),
		dispatcherDone: make(chan struct{}),
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Metrics != nil {
		reg := cfg.Telemetry.Metrics
		s.gQueue = reg.Gauge(telemetry.MetricServiceQueueDepth)
		s.gInFlight = reg.Gauge(telemetry.MetricServiceInFlight)
		s.cAccepted = reg.Counter(telemetry.MetricServiceJobsAccepted)
		s.cRejected = reg.Counter(telemetry.MetricServiceJobsRejected)
		s.cDone = reg.Counter(telemetry.MetricServiceJobsDone)
		s.cFailed = reg.Counter(telemetry.MetricServiceJobsFailed)
		s.hJobSecs = reg.Histogram(telemetry.MetricServiceJobSeconds, nil)
		s.pool.Instrument(reg)
		if cfg.Store != nil {
			cfg.Store.Instrument(reg)
		}
	}
	s.routes()
	go s.dispatch()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/files", s.handleSubmitFile)
	s.mux.HandleFunc("POST /v1/dirs", s.handleSubmitDir)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Telemetry != nil && s.cfg.Telemetry.Metrics != nil {
		s.mux.Handle("GET /metrics", s.cfg.Telemetry.Metrics.Handler())
	}
}

// dispatch moves jobs from the queue onto pool slots until the queue is
// closed (Drain) and empty.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	for j := range s.queue {
		s.gQueue.Set(int64(len(s.queue)))
		// Background context: an accepted job is run even during drain —
		// that is the drain guarantee.
		if err := s.pool.Acquire(context.Background()); err != nil {
			s.failJob(j, fmt.Errorf("acquiring worker: %w", err))
			continue
		}
		s.wg.Add(1)
		go func(j *job) {
			defer s.wg.Done()
			defer s.pool.Release()
			s.runJob(j)
		}(j)
	}
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, already-accepted jobs (queued and in-flight) run to completion,
// then the dispatcher exits. It returns ctx.Err() if the context
// expires first — jobs still running at that point keep their goroutines
// until process exit. Status/result endpoints keep answering throughout;
// Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		s.admitMu.Lock()
		close(s.queue)
		s.admitMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		<-s.dispatcherDone
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// newJob registers a job in the history (evicting the oldest finished
// entries past the retention cap).
func (s *Server) newJob(kind, target string, source []byte, dir string) *job {
	j := &job{
		ID:        fmt.Sprintf("j%d", s.nextID.Add(1)),
		Kind:      kind,
		Target:    target,
		source:    source,
		dir:       dir,
		state:     stateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobsMu.Lock()
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	if len(s.jobOrder) > defaultRetainedJobs {
		kept := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			old := s.jobs[id]
			old.mu.Lock()
			finished := old.state == stateDone || old.state == stateFailed
			old.mu.Unlock()
			if finished && len(s.jobOrder)-len(kept) > defaultRetainedJobs {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.jobOrder = kept
	}
	s.jobsMu.Unlock()
	return j
}

// admit enqueues a job, answering false when the queue is full or the
// server is draining.
func (s *Server) admit(j *job) (ok bool, draining bool) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return false, true
	}
	select {
	case s.queue <- j:
		s.gQueue.Set(int64(len(s.queue)))
		s.cAccepted.Inc()
		return true, false
	default:
		s.cRejected.Inc()
		return false, false
	}
}

// jobOptions assembles the engine options one job runs under.
func (s *Server) jobOptions() []webssari.Option {
	var opts []webssari.Option
	if s.cfg.Store != nil {
		opts = append(opts, webssari.WithStore(s.cfg.Store))
	}
	if s.cfg.Telemetry != nil {
		opts = append(opts, webssari.WithTelemetry(s.cfg.Telemetry))
	}
	if s.deadline > 0 {
		opts = append(opts, webssari.WithDeadline(s.deadline))
	}
	if s.cfg.MaxConflicts > 0 {
		opts = append(opts, webssari.WithBudget(s.cfg.MaxConflicts))
	}
	if s.cfg.JobParallelism > 0 {
		opts = append(opts, webssari.WithParallelism(s.cfg.JobParallelism))
	}
	return append(opts, s.cfg.Options...)
}

// runJob executes one job on a worker slot.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	j.state = stateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.gInFlight.Set(s.inFlight.Add(1))
	defer func() { s.gInFlight.Set(s.inFlight.Add(-1)) }()

	ctx := telemetry.WithTelemetry(context.Background(), s.cfg.Telemetry)
	ctx, sp := telemetry.StartRootSpan(ctx, "job", "id", j.ID, "kind", j.Kind, "target", j.Target)
	defer sp.End()

	stream := NewNDJSON(j) // per-file lines accumulate on the job
	start := time.Now()
	var err error
	switch j.Kind {
	case "file":
		opts := s.jobOptions()
		if j.dir != "" {
			opts = append(opts, webssari.WithDir(j.dir))
		}
		var rep *webssari.Report
		rep, err = webssari.VerifyContext(ctx, j.source, j.Target, opts...)
		if err == nil {
			_ = stream.Encode(rep)
			j.mu.Lock()
			j.fileRep = rep
			j.mu.Unlock()
		}
	case "dir":
		opts := append(s.jobOptions(), webssari.WithFileObserver(func(rep *webssari.Report) {
			_ = stream.Encode(rep)
		}))
		var pr *webssari.ProjectReport
		pr, err = webssari.VerifyDirContext(ctx, j.Target, opts...)
		if err == nil {
			j.mu.Lock()
			j.dirRep = pr
			j.mu.Unlock()
		}
	default:
		err = fmt.Errorf("unknown job kind %q", j.Kind)
	}
	s.hJobSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		s.failJob(j, err)
		return
	}
	s.finishJob(j, stateDone)
	s.cDone.Inc()
}

// failJob marks a job failed.
func (s *Server) failJob(j *job, err error) {
	j.mu.Lock()
	j.errMsg = err.Error()
	j.mu.Unlock()
	s.finishJob(j, stateFailed)
	s.cFailed.Inc()
}

// finishJob transitions a job to a terminal state and releases stream
// followers.
func (s *Server) finishJob(j *job, state jobState) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	close(j.done)
}

// --- HTTP handlers ---

// submitFileRequest is the POST /v1/files body.
type submitFileRequest struct {
	// Name labels the source in reports (defaults to "input.php").
	Name string `json:"name"`
	// Source is the PHP text to verify.
	Source string `json:"source"`
	// Dir, when set, roots include resolution at a server-local
	// directory (the equivalent of WithDir). Rejected under DisableDirs.
	Dir string `json:"dir,omitempty"`
}

func (s *Server) handleSubmitFile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxSrc+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > s.maxSrc {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("source exceeds %d bytes", s.maxSrc))
		return
	}
	var req submitFileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "missing \"source\"")
		return
	}
	if req.Dir != "" && s.cfg.DisableDirs {
		writeError(w, http.StatusForbidden, "server-local include roots are disabled")
		return
	}
	name := req.Name
	if name == "" {
		name = "input.php"
	}
	s.enqueue(w, s.newJob("file", name, []byte(req.Source), req.Dir))
}

// submitDirRequest is the POST /v1/dirs body.
type submitDirRequest struct {
	// Dir is a server-local directory to verify recursively.
	Dir string `json:"dir"`
}

func (s *Server) handleSubmitDir(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableDirs {
		writeError(w, http.StatusForbidden, "directory submissions are disabled")
		return
	}
	var req submitDirRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Dir == "" {
		writeError(w, http.StatusBadRequest, "missing \"dir\"")
		return
	}
	info, err := os.Stat(req.Dir)
	if err != nil || !info.IsDir() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%q is not a readable directory", req.Dir))
		return
	}
	s.enqueue(w, s.newJob("dir", req.Dir, nil, ""))
}

// enqueue admits a job and writes the submission response.
func (s *Server) enqueue(w http.ResponseWriter, j *job) {
	ok, draining := s.admit(j)
	if draining {
		s.dropJob(j)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !ok {
		s.dropJob(j)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue is full; retry later")
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{
		"job":    j.ID,
		"status": fmt.Sprintf("/v1/jobs/%s", j.ID),
		"result": fmt.Sprintf("/v1/jobs/%s/result", j.ID),
		"stream": fmt.Sprintf("/v1/jobs/%s/stream", j.ID),
	})
}

// dropJob removes a job that was never admitted.
func (s *Server) dropJob(j *job) {
	s.jobsMu.Lock()
	delete(s.jobs, j.ID)
	for i, id := range s.jobOrder {
		if id == j.ID {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
	s.jobsMu.Unlock()
}

func (s *Server) lookup(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	ids := append([]string(nil), s.jobOrder...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.jobsMu.Unlock()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Submitted.After(out[k].Submitted) })
	writeJSON(w, map[string]any{"jobs": out})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	fileRep, dirRep := j.fileRep, j.dirRep
	j.mu.Unlock()
	switch state {
	case stateQueued, stateRunning:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; poll status or follow the stream", state))
		return
	case stateFailed:
		writeJSON(w, map[string]any{"id": j.ID, "kind": j.Kind, "error": errMsg})
		return
	}
	if r.URL.Query().Get("text") == "1" && fileRep != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, fileRep.Text)
		return
	}
	switch {
	case fileRep != nil:
		writeJSON(w, map[string]any{"id": j.ID, "kind": j.Kind, "report": fileRep})
	case dirRep != nil:
		writeJSON(w, map[string]any{"id": j.ID, "kind": j.Kind, "report": dirRep})
	default:
		writeError(w, http.StatusInternalServerError, "job finished without a report")
	}
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	replay, live, running := j.follow()
	for _, line := range replay {
		if _, err := w.Write(line); err != nil {
			return
		}
	}
	flush()
	if !running {
		return
	}
	for {
		select {
		case line, ok := <-live:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, map[string]any{
		"status":   status,
		"queued":   len(s.queue),
		"inflight": s.inFlight.Load(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
