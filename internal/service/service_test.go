package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"webssari/internal/service/api"
	"webssari/internal/store"
	"webssari/internal/telemetry"
)

const vulnerableSrc = `<?php
$name = $_GET['name'];
echo "<p>Hello, $name</p>";
?>`

const safeSrc = `<?php echo "static page"; ?>`

// postJSON submits a JSON body and decodes the JSON response.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

// waitDone polls a job's status until it reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getJSON(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		switch st["state"] {
		case string(stateDone), string(stateFailed):
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// TestSubmitFileLifecycle walks the whole happy path over HTTP: submit,
// poll, result, stream replay.
func TestSubmitFileLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{
		"name": "page.php", "source": vulnerableSrc,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%v)", code, sub)
	}
	id, _ := sub["job"].(string)
	if id == "" {
		t.Fatalf("submission response lacks a job id: %v", sub)
	}

	st := waitDone(t, ts, id)
	if st["state"] != string(stateDone) {
		t.Fatalf("job finished %v: %v", st["state"], st["error"])
	}
	if st["verdict"] != "unsafe" {
		t.Fatalf("verdict = %v, want unsafe", st["verdict"])
	}

	code, res := getJSON(t, ts, "/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	rep, _ := res["report"].(map[string]any)
	if rep == nil || rep["verdict"] != "unsafe" {
		t.Fatalf("result body: %v", res)
	}

	// The stream of a finished file job replays exactly one line.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("stream content type %q", ct)
	}
	var lines int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 1 {
		t.Fatalf("stream replayed %d lines, want 1", lines)
	}

	// Unknown jobs are 404.
	if code, _ := getJSON(t, ts, "/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", code)
	}
}

// TestSubmitValidation covers the request-rejection paths.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1, MaxSourceBytes: 128})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := postJSON(t, ts, "/v1/files", map[string]string{"name": "x.php"}); code != http.StatusBadRequest {
		t.Fatalf("missing source: HTTP %d", code)
	}
	if code, _ := postJSON(t, ts, "/v1/files", map[string]string{
		"source": "<?php " + strings.Repeat("echo 1;", 64) + " ?>",
	}); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized source: HTTP %d", code)
	}
	if code, _ := postJSON(t, ts, "/v1/dirs", map[string]string{"dir": "/no/such/dir"}); code != http.StatusBadRequest {
		t.Fatalf("bad dir: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/files", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: HTTP %d", resp.StatusCode)
	}
}

// TestDisableDirs checks the lockdown switch for server-local paths.
func TestDisableDirs(t *testing.T) {
	s := New(Config{Workers: 1, DisableDirs: true})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := postJSON(t, ts, "/v1/dirs", map[string]string{"dir": t.TempDir()}); code != http.StatusForbidden {
		t.Fatalf("dir submission under DisableDirs: HTTP %d", code)
	}
	if code, _ := postJSON(t, ts, "/v1/files", map[string]string{
		"source": safeSrc, "dir": t.TempDir(),
	}); code != http.StatusForbidden {
		t.Fatalf("file submission with include root under DisableDirs: HTTP %d", code)
	}
}

// TestQueueBackpressure fills the admission queue with no dispatcher
// draining it (white-box: the Server is assembled by hand) and checks
// the 429 path, then the 503-on-drain path.
func TestQueueBackpressure(t *testing.T) {
	s := &Server{
		mux:            http.NewServeMux(),
		queue:          make(chan *job, 1),
		maxSrc:         DefaultMaxSourceBytes,
		jobs:           make(map[string]*job),
		dispatcherDone: make(chan struct{}),
	}
	s.routes()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func() (int, map[string]any) {
		return postJSON(t, ts, "/v1/files", map[string]string{"source": safeSrc})
	}
	if code, _ := submit(); code != http.StatusAccepted {
		t.Fatalf("first submission: HTTP %d", code)
	}
	code, body := submit()
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submission: HTTP %d (%v)", code, body)
	}
	// The rejected job must not linger in the history.
	s.jobsMu.Lock()
	n := len(s.jobs)
	s.jobsMu.Unlock()
	if n != 1 {
		t.Fatalf("%d jobs retained after rejection, want 1", n)
	}

	// Start a sink dispatcher so Drain can complete, then drain: further
	// submissions answer 503.
	go func() {
		for range s.queue {
		}
		close(s.dispatcherDone)
	}()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := submit(); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission: HTTP %d", code)
	}
	if code, st := getJSON(t, ts, "/healthz"); code != http.StatusOK || st["status"] != "draining" {
		t.Fatalf("healthz while draining: HTTP %d, %v", code, st)
	}
}

// TestDirJobStreamsPerFile verifies a directory job over HTTP with a
// store attached: NDJSON stream carries one line per file, the project
// report aggregates, and a resubmission is served from the store (the
// metrics endpoint shows the hits).
func TestDirJobStreamsPerFile(t *testing.T) {
	proj := t.TempDir()
	for name, src := range map[string]string{
		"vuln.php": vulnerableSrc,
		"safe.php": safeSrc,
	} {
		if err := os.WriteFile(filepath.Join(proj, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(filepath.Join(t.TempDir(), "cache"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	s := New(Config{Workers: 2, Store: st, Telemetry: tel})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runDir := func() (string, map[string]any) {
		code, sub := postJSON(t, ts, "/v1/dirs", map[string]string{"dir": proj})
		if code != http.StatusAccepted {
			t.Fatalf("submit dir: HTTP %d (%v)", code, sub)
		}
		id := sub["job"].(string)
		status := waitDone(t, ts, id)
		if status["state"] != string(stateDone) {
			t.Fatalf("dir job: %v", status)
		}
		return id, status
	}

	id, status := runDir()
	if status["verdict"] != "unsafe" {
		t.Fatalf("project verdict %v", status["verdict"])
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			File    string `json:"file"`
			Verdict string `json:"verdict"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line: %v", err)
		}
		files = append(files, fmt.Sprintf("%s=%s", filepath.Base(line.File), line.Verdict))
	}
	resp.Body.Close()
	if len(files) != 2 {
		t.Fatalf("stream carried %d lines, want 2: %v", len(files), files)
	}

	// Second submission: served from the persistent store.
	runDir()
	if got := st.Stats().Hits; got < 2 {
		t.Fatalf("store hits after resubmission = %d, want >= 2", got)
	}
	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var page strings.Builder
	sc = bufio.NewScanner(metrics.Body)
	for sc.Scan() {
		page.WriteString(sc.Text() + "\n")
	}
	for _, want := range []string{
		telemetry.MetricStoreHits + " 2",
		telemetry.MetricServiceJobsDone + " 2",
	} {
		if !strings.Contains(page.String(), want) {
			t.Fatalf("metrics page lacks %q:\n%s", want, page.String())
		}
	}
}

// TestStreamFollowsLiveJob subscribes to a job's stream while it is
// still running and sees lines arrive, then the stream end.
func TestStreamFollowsLiveJob(t *testing.T) {
	j := &job{ID: "j1", Kind: "dir", state: stateRunning, done: make(chan struct{})}
	enc := NewNDJSON(j)

	replay, live, running := j.follow()
	if len(replay) != 0 || !running {
		t.Fatalf("fresh job follow: %d lines, running %v", len(replay), running)
	}
	var got []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for line := range live {
			got = append(got, strings.TrimSpace(string(line)))
		}
	}()
	if err := enc.Encode(map[string]string{"file": "a.php"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(map[string]string{"file": "b.php"}); err != nil {
		t.Fatal(err)
	}
	(&Server{}).finishJob(j, stateDone)
	wg.Wait()
	if len(got) != 2 {
		t.Fatalf("live follower saw %d lines, want 2: %v", len(got), got)
	}
	// After completion, follow() replays without a live channel.
	replay, _, running = j.follow()
	if len(replay) != 2 || running {
		t.Fatalf("post-completion follow: %d lines, running %v", len(replay), running)
	}
}

// TestDrainCompletesInFlight submits a job and immediately drains: the
// accepted job must still run to completion.
func TestDrainCompletesInFlight(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{
		"name": "page.php", "source": vulnerableSrc,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["job"].(string)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	j := s.lookup(id)
	if j == nil {
		t.Fatal("job vanished during drain")
	}
	st := j.status()
	if st.State != stateDone {
		t.Fatalf("after drain, job is %s (%s), want done", st.State, st.Error)
	}
	if st.Verdict != "unsafe" {
		t.Fatalf("drained job verdict %s", st.Verdict)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestJobHistoryEviction checks the retention cap keeps the map bounded
// while never evicting unfinished jobs.
func TestJobHistoryEviction(t *testing.T) {
	s := &Server{jobs: make(map[string]*job)}
	for i := 0; i < defaultRetainedJobs+50; i++ {
		j := s.newJob("file", fmt.Sprintf("f%d.php", i), nil, "")
		j.mu.Lock()
		j.state = stateDone
		j.mu.Unlock()
	}
	running := s.newJob("file", "running.php", nil, "")
	running.mu.Lock()
	running.state = stateRunning
	running.mu.Unlock()
	for i := 0; i < 100; i++ {
		j := s.newJob("file", fmt.Sprintf("g%d.php", i), nil, "")
		j.mu.Lock()
		j.state = stateDone
		j.mu.Unlock()
	}
	s.jobsMu.Lock()
	n := len(s.jobs)
	s.jobsMu.Unlock()
	if n > defaultRetainedJobs+1 {
		t.Fatalf("history grew to %d jobs (cap %d)", n, defaultRetainedJobs)
	}
	if s.lookup(running.ID) == nil {
		t.Fatal("running job was evicted from the history")
	}
}

// TestSchemaStamp checks every JSON response carries the v1 schema
// marker — the versioning contract of satellite importance: clients key
// compatibility off this field.
func TestSchemaStamp(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{"source": safeSrc})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := sub["job"].(string)
	waitDone(t, ts, id)

	paths := []string{
		"/v1/jobs",
		"/v1/jobs/" + id,
		"/v1/jobs/" + id + "/result",
		"/v1/version",
		"/healthz",
	}
	if sub["schema"] != api.Schema {
		t.Fatalf("submit response schema = %v, want %q", sub["schema"], api.Schema)
	}
	for _, path := range paths {
		_, body := getJSON(t, ts, path)
		if body["schema"] != api.Schema {
			t.Fatalf("%s schema = %v, want %q", path, body["schema"], api.Schema)
		}
	}
	// Errors are stamped too.
	_, errBody := getJSON(t, ts, "/v1/jobs/nope")
	if errBody["schema"] != api.Schema {
		t.Fatalf("error response schema = %v, want %q", errBody["schema"], api.Schema)
	}
}

// TestRejectsUnknownFields pins the strict-decoding contract: a typoed
// request field answers 400 instead of being silently dropped.
func TestRejectsUnknownFields(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts, "/v1/files", map[string]string{
		"source": safeSrc, "sorce": "typo",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown file field: HTTP %d (%v), want 400", code, body)
	}
	code, body = postJSON(t, ts, "/v1/dirs", map[string]any{
		"dir": t.TempDir(), "incremenal": true,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown dir field: HTTP %d (%v), want 400", code, body)
	}
}

// TestVersionEndpoint checks GET /v1/version reports a build banner.
func TestVersionEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := getJSON(t, ts, "/v1/version")
	if code != http.StatusOK {
		t.Fatalf("/v1/version: HTTP %d", code)
	}
	if v, _ := body["version"].(string); !strings.Contains(v, "webssarid") {
		t.Fatalf("version banner = %v", body["version"])
	}
}

// cancelJob issues DELETE /v1/jobs/{id} and checks it answers 200.
func cancelJob(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: HTTP %d", id, resp.StatusCode)
	}
}

// TestCancelWatchAndQueuedJobs exercises both DELETE paths with one
// worker: a watch job pins the worker indefinitely, a file job queues
// behind it; cancelling the queued job fails it without running, and
// cancelling the watch job ends its loop cleanly in state done.
func TestCancelWatchAndQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, WatchInterval: 10 * time.Millisecond})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.php"), []byte(safeSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, watchSub := postJSON(t, ts, "/v1/dirs", map[string]any{"dir": dir, "watch": true})
	if code != http.StatusAccepted {
		t.Fatalf("submit watch job: HTTP %d (%v)", code, watchSub)
	}
	watchID := watchSub["job"].(string)

	// Wait for the watch job to complete its first round, proving it holds
	// the only worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := getJSON(t, ts, "/v1/jobs/"+watchID)
		if rounds, _ := st["rounds"].(float64); rounds >= 1 {
			break
		}
		if st["state"] == string(stateFailed) {
			t.Fatalf("watch job failed: %v", st["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("watch job never completed a round")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, sub := postJSON(t, ts, "/v1/files", map[string]string{"source": safeSrc})
	if code != http.StatusAccepted {
		t.Fatalf("submit queued job: HTTP %d", code)
	}
	queuedID := sub["job"].(string)

	cancelJob(t, ts, queuedID)
	cancelJob(t, ts, watchID)

	if st := waitDone(t, ts, queuedID); st["state"] != string(stateFailed) {
		t.Fatalf("cancelled queued job state = %v, want failed", st["state"])
	}
	st := waitDone(t, ts, watchID)
	if st["state"] != string(stateDone) {
		t.Fatalf("cancelled watch job state = %v (error %v), want done", st["state"], st["error"])
	}
	if st["watch"] != true {
		t.Fatalf("watch job status lacks watch marker: %v", st)
	}
}
