package service

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// NDJSONContentType is the media type of a newline-delimited JSON
// stream, used by the daemon's streaming endpoints and xbmc -ndjson.
const NDJSONContentType = "application/x-ndjson"

// NDJSON writes newline-delimited JSON records to an underlying writer:
// one Marshal per record, exactly one Write per line, a mutex across
// records. That makes one encoder safely shareable by the concurrent
// per-file workers of a project verification — lines interleave, bytes
// within a line never do. When the writer is an http.ResponseWriter the
// stream is flushed after every line so clients see results as they
// complete, not when the run ends.
type NDJSON struct {
	mu sync.Mutex
	w  io.Writer
	f  http.Flusher
}

// NewNDJSON returns an encoder writing to w.
func NewNDJSON(w io.Writer) *NDJSON {
	e := &NDJSON{w: w}
	if f, ok := w.(http.Flusher); ok {
		e.f = f
	}
	return e
}

// Encode marshals v and writes it as one line.
func (e *NDJSON) Encode(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line := append(data, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.w.Write(line); err != nil {
		return err
	}
	if e.f != nil {
		e.f.Flush()
	}
	return nil
}
