// Package typestate implements the paper's earlier TS verification
// algorithm (Huang et al., WWW 2004), the baseline the bounded model
// checker is compared against in Figure 10. TS is a typestate-inspired
// flow-sensitive dataflow analysis: it performs a single breadth-first
// pass over the control-flow graph, merging variable safety types with the
// lattice join at branch joins, and reports every program point whose SOC
// precondition may be violated.
//
// TS trades space and accuracy for speed: it is polynomial-time, but
//
//   - it reports *symptoms* — one error per violating statement — rather
//     than causes, so a single tainted root yields one report (and one
//     runtime guard) per sink it reaches;
//   - it produces no counterexample traces, so reports cannot show how the
//     taint arrived.
//
// Running TS and xBMC over the same abstract interpretation makes the
// Figure 10 comparison an apples-to-apples measurement of symptom counts
// vs error-introduction counts.
package typestate

import (
	"fmt"
	"strings"

	"webssari/internal/ai"
	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/lattice"
)

// Report is one TS error: a sensitive call whose precondition may fail.
type Report struct {
	// Assert is the violated SOC precondition.
	Assert *ai.Assert
	// Args indexes the checked arguments whose merged type breaches the
	// bound.
	Args []int
	// ArgTypes holds the merged (join-over-paths) type of each checked
	// argument.
	ArgTypes []lattice.Elem
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("%s: unsanitized data may reach %s", r.Assert.Site, r.Assert.Fn)
}

// env is the abstract state: variable → safety type, plus liveness (a
// stopped path contributes nothing at merges).
type env struct {
	types map[string]lattice.Elem
	dead  bool
}

func (e *env) clone() *env {
	cp := &env{types: make(map[string]lattice.Elem, len(e.types)), dead: e.dead}
	for k, v := range e.types {
		cp.types[k] = v
	}
	return cp
}

// Check runs the TS analysis over an abstract interpretation and returns
// every violating statement, in textual order.
func Check(p *ai.Program) []Report {
	c := &checker{p: p, lat: p.Lat}
	state := &env{types: make(map[string]lattice.Elem, len(p.InitialTypes))}
	for name, t := range p.InitialTypes {
		state.types[name] = t
	}
	c.run(p.Cmds, state)
	return c.reports
}

// Count returns the number of TS-reported errors (the paper's per-project
// "TS" column in Figure 10).
func Count(p *ai.Program) int { return len(Check(p)) }

// CheckUnit runs the TS analysis over a lowered IR unit: it builds the
// same AI(F(p)) the model checker consumes — so TS and xBMC literally
// share one front end — and interprets it.
func CheckUnit(unit *ir.Unit, opts flow.Options) ([]Report, error) {
	prog, err := flow.BuildUnit(unit, opts)
	if err != nil {
		return nil, err
	}
	return Check(prog), nil
}

// CountUnit returns the TS error count for a lowered unit.
func CountUnit(unit *ir.Unit, opts flow.Options) (int, error) {
	reports, err := CheckUnit(unit, opts)
	if err != nil {
		return 0, err
	}
	return len(reports), nil
}

type checker struct {
	p       *ai.Program
	lat     *lattice.Lattice
	reports []Report
}

func (c *checker) typeOf(e ai.Expr, s *env) lattice.Elem {
	switch e := e.(type) {
	case nil:
		return c.lat.Bottom()
	case ai.Const:
		return e.Type
	case ai.Var:
		if t, ok := s.types[e.Name]; ok {
			return t
		}
		return c.lat.Bottom()
	case ai.Join:
		acc := c.lat.Bottom()
		for _, part := range e.Parts {
			acc = c.lat.Join(acc, c.typeOf(part, s))
		}
		return acc
	default:
		return c.lat.Top()
	}
}

// run interprets the command sequence, mutating state in place.
func (c *checker) run(cmds []ai.Cmd, state *env) {
	for _, cmd := range cmds {
		if state.dead {
			return
		}
		switch cmd := cmd.(type) {
		case *ai.Set:
			state.types[cmd.Var] = c.typeOf(cmd.RHS, state)
		case *ai.Assert:
			var bad []int
			var types []lattice.Elem
			for i, arg := range cmd.Args {
				t := c.typeOf(arg.Expr, state)
				types = append(types, t)
				if !c.lat.Lt(t, cmd.Bound) {
					bad = append(bad, i)
				}
			}
			if len(bad) > 0 {
				c.reports = append(c.reports, Report{
					Assert: cmd, Args: bad, ArgTypes: types,
				})
			}
		case *ai.If:
			thenState := state.clone()
			elseState := state.clone()
			c.run(cmd.Then, thenState)
			c.run(cmd.Else, elseState)
			merge(c.lat, state, thenState, elseState)
		case *ai.Stop:
			state.dead = true
		}
	}
}

// merge joins two successor states into dst. A dead branch (ending in
// stop) contributes nothing.
func merge(lat *lattice.Lattice, dst, a, b *env) {
	switch {
	case a.dead && b.dead:
		dst.dead = true
		return
	case a.dead:
		dst.types = b.types
		return
	case b.dead:
		dst.types = a.types
		return
	}
	out := make(map[string]lattice.Elem, len(a.types))
	for k, v := range a.types {
		if w, ok := b.types[k]; ok {
			out[k] = lat.Join(v, w)
		} else {
			out[k] = lat.Join(v, lat.Bottom())
		}
	}
	for k, w := range b.types {
		if _, ok := a.types[k]; !ok {
			out[k] = lat.Join(lat.Bottom(), w)
		}
	}
	dst.types = out
}

// Summary renders the reports, one per line.
func Summary(reports []Report) string {
	if len(reports) == 0 {
		return "no violations found\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violating statement(s):\n", len(reports))
	for _, r := range reports {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}
