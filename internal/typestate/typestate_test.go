package typestate

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"webssari/internal/ai"
	"webssari/internal/core"
	"webssari/internal/flow"
	"webssari/internal/prelude"
)

func buildAI(t *testing.T, src string) *ai.Program {
	t.Helper()
	prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
	for _, err := range errs {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func TestDirectTaint(t *testing.T) {
	p := buildAI(t, `<?php echo $_GET['x'];`)
	reports := Check(p)
	if len(reports) != 1 || reports[0].Assert.Fn != "echo" {
		t.Fatalf("reports = %+v, want one echo", reports)
	}
}

func TestSafeProgram(t *testing.T) {
	p := buildAI(t, `<?php $x = 'safe'; echo $x; echo htmlspecialchars($_GET['y']);`)
	if n := Count(p); n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestJoinAtMerge(t *testing.T) {
	// Taint in one branch taints the merged state.
	p := buildAI(t, `<?php
if ($c) { $x = $_GET['a']; } else { $x = 'safe'; }
echo $x;`)
	if n := Count(p); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestSanitizedBothBranches(t *testing.T) {
	p := buildAI(t, `<?php
if ($c) { $x = htmlspecialchars($_GET['a']); } else { $x = 'safe'; }
echo $x;`)
	if n := Count(p); n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestSymptomPerStatement(t *testing.T) {
	// One root, many sinks: TS reports each sink separately — the
	// inefficiency the paper's BMC grouping removes.
	var b strings.Builder
	b.WriteString("<?php\n$sid = $_GET['sid'];\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, "mysql_query(\"SELECT %d WHERE sid=$sid\");\n", i)
	}
	p := buildAI(t, b.String())
	if n := Count(p); n != 16 {
		t.Fatalf("count = %d, want 16 symptoms", n)
	}
}

func TestStopKillsPath(t *testing.T) {
	p := buildAI(t, `<?php
$x = $_GET['a'];
exit;
echo $x;`)
	if n := Count(p); n != 0 {
		t.Fatalf("count = %d, want 0 (dead code)", n)
	}
}

func TestStopInOneBranch(t *testing.T) {
	p := buildAI(t, `<?php
if ($c) { $x = $_GET['a']; exit; } else { $x = 'safe'; }
echo $x;`)
	// The tainted branch stops; only the safe branch reaches the echo.
	if n := Count(p); n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestBothBranchesStop(t *testing.T) {
	p := buildAI(t, `<?php
if ($c) { exit; } else { exit; }
echo $_GET['x'];`)
	if n := Count(p); n != 0 {
		t.Fatalf("count = %d, want 0 (unreachable)", n)
	}
}

func TestReportOrderIsTextual(t *testing.T) {
	p := buildAI(t, `<?php
echo $_GET['a'];
mysql_query($_POST['b']);
echo $_COOKIE['c'];`)
	reports := Check(p)
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	lines := []int{reports[0].Assert.Site.Pos.Line, reports[1].Assert.Site.Pos.Line, reports[2].Assert.Site.Pos.Line}
	if !sort.IntsAreSorted(lines) {
		t.Fatalf("reports out of order: %v", lines)
	}
}

// TestTSAgreesWithBMCOnViolatedAsserts is the key structural comparison:
// over the two-point taint lattice, TS flags an assertion iff BMC finds at
// least one counterexample for it, and BMC's symptom set never exceeds
// TS's (here they coincide because join-over-paths is exact for chains
// with independent nondeterministic branches).
func TestTSAgreesWithBMCOnViolatedAsserts(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 80; i++ {
		src := randomTaintProgram(r)
		p := buildAI(t, src)
		if p.Branches > 12 {
			continue
		}
		tsSet := make(map[string]bool)
		for _, rep := range Check(p) {
			tsSet[rep.Assert.Site.String()+rep.Assert.Fn] = true
		}
		res, err := core.VerifyAI(p, core.Options{})
		if err != nil {
			t.Fatalf("verify: %v", err)
		}
		bmcSet := make(map[string]bool)
		for _, ar := range res.PerAssert {
			if len(ar.Counterexamples) > 0 {
				bmcSet[ar.Assert.Origin.Site.String()+ar.Assert.Origin.Fn] = true
			}
		}
		if len(tsSet) != len(bmcSet) {
			t.Fatalf("iter %d: TS=%d BMC=%d\nsrc:\n%s", i, len(tsSet), len(bmcSet), src)
		}
		for k := range tsSet {
			if !bmcSet[k] {
				t.Fatalf("iter %d: TS-only violation %s\nsrc:\n%s", i, k, src)
			}
		}
	}
}

func randomTaintProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<?php\n")
	vars := []string{"a", "b", "c"}
	rhs := []string{"$_GET['x']", "'safe'", "$a", "$b . 'k'", "htmlspecialchars($c)"}
	depth := 0
	for i, n := 0, 5+r.Intn(10); i < n; i++ {
		switch r.Intn(6) {
		case 0, 1:
			fmt.Fprintf(&b, "$%s = %s;\n", vars[r.Intn(len(vars))], rhs[r.Intn(len(rhs))])
		case 2:
			fmt.Fprintf(&b, "echo $%s;\n", vars[r.Intn(len(vars))])
		case 3:
			fmt.Fprintf(&b, "mysql_query($%s);\n", vars[r.Intn(len(vars))])
		case 4:
			if depth < 2 {
				fmt.Fprintf(&b, "if ($k%d) {\n", i)
				depth++
			}
		case 5:
			if depth > 0 {
				b.WriteString("}\n")
				depth--
			}
		}
	}
	for depth > 0 {
		b.WriteString("}\n")
		depth--
	}
	return b.String()
}

func TestSummaryRendering(t *testing.T) {
	p := buildAI(t, `<?php echo $_GET['x'];`)
	s := Summary(Check(p))
	if !strings.Contains(s, "1 violating statement") || !strings.Contains(s, "echo") {
		t.Fatalf("summary = %q", s)
	}
	if s := Summary(nil); !strings.Contains(s, "no violations") {
		t.Fatalf("empty summary = %q", s)
	}
}
