package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"webssari/internal/telemetry"
)

// CompileCache memoizes the front end: repeated compilation of unchanged
// source under an equivalent trust environment returns the same immutable
// Program without re-running parse/filter/rename/constraint generation.
//
// Entries are keyed on content, not identity: a SHA-256 over the entry
// name, the source bytes, every flow option that can change the produced
// model (Dir, LoopUnroll, MaxInlineDepth, MaxCmds, whether a loader is
// present), and the prelude's Fingerprint. The key deliberately excludes
// solver-side options — a Program is solver-free, so the same artifact
// serves every Solve configuration.
//
// Because includes are spliced in at compile time, a hit is revalidated
// against the Program's include snapshot (ai.Program.IncludeHashes /
// IncludeMisses) through the current loader before being served: an
// edited include, or a previously missing candidate that has appeared,
// forces a recompile instead of a stale answer.
//
// Concurrent compiles of the same key are coalesced (single-flight): the
// first caller compiles, the rest wait and count as hits, so hit/miss
// totals for a fixed workload are the same at any parallelism.
type CompileCache struct {
	mu        sync.Mutex
	entries   map[string]*cacheEntry
	lru       *list.List // front = most recently used; values are *cacheEntry
	max       int
	hits      int64
	misses    int64
	evictions int64
	stale     int64
}

type cacheEntry struct {
	key  string
	elem *list.Element
	// ready is closed when prog/errs are populated; waiters block on it
	// outside the cache lock.
	ready chan struct{}
	prog  *Program
	errs  []error
}

// DefaultCompileCacheSize bounds retained Programs; far above any project
// in the corpus, it exists only to keep a long-lived process from growing
// without bound.
const DefaultCompileCacheSize = 1024

// NewCompileCache returns a cache retaining at most max Programs
// (max <= 0 means DefaultCompileCacheSize), evicting least-recently-used.
func NewCompileCache(max int) *CompileCache {
	if max <= 0 {
		max = DefaultCompileCacheSize
	}
	return &CompileCache{
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
		max:     max,
	}
}

// Compile is the caching equivalent of the package-level Compile. The
// third result reports whether the Program came from cache (coalesced
// waiters count as hits). Failed compiles (nil Program) are returned to
// every coalesced waiter but not retained.
func (c *CompileCache) Compile(name string, src []byte, opts Options) (*Program, []error, bool) {
	key := cacheKey(name, src, opts)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.prog != nil && !includesCurrent(e.prog, opts) {
			// Stale include snapshot: drop the entry and recompile. The
			// recompile goes through the cache again so concurrent callers
			// still coalesce on the fresh entry.
			c.mu.Lock()
			c.stale++
			c.mu.Unlock()
			c.remove(key, e)
			return c.Compile(name, src, opts)
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e.prog, e.errs, true
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		victim := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, victim.key)
		c.evictions++
	}
	c.mu.Unlock()

	e.prog, e.errs = Compile(name, src, opts)
	close(e.ready)
	if e.prog == nil {
		c.remove(key, e)
	}
	return e.prog, e.errs, false
}

// remove drops the entry if it is still the one stored under key.
func (c *CompileCache) remove(key string, e *cacheEntry) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == e {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *CompileCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StatsDetail returns the full cache profile: hits, misses, LRU
// evictions, stale-include recompiles, and the current entry count.
func (c *CompileCache) StatsDetail() telemetry.CacheProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return telemetry.CacheProfile{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Stale:     c.stale,
		Entries:   c.lru.Len(),
	}
}

// Len returns the number of retained Programs.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Reset empties the cache and zeroes the counters.
func (c *CompileCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
	c.hits, c.misses = 0, 0
	c.evictions, c.stale = 0, 0
}

// includesCurrent revalidates a cached Program's include snapshot against
// the current loader: every spliced include must still hash the same, and
// every probed-but-missing candidate must still be missing.
func includesCurrent(p *Program, opts Options) bool {
	if len(p.AI.IncludeHashes) == 0 && len(p.AI.IncludeMisses) == 0 {
		return true
	}
	load := opts.Flow.Loader
	if load == nil {
		// No loader: includes cannot resolve at all now, so any snapshot
		// that resolved or probed files is out of date.
		return false
	}
	for path, want := range p.AI.IncludeHashes {
		data, err := load(path)
		if err != nil {
			return false
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != want {
			return false
		}
	}
	for cand := range p.AI.IncludeMisses {
		if _, err := load(cand); err == nil {
			return false
		}
	}
	return true
}

// cacheKey derives the content key for one compile request.
func cacheKey(name string, src []byte, opts Options) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr("webssari-compile-v1")
	writeStr(name)
	writeStr(string(src))
	writeStr(opts.Flow.Dir)
	writeStr(fmt.Sprintf("unroll=%d inline=%d maxcmds=%d loader=%t",
		opts.Flow.LoopUnroll, opts.Flow.MaxInlineDepth, opts.Flow.MaxCmds,
		opts.Flow.Loader != nil))
	if opts.Flow.Prelude != nil {
		writeStr(opts.Flow.Prelude.Fingerprint())
	}
	// The policy fingerprint covers context rules, sanitizer variants,
	// sink classes, and guards — verdict-shaping configuration the
	// prelude fingerprint alone does not see. Folding it in keeps
	// compiles under different policies from ever aliasing (two policies
	// may share a prelude but disagree on context bounds).
	if opts.Flow.Policy != nil {
		writeStr(opts.Flow.Policy.Fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil))
}
