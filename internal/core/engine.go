// Package core implements xBMC, the paper's bounded model checker for Web
// application safety (§3.3): the pipeline
//
//	PHP → F(p) → AI(F(p)) → ρ (renaming) → C(c,g) → CNF(B_i) → SAT
//
// with the all-counterexample enumeration loop of §3.3.2. For each
// assertion assert_i, the engine builds B_i = C(c,g) ∧ ¬C(assert_i,g),
// hands CNF(B_i) to the CDCL solver, and while B_i is satisfiable extracts
// a counterexample trace from the truth assignment of the nondeterministic
// branch variables BN, then adds the negation clause of that assignment
// and repeats until B_i is unsatisfiable. Since AI(F(p)) is loop-free, its
// diameter is fixed and the procedure is both sound and complete.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"webssari/internal/ai"
	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/lattice"
	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

// Options configures a verification run.
type Options struct {
	// Flow configures the filter (prelude, include loader, loop unroll).
	Flow flow.Options
	// Ctx carries cancellation and a wall-clock deadline for the whole
	// run; nil means context.Background(). Expiry does not abort the
	// run: assertions not yet decided degrade to Unknown and the result
	// is reported Incomplete.
	Ctx context.Context
	// MaxVars and MaxClauses cap each assertion's CNF encoding; an
	// encoding that trips a cap degrades that assertion to Unknown
	// instead of exhausting memory. Zero means DefaultMaxVars /
	// DefaultMaxClauses; negative disables the cap.
	MaxVars    int
	MaxClauses int
	// Hooks injects faults for the robustness test harness; all fields
	// are nil in production use.
	Hooks Hooks
	// AssumePriorAsserts reproduces the paper's incremental restriction:
	// each checked assertion is assumed to hold while checking later ones
	// ("we continue the constraint generation procedure C(c,g) := C(c,g) ∧
	// C(assert_i, g)"). It suppresses downstream duplicates of the same
	// propagation, but an assertion that fails on *every* path then blanks
	// all later assertions, which can hide independent roots from the
	// fixing-set analysis — so NewOptions leaves it off; it is measured as
	// an ablation in bench_test.go.
	AssumePriorAsserts bool
	// BlockAllBN blocks counterexamples on the full BN assignment, exactly
	// as §3.3.2 describes. The default (false) blocks only the branch
	// decisions actually encountered on the counterexample's path, which
	// enumerates each distinct trace exactly once; the full-BN mode can
	// re-derive the same trace under differing irrelevant branches (an
	// ablation measured in bench_test.go).
	BlockAllBN bool
	// MaxCounterexamples bounds enumeration per assertion (0 = DefaultMaxCEX).
	MaxCounterexamples int
	// Solver tunes the SAT solver (ablations).
	Solver sat.Options
}

// DefaultMaxCEX bounds counterexample enumeration per assertion.
const DefaultMaxCEX = 4096

// Default resource ceilings for per-assertion CNF encodings. They are
// far above anything the paper's corpus produces; tripping one means the
// input is pathological and the assertion degrades to Unknown.
const (
	DefaultMaxVars    = 2_000_000
	DefaultMaxClauses = 8_000_000
)

// Hooks are fault-injection points used by the robustness test harness
// to prove every stage terminates cleanly under loader failures, budget
// exhaustion, and deadline expiry mid-enumeration.
type Hooks struct {
	// BeforeAssert runs at the start of each assertion's encode+solve
	// step, inside its panic-recovery scope.
	BeforeAssert func(idx int)
	// BeforeSolve runs before each solver invocation of the
	// counterexample enumeration loop (iteration counts from 0).
	BeforeSolve func(assertIdx, iteration int)
}

// Degradation causes recorded on Unknown assertion results and surfaced
// as a report's Limits.
const (
	CauseDeadline        = "deadline"
	CauseConflictBudget  = "conflict budget"
	CauseCNFCeiling      = "CNF ceiling"
	CauseAITruncated     = "statement ceiling"
	CauseParseErrors     = "parse errors"
	CauseInternal        = "internal error"
	CauseMissingIncludes = "unresolved includes"
)

// StageError is a structured failure attributed to one pipeline stage,
// produced by panic recovery at stage boundaries so a bug on one input
// can never crash a whole project run.
type StageError struct {
	// Stage names the pipeline stage: "parse", "flow", "constraint",
	// "solve".
	Stage string
	Err   error
}

// Error implements error.
func (e *StageError) Error() string { return fmt.Sprintf("%s stage: %v", e.Stage, e.Err) }

// Unwrap returns the underlying cause.
func (e *StageError) Unwrap() error { return e.Err }

// guard runs fn, converting a panic into a *StageError for the given
// stage.
func guard(stage string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: stage, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	fn()
	return nil
}

// NewOptions returns the default engine configuration for the given flow
// options.
func NewOptions(f flow.Options) Options {
	return Options{Flow: f}
}

// context returns the run's context, defaulting to Background.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// cnfOptions resolves the encoding options with ceiling defaults.
func (o *Options) cnfOptions() cnf.Options {
	c := cnf.Options{
		AssumePriorAsserts: o.AssumePriorAsserts,
		MaxVars:            o.MaxVars,
		MaxClauses:         o.MaxClauses,
	}
	if c.MaxVars == 0 {
		c.MaxVars = DefaultMaxVars
	} else if c.MaxVars < 0 {
		c.MaxVars = 0
	}
	if c.MaxClauses == 0 {
		c.MaxClauses = DefaultMaxClauses
	} else if c.MaxClauses < 0 {
		c.MaxClauses = 0
	}
	return c
}

// Step is one executed single assignment on a counterexample trace.
type Step struct {
	// Set is the renamed assignment.
	Set *rename.Set
	// Value is the safety type the assignment computed on this path.
	Value lattice.Elem
}

// Counterexample is one error trace: a branch resolution under which an
// assertion fails, together with the single-assignment sequence (§3.3.2:
// "we can trace the AI and generate a sequence of single assignments,
// which represents one counterexample trace").
type Counterexample struct {
	// Assert is the violated assertion.
	Assert *rename.Assert
	// Branches is the trace identity: every branch decision encountered on
	// the path, by branch ID.
	Branches map[int]bool
	// Steps is the executed single-assignment sequence, in order.
	Steps []Step
	// Violating lists the violating variables: the renamed variables read
	// by the failing assertion arguments whose own type breaches the bound
	// (§3.3.3).
	Violating []rename.SSAVar
	// FailingArgs indexes Assert.Args entries that breached the bound.
	FailingArgs []int
}

// Key returns a canonical identity (assert site + branch decisions),
// comparable with ai.Violation.Key.
func (c *Counterexample) Key() string {
	ids := make([]int, 0, len(c.Branches))
	for id := range c.Branches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	key := fmt.Sprintf("%s|%s|", c.Assert.Origin.Site, c.Assert.Origin.Fn)
	for _, id := range ids {
		if c.Branches[id] {
			key += fmt.Sprintf("+%d", id)
		} else {
			key += fmt.Sprintf("-%d", id)
		}
	}
	return key
}

// AssertResult is the verification outcome for one assertion.
type AssertResult struct {
	Assert *rename.Assert
	// Counterexamples is empty iff the assertion provably holds (UNSAT)
	// and Unknown is unset.
	Counterexamples []*Counterexample
	// Truncated is set when enumeration stopped at MaxCounterexamples;
	// the violation verdict itself is still exact.
	Truncated bool
	// Unknown is set when the verifier gave up before deciding the
	// assertion (deadline, conflict budget, resource ceiling, recovered
	// fault): the assertion is neither proved nor refuted, so a result
	// containing one must never be reported Safe.
	Unknown bool
	// Cause names what degraded an Unknown result (one of the Cause*
	// constants, optionally with detail).
	Cause string
	// EncodedVars and EncodedClauses record the CNF(B_i) size.
	EncodedVars    int
	EncodedClauses int
	// SolverStats aggregates the SAT search effort for this assertion.
	SolverStats sat.Stats
}

// Result is a whole-program verification outcome.
type Result struct {
	AI      *ai.Program
	Renamed *rename.Program
	System  *constraint.System
	// PerAssert holds one entry per assertion, in textual order.
	PerAssert []*AssertResult
	// Warnings carries filter approximation notes.
	Warnings []string
	// ParseErrors records syntax errors the parser recovered from: the
	// model then covers only what parsed, so the result is Incomplete.
	ParseErrors []string
}

// Counterexamples returns all counterexamples across assertions.
func (r *Result) Counterexamples() []*Counterexample {
	var out []*Counterexample
	for _, ar := range r.PerAssert {
		out = append(out, ar.Counterexamples...)
	}
	return out
}

// Safe reports whether every assertion holds on every path — the paper's
// soundness guarantee ("Soundness guarantees the absence of bugs"). It
// only inspects decided assertions; callers presenting a verdict must
// also consult Incomplete, since a degraded run proves nothing about
// what it skipped.
func (r *Result) Safe() bool {
	for _, ar := range r.PerAssert {
		if len(ar.Counterexamples) > 0 {
			return false
		}
	}
	return true
}

// Incomplete reports whether any part of the model escaped verification:
// an Unknown assertion, a truncated AI, or recovered parse errors. An
// incomplete result must never be presented as Safe.
func (r *Result) Incomplete() bool { return len(r.IncompleteCauses()) > 0 }

// IncompleteCauses lists the distinct degradation causes, in first-hit
// order (empty for a fully decided run).
func (r *Result) IncompleteCauses() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(cause string) {
		if cause != "" && !seen[cause] {
			seen[cause] = true
			out = append(out, cause)
		}
	}
	if len(r.ParseErrors) > 0 {
		add(CauseParseErrors)
	}
	if r.AI != nil && r.AI.Truncated {
		add(CauseAITruncated)
	}
	if r.AI != nil && len(r.AI.UnresolvedIncludes) > 0 {
		add(CauseMissingIncludes)
	}
	for _, ar := range r.PerAssert {
		if ar.Unknown {
			add(ar.Cause)
		}
	}
	return out
}

// VerifySource parses, filters, and verifies one PHP source text. A
// panic in the parser or the filter is recovered into a *StageError;
// recoverable syntax errors are recorded on the Result (making it
// Incomplete) and also returned for callers that want them as errors.
func VerifySource(name string, src []byte, opts Options) (*Result, []error) {
	var (
		parsed *parser.Result
		errs   []error
	)
	if err := guard("parse", func() { parsed = parser.Parse(name, src) }); err != nil {
		return nil, []error{err}
	}
	errs = append(errs, parsed.Errs...)

	var (
		prog     *ai.Program
		buildErr error
	)
	if err := guard("flow", func() { prog, buildErr = flow.Build(parsed.File, opts.Flow) }); err != nil {
		return nil, append([]error{err}, errs...)
	}
	if buildErr != nil {
		return nil, append([]error{buildErr}, errs...)
	}
	res, err := VerifyAI(prog, opts)
	if err != nil {
		errs = append(errs, err)
	}
	if res != nil {
		for _, perr := range parsed.Errs {
			res.ParseErrors = append(res.ParseErrors, perr.Error())
		}
	}
	return res, errs
}

// VerifyFile verifies an already-parsed file.
func VerifyFile(file *ast.File, opts Options) (*Result, error) {
	prog, err := flow.Build(file, opts.Flow)
	if err != nil {
		return nil, err
	}
	return VerifyAI(prog, opts)
}

// VerifyAI runs the model checker over an abstract interpretation.
//
// Faults are isolated per assertion: a tripped resource ceiling, an
// exhausted budget, an expired deadline, or a recovered panic degrades
// that assertion to Unknown (with its cause) and the loop moves on, so
// one pathological assertion can neither hang nor blank the rest of the
// result. The returned error is non-nil only when a whole pipeline
// stage fails (constraint construction panicking).
func VerifyAI(prog *ai.Program, opts Options) (*Result, error) {
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = DefaultMaxCEX
	}
	ctx := opts.context()

	var (
		ren *rename.Program
		sys *constraint.System
	)
	if err := guard("constraint", func() {
		ren = rename.Rename(prog)
		sys = constraint.Build(ren)
	}); err != nil {
		return nil, err
	}
	res := &Result{
		AI:       prog,
		Renamed:  ren,
		System:   sys,
		Warnings: prog.Warnings,
	}
	for i := range sys.Checks {
		if err := ctx.Err(); err != nil {
			// Deadline expired mid-run: degrade every remaining
			// assertion instead of aborting, so the report still has one
			// entry per assertion and callers can see exactly what went
			// unchecked.
			for j := i; j < len(sys.Checks); j++ {
				res.PerAssert = append(res.PerAssert, &AssertResult{
					Assert:  sys.Checks[j].Origin,
					Unknown: true,
					Cause:   CauseDeadline,
				})
			}
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"deadline expired before assert_%d: %d assertion(s) unchecked", i, len(sys.Checks)-i))
			break
		}
		ar, err := checkAssertion(ctx, sys, i, opts)
		if err != nil {
			// Fault isolation: a panic or internal error in one
			// assertion's encode/solve degrades it to Unknown.
			ar = &AssertResult{
				Assert:  sys.Checks[i].Origin,
				Unknown: true,
				Cause:   CauseInternal,
			}
			res.Warnings = append(res.Warnings, fmt.Sprintf("assert_%d degraded: %v", i, err))
		}
		res.PerAssert = append(res.PerAssert, ar)
	}
	return res, nil
}

// checkAssertion runs the per-assertion enumeration loop of §3.3.2. A
// panic anywhere in encode/solve/replay is recovered into a *StageError
// so the caller can degrade just this assertion.
func checkAssertion(ctx context.Context, sys *constraint.System, idx int, opts Options) (ar *AssertResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			ar, err = nil, &StageError{Stage: "solve", Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if opts.Hooks.BeforeAssert != nil {
		opts.Hooks.BeforeAssert(idx)
	}
	check := sys.Checks[idx]
	ar = &AssertResult{Assert: check.Origin}

	encoded, err := cnf.EncodeCheck(sys, idx, opts.cnfOptions())
	var lim *cnf.LimitError
	if errors.As(err, &lim) {
		ar.Unknown = true
		ar.Cause = fmt.Sprintf("%s (%s)", CauseCNFCeiling, lim.Error())
		return ar, nil
	}
	if err != nil {
		return nil, err
	}
	ar.EncodedVars = encoded.F.NumVars
	ar.EncodedClauses = len(encoded.F.Clauses)
	if encoded.Trivial == cnf.TrivialUnsat {
		return ar, nil
	}

	sopts := opts.Solver
	sopts.Interrupt = interruptFor(ctx, opts.Solver.Interrupt)
	solver := sat.NewWith(sopts)
	if !encoded.F.LoadInto(solver) {
		return ar, nil
	}

	seen := make(map[string]bool)
	for iteration := 0; ; iteration++ {
		if opts.Hooks.BeforeSolve != nil {
			opts.Hooks.BeforeSolve(idx, iteration)
		}
		if ctx.Err() != nil {
			ar.Unknown = true
			ar.Cause = CauseDeadline
			return ar, nil
		}
		verdict := solver.Solve()
		ar.SolverStats = solver.Stats()
		if verdict == sat.Unsat {
			return ar, nil
		}
		if verdict != sat.Sat {
			// The solver gave up: either the wall-clock deadline fired
			// through the interrupt, or the conflict budget ran out. An
			// undecided assertion must never read as "no counterexample",
			// so mark it Unknown rather than silently returning.
			ar.Unknown = true
			if ctx.Err() != nil {
				ar.Cause = CauseDeadline
			} else {
				ar.Cause = CauseConflictBudget
			}
			return ar, nil
		}
		model := solver.Model()
		branches := encoded.DecodeBranches(model)

		cex := replayTrace(sys.Renamed, check.Origin, branches)
		if cex != nil && !seen[cex.Key()] {
			seen[cex.Key()] = true
			ar.Counterexamples = append(ar.Counterexamples, cex)
			if len(ar.Counterexamples) >= opts.MaxCounterexamples {
				ar.Truncated = true
				return ar, nil
			}
		}

		// Make B_i more restrictive: B_i^{j+1} = B_i^j ∧ N_i^j.
		var blocking []sat.Lit
		if opts.BlockAllBN || cex == nil {
			blocking = encoded.BlockingClause(model, nil)
		} else {
			blocking = encoded.BlockingClause(model, cex.Branches)
		}
		if len(blocking) == 0 {
			// No branch variables: the single model class is exhausted.
			return ar, nil
		}
		if !solver.AddClause(blocking...) {
			return ar, nil
		}
	}
}

// interruptFor combines context cancellation with any caller-supplied
// solver interrupt, returning nil when neither can ever fire.
func interruptFor(ctx context.Context, prev func() bool) func() bool {
	if ctx.Done() == nil {
		return prev
	}
	if prev == nil {
		return func() bool { return ctx.Err() != nil }
	}
	return func() bool { return ctx.Err() != nil || prev() }
}

// replayTrace walks the renamed program along the given branch decisions,
// recording the executed single assignments, and checks the target
// assertion. It returns nil when the path does not actually violate the
// assertion (possible only in BlockAllBN mode quirks or when the path
// stops early).
func replayTrace(p *rename.Program, target *rename.Assert, branches map[int]bool) *Counterexample {
	cex := &Counterexample{
		Assert:   target,
		Branches: make(map[int]bool),
	}
	env := make(map[string]lattice.Elem)
	typeOf := func(v rename.SSAVar) lattice.Elem {
		if t, ok := env[v.Name]; ok {
			return t
		}
		return p.AI.InitialType(v.Name)
	}
	var evalExpr func(e rename.Expr) lattice.Elem
	evalExpr = func(e rename.Expr) lattice.Elem {
		switch e := e.(type) {
		case rename.Const:
			return e.Type
		case rename.Ref:
			return typeOf(e.V)
		case rename.Join:
			acc := p.AI.Lat.Bottom()
			for _, part := range e.Parts {
				acc = p.AI.Lat.Join(acc, evalExpr(part))
			}
			return acc
		default:
			return p.AI.Lat.Top()
		}
	}

	found := false
	var walk func(cmds []rename.Cmd) bool // returns false on stop/target
	walk = func(cmds []rename.Cmd) bool {
		for _, c := range cmds {
			switch c := c.(type) {
			case *rename.Set:
				val := evalExpr(c.RHS)
				env[c.V.Name] = val
				cex.Steps = append(cex.Steps, Step{Set: c, Value: val})
			case *rename.Assert:
				if c != target {
					continue
				}
				for i, arg := range c.Args {
					t := evalExpr(arg.Expr)
					if !p.AI.Lat.Lt(t, c.Bound) {
						cex.FailingArgs = append(cex.FailingArgs, i)
						for _, ref := range rename.ExprRefs(arg.Expr) {
							if !p.AI.Lat.Lt(typeOf(ref), c.Bound) {
								cex.Violating = append(cex.Violating, ref)
							}
						}
					}
				}
				found = len(cex.FailingArgs) > 0
				return false
			case *rename.If:
				taken := branches[c.ID]
				cex.Branches[c.ID] = taken
				arm := c.Then
				if !taken {
					arm = c.Else
				}
				if !walk(arm) {
					return false
				}
			case *rename.Stop:
				return false
			}
		}
		return true
	}
	walk(p.Cmds)
	if !found {
		return nil
	}
	// Deduplicate violating variables.
	uniq := cex.Violating[:0]
	seen := make(map[rename.SSAVar]bool)
	for _, v := range cex.Violating {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	cex.Violating = uniq
	return cex
}
