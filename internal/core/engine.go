// Package core implements xBMC, the paper's bounded model checker for Web
// application safety (§3.3): the pipeline
//
//	PHP → F(p) → AI(F(p)) → ρ (renaming) → C(c,g) → CNF(B_i) → SAT
//
// with the all-counterexample enumeration loop of §3.3.2. For each
// assertion assert_i, the engine builds B_i = C(c,g) ∧ ¬C(assert_i,g),
// hands CNF(B_i) to the CDCL solver, and while B_i is satisfiable extracts
// a counterexample trace from the truth assignment of the nondeterministic
// branch variables BN, then adds the negation clause of that assignment
// and repeats until B_i is unsatisfiable. Since AI(F(p)) is loop-free, its
// diameter is fixed and the procedure is both sound and complete.
package core

import (
	"fmt"
	"sort"

	"webssari/internal/ai"
	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/lattice"
	"webssari/internal/php/ast"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

// Options configures a verification run.
type Options struct {
	// Flow configures the filter (prelude, include loader, loop unroll).
	Flow flow.Options
	// AssumePriorAsserts reproduces the paper's incremental restriction:
	// each checked assertion is assumed to hold while checking later ones
	// ("we continue the constraint generation procedure C(c,g) := C(c,g) ∧
	// C(assert_i, g)"). It suppresses downstream duplicates of the same
	// propagation, but an assertion that fails on *every* path then blanks
	// all later assertions, which can hide independent roots from the
	// fixing-set analysis — so NewOptions leaves it off; it is measured as
	// an ablation in bench_test.go.
	AssumePriorAsserts bool
	// BlockAllBN blocks counterexamples on the full BN assignment, exactly
	// as §3.3.2 describes. The default (false) blocks only the branch
	// decisions actually encountered on the counterexample's path, which
	// enumerates each distinct trace exactly once; the full-BN mode can
	// re-derive the same trace under differing irrelevant branches (an
	// ablation measured in bench_test.go).
	BlockAllBN bool
	// MaxCounterexamples bounds enumeration per assertion (0 = DefaultMaxCEX).
	MaxCounterexamples int
	// Solver tunes the SAT solver (ablations).
	Solver sat.Options
}

// DefaultMaxCEX bounds counterexample enumeration per assertion.
const DefaultMaxCEX = 4096

// NewOptions returns the default engine configuration for the given flow
// options.
func NewOptions(f flow.Options) Options {
	return Options{Flow: f}
}

// Step is one executed single assignment on a counterexample trace.
type Step struct {
	// Set is the renamed assignment.
	Set *rename.Set
	// Value is the safety type the assignment computed on this path.
	Value lattice.Elem
}

// Counterexample is one error trace: a branch resolution under which an
// assertion fails, together with the single-assignment sequence (§3.3.2:
// "we can trace the AI and generate a sequence of single assignments,
// which represents one counterexample trace").
type Counterexample struct {
	// Assert is the violated assertion.
	Assert *rename.Assert
	// Branches is the trace identity: every branch decision encountered on
	// the path, by branch ID.
	Branches map[int]bool
	// Steps is the executed single-assignment sequence, in order.
	Steps []Step
	// Violating lists the violating variables: the renamed variables read
	// by the failing assertion arguments whose own type breaches the bound
	// (§3.3.3).
	Violating []rename.SSAVar
	// FailingArgs indexes Assert.Args entries that breached the bound.
	FailingArgs []int
}

// Key returns a canonical identity (assert site + branch decisions),
// comparable with ai.Violation.Key.
func (c *Counterexample) Key() string {
	ids := make([]int, 0, len(c.Branches))
	for id := range c.Branches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	key := fmt.Sprintf("%s|%s|", c.Assert.Origin.Site, c.Assert.Origin.Fn)
	for _, id := range ids {
		if c.Branches[id] {
			key += fmt.Sprintf("+%d", id)
		} else {
			key += fmt.Sprintf("-%d", id)
		}
	}
	return key
}

// AssertResult is the verification outcome for one assertion.
type AssertResult struct {
	Assert *rename.Assert
	// Counterexamples is empty iff the assertion provably holds (UNSAT).
	Counterexamples []*Counterexample
	// Truncated is set when enumeration stopped at MaxCounterexamples.
	Truncated bool
	// EncodedVars and EncodedClauses record the CNF(B_i) size.
	EncodedVars    int
	EncodedClauses int
	// SolverStats aggregates the SAT search effort for this assertion.
	SolverStats sat.Stats
}

// Result is a whole-program verification outcome.
type Result struct {
	AI      *ai.Program
	Renamed *rename.Program
	System  *constraint.System
	// PerAssert holds one entry per assertion, in textual order.
	PerAssert []*AssertResult
	// Warnings carries filter approximation notes.
	Warnings []string
}

// Counterexamples returns all counterexamples across assertions.
func (r *Result) Counterexamples() []*Counterexample {
	var out []*Counterexample
	for _, ar := range r.PerAssert {
		out = append(out, ar.Counterexamples...)
	}
	return out
}

// Safe reports whether every assertion holds on every path — the paper's
// soundness guarantee ("Soundness guarantees the absence of bugs").
func (r *Result) Safe() bool {
	for _, ar := range r.PerAssert {
		if len(ar.Counterexamples) > 0 {
			return false
		}
	}
	return true
}

// VerifySource parses, filters, and verifies one PHP source text.
func VerifySource(name string, src []byte, opts Options) (*Result, []error) {
	prog, errs := flow.BuildSource(name, src, opts.Flow)
	if prog == nil {
		return nil, errs
	}
	res, err := VerifyAI(prog, opts)
	if err != nil {
		errs = append(errs, err)
	}
	return res, errs
}

// VerifyFile verifies an already-parsed file.
func VerifyFile(file *ast.File, opts Options) (*Result, error) {
	prog, err := flow.Build(file, opts.Flow)
	if err != nil {
		return nil, err
	}
	return VerifyAI(prog, opts)
}

// VerifyAI runs the model checker over an abstract interpretation.
func VerifyAI(prog *ai.Program, opts Options) (*Result, error) {
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = DefaultMaxCEX
	}
	ren := rename.Rename(prog)
	sys := constraint.Build(ren)
	res := &Result{
		AI:       prog,
		Renamed:  ren,
		System:   sys,
		Warnings: prog.Warnings,
	}
	for i := range sys.Checks {
		ar, err := checkAssertion(sys, i, opts)
		if err != nil {
			return res, err
		}
		res.PerAssert = append(res.PerAssert, ar)
	}
	return res, nil
}

// checkAssertion runs the per-assertion enumeration loop of §3.3.2.
func checkAssertion(sys *constraint.System, idx int, opts Options) (*AssertResult, error) {
	check := sys.Checks[idx]
	ar := &AssertResult{Assert: check.Origin}

	encoded, err := cnf.EncodeCheck(sys, idx, cnf.Options{
		AssumePriorAsserts: opts.AssumePriorAsserts,
	})
	if err != nil {
		return nil, err
	}
	ar.EncodedVars = encoded.F.NumVars
	ar.EncodedClauses = len(encoded.F.Clauses)
	if encoded.Trivial == cnf.TrivialUnsat {
		return ar, nil
	}

	solver := sat.NewWith(opts.Solver)
	if !encoded.F.LoadInto(solver) {
		return ar, nil
	}

	seen := make(map[string]bool)
	for {
		verdict := solver.Solve()
		ar.SolverStats = solver.Stats()
		if verdict == sat.Unsat {
			return ar, nil
		}
		if verdict != sat.Sat {
			ar.Truncated = true
			return ar, nil
		}
		model := solver.Model()
		branches := encoded.DecodeBranches(model)

		cex := replayTrace(sys.Renamed, check.Origin, branches)
		if cex != nil && !seen[cex.Key()] {
			seen[cex.Key()] = true
			ar.Counterexamples = append(ar.Counterexamples, cex)
			if len(ar.Counterexamples) >= opts.MaxCounterexamples {
				ar.Truncated = true
				return ar, nil
			}
		}

		// Make B_i more restrictive: B_i^{j+1} = B_i^j ∧ N_i^j.
		var blocking []sat.Lit
		if opts.BlockAllBN || cex == nil {
			blocking = encoded.BlockingClause(model, nil)
		} else {
			blocking = encoded.BlockingClause(model, cex.Branches)
		}
		if len(blocking) == 0 {
			// No branch variables: the single model class is exhausted.
			return ar, nil
		}
		if !solver.AddClause(blocking...) {
			return ar, nil
		}
	}
}

// replayTrace walks the renamed program along the given branch decisions,
// recording the executed single assignments, and checks the target
// assertion. It returns nil when the path does not actually violate the
// assertion (possible only in BlockAllBN mode quirks or when the path
// stops early).
func replayTrace(p *rename.Program, target *rename.Assert, branches map[int]bool) *Counterexample {
	cex := &Counterexample{
		Assert:   target,
		Branches: make(map[int]bool),
	}
	env := make(map[string]lattice.Elem)
	typeOf := func(v rename.SSAVar) lattice.Elem {
		if t, ok := env[v.Name]; ok {
			return t
		}
		return p.AI.InitialType(v.Name)
	}
	var evalExpr func(e rename.Expr) lattice.Elem
	evalExpr = func(e rename.Expr) lattice.Elem {
		switch e := e.(type) {
		case rename.Const:
			return e.Type
		case rename.Ref:
			return typeOf(e.V)
		case rename.Join:
			acc := p.AI.Lat.Bottom()
			for _, part := range e.Parts {
				acc = p.AI.Lat.Join(acc, evalExpr(part))
			}
			return acc
		default:
			return p.AI.Lat.Top()
		}
	}

	found := false
	var walk func(cmds []rename.Cmd) bool // returns false on stop/target
	walk = func(cmds []rename.Cmd) bool {
		for _, c := range cmds {
			switch c := c.(type) {
			case *rename.Set:
				val := evalExpr(c.RHS)
				env[c.V.Name] = val
				cex.Steps = append(cex.Steps, Step{Set: c, Value: val})
			case *rename.Assert:
				if c != target {
					continue
				}
				for i, arg := range c.Args {
					t := evalExpr(arg.Expr)
					if !p.AI.Lat.Lt(t, c.Bound) {
						cex.FailingArgs = append(cex.FailingArgs, i)
						for _, ref := range rename.ExprRefs(arg.Expr) {
							if !p.AI.Lat.Lt(typeOf(ref), c.Bound) {
								cex.Violating = append(cex.Violating, ref)
							}
						}
					}
				}
				found = len(cex.FailingArgs) > 0
				return false
			case *rename.If:
				taken := branches[c.ID]
				cex.Branches[c.ID] = taken
				arm := c.Then
				if !taken {
					arm = c.Else
				}
				if !walk(arm) {
					return false
				}
			case *rename.Stop:
				return false
			}
		}
		return true
	}
	walk(p.Cmds)
	if !found {
		return nil
	}
	// Deduplicate violating variables.
	uniq := cex.Violating[:0]
	seen := make(map[rename.SSAVar]bool)
	for _, v := range cex.Violating {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	cex.Violating = uniq
	return cex
}
