// Package core implements xBMC, the paper's bounded model checker for Web
// application safety (§3.3): the pipeline
//
//	PHP → F(p) → AI(F(p)) → ρ (renaming) → C(c,g) → CNF(B_i) → SAT
//
// with the all-counterexample enumeration loop of §3.3.2. For each
// assertion assert_i, the engine builds B_i = C(c,g) ∧ ¬C(assert_i,g),
// hands CNF(B_i) to the CDCL solver, and while B_i is satisfiable extracts
// a counterexample trace from the truth assignment of the nondeterministic
// branch variables BN, then adds the negation clause of that assignment
// and repeats until B_i is unsatisfiable. Since AI(F(p)) is loop-free, its
// diameter is fixed and the procedure is both sound and complete.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"webssari/internal/ai"
	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/lattice"
	"webssari/internal/php/ast"
	"webssari/internal/rename"
	"webssari/internal/sat"
)

// Options configures a verification run.
type Options struct {
	// Flow configures the filter (prelude, include loader, loop unroll).
	Flow flow.Options
	// Ctx carries cancellation and a wall-clock deadline for the whole
	// run; nil means context.Background(). Expiry does not abort the
	// run: assertions not yet decided degrade to Unknown and the result
	// is reported Incomplete.
	Ctx context.Context
	// MaxVars and MaxClauses cap each assertion's CNF encoding; an
	// encoding that trips a cap degrades that assertion to Unknown
	// instead of exhausting memory. Zero means DefaultMaxVars /
	// DefaultMaxClauses; negative disables the cap.
	MaxVars    int
	MaxClauses int
	// Hooks injects faults for the robustness test harness; all fields
	// are nil in production use.
	Hooks Hooks
	// AssumePriorAsserts reproduces the paper's incremental restriction:
	// each checked assertion is assumed to hold while checking later ones
	// ("we continue the constraint generation procedure C(c,g) := C(c,g) ∧
	// C(assert_i, g)"). It suppresses downstream duplicates of the same
	// propagation, but an assertion that fails on *every* path then blanks
	// all later assertions, which can hide independent roots from the
	// fixing-set analysis — so NewOptions leaves it off; it is measured as
	// an ablation in bench_test.go.
	AssumePriorAsserts bool
	// BlockAllBN blocks counterexamples on the full BN assignment, exactly
	// as §3.3.2 describes. The default (false) blocks only the branch
	// decisions actually encountered on the counterexample's path, which
	// enumerates each distinct trace exactly once; the full-BN mode can
	// re-derive the same trace under differing irrelevant branches (an
	// ablation measured in bench_test.go).
	BlockAllBN bool
	// MaxCounterexamples bounds enumeration per assertion (0 = DefaultMaxCEX).
	MaxCounterexamples int
	// Solver tunes the SAT solver (ablations).
	Solver sat.Options
	// Mode selects the back-end strategy: per-assertion solvers (the
	// paper's loop, the default), one shared incremental solver, or a
	// portfolio race. All modes produce identical verdicts and
	// counterexample sets — counterexamples are canonically ordered by
	// trace key in every mode — so Mode is verdict-neutral.
	Mode SolveMode
	// PortfolioWidth is the number of solver configurations raced per
	// hard assertion in ModePortfolio (0 = DefaultPortfolioWidth,
	// clamped to sat.PortfolioWidthMax). Width 1 degenerates to the
	// per-assertion mode.
	PortfolioWidth int
	// LearntBlob seeds the shared-mode solver with learnt clauses
	// exported by a previous run over the same program (ModeShared
	// only). The blob is validated against the freshly encoded CNF's
	// hash; any mismatch or corruption degrades to a cold solve.
	LearntBlob []byte
	// LearntSink, when non-nil, receives the shared-mode solver's
	// exported learnt clauses after the run — the persistence half of
	// warm-starting. Never called when the export would be unsound
	// (see SolveShared's epoch gating).
	LearntSink func(blob []byte)
	// Parallelism bounds how many assertions one Solve checks
	// concurrently. Zero or one means sequential (the default, which
	// reproduces the paper's loop exactly); results are identical either
	// way because each assertion's check is deterministic and results are
	// assembled in assertion order.
	Parallelism int
	// Workers, when set, is a slot pool shared with the caller (project
	// verification shares one pool between its file-level fan-out and each
	// file's assertion-level fan-out). The caller is assumed to already
	// hold one slot; Solve takes extra slots with TryAcquire only and
	// always works inline on the caller's slot, so the sharing cannot
	// deadlock. Workers takes precedence over Parallelism.
	Workers *Pool
	// KnownSafeChecks holds check fingerprints (see CheckFingerprint)
	// proved safe by a previous run under the same configuration. An
	// assertion whose fingerprint is in the set is not re-solved: its
	// constraint slice is unchanged, so the prior UNSAT verdict still
	// holds, and Solve returns a Reused result for it. Only SAFE verdicts
	// may be seeded here — a fingerprint covers the formula B_i, and
	// reusing anything weaker (Unknown, violated) would skip work whose
	// outcome callers expect re-derived (counterexample traces, causes).
	KnownSafeChecks map[string]bool
}

// SolveMode selects the back-end solving strategy (Options.Mode).
type SolveMode int

const (
	// ModePerAssert builds one fresh CNF and solver per assertion — the
	// paper's loop, and the reference every other mode must match.
	ModePerAssert SolveMode = iota
	// ModeShared encodes the whole program once and checks each
	// assertion under a selector assumption on one incremental solver,
	// retaining learnt clauses across assertions (and, with a
	// LearntBlob/LearntSink pair, across runs).
	ModeShared
	// ModePortfolio races distinct solver configurations per hard
	// assertion, first canonical answer wins.
	ModePortfolio
)

// String returns the mode's wire spelling.
func (m SolveMode) String() string {
	switch m {
	case ModeShared:
		return "shared"
	case ModePortfolio:
		return "portfolio"
	default:
		return "per-assert"
	}
}

// DefaultPortfolioWidth is the portfolio width when Options.PortfolioWidth
// is zero: the base configuration plus two heuristic variants.
const DefaultPortfolioWidth = 3

// DefaultMaxCEX bounds counterexample enumeration per assertion.
const DefaultMaxCEX = 4096

// Default resource ceilings for per-assertion CNF encodings. They are
// far above anything the paper's corpus produces; tripping one means the
// input is pathological and the assertion degrades to Unknown.
const (
	DefaultMaxVars    = 2_000_000
	DefaultMaxClauses = 8_000_000
)

// Hooks are fault-injection points used by the robustness test harness
// to prove every stage terminates cleanly under loader failures, budget
// exhaustion, and deadline expiry mid-enumeration.
type Hooks struct {
	// BeforeAssert runs at the start of each assertion's encode+solve
	// step, inside its panic-recovery scope.
	BeforeAssert func(idx int)
	// BeforeSolve runs before each solver invocation of the
	// counterexample enumeration loop (iteration counts from 0).
	BeforeSolve func(assertIdx, iteration int)
}

// Degradation causes recorded on Unknown assertion results and surfaced
// as a report's Limits.
const (
	CauseDeadline        = "deadline"
	CauseConflictBudget  = "conflict budget"
	CauseCNFCeiling      = "CNF ceiling"
	CauseAITruncated     = "statement ceiling"
	CauseParseErrors     = "parse errors"
	CauseInternal        = "internal error"
	CauseMissingIncludes = "unresolved includes"
)

// StageError is a structured failure attributed to one pipeline stage,
// produced by panic recovery at stage boundaries so a bug on one input
// can never crash a whole project run.
type StageError struct {
	// Stage names the pipeline stage: "parse", "flow", "constraint",
	// "solve".
	Stage string
	Err   error
}

// Error implements error.
func (e *StageError) Error() string { return fmt.Sprintf("%s stage: %v", e.Stage, e.Err) }

// Unwrap returns the underlying cause.
func (e *StageError) Unwrap() error { return e.Err }

// guard runs fn, converting a panic into a *StageError for the given
// stage.
func guard(stage string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: stage, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	fn()
	return nil
}

// NewOptions returns the default engine configuration for the given flow
// options.
func NewOptions(f flow.Options) Options {
	return Options{Flow: f}
}

// context returns the run's context, defaulting to Background.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// cnfOptions resolves the encoding options with ceiling defaults.
func (o *Options) cnfOptions() cnf.Options {
	c := cnf.Options{
		AssumePriorAsserts: o.AssumePriorAsserts,
		MaxVars:            o.MaxVars,
		MaxClauses:         o.MaxClauses,
	}
	if c.MaxVars == 0 {
		c.MaxVars = DefaultMaxVars
	} else if c.MaxVars < 0 {
		c.MaxVars = 0
	}
	if c.MaxClauses == 0 {
		c.MaxClauses = DefaultMaxClauses
	} else if c.MaxClauses < 0 {
		c.MaxClauses = 0
	}
	return c
}

// Step is one executed single assignment on a counterexample trace.
type Step struct {
	// Set is the renamed assignment.
	Set *rename.Set
	// Value is the safety type the assignment computed on this path.
	Value lattice.Elem
}

// Counterexample is one error trace: a branch resolution under which an
// assertion fails, together with the single-assignment sequence (§3.3.2:
// "we can trace the AI and generate a sequence of single assignments,
// which represents one counterexample trace").
type Counterexample struct {
	// Assert is the violated assertion.
	Assert *rename.Assert
	// Branches is the trace identity: every branch decision encountered on
	// the path, by branch ID.
	Branches map[int]bool
	// Steps is the executed single-assignment sequence, in order.
	Steps []Step
	// Violating lists the violating variables: the renamed variables read
	// by the failing assertion arguments whose own type breaches the bound
	// (§3.3.3).
	Violating []rename.SSAVar
	// FailingArgs indexes Assert.Args entries that breached the bound.
	FailingArgs []int
}

// Key returns a canonical identity (assert site + branch decisions),
// comparable with ai.Violation.Key.
func (c *Counterexample) Key() string {
	ids := make([]int, 0, len(c.Branches))
	for id := range c.Branches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	key := fmt.Sprintf("%s|%s|", c.Assert.Origin.Site, c.Assert.Origin.Fn)
	for _, id := range ids {
		if c.Branches[id] {
			key += fmt.Sprintf("+%d", id)
		} else {
			key += fmt.Sprintf("-%d", id)
		}
	}
	return key
}

// AssertResult is the verification outcome for one assertion.
type AssertResult struct {
	Assert *rename.Assert
	// Counterexamples is empty iff the assertion provably holds (UNSAT)
	// and Unknown is unset.
	Counterexamples []*Counterexample
	// Truncated is set when enumeration stopped at MaxCounterexamples;
	// the violation verdict itself is still exact.
	Truncated bool
	// Unknown is set when the verifier gave up before deciding the
	// assertion (deadline, conflict budget, resource ceiling, recovered
	// fault): the assertion is neither proved nor refuted, so a result
	// containing one must never be reported Safe.
	Unknown bool
	// Cause names what degraded an Unknown result (one of the Cause*
	// constants, optionally with detail).
	Cause string
	// EncodedVars and EncodedClauses record the CNF(B_i) size.
	EncodedVars    int
	EncodedClauses int
	// SolverStats aggregates the SAT search effort for this assertion.
	SolverStats sat.Stats
	// EncodeTime and SearchTime split this assertion's wall time between
	// CNF encoding and the SAT enumeration loop.
	EncodeTime time.Duration
	SearchTime time.Duration
	// Reused is set when the assertion was not solved at all: its check
	// fingerprint matched Options.KnownSafeChecks, so the prior SAFE
	// verdict was carried over. A Reused result has no counterexamples,
	// no encoding sizes, and no solver stats.
	Reused bool

	// racedLane records a portfolio race outcome: the lane that
	// supplied the canonical answer (-1 = lane-0 fallback). Unexported
	// and out-of-band of the report content — racing is verdict-neutral.
	racedLane *int
}

// WarmStartStats reports learnt-clause persistence activity for one
// shared-mode solve. Informational only: warm-starting injects clauses
// already implied by the formula, so it can never change a verdict.
type WarmStartStats struct {
	// Attempted is set when a LearntBlob was offered to the run.
	Attempted bool
	// Hit is set when the blob decoded cleanly and its CNF hash matched
	// this program's encoding; otherwise the run solved cold.
	Hit bool
	// ImportedClauses and ExportedClauses count the clauses moved in
	// each direction.
	ImportedClauses int
	ExportedClauses int
}

// PortfolioStats reports portfolio-mode racing activity: how many
// assertions escalated from the probe to a full race, and which lane
// supplied each canonical answer. Informational only.
type PortfolioStats struct {
	Races int
	// WinsByLane maps lane index → races whose canonical answer that
	// lane supplied (-1 keys the deterministic lane-0 fallback when no
	// lane produced a canonical answer).
	WinsByLane map[int]int
}

// Result is a whole-program verification outcome.
type Result struct {
	AI      *ai.Program
	Renamed *rename.Program
	System  *constraint.System
	// Unit is the entry file's lowered flow IR (nil when the run started
	// from a bare AI or was reconstructed from a stored report). The
	// incremental planner persists its function fingerprints.
	Unit *ir.Unit
	// PerAssert holds one entry per assertion, in textual order.
	PerAssert []*AssertResult
	// Warnings carries filter approximation notes.
	Warnings []string
	// ParseErrors records syntax errors the parser recovered from: the
	// model then covers only what parsed, so the result is Incomplete.
	ParseErrors []string
	// WarmStart is populated by shared-mode solves that were offered a
	// learnt blob or asked to export one; nil otherwise.
	WarmStart *WarmStartStats
	// Portfolio is populated by portfolio-mode solves; nil otherwise.
	Portfolio *PortfolioStats
}

// sortCounterexamples puts one assertion's counterexamples into
// canonical trace-key order. Every solve mode applies it, which is what
// makes reports byte-identical across per-assertion, shared, and
// portfolio solving: a complete enumeration always discovers the same
// *set* of trace classes, only the discovery order is heuristic-
// dependent.
func sortCounterexamples(ar *AssertResult) {
	if len(ar.Counterexamples) < 2 {
		return
	}
	keys := make(map[*Counterexample]string, len(ar.Counterexamples))
	for _, c := range ar.Counterexamples {
		keys[c] = c.Key()
	}
	sort.SliceStable(ar.Counterexamples, func(i, j int) bool {
		return keys[ar.Counterexamples[i]] < keys[ar.Counterexamples[j]]
	})
}

// Counterexamples returns all counterexamples across assertions.
func (r *Result) Counterexamples() []*Counterexample {
	var out []*Counterexample
	for _, ar := range r.PerAssert {
		out = append(out, ar.Counterexamples...)
	}
	return out
}

// Safe reports whether every assertion holds on every path — the paper's
// soundness guarantee ("Soundness guarantees the absence of bugs"). It
// only inspects decided assertions; callers presenting a verdict must
// also consult Incomplete, since a degraded run proves nothing about
// what it skipped.
func (r *Result) Safe() bool {
	for _, ar := range r.PerAssert {
		if len(ar.Counterexamples) > 0 {
			return false
		}
	}
	return true
}

// Incomplete reports whether any part of the model escaped verification:
// an Unknown assertion, a truncated AI, or recovered parse errors. An
// incomplete result must never be presented as Safe.
func (r *Result) Incomplete() bool { return len(r.IncompleteCauses()) > 0 }

// IncompleteCauses lists the distinct degradation causes, in first-hit
// order (empty for a fully decided run).
func (r *Result) IncompleteCauses() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(cause string) {
		if cause != "" && !seen[cause] {
			seen[cause] = true
			out = append(out, cause)
		}
	}
	if len(r.ParseErrors) > 0 {
		add(CauseParseErrors)
	}
	if r.AI != nil && r.AI.Truncated {
		add(CauseAITruncated)
	}
	if r.AI != nil && len(r.AI.UnresolvedIncludes) > 0 {
		add(CauseMissingIncludes)
	}
	for _, ar := range r.PerAssert {
		if ar.Unknown {
			add(ar.Cause)
		}
	}
	return out
}

// VerifySource parses, filters, and verifies one PHP source text: it is
// Compile followed by Solve. A panic in the parser or the filter is
// recovered into a *StageError; recoverable syntax errors are recorded on
// the Result (making it Incomplete) and also returned for callers that
// want them as errors.
func VerifySource(name string, src []byte, opts Options) (*Result, []error) {
	p, errs := Compile(name, src, opts)
	if p == nil {
		return nil, errs
	}
	return Solve(opts.context(), p, opts), errs
}

// VerifyFile verifies an already-parsed file.
func VerifyFile(file *ast.File, opts Options) (*Result, error) {
	p, err := CompileFile(file, opts)
	if err != nil {
		return nil, err
	}
	return Solve(opts.context(), p, opts), nil
}

// VerifyAI runs the model checker over an abstract interpretation: it is
// CompileAI followed by Solve. The returned error is non-nil only when a
// whole pipeline stage fails (constraint construction panicking).
func VerifyAI(prog *ai.Program, opts Options) (*Result, error) {
	p, err := CompileAI(prog)
	if err != nil {
		return nil, err
	}
	return Solve(opts.context(), p, opts), nil
}
