package core

import (
	"context"
	"runtime"
	"sync/atomic"

	"webssari/internal/telemetry"
)

// Pool is a bounded worker-slot semaphore shared between the file-level
// fan-out of a project run and the assertion-level fan-out inside each
// file's Solve. Its discipline is what makes the sharing deadlock-free:
//
//   - file-level workers use the blocking Acquire, and
//   - assertion-level workers inside a Solve use only TryAcquire, with the
//     calling goroutine always working inline on its own slot,
//
// so a goroutine holding a slot never blocks waiting for another slot and
// no circular wait can form.
//
// The pool self-observes: acquire counts, the in-use and waiting
// high-water marks, and TryAcquire outcomes are tracked with atomics and
// read back through Snapshot (the report's pool profile) or mirrored
// live into a metrics registry via Instrument.
type Pool struct {
	sem chan struct{}

	acquires   atomic.Int64
	tryHits    atomic.Int64
	tryMisses  atomic.Int64
	inUse      atomic.Int64
	maxInUse   atomic.Int64
	waiting    atomic.Int64
	maxWaiting atomic.Int64

	// Live registry mirrors; nil (a no-op) unless Instrument was called.
	gInUse    *telemetry.GaugeMetric
	gInUseMax *telemetry.GaugeMetric
	gWaiting  *telemetry.GaugeMetric
	cAcquires *telemetry.CounterMetric
}

// NewPool returns a pool of n slots; n <= 0 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Instrument mirrors the pool's occupancy into reg's gauges so a
// long-running corpus job can be watched live on the /metrics page.
// Call before handing the pool to workers; a nil registry is a no-op.
func (p *Pool) Instrument(reg *telemetry.Registry) {
	p.gInUse = reg.Gauge(telemetry.MetricPoolInUse)
	p.gInUseMax = reg.Gauge(telemetry.MetricPoolInUseMax)
	p.gWaiting = reg.Gauge(telemetry.MetricPoolWaiting)
	p.cAcquires = reg.Counter(telemetry.MetricPoolAcquires)
}

// acquired records one slot take (by either acquire path).
func (p *Pool) acquired() {
	in := p.inUse.Add(1)
	for {
		max := p.maxInUse.Load()
		if in <= max || p.maxInUse.CompareAndSwap(max, in) {
			break
		}
	}
	p.acquires.Add(1)
	p.cAcquires.Inc()
	p.gInUse.Set(in)
	p.gInUseMax.SetMax(in)
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case.
func (p *Pool) Acquire(ctx context.Context) error {
	w := p.waiting.Add(1)
	for {
		max := p.maxWaiting.Load()
		if w <= max || p.maxWaiting.CompareAndSwap(max, w) {
			break
		}
	}
	p.gWaiting.Set(w)
	defer func() {
		p.gWaiting.Set(p.waiting.Add(-1))
	}()
	select {
	case p.sem <- struct{}{}:
		p.acquired()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now.
func (p *Pool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		p.tryHits.Add(1)
		p.acquired()
		return true
	default:
		p.tryMisses.Add(1)
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() {
	<-p.sem
	p.gInUse.Set(p.inUse.Add(-1))
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.sem) }

// Snapshot returns the pool's cumulative usage profile.
func (p *Pool) Snapshot() *telemetry.PoolProfile {
	return &telemetry.PoolProfile{
		Capacity:         p.Cap(),
		Acquires:         p.acquires.Load(),
		TryAcquireHits:   p.tryHits.Load(),
		TryAcquireMisses: p.tryMisses.Load(),
		MaxInUse:         p.maxInUse.Load(),
		MaxWaiting:       p.maxWaiting.Load(),
	}
}
