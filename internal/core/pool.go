package core

import (
	"context"
	"runtime"
)

// Pool is a bounded worker-slot semaphore shared between the file-level
// fan-out of a project run and the assertion-level fan-out inside each
// file's Solve. Its discipline is what makes the sharing deadlock-free:
//
//   - file-level workers use the blocking Acquire, and
//   - assertion-level workers inside a Solve use only TryAcquire, with the
//     calling goroutine always working inline on its own slot,
//
// so a goroutine holding a slot never blocks waiting for another slot and
// no circular wait can form.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool of n slots; n <= 0 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now.
func (p *Pool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() { <-p.sem }

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.sem) }
