package core

// This file is the engine's back end: per-assertion CNF encoding and the
// CDCL all-counterexample enumeration loop of §3.3.2, run over the
// immutable Program artifact the front end (compile.go) produced. Because
// a Program is never written after compilation, independent assertions of
// one Solve — and independent Solves over one shared Program — can run
// concurrently; every piece of per-solve state (solver instance, seen-set,
// result slices, warning lists) lives on this side of the split.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/lattice"
	"webssari/internal/rename"
	"webssari/internal/sat"
	"webssari/internal/telemetry"
)

// Solve runs the model checker over a compiled Program.
//
// Faults are isolated per assertion: a tripped resource ceiling, an
// exhausted budget, an expired deadline, or a recovered panic degrades
// that assertion to Unknown (with its cause) and the run moves on, so one
// pathological assertion can neither hang nor blank the rest of the
// result. When opts allows parallelism (Options.Parallelism > 1 or a
// shared Options.Workers pool with free slots), independent assertions
// are checked concurrently; the Result is identical to a sequential run
// because each assertion's check is deterministic and results are
// assembled in assertion order.
//
// ctx carries cancellation and the wall-clock deadline; nil means
// opts.Ctx, then context.Background().
func Solve(ctx context.Context, p *Program, opts Options) *Result {
	if ctx == nil {
		ctx = opts.context()
	}
	if opts.Mode == ModeShared {
		// The shared incremental solver has its own (sequential) loop;
		// verdicts and counterexample order are identical by the
		// canonical-ordering argument (see sortCounterexamples).
		res, _ := SolveShared(ctx, p, opts)
		return res
	}
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = DefaultMaxCEX
	}
	sys := p.System
	res := &Result{
		AI:      p.AI,
		Renamed: p.Renamed,
		System:  sys,
		Unit:    p.Unit,
		// Copy, never alias: the Program (and its AI) may be shared by
		// concurrent solves, so per-solve appends must not write into the
		// shared slices' backing arrays.
		Warnings:    append([]string(nil), p.AI.Warnings...),
		ParseErrors: append([]string(nil), p.ParseErrors...),
	}

	n := len(sys.Checks)
	if n == 0 {
		return res
	}
	ctx, ssp := telemetry.StartSpan(ctx, "solve", "asserts", n)
	defer ssp.End()
	results := make([]*AssertResult, n)
	degraded := make([]string, n)
	skipped := make([]bool, n)

	// When the caller seeded prior SAFE verdicts, fingerprint every check
	// once up front; matching assertions skip the SAT search entirely.
	var fps []string
	if len(opts.KnownSafeChecks) > 0 {
		fps = p.CheckFingerprints()
	}

	// Work is handed out through an atomic counter, so indices are claimed
	// in assertion order even under concurrency. Context errors are sticky,
	// which makes the skipped set a suffix of the index range exactly as in
	// a sequential run.
	var next int64 = -1
	work := func() {
		for {
			idx := int(atomic.AddInt64(&next, 1))
			if idx >= n {
				return
			}
			if ctx.Err() != nil {
				// Deadline expired: degrade instead of aborting, so the
				// report still has one entry per assertion and callers can
				// see exactly what went unchecked.
				results[idx] = &AssertResult{
					Assert:  sys.Checks[idx].Origin,
					Unknown: true,
					Cause:   CauseDeadline,
				}
				skipped[idx] = true
				continue
			}
			if fps != nil && opts.KnownSafeChecks[fps[idx]] {
				// The assertion's constraint slice is unchanged since a
				// prior run proved it safe: carry the verdict over.
				results[idx] = &AssertResult{
					Assert: sys.Checks[idx].Origin,
					Reused: true,
				}
				continue
			}
			ar, err := checkOne(ctx, sys, idx, opts)
			if err != nil {
				// Fault isolation: a panic or internal error in one
				// assertion's encode/solve degrades it to Unknown.
				ar = &AssertResult{
					Assert:  sys.Checks[idx].Origin,
					Unknown: true,
					Cause:   CauseInternal,
				}
				degraded[idx] = fmt.Sprintf("assert_%d degraded: %v", idx, err)
			}
			results[idx] = ar
		}
	}

	extra := opts.extraWorkers(n)
	if len(extra) > 0 {
		var wg sync.WaitGroup
		for _, release := range extra {
			wg.Add(1)
			go func(release func()) {
				defer wg.Done()
				if release != nil {
					defer release()
				}
				work()
			}(release)
		}
		work()
		wg.Wait()
	} else {
		work()
	}

	// Deterministic assembly: results and warnings in assertion order.
	firstSkipped, skippedCount := -1, 0
	for idx := 0; idx < n; idx++ {
		res.PerAssert = append(res.PerAssert, results[idx])
		if degraded[idx] != "" {
			res.Warnings = append(res.Warnings, degraded[idx])
		}
		if skipped[idx] {
			if firstSkipped < 0 {
				firstSkipped = idx
			}
			skippedCount++
		}
	}
	if firstSkipped >= 0 {
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"deadline expired before assert_%d: %d assertion(s) unchecked", firstSkipped, skippedCount))
	}
	if opts.Mode == ModePortfolio {
		res.Portfolio = collectPortfolioStats(ctx, results)
	}
	recordSolveMetrics(ctx, res)
	return res
}

// checkOne routes one assertion to the mode's checker: the plain
// per-assertion loop, or the portfolio race.
func checkOne(ctx context.Context, sys *constraint.System, idx int, opts Options) (*AssertResult, error) {
	if opts.Mode == ModePortfolio {
		return checkAssertionPortfolio(ctx, sys, idx, opts)
	}
	return checkAssertion(ctx, sys, idx, opts)
}

// recordSolveMetrics rolls one Result's counters into the context's
// metrics registry. Called once per Solve, from the (single-threaded)
// assembly path, so the per-assertion hot loops stay metric-free.
func recordSolveMetrics(ctx context.Context, res *Result) {
	reg := telemetry.From(ctx)
	if reg == nil || reg.Metrics == nil {
		return
	}
	m := reg.Metrics
	var agg sat.Stats
	var cexs int64
	for _, ar := range res.PerAssert {
		agg.Add(ar.SolverStats)
		cexs += int64(len(ar.Counterexamples))
		if ar.Unknown {
			m.Counter(telemetry.Name(telemetry.MetricDegraded, "cause", telemetry.CauseLabel(ar.Cause))).Inc()
		}
	}
	m.Counter(telemetry.MetricAssertionsChecked).Add(int64(len(res.PerAssert)))
	m.Counter(telemetry.MetricCounterexamples).Add(cexs)
	m.Counter(telemetry.MetricSolverDecisions).Add(int64(agg.Decisions))
	m.Counter(telemetry.MetricSolverPropagations).Add(int64(agg.Propagations))
	m.Counter(telemetry.MetricSolverConflicts).Add(int64(agg.Conflicts))
	m.Counter(telemetry.MetricSolverRestarts).Add(int64(agg.Restarts))
	m.Counter(telemetry.MetricSolverLearnt).Add(int64(agg.LearntClauses))
	m.Counter(telemetry.MetricSolverDeleted).Add(int64(agg.DeletedClauses))
}

// extraWorkers decides how many goroutines to add beside the calling one
// for a fan-out over n work items, returning one release func per extra
// worker (nil when the slot is private rather than pool-backed).
//
// When Workers is set the caller is assumed to already hold a slot of
// that shared pool, so extras are taken with TryAcquire only — never
// blocking — which keeps file-level and assertion-level sharing of one
// pool free of circular waits.
func (o *Options) extraWorkers(n int) []func() {
	var extra []func()
	if o.Workers != nil {
		for i := 1; i < n; i++ {
			if !o.Workers.TryAcquire() {
				break
			}
			extra = append(extra, o.Workers.Release)
		}
		return extra
	}
	p := o.Parallelism
	if p <= 1 {
		return nil
	}
	for i := 1; i < p && i < n; i++ {
		extra = append(extra, nil)
	}
	return extra
}

// checkAssertion runs the per-assertion enumeration loop of §3.3.2. A
// panic anywhere in encode/solve/replay is recovered into a *StageError
// so the caller can degrade just this assertion. All state is local: the
// constraint system is only read, the solver is freshly constructed, and
// opts is a value copy, so any number of checkAssertion calls can run
// concurrently over one System.
func checkAssertion(ctx context.Context, sys *constraint.System, idx int, opts Options) (ar *AssertResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			ar, err = nil, &StageError{Stage: "solve", Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if opts.Hooks.BeforeAssert != nil {
		opts.Hooks.BeforeAssert(idx)
	}
	check := sys.Checks[idx]
	ar = &AssertResult{Assert: check.Origin}

	// Concurrent assertion checks each get a fresh trace lane so their
	// intervals never interleave on one timeline row; encode/search spans
	// inherit the assertion's lane and nest under it.
	ctx, asp := telemetry.StartRootSpan(ctx, "assert", "index", idx)
	defer asp.End()

	encStart := time.Now()
	_, esp := telemetry.StartSpan(ctx, "encode")
	encoded, err := cnf.EncodeCheck(sys, idx, opts.cnfOptions())
	esp.End()
	ar.EncodeTime = time.Since(encStart)
	observeStage(ctx, "encode", ar.EncodeTime.Nanoseconds())
	var lim *cnf.LimitError
	if errors.As(err, &lim) {
		ar.Unknown = true
		ar.Cause = fmt.Sprintf("%s (%s)", CauseCNFCeiling, lim.Error())
		return ar, nil
	}
	if err != nil {
		return nil, err
	}
	ar.EncodedVars = encoded.F.NumVars
	ar.EncodedClauses = len(encoded.F.Clauses)
	asp.SetArg("vars", ar.EncodedVars)
	asp.SetArg("clauses", ar.EncodedClauses)
	if encoded.Trivial == cnf.TrivialUnsat {
		return ar, nil
	}

	enumerateAssert(ctx, sys, idx, encoded, opts, opts.Solver, ar)
	return ar, nil
}

// enumerateAssert runs the counterexample enumeration loop of §3.3.2
// over an already encoded check, on a fresh solver built from sopts
// (the context interrupt is merged in here). It fills ar's search-side
// fields and leaves the counterexamples in canonical trace-key order.
// The encoded artifact is only read, never written, so any number of
// enumerations — portfolio lanes — may share one Encoded concurrently.
func enumerateAssert(ctx context.Context, sys *constraint.System, idx int, encoded *cnf.Encoded, opts Options, sopts sat.Options, ar *AssertResult) {
	check := sys.Checks[idx]
	sopts.Interrupt = interruptFor(ctx, sopts.Interrupt)
	solver := sat.NewWith(sopts)

	// The search below has several exit paths (including clause loading
	// detecting trivial unsatisfiability); a deferred close stamps the
	// search span and duration on every one of them, keeping the trace
	// consistent with the profile's per-assertion search count.
	searchStart := time.Now()
	_, srsp := telemetry.StartSpan(ctx, "search")
	defer func() {
		srsp.End()
		ar.SearchTime = time.Since(searchStart)
		observeStage(ctx, "search", ar.SearchTime.Nanoseconds())
		sortCounterexamples(ar)
	}()

	if !encoded.F.LoadInto(solver) {
		return
	}

	seen := make(map[string]bool)
	for iteration := 0; ; iteration++ {
		if opts.Hooks.BeforeSolve != nil {
			opts.Hooks.BeforeSolve(idx, iteration)
		}
		if ctx.Err() != nil {
			ar.Unknown = true
			ar.Cause = CauseDeadline
			return
		}
		verdict := solver.Solve()
		ar.SolverStats = solver.Stats()
		if verdict == sat.Unsat {
			return
		}
		if verdict != sat.Sat {
			// The solver gave up: either the wall-clock deadline fired
			// through the interrupt, or the conflict budget ran out. An
			// undecided assertion must never read as "no counterexample",
			// so mark it Unknown rather than silently returning.
			ar.Unknown = true
			if ctx.Err() != nil {
				ar.Cause = CauseDeadline
			} else {
				ar.Cause = CauseConflictBudget
			}
			return
		}
		model := solver.Model()
		branches := encoded.DecodeBranches(model)

		cex := replayTrace(sys.Renamed, check.Origin, branches)
		if cex != nil && !seen[cex.Key()] {
			seen[cex.Key()] = true
			ar.Counterexamples = append(ar.Counterexamples, cex)
			if len(ar.Counterexamples) >= opts.MaxCounterexamples {
				ar.Truncated = true
				return
			}
		}

		// Make B_i more restrictive: B_i^{j+1} = B_i^j ∧ N_i^j.
		var blocking []sat.Lit
		if opts.BlockAllBN || cex == nil {
			blocking = encoded.BlockingClause(model, nil)
		} else {
			blocking = encoded.BlockingClause(model, cex.Branches)
		}
		if len(blocking) == 0 {
			// No branch variables: the single model class is exhausted.
			return
		}
		if !solver.AddClause(blocking...) {
			return
		}
	}
}

// interruptFor combines context cancellation with any caller-supplied
// solver interrupt, returning nil when neither can ever fire. The
// returned func may be polled from concurrently running solver instances,
// so caller-supplied interrupts must be safe for concurrent calls (the
// robustness harness exercises this).
func interruptFor(ctx context.Context, prev func() bool) func() bool {
	if ctx.Done() == nil {
		return prev
	}
	if prev == nil {
		return func() bool { return ctx.Err() != nil }
	}
	return func() bool { return ctx.Err() != nil || prev() }
}

// replayTrace walks the renamed program along the given branch decisions,
// recording the executed single assignments, and checks the target
// assertion. It returns nil when the path does not actually violate the
// assertion (possible only in BlockAllBN mode quirks or when the path
// stops early).
func replayTrace(p *rename.Program, target *rename.Assert, branches map[int]bool) *Counterexample {
	cex := &Counterexample{
		Assert:   target,
		Branches: make(map[int]bool),
	}
	env := make(map[string]lattice.Elem)
	typeOf := func(v rename.SSAVar) lattice.Elem {
		if t, ok := env[v.Name]; ok {
			return t
		}
		return p.AI.InitialType(v.Name)
	}
	var evalExpr func(e rename.Expr) lattice.Elem
	evalExpr = func(e rename.Expr) lattice.Elem {
		switch e := e.(type) {
		case rename.Const:
			return e.Type
		case rename.Ref:
			return typeOf(e.V)
		case rename.Join:
			acc := p.AI.Lat.Bottom()
			for _, part := range e.Parts {
				acc = p.AI.Lat.Join(acc, evalExpr(part))
			}
			return acc
		default:
			return p.AI.Lat.Top()
		}
	}

	found := false
	var walk func(cmds []rename.Cmd) bool // returns false on stop/target
	walk = func(cmds []rename.Cmd) bool {
		for _, c := range cmds {
			switch c := c.(type) {
			case *rename.Set:
				val := evalExpr(c.RHS)
				env[c.V.Name] = val
				cex.Steps = append(cex.Steps, Step{Set: c, Value: val})
			case *rename.Assert:
				if c != target {
					continue
				}
				for i, arg := range c.Args {
					t := evalExpr(arg.Expr)
					if !p.AI.Lat.Lt(t, c.Bound) {
						cex.FailingArgs = append(cex.FailingArgs, i)
						for _, ref := range rename.ExprRefs(arg.Expr) {
							if !p.AI.Lat.Lt(typeOf(ref), c.Bound) {
								cex.Violating = append(cex.Violating, ref)
							}
						}
					}
				}
				found = len(cex.FailingArgs) > 0
				return false
			case *rename.If:
				taken := branches[c.ID]
				cex.Branches[c.ID] = taken
				arm := c.Then
				if !taken {
					arm = c.Else
				}
				if !walk(arm) {
					return false
				}
			case *rename.Stop:
				return false
			}
		}
		return true
	}
	walk(p.Cmds)
	if !found {
		return nil
	}
	// Deduplicate violating variables.
	uniq := cex.Violating[:0]
	seen := make(map[rename.SSAVar]bool)
	for _, v := range cex.Violating {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	cex.Violating = uniq
	return cex
}
