package core

import (
	"math/rand"
	"strings"
	"testing"

	"webssari/internal/flow"
	"webssari/internal/prelude"
)

func verifyShared(t *testing.T, src string) *Result {
	t.Helper()
	prog, errs := flow.BuildSource("test.php", []byte(src), flow.Options{Prelude: prelude.Default()})
	if len(errs) != 0 {
		t.Fatalf("build: %v", errs)
	}
	res, err := VerifyAIShared(prog, Options{})
	if err != nil {
		t.Fatalf("shared verify: %v", err)
	}
	return res
}

func TestSharedSolverMatchesPerAssert(t *testing.T) {
	sources := []string{
		`<?php echo $_GET['x'];`,
		`<?php $x = 'safe'; echo $x;`,
		`<?php if ($a) { $x = $_GET['q']; } else { $x = 'ok'; } echo $x; mysql_query($x);`,
		`<?php
$x = $_COOKIE['c'];
if ($a) { $x = htmlspecialchars($x); }
echo $x;
echo 'const';`,
		`<?php
$x = $_GET['a'];
if ($s) { exit; }
echo $x;`,
		`<?php
switch ($m) { case 1: $v = $_GET['x']; break; default: $v = 'ok'; }
mysql_query($v);`,
	}
	for i, src := range sources {
		shared := verifyShared(t, src)
		baseline := verify(t, src)
		got := cexKeys(shared)
		want := cexKeys(baseline)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("source %d:\nshared:   %v\nbaseline: %v", i, got, want)
		}
	}
}

func TestSharedSolverMatchesOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(515))
	for i := 0; i < 80; i++ {
		src := randomProgram(r)
		prog, errs := flow.BuildSource("test.php", []byte(src), flow.Options{Prelude: prelude.Default()})
		if len(errs) != 0 {
			t.Fatalf("iter %d: %v", i, errs)
		}
		if prog.Branches > 12 {
			continue
		}
		shared, err := VerifyAIShared(prog, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		baseline, err := VerifyAI(prog, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		got := cexKeys(shared)
		want := cexKeys(baseline)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("iter %d mismatch:\nsrc:\n%s\nshared:   %v\nbaseline: %v",
				i, src, got, want)
		}
	}
}

func TestSharedSolverAssumePriorMatchesPerAssert(t *testing.T) {
	// AssumePriorAsserts in shared mode is realized through hold-selector
	// assumptions; the counterexample sets must match the per-assertion
	// encoder, which re-encodes the prior checks as hard constraints.
	sources := []string{
		`<?php echo 1;`,
		`<?php echo $_GET['x']; mysql_query($_GET['x']);`,
		`<?php $x = $_GET['a']; echo $x; echo $x; mysql_query($x);`,
		`<?php
if ($a) { $x = $_GET['q']; } else { $x = 'ok'; }
echo $x;
if ($b) { $y = $_POST['p']; } else { $y = $x; }
mysql_query($y);`,
		`<?php
$x = $_COOKIE['c'];
if ($a) { $x = htmlspecialchars($x); }
echo $x;
mysql_query($x);`,
	}
	for i, src := range sources {
		prog, errs := flow.BuildSource("test.php", []byte(src), flow.Options{Prelude: prelude.Default()})
		if len(errs) != 0 {
			t.Fatalf("source %d: %v", i, errs)
		}
		shared, err := VerifyAIShared(prog, Options{AssumePriorAsserts: true})
		if err != nil {
			t.Fatalf("source %d: shared verify: %v", i, err)
		}
		baseline, err := VerifyAI(prog, Options{AssumePriorAsserts: true})
		if err != nil {
			t.Fatalf("source %d: baseline verify: %v", i, err)
		}
		got := cexKeys(shared)
		want := cexKeys(baseline)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("source %d:\nshared:   %v\nbaseline: %v", i, got, want)
		}
	}
}

func TestSharedSolverBlockingIsolation(t *testing.T) {
	// Two assertions over the same branch structure: blocking clauses from
	// enumerating assert 0 must not hide assert 1's counterexamples.
	res := verifyShared(t, `<?php
if ($a) { $x = $_GET['p']; } else { $x = $_POST['q']; }
echo $x;
mysql_query($x);`)
	if len(res.PerAssert) != 2 {
		t.Fatalf("asserts = %d", len(res.PerAssert))
	}
	for i, ar := range res.PerAssert {
		if len(ar.Counterexamples) != 2 {
			t.Fatalf("assert %d: %d counterexamples, want 2 (selector gating broken)",
				i, len(ar.Counterexamples))
		}
	}
}
