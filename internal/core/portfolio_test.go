package core

// Portfolio-mode tests. Run them with -race: the interesting failure
// modes here are data races between lanes, the winner's cancellation
// broadcast, and the shared-pool slot discipline.

import (
	"math/rand"
	"strings"
	"testing"

	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/sat"
)

// forceEscalation drops the probe budget to 1 conflict for the duration
// of a test so even tiny instances race the full lane width.
func forceEscalation(t *testing.T) {
	t.Helper()
	saved := portfolioProbeConflicts
	portfolioProbeConflicts = 1
	t.Cleanup(func() { portfolioProbeConflicts = saved })
}

func verifyPortfolio(t *testing.T, src string, mutate ...func(*Options)) *Result {
	t.Helper()
	return verify(t, src, append([]func(*Options){func(o *Options) {
		o.Mode = ModePortfolio
		o.PortfolioWidth = 4
	}}, mutate...)...)
}

// TestPortfolioMatchesPerAssert races every assertion (probe forced to
// escalate) and checks the winning lanes' content is byte-identical to
// the per-assertion baseline — the determinism argument of
// checkAssertionPortfolio, exercised with real cancellations. Run under
// -race this doubles as the lane/cancellation data-race test.
func TestPortfolioMatchesPerAssert(t *testing.T) {
	forceEscalation(t)
	sources := []string{
		`<?php echo $_GET['x'];`,
		`<?php $x = 'safe'; echo $x;`,
		`<?php if ($a) { $x = $_GET['q']; } else { $x = 'ok'; } echo $x; mysql_query($x);`,
		// Branchy enumerations: enough trace classes that blocking-clause
		// conflicts exhaust a 1-conflict probe, forcing the race.
		`<?php
$x = $_GET['a'];
if ($b1) { $x = $x . '1'; }
if ($b2) { $x = $x . '2'; }
if ($b3) { $x = $x . '3'; }
echo $x;
mysql_query($x);`,
		`<?php
$x = $_COOKIE['c'];
if ($a) { $x = htmlspecialchars($x); }
if ($b) { $x = $x . '!'; }
if ($c) { $x = $x . '?'; }
echo $x;
echo 'const';`,
	}
	races := 0
	for i, src := range sources {
		pf := verifyPortfolio(t, src)
		baseline := verify(t, src)
		got, want := cexKeys(pf), cexKeys(baseline)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("source %d:\nportfolio: %v\nbaseline:  %v", i, got, want)
		}
		for j, ar := range pf.PerAssert {
			if ar.Unknown != baseline.PerAssert[j].Unknown {
				t.Errorf("source %d assert %d: unknown=%v, baseline %v",
					i, j, ar.Unknown, baseline.PerAssert[j].Unknown)
			}
		}
		if pf.Portfolio != nil {
			races += pf.Portfolio.Races
		}
	}
	if races == 0 {
		t.Fatal("probe budget 1 should have escalated at least one assertion into a race")
	}
}

// TestPortfolioMatchesOnRandomPrograms fuzzes the differential claim
// across the random-program corpus with racing forced on.
func TestPortfolioMatchesOnRandomPrograms(t *testing.T) {
	forceEscalation(t)
	r := rand.New(rand.NewSource(846))
	races := 0
	for i := 0; i < 60; i++ {
		src := randomProgram(r)
		prog, errs := flow.BuildSource("test.php", []byte(src), flow.Options{Prelude: prelude.Default()})
		if len(errs) != 0 {
			t.Fatalf("iter %d: %v", i, errs)
		}
		if prog.Branches > 12 {
			continue
		}
		pf, err := VerifyAI(prog, Options{Mode: ModePortfolio, PortfolioWidth: 3})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		baseline, err := VerifyAI(prog, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		got, want := cexKeys(pf), cexKeys(baseline)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("iter %d:\nportfolio: %v\nbaseline:  %v\nsource:\n%s", i, got, want, src)
		}
		if pf.Portfolio != nil {
			races += pf.Portfolio.Races
		}
	}
	if races == 0 {
		t.Fatal("no assertion escalated across the corpus; the race path went untested")
	}
}

// TestPortfolioBudgetFallback pins the no-winner path: when every lane
// inherits a 1-conflict budget nothing can produce a canonical answer,
// so the race deterministically falls back to lane 0 (recorded as lane
// -1) and the result matches what per-assertion mode reports under the
// same budget.
func TestPortfolioBudgetFallback(t *testing.T) {
	src := `<?php
$x = $_GET['a'];
if ($b1) { $x = $x . '1'; }
if ($b2) { $x = $x . '2'; }
if ($b3) { $x = $x . '3'; }
echo $x;
mysql_query($x);`
	budget := func(o *Options) { o.Solver = sat.Options{MaxConflicts: 1} }
	pf := verifyPortfolio(t, src, budget)
	baseline := verify(t, src, budget)
	if len(pf.PerAssert) != len(baseline.PerAssert) {
		t.Fatalf("assert counts differ: %d vs %d", len(pf.PerAssert), len(baseline.PerAssert))
	}
	fellBack := false
	for i, ar := range pf.PerAssert {
		b := baseline.PerAssert[i]
		if ar.Unknown != b.Unknown || ar.Cause != b.Cause {
			t.Errorf("assert %d: unknown=%v cause=%q, baseline unknown=%v cause=%q",
				i, ar.Unknown, ar.Cause, b.Unknown, b.Cause)
		}
		if ar.racedLane != nil {
			if *ar.racedLane != -1 {
				t.Errorf("assert %d: winner lane %d under an unwinnable budget", i, *ar.racedLane)
			}
			fellBack = true
		}
	}
	if !fellBack {
		t.Fatal("budget 1 should have forced at least one raced fallback")
	}
	if got, want := cexKeys(pf), cexKeys(baseline); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("fallback content diverges:\nportfolio: %v\nbaseline:  %v", got, want)
	}
}

// TestPortfolioPoolDiscipline races with a single-slot shared pool: the
// extra lanes must degrade to fewer (or zero) racers via TryAcquire
// without deadlocking or changing content.
func TestPortfolioPoolDiscipline(t *testing.T) {
	forceEscalation(t)
	src := `<?php
$x = $_COOKIE['c'];
if ($a) { $x = htmlspecialchars($x); }
if ($b) { $x = $x . '!'; }
if ($c) { $x = $x . '?'; }
echo $x;
mysql_query($x);`
	pool := NewPool(1)
	pf := verifyPortfolio(t, src, func(o *Options) { o.Workers = pool })
	baseline := verify(t, src)
	if got, want := cexKeys(pf), cexKeys(baseline); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("pooled portfolio diverges:\nportfolio: %v\nbaseline:  %v", got, want)
	}
}
