package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"webssari/internal/flow"
	"webssari/internal/prelude"
)

// multiAssert returns a program with n independent tainted assertions,
// each behind its own branch structure, so a parallel Solve has real
// per-assertion work to fan out.
func multiAssert(n int) string {
	var b strings.Builder
	b.WriteString("<?php\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "$v%d = $_GET['a%d'];\n", i, i)
		fmt.Fprintf(&b, "if ($c%d) { $v%d = htmlspecialchars($v%d); }\n", i, i, i)
		fmt.Fprintf(&b, "echo $v%d;\n", i)
	}
	return b.String()
}

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	p, errs := Compile("test.php", []byte(src), opts)
	if p == nil {
		t.Fatalf("Compile failed: %v", errs)
	}
	return p
}

// assertResultsEqual compares two Results field-by-field over everything
// a report is built from.
func assertResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.PerAssert) != len(b.PerAssert) {
		t.Fatalf("%s: PerAssert lengths %d vs %d", label, len(a.PerAssert), len(b.PerAssert))
	}
	for i := range a.PerAssert {
		x, y := a.PerAssert[i], b.PerAssert[i]
		if len(x.Counterexamples) != len(y.Counterexamples) {
			t.Fatalf("%s: assert %d: %d vs %d counterexamples",
				label, i, len(x.Counterexamples), len(y.Counterexamples))
		}
		for j := range x.Counterexamples {
			if x.Counterexamples[j].Key() != y.Counterexamples[j].Key() {
				t.Fatalf("%s: assert %d cex %d: key %q vs %q",
					label, i, j, x.Counterexamples[j].Key(), y.Counterexamples[j].Key())
			}
		}
		if x.Unknown != y.Unknown || x.Cause != y.Cause || x.Truncated != y.Truncated {
			t.Fatalf("%s: assert %d: verdict fields differ: %+v vs %+v", label, i, x, y)
		}
		if x.EncodedVars != y.EncodedVars || x.EncodedClauses != y.EncodedClauses {
			t.Fatalf("%s: assert %d: encoding sizes differ", label, i)
		}
		if x.SolverStats != y.SolverStats {
			t.Fatalf("%s: assert %d: solver stats differ: %+v vs %+v",
				label, i, x.SolverStats, y.SolverStats)
		}
	}
	if !reflect.DeepEqual(a.Warnings, b.Warnings) {
		t.Fatalf("%s: warnings differ: %v vs %v", label, a.Warnings, b.Warnings)
	}
	if !reflect.DeepEqual(a.ParseErrors, b.ParseErrors) {
		t.Fatalf("%s: parse errors differ: %v vs %v", label, a.ParseErrors, b.ParseErrors)
	}
}

// TestSolveParallelMatchesSequential is the core determinism guarantee:
// Solve at any parallelism produces the same result as the sequential
// paper loop, assertion by assertion.
func TestSolveParallelMatchesSequential(t *testing.T) {
	prog := compileSrc(t, multiAssert(8))
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	seq := Solve(context.Background(), prog, opts)
	for _, par := range []int{2, 4, 8, 16} {
		popts := opts
		popts.Parallelism = par
		got := Solve(context.Background(), prog, popts)
		assertResultsEqual(t, fmt.Sprintf("parallelism=%d", par), seq, got)
	}
}

// TestConcurrentSolvesOnSharedProgram proves the Program immutability
// contract: many goroutines solving one shared Program concurrently (each
// itself fanning out assertions) all produce the sequential result, and
// the race detector sees no shared-state writes.
func TestConcurrentSolvesOnSharedProgram(t *testing.T) {
	prog := compileSrc(t, multiAssert(6))
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	want := Solve(context.Background(), prog, opts)

	const goroutines = 8
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			popts := opts
			popts.Parallelism = 1 + g%3
			results[g] = Solve(context.Background(), prog, popts)
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		assertResultsEqual(t, fmt.Sprintf("goroutine %d", g), want, got)
	}
}

// TestSolveSharedPoolNoDeadlock exercises the pool-sharing discipline: a
// Solve whose caller holds the only slot of a shared pool must finish
// inline instead of waiting for slots that can never free up.
func TestSolveSharedPoolNoDeadlock(t *testing.T) {
	prog := compileSrc(t, multiAssert(4))
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	pool := NewPool(1)
	if err := pool.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer pool.Release()
	opts.Workers = pool
	got := Solve(context.Background(), prog, opts)
	want := Solve(context.Background(), prog, NewOptions(flow.Options{Prelude: prelude.Default()}))
	assertResultsEqual(t, "shared pool, one slot", want, got)
}

// TestParallelSolveDeadlineDegrades: a context that expires mid-pool
// degrades undecided assertions to Unknown/deadline without deadlocking,
// and the degradation warning reports a contiguous unchecked suffix.
func TestParallelSolveDeadlineDegrades(t *testing.T) {
	prog := compileSrc(t, multiAssert(8))
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	opts.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	opts.Hooks.BeforeAssert = func(idx int) {
		if idx >= 2 {
			once.Do(cancel)
		}
	}
	defer cancel()
	res := Solve(ctx, prog, opts)
	if len(res.PerAssert) != 8 {
		t.Fatalf("asserts = %d, want 8 (one entry per assertion even when degraded)", len(res.PerAssert))
	}
	sawDeadline := false
	for _, ar := range res.PerAssert {
		if ar.Unknown && ar.Cause == CauseDeadline {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("no assertion degraded to Unknown/deadline despite cancellation")
	}
	if !res.Incomplete() {
		t.Fatal("cancelled parallel solve not marked Incomplete")
	}
}

// TestPoolAcquireRespectsContext: Acquire on a full pool returns the
// context error instead of blocking forever.
func TestPoolAcquireRespectsContext(t *testing.T) {
	pool := NewPool(1)
	if err := pool.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pool.Acquire(ctx); err == nil {
		t.Fatal("Acquire on a full pool with a cancelled context returned nil")
	}
	if pool.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full pool")
	}
	pool.Release()
	if !pool.TryAcquire() {
		t.Fatal("TryAcquire failed on a free pool")
	}
}
