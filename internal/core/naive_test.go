package core

import (
	"math/rand"
	"testing"

	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/sat"
)

// TestNaiveAgreesWithRenamed checks that the xBMC0.1 location-variable
// encoding and the xBMC1.0 renaming encoding decide every assertion the
// same way.
func TestNaiveAgreesWithRenamed(t *testing.T) {
	sources := []string{
		`<?php echo $_GET['x'];`,
		`<?php $x = 'safe'; echo $x;`,
		`<?php if ($a) { $x = $_GET['q']; } else { $x = 'ok'; } echo $x;`,
		`<?php
$x = $_COOKIE['c'];
if ($a) { $x = htmlspecialchars($x); }
echo $x;
mysql_query($x);`,
		`<?php
$x = $_GET['a'];
if ($s) { exit; }
echo $x;`,
		`<?php
if ($a) { if ($b) { $y = $_POST['p']; } }
echo $y;`,
	}
	for i, src := range sources {
		prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
		if len(errs) != 0 {
			t.Fatalf("source %d: %v", i, errs)
		}
		res, err := VerifyAI(prog, Options{})
		if err != nil {
			t.Fatalf("source %d verify: %v", i, err)
		}
		asserts := prog.Asserts()
		if len(asserts) != len(res.PerAssert) {
			t.Fatalf("source %d: assert count mismatch", i)
		}
		for j, a := range asserts {
			wantViolated := len(res.PerAssert[j].Counterexamples) > 0
			gotViolated, enc, err := VerifyAssertNaive(prog, a, sat.Options{})
			if err != nil {
				t.Fatalf("source %d assert %d: %v", i, j, err)
			}
			if gotViolated != wantViolated {
				t.Errorf("source %d assert %d: naive=%v renamed=%v", i, j, gotViolated, wantViolated)
			}
			if enc.StateVars == 0 || enc.Steps == 0 {
				t.Errorf("source %d assert %d: missing size stats", i, j)
			}
		}
	}
}

func TestNaiveAgreesOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for i := 0; i < 25; i++ {
		src := randomProgram(r)
		prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
		if len(errs) != 0 {
			t.Fatalf("iter %d: %v", i, errs)
		}
		if prog.Size() > 40 {
			continue // keep the quadratic naive encoding cheap in tests
		}
		res, err := VerifyAI(prog, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		for j, a := range prog.Asserts() {
			wantViolated := len(res.PerAssert[j].Counterexamples) > 0
			gotViolated, _, err := VerifyAssertNaive(prog, a, sat.Options{})
			if err != nil {
				t.Fatalf("iter %d assert %d: %v", i, j, err)
			}
			if gotViolated != wantViolated {
				t.Fatalf("iter %d assert %d: naive=%v renamed=%v\nsrc:\n%s",
					i, j, gotViolated, wantViolated, src)
			}
		}
	}
}

// TestNaiveEncodingExplodes demonstrates §3.3.1: the location-variable
// encoding grows quadratically (per-step variable copies) where the
// renaming encoding grows linearly.
func TestNaiveEncodingExplodes(t *testing.T) {
	small := taintChain(4)
	large := taintChain(16)

	sizeOf := func(src string) (naiveVars, renamedVars int) {
		prog, errs := flow.BuildSource("t.php", []byte(src), flow.Options{Prelude: prelude.Default()})
		if len(errs) != 0 {
			t.Fatalf("build: %v", errs)
		}
		asserts := prog.Asserts()
		_, enc, err := VerifyAssertNaive(prog, asserts[len(asserts)-1], sat.Options{})
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		res, err := VerifyAI(prog, Options{})
		if err != nil {
			t.Fatalf("renamed: %v", err)
		}
		return enc.F.NumVars, res.PerAssert[len(res.PerAssert)-1].EncodedVars
	}

	nv1, rv1 := sizeOf(small)
	nv2, rv2 := sizeOf(large)
	naiveGrowth := float64(nv2) / float64(nv1)
	renamedGrowth := float64(rv2) / float64(max(rv1, 1))
	if naiveGrowth < 2*renamedGrowth {
		t.Fatalf("expected naive encoding to grow much faster: naive %d→%d (×%.1f), renamed %d→%d (×%.1f)",
			nv1, nv2, naiveGrowth, rv1, rv2, renamedGrowth)
	}
}

// taintChain builds a program with n variables each copied from the
// previous, ending in a sink — the |X| growth driver.
func taintChain(n int) string {
	src := "<?php\n$v0 = $_GET['x'];\n"
	for i := 1; i < n; i++ {
		src += "$v" + itoa(i) + " = $v" + itoa(i-1) + ";\n"
	}
	src += "echo $v" + itoa(n-1) + ";\n"
	return src
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
