package core

// This file is the engine's front end: everything in the pipeline before
// the SAT solver — parse, include resolution, filter F(p), abstract
// interpretation AI(F(p)), single-assignment renaming ρ, and constraint
// generation C(c,g). The front end is deterministic and solver-free, and
// its output is a durable Program artifact that Solve (the back end) can
// consume any number of times, concurrently.

import (
	"context"
	"sync"
	"time"

	"webssari/internal/ai"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/ir"
	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
	"webssari/internal/rename"
	"webssari/internal/telemetry"
)

// Program is the compiled form of one verification unit: the abstract
// interpretation together with its renamed form and generated constraint
// system.
//
// Invariants: a Program is immutable after Compile returns — no stage of
// Solve writes into AI, Renamed, or System — so one Program may be solved
// by any number of goroutines concurrently and may be cached and reused
// across Verify/Patch calls. Solve copies the slices it extends
// (warnings, parse errors) rather than appending to the Program's.
type Program struct {
	// Unit is the typed flow IR the entry file lowered to (before include
	// splicing); nil when the Program was compiled from a bare AI (e.g.
	// CompileAI). The incremental planner reads its function fingerprints.
	Unit *ir.Unit
	// AI is the abstract interpretation AI(F(p)).
	AI *ai.Program
	// Renamed is AI under the single-assignment renaming ρ.
	Renamed *rename.Program
	// System is the generated constraint system C(c,g).
	System *constraint.System
	// ParseErrors records syntax errors the parser recovered from; a
	// non-empty list makes every Result solved from this Program
	// Incomplete.
	ParseErrors []string
	// Stats is the front end's per-stage wall-time breakdown.
	Stats CompileStats

	// fpOnce/fps memoize CheckFingerprints; see fingerprint.go.
	fpOnce sync.Once
	fps    []string
}

// CompileStats records the front end's per-stage wall time. It is always
// populated — the cost is two clock reads per stage — so run profiles
// have a stage breakdown even when no telemetry sink is attached. (A
// cached Program carries the stats of its original compile.)
type CompileStats struct {
	ParseNS       int64
	LowerNS       int64
	FlowNS        int64
	RenameNS      int64
	ConstraintsNS int64
}

// observeStage records one stage duration into the context's stage
// histogram (a no-op without telemetry).
func observeStage(ctx context.Context, stage string, ns int64) {
	telemetry.Histogram(ctx, telemetry.Name(telemetry.MetricStageSeconds, "stage", stage)).
		Observe(float64(ns) / 1e9)
}

// Compile parses, filters, and compiles one PHP source text into a
// Program. A panic in the parser or filter is recovered into a
// *StageError; recoverable syntax errors are recorded on the Program
// (making its results Incomplete) and also returned for callers that want
// them as errors. On a nil Program the error list explains why.
//
// Each stage is timed into the Program's CompileStats and, when opts.Ctx
// carries a Telemetry, emitted as a trace span and histogram sample.
func Compile(name string, src []byte, opts Options) (*Program, []error) {
	ctx := opts.context()

	var (
		parsed *parser.Result
		errs   []error
	)
	start := time.Now()
	_, sp := telemetry.StartSpan(ctx, "parse", "file", name)
	err := guard("parse", func() { parsed = parser.Parse(name, src) })
	sp.End()
	parseNS := time.Since(start).Nanoseconds()
	observeStage(ctx, "parse", parseNS)
	if err != nil {
		return nil, []error{err}
	}
	errs = append(errs, parsed.Errs...)

	var (
		unit     *ir.Unit
		lowerErr error
	)
	start = time.Now()
	_, sp = telemetry.StartSpan(ctx, "lower", "file", name)
	err = guard("lower", func() { unit, lowerErr = ir.Lower(parsed.File) })
	sp.End()
	lowerNS := time.Since(start).Nanoseconds()
	observeStage(ctx, "lower", lowerNS)
	if err != nil {
		return nil, append([]error{err}, errs...)
	}
	if lowerErr != nil {
		return nil, append([]error{lowerErr}, errs...)
	}

	var (
		prog     *ai.Program
		buildErr error
	)
	start = time.Now()
	_, sp = telemetry.StartSpan(ctx, "flow", "file", name)
	err = guard("flow", func() { prog, buildErr = flow.BuildUnit(unit, opts.Flow) })
	sp.End()
	flowNS := time.Since(start).Nanoseconds()
	observeStage(ctx, "flow", flowNS)
	if err != nil {
		return nil, append([]error{err}, errs...)
	}
	if buildErr != nil {
		return nil, append([]error{buildErr}, errs...)
	}

	p, cerr := compileAI(ctx, prog)
	if cerr != nil {
		return nil, append(errs, cerr)
	}
	p.Unit = unit
	p.Stats.ParseNS = parseNS
	p.Stats.LowerNS = lowerNS
	p.Stats.FlowNS = flowNS
	for _, perr := range parsed.Errs {
		p.ParseErrors = append(p.ParseErrors, perr.Error())
	}
	return p, errs
}

// CompileFile compiles an already-parsed file.
func CompileFile(file *ast.File, opts Options) (*Program, error) {
	ctx := opts.context()
	start := time.Now()
	_, sp := telemetry.StartSpan(ctx, "lower")
	unit, err := ir.Lower(file)
	sp.End()
	lowerNS := time.Since(start).Nanoseconds()
	observeStage(ctx, "lower", lowerNS)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	_, sp = telemetry.StartSpan(ctx, "flow")
	prog, err := flow.BuildUnit(unit, opts.Flow)
	sp.End()
	flowNS := time.Since(start).Nanoseconds()
	observeStage(ctx, "flow", flowNS)
	if err != nil {
		return nil, err
	}
	p, err := compileAI(ctx, prog)
	if err != nil {
		return nil, err
	}
	p.Unit = unit
	p.Stats.LowerNS = lowerNS
	p.Stats.FlowNS = flowNS
	return p, nil
}

// CompileAI runs the back half of the front end — renaming and constraint
// generation — over an existing abstract interpretation. A panic is
// recovered into a *StageError.
func CompileAI(prog *ai.Program) (*Program, error) {
	return compileAI(context.Background(), prog)
}

func compileAI(ctx context.Context, prog *ai.Program) (*Program, error) {
	var (
		ren   *rename.Program
		sys   *constraint.System
		stats CompileStats
	)
	if err := guard("constraint", func() {
		start := time.Now()
		_, sp := telemetry.StartSpan(ctx, "rename")
		ren = rename.Rename(prog)
		sp.End()
		stats.RenameNS = time.Since(start).Nanoseconds()
		observeStage(ctx, "rename", stats.RenameNS)

		start = time.Now()
		_, sp = telemetry.StartSpan(ctx, "constraints")
		sys = constraint.Build(ren)
		sp.End()
		stats.ConstraintsNS = time.Since(start).Nanoseconds()
		observeStage(ctx, "constraints", stats.ConstraintsNS)
	}); err != nil {
		return nil, err
	}
	return &Program{AI: prog, Renamed: ren, System: sys, Stats: stats}, nil
}
