package core

// This file is the engine's front end: everything in the pipeline before
// the SAT solver — parse, include resolution, filter F(p), abstract
// interpretation AI(F(p)), single-assignment renaming ρ, and constraint
// generation C(c,g). The front end is deterministic and solver-free, and
// its output is a durable Program artifact that Solve (the back end) can
// consume any number of times, concurrently.

import (
	"webssari/internal/ai"
	"webssari/internal/constraint"
	"webssari/internal/flow"
	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
	"webssari/internal/rename"
)

// Program is the compiled form of one verification unit: the abstract
// interpretation together with its renamed form and generated constraint
// system.
//
// Invariants: a Program is immutable after Compile returns — no stage of
// Solve writes into AI, Renamed, or System — so one Program may be solved
// by any number of goroutines concurrently and may be cached and reused
// across Verify/Patch calls. Solve copies the slices it extends
// (warnings, parse errors) rather than appending to the Program's.
type Program struct {
	// AI is the abstract interpretation AI(F(p)).
	AI *ai.Program
	// Renamed is AI under the single-assignment renaming ρ.
	Renamed *rename.Program
	// System is the generated constraint system C(c,g).
	System *constraint.System
	// ParseErrors records syntax errors the parser recovered from; a
	// non-empty list makes every Result solved from this Program
	// Incomplete.
	ParseErrors []string
}

// Compile parses, filters, and compiles one PHP source text into a
// Program. A panic in the parser or filter is recovered into a
// *StageError; recoverable syntax errors are recorded on the Program
// (making its results Incomplete) and also returned for callers that want
// them as errors. On a nil Program the error list explains why.
func Compile(name string, src []byte, opts Options) (*Program, []error) {
	var (
		parsed *parser.Result
		errs   []error
	)
	if err := guard("parse", func() { parsed = parser.Parse(name, src) }); err != nil {
		return nil, []error{err}
	}
	errs = append(errs, parsed.Errs...)

	var (
		prog     *ai.Program
		buildErr error
	)
	if err := guard("flow", func() { prog, buildErr = flow.Build(parsed.File, opts.Flow) }); err != nil {
		return nil, append([]error{err}, errs...)
	}
	if buildErr != nil {
		return nil, append([]error{buildErr}, errs...)
	}

	p, err := CompileAI(prog)
	if err != nil {
		return nil, append(errs, err)
	}
	for _, perr := range parsed.Errs {
		p.ParseErrors = append(p.ParseErrors, perr.Error())
	}
	return p, errs
}

// CompileFile compiles an already-parsed file.
func CompileFile(file *ast.File, opts Options) (*Program, error) {
	prog, err := flow.Build(file, opts.Flow)
	if err != nil {
		return nil, err
	}
	return CompileAI(prog)
}

// CompileAI runs the back half of the front end — renaming and constraint
// generation — over an existing abstract interpretation. A panic is
// recovered into a *StageError.
func CompileAI(prog *ai.Program) (*Program, error) {
	var (
		ren *rename.Program
		sys *constraint.System
	)
	if err := guard("constraint", func() {
		ren = rename.Rename(prog)
		sys = constraint.Build(ren)
	}); err != nil {
		return nil, err
	}
	return &Program{AI: prog, Renamed: ren, System: sys}, nil
}
