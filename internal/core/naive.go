package core

import (
	"fmt"

	"webssari/internal/ai"
	"webssari/internal/lattice"
	"webssari/internal/sat"
)

// This file implements xBMC0.1, the paper's first encoding (§3.3.1): an
// auxiliary location variable l records the current statement, the
// transition relation T(s, s') of the control-flow graph CFG(X, p) is
// unrolled for k steps (k = the longest path), and the unrolled relation
// is conjoined with the initial condition I(s0) and the risk condition
// R(si..sk):
//
//	B(X, k) = I(s0) ∧ T(s0,s1) ∧ … ∧ T(sk−1,sk) ∧ R(si..sk)
//
// Every step must carry a copy of *every* variable, with frame axioms
// keeping untouched variables equal across the step — the "inefficiently
// encoding each assignment using 2|X| variables" that caused xBMC0.1's
// "frequent system breakdowns" and motivated the renaming-based xBMC1.0.
// It is retained as the encoding-ablation baseline (BenchmarkEncodingAblation).

// naiveInstr is one linearized CFG node.
type naiveInstr struct {
	kind naiveKind
	set  *ai.Set
	chk  *ai.Assert
	// branchID and elseTarget apply to branch instructions: the successor
	// is pc+1 when the branch variable is true, elseTarget otherwise.
	branchID   int
	elseTarget int
	// jumpTarget applies to jump instructions (end of a then-arm).
	jumpTarget int
}

type naiveKind int

const (
	nSet naiveKind = iota + 1
	nAssert
	nBranch
	nJump
	nStop
	nEnd
)

// NaiveEncoding is the xBMC0.1 formula for one assertion, with the size
// statistics the ablation reports.
type NaiveEncoding struct {
	F *sat.CNF
	// BranchVars maps branch IDs to SAT variables.
	BranchVars map[int]int
	// Steps is the unrolling depth k.
	Steps int
	// StateVars is the number of state variables (|X|+1 per step).
	StateVars int
}

// linearize flattens the AI command tree into a jump-threaded instruction
// list.
func linearize(cmds []ai.Cmd) []naiveInstr {
	var prog []naiveInstr
	var emit func(cmds []ai.Cmd)
	emit = func(cmds []ai.Cmd) {
		for _, c := range cmds {
			switch c := c.(type) {
			case *ai.Set:
				prog = append(prog, naiveInstr{kind: nSet, set: c})
			case *ai.Assert:
				prog = append(prog, naiveInstr{kind: nAssert, chk: c})
			case *ai.If:
				bIdx := len(prog)
				prog = append(prog, naiveInstr{kind: nBranch, branchID: c.ID})
				emit(c.Then)
				jIdx := len(prog)
				prog = append(prog, naiveInstr{kind: nJump})
				prog[bIdx].elseTarget = len(prog)
				emit(c.Else)
				prog[jIdx].jumpTarget = len(prog)
			case *ai.Stop:
				prog = append(prog, naiveInstr{kind: nStop})
			}
		}
	}
	emit(cmds)
	prog = append(prog, naiveInstr{kind: nEnd})
	return prog
}

// EncodeNaive builds the xBMC0.1 formula B(X, k) whose satisfiability
// means the target assertion (identified by pointer) can be violated.
func EncodeNaive(prog *ai.Program, target *ai.Assert) (*NaiveEncoding, error) {
	instrs := linearize(prog.Cmds)
	vars := prog.Vars()
	lat := prog.Lat
	n := lat.Size()
	k := len(instrs) // every path visits at most k locations

	f := &sat.CNF{}

	// One-hot helpers.
	newOneHot := func(size int) []int {
		group := make([]int, size)
		alo := make([]sat.Lit, size)
		for i := range group {
			group[i] = f.NewVar()
			alo[i] = sat.Lit(group[i])
		}
		f.AddClause(alo...)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				f.AddClause(sat.Lit(-group[i]), sat.Lit(-group[j]))
			}
		}
		return group
	}

	// State: loc[t] one-hot over instructions; typ[t][v] one-hot over
	// lattice elements, for every variable at every step.
	loc := make([][]int, k+1)
	typ := make([][][]int, k+1)
	for t := 0; t <= k; t++ {
		loc[t] = newOneHot(len(instrs))
		typ[t] = make([][]int, len(vars))
		for vi := range vars {
			typ[t][vi] = newOneHot(n)
		}
	}
	varIdx := make(map[string]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	branchVars := make(map[int]int)
	branchVar := func(id int) int {
		if v, ok := branchVars[id]; ok {
			return v
		}
		v := f.NewVar()
		branchVars[id] = v
		return v
	}

	// I(s0): initial location 0, initial types.
	f.AddClause(sat.Lit(loc[0][0]))
	for vi, name := range vars {
		init := prog.InitialType(name)
		f.AddClause(sat.Lit(typ[0][vi][init]))
	}

	// typeImplies encodes: cond ∧ (expr evaluates to a at step t) ⇒ out_a,
	// by expanding the expression over the step-t type variables.
	// It returns, for each lattice element, the list of "support" clauses.
	var encodeExprEq func(t int, e ai.Expr, cond []sat.Lit, out []int)
	encodeExprEq = func(t int, e ai.Expr, cond []sat.Lit, out []int) {
		switch e := e.(type) {
		case nil:
			f.AddClause(append(negAll(cond), sat.Lit(out[lat.Bottom()]))...)
		case ai.Const:
			f.AddClause(append(negAll(cond), sat.Lit(out[e.Type]))...)
		case ai.Var:
			src := typ[t][varIdx[e.Name]]
			for a := 0; a < n; a++ {
				cl := append(negAll(cond), sat.Lit(-src[a]), sat.Lit(out[a]))
				f.AddClause(cl...)
			}
		case ai.Join:
			// Chain joins through intermediate one-hot groups.
			if len(e.Parts) == 0 {
				f.AddClause(append(negAll(cond), sat.Lit(out[lat.Bottom()]))...)
				return
			}
			acc := newOneHot(n)
			encodeExprEq(t, e.Parts[0], cond, acc)
			for _, part := range e.Parts[1:] {
				next := newOneHot(n)
				encodeExprEq(t, part, cond, next)
				joined := newOneHot(n)
				for a := 0; a < n; a++ {
					for b := 0; b < n; b++ {
						j := lat.Join(lattice.Elem(a), lattice.Elem(b))
						cl := append(negAll(cond),
							sat.Lit(-acc[a]), sat.Lit(-next[b]), sat.Lit(joined[j]))
						f.AddClause(cl...)
					}
				}
				acc = joined
			}
			for a := 0; a < n; a++ {
				cl := append(negAll(cond), sat.Lit(-acc[a]), sat.Lit(out[a]))
				f.AddClause(cl...)
			}
		}
	}

	// T(s_t, s_{t+1}) for each step: case split on the current location.
	for t := 0; t < k; t++ {
		for pc, ins := range instrs {
			at := sat.Lit(loc[t][pc]) // literal "location = pc at time t"
			cond := []sat.Lit{at}

			// frame axioms: variables not written keep their value —
			// this is where each assignment costs 2·|X| variables.
			frame := func(except int) {
				for vi := range vars {
					if vi == except {
						continue
					}
					for a := 0; a < n; a++ {
						f.AddClause(at.Not(), sat.Lit(-typ[t][vi][a]), sat.Lit(typ[t+1][vi][a]))
					}
				}
			}

			switch ins.kind {
			case nSet:
				vi := varIdx[ins.set.Var]
				encodeExprEq(t, ins.set.RHS, cond, typ[t+1][vi])
				frame(vi)
				f.AddClause(at.Not(), sat.Lit(loc[t+1][pc+1]))
			case nAssert:
				frame(-1)
				f.AddClause(at.Not(), sat.Lit(loc[t+1][pc+1]))
			case nBranch:
				frame(-1)
				b := branchVar(ins.branchID)
				f.AddClause(at.Not(), sat.Lit(-b), sat.Lit(loc[t+1][pc+1]))
				f.AddClause(at.Not(), sat.Lit(b), sat.Lit(loc[t+1][ins.elseTarget]))
			case nJump:
				frame(-1)
				f.AddClause(at.Not(), sat.Lit(loc[t+1][ins.jumpTarget]))
			case nStop, nEnd:
				frame(-1)
				f.AddClause(at.Not(), sat.Lit(loc[t+1][pc])) // self-loop
			}
		}
	}

	// R: the risk condition — at some step the target assertion's location
	// is active and a checked argument's type is not below the bound.
	targetPC := -1
	for pc, ins := range instrs {
		if ins.kind == nAssert && ins.chk == target {
			targetPC = pc
		}
	}
	if targetPC < 0 {
		return nil, fmt.Errorf("core: assertion not found in program")
	}
	bad := make(map[lattice.Elem]bool)
	good := lat.DownStrict(target.Bound)
	goodSet := make(map[lattice.Elem]bool, len(good))
	for _, g := range good {
		goodSet[g] = true
	}
	for _, el := range lat.Elems() {
		if !goodSet[el] {
			bad[el] = true
		}
	}

	var risk []sat.Lit
	for t := 0; t <= k; t++ {
		// riskVar_t ↔ loc[t] = targetPC ∧ violation at t.
		for _, arg := range target.Args {
			val := newOneHot(n)
			encodeExprEq(t, arg.Expr, []sat.Lit{sat.Lit(loc[t][targetPC])}, val)
			for el := range bad {
				rv := f.NewVar()
				// rv → loc=target ∧ val=el
				f.AddClause(sat.Lit(-rv), sat.Lit(loc[t][targetPC]))
				f.AddClause(sat.Lit(-rv), sat.Lit(val[el]))
				risk = append(risk, sat.Lit(rv))
			}
		}
	}
	f.AddClause(risk...)

	return &NaiveEncoding{
		F:          f,
		BranchVars: branchVars,
		Steps:      k,
		StateVars:  (k + 1) * (len(vars) + 1),
	}, nil
}

func negAll(lits []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(lits))
	for i, l := range lits {
		out[i] = l.Not()
	}
	return out
}

// VerifyAssertNaive decides one assertion with the xBMC0.1 encoding,
// returning whether a violation exists plus the encoding for inspection.
func VerifyAssertNaive(prog *ai.Program, target *ai.Assert, solverOpts sat.Options) (bool, *NaiveEncoding, error) {
	enc, err := EncodeNaive(prog, target)
	if err != nil {
		return false, nil, err
	}
	s := sat.NewWith(solverOpts)
	if !enc.F.LoadInto(s) {
		return false, enc, nil
	}
	return s.Solve() == sat.Sat, enc, nil
}
