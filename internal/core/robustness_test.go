package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/sat"
)

// branchyVulnerable returns a tainted program whose single echo assertion
// has 2^n counterexample paths — enough enumeration work that blocking
// clauses force real SAT search.
func branchyVulnerable(n int) string {
	var b strings.Builder
	b.WriteString("<?php\n$x = $_GET['a'];\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "if ($c%d) { $x = $x . \"s\"; } else { $x = \"\" . $x; }\n", i)
	}
	b.WriteString("echo $x;\n")
	return b.String()
}

// branchyMixed alternates sanitization and re-tainting per branch, so the
// echo's safety genuinely depends on the branch decisions: the encoding
// materializes one-hot value variables and implication clauses (unlike
// the all-tainted program, which constant-folds to just branch vars).
func branchyMixed(n int) string {
	var b strings.Builder
	b.WriteString("<?php\n$x = $_GET['a'];\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "if ($c%d) { $x = htmlspecialchars($x); } else { $x = $x . $_GET['b%d']; }\n", i, i)
	}
	b.WriteString("echo $x;\n")
	return b.String()
}

func buildAI(t *testing.T, src string) *flow.Options {
	t.Helper()
	return &flow.Options{Prelude: prelude.Default()}
}

// TestExpiredContextDegradesAll verifies that a context already expired
// when verification starts degrades every assertion to Unknown/deadline
// instead of aborting or (worse) claiming Safe.
func TestExpiredContextDegradesAll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := verify(t, `<?php echo $_GET['x']; echo $_GET['y'];`, func(o *Options) {
		o.Ctx = ctx
	})
	if len(res.PerAssert) != 2 {
		t.Fatalf("asserts = %d, want 2 (one entry per assertion even when degraded)", len(res.PerAssert))
	}
	for i, ar := range res.PerAssert {
		if !ar.Unknown || ar.Cause != CauseDeadline {
			t.Fatalf("assert %d: Unknown=%v Cause=%q, want Unknown/deadline", i, ar.Unknown, ar.Cause)
		}
	}
	if !res.Incomplete() {
		t.Fatal("expired-context result not marked Incomplete")
	}
	// Safe() sees no counterexamples, which is exactly why callers must
	// consult Incomplete before presenting a verdict.
	if causes := res.IncompleteCauses(); len(causes) != 1 || causes[0] != CauseDeadline {
		t.Fatalf("IncompleteCauses = %v, want [%s]", causes, CauseDeadline)
	}
}

// TestDeadlineMidEnumeration cancels the context from the BeforeSolve
// hook after a few enumeration iterations: the assertion must come back
// Unknown/deadline with the counterexamples found so far retained.
func TestDeadlineMidEnumeration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := verify(t, branchyVulnerable(6), func(o *Options) {
		o.Ctx = ctx
		o.Hooks.BeforeSolve = func(assertIdx, iteration int) {
			if iteration == 3 {
				cancel()
			}
		}
	})
	if len(res.PerAssert) != 1 {
		t.Fatalf("asserts = %d, want 1", len(res.PerAssert))
	}
	ar := res.PerAssert[0]
	if !ar.Unknown || ar.Cause != CauseDeadline {
		t.Fatalf("Unknown=%v Cause=%q, want Unknown/deadline", ar.Unknown, ar.Cause)
	}
	if len(ar.Counterexamples) == 0 {
		t.Fatal("counterexamples found before cancellation were dropped")
	}
	if len(ar.Counterexamples) >= 64 {
		t.Fatalf("found all %d counterexamples despite mid-enumeration cancel", len(ar.Counterexamples))
	}
}

// TestHookPanicDegradesAssertion proves fault isolation: a panic inside
// one assertion's encode+solve step degrades only that assertion to
// Unknown/internal error while the others still verify.
func TestHookPanicDegradesAssertion(t *testing.T) {
	res := verify(t, `<?php echo $_GET['x']; echo htmlspecialchars($_GET['y']); echo $_GET['z'];`,
		func(o *Options) {
			o.Hooks.BeforeAssert = func(idx int) {
				if idx == 1 {
					panic("injected fault")
				}
			}
		})
	if len(res.PerAssert) != 3 {
		t.Fatalf("asserts = %d, want 3", len(res.PerAssert))
	}
	if ar := res.PerAssert[1]; !ar.Unknown || ar.Cause != CauseInternal {
		t.Fatalf("faulted assert: Unknown=%v Cause=%q, want Unknown/%s", ar.Unknown, ar.Cause, CauseInternal)
	}
	if len(res.PerAssert[0].Counterexamples) != 1 || len(res.PerAssert[2].Counterexamples) != 1 {
		t.Fatalf("neighbouring assertions lost their verdicts: %d / %d counterexamples",
			len(res.PerAssert[0].Counterexamples), len(res.PerAssert[2].Counterexamples))
	}
	if !res.Incomplete() {
		t.Fatal("result with an internal fault not marked Incomplete")
	}
}

// TestConcurrentHookPanicsIsolated injects panics from two workers at
// once: a synchronization barrier holds both workers inside their
// BeforeAssert hook until both have arrived, then both panic
// simultaneously. Each fault must degrade only its own assertion — with
// no shared mutable hook state to corrupt — and the remaining assertions
// must still verify.
func TestConcurrentHookPanicsIsolated(t *testing.T) {
	prog := compileSrc(t, multiAssert(4))
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	opts.Parallelism = 2
	var barrier sync.WaitGroup
	barrier.Add(2)
	opts.Hooks.BeforeAssert = func(idx int) {
		if idx < 2 {
			barrier.Done()
			barrier.Wait() // both workers are now mid-flight together
			panic(fmt.Sprintf("injected concurrent fault %d", idx))
		}
	}
	res := Solve(context.Background(), prog, opts)
	if len(res.PerAssert) != 4 {
		t.Fatalf("asserts = %d, want 4", len(res.PerAssert))
	}
	for i := 0; i < 2; i++ {
		if ar := res.PerAssert[i]; !ar.Unknown || ar.Cause != CauseInternal {
			t.Fatalf("faulted assert %d: Unknown=%v Cause=%q, want Unknown/%s",
				i, ar.Unknown, ar.Cause, CauseInternal)
		}
	}
	for i := 2; i < 4; i++ {
		if ar := res.PerAssert[i]; ar.Unknown {
			t.Fatalf("assert %d degraded (%s) despite faults being isolated to 0 and 1", i, ar.Cause)
		}
	}
	var degradeMsgs []string
	for _, w := range res.Warnings {
		if strings.Contains(w, "degraded") {
			degradeMsgs = append(degradeMsgs, w)
		}
	}
	want := []string{
		"assert_0 degraded: solve stage: panic: injected concurrent fault 0",
		"assert_1 degraded: solve stage: panic: injected concurrent fault 1",
	}
	if !reflect.DeepEqual(degradeMsgs, want) {
		t.Fatalf("degradation warnings = %v, want %v (deterministic order)", degradeMsgs, want)
	}
}

// TestCNFCeilingDegrades trips the clause ceiling: the oversized encoding
// must degrade to Unknown with a CNF-ceiling cause, not OOM or error out.
func TestCNFCeilingDegrades(t *testing.T) {
	res := verify(t, branchyMixed(6), func(o *Options) {
		o.MaxClauses = 8
	})
	ar := res.PerAssert[0]
	if !ar.Unknown || !strings.Contains(ar.Cause, CauseCNFCeiling) {
		t.Fatalf("Unknown=%v Cause=%q, want Unknown with %q", ar.Unknown, ar.Cause, CauseCNFCeiling)
	}
	if causes := res.IncompleteCauses(); len(causes) == 0 {
		t.Fatal("CNF ceiling trip not surfaced in IncompleteCauses")
	}
}

// TestVarCeilingDegrades trips the variable ceiling analogously.
func TestVarCeilingDegrades(t *testing.T) {
	res := verify(t, branchyMixed(6), func(o *Options) {
		o.MaxVars = 2
	})
	ar := res.PerAssert[0]
	if !ar.Unknown || !strings.Contains(ar.Cause, CauseCNFCeiling) {
		t.Fatalf("Unknown=%v Cause=%q, want Unknown with %q", ar.Unknown, ar.Cause, CauseCNFCeiling)
	}
}

// TestConflictBudgetUnknown exhausts the SAT conflict budget during
// enumeration: the assertion degrades to Unknown/conflict budget and the
// partial counterexample set is retained — never a silent "no more
// counterexamples".
func TestConflictBudgetUnknown(t *testing.T) {
	res := verify(t, branchyMixed(6), func(o *Options) {
		o.BlockAllBN = true // full-BN blocking forces search conflicts
		o.Solver = sat.Options{MaxConflicts: 1}
	})
	ar := res.PerAssert[0]
	if !ar.Unknown || ar.Cause != CauseConflictBudget {
		t.Fatalf("Unknown=%v Cause=%q, want Unknown/%s", ar.Unknown, ar.Cause, CauseConflictBudget)
	}
	if len(ar.Counterexamples) == 0 {
		t.Fatal("pre-budget counterexamples were dropped")
	}
}

// TestStatementCeilingIncomplete caps the AI size: the truncated model
// must be flagged so no Safe claim is made over the dropped suffix.
func TestStatementCeilingIncomplete(t *testing.T) {
	var b strings.Builder
	b.WriteString("<?php\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "$x%d = 'lit';\n", i)
	}
	b.WriteString("echo htmlspecialchars($_GET['q']);\n")
	res := verify(t, b.String(), func(o *Options) {
		o.Flow.MaxCmds = 10
	})
	if !res.AI.Truncated {
		t.Fatal("AI not marked Truncated at MaxCmds")
	}
	if !res.Incomplete() {
		t.Fatal("truncated model not marked Incomplete")
	}
	found := false
	for _, c := range res.IncompleteCauses() {
		if c == CauseAITruncated {
			found = true
		}
	}
	if !found {
		t.Fatalf("IncompleteCauses = %v, want %q present", res.IncompleteCauses(), CauseAITruncated)
	}
}

// TestUnresolvedIncludeIncomplete fails the loader on a nested include:
// the missing file is a hole in the model, so the result must be
// Incomplete even though every parsed assertion verifies.
func TestUnresolvedIncludeIncomplete(t *testing.T) {
	loader := func(path string) ([]byte, error) {
		if path == "a.php" {
			return []byte(`<?php include 'b.php'; echo htmlspecialchars($_GET['q']);`), nil
		}
		return nil, fmt.Errorf("injected loader failure for %q", path)
	}
	res := verify(t, `<?php include 'a.php';`, func(o *Options) {
		o.Flow.Loader = loader
	})
	if !res.Safe() {
		t.Fatalf("unexpected counterexamples: %v", cexKeys(res))
	}
	if !res.Incomplete() {
		t.Fatal("unresolved nested include not marked Incomplete")
	}
	found := false
	for _, c := range res.IncompleteCauses() {
		if c == CauseMissingIncludes {
			found = true
		}
	}
	if !found {
		t.Fatalf("IncompleteCauses = %v, want %q present", res.IncompleteCauses(), CauseMissingIncludes)
	}
	if len(res.AI.UnresolvedIncludes) != 1 || res.AI.UnresolvedIncludes[0] != "b.php" {
		t.Fatalf("UnresolvedIncludes = %v, want [b.php]", res.AI.UnresolvedIncludes)
	}
}

// TestSharedSolverExpiredContext covers the shared-solver mode's
// degradation path under an expired context.
func TestSharedSolverExpiredContext(t *testing.T) {
	opts := NewOptions(*buildAI(t, ""))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts.Ctx = ctx
	prog, errs := flow.BuildSource("t.php", []byte(`<?php echo $_GET['x'];`), opts.Flow)
	if prog == nil {
		t.Fatalf("build: %v", errs)
	}
	res, err := VerifyAIShared(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerAssert) != 1 {
		t.Fatalf("asserts = %d, want 1", len(res.PerAssert))
	}
	if ar := res.PerAssert[0]; !ar.Unknown || ar.Cause != CauseDeadline {
		t.Fatalf("Unknown=%v Cause=%q, want Unknown/deadline", ar.Unknown, ar.Cause)
	}
}

// TestStageErrorUnwrap checks the structured error chain produced by
// panic recovery at stage boundaries.
func TestStageErrorUnwrap(t *testing.T) {
	err := guard("parse", func() { panic("boom") })
	se, ok := err.(*StageError)
	if !ok {
		t.Fatalf("guard returned %T, want *StageError", err)
	}
	if se.Stage != "parse" || !strings.Contains(se.Error(), "boom") {
		t.Fatalf("StageError = %v", se)
	}
	if se.Unwrap() == nil {
		t.Fatal("StageError.Unwrap() = nil")
	}
	if err := guard("parse", func() {}); err != nil {
		t.Fatalf("guard of clean fn = %v, want nil", err)
	}
}
