package core

import (
	"context"
	"fmt"

	"webssari/internal/ai"
	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/sat"
)

// This file implements the shared-solver verification mode: one
// incremental CDCL solver holds the whole program's encoding, and each
// assertion is checked by solving under its selector assumption (see
// internal/cnf/shared.go). An extension beyond the paper's per-assertion
// rebuild loop, measured in BenchmarkSharedSolver.

// VerifyAIShared verifies every assertion with a single incremental
// solver: CompileAI followed by SolveShared. It produces the same
// counterexample sets as VerifyAI in its default configuration;
// AssumePriorAsserts is not supported in this mode.
func VerifyAIShared(prog *ai.Program, opts Options) (*Result, error) {
	p, err := CompileAI(prog)
	if err != nil {
		return nil, err
	}
	return SolveShared(opts.context(), p, opts)
}

// SolveShared is the shared-solver back end over a compiled Program.
// Unlike Solve it is inherently sequential — the incremental solver's
// learnt-clause state is serial — but like Solve it never writes into the
// Program, so it can run beside concurrent Solves of the same artifact.
func SolveShared(ctx context.Context, p *Program, opts Options) (*Result, error) {
	if opts.AssumePriorAsserts {
		return nil, fmt.Errorf("core: shared-solver mode does not support AssumePriorAsserts")
	}
	if ctx == nil {
		ctx = opts.context()
	}
	opts.Ctx = ctx
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = DefaultMaxCEX
	}
	sys := p.System
	res := &Result{
		AI:      p.AI,
		Renamed: p.Renamed,
		System:  sys,
		// Copied, not aliased: the Program may be shared across solves.
		Warnings:    append([]string(nil), p.AI.Warnings...),
		ParseErrors: append([]string(nil), p.ParseErrors...),
	}

	encoded := cnf.EncodeAllChecks(sys)
	sopts := opts.Solver
	sopts.Interrupt = interruptFor(ctx, opts.Solver.Interrupt)
	solver := sat.NewWith(sopts)
	loaded := encoded.F.LoadInto(solver)

	for i := range sys.Checks {
		ar := &AssertResult{
			Assert:         sys.Checks[i].Origin,
			EncodedVars:    encoded.F.NumVars,
			EncodedClauses: len(encoded.F.Clauses),
		}
		res.PerAssert = append(res.PerAssert, ar)
		if encoded.TrivialUnsat[i] || !loaded {
			continue
		}
		if err := ctxErr(opts); err != nil {
			ar.Unknown = true
			ar.Cause = CauseDeadline
			continue
		}
		if err := enumerateShared(sys, encoded, solver, i, opts, ar); err != nil {
			return res, err
		}
	}
	return res, nil
}

func ctxErr(opts Options) error { return opts.context().Err() }

func enumerateShared(
	sys *constraint.System,
	encoded *cnf.EncodedAll,
	solver *sat.Solver,
	idx int,
	opts Options,
	ar *AssertResult,
) error {
	target := sys.Checks[idx].Origin
	assumptions := []sat.Lit{encoded.Selectors[idx]}
	seen := make(map[string]bool)
	for {
		verdict := solver.SolveAssuming(assumptions)
		ar.SolverStats = solver.Stats()
		if verdict == sat.Unsat {
			return nil
		}
		if verdict != sat.Sat {
			// Budget exhausted or interrupted: undecided, never "safe".
			ar.Unknown = true
			if ctxErr(opts) != nil {
				ar.Cause = CauseDeadline
			} else {
				ar.Cause = CauseConflictBudget
			}
			return nil
		}
		model := solver.Model()
		branches := encoded.DecodeBranches(idx, model)

		cex := replayTrace(sys.Renamed, target, branches)
		if cex != nil && !seen[cex.Key()] {
			seen[cex.Key()] = true
			ar.Counterexamples = append(ar.Counterexamples, cex)
			if len(ar.Counterexamples) >= opts.MaxCounterexamples {
				ar.Truncated = true
				return nil
			}
		}

		var blocking []sat.Lit
		if opts.BlockAllBN || cex == nil {
			blocking = encoded.BlockingClause(idx, model, nil)
		} else {
			blocking = encoded.BlockingClause(idx, model, cex.Branches)
		}
		if blocking == nil {
			return nil // single trace class exhausted
		}
		if !solver.AddClause(blocking...) {
			return nil
		}
	}
}
