package core

import (
	"context"

	"webssari/internal/ai"
	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/sat"
	"webssari/internal/telemetry"
)

// This file implements the shared-solver verification mode: one
// incremental CDCL solver holds the whole program's encoding, and each
// assertion is checked by solving under its selector assumption (see
// internal/cnf/shared.go). Learnt clauses accumulate across assertions
// on the one instance, and — via Options.LearntBlob / LearntSink —
// across runs.
//
// Soundness of cross-run clause reuse rests on epoch gating. Blocking
// clauses added during counterexample enumeration are NOT implied by
// the program formula (they exclude real models), so clauses learnt
// from them must never leak into the exported set. Every blocking
// clause therefore carries the negation of a per-run epoch literal,
// which is assumed true during enumeration. The epoch variable occurs
// only negatively in the clause database, so (a) it can never be
// propagated at decision level 0, and (b) resolution can never
// eliminate ¬epoch from a derived clause — any learnt clause tainted by
// a blocking clause syntactically mentions the epoch variable. The
// export filter drops exactly those clauses. As a belt-and-braces
// guard, if the epoch variable somehow does end up assigned at the top
// level (where conflict analysis skips literals and the syntactic
// argument no longer applies), the export is abandoned entirely.

// VerifyAIShared verifies every assertion with a single incremental
// solver: CompileAI followed by SolveShared. It produces the same
// counterexample sets as VerifyAI in its default configuration, and —
// unlike earlier revisions — also supports AssumePriorAsserts, realized
// as hold-selector assumptions rather than re-encoded constraints.
func VerifyAIShared(prog *ai.Program, opts Options) (*Result, error) {
	p, err := CompileAI(prog)
	if err != nil {
		return nil, err
	}
	return SolveShared(opts.context(), p, opts)
}

// SolveShared is the shared-solver back end over a compiled Program.
// Unlike Solve it is inherently sequential — the incremental solver's
// learnt-clause state is serial — but like Solve it never writes into the
// Program, so it can run beside concurrent Solves of the same artifact.
//
// AssumePriorAsserts is honored through prior-check hold selectors: the
// shared encoding carries a gated positive encoding of every assertion,
// and checking assertion i assumes the hold selector of every j < i
// alongside i's own negation selector — the paper's C(c,g) ∧
// C(assert_j, g) restriction without mutating the clause database
// between checks.
func SolveShared(ctx context.Context, p *Program, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = opts.context()
	}
	opts.Ctx = ctx
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = DefaultMaxCEX
	}
	sys := p.System
	res := &Result{
		AI:      p.AI,
		Renamed: p.Renamed,
		System:  sys,
		Unit:    p.Unit,
		// Copied, not aliased: the Program may be shared across solves.
		Warnings:    append([]string(nil), p.AI.Warnings...),
		ParseErrors: append([]string(nil), p.ParseErrors...),
	}

	ctx, ssp := telemetry.StartSpan(ctx, "solve_shared", "asserts", len(sys.Checks))
	defer ssp.End()

	encoded := cnf.EncodeAllChecks(sys, opts.cnfOptions())
	sopts := opts.Solver
	sopts.Interrupt = interruptFor(ctx, opts.Solver.Interrupt)
	solver := sat.NewWith(sopts)
	loaded := encoded.F.LoadInto(solver)

	// Warm start: bind to the exact CNF just loaded. Hashing is skipped
	// entirely when neither import nor export is requested.
	var ws *WarmStartStats
	var cnfHash uint64
	if opts.LearntBlob != nil || opts.LearntSink != nil {
		ws = &WarmStartStats{}
		res.WarmStart = ws
		cnfHash = sat.HashCNF(encoded.F)
	}
	if opts.LearntBlob != nil && loaded {
		ws.Attempted = true
		if blobHash, clauses, err := sat.DecodeLearntBlob(opts.LearntBlob); err == nil && blobHash == cnfHash {
			ws.Hit = true
			for _, cl := range clauses {
				if !solver.AddClause(cl...) {
					// Implied clauses cannot make a satisfiable formula
					// unsatisfiable; reaching here means the base formula
					// itself is trivially unsat, which loaded would have
					// caught — but stay defensive.
					loaded = false
					break
				}
				ws.ImportedClauses++
			}
		}
	}

	// The epoch literal gating this run's blocking clauses. Allocated
	// after the base load and the (filtered, epoch-free) import, so its
	// index is deterministic across runs over the same CNF.
	epoch := sat.Lit(solver.NewVar())

	// When the caller seeded prior SAFE verdicts, fingerprint every
	// check once up front, exactly as Solve does.
	var fps []string
	if len(opts.KnownSafeChecks) > 0 {
		fps = p.CheckFingerprints()
	}

	for i := range sys.Checks {
		if fps != nil && opts.KnownSafeChecks[fps[i]] {
			res.PerAssert = append(res.PerAssert, &AssertResult{
				Assert: sys.Checks[i].Origin,
				Reused: true,
			})
			continue
		}
		ar := &AssertResult{
			Assert:         sys.Checks[i].Origin,
			EncodedVars:    encoded.F.NumVars,
			EncodedClauses: len(encoded.F.Clauses),
		}
		res.PerAssert = append(res.PerAssert, ar)
		if encoded.TrivialUnsat[i] || !loaded {
			continue
		}
		if err := ctxErr(opts); err != nil {
			ar.Unknown = true
			ar.Cause = CauseDeadline
			continue
		}
		if err := enumerateShared(sys, encoded, solver, epoch, i, opts, ar); err != nil {
			return res, err
		}
		sortCounterexamples(ar)
	}

	if opts.LearntSink != nil && loaded && !solver.AssignedAtTopLevel(epoch.Var()) {
		epochVar := epoch.Var()
		clauses := solver.ExportLearnts(func(v int) bool { return v == epochVar })
		ws.ExportedClauses = len(clauses)
		opts.LearntSink(sat.EncodeLearntBlob(cnfHash, clauses))
	}
	recordSolveMetrics(ctx, res)
	recordWarmStartMetrics(ctx, ws)
	return res, nil
}

// recordWarmStartMetrics rolls one run's warm-start counters into the
// context's metrics registry.
func recordWarmStartMetrics(ctx context.Context, ws *WarmStartStats) {
	if ws == nil {
		return
	}
	reg := telemetry.From(ctx)
	if reg == nil || reg.Metrics == nil {
		return
	}
	m := reg.Metrics
	if ws.Attempted {
		if ws.Hit {
			m.Counter(telemetry.MetricWarmStartHits).Inc()
		} else {
			m.Counter(telemetry.MetricWarmStartMisses).Inc()
		}
	}
	m.Counter(telemetry.MetricWarmStartImported).Add(int64(ws.ImportedClauses))
	m.Counter(telemetry.MetricWarmStartExported).Add(int64(ws.ExportedClauses))
}

func ctxErr(opts Options) error { return opts.context().Err() }

func enumerateShared(
	sys *constraint.System,
	encoded *cnf.EncodedAll,
	solver *sat.Solver,
	epoch sat.Lit,
	idx int,
	opts Options,
	ar *AssertResult,
) error {
	target := sys.Checks[idx].Origin
	assumptions := append(encoded.PriorAssumptions(idx), epoch)
	seen := make(map[string]bool)
	for {
		verdict := solver.SolveAssuming(assumptions)
		ar.SolverStats = solver.Stats()
		if verdict == sat.Unsat {
			return nil
		}
		if verdict != sat.Sat {
			// Budget exhausted or interrupted: undecided, never "safe".
			ar.Unknown = true
			if ctxErr(opts) != nil {
				ar.Cause = CauseDeadline
			} else {
				ar.Cause = CauseConflictBudget
			}
			return nil
		}
		model := solver.Model()
		branches := encoded.DecodeBranches(idx, model)

		cex := replayTrace(sys.Renamed, target, branches)
		if cex != nil && !seen[cex.Key()] {
			seen[cex.Key()] = true
			ar.Counterexamples = append(ar.Counterexamples, cex)
			if len(ar.Counterexamples) >= opts.MaxCounterexamples {
				ar.Truncated = true
				return nil
			}
		}

		var blocking []sat.Lit
		if opts.BlockAllBN || cex == nil {
			blocking = encoded.BlockingClause(idx, model, nil)
		} else {
			blocking = encoded.BlockingClause(idx, model, cex.Branches)
		}
		if blocking == nil {
			return nil // single trace class exhausted
		}
		// Epoch gating: the blocking clause is not implied by the program
		// formula, so it only exists inside this run's epoch (see the
		// file comment on export soundness).
		blocking = append(blocking, epoch.Not())
		if !solver.AddClause(blocking...) {
			return nil
		}
	}
}
