package core

// Portfolio mode: race K solver configurations (distinct restart,
// decision, and phase heuristics — sat.PortfolioPreset) per hard
// assertion, first canonical answer wins.
//
// Determinism argument. A complete, untruncated enumeration discovers
// the full set of violating trace classes, which is a property of the
// program alone — heuristics only permute discovery order, and
// sortCounterexamples erases that. So every lane that finishes
// completely produces the same AssertResult content, and taking
// whichever complete lane reports first is deterministic in content at
// any parallelism. A truncated or Unknown lane result is NOT canonical
// (which prefix of the enumeration it saw depends on the heuristics),
// so such lanes never win; when no lane produces a canonical answer,
// the race deterministically falls back to lane 0 — the caller's own
// configuration run to its own completion — which is exactly what the
// per-assertion mode would have reported.
//
// Pool discipline: lane 0 always runs inline on the caller's slot;
// extra lanes take shared-pool slots with TryAcquire only (never
// blocking), or plain goroutines when no pool is configured, so racing
// composes with the file-level and assertion-level fan-outs without
// circular waits.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"webssari/internal/cnf"
	"webssari/internal/constraint"
	"webssari/internal/sat"
	"webssari/internal/telemetry"
)

// portfolioProbeConflicts is the conflict budget of the cheap probe run
// that separates easy assertions (decided immediately, no race) from
// hard ones (escalated to the full-width race). Probe outcomes are
// deterministic: the solver's search is a pure function of its options,
// so "decided within the probe budget" is a property of the instance.
// A variable (not a const) only so tests can force escalation on small
// instances; production code never writes it.
var portfolioProbeConflicts uint64 = 2000

// portfolioWidth resolves the effective lane count.
func (o *Options) portfolioWidth() int {
	w := o.PortfolioWidth
	if w <= 0 {
		w = DefaultPortfolioWidth
	}
	if w > sat.PortfolioWidthMax {
		w = sat.PortfolioWidthMax
	}
	return w
}

// collectPortfolioStats folds the race outcomes stamped on the results
// (AssertResult.racedLane) into a PortfolioStats and emits the
// telemetry counters. Runs on the single-threaded assembly path.
func collectPortfolioStats(ctx context.Context, results []*AssertResult) *PortfolioStats {
	ps := &PortfolioStats{WinsByLane: make(map[int]int)}
	for _, ar := range results {
		if ar != nil && ar.racedLane != nil {
			ps.Races++
			ps.WinsByLane[*ar.racedLane]++
		}
	}
	if reg := telemetry.From(ctx); reg != nil && reg.Metrics != nil && ps.Races > 0 {
		reg.Metrics.Counter(telemetry.MetricPortfolioRaces).Add(int64(ps.Races))
		for lane, n := range ps.WinsByLane {
			reg.Metrics.Counter(telemetry.Name(telemetry.MetricPortfolioWins,
				"lane", fmt.Sprintf("%d", lane))).Add(int64(n))
		}
	}
	return ps
}

// checkAssertionPortfolio checks one assertion in portfolio mode:
// encode once, probe cheaply, and race the lanes only when the probe
// could not decide the instance.
func checkAssertionPortfolio(ctx context.Context, sys *constraint.System, idx int, opts Options) (ar *AssertResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			ar, err = nil, &StageError{Stage: "solve", Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if opts.Hooks.BeforeAssert != nil {
		opts.Hooks.BeforeAssert(idx)
	}
	check := sys.Checks[idx]
	ar = &AssertResult{Assert: check.Origin}

	ctx, asp := telemetry.StartRootSpan(ctx, "assert", "index", idx, "mode", "portfolio")
	defer asp.End()

	encStart := time.Now()
	_, esp := telemetry.StartSpan(ctx, "encode")
	encoded, err := cnf.EncodeCheck(sys, idx, opts.cnfOptions())
	esp.End()
	ar.EncodeTime = time.Since(encStart)
	observeStage(ctx, "encode", ar.EncodeTime.Nanoseconds())
	var lim *cnf.LimitError
	if errors.As(err, &lim) {
		ar.Unknown = true
		ar.Cause = fmt.Sprintf("%s (%s)", CauseCNFCeiling, lim.Error())
		return ar, nil
	}
	if err != nil {
		return nil, err
	}
	ar.EncodedVars = encoded.F.NumVars
	ar.EncodedClauses = len(encoded.F.Clauses)
	if encoded.Trivial == cnf.TrivialUnsat {
		return ar, nil
	}

	// Probe: the caller's own configuration under a small conflict
	// budget. Most assertions of real corpora decide here, and a decided
	// probe is bit-identical to what the unbounded run would return
	// (the budget only cuts off searches it never got to finish).
	probeOpts := opts.Solver
	if probeOpts.MaxConflicts == 0 || probeOpts.MaxConflicts > portfolioProbeConflicts {
		probeOpts.MaxConflicts = portfolioProbeConflicts
	}
	probe := &AssertResult{Assert: check.Origin, EncodedVars: ar.EncodedVars, EncodedClauses: ar.EncodedClauses, EncodeTime: ar.EncodeTime}
	enumerateAssert(ctx, sys, idx, encoded, opts, probeOpts, probe)
	if !(probe.Unknown && probe.Cause == CauseConflictBudget) {
		return probe, nil
	}

	width := opts.portfolioWidth()
	if width <= 1 {
		return probe, nil
	}

	// Race. Lane i runs the full enumeration under preset i; a canceled
	// lane observes its stop flag through the solver interrupt.
	type laneAnswer struct {
		lane int
		res  *AssertResult
	}
	stops := make([]atomic.Bool, width)
	answers := make(chan laneAnswer, width)
	runLane := func(lane int) {
		lar := &AssertResult{Assert: check.Origin, EncodedVars: ar.EncodedVars, EncodedClauses: ar.EncodedClauses, EncodeTime: ar.EncodeTime}
		sopts := sat.PortfolioPreset(lane, opts.Solver)
		prev := sopts.Interrupt
		st := &stops[lane]
		sopts.Interrupt = func() bool {
			return st.Load() || (prev != nil && prev())
		}
		enumerateAssert(ctx, sys, idx, encoded, opts, sopts, lar)
		answers <- laneAnswer{lane: lane, res: lar}
	}

	// Extra lanes: pool slots when a shared pool exists (TryAcquire
	// only), plain goroutines otherwise. Lanes that get no slot simply
	// do not run — the race degrades toward plain lane 0.
	launched := 1
	for lane := 1; lane < width; lane++ {
		if opts.Workers != nil {
			if !opts.Workers.TryAcquire() {
				break
			}
			go func(lane int) {
				defer opts.Workers.Release()
				runLane(lane)
			}(lane)
		} else {
			go runLane(lane)
		}
		launched++
	}
	runLane(0)

	var lane0 *AssertResult
	var winner *AssertResult
	winnerLane := -1
	for i := 0; i < launched; i++ {
		a := <-answers
		if a.lane == 0 {
			lane0 = a.res
		}
		if winner == nil && !a.res.Unknown && !a.res.Truncated {
			winner = a.res
			winnerLane = a.lane
			// First canonical answer: stop every other lane. (Slower
			// canonical lanes would have produced identical content, so
			// which one "wins" never shows in the report.)
			for j := range stops {
				stops[j].Store(true)
			}
		}
	}

	if winner == nil {
		// No lane decided the instance: fall back to lane 0, the
		// caller's own configuration run to its own completion, which is
		// what per-assertion mode reports. Lane 0 can only be Unknown
		// here via its budget, its deadline, or a late cancellation; a
		// cancellation-tainted Unknown is impossible because stops are
		// only set when a winner exists.
		winner = lane0
	}
	winner.racedLane = &winnerLane
	return winner, nil
}
