package core

// Check fingerprints give every assertion a position-independent identity
// derived from its sliced constraint system: the formula B_i is fully
// determined by the assertion's bound, guard, argument expressions, and
// equation prefix (plus the prefix's branch variables), so hashing those
// — via their canonical, source-position-free String renderings — yields
// a key that is stable under edits that do not touch the assertion's
// constraint slice. The incremental planner persists the fingerprints of
// assertions proved safe; a later run passes them back through
// Options.KnownSafeChecks and Solve skips the SAT search for any
// assertion whose fingerprint still matches.
//
// Soundness: everything that decides B_i's satisfiability is covered.
// Renamed expressions print as "name@idx" (no positions), guards print
// over branch IDs, constants print lattice element names and labels, and
// every component is length-prefixed so distinct structures cannot
// collide by concatenation. Lattice and prelude changes are excluded on
// purpose — the incremental store already discards its graph when the
// configuration fingerprint changes, so a fingerprint is only ever
// compared under an identical prelude.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"webssari/internal/constraint"
)

// checkFingerprintLen is the length of the hex digest kept per check: 24
// hex chars = 96 bits, far beyond collision range for per-file assertion
// counts.
const checkFingerprintLen = 24

func fpWriteStr(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func fpWriteInt(h hash.Hash, v int) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(int64(v)))
	h.Write(n[:])
}

// CheckFingerprint hashes the idx-th assertion's sliced constraint
// system into its reuse key.
func CheckFingerprint(sys *constraint.System, idx int) string {
	c := sys.Checks[idx]
	h := sha256.New()
	fpWriteStr(h, "webssari-check-v1")
	fpWriteInt(h, int(c.Origin.Bound))
	fpWriteStr(h, c.Guard.String())
	fpWriteInt(h, len(c.Origin.Args))
	for _, a := range c.Origin.Args {
		fpWriteInt(h, a.ArgPos)
		fpWriteStr(h, a.Expr.String())
	}
	fpWriteInt(h, c.Prefix)
	for _, eq := range sys.Equations[:c.Prefix] {
		fpWriteStr(h, eq.String())
	}
	ids := sys.PrefixBranches(c)
	fpWriteInt(h, len(ids))
	for _, id := range ids {
		fpWriteInt(h, id)
	}
	return hex.EncodeToString(h.Sum(nil))[:checkFingerprintLen]
}

// fingerprintsOf computes the fingerprint of every check in order.
func fingerprintsOf(sys *constraint.System) []string {
	out := make([]string, len(sys.Checks))
	for i := range sys.Checks {
		out[i] = CheckFingerprint(sys, i)
	}
	return out
}

// CheckFingerprints returns the fingerprint of every assertion in the
// Program, in check order. The slice is computed once per Program —
// cached Programs are solved concurrently, hence the sync.Once — and
// must not be mutated.
func (p *Program) CheckFingerprints() []string {
	p.fpOnce.Do(func() { p.fps = fingerprintsOf(p.System) })
	return p.fps
}
