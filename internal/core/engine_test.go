package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/rename"
)

func verify(t *testing.T, src string, mutate ...func(*Options)) *Result {
	t.Helper()
	opts := NewOptions(flow.Options{Prelude: prelude.Default()})
	for _, fn := range mutate {
		fn(&opts)
	}
	res, errs := VerifySource("test.php", []byte(src), opts)
	for _, err := range errs {
		t.Fatalf("verify: %v", err)
	}
	return res
}

func cexKeys(res *Result) []string {
	var keys []string
	for _, c := range res.Counterexamples() {
		keys = append(keys, c.Key())
	}
	sort.Strings(keys)
	return keys
}

func oracleKeys(res *Result) []string {
	var keys []string
	for _, v := range res.AI.ExhaustiveViolations() {
		keys = append(keys, v.Key())
	}
	sort.Strings(keys)
	return keys
}

func TestSafeProgramUnsat(t *testing.T) {
	res := verify(t, `<?php $x = 'hello'; echo $x; echo htmlspecialchars($_GET['y']);`)
	if !res.Safe() {
		t.Fatalf("safe program reported unsafe: %+v", cexKeys(res))
	}
	if len(res.PerAssert) != 2 {
		t.Fatalf("asserts = %d, want 2", len(res.PerAssert))
	}
}

func TestDirectViolation(t *testing.T) {
	res := verify(t, `<?php echo $_GET['x'];`)
	cexs := res.Counterexamples()
	if len(cexs) != 1 {
		t.Fatalf("counterexamples = %d, want 1", len(cexs))
	}
	cex := cexs[0]
	if len(cex.Violating) != 1 || cex.Violating[0].Name != "_GET" {
		t.Fatalf("violating vars = %v, want [_GET@0]", cex.Violating)
	}
	if len(cex.Branches) != 0 {
		t.Fatalf("branch-free program should yield empty branch map")
	}
}

func TestTraceStepsRecordFlow(t *testing.T) {
	res := verify(t, `<?php
$sid = $_GET['sid'];
$iq = "SELECT * FROM groups WHERE sid=$sid";
mysql_query($iq);`)
	cexs := res.Counterexamples()
	if len(cexs) != 1 {
		t.Fatalf("counterexamples = %d, want 1", len(cexs))
	}
	cex := cexs[0]
	if len(cex.Steps) != 2 {
		t.Fatalf("steps = %d, want 2 (sid, iq)", len(cex.Steps))
	}
	if cex.Steps[0].Set.V.Name != "sid" || cex.Steps[1].Set.V.Name != "iq" {
		t.Fatalf("step order wrong: %v, %v", cex.Steps[0].Set.V, cex.Steps[1].Set.V)
	}
	for _, s := range cex.Steps {
		if s.Value != res.AI.Lat.Top() {
			t.Errorf("step %v should be tainted", s.Set.V)
		}
	}
	if len(cex.Violating) != 1 || cex.Violating[0] != (rename.SSAVar{Name: "iq", Idx: 1}) {
		t.Fatalf("violating = %v, want [iq@1]", cex.Violating)
	}
}

func TestBranchCounterexamples(t *testing.T) {
	res := verify(t, `<?php
if ($c) { $x = $_GET['a']; } else { $x = $_POST['b']; }
echo $x;`)
	cexs := res.Counterexamples()
	if len(cexs) != 2 {
		t.Fatalf("counterexamples = %d, want 2 (one per branch)", len(cexs))
	}
}

func TestAgainstExhaustiveOracle(t *testing.T) {
	sources := []string{
		`<?php echo $_GET['x'];`,
		`<?php $x = 'safe'; echo $x;`,
		`<?php if ($a) { $x = $_GET['q']; } echo $x;`,
		`<?php if ($a) { $x = $_GET['q']; } else { $x = 'ok'; } echo $x; mysql_query($x);`,
		`<?php
if ($a) { if ($b) { $x = $_GET['q']; } }
echo $x;`,
		`<?php
$x = $_COOKIE['c'];
if ($a) { $x = htmlspecialchars($x); }
echo $x;`,
		`<?php
while ($r = mysql_fetch_array($q)) { echo $r; }
echo 'done';`,
		`<?php
$x = $_GET['a'];
if ($stop) { exit; }
echo $x;`,
		`<?php
switch ($m) { case 1: $v = $_GET['x']; break; case 2: $v = 'ok'; break; default: $v = $_POST['y']; }
mysql_query($v);`,
		`<?php
function f($a) { return $a . '!'; }
echo f($_GET['x']);
echo f('safe');`,
	}
	for i, src := range sources {
		res := verify(t, src, func(o *Options) { o.AssumePriorAsserts = false })
		got := cexKeys(res)
		want := oracleKeys(res)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("source %d:\nBMC:    %v\noracle: %v\nAI:\n%s", i, got, want, res.AI)
		}
	}
}

// randomProgram generates a random branchy taint program for the
// property-style BMC-vs-oracle comparison.
func randomProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<?php\n")
	vars := []string{"a", "b", "c", "d"}
	sources := []string{"$_GET['x']", "$_POST['y']", "'safe'", "'const'", "$_COOKIE['z']"}
	depth := 0
	stmts := 4 + r.Intn(10)
	for i := 0; i < stmts; i++ {
		switch r.Intn(7) {
		case 0, 1:
			fmt.Fprintf(&b, "$%s = %s;\n", vars[r.Intn(len(vars))], sources[r.Intn(len(sources))])
		case 2:
			fmt.Fprintf(&b, "$%s = $%s . $%s;\n",
				vars[r.Intn(len(vars))], vars[r.Intn(len(vars))], vars[r.Intn(len(vars))])
		case 3:
			fmt.Fprintf(&b, "$%s = htmlspecialchars($%s);\n",
				vars[r.Intn(len(vars))], vars[r.Intn(len(vars))])
		case 4:
			fmt.Fprintf(&b, "echo $%s;\n", vars[r.Intn(len(vars))])
		case 5:
			if depth < 3 {
				fmt.Fprintf(&b, "if ($cond%d) {\n", i)
				depth++
			}
		case 6:
			if depth > 0 {
				b.WriteString("}\n")
				depth--
			}
		}
	}
	for depth > 0 {
		b.WriteString("}\n")
		depth--
	}
	b.WriteString("echo $a;\n")
	return b.String()
}

func TestRandomProgramsAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 120; i++ {
		src := randomProgram(r)
		res := verify(t, src, func(o *Options) { o.AssumePriorAsserts = false })
		if res.AI.Branches > 12 {
			continue // keep the oracle cheap
		}
		got := cexKeys(res)
		want := oracleKeys(res)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("iter %d mismatch:\nsrc:\n%s\nBMC:    %v\noracle: %v", i, src, got, want)
		}
	}
}

func TestAssumePriorAssertsSuppressesDownstream(t *testing.T) {
	// Both sinks see the same tainted variable. With the paper's
	// incremental restriction, traces violating assert 0 are excluded when
	// checking assert 1, so assert 1 reports nothing new on those paths.
	src := `<?php
$x = $_GET['q'];
echo $x;
echo $x;`
	with := verify(t, src, func(o *Options) { o.AssumePriorAsserts = true })
	without := verify(t, src, func(o *Options) { o.AssumePriorAsserts = false })
	if n := len(without.Counterexamples()); n != 2 {
		t.Fatalf("without restriction: %d, want 2", n)
	}
	if n := len(with.Counterexamples()); n != 1 {
		t.Fatalf("with restriction: %d, want 1 (duplicate propagation suppressed)", n)
	}
}

func TestBlockAllBNStillTerminatesAndFindsSameTraces(t *testing.T) {
	src := `<?php
if ($irrelevant) { $y = 1; }
if ($a) { $x = $_GET['q']; }
echo $x;`
	def := verify(t, src)
	all := verify(t, src, func(o *Options) { o.BlockAllBN = true })
	gotDef := cexKeys(def)
	gotAll := cexKeys(all)
	if strings.Join(gotDef, "\n") != strings.Join(gotAll, "\n") {
		t.Fatalf("modes disagree on distinct traces:\ndefault: %v\nallBN:   %v", gotDef, gotAll)
	}
}

func TestMaxCounterexamplesTruncates(t *testing.T) {
	// 2^4 = 16 violating traces; cap at 3.
	src := `<?php
if ($a) { $q = 1; }
if ($b) { $q = 1; }
if ($c) { $q = 1; }
if ($d) { $q = 1; }
echo $_GET['x'];`
	res := verify(t, src, func(o *Options) { o.MaxCounterexamples = 3 })
	ar := res.PerAssert[0]
	if len(ar.Counterexamples) != 3 || !ar.Truncated {
		t.Fatalf("got %d (truncated=%v), want 3 truncated", len(ar.Counterexamples), ar.Truncated)
	}
}

func TestEncodingSizesReported(t *testing.T) {
	res := verify(t, `<?php $x = $_GET['a']; if ($c) { $x = 'ok'; } echo $x;`)
	ar := res.PerAssert[0]
	if ar.EncodedVars == 0 || ar.EncodedClauses == 0 {
		t.Fatalf("encoding sizes missing: %+v", ar)
	}
}

func TestFigure6EndToEnd(t *testing.T) {
	res := verify(t, `<?php
if ($Nick) {
    $tmp = $_GET["nick"];
    echo(htmlspecialchars($tmp));
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo($tmp);
}`)
	if !res.Safe() {
		t.Fatalf("Figure 6 program is safe; got %v", cexKeys(res))
	}
}

func TestFigure6VulnerableVariant(t *testing.T) {
	// Remove the sanitizer: the then-branch becomes a genuine XSS.
	res := verify(t, `<?php
if ($Nick) {
    $tmp = $_GET["nick"];
    echo($tmp);
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo($tmp);
}`)
	cexs := res.Counterexamples()
	if len(cexs) != 1 {
		t.Fatalf("counterexamples = %d, want 1", len(cexs))
	}
	if !cexs[0].Branches[0] {
		t.Fatalf("violating trace must take the Nick branch")
	}
}

func TestMultiArgEchoViolatingVariables(t *testing.T) {
	res := verify(t, `<?php
$a = $_GET['a'];
$b = 'safe';
$c = $_POST['c'];
echo $a, $b, $c;`)
	cexs := res.Counterexamples()
	if len(cexs) != 1 {
		t.Fatalf("counterexamples = %d, want 1", len(cexs))
	}
	cex := cexs[0]
	if len(cex.FailingArgs) != 2 {
		t.Fatalf("failing args = %v, want 2", cex.FailingArgs)
	}
	names := map[string]bool{}
	for _, v := range cex.Violating {
		names[v.Name] = true
	}
	if !names["a"] || !names["c"] || names["b"] {
		t.Fatalf("violating = %v, want {a, c}", cex.Violating)
	}
}

func TestJoinOnlyPartBlamed(t *testing.T) {
	// Only the tainted part of a concatenation is a violating variable.
	res := verify(t, `<?php
$bad = $_GET['x'];
$good = 'id=';
mysql_query($good . $bad);`)
	cexs := res.Counterexamples()
	if len(cexs) != 1 {
		t.Fatalf("counterexamples = %d, want 1", len(cexs))
	}
	viol := cexs[0].Violating
	if len(viol) != 1 || viol[0].Name != "bad" {
		t.Fatalf("violating = %v, want [bad@1]", viol)
	}
}

func TestStopMakesDownstreamUnreachable(t *testing.T) {
	res := verify(t, `<?php
$x = $_GET['a'];
exit;
echo $x;`)
	if !res.Safe() {
		t.Fatalf("assertion after unconditional stop must be unreachable")
	}
	if res.PerAssert[0].EncodedVars != 0 && len(res.PerAssert[0].Counterexamples) > 0 {
		t.Fatalf("unexpected counterexamples")
	}
}

func TestConditionalStopGuard(t *testing.T) {
	res := verify(t, `<?php
$x = $_GET['a'];
if ($ok) { exit; }
echo $x;`, func(o *Options) { o.AssumePriorAsserts = false })
	got := cexKeys(res)
	want := oracleKeys(res)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("stop-guard mismatch:\nBMC:    %v\noracle: %v", got, want)
	}
	cexs := res.Counterexamples()
	if len(cexs) != 1 || cexs[0].Branches[0] {
		t.Fatalf("violating trace must avoid the exit branch: %+v", cexs)
	}
}

func TestSolverStatsSurface(t *testing.T) {
	res := verify(t, `<?php
if ($a) { $x = $_GET['1']; } else { $x = $_GET['2']; }
if ($b) { $x = htmlspecialchars($x); }
echo $x;`)
	ar := res.PerAssert[0]
	if len(ar.Counterexamples) == 0 {
		t.Fatalf("expected counterexamples")
	}
}
