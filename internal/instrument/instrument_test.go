package instrument_test

import (
	"strings"
	"testing"

	"webssari/internal/instrument"
	"webssari/internal/telemetry/patch"
)

// TestShimForwards pins the deprecated façade to the moved
// implementation: same default routine, same Patcher behaviour, same
// runtime-guard text.
func TestShimForwards(t *testing.T) {
	if instrument.DefaultRoutine != patch.DefaultRoutine {
		t.Fatalf("DefaultRoutine = %q, want %q", instrument.DefaultRoutine, patch.DefaultRoutine)
	}
	var p *instrument.Patcher = instrument.New("")
	if got := p.Apply("a.php", []byte("<?php echo $x; ?>")); string(got) != "<?php echo $x; ?>" {
		t.Fatalf("Apply with no scheduled patches rewrote the source: %q", got)
	}
	if got, want := instrument.RuntimeGuardPHP(""), patch.RuntimeGuardPHP(""); got != want {
		t.Fatalf("RuntimeGuardPHP diverged from patch package")
	}
	if !strings.Contains(instrument.RuntimeGuardPHP("guard"), "function guard(") {
		t.Fatal("RuntimeGuardPHP did not define the requested routine")
	}
}
