// Package instrument is a deprecated façade over
// webssari/internal/telemetry/patch, kept so existing imports keep
// compiling. The implementation moved when the module gained a unified
// observability layer: "instrumentation" now means the metrics/tracing
// of internal/telemetry, while the PHP source patching that used to live
// here is the telemetry tree's source-instrumentation half.
//
// Deprecated: import webssari/internal/telemetry/patch instead.
package instrument

import (
	"webssari/internal/fixing"
	"webssari/internal/telemetry/patch"
)

// DefaultRoutine is the runtime guard wrapped around patched expressions.
//
// Deprecated: use patch.DefaultRoutine.
const DefaultRoutine = patch.DefaultRoutine

// Patcher accumulates fix points over (possibly) many files and applies
// them to source texts.
//
// Deprecated: use patch.Patcher.
type Patcher = patch.Patcher

// New returns a Patcher wrapping patched spans in the given routine.
//
// Deprecated: use patch.New.
func New(routine string) *Patcher { return patch.New(routine) }

// PatchSource patches a single source text with the given fix points and
// routine.
//
// Deprecated: use patch.PatchSource.
func PatchSource(file string, src []byte, fixes []*fixing.FixPoint, routine string) ([]byte, []error) {
	return patch.PatchSource(file, src, fixes, routine)
}

// RuntimeGuardPHP returns a PHP definition of the default runtime guard.
//
// Deprecated: use patch.RuntimeGuardPHP.
func RuntimeGuardPHP(routine string) string { return patch.RuntimeGuardPHP(routine) }
