// Package store is a crash-safe, content-addressed on-disk result store:
// the second cache tier behind the engine's in-memory compile cache. The
// first tier memoizes compiled Programs within one process; this tier
// persists finished verification Reports across process restarts, keyed
// by a content fingerprint (source bytes + prelude + model-shaping
// options), so a service re-verifying an unchanged file answers from
// disk without compiling or solving anything.
//
// Durability discipline:
//
//   - Writes are atomic: a blob is written to a temporary file in the
//     store root and renamed into place, so a reader never observes a
//     half-written entry and a crash mid-Put leaves at most a stray temp
//     file (swept on Open).
//   - Every blob carries a fixed header — magic, schema version, payload
//     length, SHA-256 of the payload — verified on every read. A
//     truncated, corrupted, or foreign file degrades to a miss (and is
//     deleted); it is never an error and never a wrong answer.
//   - A schema-version bump invalidates every existing entry the same
//     way: old blobs read as misses and are garbage collected.
//   - The store is bounded by bytes, not entries: when Put pushes the
//     total past MaxBytes, least-recently-used blobs (by access time —
//     Get touches the file) are evicted until the total fits again.
//
// The store is safe for concurrent use by any number of goroutines in
// one process. Cross-process sharing of a root directory is tolerated —
// atomic renames keep blobs internally consistent — but the byte
// accounting is per-process, so dedicate one root per daemon.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webssari/internal/telemetry"
)

// SchemaVersion is the on-disk blob format version. Bumping it
// invalidates every previously written entry: old blobs read as misses
// and are removed on contact or by GC.
const SchemaVersion = 1

// DefaultMaxBytes bounds the store when Options.MaxBytes is zero:
// 256 MiB, far above the paper's whole corpus, present only so an
// unattended daemon cannot grow a disk without bound.
const DefaultMaxBytes = 256 << 20

// blob header: magic (4) + schema (4, LE) + payload length (8, LE) +
// SHA-256 of payload (32).
var blobMagic = [4]byte{'W', 'S', 'S', 'R'}

const headerSize = 4 + 4 + 8 + sha256.Size

// Backend is the interface the engine's result-store plumbing runs
// against: the content-addressed Get/Put/Invalidate surface of a Store,
// without tying callers to the on-disk implementation. *Store is the
// canonical local backend; a cluster can substitute a shared or remote
// backend (e.g. internal/cluster.RemoteStore) so any worker can serve
// any cached verdict. Implementations must be safe for concurrent use
// and must degrade, never error, on damaged or unreachable storage:
// Get answers false, Put's error is advisory, Invalidate is best-effort.
type Backend interface {
	// Get returns the payload stored under key; false on any miss.
	Get(key string) ([]byte, bool)
	// Put stores payload under key.
	Put(key string, payload []byte) error
	// Invalidate removes an entry whose payload was intact but failed
	// the caller's revalidation.
	Invalidate(key string)
}

// Options configures Open.
type Options struct {
	// MaxBytes bounds the total size of retained blobs (headers
	// included). Zero means DefaultMaxBytes; negative disables the bound.
	MaxBytes int64
}

// Stats is a snapshot of the store's cumulative counters.
type Stats struct {
	// Hits counts Gets served a valid payload; Misses counts Gets that
	// found nothing usable (absent, corrupt, or old-schema entries all
	// count here — a degraded read is a miss, never an error).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts successful writes.
	Puts int64 `json:"puts"`
	// Corrupt counts blobs dropped for failing header or checksum
	// verification (a subset of Misses).
	Corrupt int64 `json:"corrupt"`
	// Stale counts entries invalidated by the caller (Invalidate): the
	// blob itself was intact but its revalidation — e.g. an include-hash
	// snapshot — failed.
	Stale int64 `json:"stale"`
	// GCEvictions counts blobs removed by the LRU-by-size collector;
	// GCBytes sums their sizes.
	GCEvictions int64 `json:"gc_evictions"`
	GCBytes     int64 `json:"gc_bytes"`
	// Entries and Bytes describe current occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Store is a content-addressed blob store rooted at one directory.
type Store struct {
	root     string
	maxBytes int64

	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
	corrupt atomic.Int64
	stale   atomic.Int64

	// mu guards the size index (entries/bytes) and GC.
	mu          sync.Mutex
	sizes       map[string]int64 // key → blob size on disk
	bytes       int64
	gcEvictions int64
	gcBytes     int64

	// Live registry mirrors; nil (no-op) unless Instrument was called.
	cHits    *telemetry.CounterMetric
	cMisses  *telemetry.CounterMetric
	cPuts    *telemetry.CounterMetric
	cCorrupt *telemetry.CounterMetric
	cStale   *telemetry.CounterMetric
	cGCEvict *telemetry.CounterMetric
	gEntries *telemetry.GaugeMetric
	gBytes   *telemetry.GaugeMetric
}

// Open opens (creating if needed) a store rooted at dir, sweeps
// leftover temp files from crashed writers, and indexes the existing
// blobs. Blobs that fail the cheapest validity check (size smaller than
// a header) are removed during indexing; deeper corruption is detected
// lazily on Get.
func Open(dir string, opts Options) (*Store, error) {
	objDir := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		root:     dir,
		maxBytes: opts.MaxBytes,
		sizes:    make(map[string]int64),
	}
	if s.maxBytes == 0 {
		s.maxBytes = DefaultMaxBytes
	}
	err := filepath.WalkDir(objDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), tmpPrefix) {
			// A writer crashed between create and rename; the entry was
			// never visible, so removing the temp loses nothing.
			_ = os.Remove(path)
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if info.Size() < headerSize {
			_ = os.Remove(path)
			s.corrupt.Add(1)
			return nil
		}
		s.sizes[d.Name()] = info.Size()
		s.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: indexing %s: %w", dir, err)
	}
	return s, nil
}

// Instrument mirrors the store's counters and occupancy into reg so a
// daemon's /metrics page shows tier-2 effectiveness live. Call before
// handing the store to workers; a nil registry is a no-op.
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.cHits = reg.Counter(telemetry.MetricStoreHits)
	s.cMisses = reg.Counter(telemetry.MetricStoreMisses)
	s.cPuts = reg.Counter(telemetry.MetricStorePuts)
	s.cCorrupt = reg.Counter(telemetry.MetricStoreCorrupt)
	s.cStale = reg.Counter(telemetry.MetricStoreStale)
	s.cGCEvict = reg.Counter(telemetry.MetricStoreGCEvictions)
	s.gEntries = reg.Gauge(telemetry.MetricStoreEntries)
	s.gBytes = reg.Gauge(telemetry.MetricStoreBytes)
	s.mu.Lock()
	s.gEntries.Set(int64(len(s.sizes)))
	s.gBytes.Set(s.bytes)
	s.mu.Unlock()
}

// Key derives a content address from an ordered list of parts: a
// SHA-256 over the length-prefixed concatenation, hex encoded. Callers
// build keys from everything that shapes the stored result (source
// bytes, prelude fingerprint, option summary) so distinct inputs can
// never collide on an address.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

const tmpPrefix = ".tmp-"

// path maps a key to its blob path, sharded by the first byte to keep
// directory fan-out bounded on large stores.
func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.root, "objects", shard, key)
}

// Get returns the payload stored under key. The second result is false
// on any miss — absent, truncated, corrupted, or written under a
// different schema version — and a bad blob is deleted so it cannot
// fail again. Get never returns an error: a store that degrades is a
// cold cache, not a broken verifier. A hit refreshes the blob's access
// time, which is the LRU recency GC evicts by.
func (s *Store) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		s.cMisses.Inc()
		return nil, false
	}
	payload, ok := decodeBlob(data)
	if !ok {
		s.corrupt.Add(1)
		s.cCorrupt.Inc()
		s.drop(key)
		s.misses.Add(1)
		s.cMisses.Inc()
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now) // best-effort LRU touch
	s.hits.Add(1)
	s.cHits.Inc()
	return payload, true
}

// Put stores payload under key, atomically: the blob becomes visible
// only when complete. When the write pushes the store past its byte
// budget, least-recently-used entries are evicted until it fits.
func (s *Store) Put(key string, payload []byte) error {
	blob := encodeBlob(SchemaVersion, payload)
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.puts.Add(1)
	s.cPuts.Inc()

	s.mu.Lock()
	if old, ok := s.sizes[key]; ok {
		s.bytes -= old
	}
	s.sizes[key] = int64(len(blob))
	s.bytes += int64(len(blob))
	s.gcLocked()
	s.gEntries.Set(int64(len(s.sizes)))
	s.gBytes.Set(s.bytes)
	s.mu.Unlock()
	return nil
}

// Invalidate removes an entry whose blob was intact but whose content
// failed the caller's revalidation (a stale include snapshot). It is
// counted separately from corruption.
func (s *Store) Invalidate(key string) {
	s.stale.Add(1)
	s.cStale.Inc()
	s.drop(key)
}

// drop removes a blob file and its index entry.
func (s *Store) drop(key string) {
	_ = os.Remove(s.path(key))
	s.mu.Lock()
	if old, ok := s.sizes[key]; ok {
		s.bytes -= old
		delete(s.sizes, key)
	}
	s.gEntries.Set(int64(len(s.sizes)))
	s.gBytes.Set(s.bytes)
	s.mu.Unlock()
}

// GC evicts least-recently-used blobs until the store fits its byte
// budget, returning how many entries were removed and how many bytes
// were freed. Put runs the same collection automatically; GC exists for
// callers that shrink the budget of a live store or want a scheduled
// sweep.
func (s *Store) GC() (evicted int, freed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e0, b0 := s.gcEvictions, s.gcBytes
	s.gcLocked()
	s.gEntries.Set(int64(len(s.sizes)))
	s.gBytes.Set(s.bytes)
	return int(s.gcEvictions - e0), s.gcBytes - b0
}

// gcLocked is the LRU-by-size collector; the caller holds s.mu. Recency
// is the blob file's modification time, which Get refreshes.
func (s *Store) gcLocked() {
	if s.maxBytes < 0 || s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key  string
		size int64
		at   time.Time
	}
	entries := make([]aged, 0, len(s.sizes))
	for key, size := range s.sizes {
		info, err := os.Stat(s.path(key))
		at := time.Time{} // unstattable sorts oldest, evicted first
		if err == nil {
			at = info.ModTime()
		}
		entries = append(entries, aged{key, size, at})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].at.Before(entries[j].at) })
	for _, e := range entries {
		if s.bytes <= s.maxBytes {
			break
		}
		_ = os.Remove(s.path(e.key))
		delete(s.sizes, e.key)
		s.bytes -= e.size
		s.gcEvictions++
		s.gcBytes += e.size
		s.cGCEvict.Inc()
	}
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.sizes), s.bytes
	gcE, gcB := s.gcEvictions, s.gcBytes
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Corrupt:     s.corrupt.Load(),
		Stale:       s.stale.Load(),
		GCEvictions: gcE,
		GCBytes:     gcB,
		Entries:     entries,
		Bytes:       bytes,
	}
}

// Len returns the number of retained entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// A Namespace re-addresses keys under a label so one backend can hold
// independent kinds of blobs (verification results, dependency graphs)
// without key collisions: every operation maps key → NamespacedKey
// before hitting the backend, so namespaced blobs share the framing,
// crash-safety, GC budget, and telemetry of the store they live in.
type Namespace struct {
	s     Backend
	label string
}

// Namespace returns a view of the store whose keys are re-addressed
// under label. The empty label is the store's root namespace.
func (s *Store) Namespace(label string) Namespace { return Namespace{s: s, label: label} }

// NamespaceOf is Namespace over any Backend — the form the engine uses,
// since a cluster may substitute a remote backend for the local store.
func NamespaceOf(b Backend, label string) Namespace { return Namespace{s: b, label: label} }

// NamespacedKey maps a caller key into a namespace: the final content
// address of a blob stored via Namespace{label}.Put(key, …). Exposed so
// tests and tooling can locate namespaced blobs on disk.
func NamespacedKey(label, key string) string {
	if label == "" {
		return key
	}
	return Key("namespace", label, key)
}

// Get returns the payload stored under key within the namespace.
func (n Namespace) Get(key string) ([]byte, bool) { return n.s.Get(NamespacedKey(n.label, key)) }

// Put stores the payload under key within the namespace.
func (n Namespace) Put(key string, payload []byte) error {
	return n.s.Put(NamespacedKey(n.label, key), payload)
}

// Invalidate removes the entry stored under key within the namespace.
func (n Namespace) Invalidate(key string) { n.s.Invalidate(NamespacedKey(n.label, key)) }

// KeyOf returns the final store key of a namespaced entry — the address
// Path-style tooling would look up (see Store.path sharding).
func (n Namespace) KeyOf(key string) string { return NamespacedKey(n.label, key) }

// encodeBlob frames a payload under the given schema version.
func encodeBlob(version uint32, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[0:4], blobMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], version)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[16:16+sha256.Size], sum[:])
	copy(out[headerSize:], payload)
	return out
}

// decodeBlob verifies a blob's frame and returns its payload. Any
// mismatch — short file, wrong magic, foreign schema version, length
// disagreement, checksum failure — reads as invalid.
func decodeBlob(data []byte) ([]byte, bool) {
	if len(data) < headerSize {
		return nil, false
	}
	if !bytes.Equal(data[0:4], blobMagic[:]) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[4:8]) != SchemaVersion {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[16:16+sha256.Size]) {
		return nil, false
	}
	return payload, true
}
