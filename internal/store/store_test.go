package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"webssari/internal/telemetry"
)

func open(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, Options{})
	key := Key("name.php", "source", "prelude")
	payload := []byte(`{"verdict":"unsafe"}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v; want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	key := Key("page.php", "src")
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, []byte("report-blob")); err != nil {
		t.Fatal(err)
	}
	// A second Open simulates a process restart: the entry must be
	// indexed and readable with no in-memory state carried over.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "report-blob" {
		t.Fatalf("after reopen Get = %q, %v", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("after reopen Len = %d, want 1", s2.Len())
	}
}

// TestCorruptionDegradesToMiss flips, truncates, and garbage-fills a
// stored blob; every mutation must read as a miss (never an error) and
// remove the bad file so it cannot fail twice.
func TestCorruptionDegradesToMiss(t *testing.T) {
	mutations := map[string]func([]byte) []byte{
		"bit flip in payload": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0x40
			return out
		},
		"bit flip in header": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[20] ^= 0x01 // inside the checksum
			return out
		},
		"truncated mid-payload": func(b []byte) []byte { return b[:len(b)-3] },
		"truncated mid-header":  func(b []byte) []byte { return b[:headerSize-5] },
		"empty file":            func([]byte) []byte { return nil },
		"foreign magic": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out[0:4], "EVIL")
			return out
		},
		"length mismatch": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			binary.LittleEndian.PutUint64(out[8:16], 1<<40)
			return out
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			s := open(t, Options{})
			key := Key("k", name)
			if err := s.Put(key, []byte("a perfectly good verification report payload")); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.path(key), mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupted blob served as hit: %q", got)
			}
			if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
				t.Fatalf("corrupted blob not removed (stat err = %v)", err)
			}
			if st := s.Stats(); st.Corrupt != 1 || st.Hits != 0 {
				t.Fatalf("Stats = %+v; want Corrupt 1, Hits 0", st)
			}
		})
	}
}

// TestSchemaBumpInvalidates writes a blob under an older schema version
// and requires the current store to treat it as a miss and remove it.
func TestSchemaBumpInvalidates(t *testing.T) {
	s := open(t, Options{})
	key := Key("old-schema")
	old := encodeBlob(SchemaVersion-1, []byte("written by yesterday's binary"))
	if err := os.MkdirAll(filepath.Dir(s.path(key)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("old-schema blob served as hit")
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Fatal("old-schema blob not removed")
	}
	// The same key is immediately reusable under the current schema.
	if err := s.Put(key, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "fresh" {
		t.Fatalf("re-Put after schema miss: Get = %q, %v", got, ok)
	}
}

func TestInvalidate(t *testing.T) {
	s := open(t, Options{})
	key := Key("stale-includes")
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Invalidate(key)
	if _, ok := s.Get(key); ok {
		t.Fatal("invalidated entry served as hit")
	}
	if st := s.Stats(); st.Stale != 1 || st.Entries != 0 {
		t.Fatalf("Stats = %+v; want Stale 1, Entries 0", st)
	}
}

// TestGCRespectsBudget fills the store past its byte budget and checks
// the LRU collector brings it back under, evicting oldest-touched
// entries first.
func TestGCRespectsBudget(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1024)
	blobSize := int64(headerSize + len(payload))
	s := open(t, Options{MaxBytes: 4 * blobSize})
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("entry-%d", i))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes out so LRU order is unambiguous even on
		// coarse-grained filesystems.
		at := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(s.path(keys[i]), at, at); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	s.GC()
	st := s.Stats()
	if st.Bytes > 4*blobSize {
		t.Fatalf("after GC store holds %d bytes, budget %d", st.Bytes, 4*blobSize)
	}
	if st.GCEvictions == 0 || st.GCBytes == 0 {
		t.Fatalf("GC evicted nothing: %+v", st)
	}
	// The most recently written entries must have survived.
	for _, key := range keys[len(keys)-2:] {
		if _, ok := s.Get(key); !ok {
			t.Fatalf("recently used entry %s evicted before older ones", key)
		}
	}
	// The oldest entries must be gone.
	for _, key := range keys[:2] {
		if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
			t.Fatalf("oldest entry %s survived GC", key)
		}
	}
}

func TestUnboundedStoreNeverEvicts(t *testing.T) {
	s := open(t, Options{MaxBytes: -1})
	for i := 0; i < 32; i++ {
		if err := s.Put(Key(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("y"), 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.GCEvictions != 0 || st.Entries != 32 {
		t.Fatalf("unbounded store evicted: %+v", st)
	}
}

// TestConcurrentReadersWriters hammers one store from many goroutines —
// overlapping keys, rewrites, invalidations, GCs — and is meaningful
// under -race. Every successful Get must return a payload some writer
// actually stored under that key.
func TestConcurrentReadersWriters(t *testing.T) {
	s := open(t, Options{MaxBytes: 64 << 10})
	const (
		workers = 8
		keys    = 16
		rounds  = 50
	)
	valid := func(key string, payload []byte) bool {
		return strings.HasPrefix(string(payload), "payload:"+key+":")
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := Key(fmt.Sprintf("k%d", (w+r)%keys))
				switch r % 4 {
				case 0, 1:
					payload := fmt.Sprintf("payload:%s:worker%d:round%d", key, w, r)
					if err := s.Put(key, []byte(payload)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 2:
					if got, ok := s.Get(key); ok && !valid(key, got) {
						t.Errorf("Get(%s) returned foreign payload %q", key, got)
						return
					}
				case 3:
					if r%12 == 3 {
						s.Invalidate(key)
					} else {
						s.GC()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts == 0 {
		t.Fatalf("no puts recorded: %+v", st)
	}
	if st.Bytes > 64<<10 {
		t.Fatalf("store over budget after concurrent run: %+v", st)
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	objDir := filepath.Join(dir, "objects", "ab")
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		t.Fatal(err)
	}
	leftover := filepath.Join(objDir, tmpPrefix+"crashed-writer")
	if err := os.WriteFile(leftover, []byte("half a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatal("Open did not sweep the crashed writer's temp file")
	}
	if s.Len() != 0 {
		t.Fatalf("temp file indexed as entry: Len = %d", s.Len())
	}
}

func TestInstrumentMirrorsCounters(t *testing.T) {
	s := open(t, Options{})
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	key := Key("observed")
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Get(key)
	s.Get(Key("absent"))
	snap := reg.Snapshot()
	checks := map[string]float64{
		telemetry.MetricStoreHits:    1,
		telemetry.MetricStoreMisses:  1,
		telemetry.MetricStorePuts:    1,
		telemetry.MetricStoreEntries: 1,
	}
	for name, want := range checks {
		if got := snap[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if snap[telemetry.MetricStoreBytes] <= 0 {
		t.Errorf("%s = %g, want > 0", telemetry.MetricStoreBytes, snap[telemetry.MetricStoreBytes])
	}
}

func TestKeyIsContentSensitive(t *testing.T) {
	base := Key("a", "b", "c")
	if Key("a", "b", "c") != base {
		t.Fatal("Key not deterministic")
	}
	// Length-prefixing means re-chunked parts must not collide.
	if Key("ab", "c") == Key("a", "bc") || Key("abc") == base {
		t.Fatal("Key collides across part boundaries")
	}
}
