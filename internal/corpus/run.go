package corpus

import (
	"fmt"
	"time"

	"webssari/internal/core"
	"webssari/internal/fixing"
	"webssari/internal/flow"
	"webssari/internal/prelude"
	"webssari/internal/typestate"
)

// RunStats is the measured outcome of analyzing one project — one row of
// the regenerated Figure 10.
type RunStats struct {
	Project string
	// TS is the measured TS-reported error count (symptoms).
	TS int
	// BMC is the measured BMC-reported error count: the size of the
	// project-wide minimal fixing set (error introductions).
	BMC int
	// Naive is the size of the naive fixing set V_R^n (one guard per
	// violating variable) — the instrumentation count a TS-guided patcher
	// needs.
	Naive int
	// Counterexamples is the total number of BMC error traces.
	Counterexamples int
	Files           int
	VulnerableFiles int
	Statements      int
	Duration        time.Duration
}

// Run analyzes every file of a generated project with both algorithms and
// aggregates the per-project counts. pre may be nil (default prelude).
func Run(proj *Project, pre *prelude.Prelude, engine core.Options) (*RunStats, error) {
	if pre == nil {
		pre = prelude.Default()
	}
	engine.Flow.Prelude = pre

	stats := &RunStats{
		Project:    proj.Profile.Name,
		Files:      len(proj.Sources),
		Statements: proj.Statements,
	}
	start := time.Now()
	for _, name := range proj.FileNames() {
		src := proj.Sources[name]
		prog, errs := flow.BuildSource(name, src, engine.Flow)
		if len(errs) > 0 {
			return nil, fmt.Errorf("corpus: %s/%s: %w", proj.Profile.Name, name, errs[0])
		}

		stats.TS += typestate.Count(prog)

		res, err := core.VerifyAI(prog, engine)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s/%s: %w", proj.Profile.Name, name, err)
		}
		if !res.Safe() {
			stats.VulnerableFiles++
		}
		stats.Counterexamples += len(res.Counterexamples())
		analysis := fixing.Analyze(res)
		stats.BMC += len(analysis.GreedyMinimalFix())
		stats.Naive += len(analysis.NaiveFix())
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// Totals aggregates a slice of per-project stats.
type Totals struct {
	Projects           int
	VulnerableProjects int
	Files              int
	VulnerableFiles    int
	Statements         int
	TS                 int
	BMC                int
	Naive              int
	Duration           time.Duration
}

// Reduction returns the headline instrumentation reduction 1 − BMC/TS
// (the paper reports 41.0%).
func (t Totals) Reduction() float64 {
	if t.TS == 0 {
		return 0
	}
	return 1 - float64(t.BMC)/float64(t.TS)
}

// Accumulate folds one project's stats into the totals.
func (t *Totals) Accumulate(s *RunStats) {
	t.Projects++
	if s.TS > 0 {
		t.VulnerableProjects++
	}
	t.Files += s.Files
	t.VulnerableFiles += s.VulnerableFiles
	t.Statements += s.Statements
	t.TS += s.TS
	t.BMC += s.BMC
	t.Naive += s.Naive
	t.Duration += s.Duration
}
