package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// Project is a generated synthetic project: PHP sources plus bookkeeping.
type Project struct {
	Profile Profile
	// Sources maps file name → PHP source.
	Sources map[string][]byte
	// VulnerableFiles lists files containing seeded flaws.
	VulnerableFiles []string
	// Statements counts generated PHP statements.
	Statements int
}

// FileNames returns all file names in deterministic order.
func (p *Project) FileNames() []string {
	names := make([]string, 0, len(p.Sources))
	for n := range p.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate synthesizes a project's sources from its profile. Generation is
// deterministic in (profile, seed).
//
// Vulnerability structure: the profile's TS symptoms are partitioned among
// BMC roots (every root gets at least one sink). Each root is one
// untrusted input read ($_GET/$_POST/$_COOKIE); each of its sinks receives
// the root's data through a fresh single-variable propagation chain, so
//
//   - the TS algorithm reports exactly one error per sink statement, and
//   - the BMC counterexample analysis groups each root's sinks into one
//     error introduction, making the minimal fixing set exactly BMC-sized.
//
// The remaining statement budget is filled with taint-free application
// code (markup, arithmetic, sanitized output, helper functions) spread
// over the profile's file count.
func Generate(profile Profile, seed uint64) *Project {
	g := &generator{
		rng:     newSplitMix(seed ^ hashName(profile.Name)),
		profile: profile,
		proj: &Project{
			Profile: profile,
			Sources: make(map[string][]byte),
		},
	}
	g.build()
	return g.proj
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type generator struct {
	rng     *splitMix
	profile Profile
	proj    *Project
}

func (g *generator) build() {
	files := maxInt(1, g.profile.Files)
	stmtBudget := maxInt(g.profile.Statements, g.profile.TS*3+5)

	// Partition sinks among roots.
	roots := g.profile.BMC
	var sinksPerRoot []int
	if roots > 0 {
		base := g.profile.TS / roots
		rem := g.profile.TS % roots
		for j := 0; j < roots; j++ {
			k := base
			if j < rem {
				k++
			}
			sinksPerRoot = append(sinksPerRoot, k)
		}
	}

	// Spread roots over vulnerable files.
	vulnFiles := 0
	if roots > 0 {
		vulnFiles = minInt(roots, maxInt(1, files/6))
	}
	rootsOfFile := make([][]int, vulnFiles)
	for j := 0; j < roots; j++ {
		fi := j % vulnFiles
		rootsOfFile[fi] = append(rootsOfFile[fi], j)
	}

	perFile := stmtBudget / files
	for fi := 0; fi < files; fi++ {
		name := fmt.Sprintf("src/page%03d.php", fi)
		var b strings.Builder
		b.WriteString("<?php\n")
		stmts := 0
		if fi < vulnFiles {
			for _, rootID := range rootsOfFile[fi] {
				stmts += g.emitVulnerability(&b, rootID, sinksPerRoot[rootID])
			}
			g.proj.VulnerableFiles = append(g.proj.VulnerableFiles, name)
		}
		for stmts < perFile {
			stmts += g.emitSafeBlock(&b, fi, stmts)
		}
		b.WriteString("?>\n")
		g.proj.Sources[name] = []byte(b.String())
		g.proj.Statements += stmts
	}
}

// emitVulnerability writes one root and its sink chain; returns the number
// of statements emitted.
func (g *generator) emitVulnerability(b *strings.Builder, rootID, sinks int) int {
	stmts := 0
	root := fmt.Sprintf("in%d", rootID)
	source := []string{"_GET", "_POST", "_COOKIE", "_REQUEST"}[g.rng.next()%4]
	fmt.Fprintf(b, "$%s = $%s['p%d'];\n", root, source, rootID)
	stmts++

	for i := 0; i < sinks; i++ {
		chainVar := fmt.Sprintf("q%d_%d", rootID, i)
		// Occasionally interpose one extra single-variable hop: the
		// replacement-set walk must cross it.
		src := "$" + root
		if g.rng.next()%3 == 0 {
			mid := fmt.Sprintf("m%d_%d", rootID, i)
			fmt.Fprintf(b, "$%s = %s;\n", mid, src)
			stmts++
			src = "$" + mid
		}
		switch g.rng.next() % 3 {
		case 0:
			fmt.Fprintf(b, "$%s = \"SELECT * FROM t%d WHERE k=\" . %s;\n", chainVar, i, src)
			stmts++
			fmt.Fprintf(b, "mysql_query($%s);\n", chainVar)
			stmts++
		case 1:
			fmt.Fprintf(b, "$%s = \"<div>\" . %s . \"</div>\";\n", chainVar, src)
			stmts++
			fmt.Fprintf(b, "echo $%s;\n", chainVar)
			stmts++
		default:
			fmt.Fprintf(b, "$%s = \"UPDATE t SET v=\" . %s;\n", chainVar, src)
			stmts++
			fmt.Fprintf(b, "mysql_query($%s);\n", chainVar)
			stmts++
		}
	}
	return stmts
}

// emitSafeBlock writes a small block of taint-free application code and
// returns the statement count.
func (g *generator) emitSafeBlock(b *strings.Builder, fileID, serial int) int {
	id := fmt.Sprintf("%d_%d", fileID, serial)
	switch g.rng.next() % 6 {
	case 0:
		fmt.Fprintf(b, "$title%s = 'Page %s';\n$count%s = 0;\necho '<h1>' . $title%s . '</h1>';\n",
			id, id, id, id)
		return 3
	case 1:
		fmt.Fprintf(b, "for ($i%s = 0; $i%s < 10; $i%s++) {\n    $sum%s = $i%s * 2;\n}\n",
			id, id, id, id, id)
		return 2
	case 2:
		fmt.Fprintf(b, "echo htmlspecialchars($_GET['view%s']);\n", id)
		return 1
	case 3:
		fmt.Fprintf(b, "function helper%s($x) {\n    return $x . ' ok';\n}\necho helper%s('static');\n",
			id, id)
		return 3
	case 4:
		fmt.Fprintf(b, "if ($mode%s == 'a') {\n    $v%s = 1;\n} else {\n    $v%s = 2;\n}\necho $v%s;\n",
			id, id, id, id)
		return 4
	default:
		fmt.Fprintf(b, "$cfg%s = array('a' => 1, 'b' => 2);\n$x%s = $cfg%s['a'] + 5;\n",
			id, id, id)
		return 2
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
