// Package corpus synthesizes the evaluation workload of the paper's §5.
//
// The original experiment ran WebSSARI over 230 PHP projects downloaded
// from SourceForge.net (11,848 files, 1,140,091 statements; 69 projects
// vulnerable, of which 38 developers acknowledged the findings — the
// projects tabulated in Figure 10). Those exact project snapshots are not
// reproducible today, so this package substitutes a deterministic
// generator (see DESIGN.md): for each project it emits synthetic PHP whose
// *taint structure* — how many untrusted roots exist and how many sinks
// each root's propagation reaches — matches the per-project TS and BMC
// counts of Figure 10. The verifiers then run for real over the generated
// source; the reported numbers are genuine analysis outputs, not copies of
// the table.
package corpus

// Profile describes one project of the evaluation corpus.
type Profile struct {
	// Name is the project name as listed in Figure 10 (or a synthetic name
	// for the non-acknowledged and clean projects).
	Name string
	// Activity is SourceForge's project-activity percentile (cosmetic; the
	// "A" column of Figure 10).
	Activity int
	// TS is the number of vulnerable statements the TS algorithm reports.
	TS int
	// BMC is the number of error introductions (the minimal fixing set
	// size) the BMC analysis reports.
	BMC int
	// Files is the number of PHP files the project comprises.
	Files int
	// Statements is the approximate number of statements across the
	// project.
	Statements int
	// Acknowledged marks the 38 Figure 10 projects.
	Acknowledged bool
}

// Vulnerable reports whether the project contains any flaw.
func (p Profile) Vulnerable() bool { return p.TS > 0 }

// Figure10 returns the 38 acknowledged projects with the TS and BMC error
// counts from the paper's Figure 10.
//
// Note on totals: the paper's text reports 980 TS errors and 578 BMC
// groups (a 41.0% reduction). The per-row values as printed sum to 969 and
// 578; we reproduce the rows faithfully and record the small discrepancy
// in EXPERIMENTS.md (the 578 side — the quantity the paper's contribution
// is about — matches exactly).
func Figure10() []Profile {
	rows := []Profile{
		{Name: "GBook MX", Activity: 60, TS: 4, BMC: 2},
		{Name: "AthenaRMS", Activity: 0, TS: 3, BMC: 2},
		{Name: "PHPCodeCabinet", Activity: 71, TS: 25, BMC: 25},
		{Name: "BolinOS", Activity: 94, TS: 3, BMC: 3},
		{Name: "PHP Surveyor", Activity: 99, TS: 169, BMC: 90},
		{Name: "Booby", Activity: 90, TS: 5, BMC: 4},
		{Name: "ByteHoard", Activity: 98, TS: 2, BMC: 2},
		{Name: "PHPRecipeBook", Activity: 99, TS: 11, BMC: 8},
		{Name: "phpLDAPadmin", Activity: 97, TS: 25, BMC: 13},
		{Name: "Segue CMS", Activity: 77, TS: 11, BMC: 9},
		{Name: "Moregroupware", Activity: 99, TS: 7, BMC: 7},
		{Name: "iNuke", Activity: 0, TS: 3, BMC: 3},
		{Name: "InfoCentral", Activity: 82, TS: 206, BMC: 57},
		{Name: "WebMovieDB", Activity: 24, TS: 7, BMC: 5},
		{Name: "TestLink", Activity: 88, TS: 69, BMC: 48},
		{Name: "Crafty Syntax Live Help", Activity: 96, TS: 16, BMC: 1},
		{Name: "ILIAS open source", Activity: 20, TS: 2, BMC: 2},
		{Name: "PHP Multiple Newsletters", Activity: 68, TS: 30, BMC: 30},
		{Name: "International Suspect Vigilance Nexus", Activity: 0, TS: 20, BMC: 12},
		{Name: "SquirrelMail", Activity: 99, TS: 7, BMC: 7},
		{Name: "PHPMyList", Activity: 69, TS: 10, BMC: 4},
		{Name: "EGroupWare", Activity: 99, TS: 4, BMC: 4},
		{Name: "PHPFriendlyAdmin", Activity: 87, TS: 16, BMC: 16},
		{Name: "PHP Helpdesk", Activity: 87, TS: 1, BMC: 1},
		{Name: "Media Mate", Activity: 0, TS: 53, BMC: 16},
		{Name: "Obelus Helpdesk", Activity: 22, TS: 8, BMC: 6},
		{Name: "eDreamers", Activity: 80, TS: 7, BMC: 1},
		{Name: "Mad.Thought", Activity: 66, TS: 4, BMC: 4},
		{Name: "PHPLetter", Activity: 79, TS: 23, BMC: 23},
		{Name: "WebArchive", Activity: 2, TS: 7, BMC: 2},
		{Name: "Nalanda", Activity: 58, TS: 27, BMC: 8},
		{Name: "Site@School", Activity: 94, TS: 46, BMC: 40},
		{Name: "PHPList", Activity: 0, TS: 16, BMC: 1},
		{Name: "PHPPgAdmin", Activity: 98, TS: 3, BMC: 3},
		{Name: "Anonymous Mailer", Activity: 73, TS: 7, BMC: 7},
		{Name: "PHP Support Tickets", Activity: 0, TS: 40, BMC: 40},
		{Name: "Norfolk Household Financial Manager", Activity: 0, TS: 60, BMC: 60},
		{Name: "Tiki CMS Groupware", Activity: 99, TS: 12, BMC: 12},
	}
	for i := range rows {
		rows[i].Acknowledged = true
	}
	return rows
}

// Corpus-wide shape constants from §5 of the paper.
const (
	// PaperProjects is the corpus size.
	PaperProjects = 230
	// PaperFiles is the total file count.
	PaperFiles = 11848
	// PaperStatements is the total statement count.
	PaperStatements = 1140091
	// PaperVulnerableProjects is the number of projects with defective code.
	PaperVulnerableProjects = 69
	// PaperVulnerableFiles is the number of files TS identified as vulnerable.
	PaperVulnerableFiles = 515
	// PaperAcknowledged is the number of projects whose developers responded.
	PaperAcknowledged = 38
)

// FullCorpus returns all 230 project profiles: the 38 acknowledged
// Figure 10 projects, 31 further vulnerable projects (whose developers
// did not respond; counts drawn deterministically), and 161 clean
// projects. File and statement budgets are distributed so the corpus
// totals approximate §5's 11,848 files and 1,140,091 statements, scaled
// by the given factor (1.0 = paper scale; tests and the default bench use
// a smaller factor).
func FullCorpus(scale float64) []Profile {
	if scale <= 0 {
		scale = 1
	}
	profiles := Figure10()

	// 31 vulnerable-but-unacknowledged projects. Counts are synthetic but
	// shaped like Figure 10's distribution (many small, a few large).
	rng := newSplitMix(0xC0FFEE)
	for i := 0; i < PaperVulnerableProjects-PaperAcknowledged; i++ {
		ts := 1 + int(rng.next()%12)
		if i%7 == 0 {
			ts += int(rng.next() % 30)
		}
		bmc := 1 + int(rng.next()%uint64(ts))
		if bmc > ts {
			bmc = ts
		}
		profiles = append(profiles, Profile{
			Name:     synthName("unack", i),
			Activity: int(rng.next() % 100),
			TS:       ts,
			BMC:      bmc,
		})
	}
	// 161 clean projects.
	for i := 0; i < PaperProjects-PaperVulnerableProjects; i++ {
		profiles = append(profiles, Profile{
			Name:     synthName("clean", i),
			Activity: int(rng.next() % 100),
		})
	}

	// Distribute the file and statement budgets proportionally (larger
	// projects get more), deterministically.
	totalFiles := int(float64(PaperFiles) * scale)
	totalStatements := int(float64(PaperStatements) * scale)
	n := len(profiles)
	weights := make([]int, n)
	weightSum := 0
	for i := range profiles {
		w := 1 + int(rng.next()%9)
		weights[i] = w
		weightSum += w
	}
	for i := range profiles {
		profiles[i].Files = maxInt(1, totalFiles*weights[i]/weightSum)
		profiles[i].Statements = maxInt(profiles[i].TS*3+10, totalStatements*weights[i]/weightSum)
	}
	return profiles
}

func synthName(kind string, i int) string {
	names := []string{
		"Guestbook", "Forum", "Gallery", "Wiki", "Shop", "Blog", "Tracker",
		"Portal", "Calendar", "Mailer", "CMS", "Poll", "Chat", "Webmail",
		"Directory", "Library", "Helpdesk", "Planner", "Billing", "Survey",
	}
	return "PHP " + names[i%len(names)] + " " + kind + "-" + itoa(i)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// splitMix is a tiny deterministic PRNG (SplitMix64) so corpus generation
// is reproducible without math/rand's global state.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
