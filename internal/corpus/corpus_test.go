package corpus

import (
	"bytes"
	"testing"

	"webssari/internal/core"
	"webssari/internal/php/parser"
)

func TestFigure10TableShape(t *testing.T) {
	rows := Figure10()
	if len(rows) != 38 {
		t.Fatalf("rows = %d, want 38", len(rows))
	}
	tsSum, bmcSum := 0, 0
	for _, r := range rows {
		if r.TS <= 0 || r.BMC <= 0 {
			t.Errorf("%s: nonpositive counts %d/%d", r.Name, r.TS, r.BMC)
		}
		if r.BMC > r.TS {
			t.Errorf("%s: BMC %d > TS %d", r.Name, r.BMC, r.TS)
		}
		if !r.Acknowledged {
			t.Errorf("%s: not marked acknowledged", r.Name)
		}
		tsSum += r.TS
		bmcSum += r.BMC
	}
	// The BMC total matches the paper's 578 exactly; the printed TS rows
	// sum to 969 against the text's 980 (documented in EXPERIMENTS.md).
	if bmcSum != 578 {
		t.Errorf("BMC total = %d, want 578", bmcSum)
	}
	if tsSum != 969 {
		t.Errorf("TS total = %d, want 969 (printed rows)", tsSum)
	}
}

func TestFullCorpusShape(t *testing.T) {
	all := FullCorpus(1.0)
	if len(all) != PaperProjects {
		t.Fatalf("projects = %d, want %d", len(all), PaperProjects)
	}
	vuln, files, stmts := 0, 0, 0
	for _, p := range all {
		if p.Vulnerable() {
			vuln++
		}
		files += p.Files
		stmts += p.Statements
	}
	if vuln != PaperVulnerableProjects {
		t.Fatalf("vulnerable = %d, want %d", vuln, PaperVulnerableProjects)
	}
	if files < PaperFiles*9/10 || files > PaperFiles*11/10 {
		t.Fatalf("files = %d, want ≈ %d", files, PaperFiles)
	}
	if stmts < PaperStatements*9/10 || stmts > PaperStatements*12/10 {
		t.Fatalf("statements = %d, want ≈ %d", stmts, PaperStatements)
	}
}

func TestFullCorpusDeterministic(t *testing.T) {
	a := FullCorpus(0.1)
	b := FullCorpus(0.1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("profile %d differs across calls", i)
		}
	}
}

func TestGeneratedSourcesParse(t *testing.T) {
	prof := Profile{Name: "t", TS: 9, BMC: 4, Files: 3, Statements: 120}
	proj := Generate(prof, 1)
	if len(proj.Sources) != 3 {
		t.Fatalf("files = %d, want 3", len(proj.Sources))
	}
	for name, src := range proj.Sources {
		res := parser.Parse(name, src)
		if len(res.Errs) > 0 {
			t.Fatalf("%s does not parse: %v\n%s", name, res.Errs[0], src)
		}
	}
	if proj.Statements < 100 {
		t.Fatalf("statements = %d, want ≥ 100", proj.Statements)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prof := Profile{Name: "t", TS: 5, BMC: 2, Files: 2, Statements: 60}
	a := Generate(prof, 7)
	b := Generate(prof, 7)
	for name := range a.Sources {
		if !bytes.Equal(a.Sources[name], b.Sources[name]) {
			t.Fatalf("%s differs across identical generations", name)
		}
	}
	c := Generate(prof, 8)
	same := true
	for name := range a.Sources {
		if !bytes.Equal(a.Sources[name], c.Sources[name]) {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical sources")
	}
}

// TestRunReproducesProfileCounts is the core corpus property: running the
// real TS and BMC analyses over a generated project yields exactly the
// profile's TS and BMC counts.
func TestRunReproducesProfileCounts(t *testing.T) {
	profiles := []Profile{
		{Name: "one-root", TS: 1, BMC: 1, Files: 1, Statements: 20},
		{Name: "shared-root", TS: 16, BMC: 1, Files: 2, Statements: 80},
		{Name: "all-distinct", TS: 6, BMC: 6, Files: 2, Statements: 60},
		{Name: "mixed", TS: 13, BMC: 5, Files: 4, Statements: 150},
		{Name: "clean", TS: 0, BMC: 0, Files: 2, Statements: 50},
	}
	for _, prof := range profiles {
		proj := Generate(prof, 42)
		stats, err := Run(proj, nil, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if stats.TS != prof.TS {
			t.Errorf("%s: measured TS = %d, want %d", prof.Name, stats.TS, prof.TS)
		}
		if stats.BMC != prof.BMC {
			t.Errorf("%s: measured BMC = %d, want %d", prof.Name, stats.BMC, prof.BMC)
		}
		if prof.TS > 0 && stats.Naive != prof.TS {
			t.Errorf("%s: naive fixes = %d, want %d (one per symptom)", prof.Name, stats.Naive, prof.TS)
		}
		if prof.TS > 0 && stats.VulnerableFiles == 0 {
			t.Errorf("%s: no vulnerable files detected", prof.Name)
		}
		if prof.TS == 0 && stats.VulnerableFiles != 0 {
			t.Errorf("%s: clean project flagged", prof.Name)
		}
	}
}

// TestRunSampleOfFigure10Rows verifies a representative subset of actual
// Figure 10 rows end-to-end (the full table runs in the benchmark).
func TestRunSampleOfFigure10Rows(t *testing.T) {
	wanted := map[string]bool{
		"GBook MX":                true, // 4 / 2
		"Crafty Syntax Live Help": true, // 16 / 1: max grouping
		"PHPCodeCabinet":          true, // 25 / 25: no grouping
		"PHPMyList":               true, // 10 / 4
	}
	for _, prof := range Figure10() {
		if !wanted[prof.Name] {
			continue
		}
		prof.Files = 4
		prof.Statements = prof.TS*3 + 60
		proj := Generate(prof, 11)
		stats, err := Run(proj, nil, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if stats.TS != prof.TS || stats.BMC != prof.BMC {
			t.Errorf("%s: measured %d/%d, want %d/%d",
				prof.Name, stats.TS, stats.BMC, prof.TS, prof.BMC)
		}
	}
}

func TestTotalsAccumulation(t *testing.T) {
	var tot Totals
	tot.Accumulate(&RunStats{TS: 10, BMC: 4, Files: 2, Statements: 100, VulnerableFiles: 1})
	tot.Accumulate(&RunStats{TS: 0, BMC: 0, Files: 3, Statements: 50})
	if tot.Projects != 2 || tot.VulnerableProjects != 1 {
		t.Fatalf("project counts wrong: %+v", tot)
	}
	if tot.TS != 10 || tot.BMC != 4 || tot.Files != 5 || tot.Statements != 150 {
		t.Fatalf("totals wrong: %+v", tot)
	}
	if r := tot.Reduction(); r < 0.59 || r > 0.61 {
		t.Fatalf("reduction = %f, want 0.6", r)
	}
	if (Totals{}).Reduction() != 0 {
		t.Fatalf("empty reduction should be 0")
	}
}
