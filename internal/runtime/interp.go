package runtime

import (
	"fmt"
	"strings"

	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
	"webssari/internal/php/token"
)

// ErrHalt is a sentinel: execution ended via exit/die (not a failure).
type haltSignal struct{}

// control models non-local control flow inside the tree-walking
// interpreter.
type control struct {
	kind controlKind
	n    int    // break/continue level
	val  *Value // return value
}

type controlKind int

const (
	ctlNone controlKind = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// DefaultMaxSteps bounds execution so accidental infinite loops in test
// programs fail fast.
const DefaultMaxSteps = 1_000_000

// Interp executes one PHP program with taint tracking.
type Interp struct {
	// Globals is the global variable scope. Superglobals live here.
	Globals map[string]*Value
	// Events is the ordered log of sink invocations.
	Events []Event
	// DB is the fake database backing mysql_* builtins: executed INSERTs
	// are appended to Stored; SELECT queries return the pre-seeded Rows.
	DB FakeDB
	// MaxSteps bounds evaluation steps (0 = DefaultMaxSteps).
	MaxSteps int
	// Loader resolves include paths (nil disables includes).
	Loader func(path string) ([]byte, error)

	funcs   map[string]*ast.FunctionDecl
	steps   int
	scope   map[string]*Value // current variable scope
	globals map[string]bool   // names imported via 'global'
	depth   int
}

// FakeDB simulates the backend database.
type FakeDB struct {
	// Rows are returned, in order, by result fetches.
	Rows []*Value
	// Queries records every query string executed.
	Queries []string
}

// New returns an interpreter with empty superglobals.
func New() *Interp {
	in := &Interp{
		Globals: map[string]*Value{
			"_GET": Array(), "_POST": Array(), "_COOKIE": Array(),
			"_REQUEST": Array(), "_SERVER": Array(), "_SESSION": Array(),
		},
		funcs: make(map[string]*ast.FunctionDecl),
	}
	in.scope = in.Globals
	return in
}

// SetGet seeds a $_GET parameter with attacker-controlled (tainted) data.
func (in *Interp) SetGet(key, val string) { in.Globals["_GET"].Set(key, Tainted(val)) }

// SetPost seeds a $_POST parameter with tainted data.
func (in *Interp) SetPost(key, val string) { in.Globals["_POST"].Set(key, Tainted(val)) }

// SetCookie seeds a $_COOKIE value with tainted data.
func (in *Interp) SetCookie(key, val string) { in.Globals["_COOKIE"].Set(key, Tainted(val)) }

// SeedRow adds a row to the fake database (e.g. previously stored,
// attacker-supplied content for stored-XSS scenarios).
func (in *Interp) SeedRow(cols map[string]*Value) {
	row := Array()
	for k, v := range cols {
		row.Set(k, v)
	}
	in.DB.Rows = append(in.DB.Rows, row)
}

// TaintedEvents returns the sink events that received tainted data.
func (in *Interp) TaintedEvents() []Event {
	var out []Event
	for _, e := range in.Events {
		if e.Tainted {
			out = append(out, e)
		}
	}
	return out
}

// Output concatenates everything echoed.
func (in *Interp) Output() string {
	var b strings.Builder
	for _, e := range in.Events {
		if e.Sink == "echo" {
			b.WriteString(e.Text)
		}
	}
	return b.String()
}

// RunSource parses and executes PHP source text.
func (in *Interp) RunSource(name string, src []byte) error {
	res := parser.Parse(name, src)
	if len(res.Errs) > 0 {
		return fmt.Errorf("runtime: parse %s: %w", name, res.Errs[0])
	}
	return in.Run(res.File)
}

// Run executes a parsed file.
func (in *Interp) Run(file *ast.File) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(haltSignal); ok {
				return // exit/die: normal termination
			}
			panic(r)
		}
	}()
	in.collectFuncs(file.Stmts)
	_, err = in.stmts(file.Stmts)
	return err
}

func (in *Interp) collectFuncs(stmts []ast.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.FunctionDecl:
			in.funcs[ast.LowerName(s.Name)] = s
		case *ast.ClassDecl:
			for _, m := range s.Methods {
				// Methods callable by unique name, matching the filter's
				// resolution model.
				key := ast.LowerName(m.Name)
				if _, dup := in.funcs[key]; !dup {
					in.funcs[key] = m
				}
			}
		case *ast.IfStmt:
			in.collectFuncs(s.Then)
			for _, ei := range s.Elseifs {
				in.collectFuncs(ei.Body)
			}
			in.collectFuncs(s.Else)
		case *ast.BlockStmt:
			in.collectFuncs(s.Body)
		}
	}
}

func (in *Interp) tick(pos token.Pos) error {
	in.steps++
	limit := in.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}
	if in.steps > limit {
		return fmt.Errorf("runtime: step budget exhausted at %s", pos)
	}
	return nil
}

func (in *Interp) emit(sink string, v *Value, pos token.Pos) {
	in.Events = append(in.Events, Event{
		Sink:    sink,
		Text:    v.String(),
		Tainted: v.AnyTaint(),
		Line:    pos.Line,
	})
}

// stmts executes a statement list, returning any control signal.
func (in *Interp) stmts(list []ast.Stmt) (control, error) {
	for _, s := range list {
		ctl, err := in.stmt(s)
		if err != nil || ctl.kind != ctlNone {
			return ctl, err
		}
	}
	return control{}, nil
}

func (in *Interp) stmt(s ast.Stmt) (control, error) {
	if err := in.tick(s.Pos()); err != nil {
		return control{}, err
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		_, err := in.eval(s.X)
		return control{}, err

	case *ast.EchoStmt:
		for _, a := range s.Args {
			v, err := in.eval(a)
			if err != nil {
				return control{}, err
			}
			in.emit("echo", v, s.Pos())
		}
		return control{}, nil

	case *ast.InlineHTMLStmt:
		in.emit("echo", Clean(s.Text), s.Pos())
		return control{}, nil

	case *ast.IfStmt:
		cond, err := in.eval(s.Cond)
		if err != nil {
			return control{}, err
		}
		if cond.Truthy() {
			return in.stmts(s.Then)
		}
		for _, ei := range s.Elseifs {
			c, err := in.eval(ei.Cond)
			if err != nil {
				return control{}, err
			}
			if c.Truthy() {
				return in.stmts(ei.Body)
			}
		}
		return in.stmts(s.Else)

	case *ast.WhileStmt:
		for {
			if err := in.tick(s.Pos()); err != nil {
				return control{}, err
			}
			c, err := in.eval(s.Cond)
			if err != nil {
				return control{}, err
			}
			if !c.Truthy() {
				return control{}, nil
			}
			ctl, err := in.stmts(s.Body)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl); done {
				return out, nil
			}
		}

	case *ast.DoWhileStmt:
		for {
			if err := in.tick(s.Pos()); err != nil {
				return control{}, err
			}
			ctl, err := in.stmts(s.Body)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl); done {
				return out, nil
			}
			c, err := in.eval(s.Cond)
			if err != nil {
				return control{}, err
			}
			if !c.Truthy() {
				return control{}, nil
			}
		}

	case *ast.ForStmt:
		for _, e := range s.Init {
			if _, err := in.eval(e); err != nil {
				return control{}, err
			}
		}
		for {
			if err := in.tick(s.Pos()); err != nil {
				return control{}, err
			}
			run := true
			for _, e := range s.Cond {
				c, err := in.eval(e)
				if err != nil {
					return control{}, err
				}
				run = c.Truthy()
			}
			if !run {
				return control{}, nil
			}
			ctl, err := in.stmts(s.Body)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl); done {
				return out, nil
			}
			for _, e := range s.Post {
				if _, err := in.eval(e); err != nil {
					return control{}, err
				}
			}
		}

	case *ast.ForeachStmt:
		subj, err := in.eval(s.Subject)
		if err != nil {
			return control{}, err
		}
		if subj.Kind != KArray {
			return control{}, nil
		}
		for _, key := range append([]string(nil), sortedKeys(subj)...) {
			elem, ok := subj.Elems[key]
			if !ok {
				continue
			}
			if s.KeyVar != nil {
				kv := Clean(key)
				kv.Taint = subj.Taint
				if err := in.assign(s.KeyVar, kv); err != nil {
					return control{}, err
				}
			}
			if err := in.assign(s.ValVar, elem.Copy()); err != nil {
				return control{}, err
			}
			ctl, err := in.stmts(s.Body)
			if err != nil {
				return control{}, err
			}
			if done, out := loopControl(ctl); done {
				return out, nil
			}
		}
		return control{}, nil

	case *ast.SwitchStmt:
		subj, err := in.eval(s.Subject)
		if err != nil {
			return control{}, err
		}
		matched := false
		for _, c := range s.Cases {
			if !matched {
				if c.Match == nil {
					matched = true
				} else {
					m, err := in.eval(c.Match)
					if err != nil {
						return control{}, err
					}
					matched = looseEq(subj, m)
				}
			}
			if matched {
				ctl, err := in.stmts(c.Body)
				if err != nil {
					return control{}, err
				}
				if ctl.kind == ctlBreak {
					if ctl.n > 1 {
						return control{kind: ctlBreak, n: ctl.n - 1}, nil
					}
					return control{}, nil
				}
				if ctl.kind != ctlNone {
					return ctl, nil
				}
			}
		}
		return control{}, nil

	case *ast.BreakStmt:
		return control{kind: ctlBreak, n: s.Level}, nil
	case *ast.ContinueStmt:
		return control{kind: ctlContinue, n: s.Level}, nil

	case *ast.ReturnStmt:
		out := control{kind: ctlReturn, val: Null()}
		if s.X != nil {
			v, err := in.eval(s.X)
			if err != nil {
				return control{}, err
			}
			out.val = v
		}
		return out, nil

	case *ast.GlobalStmt:
		if in.globals != nil {
			for _, name := range s.Names {
				in.globals[name] = true
			}
		}
		return control{}, nil

	case *ast.StaticStmt:
		// Statics approximated as ordinary locals with initialization.
		for _, v := range s.Vars {
			if _, exists := in.scope[v.Name]; !exists {
				val := Null()
				if v.Init != nil {
					var err error
					val, err = in.eval(v.Init)
					if err != nil {
						return control{}, err
					}
				}
				in.setVar(v.Name, val)
			}
		}
		return control{}, nil

	case *ast.UnsetStmt:
		for _, a := range s.Args {
			switch a := a.(type) {
			case *ast.Var:
				delete(in.scope, a.Name)
			case *ast.Index:
				base, err := in.eval(a.Arr)
				if err != nil {
					return control{}, err
				}
				if a.Key != nil && base.Kind == KArray {
					k, err := in.eval(a.Key)
					if err != nil {
						return control{}, err
					}
					delete(base.Elems, k.String())
				}
			}
		}
		return control{}, nil

	case *ast.FunctionDecl, *ast.ClassDecl, *ast.NopStmt:
		return control{}, nil

	case *ast.BlockStmt:
		return in.stmts(s.Body)

	default:
		return control{}, fmt.Errorf("runtime: unsupported statement %T at %s", s, s.Pos())
	}
}

// loopControl translates a body control signal into loop behaviour.
func loopControl(ctl control) (done bool, out control) {
	switch ctl.kind {
	case ctlBreak:
		if ctl.n > 1 {
			return true, control{kind: ctlBreak, n: ctl.n - 1}
		}
		return true, control{}
	case ctlContinue:
		if ctl.n > 1 {
			return true, control{kind: ctlContinue, n: ctl.n - 1}
		}
		return false, control{}
	case ctlReturn:
		return true, ctl
	default:
		return false, control{}
	}
}
