package runtime

import (
	"fmt"
	"net/url"
	"strings"

	"webssari/internal/php/ast"
	"webssari/internal/php/token"
)

// maxCallDepth bounds recursion.
const maxCallDepth = 128

func (in *Interp) evalCall(e *ast.Call) (*Value, error) {
	name := e.FuncName()
	if name == "" {
		// Variable function: resolve by value.
		fv, err := in.eval(e.Func)
		if err != nil {
			return nil, err
		}
		name = ast.LowerName(fv.String())
	}
	if fd, ok := in.funcs[name]; ok {
		return in.callUser(fd, e.Args, nil, e.Pos())
	}
	return in.builtin(name, e.Args, e.Pos())
}

// callUser invokes a user-defined function with its own scope.
func (in *Interp) callUser(fd *ast.FunctionDecl, args []ast.Expr, recv *Value, pos token.Pos) (*Value, error) {
	if in.depth >= maxCallDepth {
		return nil, fmt.Errorf("runtime: call depth exceeded at %s", pos)
	}
	// Evaluate arguments in the caller's scope.
	vals := make([]*Value, len(fd.Params))
	var refTargets []ast.Expr
	var refIdx []int
	for i, p := range fd.Params {
		switch {
		case i < len(args):
			v, err := in.eval(args[i])
			if err != nil {
				return nil, err
			}
			if p.ByRef {
				refTargets = append(refTargets, args[i])
				refIdx = append(refIdx, i)
				vals[i] = v
			} else {
				vals[i] = v.Copy()
			}
		case p.Default != nil:
			v, err := in.eval(p.Default)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		default:
			vals[i] = Null()
		}
	}

	savedScope, savedGlobals := in.scope, in.globals
	in.scope = make(map[string]*Value, len(fd.Params)+2)
	in.globals = make(map[string]bool)
	in.depth++
	for i, p := range fd.Params {
		in.scope[p.Name] = vals[i]
	}
	if recv != nil {
		in.scope["this"] = recv
	}
	ctl, err := in.stmts(fd.Body)
	localScope := in.scope
	in.depth--
	in.scope, in.globals = savedScope, savedGlobals
	if err != nil {
		return nil, err
	}

	// Copy back by-reference parameters.
	for k, i := range refIdx {
		if v, ok := localScope[fd.Params[i].Name]; ok {
			if err := in.assign(refTargets[k], v); err != nil {
				return nil, err
			}
		}
	}
	if ctl.kind == ctlReturn {
		return ctl.val, nil
	}
	return Null(), nil
}

// builtin dispatches the PHP standard-library subset.
func (in *Interp) builtin(name string, argASTs []ast.Expr, pos token.Pos) (*Value, error) {
	args := make([]*Value, len(argASTs))
	for i, a := range argASTs {
		v, err := in.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	arg := func(i int) *Value {
		if i < len(args) {
			return args[i]
		}
		return Null()
	}

	switch name {
	// ------------------------------------------------ sanitizers (clear taint)
	case "htmlspecialchars", "htmlentities":
		return Clean(htmlEscape(arg(0).String())), nil
	case "websafe":
		// The default runtime guard inserted by the instrumentor: escapes
		// and untaints, recursing into arrays.
		return websafe(arg(0)), nil
	case "addslashes", "mysql_escape_string", "mysql_real_escape_string",
		"pg_escape_string", "sqlite_escape_string":
		return Clean(addSlashes(arg(0).String())), nil
	case "strip_tags":
		return Clean(stripTags(arg(0).String())), nil
	case "escapeshellarg":
		return Clean("'" + strings.ReplaceAll(arg(0).String(), "'", `'\''`) + "'"), nil
	case "escapeshellcmd":
		return Clean(arg(0).String()), nil
	case "intval":
		return Num(float64(int64(arg(0).Number()))), nil
	case "floatval", "doubleval":
		return Num(arg(0).Number()), nil
	case "urlencode", "rawurlencode":
		return Clean(url.QueryEscape(arg(0).String())), nil
	case "md5", "sha1", "crc32", "base64_encode", "bin2hex":
		// Hashes modeled as identity-with-marker: value content is not
		// security-relevant, only the cleared taint is.
		return Clean(name + "(" + arg(0).String() + ")"), nil

	// ------------------------------------------------- sinks (record events)
	case "print":
		in.emit("echo", arg(0), pos)
		return Num(1), nil
	case "printf":
		in.emit("echo", joinArgs(args), pos)
		return Null(), nil
	case "print_r":
		in.emit("echo", arg(0), pos)
		return BoolVal(true), nil
	case "mysql_query", "mysql_db_query", "mysql_unbuffered_query",
		"pg_query", "pg_exec", "sqlite_query", "dosql":
		q := arg(0)
		if name == "mysql_db_query" {
			q = arg(1)
		}
		in.emit("sql", q, pos)
		in.DB.Queries = append(in.DB.Queries, q.String())
		res := &Value{Kind: KResource, Res: &Result{Rows: in.DB.Rows}}
		return res, nil
	case "exec", "system", "passthru", "shell_exec", "popen":
		in.emit("exec", arg(0), pos)
		return Clean(""), nil
	case "eval":
		in.emit("eval", arg(0), pos)
		return Null(), nil
	case "header", "mail":
		in.emit(name, joinArgs(args), pos)
		return Null(), nil

	// ------------------------------------------------ sources / database reads
	case "mysql_fetch_array", "mysql_fetch_assoc", "mysql_fetch_row",
		"mysql_fetch_object", "pg_fetch_array", "pg_fetch_row":
		r := arg(0)
		if r.Kind != KResource || r.Res == nil || r.Res.next >= len(r.Res.Rows) {
			return BoolVal(false), nil
		}
		row := r.Res.Rows[r.Res.next]
		r.Res.next++
		return row.Copy(), nil
	case "mysql_result":
		r := arg(0)
		if r.Kind == KResource && r.Res != nil && len(r.Res.Rows) > 0 {
			row := r.Res.Rows[0]
			keys := sortedKeys(row)
			if len(keys) > 0 {
				return row.Get(keys[0]).Copy(), nil
			}
		}
		return BoolVal(false), nil
	case "getenv":
		return Tainted("ENV:" + arg(0).String()), nil
	case "file_get_contents", "fgets", "fread", "file":
		return Tainted("FILE:" + arg(0).String()), nil

	// ------------------------------------------------------------- utilities
	case "extract":
		a := arg(0)
		if a.Kind == KArray {
			for _, k := range sortedKeys(a) {
				in.setVar(k, a.Elems[k].Copy())
			}
		}
		return Num(float64(len(args))), nil
	case "count", "sizeof":
		if arg(0).Kind == KArray {
			return Num(float64(len(arg(0).Elems))), nil
		}
		return Num(1), nil
	case "strlen":
		return Num(float64(len(arg(0).String()))), nil
	case "trim":
		return passTaint(arg(0), strings.TrimSpace(arg(0).String())), nil
	case "ltrim":
		return passTaint(arg(0), strings.TrimLeft(arg(0).String(), " \t\n\r")), nil
	case "rtrim", "chop":
		return passTaint(arg(0), strings.TrimRight(arg(0).String(), " \t\n\r")), nil
	case "strtolower":
		return passTaint(arg(0), strings.ToLower(arg(0).String())), nil
	case "strtoupper":
		return passTaint(arg(0), strings.ToUpper(arg(0).String())), nil
	case "substr":
		s := arg(0).String()
		start := int(arg(1).Number())
		if start < 0 {
			start += len(s)
		}
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) > 2 {
			n := int(arg(2).Number())
			if n >= 0 && start+n < end {
				end = start + n
			}
		}
		return passTaint(arg(0), s[start:end]), nil
	case "str_replace":
		out := strings.ReplaceAll(arg(2).String(), arg(0).String(), arg(1).String())
		v := Clean(out)
		v.Taint = arg(1).AnyTaint() || arg(2).AnyTaint()
		return v, nil
	case "sprintf":
		v := joinArgs(args)
		return v, nil
	case "implode", "join":
		sep, a := arg(0), arg(1)
		if a.Kind != KArray && sep.Kind == KArray {
			sep, a = a, sep
		}
		var parts []string
		taint := false
		if a.Kind == KArray {
			for _, k := range sortedKeys(a) {
				parts = append(parts, a.Elems[k].String())
				taint = taint || a.Elems[k].AnyTaint()
			}
		}
		return &Value{Kind: KString, Str: strings.Join(parts, sep.String()), Taint: taint}, nil
	case "explode":
		parts := strings.Split(arg(1).String(), arg(0).String())
		out := Array()
		for _, p := range parts {
			v := Clean(p)
			v.Taint = arg(1).AnyTaint()
			out.Append(v)
		}
		return out, nil
	case "is_array":
		return BoolVal(arg(0).Kind == KArray), nil
	case "is_numeric":
		s := strings.TrimSpace(arg(0).String())
		return BoolVal(s != "" && fmt.Sprintf("%g", arg(0).Number()) != "0" || s == "0"), nil
	case "function_exists":
		_, ok := in.funcs[ast.LowerName(arg(0).String())]
		return BoolVal(ok || isKnownBuiltin(ast.LowerName(arg(0).String()))), nil
	case "define", "error_reporting", "ini_set", "session_start",
		"mysql_connect", "mysql_select_db", "mysql_close", "srand",
		"set_magic_quotes_runtime", "ob_start", "ob_end_flush":
		return BoolVal(true), nil
	case "rand", "mt_rand", "time":
		// Deterministic stand-ins keep test runs reproducible.
		return Num(4), nil
	case "gettype":
		return Clean(typeName(arg(0))), nil
	default:
		// Unknown builtin: join argument taints into an empty result, the
		// same conservative default the verifier's filter uses.
		taint := false
		for _, a := range args {
			taint = taint || a.AnyTaint()
		}
		return &Value{Kind: KString, Str: "", Taint: taint}, nil
	}
}

func isKnownBuiltin(name string) bool {
	switch name {
	case "htmlspecialchars", "websafe", "addslashes", "mysql_query", "echo",
		"print", "strlen", "count", "trim", "substr":
		return true
	}
	return false
}

func typeName(v *Value) string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KBool:
		return "boolean"
	case KNum:
		return "double"
	case KString:
		return "string"
	case KArray:
		return "array"
	default:
		return "resource"
	}
}

// websafe implements the instrumentor's default runtime guard.
func websafe(v *Value) *Value {
	if v.Kind == KArray {
		out := Array()
		for _, k := range sortedKeys(v) {
			out.Set(k, websafe(v.Elems[k]))
		}
		return out
	}
	if v.Kind == KResource {
		// Guarding a result handle sanitizes the rows it will deliver.
		rows := make([]*Value, len(v.Res.Rows))
		for i, r := range v.Res.Rows {
			rows[i] = websafe(r)
		}
		return &Value{Kind: KResource, Res: &Result{Rows: rows, next: v.Res.next}}
	}
	return Clean(htmlEscape(addSlashes(v.String())))
}

func passTaint(src *Value, s string) *Value {
	return &Value{Kind: KString, Str: s, Taint: src.AnyTaint()}
}

func joinArgs(args []*Value) *Value {
	var b strings.Builder
	taint := false
	for _, a := range args {
		b.WriteString(a.String())
		taint = taint || a.AnyTaint()
	}
	return &Value{Kind: KString, Str: b.String(), Taint: taint}
}

func stripTags(s string) string {
	var b strings.Builder
	in := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '<':
			in = true
		case s[i] == '>':
			in = false
		case !in:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
