package runtime

import (
	"fmt"
	"strings"

	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
	"webssari/internal/php/token"
)

func (in *Interp) eval(e ast.Expr) (*Value, error) {
	if e == nil {
		return Null(), nil
	}
	if err := in.tick(e.Pos()); err != nil {
		return nil, err
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return Num(float64(e.Value)), nil
	case *ast.FloatLit:
		return Num(e.Value), nil
	case *ast.StringLit:
		return Clean(e.Value), nil
	case *ast.BoolLit:
		return BoolVal(e.Value), nil
	case *ast.NullLit:
		return Null(), nil

	case *ast.Interp:
		var b strings.Builder
		taint := false
		for _, part := range e.Parts {
			v, err := in.eval(part)
			if err != nil {
				return nil, err
			}
			b.WriteString(v.String())
			taint = taint || v.AnyTaint()
		}
		return &Value{Kind: KString, Str: b.String(), Taint: taint}, nil

	case *ast.ArrayLit:
		arr := Array()
		for _, it := range e.Items {
			v, err := in.eval(it.Val)
			if err != nil {
				return nil, err
			}
			if it.Key != nil {
				k, err := in.eval(it.Key)
				if err != nil {
					return nil, err
				}
				arr.Set(k.String(), v)
			} else {
				arr.Append(v)
			}
		}
		return arr, nil

	case *ast.ConstFetch:
		// Unknown constants evaluate to their own name, as old PHP did.
		switch strings.ToLower(e.Name) {
		case "php_eol":
			return Clean("\n"), nil
		default:
			return Clean(e.Name), nil
		}

	case *ast.Var:
		return in.readVar(e.Name), nil

	case *ast.VarVar:
		inner, err := in.eval(e.Inner)
		if err != nil {
			return nil, err
		}
		return in.readVar(inner.String()), nil

	case *ast.Index:
		base, err := in.eval(e.Arr)
		if err != nil {
			return nil, err
		}
		if e.Key == nil {
			return Null(), nil
		}
		key, err := in.eval(e.Key)
		if err != nil {
			return nil, err
		}
		return base.Get(key.String()), nil

	case *ast.Prop:
		base, err := in.eval(e.Obj)
		if err != nil {
			return nil, err
		}
		return base.Get("->" + e.Name), nil

	case *ast.Cast:
		v, err := in.eval(e.X)
		if err != nil {
			return nil, err
		}
		return castValue(e.To, v), nil

	case *ast.Unary:
		return in.evalUnary(e)

	case *ast.Binary:
		return in.evalBinary(e)

	case *ast.Assign:
		return in.evalAssign(e)

	case *ast.Ternary:
		c, err := in.eval(e.Cond)
		if err != nil {
			return nil, err
		}
		if c.Truthy() {
			if e.Then == nil {
				return c, nil
			}
			return in.eval(e.Then)
		}
		return in.eval(e.Else)

	case *ast.Call:
		return in.evalCall(e)

	case *ast.MethodCall:
		// Methods resolve by unique name (mirrors the verifier's model);
		// the receiver is passed as $this.
		if fd, ok := in.funcs[ast.LowerName(e.Name)]; ok {
			recv, err := in.eval(e.Obj)
			if err != nil {
				return nil, err
			}
			return in.callUser(fd, e.Args, recv, e.Pos())
		}
		return in.builtin(ast.LowerName(e.Name), e.Args, e.Pos())

	case *ast.StaticCall:
		if fd, ok := in.funcs[ast.LowerName(e.Name)]; ok {
			return in.callUser(fd, e.Args, nil, e.Pos())
		}
		return in.builtin(ast.LowerName(e.Name), e.Args, e.Pos())

	case *ast.New:
		obj := Array()
		for _, a := range e.Args {
			if _, err := in.eval(a); err != nil {
				return nil, err
			}
		}
		return obj, nil

	case *ast.IncludeExpr:
		return in.evalInclude(e)

	case *ast.IssetExpr:
		for _, a := range e.Args {
			v, err := in.evalQuiet(a)
			if err != nil {
				return nil, err
			}
			if v == nil || v.Kind == KNull {
				return BoolVal(false), nil
			}
		}
		return BoolVal(true), nil

	case *ast.EmptyExpr:
		v, err := in.evalQuiet(e.Arg)
		if err != nil {
			return nil, err
		}
		return BoolVal(v == nil || !v.Truthy()), nil

	case *ast.ListExpr:
		return Null(), nil

	case *ast.ExitExpr:
		if e.Arg != nil {
			v, err := in.eval(e.Arg)
			if err != nil {
				return nil, err
			}
			if v.Kind == KString {
				in.emit("echo", v, e.Pos())
			}
		}
		panic(haltSignal{})

	default:
		return nil, fmt.Errorf("runtime: unsupported expression %T at %s", e, e.Pos())
	}
}

// castValue applies a PHP type cast. Numeric and boolean casts drop taint
// (the result cannot carry a string payload); string/array casts keep it.
func castValue(to string, v *Value) *Value {
	switch to {
	case "int", "integer":
		return Num(float64(int64(v.Number())))
	case "float", "double", "real":
		return Num(v.Number())
	case "bool", "boolean":
		return BoolVal(v.Truthy())
	case "string":
		out := Clean(v.String())
		out.Taint = v.AnyTaint()
		return out
	case "array":
		if v.Kind == KArray {
			return v
		}
		a := Array()
		a.Append(v)
		return a
	case "unset":
		return Null()
	default:
		return v
	}
}

// evalQuiet evaluates for isset/empty, tolerating failures as null.
func (in *Interp) evalQuiet(e ast.Expr) (*Value, error) {
	v, err := in.eval(e)
	if err != nil {
		return Null(), nil
	}
	return v, nil
}

func (in *Interp) readVar(name string) *Value {
	if in.scope != nil {
		if in.globals != nil && (in.globals[name] || isSuperglobal(name)) {
			if v, ok := in.Globals[name]; ok {
				return v
			}
			return Null()
		}
		if v, ok := in.scope[name]; ok {
			return v
		}
	}
	return Null()
}

func (in *Interp) setVar(name string, v *Value) {
	if in.globals != nil && (in.globals[name] || isSuperglobal(name)) {
		in.Globals[name] = v
		return
	}
	in.scope[name] = v
}

func isSuperglobal(name string) bool {
	switch name {
	case "_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER", "_SESSION",
		"_FILES", "_ENV", "GLOBALS":
		return true
	}
	return false
}

func (in *Interp) evalUnary(e *ast.Unary) (*Value, error) {
	switch e.Op {
	case token.Inc, token.Dec:
		old, err := in.eval(e.X)
		if err != nil {
			return nil, err
		}
		delta := 1.0
		if e.Op == token.Dec {
			delta = -1
		}
		updated := Num(old.Number() + delta)
		updated.Taint = old.Taint
		if err := in.assign(e.X, updated); err != nil {
			return nil, err
		}
		if e.Postfix {
			return old, nil
		}
		return updated, nil
	}
	v, err := in.eval(e.X)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case token.Not:
		return BoolVal(!v.Truthy()), nil
	case token.Minus:
		out := Num(-v.Number())
		out.Taint = v.Taint
		return out, nil
	case token.Plus:
		out := Num(v.Number())
		out.Taint = v.Taint
		return out, nil
	case token.Tilde:
		out := Num(float64(^int64(v.Number())))
		out.Taint = v.Taint
		return out, nil
	case token.At:
		return v, nil
	default:
		return v, nil
	}
}

func (in *Interp) evalBinary(e *ast.Binary) (*Value, error) {
	// Short-circuit logical operators.
	switch e.Op {
	case token.AndAnd, token.KwAnd:
		l, err := in.eval(e.L)
		if err != nil {
			return nil, err
		}
		if !l.Truthy() {
			return BoolVal(false), nil
		}
		r, err := in.eval(e.R)
		if err != nil {
			return nil, err
		}
		return BoolVal(r.Truthy()), nil
	case token.OrOr, token.KwOr:
		l, err := in.eval(e.L)
		if err != nil {
			return nil, err
		}
		if l.Truthy() {
			return BoolVal(true), nil
		}
		r, err := in.eval(e.R)
		if err != nil {
			return nil, err
		}
		return BoolVal(r.Truthy()), nil
	}

	l, err := in.eval(e.L)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(e.R)
	if err != nil {
		return nil, err
	}
	taint := l.AnyTaint() || r.AnyTaint()

	switch e.Op {
	case token.Dot:
		return &Value{Kind: KString, Str: l.String() + r.String(), Taint: taint}, nil
	case token.Plus:
		out := Num(l.Number() + r.Number())
		out.Taint = taint
		return out, nil
	case token.Minus:
		out := Num(l.Number() - r.Number())
		out.Taint = taint
		return out, nil
	case token.Star:
		out := Num(l.Number() * r.Number())
		out.Taint = taint
		return out, nil
	case token.Slash:
		d := r.Number()
		if d == 0 {
			return BoolVal(false), nil
		}
		out := Num(l.Number() / d)
		out.Taint = taint
		return out, nil
	case token.Percent:
		d := int64(r.Number())
		if d == 0 {
			return BoolVal(false), nil
		}
		out := Num(float64(int64(l.Number()) % d))
		out.Taint = taint
		return out, nil
	case token.Eq:
		return BoolVal(looseEq(l, r)), nil
	case token.NotEq:
		return BoolVal(!looseEq(l, r)), nil
	case token.Identical:
		return BoolVal(l.Kind == r.Kind && looseEq(l, r)), nil
	case token.NotIdent:
		return BoolVal(!(l.Kind == r.Kind && looseEq(l, r))), nil
	case token.Lt:
		return BoolVal(compare(l, r) < 0), nil
	case token.Gt:
		return BoolVal(compare(l, r) > 0), nil
	case token.LtEq:
		return BoolVal(compare(l, r) <= 0), nil
	case token.GtEq:
		return BoolVal(compare(l, r) >= 0), nil
	case token.KwXor:
		return BoolVal(l.Truthy() != r.Truthy()), nil
	case token.Amp:
		out := Num(float64(int64(l.Number()) & int64(r.Number())))
		out.Taint = taint
		return out, nil
	case token.Pipe:
		out := Num(float64(int64(l.Number()) | int64(r.Number())))
		out.Taint = taint
		return out, nil
	case token.Caret:
		out := Num(float64(int64(l.Number()) ^ int64(r.Number())))
		out.Taint = taint
		return out, nil
	case token.Shl:
		out := Num(float64(int64(l.Number()) << uint(r.Number())))
		out.Taint = taint
		return out, nil
	case token.Shr:
		out := Num(float64(int64(l.Number()) >> uint(r.Number())))
		out.Taint = taint
		return out, nil
	default:
		return nil, fmt.Errorf("runtime: unsupported operator %v at %s", e.Op, e.Pos())
	}
}

func looseEq(a, b *Value) bool {
	if a.Kind == KNum || b.Kind == KNum || a.Kind == KBool || b.Kind == KBool {
		return a.Number() == b.Number()
	}
	return a.String() == b.String()
}

func compare(a, b *Value) int {
	if a.Kind == KString && b.Kind == KString {
		return strings.Compare(a.Str, b.Str)
	}
	switch {
	case a.Number() < b.Number():
		return -1
	case a.Number() > b.Number():
		return 1
	default:
		return 0
	}
}

func (in *Interp) evalAssign(e *ast.Assign) (*Value, error) {
	rhs, err := in.eval(e.RHS)
	if err != nil {
		return nil, err
	}
	if lst, ok := e.LHS.(*ast.ListExpr); ok {
		for i, tgt := range lst.Targets {
			if tgt == nil {
				continue
			}
			if err := in.assign(tgt, rhs.Get(fmt.Sprint(i)).Copy()); err != nil {
				return nil, err
			}
		}
		return rhs, nil
	}
	if e.Op != token.Assign {
		old, err := in.eval(e.LHS)
		if err != nil {
			return nil, err
		}
		combined, err := in.compound(e.Op, old, rhs, e.Pos())
		if err != nil {
			return nil, err
		}
		rhs = combined
	} else {
		rhs = rhs.Copy()
	}
	if err := in.assign(e.LHS, rhs); err != nil {
		return nil, err
	}
	return rhs, nil
}

func (in *Interp) compound(op token.Kind, old, rhs *Value, pos token.Pos) (*Value, error) {
	taint := old.AnyTaint() || rhs.AnyTaint()
	switch op {
	case token.ConcatAssign:
		return &Value{Kind: KString, Str: old.String() + rhs.String(), Taint: taint}, nil
	case token.PlusAssign:
		out := Num(old.Number() + rhs.Number())
		out.Taint = taint
		return out, nil
	case token.MinusAssign:
		out := Num(old.Number() - rhs.Number())
		out.Taint = taint
		return out, nil
	case token.StarAssign:
		out := Num(old.Number() * rhs.Number())
		out.Taint = taint
		return out, nil
	case token.SlashAssign:
		d := rhs.Number()
		if d == 0 {
			return BoolVal(false), nil
		}
		out := Num(old.Number() / d)
		out.Taint = taint
		return out, nil
	case token.PercentAssign:
		d := int64(rhs.Number())
		if d == 0 {
			return BoolVal(false), nil
		}
		out := Num(float64(int64(old.Number()) % d))
		out.Taint = taint
		return out, nil
	default:
		return nil, fmt.Errorf("runtime: unsupported compound assignment at %s", pos)
	}
}

// assign writes a value through an lvalue expression.
func (in *Interp) assign(lvalue ast.Expr, v *Value) error {
	switch lv := lvalue.(type) {
	case *ast.Var:
		in.setVar(lv.Name, v)
		return nil
	case *ast.VarVar:
		inner, err := in.eval(lv.Inner)
		if err != nil {
			return err
		}
		in.setVar(inner.String(), v)
		return nil
	case *ast.Index:
		base, err := in.lvalueBase(lv.Arr)
		if err != nil {
			return err
		}
		if lv.Key == nil {
			base.Append(v)
			return nil
		}
		k, err := in.eval(lv.Key)
		if err != nil {
			return err
		}
		base.Set(k.String(), v)
		return nil
	case *ast.Prop:
		base, err := in.lvalueBase(lv.Obj)
		if err != nil {
			return err
		}
		base.Set("->"+lv.Name, v)
		return nil
	default:
		return fmt.Errorf("runtime: unsupported assignment target %T at %s", lvalue, lvalue.Pos())
	}
}

// lvalueBase resolves the container an element write goes into,
// auto-vivifying arrays like PHP does.
func (in *Interp) lvalueBase(e ast.Expr) (*Value, error) {
	switch e := e.(type) {
	case *ast.Var:
		cur := in.readVar(e.Name)
		if cur.Kind != KArray {
			cur = Array()
			in.setVar(e.Name, cur)
		}
		return cur, nil
	case *ast.Index:
		outer, err := in.lvalueBase(e.Arr)
		if err != nil {
			return nil, err
		}
		var key string
		if e.Key != nil {
			k, err := in.eval(e.Key)
			if err != nil {
				return nil, err
			}
			key = k.String()
		}
		inner := outer.Get(key)
		if inner.Kind != KArray {
			inner = Array()
			outer.Set(key, inner)
		}
		return inner, nil
	case *ast.Prop:
		outer, err := in.lvalueBase(e.Obj)
		if err != nil {
			return nil, err
		}
		inner := outer.Get("->" + e.Name)
		if inner.Kind != KArray {
			inner = Array()
			outer.Set("->"+e.Name, inner)
		}
		return inner, nil
	default:
		return nil, fmt.Errorf("runtime: unsupported lvalue base %T at %s", e, e.Pos())
	}
}

func (in *Interp) evalInclude(e *ast.IncludeExpr) (*Value, error) {
	pathV, err := in.eval(e.Path)
	if err != nil {
		return nil, err
	}
	in.emit("include", pathV, e.Pos())
	if in.Loader == nil {
		return BoolVal(false), nil
	}
	src, err := in.Loader(pathV.String())
	if err != nil {
		return BoolVal(false), nil
	}
	res := parser.Parse(pathV.String(), src)
	if len(res.Errs) > 0 {
		return nil, fmt.Errorf("runtime: include %s: %w", pathV, res.Errs[0])
	}
	in.collectFuncs(res.File.Stmts)
	if _, err := in.stmts(res.File.Stmts); err != nil {
		return nil, err
	}
	return BoolVal(true), nil
}
