// Package runtime implements a taint-tracking interpreter for the PHP
// subset. It substitutes for a real PHP runtime in this reproduction (see
// DESIGN.md): tests and examples execute original and patched programs and
// observe directly whether tainted data reaches a sensitive output channel
// — the behaviour WebSSARI's runtime guards must prevent.
//
// Values carry a taint bit. Data placed in the superglobals (or returned
// by the fake database) starts tainted; string operations propagate taint;
// sanitization routines (htmlspecialchars, the websafe runtime guard, …)
// clear it. Sinks (echo, mysql_query, exec, …) record every value they
// receive together with its taint, forming the observable event log.
package runtime

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates PHP value kinds.
type Kind int

// Value kinds.
const (
	KNull Kind = iota + 1
	KBool
	KNum
	KString
	KArray
	KResource // fake database result handles
)

// Value is a PHP runtime value with a taint bit. Arrays hold pointers so
// element updates are visible through aliases, approximating PHP
// copy-on-write closely enough for the subset.
type Value struct {
	Kind  Kind
	Bool  bool
	Num   float64
	Str   string
	Keys  []string // array key order
	Elems map[string]*Value
	Res   *Result // resource payload
	Taint bool
}

// Result is a fake database result handle: a queue of rows.
type Result struct {
	Rows []*Value // each row is an array value
	next int
}

// Null returns the null value.
func Null() *Value { return &Value{Kind: KNull} }

// BoolVal returns a boolean value.
func BoolVal(b bool) *Value { return &Value{Kind: KBool, Bool: b} }

// Num returns a numeric value.
func Num(n float64) *Value { return &Value{Kind: KNum, Num: n} }

// Clean returns an untainted string.
func Clean(s string) *Value { return &Value{Kind: KString, Str: s} }

// Tainted returns a tainted string — data as it arrives from an untrusted
// channel.
func Tainted(s string) *Value { return &Value{Kind: KString, Str: s, Taint: true} }

// Array returns an empty array value.
func Array() *Value {
	return &Value{Kind: KArray, Elems: make(map[string]*Value)}
}

// Set stores an element, preserving insertion order for iteration.
func (v *Value) Set(key string, elem *Value) {
	if v.Elems == nil {
		v.Elems = make(map[string]*Value)
		v.Kind = KArray
	}
	if _, ok := v.Elems[key]; !ok {
		v.Keys = append(v.Keys, key)
	}
	v.Elems[key] = elem
}

// Get fetches an element (null when absent).
func (v *Value) Get(key string) *Value {
	if v.Kind == KArray {
		if e, ok := v.Elems[key]; ok {
			return e
		}
	}
	// Reading an element of a tainted scalar (our coarse model of
	// string offsets) yields tainted data.
	if v.Taint {
		return &Value{Kind: KString, Taint: true}
	}
	return Null()
}

// Append adds an element with the next integer key ($a[] = e).
func (v *Value) Append(elem *Value) {
	maxIdx := -1
	for _, k := range v.Keys {
		if n, err := strconv.Atoi(k); err == nil && n > maxIdx {
			maxIdx = n
		}
	}
	v.Set(strconv.Itoa(maxIdx+1), elem)
}

// Copy returns a deep copy (PHP assignment copies arrays).
func (v *Value) Copy() *Value {
	cp := *v
	if v.Kind == KArray {
		cp.Keys = append([]string(nil), v.Keys...)
		cp.Elems = make(map[string]*Value, len(v.Elems))
		for k, e := range v.Elems {
			cp.Elems[k] = e.Copy()
		}
	}
	return &cp
}

// AnyTaint reports whether the value or (recursively) any element is
// tainted.
func (v *Value) AnyTaint() bool {
	if v.Taint {
		return true
	}
	if v.Kind == KArray {
		for _, e := range v.Elems {
			if e.AnyTaint() {
				return true
			}
		}
	}
	return false
}

// String converts per PHP's string conversion rules (approximately).
func (v *Value) String() string {
	switch v.Kind {
	case KNull:
		return ""
	case KBool:
		if v.Bool {
			return "1"
		}
		return ""
	case KNum:
		if v.Num == float64(int64(v.Num)) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KString:
		return v.Str
	case KArray:
		return "Array"
	case KResource:
		return "Resource"
	default:
		return ""
	}
}

// Number converts to float64 per PHP's loose numeric conversion.
func (v *Value) Number() float64 {
	switch v.Kind {
	case KBool:
		if v.Bool {
			return 1
		}
		return 0
	case KNum:
		return v.Num
	case KString:
		s := strings.TrimSpace(v.Str)
		end := 0
		for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' ||
			(s[end] >= '0' && s[end] <= '9') || s[end] == 'e' || s[end] == 'E') {
			end++
		}
		if n, err := strconv.ParseFloat(s[:end], 64); err == nil {
			return n
		}
		return 0
	default:
		return 0
	}
}

// Truthy converts to bool per PHP rules.
func (v *Value) Truthy() bool {
	switch v.Kind {
	case KNull:
		return false
	case KBool:
		return v.Bool
	case KNum:
		return v.Num != 0
	case KString:
		return v.Str != "" && v.Str != "0"
	case KArray:
		return len(v.Elems) > 0
	case KResource:
		return true
	default:
		return false
	}
}

// withTaint returns a copy of the value with taint forced to t.
func (v *Value) withTaint(t bool) *Value {
	cp := *v
	cp.Taint = t
	return &cp
}

// Event is one sink invocation observed during execution.
type Event struct {
	// Sink is the channel name (echo, mysql_query, exec, include, …).
	Sink string
	// Text is the string the sink received.
	Text string
	// Tainted reports whether unsanitized untrusted data reached the sink
	// — the security failure the runtime guards exist to prevent.
	Tainted bool
	// Line is the source line of the call.
	Line int
}

// String renders the event.
func (e Event) String() string {
	mark := "clean"
	if e.Tainted {
		mark = "TAINTED"
	}
	return fmt.Sprintf("%s@%d [%s]: %s", e.Sink, e.Line, mark, e.Text)
}

// htmlEscape mirrors PHP htmlspecialchars.
func htmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&#039;",
	)
	return r.Replace(s)
}

// addSlashes mirrors PHP addslashes.
func addSlashes(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(s[i])
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// sortedKeys returns array keys in insertion order (stable for iteration).
func sortedKeys(v *Value) []string {
	if len(v.Keys) == len(v.Elems) {
		return v.Keys
	}
	keys := make([]string, 0, len(v.Elems))
	for k := range v.Elems {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
