package runtime

import (
	"strings"
	"testing"
)

func TestArithmeticAndComparisons(t *testing.T) {
	in := run(t, `<?php
echo 7 + 3, ",", 7 - 3, ",", 7 * 3, ",", 7 / 2, ",", 7 % 3;
echo ",", 2 < 3 ? "lt" : "ge";
echo ",", "abc" < "abd" ? "slt" : "sge";
echo ",", 5 == "5" ? "eq" : "ne";
echo ",", 5 === 5 ? "id" : "nid";
echo ",", 5 !== "5" ? "nid2" : "id2";
echo ",", 6 & 3, ",", 6 | 3, ",", 6 ^ 3, ",", 1 << 3, ",", 16 >> 2;
echo ",", -4, ",", +4, ",", ~0;`, nil)
	want := "10,4,21,3.5,1,lt,slt,eq,id,nid2,2,7,5,8,4,-4,4,-1"
	if got := in.Output(); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestCompoundAssignments(t *testing.T) {
	in := run(t, `<?php
$s = "a"; $s .= "b";
$n = 10; $n += 5; $n -= 3; $n *= 2; $n /= 4; $n %= 4;
echo $s, $n;`, nil)
	if got := in.Output(); got != "ab2" {
		t.Fatalf("output = %q", got)
	}
}

func TestLogicalOperators(t *testing.T) {
	in := run(t, `<?php
echo (true && false) ? "t" : "f";
echo (true || false) ? "t" : "f";
echo (true and true) ? "t" : "f";
echo (false or false) ? "t" : "f";
echo (true xor false) ? "t" : "f";
echo !false ? "t" : "f";`, nil)
	if got := in.Output(); got != "fttftt" {
		t.Fatalf("output = %q", got)
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	in := run(t, `<?php
$called = 'no';
function mark() { global $called; $called = 'yes'; return true; }
false && mark();
echo $called;
true || mark();
echo $called;`, nil)
	if got := in.Output(); got != "nono" {
		t.Fatalf("output = %q (short circuit broken)", got)
	}
}

func TestStringBuiltins(t *testing.T) {
	in := run(t, `<?php
echo strlen("hello"), ",";
echo strtoupper("ab"), strtolower("CD"), ",";
echo ltrim("  x"), rtrim("y  "), ",";
echo str_replace("a", "o", "banana"), ",";
echo substr("abcdef", 2, 3), ",";
echo substr("abcdef", -2), ",";
echo implode("-", array("a", "b", "c")), ",";
echo strip_tags("<b>bold</b> text");`, nil)
	want := "5,ABcd,xy,bonono,cde,ef,a-b-c,bold text"
	if got := in.Output(); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestSanitizerFamily(t *testing.T) {
	in := run(t, `<?php
echo addslashes("o'brien"), ",";
echo mysql_real_escape_string($_GET['q']), ",";
echo intval("42abc"), ",";
echo floatval("2.5x"), ",";
echo urlencode("a b"), ",";
echo escapeshellarg("x'y");`, func(in *Interp) { in.SetGet("q", "a'b") })
	want := `o\'brien,a\'b,42,2.5,a+b,'x'\''y'`
	if got := in.Output(); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("sanitizers must clear taint")
	}
}

func TestHashFamilyClearsTaint(t *testing.T) {
	in := run(t, `<?php echo md5($_GET['p']), sha1($_GET['p']), base64_encode($_GET['p']);`,
		func(in *Interp) { in.SetGet("p", "secret") })
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("hash outputs should be untainted")
	}
}

func TestSourceBuiltinsAreTainted(t *testing.T) {
	in := run(t, `<?php
echo getenv("PATH");
echo file_get_contents("/etc/passwd");`, nil)
	if got := len(in.TaintedEvents()); got != 2 {
		t.Fatalf("tainted events = %d, want 2", got)
	}
}

func TestExecAndEvalSinks(t *testing.T) {
	in := run(t, `<?php
system("ls " . $_GET['d']);
eval($_POST['code']);
header("Location: " . $_GET['u']);`, func(in *Interp) {
		in.SetGet("d", "; rm -rf /")
		in.SetPost("code", "phpinfo();")
		in.SetGet("u", "http://evil")
	})
	sinks := map[string]bool{}
	for _, e := range in.TaintedEvents() {
		sinks[e.Sink] = true
	}
	for _, want := range []string{"exec", "eval", "header"} {
		if !sinks[want] {
			t.Errorf("missing tainted %s event: %v", want, in.Events)
		}
	}
}

func TestMysqlResultAndRowQueue(t *testing.T) {
	in := run(t, `<?php
$r = mysql_query("SELECT x FROM t");
echo mysql_result($r, 0), ",";
$row1 = mysql_fetch_array($r);
$row2 = mysql_fetch_array($r);
echo $row1['x'], ",", $row2 ? "more" : "done";`, func(in *Interp) {
		in.SeedRow(map[string]*Value{"x": Clean("first")})
	})
	if got := in.Output(); got != "first,first,done" {
		t.Fatalf("output = %q", got)
	}
}

func TestArrayHelpers(t *testing.T) {
	in := run(t, `<?php
$a = array(1, 2, 3);
echo count($a), ",", sizeof($a), ",";
echo is_array($a) ? "arr" : "not", ",";
echo is_array("s") ? "arr" : "not", ",";
echo gettype($a), ",", gettype("s"), ",", gettype(1.5), ",", gettype(null);`, nil)
	want := "3,3,arr,not,array,string,double,NULL"
	if got := in.Output(); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestArrayAppendAndNested(t *testing.T) {
	in := run(t, `<?php
$a = array();
$a[] = "x";
$a[] = "y";
$a['k']['deep'] = "z";
$o->prop = "p";
echo $a[0], $a[1], $a['k']['deep'], $o->prop;`, nil)
	if got := in.Output(); got != "xyzp" {
		t.Fatalf("output = %q", got)
	}
}

func TestFunctionExistsAndNoops(t *testing.T) {
	in := run(t, `<?php
function mine() { return 1; }
echo function_exists("mine") ? "y" : "n";
echo function_exists("htmlspecialchars") ? "y" : "n";
echo function_exists("no_such_fn_xyz") ? "y" : "n";
error_reporting(0);
session_start();
echo define("X", 1) ? "d" : "-";`, nil)
	if got := in.Output(); got != "yynd" {
		t.Fatalf("output = %q", got)
	}
}

func TestUnknownBuiltinJoinsTaint(t *testing.T) {
	in := run(t, `<?php $x = totally_unknown_fn($_GET['a']); echo "v" . $x;`,
		func(in *Interp) { in.SetGet("a", "evil") })
	if len(in.TaintedEvents()) != 1 {
		t.Fatalf("taint must survive unknown builtins")
	}
}

func TestSprintfAndPrintf(t *testing.T) {
	in := run(t, `<?php
$s = sprintf("a", "b");
echo $s;
printf("x", $_GET['q']);
print "p";
print_r("r");`, func(in *Interp) { in.SetGet("q", "t") })
	if !strings.Contains(in.Output(), "ab") {
		t.Fatalf("sprintf concat failed: %q", in.Output())
	}
	tainted := in.TaintedEvents()
	if len(tainted) != 1 || tainted[0].Sink != "echo" {
		t.Fatalf("printf taint lost: %v", in.Events)
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	in := run(t, `<?php
switch ("z") {
case "a": echo "A";
case "b": echo "B"; break;
default: echo "D";
}
switch ("a") {
case "a": echo "A2";
case "b": echo "B2"; break;
case "c": echo "C2";
}`, nil)
	if got := in.Output(); got != "DA2B2" {
		t.Fatalf("output = %q (fallthrough semantics wrong)", got)
	}
}

func TestBreakLevels(t *testing.T) {
	in := run(t, `<?php
for ($i = 0; $i < 3; $i++) {
    for ($j = 0; $j < 3; $j++) {
        if ($j == 1) { break 2; }
        echo $i, $j;
    }
}
echo "end";`, nil)
	if got := in.Output(); got != "00end" {
		t.Fatalf("output = %q", got)
	}
}

func TestForeachKeyTaintFollowsArray(t *testing.T) {
	in := run(t, `<?php
foreach ($_GET as $k => $v) { echo $k, $v; }`, func(in *Interp) {
		in.SetGet("p", "val")
	})
	// $_GET itself is not a tainted scalar, but its values are.
	evs := in.TaintedEvents()
	if len(evs) != 1 || evs[0].Text != "val" {
		t.Fatalf("events = %v", in.Events)
	}
}

func TestVariableFunctionCall(t *testing.T) {
	in := run(t, `<?php
function greet() { echo "hi"; }
$f = 'greet';
$f();`, nil)
	if got := in.Output(); got != "hi" {
		t.Fatalf("output = %q", got)
	}
}

func TestStaticCallAndUnknownConstant(t *testing.T) {
	in := run(t, `<?php
class Util { function ping() { return "pong"; } }
echo Util::ping();
echo SOME_CONST;
echo PHP_EOL;`, nil)
	if got := in.Output(); got != "pong"+"SOME_CONST"+"\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestStaticVarsInitializeOnce(t *testing.T) {
	in := run(t, `<?php
function counter() {
    static $n = 0;
    $n++;
    return $n;
}
echo counter(), counter(), counter();`, nil)
	// Our statics are per-call locals (documented approximation): each
	// call re-initializes, so the counter stays at 1.
	if got := in.Output(); got != "111" {
		t.Fatalf("output = %q (statics approximation changed?)", got)
	}
}

func TestUnsetBehaviour(t *testing.T) {
	in := run(t, `<?php
$a = "x";
unset($a);
echo isset($a) ? "set" : "unset";
$b = array('k' => 1, 'j' => 2);
unset($b['k']);
echo ",", count($b);`, nil)
	if got := in.Output(); got != "unset,1" {
		t.Fatalf("output = %q", got)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	in := New()
	err := in.RunSource("t.php", []byte(`<?php
function f($n) { return f($n + 1); }
f(0);`))
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want call-depth failure", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	in := run(t, `<?php
echo 5 / 0 ? "t" : "f";
echo 5 % 0 ? "t" : "f";
$x = 4; $x /= 0;
echo $x ? "t" : "f";`, nil)
	if got := in.Output(); got != "fff" {
		t.Fatalf("output = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Sink: "sql", Text: "SELECT 1", Tainted: true, Line: 4}
	if got := e.String(); !strings.Contains(got, "TAINTED") || !strings.Contains(got, "sql@4") {
		t.Fatalf("Event.String = %q", got)
	}
	c := Event{Sink: "echo", Text: "x", Line: 1}
	if got := c.String(); !strings.Contains(got, "clean") {
		t.Fatalf("Event.String = %q", got)
	}
}

func TestValueConversions(t *testing.T) {
	if Num(3).String() != "3" || Num(2.5).String() != "2.5" {
		t.Fatalf("number to string wrong")
	}
	if BoolVal(true).String() != "1" || BoolVal(false).String() != "" {
		t.Fatalf("bool to string wrong")
	}
	if Null().String() != "" || Array().String() != "Array" {
		t.Fatalf("null/array to string wrong")
	}
	if Clean(" 42.5abc").Number() != 42.5 {
		t.Fatalf("string to number wrong: %v", Clean(" 42.5abc").Number())
	}
	if Clean("abc").Number() != 0 {
		t.Fatalf("non-numeric string should be 0")
	}
	if !Num(1).Truthy() || Num(0).Truthy() || Clean("0").Truthy() || !Clean("x").Truthy() {
		t.Fatalf("truthiness wrong")
	}
	arr := Array()
	if arr.Truthy() {
		t.Fatalf("empty array should be falsy")
	}
	arr.Set("k", Num(1))
	if !arr.Truthy() {
		t.Fatalf("non-empty array should be truthy")
	}
}

func TestValueCopyIsolation(t *testing.T) {
	a := Array()
	a.Set("k", Tainted("v"))
	b := a.Copy()
	b.Set("k", Clean("w"))
	if a.Get("k").Str != "v" || !a.Get("k").Taint {
		t.Fatalf("copy mutated the original")
	}
	if !a.AnyTaint() || b.AnyTaint() {
		t.Fatalf("AnyTaint wrong after copy")
	}
}

func TestTaintedScalarElementRead(t *testing.T) {
	// Reading an element of a tainted scalar yields tainted data (coarse
	// string-offset model).
	v := Tainted("abc")
	if !v.Get("0").Taint {
		t.Fatalf("element of tainted scalar should be tainted")
	}
	if Clean("abc").Get("0").Kind != KNull {
		t.Fatalf("element of clean scalar should be null")
	}
}

func TestCastsAtRuntime(t *testing.T) {
	in := run(t, `<?php
echo (int)"42abc", ",", (float)"2.5", ",", (bool)"x" ? "t" : "f", ",";
echo (string)5, ",", count((array)"one");
$clean = (int)$_GET['id'];
echo $clean;`, func(in *Interp) { in.SetGet("id", "7; DROP TABLE x") })
	if got := in.Output(); got != "42,2.5,t,5,17" {
		t.Fatalf("output = %q", got)
	}
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("(int) cast must clear taint")
	}
}

func TestBacktickExecutesShellSink(t *testing.T) {
	in := run(t, "<?php $o = `ls $_GET[d]`;", func(in *Interp) {
		in.SetGet("d", "; rm -rf /")
	})
	evs := in.TaintedEvents()
	if len(evs) != 1 || evs[0].Sink != "exec" {
		t.Fatalf("events = %v, want one tainted exec", in.Events)
	}
}
