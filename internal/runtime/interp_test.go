package runtime

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string, seed func(*Interp)) *Interp {
	t.Helper()
	in := New()
	if seed != nil {
		seed(in)
	}
	if err := in.RunSource("t.php", []byte(src)); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in
}

func TestEchoLiteral(t *testing.T) {
	in := run(t, `<?php echo "hello", ' ', 'world';`, nil)
	if got := in.Output(); got != "hello world" {
		t.Fatalf("output = %q", got)
	}
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("literals must be clean")
	}
}

func TestTaintedGetReachesEcho(t *testing.T) {
	in := run(t, `<?php echo $_GET['msg'];`, func(in *Interp) {
		in.SetGet("msg", "<script>alert(1)</script>")
	})
	ev := in.TaintedEvents()
	if len(ev) != 1 || ev[0].Sink != "echo" {
		t.Fatalf("tainted events = %+v, want one echo", ev)
	}
	if !strings.Contains(in.Output(), "<script>") {
		t.Fatalf("payload lost: %q", in.Output())
	}
}

func TestSanitizerClearsTaint(t *testing.T) {
	in := run(t, `<?php echo htmlspecialchars($_GET['msg']);`, func(in *Interp) {
		in.SetGet("msg", "<script>")
	})
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("sanitized output still tainted")
	}
	if got := in.Output(); got != "&lt;script&gt;" {
		t.Fatalf("output = %q", got)
	}
}

func TestWebsafeGuard(t *testing.T) {
	in := run(t, `<?php $x = websafe($_GET['q']); echo $x;`, func(in *Interp) {
		in.SetGet("q", `<i>'`)
	})
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("guarded value still tainted")
	}
}

func TestInterpolationPropagatesTaint(t *testing.T) {
	in := run(t, `<?php
$sid = $_GET['sid'];
$q = "SELECT * FROM t WHERE sid=$sid";
mysql_query($q);`, func(in *Interp) {
		in.SetGet("sid", "1; DROP TABLE users")
	})
	ev := in.TaintedEvents()
	if len(ev) != 1 || ev[0].Sink != "sql" {
		t.Fatalf("tainted events = %+v, want one sql", ev)
	}
	if len(in.DB.Queries) != 1 || !strings.Contains(in.DB.Queries[0], "DROP TABLE") {
		t.Fatalf("queries = %v", in.DB.Queries)
	}
}

func TestStoredXSSScenario(t *testing.T) {
	// Figure 2: rows fetched from the database carry stored attacker data.
	src := `<?php
$result = mysql_query("SELECT tickets_subject FROM tickets");
while ($row = mysql_fetch_array($result)) {
    extract($row);
    echo "$tickets_username<BR>$tickets_subject";
}`
	in := run(t, src, func(in *Interp) {
		in.SeedRow(map[string]*Value{
			"tickets_username": Clean("alice"),
			"tickets_subject":  Tainted("<script>steal()</script>"),
		})
	})
	ev := in.TaintedEvents()
	if len(ev) != 1 {
		t.Fatalf("tainted events = %d, want 1 (stored XSS)", len(ev))
	}
	if !strings.Contains(in.Output(), "alice") {
		t.Fatalf("output lost row data: %q", in.Output())
	}
}

func TestControlFlow(t *testing.T) {
	in := run(t, `<?php
$sum = 0;
for ($i = 1; $i <= 4; $i++) { $sum += $i; }
$n = 0;
while ($n < 3) { $n++; if ($n == 2) { continue; } $sum += 100; }
do { $sum += 1000; } while (false);
switch ($sum) {
case 1210: echo "match"; break;
default: echo "miss";
}`, nil)
	if got := in.Output(); got != "match" {
		t.Fatalf("output = %q (sum arithmetic or control flow wrong)", got)
	}
}

func TestForeachAndArrays(t *testing.T) {
	in := run(t, `<?php
$a = array('x' => 1, 'y' => 2);
$a['z'] = 3;
$total = 0;
foreach ($a as $k => $v) { $total += $v; echo $k; }
echo $total;`, nil)
	if got := in.Output(); got != "xyz6" {
		t.Fatalf("output = %q", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	in := run(t, `<?php
function fact($n) {
    if ($n <= 1) { return 1; }
    return $n * fact($n - 1);
}
echo fact(5);`, nil)
	if got := in.Output(); got != "120" {
		t.Fatalf("output = %q", got)
	}
}

func TestByRefParameter(t *testing.T) {
	in := run(t, `<?php
function bump(&$x) { $x = $x + 1; }
$v = 41;
bump($v);
echo $v;`, nil)
	if got := in.Output(); got != "42" {
		t.Fatalf("output = %q", got)
	}
}

func TestGlobalStatement(t *testing.T) {
	in := run(t, `<?php
$greeting = "hi";
function speak() { global $greeting; echo $greeting; }
speak();`, nil)
	if got := in.Output(); got != "hi" {
		t.Fatalf("output = %q", got)
	}
}

func TestLocalsIsolated(t *testing.T) {
	in := run(t, `<?php
$x = "outer";
function f() { $x = "inner"; }
f();
echo $x;`, nil)
	if got := in.Output(); got != "outer" {
		t.Fatalf("output = %q", got)
	}
}

func TestExitHalts(t *testing.T) {
	in := run(t, `<?php echo "a"; exit; echo "b";`, nil)
	if got := in.Output(); got != "a" {
		t.Fatalf("output = %q", got)
	}
}

func TestDieEchoesMessage(t *testing.T) {
	in := run(t, `<?php die("fatal: $_GET[e]");`, func(in *Interp) {
		in.SetGet("e", "<hr>")
	})
	if len(in.TaintedEvents()) != 1 {
		t.Fatalf("die message should be a tainted echo")
	}
}

func TestTaintThroughStringFunctions(t *testing.T) {
	in := run(t, `<?php echo substr(trim(strtolower($_POST['v'])), 0, 5);`, func(in *Interp) {
		in.SetPost("v", "  EVILDATA  ")
	})
	ev := in.TaintedEvents()
	if len(ev) != 1 {
		t.Fatalf("taint lost through string functions")
	}
	if ev[0].Text != "evild" {
		t.Fatalf("text = %q", ev[0].Text)
	}
}

func TestStepBudget(t *testing.T) {
	in := New()
	in.MaxSteps = 1000
	err := in.RunSource("t.php", []byte(`<?php while (true) { $x = 1; }`))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want step budget failure", err)
	}
}

func TestIncludeExecution(t *testing.T) {
	files := map[string]string{
		"lib.php": `<?php function hello() { echo "from lib"; }`,
	}
	in := New()
	in.Loader = func(p string) ([]byte, error) {
		if s, ok := files[p]; ok {
			return []byte(s), nil
		}
		return nil, strings.NewReader("").UnreadByte()
	}
	if err := in.RunSource("t.php", []byte(`<?php include 'lib.php'; hello();`)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := in.Output(); got != "from lib" {
		t.Fatalf("output = %q", got)
	}
}

func TestListAssignAndExplode(t *testing.T) {
	in := run(t, `<?php
list($a, $b) = explode(",", $_COOKIE['pair']);
echo $b;`, func(in *Interp) {
		in.SetCookie("pair", "one,two")
	})
	ev := in.TaintedEvents()
	if len(ev) != 1 || ev[0].Text != "two" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestIssetEmptyTernary(t *testing.T) {
	in := run(t, `<?php
$v = isset($_GET['x']) ? $_GET['x'] : 'default';
echo $v;
echo empty($novar) ? "-empty" : "-full";`, nil)
	if got := in.Output(); got != "default-empty" {
		t.Fatalf("output = %q", got)
	}
}

func TestInlineHTMLIsCleanOutput(t *testing.T) {
	in := run(t, "<b>static</b><?php echo 'x'; ?>", nil)
	if got := in.Output(); got != "<b>static</b>x" {
		t.Fatalf("output = %q", got)
	}
	if len(in.TaintedEvents()) != 0 {
		t.Fatalf("static HTML must be clean")
	}
}

func TestVariableVariables(t *testing.T) {
	in := run(t, `<?php
$name = 'target';
$$name = 'hit';
echo $target;`, nil)
	if got := in.Output(); got != "hit" {
		t.Fatalf("output = %q", got)
	}
}

func TestMethodCallByUniqueName(t *testing.T) {
	in := run(t, `<?php
class Greeter {
    function greet($who) { echo "hello $who"; }
}
$g = new Greeter();
$g->greet('bob');`, nil)
	if got := in.Output(); got != "hello bob" {
		t.Fatalf("output = %q", got)
	}
}
