// Package flow implements the paper's filter F(p) and abstract
// interpretation procedure AI(F(p)) (§3.2, Figure 4): it reduces a parsed
// PHP program to the loop-free command language of package ai, preserving
// exactly the information-flow structure.
//
// The reduction follows the paper:
//
//   - only assignments, function calls, and conditional structures are
//     preserved; all other constructs are discarded;
//   - function calls are unfolded (inlined) up to a recursion cutoff;
//   - loop structures are deconstructed into selection structures (a
//     configurable unroll factor generalizes the paper's single pass);
//   - branch conditions become nondeterministic booleans;
//   - untrusted input channels, sensitive output channels, and sanitizers
//     are resolved against the prelude: UIC results become type constants,
//     SOC calls become assertions, sanitizer results become ⊥-level (or
//     prelude-specified) constants.
//
// Static file inclusions are resolved and spliced in, as WebSSARI's code
// walker did, so one entry file verifies together with everything it
// includes.
package flow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"webssari/internal/ai"
	"webssari/internal/ir"
	"webssari/internal/lattice"
	"webssari/internal/php/ast"
	"webssari/internal/php/parser"
	"webssari/internal/php/token"
	"webssari/internal/policy"
	"webssari/internal/prelude"
)

// Options configures the filter.
type Options struct {
	// Prelude supplies the trust environment. Required unless Policy is
	// set, in which case it defaults to the policy's compiled prelude.
	Prelude *prelude.Prelude
	// Policy is the active security policy. Optional: when set, it adds
	// sink classes, per-context sink bounds (via the HTML output-context
	// machine), and constant-argument sanitizer variants on top of the
	// prelude lookups. The IR path (Build/BuildUnit) honors it; the
	// legacy BuildAST reference path ignores everything but its prelude.
	Policy *policy.Compiled
	// Loader reads included files by path; nil disables include resolution
	// (includes then produce a warning).
	Loader func(path string) ([]byte, error)
	// Dir is the directory against which relative include paths resolve
	// when they are not found relative to the including file.
	Dir string
	// MaxInlineDepth bounds recursive call unfolding per function name.
	// Zero means DefaultMaxInlineDepth.
	MaxInlineDepth int
	// LoopUnroll is the number of selection copies a loop deconstructs
	// into. Zero means 1, the paper's single pass; higher values trade AI
	// size for loop-carried-flow precision (an ablation in bench_test.go).
	LoopUnroll int
	// MaxCmds caps the AI size to keep pathological unfoldings bounded;
	// hitting the cap marks the Program Truncated so downstream stages
	// degrade to an Unknown verdict instead of claiming Safe over a
	// partial model. Zero means DefaultMaxCmds.
	MaxCmds int
}

// Defaults for Options fields left zero.
const (
	DefaultMaxInlineDepth = 2
	DefaultMaxCmds        = 500000
)

// superglobals are variables that refer to the global scope from any
// function body without a 'global' declaration.
var superglobals = map[string]bool{
	"_GET": true, "_POST": true, "_COOKIE": true, "_REQUEST": true,
	"_SERVER": true, "_SESSION": true, "_FILES": true, "_ENV": true,
	"GLOBALS": true,
}

// normalizeOptions validates Options and fills zero fields with defaults.
func normalizeOptions(opts Options) (Options, error) {
	if opts.Prelude == nil && opts.Policy != nil {
		opts.Prelude = opts.Policy.Prelude()
	}
	if opts.Prelude == nil {
		return opts, fmt.Errorf("flow: Options.Prelude is required")
	}
	if opts.MaxInlineDepth == 0 {
		opts.MaxInlineDepth = DefaultMaxInlineDepth
	}
	if opts.LoopUnroll <= 0 {
		opts.LoopUnroll = 1
	}
	if opts.MaxCmds == 0 {
		opts.MaxCmds = DefaultMaxCmds
	}
	return opts, nil
}

// Build filters one parsed file (plus its static includes) into an AI
// program. Since the IR refactor it is a thin composition of ir.Lower and
// BuildUnit: parse → lower → F(p)/AI.
func Build(file *ast.File, opts Options) (*ai.Program, error) {
	unit, err := ir.Lower(file)
	if err != nil {
		return nil, err
	}
	return BuildUnit(unit, opts)
}

// BuildAST is the pre-IR reference path: it filters the AST directly,
// without lowering. It is kept behind this seam solely so differential
// tests can assert that the IR path produces byte-identical programs; new
// subset features (closures, foreach-by-reference) are deliberately NOT
// supported here.
func BuildAST(file *ast.File, opts Options) (*ai.Program, error) {
	opts, err := normalizeOptions(opts)
	if err != nil {
		return nil, err
	}

	b := &builder{
		opts:        opts,
		pre:         opts.Prelude,
		lat:         opts.Prelude.Lattice(),
		funcs:       make(map[string]*ast.FunctionDecl),
		classFuncs:  make(map[string]*ast.FunctionDecl),
		methodCount: make(map[string]int),
		inlineDepth: make(map[string]int),
		included:    make(map[string]bool),
		scope:       &scope{globals: make(map[string]bool)},
	}
	b.collectDecls(file.Stmts, "")
	b.collectVarUsage(file.Stmts)

	cmds := b.buildStmts(file.Stmts)

	initial := make(map[string]lattice.Elem)
	for _, name := range b.pre.Vars() {
		initial[name] = b.pre.VarType(name)
	}
	prog := &ai.Program{
		File:         file.Name,
		Cmds:         cmds,
		Branches:     b.branchID,
		Lat:          b.lat,
		InitialTypes: initial,
		Warnings:     b.warnings,
		Truncated:    b.truncated,

		UnresolvedIncludes: b.unresolvedIncludes,
		IncludeHashes:      b.includeHashes,
		IncludeMisses:      b.includeMisses,
	}
	return prog, nil
}

// BuildSource parses and filters PHP source text in one step.
func BuildSource(name string, src []byte, opts Options) (*ai.Program, []error) {
	res := parser.Parse(name, src)
	prog, err := Build(res.File, opts)
	errs := res.Errs
	if err != nil {
		errs = append(errs, err)
	}
	return prog, errs
}

// scope tracks variable-name resolution inside an unfolded function body.
type scope struct {
	// prefix is prepended to local variable names ("" at global scope).
	prefix string
	// globals lists names pulled in with a 'global' declaration.
	globals map[string]bool
	// retVar receives the function's return value ("" at global scope).
	retVar string
}

type builder struct {
	opts Options
	pre  *prelude.Prelude
	lat  *lattice.Lattice

	funcs       map[string]*ast.FunctionDecl // lower name → decl
	classFuncs  map[string]*ast.FunctionDecl // "class::method" (lower)
	methodCount map[string]int               // lower method name → #classes defining it

	cmds        []ai.Cmd
	cmdCount    int
	branchID    int
	instID      int
	inlineDepth map[string]int

	scope        *scope
	curStmtPos   token.Pos
	curStmtEnd   int
	warnings     []string
	includeStack []string
	included     map[string]bool
	truncated    bool

	// unresolvedIncludes records static include paths the loader could
	// not read (surfaced on ai.Program.UnresolvedIncludes).
	unresolvedIncludes []string
	// includeHashes and includeMisses snapshot include resolution for the
	// compile cache (see ai.Program.IncludeHashes / IncludeMisses).
	includeHashes map[string]string
	includeMisses map[string]bool
	preVars       map[string]bool

	// extractTargets are variable names that are read somewhere in the
	// program but never assigned: the candidates an extract() call may
	// define (see handleExtract).
	extractTargets []string
}

// recordIncludeHit snapshots a resolved include's content hash for cache
// revalidation (ai.Program.IncludeHashes).
func (b *builder) recordIncludeHit(resolved string, src []byte) {
	if b.includeHashes == nil {
		b.includeHashes = make(map[string]string)
	}
	sum := sha256.Sum256(src)
	b.includeHashes[resolved] = hex.EncodeToString(sum[:])
}

// recordIncludeMiss snapshots a probed-but-unreadable include candidate
// (ai.Program.IncludeMisses).
func (b *builder) recordIncludeMiss(cand string) {
	if b.includeMisses == nil {
		b.includeMisses = make(map[string]bool)
	}
	b.includeMisses[cand] = true
}

func (b *builder) warnf(pos token.Pos, format string, args ...any) {
	b.warnings = append(b.warnings, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (b *builder) emit(c ai.Cmd) {
	if b.cmdCount >= b.opts.MaxCmds {
		if !b.truncated {
			b.truncated = true
			b.warnings = append(b.warnings,
				fmt.Sprintf("AI truncated at %d commands (MaxCmds)", b.opts.MaxCmds))
		}
		return
	}
	b.cmdCount++
	b.cmds = append(b.cmds, c)
}

// collect runs fn with a fresh command buffer and returns what it emitted.
func (b *builder) collect(fn func()) []ai.Cmd {
	saved := b.cmds
	b.cmds = nil
	fn()
	out := b.cmds
	b.cmds = saved
	return out
}

func (b *builder) site(n ast.Node) ai.Site {
	return ai.Site{
		Pos:     n.Pos(),
		End:     n.End(),
		StmtPos: b.curStmtPos,
		StmtEnd: b.curStmtEnd,
	}
}

// resolveVar maps a source-level variable name to its AI name under the
// current scope.
func (b *builder) resolveVar(name string) string {
	if b.scope.prefix == "" || superglobals[name] || b.scope.globals[name] {
		return name
	}
	// Variables with explicit prelude types (legacy globals such as
	// $HTTP_REFERER) are treated as global everywhere, matching PHP4's
	// register-globals-era behaviour the corpus relies on.
	if b.preHasVar(name) {
		return name
	}
	return b.scope.prefix + name
}

func (b *builder) preHasVar(name string) bool {
	if b.preVars == nil {
		b.preVars = make(map[string]bool)
		for _, v := range b.pre.Vars() {
			b.preVars[v] = true
		}
	}
	return b.preVars[name]
}

// ------------------------------------------------------------ declarations

// collectDecls gathers function and class declarations, recursing into
// nested statement bodies (PHP permits conditional declarations).
func (b *builder) collectDecls(stmts []ast.Stmt, class string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.FunctionDecl:
			key := ast.LowerName(s.Name)
			if class != "" {
				b.classFuncs[ast.LowerName(class)+"::"+key] = s
				b.methodCount[key]++
			} else if _, dup := b.funcs[key]; !dup {
				b.funcs[key] = s
			}
		case *ast.ClassDecl:
			for _, m := range s.Methods {
				key := ast.LowerName(m.Name)
				b.classFuncs[ast.LowerName(s.Name)+"::"+key] = m
				b.methodCount[key]++
			}
		case *ast.IfStmt:
			b.collectDecls(s.Then, class)
			for _, ei := range s.Elseifs {
				b.collectDecls(ei.Body, class)
			}
			b.collectDecls(s.Else, class)
		case *ast.WhileStmt:
			b.collectDecls(s.Body, class)
		case *ast.DoWhileStmt:
			b.collectDecls(s.Body, class)
		case *ast.ForStmt:
			b.collectDecls(s.Body, class)
		case *ast.ForeachStmt:
			b.collectDecls(s.Body, class)
		case *ast.BlockStmt:
			b.collectDecls(s.Body, class)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				b.collectDecls(c.Body, class)
			}
		}
	}
}

// lookupMethod resolves a method body: exactly by class when known, or by
// unique method name across all classes.
func (b *builder) lookupMethod(class, name string) (*ast.FunctionDecl, bool) {
	key := ast.LowerName(name)
	if class != "" {
		fd, ok := b.classFuncs[ast.LowerName(class)+"::"+key]
		return fd, ok
	}
	if b.methodCount[key] != 1 {
		return nil, false
	}
	for k, fd := range b.classFuncs {
		if strings.HasSuffix(k, "::"+key) {
			return fd, true
		}
	}
	return nil, false
}

// collectVarUsage computes the extract() candidate set: names read
// somewhere but never assigned anywhere in the unit.
func (b *builder) collectVarUsage(stmts []ast.Stmt) {
	read := make(map[string]bool)
	written := make(map[string]bool)
	var walkExpr func(e ast.Expr, isWrite bool)
	walkExpr = func(e ast.Expr, isWrite bool) {
		switch e := e.(type) {
		case nil:
		case *ast.Var:
			if isWrite {
				written[e.Name] = true
			} else {
				read[e.Name] = true
			}
		case *ast.VarVar:
			walkExpr(e.Inner, false)
		case *ast.Index:
			walkExpr(e.Arr, isWrite)
			walkExpr(e.Key, false)
		case *ast.Prop:
			walkExpr(e.Obj, isWrite)
		case *ast.Interp:
			for _, p := range e.Parts {
				walkExpr(p, false)
			}
		case *ast.ArrayLit:
			for _, it := range e.Items {
				walkExpr(it.Key, false)
				walkExpr(it.Val, false)
			}
		case *ast.Cast:
			walkExpr(e.X, false)
		case *ast.Unary:
			walkExpr(e.X, false)
		case *ast.Binary:
			walkExpr(e.L, false)
			walkExpr(e.R, false)
		case *ast.Assign:
			walkExpr(e.LHS, true)
			walkExpr(e.RHS, false)
		case *ast.Ternary:
			walkExpr(e.Cond, false)
			walkExpr(e.Then, false)
			walkExpr(e.Else, false)
		case *ast.Call:
			walkExpr(e.Func, false)
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ast.MethodCall:
			walkExpr(e.Obj, false)
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ast.StaticCall:
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ast.New:
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ast.IncludeExpr:
			walkExpr(e.Path, false)
		case *ast.IssetExpr:
			for _, a := range e.Args {
				walkExpr(a, false)
			}
		case *ast.EmptyExpr:
			walkExpr(e.Arg, false)
		case *ast.ListExpr:
			for _, tgt := range e.Targets {
				walkExpr(tgt, true)
			}
		case *ast.ExitExpr:
			walkExpr(e.Arg, false)
		}
	}
	var walkStmts func(list []ast.Stmt)
	walkStmt := func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			walkExpr(s.X, false)
		case *ast.EchoStmt:
			for _, a := range s.Args {
				walkExpr(a, false)
			}
		case *ast.IfStmt:
			walkExpr(s.Cond, false)
			walkStmts(s.Then)
			for _, ei := range s.Elseifs {
				walkExpr(ei.Cond, false)
				walkStmts(ei.Body)
			}
			walkStmts(s.Else)
		case *ast.WhileStmt:
			walkExpr(s.Cond, false)
			walkStmts(s.Body)
		case *ast.DoWhileStmt:
			walkStmts(s.Body)
			walkExpr(s.Cond, false)
		case *ast.ForStmt:
			for _, e := range s.Init {
				walkExpr(e, false)
			}
			for _, e := range s.Cond {
				walkExpr(e, false)
			}
			for _, e := range s.Post {
				walkExpr(e, false)
			}
			walkStmts(s.Body)
		case *ast.ForeachStmt:
			walkExpr(s.Subject, false)
			walkExpr(s.KeyVar, true)
			walkExpr(s.ValVar, true)
			walkStmts(s.Body)
		case *ast.SwitchStmt:
			walkExpr(s.Subject, false)
			for _, c := range s.Cases {
				walkExpr(c.Match, false)
				walkStmts(c.Body)
			}
		case *ast.ReturnStmt:
			walkExpr(s.X, false)
		case *ast.StaticStmt:
			for _, v := range s.Vars {
				written[v.Name] = true
				walkExpr(v.Init, false)
			}
		case *ast.UnsetStmt:
			for _, a := range s.Args {
				walkExpr(a, false)
			}
		case *ast.FunctionDecl:
			for _, p := range s.Params {
				written[p.Name] = true
			}
			walkStmts(s.Body)
		case *ast.ClassDecl:
			for _, m := range s.Methods {
				for _, p := range m.Params {
					written[p.Name] = true
				}
				walkStmts(m.Body)
			}
		case *ast.BlockStmt:
			walkStmts(s.Body)
		}
	}
	walkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			walkStmt(s)
		}
	}
	walkStmts(stmts)

	var batch []string
	for name := range read {
		if !written[name] && !superglobals[name] && !b.preHasVar(name) {
			batch = append(batch, name)
		}
	}
	// Sorted for determinism (map iteration order would otherwise leak into
	// the emitted extract() assignments); the IR path sorts identically.
	sort.Strings(batch)
	b.extractTargets = append(b.extractTargets, batch...)
}
